// Merge study: builds an application with several structurally similar
// loops, selects accelerators for each, then shows how accelerator merging
// folds them into reusable accelerators with shared reconfigurable
// datapaths (paper §III-E / Fig. 5).
//
//   ./merge_study
#include <cstdio>

#include "cayman/framework.h"
#include "ir/verifier.h"
#include "workloads/kernel_builder.h"

using namespace cayman;

namespace {

/// Four loops with overlapping operator sets: two multiply-accumulate
/// variants, one scale, one saxpy — prime candidates for datapath sharing.
std::unique_ptr<ir::Module> buildSimilarLoops() {
  constexpr int64_t n = 128;
  auto module = std::make_unique<ir::Module>("merge-study");
  auto* a = module->addGlobal("a", ir::Type::f64(), n);
  auto* b = module->addGlobal("b", ir::Type::f64(), n);
  auto* c = module->addGlobal("c", ir::Type::f64(), n);
  auto* d = module->addGlobal("d", ir::Type::f64(), n);
  workloads::KernelBuilder kb(module.get());
  kb.beginFunction("main");
  {
    ir::Value* i = kb.beginLoop(0, n, "mac1");
    ir::Value* v = kb.ir().fadd(
        kb.ir().fmul(kb.loadAt(a, i), kb.loadAt(b, i)), kb.loadAt(c, i));
    kb.storeAt(c, i, v);
    kb.endLoop();
  }
  {
    ir::Value* i = kb.beginLoop(0, n, "mac2");
    ir::Value* v = kb.ir().fadd(
        kb.ir().fmul(kb.loadAt(c, i), kb.loadAt(d, i)), kb.loadAt(a, i));
    kb.storeAt(d, i, v);
    kb.endLoop();
  }
  {
    ir::Value* i = kb.beginLoop(0, n, "scale");
    kb.storeAt(b, i, kb.ir().fmul(kb.loadAt(b, i), kb.ir().f64(0.5)));
    kb.endLoop();
  }
  {
    ir::Value* i = kb.beginLoop(0, n, "saxpy");
    ir::Value* v = kb.ir().fadd(
        kb.ir().fmul(kb.loadAt(d, i), kb.ir().f64(2.0)), kb.loadAt(b, i));
    kb.storeAt(a, i, v);
    kb.endLoop();
  }
  kb.endFunction();
  ir::verifyOrThrow(*module);
  return module;
}

}  // namespace

int main() {
  Framework fw(buildSimilarLoops());

  select::Solution best = fw.best(0.65);
  std::printf("selected %zu accelerators (before merging):\n",
              best.accelerators.size());
  for (const auto& config : best.accelerators) {
    std::printf("  %-30s area=%8.0f um2\n", config.region->label().c_str(),
                config.areaUm2);
  }

  merge::MergeResult merged = fw.mergeSolution(best);
  std::printf("\nmerging: %d pairwise steps\n", merged.mergeSteps);
  std::printf("  area before: %8.0f um2\n", merged.areaBeforeUm2);
  std::printf("  area after:  %8.0f um2  (%.1f%% saved)\n",
              merged.areaAfterUm2, merged.savingPercent());
  std::printf("  reusable accelerators: %d, serving %.1f kernels each on "
              "average\n",
              merged.reusableAccelerators, merged.avgKernelsPerReusable);
  std::printf("\nperformance is unchanged: kernels run one at a time, so "
              "sharing the datapath costs no cycles (speedup %.2fx before "
              "and after).\n",
              fw.speedupOf(best));
  return 0;
}
