// wPST explorer: prints the whole-application program structure tree of a
// workload, annotated with profile data and per-region accelerator
// estimates — the representation candidate selection walks (paper Fig. 2).
//
//   ./wpst_explorer [workload]
#include <cstdio>
#include <string>

#include "cayman/framework.h"
#include "workloads/workloads.h"

using namespace cayman;

namespace {

void printRegion(const Framework& fw, const analysis::Region& region,
                 int depth) {
  const sim::ProfileData& profile = fw.profile();
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  const char* kind = "";
  switch (region.kind()) {
    case analysis::RegionKind::Root: kind = "root"; break;
    case analysis::RegionKind::Function: kind = "function"; break;
    case analysis::RegionKind::Loop: kind = "loop"; break;
    case analysis::RegionKind::If: kind = "if"; break;
    case analysis::RegionKind::Bb: kind = "bb"; break;
  }
  std::printf("%s[%s] %-40s entries=%-8llu cycles=%-10.0f hot=%5.1f%%",
              indent.c_str(), kind, region.label().c_str(),
              static_cast<unsigned long long>(profile.entries(&region)),
              profile.cycles(&region),
              100.0 * profile.hotFraction(&region));
  if (region.isCandidate()) {
    auto configs = fw.model().generate(&region);
    if (!configs.empty()) {
      const auto& best = configs.back();
      std::printf("  -> best config: %.0f accel-cycles, %.0f um2",
                  best.cycles, best.areaUm2);
    }
  } else if (region.containsCall()) {
    std::printf("  (not a candidate: contains a call)");
  }
  std::printf("\n");
  for (const auto& child : region.children()) {
    printRegion(fw, *child, depth + 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "cjpeg";
  Framework fw(workloads::build(name));
  std::printf("wPST of %s  (T_all = %.0f CPU cycles)\n\n", name,
              fw.totalCpuCycles());
  printRegion(fw, *fw.wpst().root(), 0);
  return 0;
}
