// Custom kernel walk-through: author an application in Cayman's textual IR,
// parse it, and run the full flow — the path an external user takes to
// accelerate their own code.
//
//   ./custom_kernel
#include <cstdio>

#include "cayman/framework.h"
#include "ir/parser.h"
#include "ir/printer.h"

using namespace cayman;

namespace {

// A small signal-processing app: FIR filter + energy reduction.
const char* kSource = R"(module "fir-energy" {
global @signal : f64[512]
global @taps : f64[8]
global @filtered : f64[512]
global @energy : f64[1]

func @main() -> void {
entry:
  br fir.header
fir.header:
  %i = phi i64 [ 8, entry ], [ %i.next, fir.latch ]
  %fir.cond = icmp lt i64 %i, 512
  condbr %fir.cond, fir.body, fir.exit
fir.body:
  br tap.header
tap.header:
  %t = phi i64 [ 0, fir.body ], [ %t.next, tap.latch ]
  %acc = phi f64 [ 0.0, fir.body ], [ %acc.next, tap.latch ]
  %tap.cond = icmp lt i64 %t, 8
  condbr %tap.cond, tap.body, tap.exit
tap.body:
  %back = sub i64 %i, %t
  %sig.ptr = gep @signal, %back, elem 8
  %sig = load f64, %sig.ptr
  %tap.ptr = gep @taps, %t, elem 8
  %tap = load f64, %tap.ptr
  %prod = fmul f64 %sig, %tap
  %acc.next = fadd f64 %acc, %prod
  br tap.latch
tap.latch:
  %t.next = add i64 %t, 1
  br tap.header
tap.exit:
  %out.ptr = gep @filtered, %i, elem 8
  store f64 %acc, %out.ptr
  br fir.latch
fir.latch:
  %i.next = add i64 %i, 1
  br fir.header
fir.exit:
  br en.header
en.header:
  %j = phi i64 [ 0, fir.exit ], [ %j.next, en.latch ]
  %e = phi f64 [ 0.0, fir.exit ], [ %e.next, en.latch ]
  %en.cond = icmp lt i64 %j, 512
  condbr %en.cond, en.body, en.exit
en.body:
  %f.ptr = gep @filtered, %j, elem 8
  %f = load f64, %f.ptr
  %sq = fmul f64 %f, %f
  %e.next = fadd f64 %e, %sq
  br en.latch
en.latch:
  %j.next = add i64 %j, 1
  br en.header
en.exit:
  %e.ptr = gep @energy, 0, elem 8
  store f64 %e, %e.ptr
  ret
}
}
)";

}  // namespace

int main() {
  std::printf("parsing the custom FIR+energy application...\n");
  std::unique_ptr<ir::Module> module = ir::parseModule(kSource);
  std::printf("parsed: %zu function(s), %zu global(s)\n\n",
              module->functions().size(), module->globals().size());

  Framework fw(std::move(module));
  std::printf("profiled T_all = %.0f CPU cycles\n", fw.totalCpuCycles());

  for (double budget : {0.10, 0.25, 0.65}) {
    select::Solution best = fw.best(budget);
    std::printf("budget %4.0f%%: %zu kernel(s), %5.1f%% tile used, "
                "speedup %.2fx\n",
                budget * 100, best.accelerators.size(),
                100.0 * best.areaUm2 / fw.tech().cva6TileAreaUm2,
                fw.speedupOf(best));
  }
  return 0;
}
