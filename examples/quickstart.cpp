// Quickstart: run Cayman end-to-end on one benchmark.
//
//   ./quickstart [workload] [budget-ratio]
//
// Builds the workload's IR, profiles it on the simulated CVA6-class core,
// runs candidate selection under the area budget, merges accelerators, and
// prints the selected kernels with their configurations.
#include <cstdio>
#include <cstdlib>

#include "cayman/framework.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "3mm";
  double budget = argc > 2 ? std::atof(argv[2]) : 0.25;

  std::printf("Cayman quickstart: workload=%s budget=%.0f%% of a CVA6 tile\n",
              name, budget * 100.0);

  cayman::Framework framework(cayman::workloads::build(name));
  std::printf("profiled %.0f CPU cycles (T_all)\n",
              framework.totalCpuCycles());

  cayman::select::Solution best = framework.best(budget);
  std::printf("\nselected %zu kernel(s), area %.1f%% of tile:\n",
              best.accelerators.size(),
              100.0 * best.areaUm2 / framework.tech().cva6TileAreaUm2);
  for (const auto& config : best.accelerators) {
    std::printf("  %-40s  #SB=%u #PR=%u  C/D/S=%u/%u/%u  area=%.0fum2\n",
                config.region->label().c_str(), config.numSeqBlocks,
                config.numPipelinedRegions, config.numCoupled,
                config.numDecoupled, config.numScratchpad, config.areaUm2);
  }
  std::printf("\nwhole-program speedup (Eq.1): %.2fx\n",
              framework.speedupOf(best));

  cayman::merge::MergeResult merged = framework.mergeSolution(best);
  std::printf("accelerator merging: %.0f -> %.0f um2 (%.1f%% saved), "
              "%d reusable accelerator(s)\n",
              merged.areaBeforeUm2, merged.areaAfterUm2,
              merged.savingPercent(), merged.reusableAccelerators);

  cayman::EvaluationReport report = framework.evaluate(budget);
  std::printf("\nversus baselines: NOVIA %.2fx, QsCores %.2fx -> Cayman is "
              "%.1fx / %.1fx better\n",
              report.noviaSpeedup, report.qscoresSpeedup, report.overNovia,
              report.overQsCores);
  return 0;
}
