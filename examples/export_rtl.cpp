// Export RTL: select accelerators for a workload and print the generated
// Verilog for the hottest kernel — the flow's last mile (paper §III-F).
//
//   ./export_rtl [workload] [budget]
#include <cstdio>
#include <cstdlib>

#include "accel/rtl.h"
#include "cayman/framework.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "atax";
  double budget = argc > 2 ? std::atof(argv[2]) : 0.25;

  cayman::Framework framework(cayman::workloads::build(name));
  cayman::select::Solution best = framework.best(budget);
  if (best.empty()) {
    std::printf("no profitable kernel under a %.0f%% budget\n", budget * 100);
    return 0;
  }

  // Pick the accelerator displacing the most CPU time.
  const cayman::accel::AcceleratorConfig* hottest = &best.accelerators[0];
  for (const auto& config : best.accelerators) {
    if (config.cpuCycles > hottest->cpuCycles) hottest = &config;
  }

  std::printf("// workload: %s, kernel: %s\n", name,
              hottest->region->label().c_str());
  std::printf("// displaces %.0f CPU cycles; runs in %.0f accelerator "
              "cycles\n\n",
              hottest->cpuCycles, hottest->cycles);

  cayman::hls::TechLibrary tech = cayman::hls::TechLibrary::nangate45();
  cayman::hls::Scheduler scheduler(tech, cayman::hls::InterfaceTiming{},
                                   framework.options().accelClockNs);
  std::fputs(
      cayman::accel::emitAcceleratorRtl(*hottest, scheduler).c_str(),
      stdout);
  return 0;
}
