file(REMOVE_RECURSE
  "CMakeFiles/cayman_ir.dir/basic_block.cpp.o"
  "CMakeFiles/cayman_ir.dir/basic_block.cpp.o.d"
  "CMakeFiles/cayman_ir.dir/builder.cpp.o"
  "CMakeFiles/cayman_ir.dir/builder.cpp.o.d"
  "CMakeFiles/cayman_ir.dir/function.cpp.o"
  "CMakeFiles/cayman_ir.dir/function.cpp.o.d"
  "CMakeFiles/cayman_ir.dir/instruction.cpp.o"
  "CMakeFiles/cayman_ir.dir/instruction.cpp.o.d"
  "CMakeFiles/cayman_ir.dir/module.cpp.o"
  "CMakeFiles/cayman_ir.dir/module.cpp.o.d"
  "CMakeFiles/cayman_ir.dir/parser.cpp.o"
  "CMakeFiles/cayman_ir.dir/parser.cpp.o.d"
  "CMakeFiles/cayman_ir.dir/printer.cpp.o"
  "CMakeFiles/cayman_ir.dir/printer.cpp.o.d"
  "CMakeFiles/cayman_ir.dir/type.cpp.o"
  "CMakeFiles/cayman_ir.dir/type.cpp.o.d"
  "CMakeFiles/cayman_ir.dir/value.cpp.o"
  "CMakeFiles/cayman_ir.dir/value.cpp.o.d"
  "CMakeFiles/cayman_ir.dir/verifier.cpp.o"
  "CMakeFiles/cayman_ir.dir/verifier.cpp.o.d"
  "libcayman_ir.a"
  "libcayman_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cayman_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
