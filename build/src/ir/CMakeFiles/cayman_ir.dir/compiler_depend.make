# Empty compiler generated dependencies file for cayman_ir.
# This may be replaced when dependencies are built.
