file(REMOVE_RECURSE
  "libcayman_ir.a"
)
