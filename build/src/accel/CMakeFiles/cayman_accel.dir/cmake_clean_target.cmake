file(REMOVE_RECURSE
  "libcayman_accel.a"
)
