file(REMOVE_RECURSE
  "CMakeFiles/cayman_accel.dir/energy.cpp.o"
  "CMakeFiles/cayman_accel.dir/energy.cpp.o.d"
  "CMakeFiles/cayman_accel.dir/model.cpp.o"
  "CMakeFiles/cayman_accel.dir/model.cpp.o.d"
  "CMakeFiles/cayman_accel.dir/rtl.cpp.o"
  "CMakeFiles/cayman_accel.dir/rtl.cpp.o.d"
  "libcayman_accel.a"
  "libcayman_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cayman_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
