# Empty compiler generated dependencies file for cayman_accel.
# This may be replaced when dependencies are built.
