file(REMOVE_RECURSE
  "CMakeFiles/cayman_support.dir/error.cpp.o"
  "CMakeFiles/cayman_support.dir/error.cpp.o.d"
  "CMakeFiles/cayman_support.dir/strings.cpp.o"
  "CMakeFiles/cayman_support.dir/strings.cpp.o.d"
  "libcayman_support.a"
  "libcayman_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cayman_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
