# Empty compiler generated dependencies file for cayman_support.
# This may be replaced when dependencies are built.
