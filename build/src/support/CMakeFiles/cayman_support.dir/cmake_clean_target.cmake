file(REMOVE_RECURSE
  "libcayman_support.a"
)
