file(REMOVE_RECURSE
  "CMakeFiles/cayman_framework.dir/framework.cpp.o"
  "CMakeFiles/cayman_framework.dir/framework.cpp.o.d"
  "libcayman_framework.a"
  "libcayman_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cayman_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
