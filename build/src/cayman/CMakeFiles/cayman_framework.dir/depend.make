# Empty dependencies file for cayman_framework.
# This may be replaced when dependencies are built.
