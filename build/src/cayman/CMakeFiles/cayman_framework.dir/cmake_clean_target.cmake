file(REMOVE_RECURSE
  "libcayman_framework.a"
)
