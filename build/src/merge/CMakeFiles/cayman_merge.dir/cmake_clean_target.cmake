file(REMOVE_RECURSE
  "libcayman_merge.a"
)
