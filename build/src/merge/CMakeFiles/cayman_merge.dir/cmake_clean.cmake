file(REMOVE_RECURSE
  "CMakeFiles/cayman_merge.dir/merger.cpp.o"
  "CMakeFiles/cayman_merge.dir/merger.cpp.o.d"
  "libcayman_merge.a"
  "libcayman_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cayman_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
