# Empty dependencies file for cayman_merge.
# This may be replaced when dependencies are built.
