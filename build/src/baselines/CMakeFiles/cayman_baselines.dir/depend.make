# Empty dependencies file for cayman_baselines.
# This may be replaced when dependencies are built.
