file(REMOVE_RECURSE
  "libcayman_baselines.a"
)
