file(REMOVE_RECURSE
  "CMakeFiles/cayman_baselines.dir/novia.cpp.o"
  "CMakeFiles/cayman_baselines.dir/novia.cpp.o.d"
  "CMakeFiles/cayman_baselines.dir/qscores.cpp.o"
  "CMakeFiles/cayman_baselines.dir/qscores.cpp.o.d"
  "libcayman_baselines.a"
  "libcayman_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cayman_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
