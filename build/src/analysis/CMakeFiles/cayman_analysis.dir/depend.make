# Empty dependencies file for cayman_analysis.
# This may be replaced when dependencies are built.
