file(REMOVE_RECURSE
  "libcayman_analysis.a"
)
