file(REMOVE_RECURSE
  "CMakeFiles/cayman_analysis.dir/cfg.cpp.o"
  "CMakeFiles/cayman_analysis.dir/cfg.cpp.o.d"
  "CMakeFiles/cayman_analysis.dir/dominators.cpp.o"
  "CMakeFiles/cayman_analysis.dir/dominators.cpp.o.d"
  "CMakeFiles/cayman_analysis.dir/loops.cpp.o"
  "CMakeFiles/cayman_analysis.dir/loops.cpp.o.d"
  "CMakeFiles/cayman_analysis.dir/memdep.cpp.o"
  "CMakeFiles/cayman_analysis.dir/memdep.cpp.o.d"
  "CMakeFiles/cayman_analysis.dir/regions.cpp.o"
  "CMakeFiles/cayman_analysis.dir/regions.cpp.o.d"
  "CMakeFiles/cayman_analysis.dir/scev.cpp.o"
  "CMakeFiles/cayman_analysis.dir/scev.cpp.o.d"
  "libcayman_analysis.a"
  "libcayman_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cayman_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
