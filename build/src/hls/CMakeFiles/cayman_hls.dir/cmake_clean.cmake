file(REMOVE_RECURSE
  "CMakeFiles/cayman_hls.dir/scheduler.cpp.o"
  "CMakeFiles/cayman_hls.dir/scheduler.cpp.o.d"
  "CMakeFiles/cayman_hls.dir/tech_library.cpp.o"
  "CMakeFiles/cayman_hls.dir/tech_library.cpp.o.d"
  "libcayman_hls.a"
  "libcayman_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cayman_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
