file(REMOVE_RECURSE
  "libcayman_hls.a"
)
