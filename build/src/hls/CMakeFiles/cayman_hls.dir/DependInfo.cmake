
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/scheduler.cpp" "src/hls/CMakeFiles/cayman_hls.dir/scheduler.cpp.o" "gcc" "src/hls/CMakeFiles/cayman_hls.dir/scheduler.cpp.o.d"
  "/root/repo/src/hls/tech_library.cpp" "src/hls/CMakeFiles/cayman_hls.dir/tech_library.cpp.o" "gcc" "src/hls/CMakeFiles/cayman_hls.dir/tech_library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cayman_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cayman_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cayman_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
