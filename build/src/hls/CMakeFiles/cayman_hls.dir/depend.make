# Empty dependencies file for cayman_hls.
# This may be replaced when dependencies are built.
