
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/coremark.cpp" "src/workloads/CMakeFiles/cayman_workloads.dir/coremark.cpp.o" "gcc" "src/workloads/CMakeFiles/cayman_workloads.dir/coremark.cpp.o.d"
  "/root/repo/src/workloads/kernel_builder.cpp" "src/workloads/CMakeFiles/cayman_workloads.dir/kernel_builder.cpp.o" "gcc" "src/workloads/CMakeFiles/cayman_workloads.dir/kernel_builder.cpp.o.d"
  "/root/repo/src/workloads/machsuite.cpp" "src/workloads/CMakeFiles/cayman_workloads.dir/machsuite.cpp.o" "gcc" "src/workloads/CMakeFiles/cayman_workloads.dir/machsuite.cpp.o.d"
  "/root/repo/src/workloads/mediabench.cpp" "src/workloads/CMakeFiles/cayman_workloads.dir/mediabench.cpp.o" "gcc" "src/workloads/CMakeFiles/cayman_workloads.dir/mediabench.cpp.o.d"
  "/root/repo/src/workloads/polybench.cpp" "src/workloads/CMakeFiles/cayman_workloads.dir/polybench.cpp.o" "gcc" "src/workloads/CMakeFiles/cayman_workloads.dir/polybench.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/cayman_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/cayman_workloads.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cayman_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cayman_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
