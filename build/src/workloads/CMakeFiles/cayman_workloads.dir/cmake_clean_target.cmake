file(REMOVE_RECURSE
  "libcayman_workloads.a"
)
