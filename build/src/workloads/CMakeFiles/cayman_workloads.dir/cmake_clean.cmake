file(REMOVE_RECURSE
  "CMakeFiles/cayman_workloads.dir/coremark.cpp.o"
  "CMakeFiles/cayman_workloads.dir/coremark.cpp.o.d"
  "CMakeFiles/cayman_workloads.dir/kernel_builder.cpp.o"
  "CMakeFiles/cayman_workloads.dir/kernel_builder.cpp.o.d"
  "CMakeFiles/cayman_workloads.dir/machsuite.cpp.o"
  "CMakeFiles/cayman_workloads.dir/machsuite.cpp.o.d"
  "CMakeFiles/cayman_workloads.dir/mediabench.cpp.o"
  "CMakeFiles/cayman_workloads.dir/mediabench.cpp.o.d"
  "CMakeFiles/cayman_workloads.dir/polybench.cpp.o"
  "CMakeFiles/cayman_workloads.dir/polybench.cpp.o.d"
  "CMakeFiles/cayman_workloads.dir/registry.cpp.o"
  "CMakeFiles/cayman_workloads.dir/registry.cpp.o.d"
  "libcayman_workloads.a"
  "libcayman_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cayman_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
