# Empty dependencies file for cayman_workloads.
# This may be replaced when dependencies are built.
