file(REMOVE_RECURSE
  "CMakeFiles/cayman_sim.dir/cpu_model.cpp.o"
  "CMakeFiles/cayman_sim.dir/cpu_model.cpp.o.d"
  "CMakeFiles/cayman_sim.dir/interpreter.cpp.o"
  "CMakeFiles/cayman_sim.dir/interpreter.cpp.o.d"
  "CMakeFiles/cayman_sim.dir/memory.cpp.o"
  "CMakeFiles/cayman_sim.dir/memory.cpp.o.d"
  "CMakeFiles/cayman_sim.dir/profiler.cpp.o"
  "CMakeFiles/cayman_sim.dir/profiler.cpp.o.d"
  "libcayman_sim.a"
  "libcayman_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cayman_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
