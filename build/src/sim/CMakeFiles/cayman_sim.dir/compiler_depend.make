# Empty compiler generated dependencies file for cayman_sim.
# This may be replaced when dependencies are built.
