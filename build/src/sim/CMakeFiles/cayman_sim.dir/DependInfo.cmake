
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cpu_model.cpp" "src/sim/CMakeFiles/cayman_sim.dir/cpu_model.cpp.o" "gcc" "src/sim/CMakeFiles/cayman_sim.dir/cpu_model.cpp.o.d"
  "/root/repo/src/sim/interpreter.cpp" "src/sim/CMakeFiles/cayman_sim.dir/interpreter.cpp.o" "gcc" "src/sim/CMakeFiles/cayman_sim.dir/interpreter.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/cayman_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/cayman_sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/profiler.cpp" "src/sim/CMakeFiles/cayman_sim.dir/profiler.cpp.o" "gcc" "src/sim/CMakeFiles/cayman_sim.dir/profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cayman_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cayman_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cayman_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
