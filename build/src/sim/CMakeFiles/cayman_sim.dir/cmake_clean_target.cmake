file(REMOVE_RECURSE
  "libcayman_sim.a"
)
