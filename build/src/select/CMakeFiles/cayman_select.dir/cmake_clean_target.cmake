file(REMOVE_RECURSE
  "libcayman_select.a"
)
