file(REMOVE_RECURSE
  "CMakeFiles/cayman_select.dir/pareto.cpp.o"
  "CMakeFiles/cayman_select.dir/pareto.cpp.o.d"
  "CMakeFiles/cayman_select.dir/selector.cpp.o"
  "CMakeFiles/cayman_select.dir/selector.cpp.o.d"
  "libcayman_select.a"
  "libcayman_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cayman_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
