# Empty dependencies file for cayman_select.
# This may be replaced when dependencies are built.
