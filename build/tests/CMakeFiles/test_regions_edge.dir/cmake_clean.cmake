file(REMOVE_RECURSE
  "CMakeFiles/test_regions_edge.dir/test_regions_edge.cpp.o"
  "CMakeFiles/test_regions_edge.dir/test_regions_edge.cpp.o.d"
  "test_regions_edge"
  "test_regions_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regions_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
