file(REMOVE_RECURSE
  "CMakeFiles/test_interpreter_ops.dir/test_interpreter_ops.cpp.o"
  "CMakeFiles/test_interpreter_ops.dir/test_interpreter_ops.cpp.o.d"
  "test_interpreter_ops"
  "test_interpreter_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interpreter_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
