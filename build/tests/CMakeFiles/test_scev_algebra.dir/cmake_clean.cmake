file(REMOVE_RECURSE
  "CMakeFiles/test_scev_algebra.dir/test_scev_algebra.cpp.o"
  "CMakeFiles/test_scev_algebra.dir/test_scev_algebra.cpp.o.d"
  "test_scev_algebra"
  "test_scev_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scev_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
