# Empty compiler generated dependencies file for test_scev_algebra.
# This may be replaced when dependencies are built.
