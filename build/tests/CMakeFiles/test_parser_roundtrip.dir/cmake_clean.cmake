file(REMOVE_RECURSE
  "CMakeFiles/test_parser_roundtrip.dir/test_parser_roundtrip.cpp.o"
  "CMakeFiles/test_parser_roundtrip.dir/test_parser_roundtrip.cpp.o.d"
  "test_parser_roundtrip"
  "test_parser_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parser_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
