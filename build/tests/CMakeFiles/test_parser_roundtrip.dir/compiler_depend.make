# Empty compiler generated dependencies file for test_parser_roundtrip.
# This may be replaced when dependencies are built.
