# Empty dependencies file for wpst_explorer.
# This may be replaced when dependencies are built.
