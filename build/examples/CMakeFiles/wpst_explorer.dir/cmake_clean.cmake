file(REMOVE_RECURSE
  "CMakeFiles/wpst_explorer.dir/wpst_explorer.cpp.o"
  "CMakeFiles/wpst_explorer.dir/wpst_explorer.cpp.o.d"
  "wpst_explorer"
  "wpst_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wpst_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
