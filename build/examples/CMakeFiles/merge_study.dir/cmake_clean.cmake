file(REMOVE_RECURSE
  "CMakeFiles/merge_study.dir/merge_study.cpp.o"
  "CMakeFiles/merge_study.dir/merge_study.cpp.o.d"
  "merge_study"
  "merge_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
