# Empty compiler generated dependencies file for merge_study.
# This may be replaced when dependencies are built.
