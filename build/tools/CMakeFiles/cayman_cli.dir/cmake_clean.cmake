file(REMOVE_RECURSE
  "CMakeFiles/cayman_cli.dir/cayman_cli.cpp.o"
  "CMakeFiles/cayman_cli.dir/cayman_cli.cpp.o.d"
  "cayman_cli"
  "cayman_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cayman_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
