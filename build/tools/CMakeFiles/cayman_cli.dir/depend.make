# Empty dependencies file for cayman_cli.
# This may be replaced when dependencies are built.
