
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/cayman_cli.cpp" "tools/CMakeFiles/cayman_cli.dir/cayman_cli.cpp.o" "gcc" "tools/CMakeFiles/cayman_cli.dir/cayman_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cayman/CMakeFiles/cayman_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cayman_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/merge/CMakeFiles/cayman_merge.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cayman_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/select/CMakeFiles/cayman_select.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/cayman_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/cayman_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cayman_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cayman_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cayman_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cayman_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
