// Ablation B: the scratchpad threshold β (paper §III-C). Sweeps β and
// reports the interface mix and achieved speedup: small β over-allocates
// scratchpads (area for nothing), large β forfeits reuse caching.
#include <cstdio>
#include <string>

#include "cayman/framework.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

using namespace cayman;

int main() {
  const char* benchmarks[] = {"3mm", "doitgen", "trisolv", "cjpeg"};
  const double betas[] = {1.0, 2.0, 4.0, 8.0, 16.0};

  std::printf("Ablation: scratchpad threshold beta sweep (budget 25%%)\n\n");
  std::printf("%-10s %6s %5s %5s %5s %10s %14s\n", "benchmark", "beta", "#C",
              "#D", "#S", "speedup", "area(%tile)");

  // The whole (benchmark, beta) grid is independent: each point needs its
  // own Framework (beta changes the model), so fan the grid out flat.
  const size_t numBetas = std::size(betas);
  ThreadPool pool;
  std::vector<std::string> lines = parallelIndexMap(
      pool, std::size(benchmarks) * numBetas, [&](size_t index) {
        const char* name = benchmarks[index / numBetas];
        double beta = betas[index % numBetas];
        FrameworkOptions options;
        options.beta = beta;
        Framework fw(workloads::build(name), options);
        EvaluationReport report = fw.evaluate(0.25);
        char line[128];
        std::snprintf(line, sizeof(line), "%-10s %6.1f %5u %5u %5u %10.2f "
                      "%14.2f\n",
                      name, beta, report.numCoupled, report.numDecoupled,
                      report.numScratchpad, report.caymanSpeedup,
                      100.0 * report.solution.areaUm2 /
                          fw.tech().cva6TileAreaUm2);
        std::string out = line;
        if (index % numBetas == numBetas - 1) out += '\n';
        return out;
      });
  for (const std::string& line : lines) std::fputs(line.c_str(), stdout);
  std::printf("expected shape: #S falls (and #C/#D rise) monotonically with "
              "beta; speedup peaks at a moderate beta.\n");
  return 0;
}
