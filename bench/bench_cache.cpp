// Substrate bench: persistent model-cache warm start (BENCH_cache.json).
//
// For each sampled workload, three full Framework evaluations at the 25%
// budget share one cache directory:
//   cold    — empty directory: every candidate region generates cold and is
//             recorded, then the snapshot publishes atomically on save.
//   warm    — fresh process state, snapshot present: generation replays from
//             disk (the win this subsystem exists for).
//   damaged — one byte of the snapshot flipped: the CRC rejects exactly one
//             record, that region regenerates cold, everything else stays
//             warm (the corruption-tolerance half of the contract).
// The evaluated speedup must be identical across all three runs; any
// difference is a cache bug, and the bench exits nonzero.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cayman/framework.h"
#include "workloads/workloads.h"

using namespace cayman;
namespace fs = std::filesystem;

namespace {

struct RunResult {
  double generateMs = 0.0;  ///< candidate-generation sweep alone
  double totalMs = 0.0;     ///< build + profile + generate + evaluate
  double speedup = 0.0;
  accel::ModelCacheStats stats;
};

RunResult runOnce(const std::string& workload, const std::string& cacheDir) {
  FrameworkOptions options;
  options.cacheDir = cacheDir;
  auto begin = std::chrono::steady_clock::now();
  Framework fw(workloads::build(workload), options);

  // The generation sweep is what the cache accelerates; time it separately
  // from the (cache-independent) profiling and selection around it.
  auto generateBegin = std::chrono::steady_clock::now();
  fw.model().warmGenerateCache();
  auto generateEnd = std::chrono::steady_clock::now();

  EvaluationReport report = fw.evaluate(0.25);
  auto end = std::chrono::steady_clock::now();
  (void)fw.saveModelCache();

  RunResult result;
  result.generateMs =
      std::chrono::duration<double, std::milli>(generateEnd - generateBegin)
          .count();
  result.totalMs =
      std::chrono::duration<double, std::milli>(end - begin).count();
  result.speedup = report.caymanSpeedup;
  result.stats = fw.modelCache()->stats();
  return result;
}

/// Flips the last byte of every snapshot in `dir`: lands in the last
/// record's payload, so its CRC rejects exactly that record.
void damageSnapshots(const std::string& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".cayc") continue;
    std::fstream file(entry.path(),
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(0, std::ios::end);
    std::streampos size = file.tellg();
    if (size <= 0) continue;
    file.seekg(-1, std::ios::end);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(-1, std::ios::end);
    file.write(&byte, 1);
  }
}

}  // namespace

int main() {
  // A spread of model-generation weights: tiny kernel, mid-size stencils,
  // and the heaviest generate() workloads in the suite.
  const std::vector<std::string> sample = {"atax", "fft", "jacobi-2d", "3mm",
                                           "cjpeg"};
  fs::path dir = fs::temp_directory_path() / "cayman_bench_cache";

  std::printf("Persistent model-cache warm start (25%% budget; gen = "
              "candidate-generation sweep, total = full evaluate)\n\n");
  std::printf("%-12s %9s %9s %9s %9s %9s %7s %7s %9s\n", "benchmark",
              "gen-c(ms)", "gen-w(ms)", "tot-c(ms)", "tot-w(ms)", "tot-d(ms)",
              "hits", "reject", "gen-win");

  bool identical = true;
  double coldGen = 0.0, warmGen = 0.0, coldTotal = 0.0, warmTotal = 0.0;
  for (const std::string& workload : sample) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    RunResult cold = runOnce(workload, dir.string());
    RunResult warm = runOnce(workload, dir.string());
    damageSnapshots(dir.string());
    RunResult damaged = runOnce(workload, dir.string());

    bool same = cold.speedup == warm.speedup && cold.speedup == damaged.speedup;
    identical = identical && same;
    coldGen += cold.generateMs;
    warmGen += warm.generateMs;
    coldTotal += cold.totalMs;
    warmTotal += warm.totalMs;
    std::printf("%-12s %9.2f %9.2f %9.1f %9.1f %9.1f %7llu %7llu %8.2fx%s\n",
                workload.c_str(), cold.generateMs, warm.generateMs,
                cold.totalMs, warm.totalMs, damaged.totalMs,
                static_cast<unsigned long long>(warm.stats.diskHits),
                static_cast<unsigned long long>(damaged.stats.rejectedRecords),
                warm.generateMs > 0 ? cold.generateMs / warm.generateMs : 0.0,
                same ? "" : "  MISMATCH");
  }
  fs::remove_all(dir);

  std::printf("\ngeneration sweep: cold %.2f ms, warm %.2f ms (%.2fx); "
              "full evaluate: cold %.1f ms, warm %.1f ms (%.2fx)\n",
              coldGen, warmGen, warmGen > 0 ? coldGen / warmGen : 0.0,
              coldTotal, warmTotal,
              warmTotal > 0 ? coldTotal / warmTotal : 0.0);
  if (!identical) {
    std::printf("ERROR: warm or damaged-warm evaluation diverged from cold\n");
    return 1;
  }
  std::printf("cold/warm/damaged evaluations identical on every workload\n");
  return 0;
}
