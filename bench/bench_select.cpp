// Selector micro-benchmarks (google-benchmark): the Algorithm 1 DP on the
// largest workloads in both engines, plus a synthetic wide-front ⊗ stress
// case. The Framework is built once per benchmark, so the model's generate
// cache is warm after the first iteration and the steady state measures the
// DP itself — the same quantity the select.dp span times now that candidate
// generation runs in the selector's pre-pass.
#include <benchmark/benchmark.h>

#include "cayman/framework.h"
#include "workloads/workloads.h"

namespace {

using namespace cayman;

select::SelectorParams paramsFor(const Framework& fw, double budgetRatio,
                                 select::SelectMode mode) {
  select::SelectorParams params;
  params.areaBudgetUm2 = fw.budgetUm2(budgetRatio);
  params.alpha = fw.options().alpha;
  params.pruneHotFraction = fw.options().pruneHotFraction;
  params.clockRatio = fw.options().clockRatio();
  params.mode = mode;
  return params;
}

// Full Algorithm 1 run (pre-pass + DP + materialization) on one workload.
void BM_SelectDp(benchmark::State& state, const char* workload,
                 select::SelectMode mode) {
  Framework fw(workloads::build(workload));
  select::CandidateSelector selector(fw.model(),
                                     paramsFor(fw, 0.65, mode));
  select::CandidateSelector::Stats stats;
  for (auto _ : state) {
    std::vector<select::Solution> front = selector.select(stats);
    benchmark::DoNotOptimize(front.size());
  }
  state.counters["front"] = static_cast<double>(stats.frontPeak);
  state.counters["pairs"] = static_cast<double>(stats.combinePairs);
}
BENCHMARK_CAPTURE(BM_SelectDp, cjpeg_frontier, "cjpeg",
                  select::SelectMode::Frontier);
BENCHMARK_CAPTURE(BM_SelectDp, cjpeg_reference, "cjpeg",
                  select::SelectMode::Reference);
BENCHMARK_CAPTURE(BM_SelectDp, 3mm_frontier, "3mm",
                  select::SelectMode::Frontier);
BENCHMARK_CAPTURE(BM_SelectDp, 3mm_reference, "3mm",
                  select::SelectMode::Reference);

// Synthetic wide-front stress: two strict Pareto fronts of `width`
// two-config solutions run through one ⊗ + α-filter step, the inner loop of
// the DP. The budget admits roughly half of the width² pairs, so the
// frontier path's early budget break-out is exercised, not bypassed.
constexpr double kRatio = 1.25;
constexpr double kAlpha = 1.12;

std::vector<accel::AcceleratorConfig> syntheticConfigs(size_t width,
                                                       double areaStep) {
  std::vector<accel::AcceleratorConfig> configs(2 * width);
  for (size_t i = 0; i < configs.size(); ++i) {
    accel::AcceleratorConfig& config = configs[i];
    config.areaUm2 = 40.0 + areaStep * static_cast<double>(i);
    config.cpuCycles = 4000.0 * static_cast<double>(i + 1);
    // savedCycles = cpuCycles * (1 - kRatio / 4): strictly increasing with
    // area, so pairwise-merged fronts stay strict Pareto fronts.
    config.cycles = config.cpuCycles / 4.0;
  }
  return configs;
}

std::vector<select::Solution> syntheticFront(
    const std::vector<accel::AcceleratorConfig>& configs) {
  std::vector<select::Solution> front;
  front.reserve(configs.size() / 2);
  for (size_t i = 0; i + 1 < configs.size(); i += 2) {
    front.push_back(
        select::Solution::merge(select::Solution::fromConfig(configs[i]),
                                select::Solution::fromConfig(configs[i + 1])));
  }
  return front;
}

std::vector<select::FrontierEntry> syntheticEntries(
    const std::vector<accel::AcceleratorConfig>& configs,
    select::SolutionArena& arena) {
  std::vector<select::FrontierEntry> front;
  front.reserve(configs.size() / 2);
  for (size_t i = 0; i + 1 < configs.size(); i += 2) {
    front.push_back(select::mergeEntries(
        select::entryFromConfig(configs[i], kRatio, arena),
        select::entryFromConfig(configs[i + 1], kRatio, arena), kRatio,
        arena));
  }
  return front;
}

double budgetFor(const std::vector<select::Solution>& front) {
  // The widest single pair's area: admits the lower-area part of the cross
  // product and rejects the rest via the break / per-pair filter.
  return front.back().areaUm2;
}

void BM_CombineWideFront_Reference(benchmark::State& state) {
  size_t width = static_cast<size_t>(state.range(0));
  std::vector<accel::AcceleratorConfig> configsA =
      syntheticConfigs(width, 37.0);
  std::vector<accel::AcceleratorConfig> configsB =
      syntheticConfigs(width, 53.0);
  std::vector<select::Solution> a = syntheticFront(configsA);
  std::vector<select::Solution> b = syntheticFront(configsB);
  double budget = budgetFor(b);
  uint64_t pairs = 0;
  for (auto _ : state) {
    std::vector<select::Solution> merged = select::filterByAlpha(
        select::combine(a, b, budget, kRatio, &pairs), kAlpha);
    benchmark::DoNotOptimize(merged.size());
  }
  state.counters["pairs/iter"] = static_cast<double>(
      pairs / std::max<uint64_t>(1, state.iterations()));
}
BENCHMARK(BM_CombineWideFront_Reference)->Arg(32)->Arg(96);

void BM_CombineWideFront_Frontier(benchmark::State& state) {
  size_t width = static_cast<size_t>(state.range(0));
  std::vector<accel::AcceleratorConfig> configsA =
      syntheticConfigs(width, 37.0);
  std::vector<accel::AcceleratorConfig> configsB =
      syntheticConfigs(width, 53.0);
  select::SolutionArena baseArena;
  std::vector<select::FrontierEntry> a = syntheticEntries(configsA, baseArena);
  std::vector<select::FrontierEntry> b = syntheticEntries(configsB, baseArena);
  double budget = b.back().areaUm2;  // same cut as the reference benchmark
  uint64_t pairs = 0;
  for (auto _ : state) {
    // Fresh arena per step (copied from the pristine base), as in a DP
    // combine: admitted pairs append nodes, dropped points keep theirs.
    select::SolutionArena arena = baseArena;
    std::vector<select::FrontierEntry> merged = select::filterByAlpha(
        select::combine(a, b, budget, kRatio, arena, &pairs), kAlpha);
    benchmark::DoNotOptimize(merged.size());
    benchmark::DoNotOptimize(arena.nodeCount());
  }
  state.counters["pairs/iter"] = static_cast<double>(
      pairs / std::max<uint64_t>(1, state.iterations()));
}
BENCHMARK(BM_CombineWideFront_Frontier)->Arg(32)->Arg(96);

}  // namespace

BENCHMARK_MAIN();
