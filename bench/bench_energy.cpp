// Extension bench: energy accounting per benchmark — the conservation-core
// motivation behind the paper's QsCores baseline [22][23]. Reports CPU
// energy displaced, accelerator energy spent (dynamic + leakage), and the
// energy-savings factor for the 25% budget solutions.
#include <cstdio>

#include "accel/energy.h"
#include "cayman/framework.h"
#include "workloads/workloads.h"

using namespace cayman;

int main() {
  std::printf("Energy extension: offloaded-work energy at the 25%% budget\n\n");
  std::printf("%-22s %12s %12s %12s %10s\n", "benchmark", "cpu(uJ)",
              "accel(uJ)", "idle-leak", "savings");

  double totalSavings = 0.0;
  int counted = 0;
  for (const auto& info : workloads::all()) {
    Framework fw(workloads::build(info.name));
    select::Solution best = fw.best(0.25);
    if (best.empty()) continue;
    accel::EnergyModel energy(fw.model());
    accel::EnergyReport report = energy.estimate(best, fw.totalCpuCycles());
    std::printf("%-22s %12.3f %12.3f %12.3f %9.2fx\n", info.name.c_str(),
                report.cpuEnergyUj, report.accelEnergyUj,
                report.idleLeakageUj, report.savingsFactor());
    totalSavings += report.savingsFactor();
    ++counted;
  }
  std::printf("\naverage energy-savings factor: %.2fx across %d benchmarks\n",
              totalSavings / counted, counted);
  std::printf("(extension beyond the paper: Cayman optimizes performance "
              "under area budgets; this closes the energy loop the QsCores "
              "line of work motivates.)\n");
  return 0;
}
