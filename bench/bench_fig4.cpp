// Reproduces Fig. 4: the impact of the data-access interfaces on the
// `y[i] = k*x[i] + b` loop under three control-flow implementations —
// sequential, pipelined, and unrolled-by-2.
//
// Paper reference points: sequential 6N (coupled) vs 4N (decoupled);
// pipelined II 3 (coupled) vs 1 (decoupled); unrolled 9(N/2) (coupled) vs
// 4(N/2) (scratchpad).
#include <cstdio>
#include <string>

#include "hls/scheduler.h"
#include "ir/verifier.h"
#include "support/thread_pool.h"
#include "workloads/kernel_builder.h"

using namespace cayman;

namespace {

std::unique_ptr<ir::Module> linearKernel(int64_t n) {
  auto module = std::make_unique<ir::Module>("linear");
  auto* x = module->addGlobal("x", ir::Type::f64(), static_cast<uint64_t>(n));
  auto* y = module->addGlobal("y", ir::Type::f64(), static_cast<uint64_t>(n));
  workloads::KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, n, "i");
  kb.storeAt(y, i,
             kb.ir().fadd(kb.ir().fmul(kb.loadAt(x, i), kb.ir().f64(2.0)),
                          kb.ir().f64(1.0)));
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);
  return module;
}

hls::IfaceAssignment assign(const ir::BasicBlock& body, hls::IfaceKind kind,
                            unsigned partitions) {
  hls::IfaceAssignment ifaces;
  for (const auto& inst : body.instructions()) {
    if (!inst->isMemoryAccess()) continue;
    hls::AccessIface iface;
    iface.kind = kind;
    iface.partitions = partitions;
    const ir::Value* ptr = inst->pointerOperand();
    while (const auto* gep = ir::dynCast<ir::Instruction>(ptr)) {
      ptr = gep->operand(0);
    }
    iface.array = ir::dynCast<ir::GlobalArray>(ptr);
    ifaces[inst.get()] = iface;
  }
  return ifaces;
}

}  // namespace

int main() {
  constexpr int64_t kN = 1024;
  auto module = linearKernel(kN);
  const ir::BasicBlock* body = module->entryFunction()->blockByName("i.body");

  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  hls::InterfaceTiming timing;
  hls::Scheduler scheduler(tech, timing, 2.0);  // 500 MHz

  std::printf("Fig. 4 reproduction: y[i]=k*x[i]+b, N=%lld, 500 MHz\n\n",
              static_cast<long long>(kN));
  std::printf("%-16s %-12s %14s %14s %12s\n", "control flow", "interface",
              "latency (cyc)", "cycles/iter", "paper shape");

  struct Case {
    const char* ctrl;
    const char* iface;
    hls::IfaceKind kind;
    unsigned unroll;
    bool pipelined;
    const char* paper;
  };
  const Case cases[] = {
      {"sequential", "coupled", hls::IfaceKind::Coupled, 1, false, "6N"},
      {"sequential", "decoupled", hls::IfaceKind::Decoupled, 1, false, "4N"},
      {"pipelined", "coupled", hls::IfaceKind::Coupled, 1, true, "II=3"},
      {"pipelined", "decoupled", hls::IfaceKind::Decoupled, 1, true, "II=1"},
      {"unrolled x2", "coupled", hls::IfaceKind::Coupled, 2, false, "9(N/2)"},
      {"unrolled x2", "scratchpad", hls::IfaceKind::Scratchpad, 2, false,
       "4(N/2)"},
  };

  // Each case schedules independently against the shared (read-only) block
  // and scheduler; lines are rendered per task and printed in case order.
  ThreadPool pool;
  std::vector<std::string> lines = parallelIndexMap(
      pool, std::size(cases), [&](size_t index) {
        const Case& c = cases[index];
        hls::IfaceAssignment ifaces =
            assign(*body, c.kind, /*partitions=*/c.unroll);
        hls::BlockSchedule sched =
            scheduler.scheduleBlock(*body, ifaces, c.unroll);
        uint64_t iterations = static_cast<uint64_t>(kN) / c.unroll;
        char line[128];
        if (c.pipelined) {
          unsigned ii = scheduler.resMII(*body, ifaces, c.unroll);
          uint64_t total = hls::Scheduler::pipelinedCycles(
              iterations, sched.latency + 1, ii);
          std::snprintf(line, sizeof(line),
                        "%-16s %-12s %14llu %14.2f %12s (II=%u)", c.ctrl,
                        c.iface, static_cast<unsigned long long>(total),
                        static_cast<double>(ii), c.paper, ii);
        } else {
          uint64_t total = iterations * (sched.latency + 1);  // +1: control
          double perIter =
              static_cast<double>(total) / static_cast<double>(kN);
          std::snprintf(line, sizeof(line), "%-16s %-12s %14llu %14.2f %12s",
                        c.ctrl, c.iface,
                        static_cast<unsigned long long>(total), perIter,
                        c.paper);
        }
        return std::string(line);
      });
  for (const std::string& line : lines) std::printf("%s\n", line.c_str());

  std::printf(
      "\nshape checks: decoupled < coupled sequentially; pipelined decoupled "
      "reaches II=1; banked scratchpad removes the unrolled port "
      "serialization.\n");
  return 0;
}
