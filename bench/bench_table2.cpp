// Reproduces Table II: per-benchmark speedup over NOVIA [21] and QsCores
// [23] under the 25% and 65% CVA6-tile area budgets, the selected kernel
// configuration counts (#SB, #PR), the interface mix (#C, #D, #S), the area
// saving from accelerator merging, and the framework runtime.
//
// Absolute magnitudes differ from the paper (simulated substrate); the
// reproduction target is the shape: Cayman > QsCores > NOVIA everywhere,
// larger budgets never worse, decoupled/scratchpad dominating the interface
// mix, and merging saving a large fraction of area.
#include <chrono>
#include <cstdio>

#include "cayman/framework.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

namespace {

struct Row {
  std::string suite;
  std::string name;
  cayman::EvaluationReport small;
  cayman::EvaluationReport large;
  double seconds = 0.0;
};

void printHeader() {
  std::printf(
      "%-12s %-20s | %9s %9s %4s %4s %4s %4s %4s %7s | %9s %9s %4s %4s %4s "
      "%4s %4s %7s | %8s\n",
      "Suite", "Benchmark", "over[21]", "over[23]", "#SB", "#PR", "#C", "#D",
      "#S", "Save%", "over[21]", "over[23]", "#SB", "#PR", "#C", "#D", "#S",
      "Save%", "Time(s)");
  std::printf("%.*s\n", 170,
              "--------------------------------------------------------------"
              "--------------------------------------------------------------"
              "----------------------------------------------");
}

void printRow(const Row& row) {
  auto side = [](const cayman::EvaluationReport& r) {
    std::printf("%9.1f %9.1f %4u %4u %4u %4u %4u %7.1f", r.overNovia,
                r.overQsCores, r.numSeqBlocks, r.numPipelinedRegions,
                r.numCoupled, r.numDecoupled, r.numScratchpad,
                r.areaSavingPercent);
  };
  std::printf("%-12s %-20s | ", row.suite.c_str(), row.name.c_str());
  side(row.small);
  std::printf(" | ");
  side(row.large);
  std::printf(" | %8.2f\n", row.seconds);
}

}  // namespace

int main() {
  std::printf("Table II reproduction: area budgets 25%% and 65%% of a CVA6 "
              "tile (paper section IV-B)\n\n");
  printHeader();

  // One task per workload; results land in registry order, so the table is
  // identical to the sequential one (up to the wall-clock column).
  const auto& workloads = cayman::workloads::all();
  cayman::ThreadPool pool;
  std::vector<Row> rows =
      cayman::parallelIndexMap(pool, workloads.size(), [&](size_t i) {
        const auto& info = workloads[i];
        auto start = std::chrono::steady_clock::now();
        cayman::Framework framework(cayman::workloads::build(info.name));
        Row row;
        row.suite = info.suite;
        row.name = info.name;
        row.small = framework.evaluate(0.25);
        row.large = framework.evaluate(0.65);
        row.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        return row;
      });
  for (const Row& row : rows) printRow(row);

  // Averages (the paper's final row).
  Row avg;
  avg.suite = "average";
  double n = static_cast<double>(rows.size());
  auto accumulate = [n](cayman::EvaluationReport& into,
                        const std::vector<Row>& all, bool large) {
    double overN = 0, overQ = 0, save = 0;
    double sb = 0, pr = 0, c = 0, d = 0, s = 0;
    for (const Row& row : all) {
      const cayman::EvaluationReport& r = large ? row.large : row.small;
      overN += r.overNovia;
      overQ += r.overQsCores;
      save += r.areaSavingPercent;
      sb += r.numSeqBlocks;
      pr += r.numPipelinedRegions;
      c += r.numCoupled;
      d += r.numDecoupled;
      s += r.numScratchpad;
    }
    into.overNovia = overN / n;
    into.overQsCores = overQ / n;
    into.areaSavingPercent = save / n;
    into.numSeqBlocks = static_cast<unsigned>(sb / n);
    into.numPipelinedRegions = static_cast<unsigned>(pr / n);
    into.numCoupled = static_cast<unsigned>(c / n);
    into.numDecoupled = static_cast<unsigned>(d / n);
    into.numScratchpad = static_cast<unsigned>(s / n);
  };
  accumulate(avg.small, rows, false);
  accumulate(avg.large, rows, true);
  for (const Row& row : rows) avg.seconds += row.seconds / n;
  std::printf("%.*s\n", 170,
              "--------------------------------------------------------------"
              "--------------------------------------------------------------"
              "----------------------------------------------");
  printRow(avg);

  std::printf(
      "\npaper averages for comparison: 25%% -> 14.4x/8.0x, #SB 22, #PR 14, "
      "C/D/S 7/27/6, save 36%%; 65%% -> 27.2x/15.0x, #SB 28, #PR 16, C/D/S "
      "10/25/18, save 35%%; runtime 70.8s\n");
  return 0;
}
