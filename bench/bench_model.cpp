// Accelerator-model micro-benchmarks (google-benchmark): candidate
// generation on the largest workloads in both design-space engines, cold
// (fresh model, eager warmGenerateCache over every candidate region) and
// warm (memoized generate() reads), plus a synthetic deep-loop-nest stress
// kernel whose every level is a candidate region. The per-iteration counters
// report the estimate()/scheduleBlock() totals behind BENCH_model.json.
#include <benchmark/benchmark.h>

#include "cayman/framework.h"
#include "ir/verifier.h"
#include "workloads/kernel_builder.h"
#include "workloads/workloads.h"

namespace {

using namespace cayman;

FrameworkOptions optionsFor(accel::GenerateMode mode) {
  FrameworkOptions options;
  options.generateMode = mode;
  return options;
}

// Cold generation: a fresh model per iteration (the Framework's profile and
// analyses are reused; the model rebuilds its own caches), then an eager
// sweep over every candidate region. This is the dominant model cost of one
// evaluate-all row.
void BM_GenerateCold(benchmark::State& state, const char* workload,
                     accel::GenerateMode mode) {
  Framework fw(workloads::build(workload), optionsFor(mode));
  accel::ModelParams params = fw.model().params();
  uint64_t estimates = 0;
  uint64_t schedules = 0;
  for (auto _ : state) {
    accel::AcceleratorModel model(fw.wpst(), fw.profile(), fw.tech(),
                                  hls::InterfaceTiming{}, params);
    model.warmGenerateCache();
    estimates = model.estimateCalls();
    schedules = model.scheduleBlockCalls();
    benchmark::DoNotOptimize(model.candidatesTotal());
  }
  state.counters["estimates"] = static_cast<double>(estimates);
  state.counters["schedules"] = static_cast<double>(schedules);
}
BENCHMARK_CAPTURE(BM_GenerateCold, cjpeg_guided, "cjpeg",
                  accel::GenerateMode::Guided);
BENCHMARK_CAPTURE(BM_GenerateCold, cjpeg_reference, "cjpeg",
                  accel::GenerateMode::Reference);
BENCHMARK_CAPTURE(BM_GenerateCold, 3mm_guided, "3mm",
                  accel::GenerateMode::Guided);
BENCHMARK_CAPTURE(BM_GenerateCold, 3mm_reference, "3mm",
                  accel::GenerateMode::Reference);

// Warm generation: every call is a memoized cache read; this is what the
// selector's pre-pass sees on repeated budget sweeps over one Framework.
void BM_GenerateWarm(benchmark::State& state, const char* workload,
                     accel::GenerateMode mode) {
  Framework fw(workloads::build(workload), optionsFor(mode));
  fw.model().warmGenerateCache();
  for (auto _ : state) {
    size_t configs = 0;
    for (const analysis::Region* region : fw.wpst().allRegions()) {
      configs += fw.model().generate(region).size();
    }
    benchmark::DoNotOptimize(configs);
  }
}
BENCHMARK_CAPTURE(BM_GenerateWarm, cjpeg_guided, "cjpeg",
                  accel::GenerateMode::Guided);
BENCHMARK_CAPTURE(BM_GenerateWarm, cjpeg_reference, "cjpeg",
                  accel::GenerateMode::Reference);

// Synthetic deep-nest stress: depth-4 loop nest over f64 arrays with an
// unrollable, pipelineable innermost body. Every nest level is its own
// candidate region, so the ladder walk and the schedule cache are exercised
// on a worst-case region tree rather than a real kernel's mix.
std::unique_ptr<ir::Module> deepNestKernel(int64_t n) {
  auto module = std::make_unique<ir::Module>("deepnest");
  auto* a = module->addGlobal("A", ir::Type::f64(),
                              static_cast<uint64_t>(n * n));
  auto* b = module->addGlobal("B", ir::Type::f64(),
                              static_cast<uint64_t>(n * n));
  workloads::KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, n, "i");
  ir::Value* j = kb.beginLoop(0, n, "j");
  ir::Value* k = kb.beginLoop(0, n, "k");
  ir::Value* l = kb.beginLoop(0, n, "l");
  ir::Value* idx = kb.idx2(k, l, n);
  ir::Value* v = kb.ir().fadd(kb.ir().fmul(kb.loadAt(a, idx), kb.loadAt(b, idx)),
                              kb.loadAt(a, kb.idx2(i, j, n)));
  kb.storeAt(b, idx, v);
  kb.endLoop();
  kb.endLoop();
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);
  return module;
}

void BM_GenerateDeepNest(benchmark::State& state, accel::GenerateMode mode) {
  Framework fw(deepNestKernel(6), optionsFor(mode));
  accel::ModelParams params = fw.model().params();
  uint64_t estimates = 0;
  uint64_t schedules = 0;
  for (auto _ : state) {
    accel::AcceleratorModel model(fw.wpst(), fw.profile(), fw.tech(),
                                  hls::InterfaceTiming{}, params);
    model.warmGenerateCache();
    estimates = model.estimateCalls();
    schedules = model.scheduleBlockCalls();
    benchmark::DoNotOptimize(model.candidatesTotal());
  }
  state.counters["estimates"] = static_cast<double>(estimates);
  state.counters["schedules"] = static_cast<double>(schedules);
}
BENCHMARK_CAPTURE(BM_GenerateDeepNest, guided, accel::GenerateMode::Guided);
BENCHMARK_CAPTURE(BM_GenerateDeepNest, reference,
                  accel::GenerateMode::Reference);

}  // namespace

BENCHMARK_MAIN();
