// Ablation A: the α-filter of Algorithm 1. Sweeps α and reports the
// Pareto-front size, configs explored, selection wall time, and the best
// speedup — showing the filter buys large runtime savings at negligible
// quality loss (the paper's log_α(A) bound in §III-D).
#include <chrono>
#include <cstdio>
#include <string>

#include "cayman/framework.h"
#include "select/selector.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

using namespace cayman;

int main() {
  const char* benchmarks[] = {"3mm", "cjpeg", "deriche"};
  const double alphas[] = {1.0, 1.02, 1.05, 1.12, 1.3, 1.6, 2.0};

  std::printf("Ablation: alpha-filter sweep (budget 65%%)\n\n");
  std::printf("%-10s %6s %10s %10s %12s %12s\n", "benchmark", "alpha",
              "front", "configs", "time(us)", "speedup");

  // One task per benchmark: the alpha sweep shares one Framework (and its
  // generate cache), so only the first selector run derives configurations.
  ThreadPool pool;
  std::vector<std::string> blocks =
      parallelIndexMap(pool, std::size(benchmarks), [&](size_t index) {
        const char* name = benchmarks[index];
        Framework fw(workloads::build(name));
        std::string out;
        char line[128];
        for (double alpha : alphas) {
          select::SelectorParams params;
          params.areaBudgetUm2 = fw.budgetUm2(0.65);
          params.alpha = alpha;
          params.clockRatio = fw.options().clockRatio();
          select::CandidateSelector selector(fw.model(), params);

          select::CandidateSelector::Stats stats;
          auto start = std::chrono::steady_clock::now();
          std::vector<select::Solution> front = selector.select(stats);
          double micros = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count();
          select::Solution best = selector.best(stats);
          std::snprintf(line, sizeof(line),
                        "%-10s %6.2f %10zu %10d %12.0f %12.2f\n", name,
                        alpha, front.size(), stats.configsGenerated, micros,
                        fw.speedupOf(best));
          out += line;
        }
        out += '\n';
        return out;
      });
  for (const std::string& block : blocks) std::fputs(block.c_str(), stdout);
  std::printf("expected shape: larger alpha shrinks the front and speeds up "
              "selection; best speedup degrades only marginally.\n");
  return 0;
}
