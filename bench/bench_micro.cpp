// Substrate micro-benchmarks (google-benchmark): interpreter throughput,
// wPST construction, analysis passes, block scheduling, and the selection
// DP. These bound the framework runtime column of Table II.
#include <benchmark/benchmark.h>

#include "cayman/framework.h"
#include "workloads/workloads.h"

namespace {

using namespace cayman;

// Decoded engine (the default): pre-decoded micro-op stream, hash-free hot
// loop. The insts/s counter accumulates across iterations so the rate is the
// true dynamic-instruction throughput.
void BM_InterpreterRun(benchmark::State& state) {
  auto module = workloads::build("atax");
  sim::Interpreter interp(*module);
  uint64_t instructions = 0;
  for (auto _ : state) {
    sim::Interpreter::Result result = interp.run();
    instructions += result.instructions;
    benchmark::DoNotOptimize(result.totalCycles);
  }
  state.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterRun);

// Tree-walking reference engine, kept for before/after comparison and as the
// golden-equivalence oracle.
void BM_InterpreterRunReference(benchmark::State& state) {
  auto module = workloads::build("atax");
  sim::Interpreter interp(*module, sim::CpuCostModel::cva6(),
                          sim::Interpreter::ExecMode::Reference);
  uint64_t instructions = 0;
  for (auto _ : state) {
    sim::Interpreter::Result result = interp.run();
    instructions += result.instructions;
    benchmark::DoNotOptimize(result.totalCycles);
  }
  state.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterRunReference);

// One-time decode cost (amortized over every subsequent run): lowers all
// functions of the workload to micro-op streams from scratch each iteration.
void BM_InterpreterDecode(benchmark::State& state) {
  auto module = workloads::build("cjpeg");
  sim::Interpreter interp(*module);
  sim::Interpreter::DecodeStats stats;
  uint64_t decodedUops = 0;
  for (auto _ : state) {
    stats = interp.predecodeAll(/*force=*/true);
    decodedUops += stats.microOps;
    benchmark::DoNotOptimize(stats.microOps);
  }
  state.counters["uops"] = static_cast<double>(stats.microOps);
  state.counters["uops/s"] = benchmark::Counter(
      static_cast<double>(decodedUops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterDecode);

void BM_WPstConstruction(benchmark::State& state) {
  auto module = workloads::build("cjpeg");
  for (auto _ : state) {
    analysis::WPst wpst(*module);
    benchmark::DoNotOptimize(wpst.allRegions().size());
  }
}
BENCHMARK(BM_WPstConstruction);

void BM_ScalarEvolutionAndDeps(benchmark::State& state) {
  auto module = workloads::build("3mm");
  analysis::WPst wpst(*module);
  const ir::Function* f = module->entryFunction();
  for (auto _ : state) {
    analysis::ScalarEvolution scev(*f, wpst.analyses(f));
    analysis::MemoryAnalysis mem(*f, wpst.analyses(f), scev);
    benchmark::DoNotOptimize(mem.accesses().size());
  }
}
BENCHMARK(BM_ScalarEvolutionAndDeps);

void BM_BlockScheduling(benchmark::State& state) {
  auto module = workloads::build("3mm");
  const ir::BasicBlock* body =
      module->entryFunction()->blockByName("mm1.k.body");
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  hls::Scheduler scheduler(tech, hls::InterfaceTiming{}, 2.0);
  unsigned unroll = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    hls::BlockSchedule sched = scheduler.scheduleBlock(*body, {}, unroll);
    benchmark::DoNotOptimize(sched.latency);
  }
}
BENCHMARK(BM_BlockScheduling)->Arg(1)->Arg(4)->Arg(16);

void BM_SelectionDp(benchmark::State& state) {
  Framework fw(workloads::build("deriche"));
  for (auto _ : state) {
    select::Solution best = fw.best(0.65);
    benchmark::DoNotOptimize(best.areaUm2);
  }
}
BENCHMARK(BM_SelectionDp);

void BM_EndToEndEvaluate(benchmark::State& state) {
  for (auto _ : state) {
    Framework fw(workloads::build("mvt"));
    EvaluationReport report = fw.evaluate(0.25);
    benchmark::DoNotOptimize(report.caymanSpeedup);
  }
}
BENCHMARK(BM_EndToEndEvaluate);

void BM_Merging(benchmark::State& state) {
  Framework fw(workloads::build("3mm"));
  select::Solution best = fw.best(0.65);
  merge::AcceleratorMerger merger(fw.tech());
  for (auto _ : state) {
    merge::MergeResult result = merger.run(best);
    benchmark::DoNotOptimize(result.areaAfterUm2);
  }
}
BENCHMARK(BM_Merging);

}  // namespace

BENCHMARK_MAIN();
