// Merge micro-benchmarks (google-benchmark): the full merge phase on real
// workloads in both matching engines, the matching step alone on
// pre-extracted units (warm — no selection or extraction in the timed loop),
// and a synthetic many-accelerator stress case where the O(U^2)-per-round
// reference rescan separates from the edge-heap engine.
#include <benchmark/benchmark.h>

#include "cayman/framework.h"
#include "workloads/workloads.h"

namespace {

using namespace cayman;

// Cold: the full merge phase (unit extraction + matching + group
// accounting), as the pipeline runs it per (workload, budget).
void BM_MergeRun(benchmark::State& state, const char* workload,
                 merge::MergeMode mode) {
  Framework fw(workloads::build(workload));
  select::Solution best = fw.best(0.65);
  merge::AcceleratorMerger merger(fw.tech(), mode);
  merge::MergeResult result;
  for (auto _ : state) {
    result = merger.run(best);
    benchmark::DoNotOptimize(result.areaAfterUm2);
  }
  state.counters["units"] = static_cast<double>(result.unitsExtracted);
  state.counters["steps"] = static_cast<double>(result.mergeSteps);
  state.counters["scored"] = static_cast<double>(result.pairsScored);
}
BENCHMARK_CAPTURE(BM_MergeRun, cjpeg_graph, "cjpeg",
                  merge::MergeMode::Graph);
BENCHMARK_CAPTURE(BM_MergeRun, cjpeg_reference, "cjpeg",
                  merge::MergeMode::Reference);
BENCHMARK_CAPTURE(BM_MergeRun, 3mm_graph, "3mm", merge::MergeMode::Graph);
BENCHMARK_CAPTURE(BM_MergeRun, 3mm_reference, "3mm",
                  merge::MergeMode::Reference);

// Warm: matching only, on units extracted once outside the loop. Each
// iteration copies the pristine units (engines mutate them in place); the
// copy is cheap next to the scoring work being measured.
void BM_MergeMatch(benchmark::State& state, const char* workload,
                   merge::MergeMode mode) {
  Framework fw(workloads::build(workload));
  select::Solution best = fw.best(0.65);
  std::vector<merge::Unit> pristine = merge::extractUnits(best);
  merge::MatchStats stats;
  for (auto _ : state) {
    std::vector<merge::Unit> units = pristine;
    merge::UnionFind groups(best.accelerators.size());
    stats = {};
    double saving =
        mode == merge::MergeMode::Graph
            ? merge::matchUnitsGraph(units, fw.tech(), groups, stats)
            : merge::matchUnitsReference(units, fw.tech(), groups, stats);
    benchmark::DoNotOptimize(saving);
  }
  state.counters["units"] = static_cast<double>(pristine.size());
  state.counters["steps"] = static_cast<double>(stats.steps);
  state.counters["scored"] = static_cast<double>(stats.pairsScored);
}
BENCHMARK_CAPTURE(BM_MergeMatch, cjpeg_graph, "cjpeg",
                  merge::MergeMode::Graph);
BENCHMARK_CAPTURE(BM_MergeMatch, cjpeg_reference, "cjpeg",
                  merge::MergeMode::Reference);
BENCHMARK_CAPTURE(BM_MergeMatch, 3mm_graph, "3mm", merge::MergeMode::Graph);
BENCHMARK_CAPTURE(BM_MergeMatch, 3mm_reference, "3mm",
                  merge::MergeMode::Reference);

// Synthetic many-accelerator stress: `accels` accelerators with 1-3 units
// each and overlapping seeded op mixes, so long merge chains form. This is
// the population-scale regime the tentpole targets; the reference engine is
// quadratic per merge step here.
std::vector<merge::Unit> syntheticUnits(size_t accels) {
  uint64_t lcg = 99991;
  auto next = [&lcg]() {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg >> 33;
  };
  std::vector<merge::Unit> units;
  for (size_t a = 0; a < accels; ++a) {
    size_t perAccel = 1 + next() % 3;
    for (size_t u = 0; u < perAccel; ++u) {
      merge::Unit unit;
      unit.acceleratorIndex = a;
      unit.ops[{ir::Opcode::FMul, true}] = 1 + next() % 4;
      if (next() % 2) unit.ops[{ir::Opcode::FAdd, true}] = 1 + next() % 3;
      if (next() % 3 == 0) unit.ops[{ir::Opcode::FDiv, true}] = 1;
      units.push_back(std::move(unit));
    }
  }
  return units;
}

void BM_MergeSyntheticMatch(benchmark::State& state, merge::MergeMode mode) {
  size_t accels = static_cast<size_t>(state.range(0));
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  std::vector<merge::Unit> pristine = syntheticUnits(accels);
  merge::MatchStats stats;
  for (auto _ : state) {
    std::vector<merge::Unit> units = pristine;
    merge::UnionFind groups(accels);
    stats = {};
    double saving =
        mode == merge::MergeMode::Graph
            ? merge::matchUnitsGraph(units, tech, groups, stats)
            : merge::matchUnitsReference(units, tech, groups, stats);
    benchmark::DoNotOptimize(saving);
  }
  state.counters["units"] = static_cast<double>(pristine.size());
  state.counters["steps"] = static_cast<double>(stats.steps);
  state.counters["scored"] = static_cast<double>(stats.pairsScored);
}
BENCHMARK_CAPTURE(BM_MergeSyntheticMatch, graph, merge::MergeMode::Graph)
    ->Arg(24)
    ->Arg(96)
    ->Arg(384);
BENCHMARK_CAPTURE(BM_MergeSyntheticMatch, reference,
                  merge::MergeMode::Reference)
    ->Arg(24)
    ->Arg(96);

}  // namespace

BENCHMARK_MAIN();
