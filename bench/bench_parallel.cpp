// Parallelism benchmarks behind BENCH_parallel.json:
//   1. stall overlap — two workloads carrying injected 50 ms generate
//      stalls, evaluated at jobs=1 then jobs=2; the elapsed ratio proves
//      independent cold generations overlap (sleeps overlap even on one
//      hardware core, so the ratio is meaningful anywhere),
//   2. work-stealing traffic — pool.tasks / pool.steals / pool.tasks_nested
//      for a pooled evaluate-all over a workload subset,
//   3. LPT vs FIFO — synthetic makespan of one long and many short tasks on
//      two workers, submitted in registry order vs longest-processing-time
//      order (the driver's submitOrder heuristic).
//
// Order matters: the jobs=1 run must come first because the process-wide
// shared pool grows and never shrinks.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cayman/driver.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace {

using namespace cayman;

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void benchStallOverlap() {
  setenv("CAYMAN_INJECT_SLOW", "atax:generate:50000,bicg:generate:50000", 1);
  const std::vector<std::string> names = {"atax", "bicg"};

  auto start = std::chrono::steady_clock::now();
  std::vector<WorkloadEvaluation> serial = evaluateWorkloads(names, 0.25, 1);
  double serialSeconds = secondsSince(start);

  start = std::chrono::steady_clock::now();
  std::vector<WorkloadEvaluation> parallel =
      evaluateWorkloads(names, 0.25, 2);
  double parallelSeconds = secondsSince(start);
  unsetenv("CAYMAN_INJECT_SLOW");

  bool identical =
      formatEvaluationTable(serial) == formatEvaluationTable(parallel);
  std::printf("stall_overlap: jobs1_s=%.3f jobs2_s=%.3f ratio=%.3f "
              "identical=%s\n",
              serialSeconds, parallelSeconds, parallelSeconds / serialSeconds,
              identical ? "true" : "false");
}

void benchStealTraffic() {
  support::trace::TraceRecorder& recorder =
      support::trace::TraceRecorder::global();
  recorder.clear();
  recorder.setEnabled(true);
  const std::vector<std::string> names = {"atax", "bicg", "mvt", "doitgen",
                                          "3mm", "symm", "syrk", "trmm"};
  (void)evaluateWorkloads(names, 0.25, 4);
  uint64_t tasks = 0;
  uint64_t steals = 0;
  uint64_t nested = 0;
  for (const auto& [name, value] : recorder.globalCounters()) {
    if (name == "pool.tasks") tasks = value;
    if (name == "pool.steals") steals = value;
    if (name == "pool.tasks_nested") nested = value;
  }
  recorder.setEnabled(false);
  recorder.clear();
  std::printf("steal_traffic: workloads=%zu jobs=4 pool_tasks=%llu "
              "pool_steals=%llu pool_tasks_nested=%llu\n",
              names.size(), static_cast<unsigned long long>(tasks),
              static_cast<unsigned long long>(steals),
              static_cast<unsigned long long>(nested));
}

double syntheticMakespan(const std::vector<size_t>& submitOrder) {
  // One 80 ms task and seven 10 ms tasks on two workers. FIFO runs the
  // short tasks first and the long one last (makespan ~110 ms); LPT fronts
  // the long task (makespan ~80 ms, the two-worker optimum).
  static const std::vector<unsigned> kDurationsMs = {10, 10, 10, 10,
                                                     10, 10, 10, 80};
  ThreadPool pool(2);
  auto start = std::chrono::steady_clock::now();
  parallelIndexMap(
      pool, kDurationsMs.size(),
      [](size_t i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kDurationsMs[i]));
        return i;
      },
      submitOrder);
  return secondsSince(start);
}

void benchLptVsFifo() {
  double fifo = syntheticMakespan({});
  double lpt = syntheticMakespan({7, 0, 1, 2, 3, 4, 5, 6});
  std::printf("lpt_vs_fifo: fifo_s=%.3f lpt_s=%.3f speedup=%.2fx\n", fifo,
              lpt, fifo / lpt);
}

}  // namespace

int main() {
  benchStallOverlap();
  benchStealTraffic();
  benchLptVsFifo();
  return 0;
}
