// Reproduces Fig. 6: speedup-vs-area Pareto fronts of NOVIA, QsCores,
// coupled-only Cayman, and full Cayman for one benchmark per suite.
//
// The paper's shape: NOVIA points cluster in the lower-left; QsCores scales
// poorly with area; full Cayman dominates; coupled-only trails full Cayman
// except on loops-all-mid-10k-sp where FP recurrences bound the II anyway.
#include <cstdio>

#include "cayman/framework.h"
#include "workloads/workloads.h"

using namespace cayman;

namespace {

void printSeries(const char* label,
                 const std::vector<std::pair<double, double>>& points) {
  std::printf("  %s:\n", label);
  for (const auto& [areaRatio, speedup] : points) {
    std::printf("    area=%.4f speedup=%.3f\n", areaRatio, speedup);
  }
}

}  // namespace

int main() {
  const char* benchmarks[] = {"3mm", "fft", "epic", "loops-all-mid-10k-sp"};
  const double budgetRatio = 0.8;  // sweep the full x-axis of the figure

  std::printf("Fig. 6 reproduction: Pareto fronts (x: area / CVA6 tile, "
              "y: whole-program speedup)\n");

  for (const char* name : benchmarks) {
    std::printf("\n== %s ==\n", name);

    Framework full(workloads::build(name));
    FrameworkOptions coupledOptions;
    coupledOptions.coupledOnly = true;
    Framework coupled(workloads::build(name), coupledOptions);

    double tile = full.tech().cva6TileAreaUm2;
    double tAll = full.totalCpuCycles();
    double ratio = full.options().clockRatio();

    std::vector<std::pair<double, double>> series;

    // NOVIA: greedy CFU prefix points.
    for (const auto& p : full.novia().paretoFront(budgetRatio * tile)) {
      series.emplace_back(p.areaUm2 / tile, p.speedup(tAll));
    }
    printSeries("NOVIA", series);

    // QsCores: sequential + scan-chain solutions.
    series.clear();
    for (const auto& s :
         full.qscores().paretoFront(budgetRatio * tile, ratio)) {
      series.emplace_back(s.areaUm2 / tile, s.speedup(tAll, ratio));
    }
    printSeries("QsCores", series);

    // Coupled-only Cayman (interface-specialization ablation).
    series.clear();
    for (const auto& s : coupled.explore(budgetRatio)) {
      series.emplace_back(s.areaUm2 / tile, coupled.speedupOf(s));
    }
    printSeries("Cayman (coupled-only)", series);

    // Full Cayman.
    series.clear();
    for (const auto& s : full.explore(budgetRatio)) {
      series.emplace_back(s.areaUm2 / tile, full.speedupOf(s));
    }
    printSeries("Cayman (full)", series);

    // Shape summary for quick eyeballing.
    double bestFull = full.speedupOf(full.best(budgetRatio));
    double bestCoupled = coupled.speedupOf(coupled.best(budgetRatio));
    double bestNovia = full.novia().best(budgetRatio * tile).speedup(tAll);
    double bestQs =
        full.qscores().best(budgetRatio * tile, ratio).speedup(tAll, ratio);
    std::printf("  best: full=%.2fx coupled-only=%.2fx qscores=%.2fx "
                "novia=%.2fx\n",
                bestFull, bestCoupled, bestQs, bestNovia);
  }
  return 0;
}
