// Reproduces Fig. 6: speedup-vs-area Pareto fronts of NOVIA, QsCores,
// coupled-only Cayman, and full Cayman for one benchmark per suite.
//
// The paper's shape: NOVIA points cluster in the lower-left; QsCores scales
// poorly with area; full Cayman dominates; coupled-only trails full Cayman
// except on loops-all-mid-10k-sp where FP recurrences bound the II anyway.
#include <cstdio>
#include <string>

#include "cayman/framework.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

using namespace cayman;

namespace {

std::string renderSeries(const char* label,
                         const std::vector<std::pair<double, double>>& points) {
  std::string out = "  " + std::string(label) + ":\n";
  char line[64];
  for (const auto& [areaRatio, speedup] : points) {
    std::snprintf(line, sizeof(line), "    area=%.4f speedup=%.3f\n",
                  areaRatio, speedup);
    out += line;
  }
  return out;
}

std::string renderBenchmark(const char* name, double budgetRatio) {
  std::string out = "\n== " + std::string(name) + " ==\n";

  Framework full(workloads::build(name));
  FrameworkOptions coupledOptions;
  coupledOptions.coupledOnly = true;
  Framework coupled(workloads::build(name), coupledOptions);

  double tile = full.tech().cva6TileAreaUm2;
  double tAll = full.totalCpuCycles();
  double ratio = full.options().clockRatio();

  std::vector<std::pair<double, double>> series;

  // NOVIA: greedy CFU prefix points.
  for (const auto& p : full.novia().paretoFront(budgetRatio * tile)) {
    series.emplace_back(p.areaUm2 / tile, p.speedup(tAll));
  }
  out += renderSeries("NOVIA", series);

  // QsCores: sequential + scan-chain solutions.
  series.clear();
  for (const auto& s : full.qscores().paretoFront(budgetRatio * tile, ratio)) {
    series.emplace_back(s.areaUm2 / tile, s.speedup(tAll, ratio));
  }
  out += renderSeries("QsCores", series);

  // Coupled-only Cayman (interface-specialization ablation).
  series.clear();
  for (const auto& s : coupled.explore(budgetRatio)) {
    series.emplace_back(s.areaUm2 / tile, coupled.speedupOf(s));
  }
  out += renderSeries("Cayman (coupled-only)", series);

  // Full Cayman.
  series.clear();
  for (const auto& s : full.explore(budgetRatio)) {
    series.emplace_back(s.areaUm2 / tile, full.speedupOf(s));
  }
  out += renderSeries("Cayman (full)", series);

  // Shape summary for quick eyeballing.
  double bestFull = full.speedupOf(full.best(budgetRatio));
  double bestCoupled = coupled.speedupOf(coupled.best(budgetRatio));
  double bestNovia = full.novia().best(budgetRatio * tile).speedup(tAll);
  double bestQs =
      full.qscores().best(budgetRatio * tile, ratio).speedup(tAll, ratio);
  char line[96];
  std::snprintf(line, sizeof(line),
                "  best: full=%.2fx coupled-only=%.2fx qscores=%.2fx "
                "novia=%.2fx\n",
                bestFull, bestCoupled, bestQs, bestNovia);
  out += line;
  return out;
}

}  // namespace

int main() {
  const char* benchmarks[] = {"3mm", "fft", "epic", "loops-all-mid-10k-sp"};
  const double budgetRatio = 0.8;  // sweep the full x-axis of the figure

  std::printf("Fig. 6 reproduction: Pareto fronts (x: area / CVA6 tile, "
              "y: whole-program speedup)\n");

  ThreadPool pool;
  std::vector<std::string> blocks = parallelIndexMap(
      pool, std::size(benchmarks),
      [&](size_t i) { return renderBenchmark(benchmarks[i], budgetRatio); });
  for (const std::string& block : blocks) std::fputs(block.c_str(), stdout);
  return 0;
}
