// Ablation C: accelerator merging (paper §III-E). Reports per-benchmark
// area before/after merging, the reusable accelerator count, and how many
// kernels each reusable accelerator serves — the paper's headline being 36%
// average saving, 74% on 3mm's three identical matmuls, and ~3 regions per
// reusable accelerator.
#include <cstdio>
#include <string>

#include "cayman/framework.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

using namespace cayman;

namespace {

struct MergeRow {
  std::string line;  // empty when the workload selected no kernels
  double savingPercent = 0.0;
  bool selected = false;
};

}  // namespace

int main() {
  std::printf("Ablation: accelerator merging on/off (budget 65%%)\n\n");
  std::printf("%-20s %8s %12s %12s %8s %10s %12s\n", "benchmark", "kernels",
              "area-before", "area-after", "save%", "reusable",
              "kern/reuse");

  const auto& registry = workloads::all();
  ThreadPool pool;
  std::vector<MergeRow> rows =
      parallelIndexMap(pool, registry.size(), [&](size_t i) {
        const auto& info = registry[i];
        Framework fw(workloads::build(info.name));
        select::Solution best = fw.best(0.65);
        MergeRow row;
        if (best.empty()) return row;
        merge::MergeResult merged = fw.mergeSolution(best);
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%-20s %8zu %12.0f %12.0f %8.1f %10d %12.2f\n",
                      info.name.c_str(), best.accelerators.size(),
                      merged.areaBeforeUm2, merged.areaAfterUm2,
                      merged.savingPercent(), merged.reusableAccelerators,
                      merged.avgKernelsPerReusable);
        row.line = line;
        row.savingPercent = merged.savingPercent();
        row.selected = true;
        return row;
      });

  double totalSave = 0.0;
  int count = 0;
  for (const MergeRow& row : rows) {
    if (!row.selected) continue;
    std::fputs(row.line.c_str(), stdout);
    totalSave += row.savingPercent;
    ++count;
  }
  std::printf("\naverage saving: %.1f%% (paper: 35%% at 65%% budget)\n",
              totalSave / count);
  return 0;
}
