// cache_check: standalone validator for Cayman model-cache snapshots
// (support/blobio.h framing + accel/model_cache.h payloads).
//
//   cache_check <snapshot.cayc> [more...]
//
// For each file it reports the stream header, the meta record, and per-record
// structural health — the same context-free checks ModelCache::load performs
// before resolving against a live wPST (which a standalone tool cannot do).
//
// Exit codes (CI contract):
//   0  every file is clean (all records decode, none rejected, not truncated)
//   1  at least one file is degraded: usable meta, but truncated or with
//      rejected records — a warm run would recover the survivors
//   2  usage error, unreadable file, or an unusable snapshot (bad magic or
//      header, unsupported version, missing/mismatched meta record)
#include <cstdio>
#include <string>

#include "accel/model_cache.h"
#include "support/blobio.h"

using namespace cayman;

namespace {

/// Per-file verdicts, ordered by severity (max wins across files).
enum Verdict { kClean = 0, kDegraded = 1, kUnusable = 2 };

Verdict checkFile(const std::string& path) {
  accel::ModelCacheLimits limits;
  support::Expected<std::string> bytes =
      support::blobio::readFile(path, limits.stream);
  if (!bytes.ok()) {
    std::fprintf(stderr, "%s: unreadable: %s\n", path.c_str(),
                 bytes.diagnostic().message.c_str());
    return kUnusable;
  }
  support::Expected<accel::SnapshotSummary> summary =
      accel::summarizeSnapshot(bytes.value(), limits, path);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s: unusable: %s\n", path.c_str(),
                 summary.diagnostic().message.c_str());
    return kUnusable;
  }
  const accel::SnapshotSummary& s = summary.value();
  std::printf("%s: stream v%u schema %u module '%s' regions %llu "
              "(configs %llu, sched %llu) rejected %llu%s\n",
              path.c_str(), s.streamVersion, s.meta.schema,
              s.meta.moduleName.c_str(),
              static_cast<unsigned long long>(s.regionRecords),
              static_cast<unsigned long long>(s.configs),
              static_cast<unsigned long long>(s.schedInserts),
              static_cast<unsigned long long>(s.rejectedRecords),
              s.truncated ? " TRUNCATED" : "");
  if (s.firstReject.has_value()) {
    std::fprintf(stderr, "%s: first reject: %s\n", path.c_str(),
                 s.firstReject->message.c_str());
  }
  return s.rejectedRecords > 0 || s.truncated ? kDegraded : kClean;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: cache_check <snapshot.cayc> [more...]\n");
    return 2;
  }
  int worst = kClean;
  for (int i = 1; i < argc; ++i) {
    int verdict = checkFile(argv[i]);
    if (verdict > worst) worst = verdict;
  }
  return worst;
}
