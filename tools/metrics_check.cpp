// metrics_check: validates a cayman-metrics-v1 document (schema, types, and
// internal consistency). Used by CI on the artifact produced by
// `cayman_cli evaluate-all --metrics-json` and by ctest.
//
//   metrics_check <file.json>
//
// exit codes: 0 valid, 1 invalid, 2 usage / unreadable file
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "support/json.h"

using cayman::support::json::Value;

namespace {

int g_errors = 0;

void fail(const std::string& where, const std::string& message) {
  std::fprintf(stderr, "metrics_check: %s: %s\n", where.c_str(),
               message.c_str());
  ++g_errors;
}

/// Requires member `key` of `kindName` ∈ {string, bool, int, number,
/// object, array} on `object`; returns it or nullptr.
const Value* require(const Value& object, const std::string& where,
                     const std::string& key, const char* kindName) {
  const Value* value = object.find(key);
  if (value == nullptr) {
    fail(where, "missing key '" + key + "'");
    return nullptr;
  }
  std::string kind(kindName);
  bool ok = (kind == "string" && value->isString()) ||
            (kind == "bool" && value->isBool()) ||
            (kind == "int" && value->isInt()) ||
            (kind == "number" && value->isNumber()) ||
            (kind == "object" && value->isObject()) ||
            (kind == "array" && value->isArray());
  if (!ok) {
    fail(where, "key '" + key + "' is not a " + kind);
    return nullptr;
  }
  return value;
}

void checkMetrics(const Value& metrics, const std::string& where) {
  for (const char* key :
       {"total_cpu_cycles", "cayman_speedup", "novia_speedup",
        "qscores_speedup", "over_novia", "over_qscores",
        "area_before_um2", "area_after_um2", "area_saving_percent"}) {
    require(metrics, where, key, "number");
  }
  for (const char* key : {"num_seq_blocks", "num_pipelined_regions",
                          "num_coupled", "num_decoupled", "num_scratchpad"}) {
    if (const Value* v = require(metrics, where, key, "int")) {
      if (v->intValue() < 0) fail(where, std::string(key) + " is negative");
    }
  }
}

void checkSelection(const Value& selection, const std::string& where) {
  for (size_t i = 0; i < selection.items().size(); ++i) {
    const Value& decision = selection.items()[i];
    std::string at = where + ".selection[" + std::to_string(i) + "]";
    if (!decision.isObject()) {
      fail(at, "not an object");
      continue;
    }
    require(decision, at, "region", "string");
    for (const char* key : {"cpu_cycles", "accel_cycles", "hot_fraction",
                            "kernel_speedup", "area_um2"}) {
      if (const Value* v = require(decision, at, key, "number")) {
        if (v->numberValue() < 0.0) {
          fail(at, std::string(key) + " is negative");
        }
      }
    }
    if (const Value* hot = decision.find("hot_fraction")) {
      if (hot->isNumber() && hot->numberValue() > 1.0) {
        fail(at, "hot_fraction > 1");
      }
    }
  }
}

void checkWorkload(const Value& entry, size_t position) {
  std::string where = "workloads[" + std::to_string(position) + "]";
  if (!entry.isObject()) {
    fail(where, "not an object");
    return;
  }
  require(entry, where, "name", "string");
  require(entry, where, "suite", "string");
  if (const Value* index = require(entry, where, "index", "int")) {
    if (index->intValue() != static_cast<int64_t>(position)) {
      fail(where, "index does not match array position");
    }
  }
  const Value* ok = require(entry, where, "ok", "bool");
  if (ok != nullptr) {
    const Value* failure = entry.find("failure");
    if (ok->boolValue() && failure != nullptr) {
      fail(where, "ok row carries a failure object");
    }
    if (!ok->boolValue()) {
      if (failure == nullptr || !failure->isObject()) {
        fail(where, "failed row lacks a failure object");
      } else {
        require(*failure, where + ".failure", "stage", "string");
        require(*failure, where + ".failure", "message", "string");
      }
    }
  }
  if (const Value* metrics = require(entry, where, "metrics", "object")) {
    checkMetrics(*metrics, where + ".metrics");
  }
  if (const Value* selection = require(entry, where, "selection", "array")) {
    checkSelection(*selection, where);
  }
  if (const Value* counters = entry.find("counters")) {
    if (!counters->isObject()) {
      fail(where, "counters is not an object");
    } else {
      for (const auto& [name, value] : counters->members()) {
        if (!value.isInt() || value.intValue() < 0) {
          fail(where, "counter '" + name + "' is not a non-negative integer");
        }
      }
      // Model design-space counters are internally consistent: every
      // candidate the model hands the selector was estimated exactly once,
      // so estimates can only exceed candidates (duplicates estimated then
      // deduped), never trail them.
      const Value* estimates = counters->find("model.estimate_calls");
      const Value* candidates = counters->find("model.candidates_total");
      if (estimates != nullptr && candidates != nullptr &&
          estimates->isInt() && candidates->isInt() &&
          estimates->intValue() < candidates->intValue()) {
        fail(where, "model.estimate_calls < model.candidates_total");
      }
      // Merge counters are internally consistent: each merge step contracts
      // one of the initially scanned cross-accelerator pairs, each reusable
      // group needs at least one step to form, and the cross-accelerator
      // pair count is bounded by all unit pairs.
      const Value* mergeUnits = counters->find("merge.units");
      const Value* mergeSteps = counters->find("merge.steps");
      const Value* mergePairs = counters->find("merge.pairs_evaluated");
      const Value* mergeGroups = counters->find("merge.groups");
      if (mergeSteps != nullptr && mergePairs != nullptr &&
          mergeSteps->isInt() && mergePairs->isInt() &&
          mergeSteps->intValue() > mergePairs->intValue()) {
        fail(where, "merge.steps > merge.pairs_evaluated");
      }
      if (mergeGroups != nullptr && mergeSteps != nullptr &&
          mergeGroups->isInt() && mergeSteps->isInt() &&
          mergeGroups->intValue() > mergeSteps->intValue()) {
        fail(where, "merge.groups > merge.steps");
      }
      if (mergePairs != nullptr && mergeUnits != nullptr &&
          mergePairs->isInt() && mergeUnits->isInt() &&
          mergePairs->intValue() >
              mergeUnits->intValue() * (mergeUnits->intValue() - 1) / 2) {
        fail(where, "merge.pairs_evaluated exceeds units*(units-1)/2");
      }
    }
  }
  // Wall-mode extras: stage durations must be non-negative and sum to no
  // more than the task's total (stages are disjoint sub-intervals).
  if (const Value* stages = entry.find("stage_seconds")) {
    if (!stages->isObject()) {
      fail(where, "stage_seconds is not an object");
    } else {
      double sum = 0.0;
      for (const auto& [stage, seconds] : stages->members()) {
        if (!seconds.isNumber() || seconds.numberValue() < 0.0) {
          fail(where, "stage_seconds['" + stage + "'] is not >= 0");
        } else {
          sum += seconds.numberValue();
        }
      }
      const Value* total = require(entry, where, "total_seconds", "number");
      if (total != nullptr && sum > total->numberValue() * (1.0 + 1e-9)) {
        fail(where, "stage_seconds sum exceeds total_seconds");
      }
    }
  }
}

/// Wall-mode "global" section: out-of-task pool counters and gauges. The
/// section is optional (absent when tracing was off or the document is
/// deterministic), but when present its values must be sane, and the pool
/// counters must satisfy steals <= tasks (a steal executes one task).
void checkGlobal(const Value& global) {
  const std::string where = "global";
  if (const Value* counters = global.find("counters")) {
    if (!counters->isObject()) {
      fail(where, "counters is not an object");
    } else {
      for (const auto& [name, value] : counters->members()) {
        if (!value.isInt() || value.intValue() < 0) {
          fail(where, "counter '" + name + "' is not a non-negative integer");
        }
      }
      const Value* tasks = counters->find("pool.tasks");
      const Value* steals = counters->find("pool.steals");
      const Value* nested = counters->find("pool.tasks_nested");
      if (tasks != nullptr && steals != nullptr && tasks->isInt() &&
          steals->isInt() && steals->intValue() > tasks->intValue()) {
        fail(where, "pool.steals > pool.tasks");
      }
      if (tasks != nullptr && nested != nullptr && tasks->isInt() &&
          nested->isInt() && nested->intValue() > tasks->intValue()) {
        fail(where, "pool.tasks_nested > pool.tasks");
      }
    }
  }
  if (const Value* gauges = global.find("gauges")) {
    if (!gauges->isObject()) {
      fail(where, "gauges is not an object");
    } else {
      for (const auto& [name, value] : gauges->members()) {
        if (!value.isInt()) {
          fail(where, "gauge '" + name + "' is not an integer");
        }
      }
      const Value* peak = gauges->find("model.cold_inflight_peak");
      if (peak != nullptr && peak->isInt() && peak->intValue() < 0) {
        fail(where, "model.cold_inflight_peak is negative");
      }
    }
  }
}

int check(const Value& document) {
  if (!document.isObject()) {
    fail("document", "top level is not an object");
    return 1;
  }
  if (const Value* schema = require(document, "document", "schema", "string")) {
    if (schema->stringValue() != "cayman-metrics-v1") {
      fail("document", "unknown schema '" + schema->stringValue() + "'");
    }
  }
  if (const Value* mode = require(document, "document", "time_mode",
                                  "string")) {
    if (mode->stringValue() != "deterministic" &&
        mode->stringValue() != "wall") {
      fail("document", "unknown time_mode '" + mode->stringValue() + "'");
    }
  }
  require(document, "document", "totals", "object");
  if (const Value* global = document.find("global")) {
    if (!global->isObject()) {
      fail("document", "global is not an object");
    } else {
      const Value* mode = document.find("time_mode");
      if (mode != nullptr && mode->isString() &&
          mode->stringValue() == "deterministic") {
        fail("document", "deterministic document carries a global section");
      }
      checkGlobal(*global);
    }
  }
  const Value* workloads =
      require(document, "document", "workloads", "array");
  if (workloads == nullptr) return 1;
  if (const Value* count = require(document, "document", "workload_count",
                                   "int")) {
    if (count->intValue() !=
        static_cast<int64_t>(workloads->items().size())) {
      fail("document", "workload_count does not match workloads length");
    }
  }
  int64_t failures = 0;
  for (size_t i = 0; i < workloads->items().size(); ++i) {
    checkWorkload(workloads->items()[i], i);
    const Value* ok = workloads->items()[i].find("ok");
    if (ok != nullptr && ok->isBool() && !ok->boolValue()) ++failures;
  }
  if (const Value* failed = require(document, "document", "failed", "int")) {
    if (failed->intValue() != failures) {
      fail("document", "failed count does not match rows with ok=false");
    }
  }
  return g_errors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: metrics_check <file.json>\n");
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "metrics_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();

  cayman::support::Expected<Value> parsed =
      cayman::support::json::parse(text.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "metrics_check: %s is not valid JSON: %s\n",
                 argv[1], parsed.diagnostic().message.c_str());
    return 1;
  }
  int result = check(parsed.value());
  if (result == 0) std::printf("metrics_check: %s OK\n", argv[1]);
  return result;
}
