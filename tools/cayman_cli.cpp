// cayman-cli: command-line driver for the framework.
//
//   cayman_cli list                          list built-in workloads
//   cayman_cli ir <workload>                 print a workload's textual IR
//   cayman_cli wpst <workload>               print its profiled wPST
//   cayman_cli explore <workload> [budget]   print the Pareto frontier
//   cayman_cli evaluate <workload> [budget]  full evaluation vs baselines
//   cayman_cli evaluate-all [budget] [--jobs N]
//                                            all 28 workloads in parallel
//   cayman_cli report <workload> [budget]    machine-readable single report
//   cayman_cli run <file.cir> [budget]       evaluate IR parsed from a file
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cayman/driver.h"
#include "cayman/framework.h"
#include "cayman/metrics.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "support/envhooks.h"
#include "support/strings.h"
#include "support/thread_pool.h"
#include "support/trace.h"
#include "workloads/workloads.h"

using namespace cayman;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: cayman_cli <command> [args]\n"
               "  list                         list built-in workloads\n"
               "  ir <workload>                print textual IR\n"
               "  wpst <workload>              print the profiled wPST\n"
               "  explore <workload> [budget]  print the Pareto frontier\n"
               "  evaluate <workload> [budget] evaluate vs baselines\n"
               "  evaluate-all [budget] [--jobs N] [--timeout-s S]\n"
               "               [--only a,b,..] [--metrics-json FILE]\n"
               "               [--trace-out FILE] [--trace-wall]\n"
               "               [--select-mode frontier|reference]\n"
               "               [--generate-mode guided|reference]\n"
               "               [--merge-mode graph|reference]\n"
               "               [--cache-dir DIR]\n"
               "                               evaluate all workloads in "
               "parallel\n"
               "  report <workload> [budget]   print a cayman-metrics-v1 "
               "JSON report\n"
               "  run <file.cir> [budget]      evaluate IR from a file\n"
               "budgets are area ratios of a CVA6 tile in (0, 1], e.g. "
               "0.25\n"
               "--timeout-s sets a per-workload wall-clock deadline\n"
               "--select-mode picks the selector DP engine: 'frontier'\n"
               "(default, fast) or 'reference' (the oracle DP); outputs are\n"
               "byte-identical between the two\n"
               "--generate-mode picks the model's design-space engine:\n"
               "'guided' (default, roofline-pruned) or 'reference' (the\n"
               "exhaustive sweep); selected fronts are byte-identical\n"
               "--merge-mode picks the merge matching engine: 'graph'\n"
               "(default, edge-heap matching) or 'reference' (the greedy\n"
               "oracle); outputs are byte-identical between the two\n"
               "--metrics-json / --trace-out enable the trace recorder and\n"
               "write a metrics report / Chrome trace-event JSON; both are\n"
               "deterministic (byte-identical across --jobs counts) unless\n"
               "--trace-wall opts into real wall-clock timestamps\n"
               "--cache-dir persists the model's generate cache between\n"
               "runs (crash-safe, corruption-tolerant); warm runs are\n"
               "byte-identical to cold ones — cache activity reports on\n"
               "stderr only\n"
               "exit codes: 0 ok, 1 evaluation error/failed workloads, "
               "2 usage, 3 internal error\n");
  return 2;
}

/// Parses a --timeout-s value: seconds, strictly positive, finite.
bool parseTimeout(const char* text, double* seconds) {
  std::optional<double> value = parseDouble(text, 0.0, 1e9);
  if (!value) return false;
  *seconds = *value;
  return true;
}

/// Parses an area-budget ratio. Unlike atof, rejects trailing garbage and
/// out-of-range values instead of silently evaluating at budget 0.
bool parseBudget(const char* text, double* budget) {
  std::optional<double> value = parseDouble(text, 0.0, 1.0);
  if (!value) return false;
  *budget = *value;
  return true;
}

int badBudget(const char* text) {
  std::fprintf(stderr,
               "error: invalid budget '%s' — expected an area ratio in "
               "(0, 1], e.g. 0.25\n",
               text);
  return 2;
}

int cmdList() {
  std::printf("%-22s %-14s %s\n", "name", "suite", "note");
  for (const auto& info : workloads::all()) {
    std::printf("%-22s %-14s %s\n", info.name.c_str(), info.suite.c_str(),
                info.note.empty() ? "faithful port" : info.note.c_str());
  }
  return 0;
}

int cmdIr(const std::string& name) {
  std::unique_ptr<ir::Module> module = workloads::build(name);
  std::fputs(ir::printModule(*module).c_str(), stdout);
  return 0;
}

void printTree(const Framework& fw, const analysis::Region& region,
               int depth) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  std::printf("%s%-44s entries=%-8llu hot=%5.1f%%%s\n", indent.c_str(),
              region.label().c_str(),
              static_cast<unsigned long long>(fw.profile().entries(&region)),
              100.0 * fw.profile().hotFraction(&region),
              region.isCandidate() ? "" : "  [not selectable]");
  for (const auto& child : region.children()) {
    printTree(fw, *child, depth + 1);
  }
}

int cmdWpst(const std::string& name) {
  Framework fw(workloads::build(name));
  std::printf("wPST of %s (T_all = %.0f CPU cycles)\n", name.c_str(),
              fw.totalCpuCycles());
  printTree(fw, *fw.wpst().root(), 0);
  return 0;
}

int evaluateModule(std::unique_ptr<ir::Module> module, double budget) {
  Framework fw(std::move(module));
  EvaluationReport report = fw.evaluate(budget);
  std::printf("T_all:               %.0f CPU cycles\n", fw.totalCpuCycles());
  std::printf("budget:              %.0f%% of a CVA6 tile\n", budget * 100);
  std::printf("kernels selected:    %zu\n",
              report.solution.accelerators.size());
  std::printf("area used:           %.1f%% of tile\n",
              100.0 * report.solution.areaUm2 / fw.tech().cva6TileAreaUm2);
  std::printf("#SB / #PR:           %u / %u\n", report.numSeqBlocks,
              report.numPipelinedRegions);
  std::printf("#C / #D / #S:        %u / %u / %u\n", report.numCoupled,
              report.numDecoupled, report.numScratchpad);
  std::printf("Cayman speedup:      %.2fx (Eq. 1)\n", report.caymanSpeedup);
  std::printf("NOVIA baseline:      %.2fx  -> Cayman %.1fx better\n",
              report.noviaSpeedup, report.overNovia);
  std::printf("QsCores baseline:    %.2fx  -> Cayman %.1fx better\n",
              report.qscoresSpeedup, report.overQsCores);
  std::printf("merging area saving: %.1f%% (%d reusable accelerator(s))\n",
              report.areaSavingPercent, report.merging.reusableAccelerators);
  std::printf("selection time:      %.3fs\n", report.selectionSeconds);
  return 0;
}

int cmdExplore(const std::string& name, double budget) {
  Framework fw(workloads::build(name));
  std::printf("Pareto frontier of %s under %.0f%% budget:\n", name.c_str(),
              budget * 100);
  std::printf("%12s %12s %10s %8s\n", "area(um2)", "area(%tile)", "speedup",
              "kernels");
  for (const auto& solution : fw.explore(budget)) {
    std::printf("%12.0f %12.2f %10.2f %8zu\n", solution.areaUm2,
                100.0 * solution.areaUm2 / fw.tech().cva6TileAreaUm2,
                fw.speedupOf(solution), solution.accelerators.size());
  }
  return 0;
}

/// Writes `content` to `path` (error message + false on failure).
bool writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

int cmdEvaluateAll(int argc, char** argv) {
  double budget = 0.25;
  std::optional<unsigned> jobsFlag;
  FrameworkOptions options;
  std::string traceOut;
  std::string metricsOut;
  bool traceWall = false;
  std::vector<std::string> only;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--jobs") {
      if (i + 1 >= argc) return usage();
      std::optional<unsigned> jobs = parseJobs(argv[++i]);
      if (!jobs) {
        std::fprintf(stderr,
                     "error: invalid --jobs '%s' — expected an integer in "
                     "[1, 1024]\n",
                     argv[i]);
        return 2;
      }
      jobsFlag = *jobs;
    } else if (arg == "--timeout-s") {
      if (i + 1 >= argc) return usage();
      if (!parseTimeout(argv[++i], &options.timeoutSeconds)) {
        std::fprintf(stderr, "error: invalid --timeout-s '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--trace-out") {
      if (i + 1 >= argc) return usage();
      traceOut = argv[++i];
    } else if (arg == "--metrics-json") {
      if (i + 1 >= argc) return usage();
      metricsOut = argv[++i];
    } else if (arg == "--trace-wall") {
      traceWall = true;
    } else if (arg == "--select-mode") {
      if (i + 1 >= argc) return usage();
      std::string mode = argv[++i];
      if (mode == "frontier") {
        options.selectMode = select::SelectMode::Frontier;
      } else if (mode == "reference") {
        options.selectMode = select::SelectMode::Reference;
      } else {
        std::fprintf(stderr,
                     "error: invalid --select-mode '%s' — expected "
                     "'frontier' or 'reference'\n",
                     mode.c_str());
        return 2;
      }
    } else if (arg == "--generate-mode") {
      if (i + 1 >= argc) return usage();
      std::string mode = argv[++i];
      if (mode == "guided") {
        options.generateMode = accel::GenerateMode::Guided;
      } else if (mode == "reference") {
        options.generateMode = accel::GenerateMode::Reference;
      } else {
        std::fprintf(stderr,
                     "error: invalid --generate-mode '%s' — expected "
                     "'guided' or 'reference'\n",
                     mode.c_str());
        return 2;
      }
    } else if (arg == "--merge-mode") {
      if (i + 1 >= argc) return usage();
      std::string mode = argv[++i];
      if (mode == "graph") {
        options.mergeMode = merge::MergeMode::Graph;
      } else if (mode == "reference") {
        options.mergeMode = merge::MergeMode::Reference;
      } else {
        std::fprintf(stderr,
                     "error: invalid --merge-mode '%s' — expected "
                     "'graph' or 'reference'\n",
                     mode.c_str());
        return 2;
      }
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) return usage();
      options.cacheDir = argv[++i];
      if (options.cacheDir.empty()) {
        std::fprintf(stderr, "error: --cache-dir names an empty path\n");
        return 2;
      }
      std::error_code ec;
      std::filesystem::create_directories(options.cacheDir, ec);
      if (ec) {
        std::fprintf(stderr, "error: cannot create --cache-dir '%s': %s\n",
                     options.cacheDir.c_str(), ec.message().c_str());
        return 2;
      }
    } else if (arg == "--only") {
      if (i + 1 >= argc) return usage();
      for (std::string_view piece : split(argv[++i], ',')) {
        std::string name(trim(piece));
        if (name.empty()) continue;
        if (workloads::byName(name) == nullptr) {
          std::fprintf(stderr, "error: unknown workload '%s' in --only\n",
                       name.c_str());
          return 2;
        }
        only.push_back(std::move(name));
      }
      if (only.empty()) {
        std::fprintf(stderr, "error: --only names no workloads\n");
        return 2;
      }
    } else if (!parseBudget(arg.c_str(), &budget)) {
      return badBudget(arg.c_str());
    }
  }

  unsigned jobs;
  if (jobsFlag.has_value()) {
    jobs = *jobsFlag;
  } else if (const char* env = std::getenv("CAYMAN_JOBS");
             env != nullptr && *env != '\0') {
    // The library silently falls back on a malformed CAYMAN_JOBS (it has no
    // usage-error channel); the CLI rejects it like a bad --jobs instead of
    // quietly running with a different parallelism than asked for.
    std::optional<unsigned> envJobs = parseJobs(env);
    if (!envJobs) {
      std::fprintf(stderr,
                   "error: invalid CAYMAN_JOBS '%s' — expected an integer "
                   "in [1, 1024]\n",
                   env);
      return 2;
    }
    jobs = *envJobs;
  } else {
    jobs = ThreadPool::defaultWorkers();
  }

  // Pre-validate the CAYMAN_INJECT_* hooks: a malformed spec is a usage
  // error before any work starts, not 28 identically failed rows (and for
  // CAYMAN_INJECT_CORRUPT, not a surprise at first cache publish).
  {
    support::Expected<std::optional<support::envhooks::FaultSpec>> fault =
        support::envhooks::envInjectFault();
    if (!fault.ok()) {
      std::fprintf(stderr, "error: %s\n", fault.diagnostic().str().c_str());
      return 2;
    }
    support::Expected<std::vector<support::envhooks::SlowSpec>> slow =
        support::envhooks::envInjectSlow();
    if (!slow.ok()) {
      std::fprintf(stderr, "error: %s\n", slow.diagnostic().str().c_str());
      return 2;
    }
    support::Expected<std::optional<support::envhooks::CorruptSpec>> corrupt =
        support::envhooks::envInjectCorrupt();
    if (!corrupt.ok()) {
      std::fprintf(stderr, "error: %s\n", corrupt.diagnostic().str().c_str());
      return 2;
    }
  }

  const bool tracing = !traceOut.empty() || !metricsOut.empty();
  if (tracing) {
    support::trace::TraceRecorder& recorder =
        support::trace::TraceRecorder::global();
    recorder.clear();
    recorder.setEnabled(true);
  }

  std::vector<WorkloadEvaluation> evaluations =
      only.empty() ? evaluateAll(budget, jobs, options)
                   : evaluateWorkloads(only, budget, jobs, options);
  std::fputs(formatEvaluationTable(evaluations).c_str(), stdout);

  // Cache activity reports on stderr only: stdout (and the metrics/trace
  // JSON) must stay byte-identical between cold, warm, and degraded-warm
  // runs. The summary line itself is deterministic for a given cache state,
  // so CI can grep it.
  if (!options.cacheDir.empty()) {
    uint64_t hits = 0, misses = 0, rejected = 0, loaded = 0, saved = 0;
    for (const WorkloadEvaluation& evaluation : evaluations) {
      hits += evaluation.cacheStats.diskHits;
      misses += evaluation.cacheStats.diskMisses;
      rejected += evaluation.cacheStats.rejectedRecords;
      loaded += evaluation.cacheStats.loadedRegions;
      saved += evaluation.cacheStats.savedRegions;
      for (const support::Diagnostic& diagnostic :
           evaluation.cacheDiagnostics) {
        std::fprintf(stderr, "cayman: %s\n", diagnostic.str().c_str());
      }
    }
    std::fprintf(stderr,
                 "cayman: cache summary: disk_hits=%llu disk_misses=%llu "
                 "rejected=%llu loaded=%llu saved=%llu\n",
                 static_cast<unsigned long long>(hits),
                 static_cast<unsigned long long>(misses),
                 static_cast<unsigned long long>(rejected),
                 static_cast<unsigned long long>(loaded),
                 static_cast<unsigned long long>(saved));
  }

  if (tracing) {
    support::trace::TraceRecorder& recorder =
        support::trace::TraceRecorder::global();
    std::vector<support::trace::TaskRecord> tasks = recorder.drainTasks();
    std::vector<support::trace::OrphanRecord> orphans =
        recorder.drainOrphans();
    if (!metricsOut.empty()) {
      MetricsOptions metricsOptions;
      metricsOptions.includeWallTimes = traceWall;
      metricsOptions.globalCounters = recorder.globalCounters();
      metricsOptions.gauges = recorder.gauges();
      support::json::Value document =
          buildMetricsJson(evaluations, tasks, metricsOptions);
      if (!writeFile(metricsOut, document.dump(2) + "\n")) return 1;
    }
    if (!traceOut.empty()) {
      support::trace::TimeMode mode =
          traceWall ? support::trace::TimeMode::Wall
                    : support::trace::TimeMode::Deterministic;
      support::json::Value document =
          support::trace::chromeTrace(tasks, orphans, mode);
      if (!writeFile(traceOut, document.dump() + "\n")) return 1;
    }
  }
  return countFailures(evaluations) > 0 ? 1 : 0;
}

/// `report <workload> [budget]`: evaluates one workload with tracing on and
/// prints its cayman-metrics-v1 document (deterministic mode) to stdout.
int cmdReport(const std::string& name, double budget) {
  support::trace::TraceRecorder& recorder =
      support::trace::TraceRecorder::global();
  recorder.clear();
  recorder.setEnabled(true);
  std::vector<WorkloadEvaluation> evaluations;
  evaluations.push_back(evaluateWorkload(name, budget));
  std::vector<support::trace::TaskRecord> tasks = recorder.drainTasks();
  support::json::Value document = buildMetricsJson(evaluations, tasks);
  std::printf("%s\n", document.dump(2).c_str());
  return evaluations.front().ok() ? 0 : 1;
}

int cmdRun(const std::string& path, double budget) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return evaluateModule(ir::parseModule(text.str()), budget);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string command = argv[1];
  try {
    if (command == "list") return cmdList();
    if (command == "evaluate-all") return cmdEvaluateAll(argc, argv);
    if (argc < 3) return usage();
    std::string target = argv[2];
    double budget = 0.25;
    if (argc > 3 && !parseBudget(argv[3], &budget)) return badBudget(argv[3]);
    if (command == "ir") return cmdIr(target);
    if (command == "wpst") return cmdWpst(target);
    if (command == "explore") return cmdExplore(target, budget);
    if (command == "evaluate") {
      return evaluateModule(workloads::build(target), budget);
    }
    if (command == "report") return cmdReport(target, budget);
    if (command == "run") return cmdRun(target, budget);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Anything not funneled through cayman::Error is an internal bug, not an
    // input problem — distinct exit code so harnesses can tell them apart.
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 3;
  }
  return usage();
}
