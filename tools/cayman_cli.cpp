// cayman-cli: command-line driver for the framework.
//
//   cayman_cli list                          list built-in workloads
//   cayman_cli ir <workload>                 print a workload's textual IR
//   cayman_cli wpst <workload>               print its profiled wPST
//   cayman_cli explore <workload> [budget]   print the Pareto frontier
//   cayman_cli evaluate <workload> [budget]  full evaluation vs baselines
//   cayman_cli evaluate-all [budget] [--jobs N]
//                                            all 28 workloads in parallel
//   cayman_cli run <file.cir> [budget]       evaluate IR parsed from a file
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cayman/driver.h"
#include "cayman/framework.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

using namespace cayman;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: cayman_cli <command> [args]\n"
               "  list                         list built-in workloads\n"
               "  ir <workload>                print textual IR\n"
               "  wpst <workload>              print the profiled wPST\n"
               "  explore <workload> [budget]  print the Pareto frontier\n"
               "  evaluate <workload> [budget] evaluate vs baselines\n"
               "  evaluate-all [budget] [--jobs N] [--timeout-s S]\n"
               "                               evaluate all workloads in "
               "parallel\n"
               "  run <file.cir> [budget]      evaluate IR from a file\n"
               "budgets are area ratios of a CVA6 tile in (0, 1], e.g. "
               "0.25\n"
               "--timeout-s sets a per-workload wall-clock deadline\n"
               "exit codes: 0 ok, 1 evaluation error/failed workloads, "
               "2 usage, 3 internal error\n");
  return 2;
}

/// Parses a --timeout-s value: seconds, strictly positive, finite.
bool parseTimeout(const char* text, double* seconds) {
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  if (!(value > 0.0) || value > 1e9) return false;
  *seconds = value;
  return true;
}

/// Parses an area-budget ratio. Unlike atof, rejects trailing garbage and
/// out-of-range values instead of silently evaluating at budget 0.
bool parseBudget(const char* text, double* budget) {
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  if (!(value > 0.0) || value > 1.0) return false;  // !(>0) also catches NaN
  *budget = value;
  return true;
}

int badBudget(const char* text) {
  std::fprintf(stderr,
               "error: invalid budget '%s' — expected an area ratio in "
               "(0, 1], e.g. 0.25\n",
               text);
  return 2;
}

int cmdList() {
  std::printf("%-22s %-14s %s\n", "name", "suite", "note");
  for (const auto& info : workloads::all()) {
    std::printf("%-22s %-14s %s\n", info.name.c_str(), info.suite.c_str(),
                info.note.empty() ? "faithful port" : info.note.c_str());
  }
  return 0;
}

int cmdIr(const std::string& name) {
  std::unique_ptr<ir::Module> module = workloads::build(name);
  std::fputs(ir::printModule(*module).c_str(), stdout);
  return 0;
}

void printTree(const Framework& fw, const analysis::Region& region,
               int depth) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  std::printf("%s%-44s entries=%-8llu hot=%5.1f%%%s\n", indent.c_str(),
              region.label().c_str(),
              static_cast<unsigned long long>(fw.profile().entries(&region)),
              100.0 * fw.profile().hotFraction(&region),
              region.isCandidate() ? "" : "  [not selectable]");
  for (const auto& child : region.children()) {
    printTree(fw, *child, depth + 1);
  }
}

int cmdWpst(const std::string& name) {
  Framework fw(workloads::build(name));
  std::printf("wPST of %s (T_all = %.0f CPU cycles)\n", name.c_str(),
              fw.totalCpuCycles());
  printTree(fw, *fw.wpst().root(), 0);
  return 0;
}

int evaluateModule(std::unique_ptr<ir::Module> module, double budget) {
  Framework fw(std::move(module));
  EvaluationReport report = fw.evaluate(budget);
  std::printf("T_all:               %.0f CPU cycles\n", fw.totalCpuCycles());
  std::printf("budget:              %.0f%% of a CVA6 tile\n", budget * 100);
  std::printf("kernels selected:    %zu\n",
              report.solution.accelerators.size());
  std::printf("area used:           %.1f%% of tile\n",
              100.0 * report.solution.areaUm2 / fw.tech().cva6TileAreaUm2);
  std::printf("#SB / #PR:           %u / %u\n", report.numSeqBlocks,
              report.numPipelinedRegions);
  std::printf("#C / #D / #S:        %u / %u / %u\n", report.numCoupled,
              report.numDecoupled, report.numScratchpad);
  std::printf("Cayman speedup:      %.2fx (Eq. 1)\n", report.caymanSpeedup);
  std::printf("NOVIA baseline:      %.2fx  -> Cayman %.1fx better\n",
              report.noviaSpeedup, report.overNovia);
  std::printf("QsCores baseline:    %.2fx  -> Cayman %.1fx better\n",
              report.qscoresSpeedup, report.overQsCores);
  std::printf("merging area saving: %.1f%% (%d reusable accelerator(s))\n",
              report.areaSavingPercent, report.merging.reusableAccelerators);
  std::printf("selection time:      %.3fs\n", report.selectionSeconds);
  return 0;
}

int cmdExplore(const std::string& name, double budget) {
  Framework fw(workloads::build(name));
  std::printf("Pareto frontier of %s under %.0f%% budget:\n", name.c_str(),
              budget * 100);
  std::printf("%12s %12s %10s %8s\n", "area(um2)", "area(%tile)", "speedup",
              "kernels");
  for (const auto& solution : fw.explore(budget)) {
    std::printf("%12.0f %12.2f %10.2f %8zu\n", solution.areaUm2,
                100.0 * solution.areaUm2 / fw.tech().cva6TileAreaUm2,
                fw.speedupOf(solution), solution.accelerators.size());
  }
  return 0;
}

int cmdEvaluateAll(int argc, char** argv) {
  double budget = 0.25;
  unsigned jobs = ThreadPool::defaultWorkers();
  FrameworkOptions options;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--jobs") {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      long value = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || value <= 0 || value > 1024) {
        std::fprintf(stderr, "error: invalid --jobs '%s'\n", argv[i]);
        return 2;
      }
      jobs = static_cast<unsigned>(value);
    } else if (arg == "--timeout-s") {
      if (i + 1 >= argc) return usage();
      if (!parseTimeout(argv[++i], &options.timeoutSeconds)) {
        std::fprintf(stderr, "error: invalid --timeout-s '%s'\n", argv[i]);
        return 2;
      }
    } else if (!parseBudget(arg.c_str(), &budget)) {
      return badBudget(arg.c_str());
    }
  }
  std::vector<WorkloadEvaluation> evaluations =
      evaluateAll(budget, jobs, options);
  std::fputs(formatEvaluationTable(evaluations).c_str(), stdout);
  return countFailures(evaluations) > 0 ? 1 : 0;
}

int cmdRun(const std::string& path, double budget) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return evaluateModule(ir::parseModule(text.str()), budget);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string command = argv[1];
  try {
    if (command == "list") return cmdList();
    if (command == "evaluate-all") return cmdEvaluateAll(argc, argv);
    if (argc < 3) return usage();
    std::string target = argv[2];
    double budget = 0.25;
    if (argc > 3 && !parseBudget(argv[3], &budget)) return badBudget(argv[3]);
    if (command == "ir") return cmdIr(target);
    if (command == "wpst") return cmdWpst(target);
    if (command == "explore") return cmdExplore(target, budget);
    if (command == "evaluate") {
      return evaluateModule(workloads::build(target), budget);
    }
    if (command == "run") return cmdRun(target, budget);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Anything not funneled through cayman::Error is an internal bug, not an
    // input problem — distinct exit code so harnesses can tell them apart.
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 3;
  }
  return usage();
}
