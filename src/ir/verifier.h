// Structural IR verifier.
//
// The analyses and transforms in this repository assume well-formed,
// structured IR; the verifier front-loads those assumptions so violations
// fail loudly at construction time instead of corrupting results later.
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"

namespace cayman::ir {

/// Returns all well-formedness violations (empty means the module verifies).
std::vector<std::string> verifyModule(const Module& module);

/// Convenience wrapper that throws cayman::Error listing every violation.
void verifyOrThrow(const Module& module);

}  // namespace cayman::ir
