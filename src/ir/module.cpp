#include "ir/module.h"

#include <cstring>

namespace cayman::ir {

Module::~Module() {
  // Break every use-def link first so instruction destruction order cannot
  // touch already-freed values.
  for (const auto& function : functions_) {
    for (const auto& block : function->blocks()) {
      for (const auto& inst : block->instructions()) {
        inst->dropAllReferences();
      }
    }
  }
}

Function* Module::addFunction(
    std::string name, const Type* returnType,
    std::vector<std::pair<const Type*, std::string>> params) {
  CAYMAN_ASSERT(functionByName(name) == nullptr,
                "duplicate function " + name);
  functions_.push_back(std::make_unique<Function>(this, std::move(name),
                                                  returnType,
                                                  std::move(params)));
  return functions_.back().get();
}

Function* Module::functionByName(std::string_view name) const {
  for (const auto& f : functions_) {
    if (f->name() == name) return f.get();
  }
  return nullptr;
}

Function* Module::entryFunction() const {
  if (Function* main = functionByName("main")) return main;
  CAYMAN_ASSERT(!functions_.empty(), "module has no functions");
  return functions_.front().get();
}

GlobalArray* Module::addGlobal(std::string name, const Type* elemType,
                               uint64_t numElems) {
  CAYMAN_ASSERT(globalByName(name) == nullptr, "duplicate global " + name);
  globals_.push_back(
      std::make_unique<GlobalArray>(elemType, numElems, std::move(name)));
  return globals_.back().get();
}

GlobalArray* Module::globalByName(std::string_view name) const {
  for (const auto& g : globals_) {
    if (g->name() == name) return g.get();
  }
  return nullptr;
}

ConstantInt* Module::constInt(const Type* type, int64_t value) {
  auto key = std::make_pair(type, value);
  auto it = intConstants_.find(key);
  if (it == intConstants_.end()) {
    it = intConstants_
             .emplace(key, std::make_unique<ConstantInt>(type, value))
             .first;
  }
  return it->second.get();
}

ConstantFP* Module::constFP(const Type* type, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  auto key = std::make_pair(type, bits);
  auto it = fpConstants_.find(key);
  if (it == fpConstants_.end()) {
    it = fpConstants_.emplace(key, std::make_unique<ConstantFP>(type, value))
             .first;
  }
  return it->second.get();
}

}  // namespace cayman::ir
