#include "ir/parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "support/strings.h"

namespace cayman::ir {

namespace {

using support::Diagnostic;
using support::DiagnosticError;
using support::Stage;

bool isNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '_' ||
         c == '-';
}

/// Character cursor over one line with error reporting. `colBase` is the
/// number of characters trimmed off the front of the raw line, so reported
/// columns are 1-based positions in the original input.
class Cursor {
 public:
  Cursor(std::string_view text, int lineNo, int colBase)
      : text_(text), lineNo_(lineNo), colBase_(colBase) {}

  [[noreturn]] void fail(const std::string& message) const {
    std::string near(rest().substr(0, 40));
    throw DiagnosticError(Diagnostic{
        Stage::Parse, "", message + " (near '" + near + "')", lineNo_,
        colBase_ + static_cast<int>(pos_) + 1});
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool atEnd() {
    skipSpace();
    return pos_ >= text_.size();
  }

  bool tryConsume(std::string_view token) {
    skipSpace();
    if (text_.substr(pos_).substr(0, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void expect(std::string_view token) {
    if (!tryConsume(token)) fail("expected '" + std::string(token) + "'");
  }

  char peek() {
    skipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  /// Reads an identifier-like word ([A-Za-z0-9._-]+).
  std::string word() {
    skipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && isNameChar(text_[pos_])) ++pos_;
    if (pos_ == start) fail("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Reads a (possibly signed / fractional / exponent) numeric literal.
  std::string number() {
    skipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Reads an unsigned decimal integer, rejecting signs, trailing garbage
  /// and out-of-range values (strtoull silently wraps "-1" to 2^64-1).
  uint64_t unsignedInt(const std::string& what) {
    std::string text = number();
    errno = 0;
    char* end = nullptr;
    unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])) ||
        end != text.c_str() + text.size() || errno == ERANGE) {
      fail("invalid " + what + " '" + text + "'");
    }
    return value;
  }

  std::string_view rest() const { return text_.substr(pos_); }

  int line() const { return lineNo_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int lineNo_;
  int colBase_;
};

struct PendingRef {
  Instruction* user;
  size_t operandIndex;
  std::string name;
  int line;
};

class Parser {
 public:
  Parser(const std::string& text, const ParserLimits& limits)
      : limits_(limits) {
    for (std::string_view raw : split(text, '\n')) {
      std::string_view trimmed = trim(raw);
      lines_.push_back(trimmed);
      colBases_.push_back(trimmed.empty()
                              ? 0
                              : static_cast<int>(trimmed.data() - raw.data()));
    }
  }

  std::unique_ptr<Module> run() {
    // Module header: module "<name>" {
    size_t headerLine = next("module header");
    std::string_view raw = lines_[headerLine];
    size_t open = raw.find('"');
    size_t close = raw.rfind('"');
    if (!startsWith(raw, "module") || open == std::string_view::npos ||
        close <= open || raw.find('{', close) == std::string_view::npos) {
      cursorAt(headerLine).fail("expected: module \"<name>\" {");
    }
    module_ = std::make_unique<Module>(
        std::string(raw.substr(open + 1, close - open - 1)));

    // Pre-scan function signatures so calls can reference later functions.
    prescanFunctions();

    while (true) {
      size_t lineNo = next("module body");
      Cursor c = cursorAt(lineNo);
      if (c.tryConsume("}")) break;
      if (c.tryConsume("global")) {
        parseGlobal(c);
      } else if (c.tryConsume("func")) {
        parseFunction(lineNo);
      } else {
        c.fail("expected 'global', 'func' or '}'");
      }
    }
    // Anything after the closing brace is hostile or corrupt input, not a
    // module — reject it so print -> parse -> print reaches a fixpoint.
    while (pos_ < lines_.size()) {
      if (!lines_[pos_].empty()) {
        cursorAt(pos_).fail("trailing content after module close");
      }
      ++pos_;
    }
    return std::move(module_);
  }

 private:
  Cursor cursorAt(size_t index) const {
    return Cursor(lines_[index], static_cast<int>(index) + 1,
                  colBases_[index]);
  }

  [[noreturn]] void failAt(size_t lineIndex, const std::string& message) const {
    throw DiagnosticError(Diagnostic{Stage::Parse, "", message,
                                     static_cast<int>(lineIndex) + 1, 0});
  }

  /// Advances to the next non-empty line and returns its index.
  size_t next(const std::string& context) {
    while (pos_ < lines_.size() && lines_[pos_].empty()) ++pos_;
    if (pos_ >= lines_.size()) {
      failAt(lines_.empty() ? 0 : lines_.size() - 1,
             "unexpected end of input in " + context);
    }
    return pos_++;
  }

  const Type* parseType(Cursor& c) {
    std::string spelling = c.word();
    const Type* type = Type::byName(spelling.c_str());
    if (type == nullptr) c.fail("unknown type '" + spelling + "'");
    return type;
  }

  void parseGlobal(Cursor& c) {
    c.expect("@");
    std::string name = c.word();
    if (module_->globalByName(name) != nullptr) {
      c.fail("duplicate global @" + name);
    }
    c.expect(":");
    const Type* elemType = parseType(c);
    if (elemType->isVoid()) c.fail("global @" + name + " of void type");
    c.expect("[");
    uint64_t numElems = c.unsignedInt("array size");
    if (numElems > limits_.maxGlobalElems) {
      c.fail("global @" + name + " exceeds the element limit (" +
             std::to_string(numElems) + " > " +
             std::to_string(limits_.maxGlobalElems) + ")");
    }
    c.expect("]");
    // Element count is capped, so the byte product cannot overflow.
    totalGlobalBytes_ += numElems * elemType->sizeBytes();
    if (totalGlobalBytes_ > limits_.maxTotalGlobalBytes) {
      c.fail("global arrays exceed the total size limit (" +
             std::to_string(limits_.maxTotalGlobalBytes) + " bytes)");
    }
    GlobalArray* global =
        module_->addGlobal(std::move(name), elemType, numElems);
    if (c.tryConsume("=")) {
      c.expect("[");
      std::vector<double> init;
      init.reserve(static_cast<size_t>(numElems));
      if (!c.tryConsume("]")) {
        while (true) {
          if (init.size() >= numElems) {
            c.fail("initializer for @" + global->name() + " has more than " +
                   std::to_string(numElems) + " elements");
          }
          init.push_back(std::strtod(c.number().c_str(), nullptr));
          if (c.tryConsume("]")) break;
          c.expect(",");
        }
      }
      if (init.size() != numElems) {
        c.fail("initializer for @" + global->name() + " has " +
               std::to_string(init.size()) + " elements, expected " +
               std::to_string(numElems));
      }
      global->setInit(std::move(init));
    }
  }

  void prescanFunctions() {
    for (size_t i = pos_; i < lines_.size(); ++i) {
      Cursor c = cursorAt(i);
      if (!c.tryConsume("func")) continue;
      c.expect("@");
      std::string name = c.word();
      if (module_->functionByName(name) != nullptr) {
        c.fail("duplicate function @" + name);
      }
      if (module_->functions().size() >= limits_.maxFunctions) {
        c.fail("function count exceeds the limit (" +
               std::to_string(limits_.maxFunctions) + ")");
      }
      c.expect("(");
      std::vector<std::pair<const Type*, std::string>> params;
      if (!c.tryConsume(")")) {
        while (true) {
          if (params.size() >= limits_.maxParams) {
            c.fail("parameter count exceeds the limit (" +
                   std::to_string(limits_.maxParams) + ")");
          }
          c.expect("%");
          std::string paramName = c.word();
          c.expect(":");
          params.emplace_back(parseType(c), paramName);
          if (c.tryConsume(")")) break;
          c.expect(",");
        }
      }
      c.expect("->");
      const Type* returnType = parseType(c);
      module_->addFunction(std::move(name), returnType, std::move(params));
    }
  }

  void parseFunction(size_t signatureLine) {
    Cursor sig = cursorAt(signatureLine);
    sig.expect("func");
    sig.expect("@");
    Function* function = module_->functionByName(sig.word());
    CAYMAN_ASSERT(function != nullptr, "function missed by pre-scan");
    if (!function->blocks().empty()) {
      sig.fail("function @" + function->name() + " defined twice");
    }

    values_.clear();
    pending_.clear();
    placeholders_.clear();
    for (const auto& arg : function->arguments()) {
      values_[arg->name()] = arg.get();
    }

    // First pass: collect block labels and result types for forward refs.
    std::map<std::string, const Type*> resultTypes;
    std::vector<size_t> bodyLines;
    size_t numInstructions = 0;
    for (size_t i = pos_;; ++i) {
      if (i >= lines_.size()) {
        failAt(lines_.size() - 1, "function @" + function->name() +
                                      " not terminated by '}'");
      }
      std::string_view line = lines_[i];
      if (line.empty()) continue;
      if (line == "}") {
        for (size_t j = pos_; j < i; ++j) bodyLines.push_back(j);
        pos_ = i + 1;
        break;
      }
      if (line.back() == ':') {
        std::string label(line.substr(0, line.size() - 1));
        if (function->blockByName(label) != nullptr) {
          cursorAt(i).fail("duplicate block label '" + label + "'");
        }
        if (function->blocks().size() >= limits_.maxBlocksPerFunction) {
          cursorAt(i).fail("block count exceeds the limit (" +
                           std::to_string(limits_.maxBlocksPerFunction) + ")");
        }
        function->addBlock(std::move(label));
      } else {
        if (++numInstructions > limits_.maxInstructionsPerFunction) {
          cursorAt(i).fail(
              "instruction count exceeds the limit (" +
              std::to_string(limits_.maxInstructionsPerFunction) + ")");
        }
        if (line[0] == '%') {
          Cursor c = cursorAt(i);
          c.expect("%");
          std::string name = c.word();
          c.expect("=");
          resultTypes[name] = scanResultType(c, function);
        }
      }
    }

    // Second pass: build instructions.
    BasicBlock* current = nullptr;
    for (size_t lineNo : bodyLines) {
      std::string_view line = lines_[lineNo];
      if (line.empty()) continue;
      if (line.back() == ':') {
        current = function->blockByName(line.substr(0, line.size() - 1));
        continue;
      }
      Cursor c = cursorAt(lineNo);
      if (current == nullptr) c.fail("instruction before first block label");
      parseInstruction(c, function, current, resultTypes);
    }

    // Resolve forward references.
    for (const PendingRef& ref : pending_) {
      auto it = values_.find(ref.name);
      if (it == values_.end()) {
        throw DiagnosticError(Diagnostic{Stage::Parse, "",
                                         "undefined value %" + ref.name,
                                         ref.line, 0});
      }
      ref.user->setOperand(ref.operandIndex, it->second);
    }
    for (auto& placeholder : placeholders_) {
      CAYMAN_ASSERT(!placeholder->hasUsers(), "unresolved placeholder use");
    }
  }

  /// Determines the result type of an instruction line without building it.
  const Type* scanResultType(Cursor& c, Function* /*function*/) {
    std::string op = c.word();
    if (op == "icmp" || op == "fcmp") return Type::i1();
    if (op == "gep") return Type::ptr();
    if (op == "call") {
      c.expect("@");
      Function* callee = module_->functionByName(c.word());
      if (callee == nullptr) c.fail("call to unknown function");
      return callee->returnType();
    }
    if (op == "zext" || op == "sext" || op == "trunc" || op == "sitofp" ||
        op == "fptosi") {
      parseType(c);  // source type
      if (c.tryConsume("%") || c.tryConsume("@")) {
        c.word();
      } else {
        c.number();
      }
      c.expect("to");
      return parseType(c);
    }
    // Every remaining producing opcode spells the result type next.
    return parseType(c);
  }

  /// Parses an operand reference of known type.
  Value* parseOperand(Cursor& c, const Type* type, Instruction** fixupUser,
                      std::vector<std::pair<size_t, std::string>>* fixups,
                      size_t operandIndex) {
    (void)fixupUser;
    if (c.tryConsume("@")) {
      std::string name = c.word();
      GlobalArray* global = module_->globalByName(name);
      if (global == nullptr) c.fail("unknown global @" + name);
      return global;
    }
    if (c.tryConsume("%")) {
      std::string name = c.word();
      auto it = values_.find(name);
      if (it != values_.end()) return it->second;
      // Forward reference: create a typed placeholder, fix up later.
      const Type* refType = type;
      if (refType == nullptr) c.fail("forward reference %" + name +
                                     " in a position without a known type");
      fixups->emplace_back(operandIndex, name);
      placeholders_.push_back(
          std::make_unique<Argument>(refType, "$placeholder." + name, 0u));
      return placeholders_.back().get();
    }
    // Literal constant.
    if (type == nullptr) c.fail("literal constant in an untyped position");
    std::string text = c.number();
    if (type->isFloat()) {
      return module_->constFP(type, std::strtod(text.c_str(), nullptr));
    }
    if (type->isInteger()) {
      return module_->constInt(type,
                               std::strtoll(text.c_str(), nullptr, 10));
    }
    c.fail("literal constant cannot have pointer type");
  }

  BasicBlock* parseBlockRef(Cursor& c, Function* function) {
    std::string name = c.word();
    BasicBlock* block = function->blockByName(name);
    if (block == nullptr) c.fail("unknown block '" + name + "'");
    return block;
  }

  void parseInstruction(Cursor& c, Function* function, BasicBlock* block,
                        const std::map<std::string, const Type*>& resultTypes) {
    std::string resultName;
    if (c.tryConsume("%")) {
      resultName = c.word();
      c.expect("=");
      if (values_.count(resultName) != 0) {
        c.fail("redefinition of %" + resultName);
      }
    }
    std::string op = c.word();
    std::vector<std::pair<size_t, std::string>> fixups;

    auto finish = [&](std::unique_ptr<Instruction> inst) {
      Instruction* raw = block->append(std::move(inst));
      if (!resultName.empty()) {
        raw->setName(resultName);
        values_[resultName] = raw;
      }
      for (auto& [operandIndex, name] : fixups) {
        pending_.push_back({raw, operandIndex, name, c.line()});
      }
      return raw;
    };

    auto typeOfRef = [&](const std::string& name) -> const Type* {
      auto it = resultTypes.find(name);
      return it == resultTypes.end() ? nullptr : it->second;
    };
    (void)typeOfRef;

    if (op == "icmp" || op == "fcmp") {
      std::string predName = c.word();
      CmpPred pred = CmpPred::EQ;
      bool found = false;
      for (CmpPred p : {CmpPred::EQ, CmpPred::NE, CmpPred::LT, CmpPred::LE,
                        CmpPred::GT, CmpPred::GE}) {
        if (predName == cmpPredSpelling(p)) {
          pred = p;
          found = true;
        }
      }
      if (!found) c.fail("unknown predicate '" + predName + "'");
      const Type* operandType = parseType(c);
      Value* a = parseOperand(c, operandType, nullptr, &fixups, 0);
      c.expect(",");
      Value* b = parseOperand(c, operandType, nullptr, &fixups, 1);
      auto inst = std::make_unique<Instruction>(
          op == "icmp" ? Opcode::ICmp : Opcode::FCmp, Type::i1(),
          std::vector<Value*>{a, b}, "");
      inst->setCmpPred(pred);
      finish(std::move(inst));
      return;
    }

    if (op == "gep") {
      Value* base = parseOperand(c, Type::ptr(), nullptr, &fixups, 0);
      c.expect(",");
      Value* index = parseOperand(c, Type::i64(), nullptr, &fixups, 1);
      c.expect(",");
      c.expect("elem");
      uint64_t elemSize = c.unsignedInt("gep element size");
      if (elemSize == 0 || elemSize > 64) {
        c.fail("gep element size " + std::to_string(elemSize) +
               " out of range [1, 64]");
      }
      auto inst = std::make_unique<Instruction>(
          Opcode::Gep, Type::ptr(), std::vector<Value*>{base, index}, "");
      inst->setGepElemSize(static_cast<unsigned>(elemSize));
      finish(std::move(inst));
      return;
    }

    if (op == "load") {
      const Type* type = parseType(c);
      if (type->isVoid()) c.fail("load of void type");
      c.expect(",");
      Value* ptr = parseOperand(c, Type::ptr(), nullptr, &fixups, 0);
      finish(std::make_unique<Instruction>(Opcode::Load, type,
                                           std::vector<Value*>{ptr}, ""));
      return;
    }

    if (op == "store") {
      const Type* type = parseType(c);
      if (type->isVoid()) c.fail("store of void type");
      Value* value = parseOperand(c, type, nullptr, &fixups, 0);
      c.expect(",");
      Value* ptr = parseOperand(c, Type::ptr(), nullptr, &fixups, 1);
      finish(std::make_unique<Instruction>(Opcode::Store, Type::voidTy(),
                                           std::vector<Value*>{value, ptr},
                                           ""));
      return;
    }

    if (op == "br") {
      BasicBlock* dest = parseBlockRef(c, function);
      auto inst = std::make_unique<Instruction>(Opcode::Br, Type::voidTy(),
                                                std::vector<Value*>{}, "");
      inst->setSuccessors({dest});
      finish(std::move(inst));
      return;
    }

    if (op == "condbr") {
      Value* cond = parseOperand(c, Type::i1(), nullptr, &fixups, 0);
      c.expect(",");
      BasicBlock* ifTrue = parseBlockRef(c, function);
      c.expect(",");
      BasicBlock* ifFalse = parseBlockRef(c, function);
      auto inst = std::make_unique<Instruction>(
          Opcode::CondBr, Type::voidTy(), std::vector<Value*>{cond}, "");
      inst->setSuccessors({ifTrue, ifFalse});
      finish(std::move(inst));
      return;
    }

    if (op == "phi") {
      const Type* type = parseType(c);
      if (type->isVoid()) c.fail("phi of void type");
      auto inst = std::make_unique<Instruction>(Opcode::Phi, type,
                                                std::vector<Value*>{}, "");
      Instruction* raw = finish(std::move(inst));
      size_t operandIndex = 0;
      while (c.tryConsume("[")) {
        // addIncoming registers the use; use a placeholder path via fixups.
        std::vector<std::pair<size_t, std::string>> phiFixups;
        Value* value = parseOperand(c, type, nullptr, &phiFixups, operandIndex);
        c.expect(",");
        BasicBlock* incomingBlock = parseBlockRef(c, function);
        c.expect("]");
        raw->addIncoming(value, incomingBlock);
        for (auto& [idx, name] : phiFixups) {
          pending_.push_back({raw, idx, name, c.line()});
        }
        ++operandIndex;
        if (!c.tryConsume(",")) break;
      }
      return;
    }

    if (op == "call") {
      c.expect("@");
      Function* callee = module_->functionByName(c.word());
      if (callee == nullptr) c.fail("call to unknown function");
      c.expect("(");
      std::vector<Value*> args;
      if (!c.tryConsume(")")) {
        while (true) {
          if (args.size() >= callee->numArguments()) {
            c.fail("too many arguments to @" + callee->name() + " (expected " +
                   std::to_string(callee->numArguments()) + ")");
          }
          const Type* argType = callee->argument(args.size())->type();
          args.push_back(
              parseOperand(c, argType, nullptr, &fixups, args.size()));
          if (c.tryConsume(")")) break;
          c.expect(",");
        }
      }
      if (args.size() != callee->numArguments()) {
        c.fail("call to @" + callee->name() + " passes " +
               std::to_string(args.size()) + " argument(s), expected " +
               std::to_string(callee->numArguments()));
      }
      auto inst = std::make_unique<Instruction>(
          Opcode::Call, callee->returnType(), std::move(args), "");
      inst->setCallee(callee);
      finish(std::move(inst));
      return;
    }

    if (op == "ret") {
      std::vector<Value*> operands;
      if (!c.atEnd()) {
        const Type* type = parseType(c);
        operands.push_back(parseOperand(c, type, nullptr, &fixups, 0));
      }
      finish(std::make_unique<Instruction>(Opcode::Ret, Type::voidTy(),
                                           std::move(operands), ""));
      return;
    }

    if (op == "zext" || op == "sext" || op == "trunc" || op == "sitofp" ||
        op == "fptosi") {
      const Type* fromType = parseType(c);
      Value* value = parseOperand(c, fromType, nullptr, &fixups, 0);
      c.expect("to");
      const Type* toType = parseType(c);
      Opcode opcode = op == "zext"     ? Opcode::ZExt
                      : op == "sext"   ? Opcode::SExt
                      : op == "trunc"  ? Opcode::Trunc
                      : op == "sitofp" ? Opcode::SIToFP
                                       : Opcode::FPToSI;
      finish(std::make_unique<Instruction>(opcode, toType,
                                           std::vector<Value*>{value}, ""));
      return;
    }

    // Generic arithmetic / select form: "<op> <type> a, b, ...".
    static const std::map<std::string, std::pair<Opcode, int>> kGeneric = {
        {"add", {Opcode::Add, 2}},     {"sub", {Opcode::Sub, 2}},
        {"mul", {Opcode::Mul, 2}},     {"sdiv", {Opcode::SDiv, 2}},
        {"srem", {Opcode::SRem, 2}},   {"and", {Opcode::And, 2}},
        {"or", {Opcode::Or, 2}},       {"xor", {Opcode::Xor, 2}},
        {"shl", {Opcode::Shl, 2}},     {"ashr", {Opcode::AShr, 2}},
        {"lshr", {Opcode::LShr, 2}},   {"fadd", {Opcode::FAdd, 2}},
        {"fsub", {Opcode::FSub, 2}},   {"fmul", {Opcode::FMul, 2}},
        {"fdiv", {Opcode::FDiv, 2}},   {"fneg", {Opcode::FNeg, 1}},
        {"fsqrt", {Opcode::FSqrt, 1}}, {"fabs", {Opcode::FAbs, 1}},
        {"fmin", {Opcode::FMin, 2}},   {"fmax", {Opcode::FMax, 2}},
        {"select", {Opcode::Select, 3}},
    };
    auto it = kGeneric.find(op);
    if (it == kGeneric.end()) c.fail("unknown opcode '" + op + "'");
    auto [opcode, arity] = it->second;
    const Type* type = parseType(c);
    if (type->isVoid()) c.fail("'" + op + "' of void type");
    std::vector<Value*> operands;
    for (int i = 0; i < arity; ++i) {
      if (i > 0) c.expect(",");
      const Type* operandType =
          (opcode == Opcode::Select && i == 0) ? Type::i1() : type;
      operands.push_back(parseOperand(c, operandType, nullptr, &fixups,
                                      static_cast<size_t>(i)));
    }
    finish(std::make_unique<Instruction>(opcode, type, std::move(operands),
                                         ""));
  }

  ParserLimits limits_;
  std::vector<std::string_view> lines_;
  std::vector<int> colBases_;
  size_t pos_ = 0;
  uint64_t totalGlobalBytes_ = 0;
  // Placeholders must outlive the module: on error paths instructions may
  // still reference them, and Module teardown unregisters those uses.
  std::vector<std::unique_ptr<Value>> placeholders_;
  std::unique_ptr<Module> module_;
  std::map<std::string, Value*> values_;
  std::vector<PendingRef> pending_;
};

}  // namespace

std::unique_ptr<Module> parseModule(const std::string& text,
                                    const ParserLimits& limits) {
  if (text.size() > limits.maxInputBytes) {
    throw DiagnosticError(Diagnostic{
        Stage::Parse, "",
        "input exceeds the size limit (" + std::to_string(text.size()) +
            " > " + std::to_string(limits.maxInputBytes) + " bytes)"});
  }
  return Parser(text, limits).run();
}

support::Expected<std::unique_ptr<Module>> parseModuleExpected(
    const std::string& text, const ParserLimits& limits) {
  try {
    return parseModule(text, limits);
  } catch (const DiagnosticError& e) {
    return e.diagnostic();
  } catch (const Error& e) {
    return Diagnostic{Stage::Parse, "", e.what()};
  }
}

}  // namespace cayman::ir
