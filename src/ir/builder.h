// IRBuilder: convenience factory for instructions at an insertion point.
#pragma once

#include "ir/module.h"

namespace cayman::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Module* module) : module_(module) {}

  Module* module() const { return module_; }

  void setInsertPoint(BasicBlock* block) { block_ = block; }
  BasicBlock* insertBlock() const { return block_; }

  // --- Integer arithmetic ---------------------------------------------------
  Value* add(Value* a, Value* b, std::string name = "");
  Value* sub(Value* a, Value* b, std::string name = "");
  Value* mul(Value* a, Value* b, std::string name = "");
  Value* sdiv(Value* a, Value* b, std::string name = "");
  Value* srem(Value* a, Value* b, std::string name = "");
  Value* and_(Value* a, Value* b, std::string name = "");
  Value* or_(Value* a, Value* b, std::string name = "");
  Value* xor_(Value* a, Value* b, std::string name = "");
  Value* shl(Value* a, Value* b, std::string name = "");
  Value* ashr(Value* a, Value* b, std::string name = "");
  Value* lshr(Value* a, Value* b, std::string name = "");

  // --- Floating point ---------------------------------------------------------
  Value* fadd(Value* a, Value* b, std::string name = "");
  Value* fsub(Value* a, Value* b, std::string name = "");
  Value* fmul(Value* a, Value* b, std::string name = "");
  Value* fdiv(Value* a, Value* b, std::string name = "");
  Value* fneg(Value* a, std::string name = "");
  Value* fsqrt(Value* a, std::string name = "");
  Value* fabs_(Value* a, std::string name = "");
  Value* fmin(Value* a, Value* b, std::string name = "");
  Value* fmax(Value* a, Value* b, std::string name = "");

  // --- Comparisons / select ----------------------------------------------------
  Value* icmp(CmpPred pred, Value* a, Value* b, std::string name = "");
  Value* fcmp(CmpPred pred, Value* a, Value* b, std::string name = "");
  Value* select(Value* cond, Value* ifTrue, Value* ifFalse,
                std::string name = "");

  // --- Conversions ------------------------------------------------------------
  Value* zext(Value* v, const Type* to, std::string name = "");
  Value* sext(Value* v, const Type* to, std::string name = "");
  Value* trunc(Value* v, const Type* to, std::string name = "");
  Value* sitofp(Value* v, const Type* to, std::string name = "");
  Value* fptosi(Value* v, const Type* to, std::string name = "");

  // --- Memory -----------------------------------------------------------------
  /// Address arithmetic: base + index * elemType->sizeBytes().
  Value* gep(Value* base, Value* index, const Type* elemType,
             std::string name = "");
  Value* load(const Type* type, Value* ptr, std::string name = "");
  Instruction* store(Value* value, Value* ptr);

  // --- Control flow -------------------------------------------------------------
  Instruction* phi(const Type* type, std::string name = "");
  Instruction* br(BasicBlock* dest);
  Instruction* condBr(Value* cond, BasicBlock* ifTrue, BasicBlock* ifFalse);
  Value* call(Function* callee, std::vector<Value*> args,
              std::string name = "");
  Instruction* ret(Value* value = nullptr);

  // --- Constants shorthand --------------------------------------------------------
  ConstantInt* i64(int64_t v) { return module_->constI64(v); }
  ConstantInt* i32(int64_t v) { return module_->constI32(v); }
  ConstantFP* f64(double v) { return module_->constF64(v); }

 private:
  Instruction* emit(Opcode op, const Type* type, std::vector<Value*> operands,
                    std::string name);
  Value* binary(Opcode op, Value* a, Value* b, std::string name, bool isFloat);

  Module* module_;
  BasicBlock* block_ = nullptr;
};

}  // namespace cayman::ir
