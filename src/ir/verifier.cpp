#include "ir/verifier.h"

#include <map>
#include <set>
#include <sstream>

#include "support/status.h"

namespace cayman::ir {

namespace {

/// Untrusted input can produce arbitrarily many violations; cap the report
/// so verification stays linear in module size.
constexpr size_t kMaxErrors = 64;

class Verifier {
 public:
  explicit Verifier(const Module& module) : module_(module) {}

  std::vector<std::string> run() {
    for (const auto& function : module_.functions()) {
      if (errors_.size() >= kMaxErrors) {
        errors_.push_back("(further errors suppressed)");
        break;
      }
      check(*function);
    }
    return std::move(errors_);
  }

 private:
  void error(const Function& f, const std::string& message) {
    if (errors_.size() >= kMaxErrors) return;
    errors_.push_back("in @" + f.name() + ": " + message);
  }

  void check(const Function& f) {
    if (f.blocks().empty()) {
      error(f, "function has no blocks");
      return;
    }

    std::set<const BasicBlock*> blocks;
    for (const auto& block : f.blocks()) blocks.insert(block.get());

    // Predecessor map for phi validation.
    std::map<const BasicBlock*, std::set<const BasicBlock*>> preds;
    for (const auto& block : f.blocks()) {
      const Instruction* term = block->terminator();
      if (term == nullptr) {
        error(f, "block " + block->name() + " has no terminator");
        continue;
      }
      for (const BasicBlock* succ : term->successors()) {
        if (blocks.count(succ) == 0) {
          error(f, "block " + block->name() +
                       " branches to a block outside the function");
        } else {
          preds[succ].insert(block.get());
        }
      }
    }

    if (!preds[f.entry()].empty()) {
      error(f, "entry block has predecessors");
    }

    std::set<const Value*> defined;
    for (const auto& arg : f.arguments()) defined.insert(arg.get());
    for (const auto& block : f.blocks()) {
      for (const auto& inst : block->instructions()) {
        defined.insert(inst.get());
      }
    }

    for (const auto& block : f.blocks()) {
      bool seenNonPhi = false;
      for (size_t i = 0; i < block->instructions().size(); ++i) {
        const Instruction& inst = *block->instructions()[i];
        const bool isLast = i + 1 == block->instructions().size();

        if (inst.isTerminator() && !isLast) {
          error(f, "terminator mid-block in " + block->name());
        }
        if (inst.opcode() == Opcode::Phi) {
          if (seenNonPhi) {
            error(f, "phi after non-phi in " + block->name());
          }
          checkPhi(f, *block, inst, preds[block.get()]);
        } else {
          seenNonPhi = true;
        }

        for (const Value* operand : inst.operands()) {
          const bool isInstOrArg =
              operand->valueKind() == ValueKind::Instruction ||
              operand->valueKind() == ValueKind::Argument;
          if (isInstOrArg && defined.count(operand) == 0) {
            error(f, "instruction in " + block->name() +
                         " uses a value from another function");
          }
        }

        if (inst.opcode() == Opcode::Ret) {
          const bool wantsValue = !f.returnType()->isVoid();
          if (wantsValue != (inst.numOperands() == 1)) {
            error(f, "ret arity does not match return type");
          } else if (wantsValue &&
                     inst.operand(0)->type() != f.returnType()) {
            error(f, "ret value type does not match return type");
          }
        }
        if (inst.opcode() == Opcode::Gep && inst.gepElemSize() == 0) {
          error(f, "gep with zero element size in " + block->name());
        }
        checkStructure(f, *block, inst);
      }
    }
  }

  /// Shape checks that downstream consumers (interpreter, decoder, HLS)
  /// assume without re-validating: successor/operand arity per opcode, call
  /// signature agreement, i1 branch conditions.
  void checkStructure(const Function& f, const BasicBlock& block,
                      const Instruction& inst) {
    auto wantSuccessors = [&](size_t n) {
      if (inst.successors().size() != n) {
        error(f, "terminator in " + block.name() + " has " +
                     std::to_string(inst.successors().size()) +
                     " successor(s), expected " + std::to_string(n));
      }
    };
    auto wantOperands = [&](size_t n, const char* what) {
      if (inst.numOperands() != n) {
        error(f, std::string(what) + " in " + block.name() + " has " +
                     std::to_string(inst.numOperands()) +
                     " operand(s), expected " + std::to_string(n));
        return false;
      }
      return true;
    };
    switch (inst.opcode()) {
      case Opcode::Br:
        wantSuccessors(1);
        break;
      case Opcode::CondBr:
        wantSuccessors(2);
        if (wantOperands(1, "condbr") &&
            inst.operand(0)->type() != Type::i1()) {
          error(f, "condbr condition in " + block.name() + " is not i1");
        }
        break;
      case Opcode::Load:
        wantOperands(1, "load");
        break;
      case Opcode::Store:
        wantOperands(2, "store");
        break;
      case Opcode::Call: {
        const Function* callee = inst.callee();
        if (callee == nullptr) {
          error(f, "call without callee in " + block.name());
          break;
        }
        if (inst.numOperands() != callee->numArguments()) {
          error(f, "call to @" + callee->name() + " in " + block.name() +
                       " passes " + std::to_string(inst.numOperands()) +
                       " argument(s), expected " +
                       std::to_string(callee->numArguments()));
          break;
        }
        for (size_t i = 0; i < inst.numOperands(); ++i) {
          if (inst.operand(i)->type() != callee->argument(i)->type()) {
            error(f, "call to @" + callee->name() + " in " + block.name() +
                         " argument " + std::to_string(i) +
                         " type mismatch");
          }
        }
        break;
      }
      default:
        if (!inst.isTerminator() && !inst.successors().empty()) {
          error(f, "non-terminator with successors in " + block.name());
        }
        break;
    }
  }

  void checkPhi(const Function& f, const BasicBlock& block,
                const Instruction& phi,
                const std::set<const BasicBlock*>& preds) {
    std::set<const BasicBlock*> incoming(phi.incomingBlocks().begin(),
                                         phi.incomingBlocks().end());
    if (incoming.size() != phi.incomingBlocks().size()) {
      error(f, "phi in " + block.name() + " lists a block twice");
    }
    if (incoming != preds) {
      error(f, "phi in " + block.name() +
                   " incoming blocks do not match predecessors");
    }
  }

  const Module& module_;
  std::vector<std::string> errors_;
};

}  // namespace

std::vector<std::string> verifyModule(const Module& module) {
  return Verifier(module).run();
}

void verifyOrThrow(const Module& module) {
  std::vector<std::string> errors = verifyModule(module);
  if (errors.empty()) return;
  std::ostringstream os;
  os << "module " << module.name() << " failed verification:";
  for (const std::string& e : errors) os << "\n  " << e;
  throw support::DiagnosticError(support::Diagnostic{
      support::Stage::Verify, module.name(), os.str()});
}

}  // namespace cayman::ir
