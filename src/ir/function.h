// Function: arguments plus a CFG of basic blocks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.h"

namespace cayman::ir {

class Module;

class Function {
 public:
  Function(Module* parent, std::string name, const Type* returnType,
           std::vector<std::pair<const Type*, std::string>> params);

  Function(const Function&) = delete;
  Function& operator=(const Function&) = delete;

  Module* parent() const { return parent_; }
  const std::string& name() const { return name_; }
  const Type* returnType() const { return returnType_; }

  const std::vector<std::unique_ptr<Argument>>& arguments() const {
    return args_;
  }
  Argument* argument(size_t i) const { return args_.at(i).get(); }
  size_t numArguments() const { return args_.size(); }

  const std::vector<std::unique_ptr<BasicBlock>>& blocks() const {
    return blocks_;
  }
  BasicBlock* entry() const {
    CAYMAN_ASSERT(!blocks_.empty(), "function has no blocks");
    return blocks_.front().get();
  }
  size_t numBlocks() const { return blocks_.size(); }

  /// Creates and appends a new basic block.
  BasicBlock* addBlock(std::string name);
  /// Looks a block up by name; nullptr when absent.
  BasicBlock* blockByName(std::string_view name) const;

  /// Gives every unnamed value a unique printable name (%0, %1, ... / bb0...)
  /// and de-duplicates clashes. Called by the printer and verifier.
  void assignNames();

 private:
  Module* parent_;
  std::string name_;
  const Type* returnType_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
};

}  // namespace cayman::ir
