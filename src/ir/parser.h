// Parser for the textual IR emitted by printer.h. Round-trip guarantee:
// parse(printModule(m)) reproduces an isomorphic module.
//
// The parser is an untrusted-input boundary (`cayman_cli run <file.cir>`,
// the fuzz harness): every failure is a structured DiagnosticError with a
// 1-based line:col position, and ParserLimits caps input size, global-array
// footprint, and per-function shape so hostile text is rejected with a
// diagnostic instead of exhausting memory.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ir/module.h"
#include "support/status.h"

namespace cayman::ir {

/// Resource caps applied while parsing untrusted text. The defaults are two
/// orders of magnitude above anything the built-in workloads need while
/// keeping worst-case memory for a hostile input bounded to tens of MB.
struct ParserLimits {
  /// Whole-input size in bytes.
  size_t maxInputBytes = 16u << 20;
  /// Elements in one global array.
  uint64_t maxGlobalElems = 1u << 22;
  /// Summed byte footprint of all global arrays (what SimMemory allocates).
  uint64_t maxTotalGlobalBytes = 64u << 20;
  /// Functions per module.
  size_t maxFunctions = 1u << 10;
  /// Blocks per function.
  size_t maxBlocksPerFunction = 1u << 16;
  /// Instructions per function.
  size_t maxInstructionsPerFunction = 1u << 20;
  /// Parameters per function / arguments per call.
  size_t maxParams = 256;
};

/// Parses a module from text; throws support::DiagnosticError (a subclass of
/// cayman::Error) with stage=Parse and line:col on syntax, semantic, or
/// resource-limit errors.
std::unique_ptr<Module> parseModule(const std::string& text,
                                    const ParserLimits& limits = {});

/// Exception-free wrapper: the parsed module or the parse Diagnostic.
support::Expected<std::unique_ptr<Module>> parseModuleExpected(
    const std::string& text, const ParserLimits& limits = {});

}  // namespace cayman::ir
