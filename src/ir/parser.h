// Parser for the textual IR emitted by printer.h. Round-trip guarantee:
// parse(printModule(m)) reproduces an isomorphic module.
#pragma once

#include <memory>
#include <string>

#include "ir/module.h"

namespace cayman::ir {

/// Parses a module from text; throws cayman::Error with line information on
/// syntax or semantic errors.
std::unique_ptr<Module> parseModule(const std::string& text);

}  // namespace cayman::ir
