// Textual IR output (stable format, round-trips through the parser).
#pragma once

#include <string>

#include "ir/module.h"

namespace cayman::ir {

/// Renders a whole module. Calls Function::assignNames() on each function to
/// guarantee unique printable names.
std::string printModule(const Module& module);

/// Renders one function.
std::string printFunction(Function& function);

/// Renders a single instruction (operands by current name; no renaming).
std::string printInstruction(const Instruction& inst);

}  // namespace cayman::ir
