#include "ir/printer.h"

#include <sstream>

#include "support/strings.h"

namespace cayman::ir {

namespace {

std::string valueRef(const Value* value) {
  switch (value->valueKind()) {
    case ValueKind::ConstantInt:
      return std::to_string(static_cast<const ConstantInt*>(value)->value());
    case ValueKind::ConstantFP: {
      std::ostringstream os;
      os << static_cast<const ConstantFP*>(value)->value();
      std::string text = os.str();
      // Keep FP literals recognizable to the parser.
      if (text.find('.') == std::string::npos &&
          text.find('e') == std::string::npos &&
          text.find("inf") == std::string::npos &&
          text.find("nan") == std::string::npos) {
        text += ".0";
      }
      return text;
    }
    case ValueKind::GlobalArray:
      return "@" + value->name();
    default:
      return "%" + value->name();
  }
}

void printInstructionTo(std::ostringstream& os, const Instruction& inst) {
  if (!inst.type()->isVoid()) os << "%" << inst.name() << " = ";
  os << opcodeSpelling(inst.opcode());

  switch (inst.opcode()) {
    case Opcode::ICmp:
    case Opcode::FCmp:
      os << " " << cmpPredSpelling(inst.cmpPred()) << " "
         << inst.operand(0)->type()->spelling() << " "
         << valueRef(inst.operand(0)) << ", " << valueRef(inst.operand(1));
      break;
    case Opcode::Gep:
      os << " " << valueRef(inst.operand(0)) << ", "
         << valueRef(inst.operand(1)) << ", elem " << inst.gepElemSize();
      break;
    case Opcode::Load:
      os << " " << inst.type()->spelling() << ", " << valueRef(inst.operand(0));
      break;
    case Opcode::Store:
      os << " " << inst.operand(0)->type()->spelling() << " "
         << valueRef(inst.operand(0)) << ", " << valueRef(inst.operand(1));
      break;
    case Opcode::Br:
      os << " " << inst.successors()[0]->name();
      break;
    case Opcode::CondBr:
      os << " " << valueRef(inst.operand(0)) << ", "
         << inst.successors()[0]->name() << ", "
         << inst.successors()[1]->name();
      break;
    case Opcode::Phi: {
      os << " " << inst.type()->spelling();
      for (size_t i = 0; i < inst.numOperands(); ++i) {
        os << (i == 0 ? " " : ", ") << "[ " << valueRef(inst.operand(i))
           << ", " << inst.incomingBlocks()[i]->name() << " ]";
      }
      break;
    }
    case Opcode::Call: {
      os << " @" << inst.callee()->name() << "(";
      for (size_t i = 0; i < inst.numOperands(); ++i) {
        if (i > 0) os << ", ";
        os << valueRef(inst.operand(i));
      }
      os << ")";
      break;
    }
    case Opcode::Ret:
      if (inst.numOperands() == 1) {
        os << " " << inst.operand(0)->type()->spelling() << " "
           << valueRef(inst.operand(0));
      }
      break;
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Trunc:
    case Opcode::SIToFP:
    case Opcode::FPToSI:
      os << " " << inst.operand(0)->type()->spelling() << " "
         << valueRef(inst.operand(0)) << " to " << inst.type()->spelling();
      break;
    default: {
      // Generic form: op <type> a, b, ...
      os << " " << inst.type()->spelling();
      for (size_t i = 0; i < inst.numOperands(); ++i) {
        os << (i == 0 ? " " : ", ") << valueRef(inst.operand(i));
      }
      break;
    }
  }
}

}  // namespace

std::string printInstruction(const Instruction& inst) {
  std::ostringstream os;
  printInstructionTo(os, inst);
  return os.str();
}

std::string printFunction(Function& function) {
  function.assignNames();
  std::ostringstream os;
  os << "func @" << function.name() << "(";
  for (size_t i = 0; i < function.numArguments(); ++i) {
    if (i > 0) os << ", ";
    const Argument* arg = function.argument(i);
    os << "%" << arg->name() << ": " << arg->type()->spelling();
  }
  os << ") -> " << function.returnType()->spelling() << " {\n";
  for (const auto& block : function.blocks()) {
    os << block->name() << ":\n";
    for (const auto& inst : block->instructions()) {
      os << "  ";
      printInstructionTo(os, *inst);
      os << "\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string printModule(const Module& module) {
  std::ostringstream os;
  os << "module \"" << module.name() << "\" {\n";
  for (const auto& global : module.globals()) {
    os << "global @" << global->name() << " : "
       << global->elemType()->spelling() << "[" << global->numElems() << "]";
    if (global->hasInit()) {
      os << " = [";
      char buffer[32];
      for (size_t i = 0; i < global->init().size(); ++i) {
        std::snprintf(buffer, sizeof(buffer), "%.17g", global->init()[i]);
        os << (i == 0 ? "" : ", ") << buffer;
      }
      os << "]";
    }
    os << "\n";
  }
  for (const auto& function : module.functions()) {
    os << "\n" << printFunction(*function);
  }
  os << "}\n";
  return os.str();
}

}  // namespace cayman::ir
