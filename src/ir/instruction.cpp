#include "ir/instruction.h"

#include <algorithm>

#include "ir/basic_block.h"

namespace cayman::ir {

const char* opcodeSpelling(Opcode op) {
  switch (op) {
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::SDiv: return "sdiv";
    case Opcode::SRem: return "srem";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Shl: return "shl";
    case Opcode::AShr: return "ashr";
    case Opcode::LShr: return "lshr";
    case Opcode::FAdd: return "fadd";
    case Opcode::FSub: return "fsub";
    case Opcode::FMul: return "fmul";
    case Opcode::FDiv: return "fdiv";
    case Opcode::FNeg: return "fneg";
    case Opcode::FSqrt: return "fsqrt";
    case Opcode::FAbs: return "fabs";
    case Opcode::FMin: return "fmin";
    case Opcode::FMax: return "fmax";
    case Opcode::ICmp: return "icmp";
    case Opcode::FCmp: return "fcmp";
    case Opcode::ZExt: return "zext";
    case Opcode::SExt: return "sext";
    case Opcode::Trunc: return "trunc";
    case Opcode::SIToFP: return "sitofp";
    case Opcode::FPToSI: return "fptosi";
    case Opcode::Select: return "select";
    case Opcode::Load: return "load";
    case Opcode::Store: return "store";
    case Opcode::Gep: return "gep";
    case Opcode::Br: return "br";
    case Opcode::CondBr: return "condbr";
    case Opcode::Phi: return "phi";
    case Opcode::Call: return "call";
    case Opcode::Ret: return "ret";
  }
  CAYMAN_ASSERT(false, "unreachable opcode");
}

const char* cmpPredSpelling(CmpPred pred) {
  switch (pred) {
    case CmpPred::EQ: return "eq";
    case CmpPred::NE: return "ne";
    case CmpPred::LT: return "lt";
    case CmpPred::LE: return "le";
    case CmpPred::GT: return "gt";
    case CmpPred::GE: return "ge";
  }
  CAYMAN_ASSERT(false, "unreachable predicate");
}

bool isTerminator(Opcode op) {
  return op == Opcode::Br || op == Opcode::CondBr || op == Opcode::Ret;
}

bool isComputeOp(Opcode op) {
  switch (op) {
    case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::SDiv:
    case Opcode::SRem: case Opcode::And: case Opcode::Or: case Opcode::Xor:
    case Opcode::Shl: case Opcode::AShr: case Opcode::LShr: case Opcode::FAdd:
    case Opcode::FSub: case Opcode::FMul: case Opcode::FDiv: case Opcode::FNeg:
    case Opcode::FSqrt: case Opcode::FAbs: case Opcode::FMin: case Opcode::FMax:
    case Opcode::ICmp: case Opcode::FCmp: case Opcode::ZExt: case Opcode::SExt:
    case Opcode::Trunc: case Opcode::SIToFP: case Opcode::FPToSI:
    case Opcode::Select: case Opcode::Gep:
      return true;
    default:
      return false;
  }
}

bool isFloatOp(Opcode op) {
  switch (op) {
    case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul: case Opcode::FDiv:
    case Opcode::FNeg: case Opcode::FSqrt: case Opcode::FAbs: case Opcode::FMin:
    case Opcode::FMax: case Opcode::FCmp:
      return true;
    default:
      return false;
  }
}

Instruction::Instruction(Opcode op, const Type* type,
                         std::vector<Value*> operands, std::string name)
    : Value(ValueKind::Instruction, type, std::move(name)),
      op_(op),
      operands_(std::move(operands)) {
  for (Value* operand : operands_) {
    CAYMAN_ASSERT(operand != nullptr, "null operand");
    operand->addUser(this);
  }
}

Instruction::~Instruction() { dropAllReferences(); }

void Instruction::dropAllReferences() {
  for (Value* operand : operands_) operand->removeUser(this);
  operands_.clear();
  incoming_.clear();
}

void Instruction::setOperand(size_t i, Value* value) {
  CAYMAN_ASSERT(i < operands_.size(), "operand index out of range");
  CAYMAN_ASSERT(value != nullptr, "null operand");
  operands_[i]->removeUser(this);
  operands_[i] = value;
  value->addUser(this);
}

void Instruction::replaceSuccessor(BasicBlock* from, BasicBlock* to) {
  bool replaced = false;
  for (BasicBlock*& succ : successors_) {
    if (succ == from) {
      succ = to;
      replaced = true;
    }
  }
  CAYMAN_ASSERT(replaced, "successor not found");
}

void Instruction::addIncoming(Value* value, BasicBlock* block) {
  CAYMAN_ASSERT(op_ == Opcode::Phi, "addIncoming on non-phi");
  CAYMAN_ASSERT(value->type() == type(), "phi incoming type mismatch");
  operands_.push_back(value);
  value->addUser(this);
  incoming_.push_back(block);
}

Value* Instruction::incomingValueFor(const BasicBlock* block) const {
  CAYMAN_ASSERT(op_ == Opcode::Phi, "incomingValueFor on non-phi");
  for (size_t i = 0; i < incoming_.size(); ++i) {
    if (incoming_[i] == block) return operands_[i];
  }
  CAYMAN_ASSERT(false, "phi has no incoming value for block " + block->name());
}

void Instruction::replaceIncomingBlock(BasicBlock* from, BasicBlock* to) {
  CAYMAN_ASSERT(op_ == Opcode::Phi, "replaceIncomingBlock on non-phi");
  for (BasicBlock*& block : incoming_) {
    if (block == from) block = to;
  }
}

Value* Instruction::pointerOperand() const {
  switch (op_) {
    case Opcode::Load: return operands_[0];
    case Opcode::Store: return operands_[1];
    default: CAYMAN_ASSERT(false, "not a memory access");
  }
}

std::unique_ptr<Instruction> Instruction::clone() const {
  auto copy = std::make_unique<Instruction>(op_, type(), operands_, name());
  copy->pred_ = pred_;
  copy->gepElemSize_ = gepElemSize_;
  copy->successors_ = successors_;
  copy->incoming_ = incoming_;
  copy->callee_ = callee_;
  return copy;
}

}  // namespace cayman::ir
