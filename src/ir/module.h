// Module: the top-level IR container for one application.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.h"

namespace cayman::ir {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  ~Module();

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  // --- Functions ------------------------------------------------------------
  Function* addFunction(std::string name, const Type* returnType,
                        std::vector<std::pair<const Type*, std::string>> params);
  Function* functionByName(std::string_view name) const;
  const std::vector<std::unique_ptr<Function>>& functions() const {
    return functions_;
  }
  /// The application entry point: the function named "main", or the first
  /// function when no "main" exists.
  Function* entryFunction() const;

  // --- Globals ---------------------------------------------------------------
  GlobalArray* addGlobal(std::string name, const Type* elemType,
                         uint64_t numElems);
  GlobalArray* globalByName(std::string_view name) const;
  const std::vector<std::unique_ptr<GlobalArray>>& globals() const {
    return globals_;
  }

  // --- Interned constants ----------------------------------------------------
  ConstantInt* constInt(const Type* type, int64_t value);
  ConstantInt* constI1(bool value) { return constInt(Type::i1(), value); }
  ConstantInt* constI32(int64_t value) { return constInt(Type::i32(), value); }
  ConstantInt* constI64(int64_t value) { return constInt(Type::i64(), value); }
  ConstantFP* constFP(const Type* type, double value);
  ConstantFP* constF64(double value) { return constFP(Type::f64(), value); }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::vector<std::unique_ptr<GlobalArray>> globals_;
  std::map<std::pair<const Type*, int64_t>, std::unique_ptr<ConstantInt>>
      intConstants_;
  // Keyed by bit pattern, not double: NaN breaks std::map's strict weak
  // ordering (NaN compares equivalent to everything), so a NaN literal from
  // parsed input could alias an unrelated interned constant.
  std::map<std::pair<const Type*, uint64_t>, std::unique_ptr<ConstantFP>>
      fpConstants_;
};

}  // namespace cayman::ir
