// Value hierarchy: everything an instruction can reference as an operand.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"
#include "support/error.h"

namespace cayman::ir {

class Instruction;
class Function;

/// Discriminator for the Value hierarchy (cheap LLVM-style RTTI).
enum class ValueKind {
  Argument,
  ConstantInt,
  ConstantFP,
  GlobalArray,
  Instruction,
};

/// Base of the IR value hierarchy. Values are owned by their enclosing IR
/// container (Module / Function / BasicBlock) and referenced by raw pointer.
class Value {
 public:
  virtual ~Value() = default;

  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  ValueKind valueKind() const { return kind_; }
  const Type* type() const { return type_; }

  const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  /// Instructions currently using this value as an operand; one entry per
  /// use, so an instruction using a value twice appears twice.
  const std::vector<Instruction*>& users() const { return users_; }
  bool hasUsers() const { return !users_.empty(); }

  /// Rewrites every use of this value to `replacement`.
  void replaceAllUsesWith(Value* replacement);

 protected:
  Value(ValueKind kind, const Type* type, std::string name)
      : kind_(kind), type_(type), name_(std::move(name)) {}

 private:
  friend class Instruction;

  void addUser(Instruction* user) { users_.push_back(user); }
  void removeUser(const Instruction* user);

  ValueKind kind_;
  const Type* type_;
  std::string name_;
  std::vector<Instruction*> users_;
};

/// A formal parameter of a Function.
class Argument final : public Value {
 public:
  Argument(const Type* type, std::string name, unsigned index)
      : Value(ValueKind::Argument, type, std::move(name)), index_(index) {}

  unsigned index() const { return index_; }

 private:
  unsigned index_;
};

/// An integer (or boolean) literal. Interned per Module.
class ConstantInt final : public Value {
 public:
  ConstantInt(const Type* type, int64_t value)
      : Value(ValueKind::ConstantInt, type, ""), value_(value) {
    CAYMAN_ASSERT(type->isInteger(), "ConstantInt requires an integer type");
  }

  int64_t value() const { return value_; }

 private:
  int64_t value_;
};

/// A floating-point literal. Interned per Module.
class ConstantFP final : public Value {
 public:
  ConstantFP(const Type* type, double value)
      : Value(ValueKind::ConstantFP, type, ""), value_(value) {
    CAYMAN_ASSERT(type->isFloat(), "ConstantFP requires a float type");
  }

  double value() const { return value_; }

 private:
  double value_;
};

/// A module-level array in the flat simulated address space. Its value is a
/// pointer to the first element; the simulator assigns the base address.
class GlobalArray final : public Value {
 public:
  GlobalArray(const Type* elemType, uint64_t numElems, std::string name)
      : Value(ValueKind::GlobalArray, Type::ptr(), std::move(name)),
        elemType_(elemType),
        numElems_(numElems) {
    CAYMAN_ASSERT(elemType->sizeBytes() > 0, "array of void");
  }

  const Type* elemType() const { return elemType_; }
  uint64_t numElems() const { return numElems_; }
  uint64_t sizeBytes() const { return numElems_ * elemType_->sizeBytes(); }

  /// Optional initializer, one entry per element (integers stored exactly up
  /// to 2^53 which covers every index array we generate). Without an
  /// initializer the simulator fills the array with a deterministic pattern.
  bool hasInit() const { return hasInit_; }
  const std::vector<double>& init() const { return init_; }
  void setInit(std::vector<double> values);

 private:
  const Type* elemType_;
  uint64_t numElems_;
  bool hasInit_ = false;
  std::vector<double> init_;
};

/// Casting helpers in the spirit of llvm::dyn_cast, driven by ValueKind.
template <typename T>
bool isa(const Value* value);

template <>
inline bool isa<Argument>(const Value* v) {
  return v->valueKind() == ValueKind::Argument;
}
template <>
inline bool isa<ConstantInt>(const Value* v) {
  return v->valueKind() == ValueKind::ConstantInt;
}
template <>
inline bool isa<ConstantFP>(const Value* v) {
  return v->valueKind() == ValueKind::ConstantFP;
}
template <>
inline bool isa<GlobalArray>(const Value* v) {
  return v->valueKind() == ValueKind::GlobalArray;
}

template <typename T>
T* dynCast(Value* value) {
  return isa<T>(value) ? static_cast<T*>(value) : nullptr;
}
template <typename T>
const T* dynCast(const Value* value) {
  return isa<T>(value) ? static_cast<const T*>(value) : nullptr;
}

}  // namespace cayman::ir
