// BasicBlock: a straight-line instruction sequence ending in a terminator.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.h"

namespace cayman::ir {

class Function;

class BasicBlock {
 public:
  BasicBlock(Function* parent, std::string name)
      : parent_(parent), name_(std::move(name)) {}

  BasicBlock(const BasicBlock&) = delete;
  BasicBlock& operator=(const BasicBlock&) = delete;

  Function* parent() const { return parent_; }
  const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  const std::vector<std::unique_ptr<Instruction>>& instructions() const {
    return instructions_;
  }
  bool empty() const { return instructions_.empty(); }
  size_t size() const { return instructions_.size(); }

  /// Appends an instruction, taking ownership.
  Instruction* append(std::unique_ptr<Instruction> inst);
  /// Inserts a phi after the existing phis at the head of the block.
  Instruction* insertPhi(std::unique_ptr<Instruction> inst);
  /// Inserts before the terminator (appends when there is none yet).
  Instruction* insertBeforeTerminator(std::unique_ptr<Instruction> inst);
  /// Detaches `inst` from this block without destroying it.
  std::unique_ptr<Instruction> remove(Instruction* inst);

  /// The final Br/CondBr/Ret; nullptr while the block is under construction.
  Instruction* terminator() const;
  bool hasTerminator() const { return terminator() != nullptr; }

  /// Successor blocks per the terminator (empty for Ret).
  std::vector<BasicBlock*> successors() const;

  /// Phi nodes at the head of the block.
  std::vector<Instruction*> phis() const;
  /// Non-phi, non-terminator body instructions.
  std::vector<Instruction*> body() const;

 private:
  Function* parent_;
  std::string name_;
  std::vector<std::unique_ptr<Instruction>> instructions_;
};

}  // namespace cayman::ir
