#include "ir/function.h"

#include <unordered_map>
#include <unordered_set>

namespace cayman::ir {

Function::Function(Module* parent, std::string name, const Type* returnType,
                   std::vector<std::pair<const Type*, std::string>> params)
    : parent_(parent), name_(std::move(name)), returnType_(returnType) {
  unsigned index = 0;
  for (auto& [type, paramName] : params) {
    args_.push_back(std::make_unique<Argument>(type, paramName, index++));
  }
}

BasicBlock* Function::addBlock(std::string name) {
  blocks_.push_back(std::make_unique<BasicBlock>(this, std::move(name)));
  return blocks_.back().get();
}

BasicBlock* Function::blockByName(std::string_view name) const {
  for (const auto& block : blocks_) {
    if (block->name() == name) return block.get();
  }
  return nullptr;
}

void Function::assignNames() {
  std::unordered_set<std::string> taken;
  unsigned nextValue = 0;
  unsigned nextBlock = 0;
  auto unique = [&taken](std::string base, unsigned& counter) {
    std::string candidate = base;
    while (candidate.empty() || taken.count(candidate) != 0) {
      candidate = base.empty() ? std::to_string(counter++)
                               : base + "." + std::to_string(counter++);
    }
    taken.insert(candidate);
    return candidate;
  };

  for (const auto& arg : args_) {
    arg->setName(unique(arg->name(), nextValue));
  }
  for (const auto& block : blocks_) {
    block->setName(unique(block->name().empty() ? "bb" : block->name(),
                          nextBlock));
  }
  for (const auto& block : blocks_) {
    for (const auto& inst : block->instructions()) {
      if (inst->type()->isVoid()) continue;
      inst->setName(unique(inst->name(), nextValue));
    }
  }
}

}  // namespace cayman::ir
