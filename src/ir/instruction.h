// Instruction: a single SSA operation inside a basic block.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "ir/value.h"

namespace cayman::ir {

class BasicBlock;
class Function;

/// Every operation the IR supports.
enum class Opcode {
  // Integer arithmetic / bitwise.
  Add, Sub, Mul, SDiv, SRem, And, Or, Xor, Shl, AShr, LShr,
  // Floating-point arithmetic.
  FAdd, FSub, FMul, FDiv, FNeg, FSqrt, FAbs, FMin, FMax,
  // Comparisons (predicate stored separately).
  ICmp, FCmp,
  // Conversions.
  ZExt, SExt, Trunc, SIToFP, FPToSI,
  Select,
  // Memory. Gep computes base + index * elemSizeBytes.
  Load, Store, Gep,
  // Control flow.
  Br, CondBr, Phi, Call, Ret,
};

/// Comparison predicates for ICmp (signed) and FCmp (ordered).
enum class CmpPred { EQ, NE, LT, LE, GT, GE };

const char* opcodeSpelling(Opcode op);
const char* cmpPredSpelling(CmpPred pred);

/// True for Br / CondBr / Ret.
bool isTerminator(Opcode op);
/// True for integer and FP arithmetic, comparisons, conversions and select —
/// the pure dataflow operations accelerator datapaths are built from.
bool isComputeOp(Opcode op);
/// True for FAdd..FMax.
bool isFloatOp(Opcode op);

class Instruction final : public Value {
 public:
  /// Instructions are created through IRBuilder (or clone()); the constructor
  /// wires operand use lists.
  Instruction(Opcode op, const Type* type, std::vector<Value*> operands,
              std::string name);
  ~Instruction() override;

  /// Clears all operand links (unregistering uses). Called by Module teardown
  /// so instruction destruction order becomes irrelevant.
  void dropAllReferences();

  Opcode opcode() const { return op_; }

  // --- Operands -----------------------------------------------------------
  std::span<Value* const> operands() const { return operands_; }
  size_t numOperands() const { return operands_.size(); }
  Value* operand(size_t i) const {
    CAYMAN_ASSERT(i < operands_.size(), "operand index out of range");
    return operands_[i];
  }
  void setOperand(size_t i, Value* value);

  // --- Block / position ---------------------------------------------------
  BasicBlock* parent() const { return parent_; }
  void setParent(BasicBlock* block) { parent_ = block; }

  // --- Opcode-specific payload --------------------------------------------
  CmpPred cmpPred() const { return pred_; }
  void setCmpPred(CmpPred pred) { pred_ = pred; }

  /// Element size for Gep address arithmetic.
  unsigned gepElemSize() const { return gepElemSize_; }
  void setGepElemSize(unsigned bytes) { gepElemSize_ = bytes; }

  /// Successor blocks for Br (1) / CondBr (2, true first).
  std::span<BasicBlock* const> successors() const { return successors_; }
  void setSuccessors(std::vector<BasicBlock*> succs) {
    successors_ = std::move(succs);
  }
  void replaceSuccessor(BasicBlock* from, BasicBlock* to);

  /// Incoming blocks for Phi, parallel to operands().
  std::span<BasicBlock* const> incomingBlocks() const { return incoming_; }
  void addIncoming(Value* value, BasicBlock* block);
  Value* incomingValueFor(const BasicBlock* block) const;
  void replaceIncomingBlock(BasicBlock* from, BasicBlock* to);

  /// Callee for Call.
  Function* callee() const { return callee_; }
  void setCallee(Function* f) { callee_ = f; }

  // --- Classification ------------------------------------------------------
  bool isTerminator() const { return ir::isTerminator(op_); }
  bool isMemoryAccess() const {
    return op_ == Opcode::Load || op_ == Opcode::Store;
  }
  /// Pointer operand of a Load/Store.
  Value* pointerOperand() const;
  /// Stored value of a Store.
  Value* storedValue() const {
    CAYMAN_ASSERT(op_ == Opcode::Store, "not a store");
    return operands_[0];
  }

  /// Creates an unattached copy with the same operands / payload (the caller
  /// remaps operands afterwards, e.g. during loop unrolling or merging).
  std::unique_ptr<Instruction> clone() const;

 private:
  Opcode op_;
  std::vector<Value*> operands_;
  BasicBlock* parent_ = nullptr;
  CmpPred pred_ = CmpPred::EQ;
  unsigned gepElemSize_ = 0;
  std::vector<BasicBlock*> successors_;
  std::vector<BasicBlock*> incoming_;
  Function* callee_ = nullptr;
};

template <>
inline bool isa<Instruction>(const Value* v) {
  return v->valueKind() == ValueKind::Instruction;
}

}  // namespace cayman::ir
