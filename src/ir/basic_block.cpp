#include "ir/basic_block.h"

#include <algorithm>

namespace cayman::ir {

Instruction* BasicBlock::append(std::unique_ptr<Instruction> inst) {
  CAYMAN_ASSERT(!hasTerminator(), "appending past terminator in " + name_);
  inst->setParent(this);
  instructions_.push_back(std::move(inst));
  return instructions_.back().get();
}

Instruction* BasicBlock::insertPhi(std::unique_ptr<Instruction> inst) {
  CAYMAN_ASSERT(inst->opcode() == Opcode::Phi, "insertPhi with non-phi");
  inst->setParent(this);
  Instruction* raw = inst.get();
  size_t position = phis().size();
  instructions_.insert(instructions_.begin() + static_cast<long>(position),
                       std::move(inst));
  return raw;
}

Instruction* BasicBlock::insertBeforeTerminator(
    std::unique_ptr<Instruction> inst) {
  inst->setParent(this);
  Instruction* raw = inst.get();
  if (hasTerminator()) {
    instructions_.insert(instructions_.end() - 1, std::move(inst));
  } else {
    instructions_.push_back(std::move(inst));
  }
  return raw;
}

std::unique_ptr<Instruction> BasicBlock::remove(Instruction* inst) {
  auto it = std::find_if(
      instructions_.begin(), instructions_.end(),
      [inst](const std::unique_ptr<Instruction>& p) { return p.get() == inst; });
  CAYMAN_ASSERT(it != instructions_.end(), "instruction not in block");
  std::unique_ptr<Instruction> owned = std::move(*it);
  instructions_.erase(it);
  owned->setParent(nullptr);
  return owned;
}

Instruction* BasicBlock::terminator() const {
  if (instructions_.empty()) return nullptr;
  Instruction* last = instructions_.back().get();
  return last->isTerminator() ? last : nullptr;
}

std::vector<BasicBlock*> BasicBlock::successors() const {
  const Instruction* term = terminator();
  CAYMAN_ASSERT(term != nullptr, "block " + name_ + " lacks a terminator");
  auto span = term->successors();
  return {span.begin(), span.end()};
}

std::vector<Instruction*> BasicBlock::phis() const {
  std::vector<Instruction*> result;
  for (const auto& inst : instructions_) {
    if (inst->opcode() != Opcode::Phi) break;
    result.push_back(inst.get());
  }
  return result;
}

std::vector<Instruction*> BasicBlock::body() const {
  std::vector<Instruction*> result;
  for (const auto& inst : instructions_) {
    if (inst->opcode() == Opcode::Phi || inst->isTerminator()) continue;
    result.push_back(inst.get());
  }
  return result;
}

}  // namespace cayman::ir
