#include "ir/builder.h"

namespace cayman::ir {

Instruction* IRBuilder::emit(Opcode op, const Type* type,
                             std::vector<Value*> operands, std::string name) {
  CAYMAN_ASSERT(block_ != nullptr, "no insertion point");
  auto inst = std::make_unique<Instruction>(op, type, std::move(operands),
                                            std::move(name));
  return block_->append(std::move(inst));
}

Value* IRBuilder::binary(Opcode op, Value* a, Value* b, std::string name,
                         bool isFloat) {
  CAYMAN_ASSERT(a->type() == b->type(),
                std::string("operand type mismatch for ") +
                    opcodeSpelling(op));
  CAYMAN_ASSERT(isFloat ? a->type()->isFloat() : a->type()->isInteger(),
                std::string("wrong operand domain for ") + opcodeSpelling(op));
  return emit(op, a->type(), {a, b}, std::move(name));
}

Value* IRBuilder::add(Value* a, Value* b, std::string name) {
  return binary(Opcode::Add, a, b, std::move(name), false);
}
Value* IRBuilder::sub(Value* a, Value* b, std::string name) {
  return binary(Opcode::Sub, a, b, std::move(name), false);
}
Value* IRBuilder::mul(Value* a, Value* b, std::string name) {
  return binary(Opcode::Mul, a, b, std::move(name), false);
}
Value* IRBuilder::sdiv(Value* a, Value* b, std::string name) {
  return binary(Opcode::SDiv, a, b, std::move(name), false);
}
Value* IRBuilder::srem(Value* a, Value* b, std::string name) {
  return binary(Opcode::SRem, a, b, std::move(name), false);
}
Value* IRBuilder::and_(Value* a, Value* b, std::string name) {
  return binary(Opcode::And, a, b, std::move(name), false);
}
Value* IRBuilder::or_(Value* a, Value* b, std::string name) {
  return binary(Opcode::Or, a, b, std::move(name), false);
}
Value* IRBuilder::xor_(Value* a, Value* b, std::string name) {
  return binary(Opcode::Xor, a, b, std::move(name), false);
}
Value* IRBuilder::shl(Value* a, Value* b, std::string name) {
  return binary(Opcode::Shl, a, b, std::move(name), false);
}
Value* IRBuilder::ashr(Value* a, Value* b, std::string name) {
  return binary(Opcode::AShr, a, b, std::move(name), false);
}
Value* IRBuilder::lshr(Value* a, Value* b, std::string name) {
  return binary(Opcode::LShr, a, b, std::move(name), false);
}

Value* IRBuilder::fadd(Value* a, Value* b, std::string name) {
  return binary(Opcode::FAdd, a, b, std::move(name), true);
}
Value* IRBuilder::fsub(Value* a, Value* b, std::string name) {
  return binary(Opcode::FSub, a, b, std::move(name), true);
}
Value* IRBuilder::fmul(Value* a, Value* b, std::string name) {
  return binary(Opcode::FMul, a, b, std::move(name), true);
}
Value* IRBuilder::fdiv(Value* a, Value* b, std::string name) {
  return binary(Opcode::FDiv, a, b, std::move(name), true);
}
Value* IRBuilder::fmin(Value* a, Value* b, std::string name) {
  return binary(Opcode::FMin, a, b, std::move(name), true);
}
Value* IRBuilder::fmax(Value* a, Value* b, std::string name) {
  return binary(Opcode::FMax, a, b, std::move(name), true);
}

Value* IRBuilder::fneg(Value* a, std::string name) {
  CAYMAN_ASSERT(a->type()->isFloat(), "fneg needs a float");
  return emit(Opcode::FNeg, a->type(), {a}, std::move(name));
}
Value* IRBuilder::fsqrt(Value* a, std::string name) {
  CAYMAN_ASSERT(a->type()->isFloat(), "fsqrt needs a float");
  return emit(Opcode::FSqrt, a->type(), {a}, std::move(name));
}
Value* IRBuilder::fabs_(Value* a, std::string name) {
  CAYMAN_ASSERT(a->type()->isFloat(), "fabs needs a float");
  return emit(Opcode::FAbs, a->type(), {a}, std::move(name));
}

Value* IRBuilder::icmp(CmpPred pred, Value* a, Value* b, std::string name) {
  CAYMAN_ASSERT(a->type() == b->type() &&
                    (a->type()->isInteger() || a->type()->isPointer()),
                "icmp operand mismatch");
  Instruction* inst = emit(Opcode::ICmp, Type::i1(), {a, b}, std::move(name));
  inst->setCmpPred(pred);
  return inst;
}

Value* IRBuilder::fcmp(CmpPred pred, Value* a, Value* b, std::string name) {
  CAYMAN_ASSERT(a->type() == b->type() && a->type()->isFloat(),
                "fcmp operand mismatch");
  Instruction* inst = emit(Opcode::FCmp, Type::i1(), {a, b}, std::move(name));
  inst->setCmpPred(pred);
  return inst;
}

Value* IRBuilder::select(Value* cond, Value* ifTrue, Value* ifFalse,
                         std::string name) {
  CAYMAN_ASSERT(cond->type() == Type::i1(), "select condition must be i1");
  CAYMAN_ASSERT(ifTrue->type() == ifFalse->type(), "select arm type mismatch");
  return emit(Opcode::Select, ifTrue->type(), {cond, ifTrue, ifFalse},
              std::move(name));
}

Value* IRBuilder::zext(Value* v, const Type* to, std::string name) {
  CAYMAN_ASSERT(v->type()->isInteger() && to->isInteger() &&
                    to->bitWidth() > v->type()->bitWidth(),
                "invalid zext");
  return emit(Opcode::ZExt, to, {v}, std::move(name));
}
Value* IRBuilder::sext(Value* v, const Type* to, std::string name) {
  CAYMAN_ASSERT(v->type()->isInteger() && to->isInteger() &&
                    to->bitWidth() > v->type()->bitWidth(),
                "invalid sext");
  return emit(Opcode::SExt, to, {v}, std::move(name));
}
Value* IRBuilder::trunc(Value* v, const Type* to, std::string name) {
  CAYMAN_ASSERT(v->type()->isInteger() && to->isInteger() &&
                    to->bitWidth() < v->type()->bitWidth(),
                "invalid trunc");
  return emit(Opcode::Trunc, to, {v}, std::move(name));
}
Value* IRBuilder::sitofp(Value* v, const Type* to, std::string name) {
  CAYMAN_ASSERT(v->type()->isInteger() && to->isFloat(), "invalid sitofp");
  return emit(Opcode::SIToFP, to, {v}, std::move(name));
}
Value* IRBuilder::fptosi(Value* v, const Type* to, std::string name) {
  CAYMAN_ASSERT(v->type()->isFloat() && to->isInteger(), "invalid fptosi");
  return emit(Opcode::FPToSI, to, {v}, std::move(name));
}

Value* IRBuilder::gep(Value* base, Value* index, const Type* elemType,
                      std::string name) {
  CAYMAN_ASSERT(base->type()->isPointer(), "gep base must be a pointer");
  CAYMAN_ASSERT(index->type()->isInteger(), "gep index must be an integer");
  Instruction* inst =
      emit(Opcode::Gep, Type::ptr(), {base, index}, std::move(name));
  inst->setGepElemSize(elemType->sizeBytes());
  return inst;
}

Value* IRBuilder::load(const Type* type, Value* ptr, std::string name) {
  CAYMAN_ASSERT(ptr->type()->isPointer(), "load from non-pointer");
  return emit(Opcode::Load, type, {ptr}, std::move(name));
}

Instruction* IRBuilder::store(Value* value, Value* ptr) {
  CAYMAN_ASSERT(ptr->type()->isPointer(), "store to non-pointer");
  return emit(Opcode::Store, Type::voidTy(), {value, ptr}, "");
}

Instruction* IRBuilder::phi(const Type* type, std::string name) {
  CAYMAN_ASSERT(block_ != nullptr, "no insertion point");
  CAYMAN_ASSERT(block_->empty() ||
                    block_->instructions().back()->opcode() == Opcode::Phi,
                "phi must precede non-phi instructions");
  return emit(Opcode::Phi, type, {}, std::move(name));
}

Instruction* IRBuilder::br(BasicBlock* dest) {
  Instruction* inst = emit(Opcode::Br, Type::voidTy(), {}, "");
  inst->setSuccessors({dest});
  return inst;
}

Instruction* IRBuilder::condBr(Value* cond, BasicBlock* ifTrue,
                               BasicBlock* ifFalse) {
  CAYMAN_ASSERT(cond->type() == Type::i1(), "branch condition must be i1");
  Instruction* inst = emit(Opcode::CondBr, Type::voidTy(), {cond}, "");
  inst->setSuccessors({ifTrue, ifFalse});
  return inst;
}

Value* IRBuilder::call(Function* callee, std::vector<Value*> args,
                       std::string name) {
  CAYMAN_ASSERT(callee != nullptr, "null callee");
  CAYMAN_ASSERT(args.size() == callee->numArguments(),
                "call argument count mismatch for " + callee->name());
  for (size_t i = 0; i < args.size(); ++i) {
    CAYMAN_ASSERT(args[i]->type() == callee->argument(i)->type(),
                  "call argument type mismatch for " + callee->name());
  }
  Instruction* inst =
      emit(Opcode::Call, callee->returnType(), std::move(args),
           callee->returnType()->isVoid() ? "" : std::move(name));
  inst->setCallee(callee);
  return inst;
}

Instruction* IRBuilder::ret(Value* value) {
  std::vector<Value*> operands;
  if (value != nullptr) operands.push_back(value);
  return emit(Opcode::Ret, Type::voidTy(), std::move(operands), "");
}

}  // namespace cayman::ir
