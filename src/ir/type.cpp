#include "ir/type.h"

#include <cstring>

namespace cayman::ir {

unsigned Type::bitWidth() const {
  switch (kind_) {
    case Kind::Void: return 0;
    case Kind::I1: return 1;
    case Kind::I32: return 32;
    case Kind::I64: return 64;
    case Kind::F32: return 32;
    case Kind::F64: return 64;
    case Kind::Ptr: return 64;
  }
  CAYMAN_ASSERT(false, "unreachable type kind");
}

unsigned Type::sizeBytes() const {
  switch (kind_) {
    case Kind::Void: return 0;
    case Kind::I1: return 1;
    case Kind::I32: return 4;
    case Kind::I64: return 8;
    case Kind::F32: return 4;
    case Kind::F64: return 8;
    case Kind::Ptr: return 8;
  }
  CAYMAN_ASSERT(false, "unreachable type kind");
}

const char* Type::spelling() const {
  switch (kind_) {
    case Kind::Void: return "void";
    case Kind::I1: return "i1";
    case Kind::I32: return "i32";
    case Kind::I64: return "i64";
    case Kind::F32: return "f32";
    case Kind::F64: return "f64";
    case Kind::Ptr: return "ptr";
  }
  CAYMAN_ASSERT(false, "unreachable type kind");
}

// Interned singletons. constexpr construction keeps them in .rodata.
const Type* Type::voidTy() {
  static constexpr Type t{Kind::Void};
  return &t;
}
const Type* Type::i1() {
  static constexpr Type t{Kind::I1};
  return &t;
}
const Type* Type::i32() {
  static constexpr Type t{Kind::I32};
  return &t;
}
const Type* Type::i64() {
  static constexpr Type t{Kind::I64};
  return &t;
}
const Type* Type::f32() {
  static constexpr Type t{Kind::F32};
  return &t;
}
const Type* Type::f64() {
  static constexpr Type t{Kind::F64};
  return &t;
}
const Type* Type::ptr() {
  static constexpr Type t{Kind::Ptr};
  return &t;
}

const Type* Type::byName(const char* spelling) {
  const Type* all[] = {voidTy(), i1(), i32(), i64(), f32(), f64(), ptr()};
  for (const Type* t : all) {
    if (std::strcmp(t->spelling(), spelling) == 0) return t;
  }
  return nullptr;
}

}  // namespace cayman::ir
