#include "ir/value.h"

#include <algorithm>

#include "ir/instruction.h"

namespace cayman::ir {

void Value::replaceAllUsesWith(Value* replacement) {
  CAYMAN_ASSERT(replacement != this, "RAUW with self");
  // Users mutate our user list as operands are rewritten, so drain a copy.
  std::vector<Instruction*> users = users_;
  for (Instruction* user : users) {
    for (size_t i = 0; i < user->numOperands(); ++i) {
      if (user->operand(i) == this) user->setOperand(i, replacement);
    }
  }
}

void Value::removeUser(const Instruction* user) {
  auto it = std::find(users_.begin(), users_.end(), user);
  CAYMAN_ASSERT(it != users_.end(), "removing a non-user");
  users_.erase(it);
}

void GlobalArray::setInit(std::vector<double> values) {
  CAYMAN_ASSERT(values.size() == numElems_,
                "initializer size mismatch for " + name());
  init_ = std::move(values);
  hasInit_ = true;
}

}  // namespace cayman::ir
