// Type system for the Cayman IR.
//
// The IR is intentionally small: scalar integers, scalar floats, an opaque
// pointer type (element sizes live on GEP instructions, mirroring modern
// LLVM's opaque pointers), and void for functions without a result.
#pragma once

#include "support/error.h"

namespace cayman::ir {

/// An immutable, interned type. Obtain instances through the static
/// accessors; compare with pointer equality.
class Type {
 public:
  enum class Kind { Void, I1, I32, I64, F32, F64, Ptr };

  Kind kind() const { return kind_; }

  bool isVoid() const { return kind_ == Kind::Void; }
  bool isInteger() const {
    return kind_ == Kind::I1 || kind_ == Kind::I32 || kind_ == Kind::I64;
  }
  bool isFloat() const { return kind_ == Kind::F32 || kind_ == Kind::F64; }
  bool isPointer() const { return kind_ == Kind::Ptr; }

  /// Bit width of scalar types (pointers count as 64).
  unsigned bitWidth() const;
  /// Storage size in bytes; void has none.
  unsigned sizeBytes() const;

  /// Short textual spelling ("i32", "f64", "ptr", ...).
  const char* spelling() const;

  static const Type* voidTy();
  static const Type* i1();
  static const Type* i32();
  static const Type* i64();
  static const Type* f32();
  static const Type* f64();
  static const Type* ptr();

  /// Looks a type up by its spelling; returns nullptr when unknown.
  static const Type* byName(const char* spelling);

  Type(const Type&) = delete;
  Type& operator=(const Type&) = delete;

 private:
  explicit constexpr Type(Kind kind) : kind_(kind) {}

  Kind kind_;
};

}  // namespace cayman::ir
