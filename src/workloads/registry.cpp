#include "workloads/workloads.h"

#include <string_view>
#include <utility>

#include "ir/verifier.h"
#include "support/error.h"

namespace cayman::workloads {

namespace {

/// LPT cost hints: relative single-workload evaluation times (1.0 = median
/// class), measured once on the reference container with a cold model and
/// rounded to coarse buckets — scheduling only needs the heavy tail
/// (cjpeg/3mm/cjpeg-rose7/floyd-warshall class) ordered ahead of the cheap
/// kernels, not precise durations. Unlisted workloads keep the 1.0 default.
constexpr std::pair<std::string_view, double> kCostHints[] = {
    {"cjpeg", 20.0},
    {"cjpeg-rose7-preset", 18.0},
    {"3mm", 12.0},
    {"floyd-warshall", 10.0},
    {"epic", 8.0},
    {"gramschmidt", 6.0},
    {"cholesky", 6.0},
    {"lu", 6.0},
    {"deriche", 5.0},
    {"nnet-test", 5.0},
    {"covariance", 4.0},
    {"symm", 4.0},
    {"jacobi-2d", 3.0},
    {"fft", 3.0},
    {"md", 3.0},
    {"loops-all-mid-10k-sp", 3.0},
    {"linear-alg-mid", 2.0},
    {"zip-test", 2.0},
    {"syrk", 2.0},
    {"trmm", 2.0},
    {"doitgen", 2.0},
    {"nw", 2.0},
};

}  // namespace

const std::vector<WorkloadInfo>& all() {
  static const std::vector<WorkloadInfo> registry = [] {
    std::vector<WorkloadInfo> list;
    for (auto suite : {polybenchWorkloads(), machsuiteWorkloads(),
                       mediabenchWorkloads(), coremarkWorkloads()}) {
      list.insert(list.end(), suite.begin(), suite.end());
    }
    for (WorkloadInfo& info : list) {
      for (const auto& [name, hint] : kCostHints) {
        if (info.name == name) {
          info.costHint = hint;
          break;
        }
      }
    }
    return list;
  }();
  return registry;
}

const WorkloadInfo* byName(std::string_view name) {
  for (const WorkloadInfo& info : all()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::unique_ptr<ir::Module> build(std::string_view name) {
  const WorkloadInfo* info = byName(name);
  if (info == nullptr) {
    throw Error("unknown workload: " + std::string(name));
  }
  std::unique_ptr<ir::Module> module = info->build();
  ir::verifyOrThrow(*module);
  return module;
}

}  // namespace cayman::workloads
