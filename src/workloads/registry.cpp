#include "workloads/workloads.h"

#include "ir/verifier.h"
#include "support/error.h"

namespace cayman::workloads {

const std::vector<WorkloadInfo>& all() {
  static const std::vector<WorkloadInfo> registry = [] {
    std::vector<WorkloadInfo> list;
    for (auto suite : {polybenchWorkloads(), machsuiteWorkloads(),
                       mediabenchWorkloads(), coremarkWorkloads()}) {
      list.insert(list.end(), suite.begin(), suite.end());
    }
    return list;
  }();
  return registry;
}

const WorkloadInfo* byName(std::string_view name) {
  for (const WorkloadInfo& info : all()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::unique_ptr<ir::Module> build(std::string_view name) {
  const WorkloadInfo* info = byName(name);
  if (info == nullptr) {
    throw Error("unknown workload: " + std::string(name));
  }
  std::unique_ptr<ir::Module> module = info->build();
  ir::verifyOrThrow(*module);
  return module;
}

}  // namespace cayman::workloads
