// MediaBench-style workloads. The original cjpeg/epic sources are not
// redistributable here; these synthetic equivalents preserve the properties
// candidate selection cares about — many medium-hot kernels, 8x8 block
// processing with nested fixed loops, separable filters, quantization
// branches — rather than bit-exact codec output.
#include "workloads/kernel_builder.h"
#include "workloads/workloads.h"

namespace cayman::workloads {

namespace {

using ir::CmpPred;
using ir::GlobalArray;
using ir::Instruction;
using ir::Module;
using ir::Type;
using ir::Value;

/// 2-D 8x8 transform: dst[u][v] = Σ_x Σ_y src[x][y] coef[u][x] coef[v][y],
/// per block of a blocksW x blocksH block image.
void emitBlockTransform(KernelBuilder& kb, GlobalArray* dst, GlobalArray* src,
                        GlobalArray* coef, int64_t blocksW, int64_t blocksH,
                        const std::string& tag) {
  const int64_t width = blocksW * 8;
  Value* by = kb.beginLoop(0, blocksH, tag + ".by");
  Value* bx = kb.beginLoop(0, blocksW, tag + ".bx");
  Value* u = kb.beginLoop(0, 8, tag + ".u");
  Value* v = kb.beginLoop(0, 8, tag + ".v");
  Value* x = kb.beginLoop(0, 8, tag + ".x");
  Instruction* outer = kb.reduction(Type::f64(), kb.ir().f64(0.0), "outer");
  Value* y = kb.beginLoop(0, 8, tag + ".y");
  Instruction* dot = kb.reduction(Type::f64(), kb.ir().f64(0.0), "dot");
  Value* row = kb.ir().add(kb.ir().mul(by, kb.ir().i64(8)), x);
  Value* col = kb.ir().add(kb.ir().mul(bx, kb.ir().i64(8)), y);
  Value* pix = kb.loadAt(src, kb.idx2(row, col, width));
  Value* cy = kb.loadAt(coef, kb.idx2(v, y, 8));
  kb.setReductionNext(dot, kb.ir().fadd(dot, kb.ir().fmul(pix, cy)));
  kb.endLoop();  // y
  Value* cx = kb.loadAt(coef, kb.idx2(u, x, 8));
  kb.setReductionNext(
      outer,
      kb.ir().fadd(outer, kb.ir().fmul(kb.reductionResult(dot), cx)));
  kb.endLoop();  // x
  Value* outRow = kb.ir().add(kb.ir().mul(by, kb.ir().i64(8)), u);
  Value* outCol = kb.ir().add(kb.ir().mul(bx, kb.ir().i64(8)), v);
  kb.storeAt(dst, kb.idx2(outRow, outCol, width),
             kb.reductionResult(outer));
  kb.endLoop();  // v
  kb.endLoop();  // u
  kb.endLoop();  // bx
  kb.endLoop();  // by
}

/// Quantization with a branchy zero-run counter (entropy-coding stand-in).
void emitQuantize(KernelBuilder& kb, GlobalArray* img, GlobalArray* quant,
                  GlobalArray* stats, int64_t elems, const std::string& tag) {
  Value* i = kb.beginLoop(0, elems, tag + ".q");
  Value* q = kb.loadAt(quant, kb.ir().and_(i, kb.ir().i64(63)));
  Value* scaled = kb.ir().fdiv(kb.loadAt(img, i), q);
  Value* rounded =
      kb.ir().sitofp(kb.ir().fptosi(scaled, Type::i64()), Type::f64());
  kb.storeAt(img, i, rounded);
  Value* isZero = kb.ir().fcmp(CmpPred::EQ, rounded, kb.ir().f64(0.0));
  kb.beginIf(isZero, /*withElse=*/true, tag + ".zr");
  kb.storeAt(stats, kb.ir().i64(0),
             kb.ir().add(kb.loadAt(stats, kb.ir().i64(0)), kb.ir().i64(1)));
  kb.beginElse();
  kb.storeAt(stats, kb.ir().i64(1),
             kb.ir().add(kb.loadAt(stats, kb.ir().i64(1)), kb.ir().i64(1)));
  kb.endIf();
  kb.endLoop();
}

/// cjpeg-like: colour transform + block DCT + quantization + statistics.
std::unique_ptr<Module> buildCjpeg() {
  constexpr int64_t bw = 4, bh = 4, width = bw * 8, elems = width * width;
  auto m = std::make_unique<Module>("cjpeg");
  auto* r = m->addGlobal("r", Type::f64(), elems);
  auto* g = m->addGlobal("g", Type::f64(), elems);
  auto* b = m->addGlobal("b", Type::f64(), elems);
  auto* luma = m->addGlobal("luma", Type::f64(), elems);
  auto* freq = m->addGlobal("freq", Type::f64(), elems);
  auto* coef = m->addGlobal("coef", Type::f64(), 64);
  auto* quant = m->addGlobal("quant", Type::f64(), 64);
  auto* stats = m->addGlobal("stats", Type::i64(), 4);
  stats->setInit(std::vector<double>(4, 0.0));
  std::vector<double> qinit(64);
  for (int k = 0; k < 64; ++k) qinit[static_cast<size_t>(k)] = 0.5 + k * 0.25;
  quant->setInit(qinit);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  // RGB -> luma.
  {
    Value* i = kb.beginLoop(0, elems, "ycc");
    Value* y = kb.ir().fadd(
        kb.ir().fadd(kb.ir().fmul(kb.loadAt(r, i), kb.ir().f64(0.299)),
                     kb.ir().fmul(kb.loadAt(g, i), kb.ir().f64(0.587))),
        kb.ir().fmul(kb.loadAt(b, i), kb.ir().f64(0.114)));
    kb.storeAt(luma, i, y);
    kb.endLoop();
  }
  emitBlockTransform(kb, freq, luma, coef, bw, bh, "dct");
  emitQuantize(kb, freq, quant, stats, elems, "quant");
  kb.endFunction();
  return m;
}

/// epic-like: separable pyramid filtering + thresholded quantization across
/// two levels (many small loops, image-row streams).
std::unique_ptr<Module> buildEpic() {
  constexpr int64_t n = 32;
  auto m = std::make_unique<Module>("epic");
  auto* img = m->addGlobal("img", Type::f64(), n * n);
  auto* tmp = m->addGlobal("tmp", Type::f64(), n * n);
  auto* low = m->addGlobal("low", Type::f64(), (n / 2) * (n / 2));
  auto* high = m->addGlobal("high", Type::f64(), n * n);
  auto* stats = m->addGlobal("stats", Type::i64(), 2);
  stats->setInit(std::vector<double>(2, 0.0));
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  // Horizontal 3-tap low-pass.
  {
    Value* i = kb.beginLoop(0, n, "h.i");
    Value* j = kb.beginLoop(1, n - 1, "h.j");
    Value* left = kb.loadAt(img, kb.idx2(i, kb.ir().sub(j, kb.ir().i64(1)),
                                         n));
    Value* mid = kb.loadAt(img, kb.idx2(i, j, n));
    Value* right = kb.loadAt(img, kb.idx2(i, kb.ir().add(j, kb.ir().i64(1)),
                                          n));
    Value* smooth = kb.ir().fadd(
        kb.ir().fmul(mid, kb.ir().f64(0.5)),
        kb.ir().fmul(kb.ir().fadd(left, right), kb.ir().f64(0.25)));
    kb.storeAt(tmp, kb.idx2(i, j, n), smooth);
    kb.endLoop();
    kb.endLoop();
  }
  // Vertical 3-tap low-pass.
  {
    Value* i = kb.beginLoop(1, n - 1, "v.i");
    Value* j = kb.beginLoop(0, n, "v.j");
    Value* up = kb.loadAt(tmp, kb.idx2(kb.ir().sub(i, kb.ir().i64(1)), j, n));
    Value* mid = kb.loadAt(tmp, kb.idx2(i, j, n));
    Value* down = kb.loadAt(tmp, kb.idx2(kb.ir().add(i, kb.ir().i64(1)), j,
                                         n));
    Value* smooth = kb.ir().fadd(
        kb.ir().fmul(mid, kb.ir().f64(0.5)),
        kb.ir().fmul(kb.ir().fadd(up, down), kb.ir().f64(0.25)));
    kb.storeAt(high, kb.idx2(i, j, n),
               kb.ir().fsub(kb.loadAt(img, kb.idx2(i, j, n)), smooth));
    kb.storeAt(tmp, kb.idx2(i, j, n), smooth);
    kb.endLoop();
    kb.endLoop();
  }
  // Decimate into the next pyramid level.
  {
    Value* i = kb.beginLoop(0, n / 2, "dec.i");
    Value* j = kb.beginLoop(0, n / 2, "dec.j");
    Value* si = kb.ir().mul(i, kb.ir().i64(2));
    Value* sj = kb.ir().mul(j, kb.ir().i64(2));
    kb.storeAt(low, kb.idx2(i, j, n / 2), kb.loadAt(tmp, kb.idx2(si, sj, n)));
    kb.endLoop();
    kb.endLoop();
  }
  // Threshold quantization of the high band (branchy).
  {
    Value* i = kb.beginLoop(0, n * n, "thr");
    Value* v = kb.loadAt(high, i);
    Value* small = kb.ir().fcmp(CmpPred::LT, kb.ir().fabs_(v),
                                kb.ir().f64(0.05));
    kb.beginIf(small, /*withElse=*/true, "thr.if");
    kb.storeAt(high, i, kb.ir().f64(0.0));
    kb.storeAt(stats, kb.ir().i64(0),
               kb.ir().add(kb.loadAt(stats, kb.ir().i64(0)), kb.ir().i64(1)));
    kb.beginElse();
    kb.storeAt(high, i, kb.ir().fmul(v, kb.ir().f64(0.5)));
    kb.storeAt(stats, kb.ir().i64(1),
               kb.ir().add(kb.loadAt(stats, kb.ir().i64(1)), kb.ir().i64(1)));
    kb.endIf();
    kb.endLoop();
  }
  kb.endFunction();
  return m;
}

}  // namespace

std::vector<WorkloadInfo> mediabenchWorkloads() {
  return {
      {"cjpeg", "MediaBench",
       "synthetic JPEG-compress core: colour transform + 8x8 DCT + "
       "quantization with zero-run branches (bit-exact codec replaced)",
       buildCjpeg},
      {"epic", "MediaBench",
       "synthetic EPIC pyramid coder: separable low-pass pyramid + "
       "threshold quantization (entropy backend replaced)",
       buildEpic},
  };
}

}  // namespace cayman::workloads
