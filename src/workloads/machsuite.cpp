// MachSuite kernels (faithful ports at reduced problem sizes).
#include "workloads/kernel_builder.h"
#include "workloads/workloads.h"

namespace cayman::workloads {

namespace {

using ir::CmpPred;
using ir::Module;
using ir::Type;
using ir::Value;

/// fft: iterative radix-2 butterflies (MachSuite fft/strided), size 64.
std::unique_ptr<Module> buildFft() {
  constexpr int64_t n = 64;
  auto m = std::make_unique<Module>("fft");
  auto* real = m->addGlobal("real", Type::f64(), n);
  auto* imag = m->addGlobal("imag", Type::f64(), n);
  auto* realTw = m->addGlobal("real_twid", Type::f64(), n / 2);
  auto* imagTw = m->addGlobal("imag_twid", Type::f64(), n / 2);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  // for (span = n/2; span; span >>= 1) — modelled as log2(n) stages with
  // span = n >> (stage+1).
  Value* stage = kb.beginLoop(0, 6, "stage");
  Value* span = kb.ir().ashr(kb.ir().i64(n), kb.ir().add(stage,
                                                         kb.ir().i64(1)));
  Value* odd = kb.beginLoop(0, n / 2, "odd");
  // odd | span gives the odd index; even = odd ^ span.
  Value* oddIdx = kb.ir().or_(odd, span, "odd.idx");
  Value* evenIdx = kb.ir().xor_(oddIdx, span, "even.idx");
  Value* er = kb.loadAt(real, evenIdx);
  Value* orr = kb.loadAt(real, oddIdx);
  Value* ei = kb.loadAt(imag, evenIdx);
  Value* oi = kb.loadAt(imag, oddIdx);
  kb.storeAt(real, evenIdx, kb.ir().fadd(er, orr));
  kb.storeAt(imag, evenIdx, kb.ir().fadd(ei, oi));
  Value* diffR = kb.ir().fsub(er, orr);
  Value* diffI = kb.ir().fsub(ei, oi);
  // twiddle index: (even mod span) — use masked odd for a stream-ish walk.
  Value* twIdx = kb.ir().and_(evenIdx, kb.ir().i64(n / 2 - 1), "tw.idx");
  Value* tr = kb.loadAt(realTw, twIdx);
  Value* ti = kb.loadAt(imagTw, twIdx);
  kb.storeAt(real, oddIdx,
             kb.ir().fsub(kb.ir().fmul(diffR, tr), kb.ir().fmul(diffI, ti)));
  kb.storeAt(imag, oddIdx,
             kb.ir().fadd(kb.ir().fmul(diffR, ti), kb.ir().fmul(diffI, tr)));
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  return m;
}

/// md/knn: Lennard-Jones forces over a fixed-degree neighbour list.
std::unique_ptr<Module> buildMd() {
  constexpr int64_t atoms = 64, neighbours = 16;
  auto m = std::make_unique<Module>("md");
  auto* px = m->addGlobal("px", Type::f64(), atoms);
  auto* py = m->addGlobal("py", Type::f64(), atoms);
  auto* pz = m->addGlobal("pz", Type::f64(), atoms);
  auto* fx = m->addGlobal("fx", Type::f64(), atoms);
  auto* fy = m->addGlobal("fy", Type::f64(), atoms);
  auto* fz = m->addGlobal("fz", Type::f64(), atoms);
  auto* nl = m->addGlobal("NL", Type::i64(), atoms * neighbours);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  Value* i = kb.beginLoop(0, atoms, "atom");
  Value* xi = kb.loadAt(px, i);
  Value* yi = kb.loadAt(py, i);
  Value* zi = kb.loadAt(pz, i);
  Value* j = kb.beginLoop(0, neighbours, "nbr");
  ir::Instruction* accX = kb.reduction(Type::f64(), kb.ir().f64(0.0), "ax");
  ir::Instruction* accY = kb.reduction(Type::f64(), kb.ir().f64(0.0), "ay");
  ir::Instruction* accZ = kb.reduction(Type::f64(), kb.ir().f64(0.0), "az");
  Value* nidx = kb.loadAt(nl, kb.idx2(i, j, neighbours), "n.idx");
  Value* dx = kb.ir().fsub(xi, kb.loadAt(px, nidx));
  Value* dy = kb.ir().fsub(yi, kb.loadAt(py, nidx));
  Value* dz = kb.ir().fsub(zi, kb.loadAt(pz, nidx));
  Value* r2 = kb.ir().fadd(kb.ir().fadd(kb.ir().fmul(dx, dx),
                                        kb.ir().fmul(dy, dy)),
                           kb.ir().fadd(kb.ir().fmul(dz, dz),
                                        kb.ir().f64(0.01)));
  Value* r2inv = kb.ir().fdiv(kb.ir().f64(1.0), r2);
  Value* r6inv = kb.ir().fmul(kb.ir().fmul(r2inv, r2inv), r2inv);
  Value* pot = kb.ir().fmul(
      kb.ir().fmul(r6inv, kb.ir().fsub(kb.ir().fmul(kb.ir().f64(1.5), r6inv),
                                       kb.ir().f64(2.0))),
      r2inv);
  kb.setReductionNext(accX, kb.ir().fadd(accX, kb.ir().fmul(pot, dx)));
  kb.setReductionNext(accY, kb.ir().fadd(accY, kb.ir().fmul(pot, dy)));
  kb.setReductionNext(accZ, kb.ir().fadd(accZ, kb.ir().fmul(pot, dz)));
  kb.endLoop();
  kb.storeAt(fx, i, kb.reductionResult(accX));
  kb.storeAt(fy, i, kb.reductionResult(accY));
  kb.storeAt(fz, i, kb.reductionResult(accZ));
  kb.endLoop();
  kb.endFunction();
  return m;
}

/// spmv: ELLPACK sparse matrix-vector product (indirect column indices).
std::unique_ptr<Module> buildSpmv() {
  constexpr int64_t rows = 94, perRow = 10;
  auto m = std::make_unique<Module>("spmv");
  auto* val = m->addGlobal("val", Type::f64(), rows * perRow);
  auto* cols = m->addGlobal("cols", Type::i64(), rows * perRow);
  auto* vec = m->addGlobal("vec", Type::f64(), rows);
  auto* out = m->addGlobal("out", Type::f64(), rows);
  // Column indices within range.
  std::vector<double> colInit(static_cast<size_t>(rows * perRow));
  for (size_t k = 0; k < colInit.size(); ++k) {
    colInit[k] = static_cast<double>((k * 7 + 3) % rows);
  }
  cols->setInit(colInit);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  Value* i = kb.beginLoop(0, rows, "row");
  ir::Instruction* acc = nullptr;
  Value* j = kb.beginLoop(0, perRow, "nz");
  acc = kb.reduction(Type::f64(), kb.ir().f64(0.0), "sum");
  Value* idx = kb.idx2(i, j, perRow);
  Value* v = kb.loadAt(val, idx);
  Value* col = kb.loadAt(cols, idx, "col");
  Value* x = kb.loadAt(vec, col);
  kb.setReductionNext(acc, kb.ir().fadd(acc, kb.ir().fmul(v, x)));
  kb.endLoop();
  kb.storeAt(out, i, kb.reductionResult(acc));
  kb.endLoop();
  kb.endFunction();
  return m;
}

/// nw: Needleman-Wunsch alignment score matrix (branch-free max via select).
std::unique_ptr<Module> buildNw() {
  constexpr int64_t len = 48;
  auto m = std::make_unique<Module>("nw");
  auto* seqA = m->addGlobal("seqA", Type::i64(), len);
  auto* seqB = m->addGlobal("seqB", Type::i64(), len);
  auto* score = m->addGlobal("score", Type::i64(), (len + 1) * (len + 1));
  std::vector<double> a(len), b(len);
  for (int64_t k = 0; k < len; ++k) {
    a[static_cast<size_t>(k)] = static_cast<double>(k % 4);
    b[static_cast<size_t>(k)] = static_cast<double>((k * 3 + 1) % 4);
  }
  seqA->setInit(a);
  seqB->setInit(b);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  constexpr int64_t w = len + 1;
  // Border initialization.
  {
    Value* i = kb.beginLoop(0, w, "border");
    Value* gap = kb.ir().mul(i, kb.ir().i64(-1));
    kb.storeAt(score, kb.idx2(i, kb.ir().i64(0), w), gap);
    kb.storeAt(score, kb.idx2(kb.ir().i64(0), i, w), gap);
    kb.endLoop();
  }
  Value* i = kb.beginLoop(1, w, "i");
  Value* j = kb.beginLoop(1, w, "j");
  Value* ai = kb.loadAt(seqA, kb.ir().sub(i, kb.ir().i64(1)));
  Value* bj = kb.loadAt(seqB, kb.ir().sub(j, kb.ir().i64(1)));
  Value* match = kb.ir().icmp(CmpPred::EQ, ai, bj);
  Value* matchScore = kb.ir().select(match, kb.ir().i64(1), kb.ir().i64(-1));
  Value* im1 = kb.ir().sub(i, kb.ir().i64(1));
  Value* jm1 = kb.ir().sub(j, kb.ir().i64(1));
  Value* diag = kb.ir().add(kb.loadAt(score, kb.idx2(im1, jm1, w)),
                            matchScore);
  Value* up = kb.ir().add(kb.loadAt(score, kb.idx2(im1, j, w)),
                          kb.ir().i64(-1));
  Value* left = kb.ir().add(kb.loadAt(score, kb.idx2(i, jm1, w)),
                            kb.ir().i64(-1));
  Value* best1 = kb.ir().select(kb.ir().icmp(CmpPred::GT, diag, up), diag, up);
  Value* best = kb.ir().select(kb.ir().icmp(CmpPred::GT, best1, left), best1,
                               left);
  kb.storeAt(score, kb.idx2(i, j, w), best);
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  return m;
}

}  // namespace

std::vector<WorkloadInfo> machsuiteWorkloads() {
  return {
      {"fft", "MachSuite", "", buildFft},
      {"md", "MachSuite", "", buildMd},
      {"spmv", "MachSuite", "ELLPACK layout instead of CRS (same indirect "
                            "access behaviour, fixed row loop bounds)",
       buildSpmv},
      {"nw", "MachSuite", "score matrix fill only (traceback omitted)",
       buildNw},
  };
}

}  // namespace cayman::workloads
