// PolyBench kernels (faithful ports at reduced problem sizes).
#include "workloads/workloads.h"

#include "workloads/kernel_builder.h"

namespace cayman::workloads {

namespace {

using ir::CmpPred;
using ir::GlobalArray;
using ir::Instruction;
using ir::Module;
using ir::Type;
using ir::Value;

constexpr int64_t kN = 24;  // base problem dimension

/// C[i][j] += A[i][k] * B[k][j]  (n x m x p).
void emitMatmul(KernelBuilder& kb, GlobalArray* c, GlobalArray* a,
                GlobalArray* b, int64_t n, int64_t m, int64_t p,
                const std::string& tag) {
  Value* i = kb.beginLoop(0, n, tag + ".i");
  Value* j = kb.beginLoop(0, p, tag + ".j");
  kb.storeAt(c, kb.idx2(i, j, p), kb.ir().f64(0.0));
  Value* k = kb.beginLoop(0, m, tag + ".k");
  Value* av = kb.loadAt(a, kb.idx2(i, k, m));
  Value* bv = kb.loadAt(b, kb.idx2(k, j, p));
  Value* cv = kb.loadAt(c, kb.idx2(i, j, p));
  kb.storeAt(c, kb.idx2(i, j, p), kb.ir().fadd(cv, kb.ir().fmul(av, bv)));
  kb.endLoop();
  kb.endLoop();
  kb.endLoop();
}

std::unique_ptr<Module> build3mm() {
  auto m = std::make_unique<Module>("3mm");
  auto* A = m->addGlobal("A", Type::f64(), kN * kN);
  auto* B = m->addGlobal("B", Type::f64(), kN * kN);
  auto* C = m->addGlobal("C", Type::f64(), kN * kN);
  auto* D = m->addGlobal("D", Type::f64(), kN * kN);
  auto* E = m->addGlobal("E", Type::f64(), kN * kN);
  auto* F = m->addGlobal("F", Type::f64(), kN * kN);
  auto* G = m->addGlobal("G", Type::f64(), kN * kN);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  emitMatmul(kb, E, A, B, kN, kN, kN, "mm1");
  emitMatmul(kb, F, C, D, kN, kN, kN, "mm2");
  emitMatmul(kb, G, E, F, kN, kN, kN, "mm3");
  kb.endFunction();
  return m;
}

std::unique_ptr<Module> buildAtax() {
  constexpr int64_t n = 48;
  auto m = std::make_unique<Module>("atax");
  auto* A = m->addGlobal("A", Type::f64(), n * n);
  auto* x = m->addGlobal("x", Type::f64(), n);
  auto* y = m->addGlobal("y", Type::f64(), n);
  auto* tmp = m->addGlobal("tmp", Type::f64(), n);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  // y = 0
  {
    Value* i = kb.beginLoop(0, n, "init");
    kb.storeAt(y, i, kb.ir().f64(0.0));
    kb.endLoop();
  }
  // tmp[i] = A[i][:] . x ; y += tmp[i] * A[i][:]
  Value* i = kb.beginLoop(0, n, "rows");
  kb.storeAt(tmp, i, kb.ir().f64(0.0));
  {
    Value* j = kb.beginLoop(0, n, "dot");
    Value* acc = kb.loadAt(tmp, i);
    Value* prod = kb.ir().fmul(kb.loadAt(A, kb.idx2(i, j, n)),
                               kb.loadAt(x, j));
    kb.storeAt(tmp, i, kb.ir().fadd(acc, prod));
    kb.endLoop();
  }
  {
    Value* j = kb.beginLoop(0, n, "axpy");
    Value* yv = kb.loadAt(y, j);
    Value* prod = kb.ir().fmul(kb.loadAt(A, kb.idx2(i, j, n)),
                               kb.loadAt(tmp, i));
    kb.storeAt(y, j, kb.ir().fadd(yv, prod));
    kb.endLoop();
  }
  kb.endLoop();
  kb.endFunction();
  return m;
}

std::unique_ptr<Module> buildBicg() {
  constexpr int64_t n = 48;
  auto m = std::make_unique<Module>("bicg");
  auto* A = m->addGlobal("A", Type::f64(), n * n);
  auto* p = m->addGlobal("p", Type::f64(), n);
  auto* r = m->addGlobal("r", Type::f64(), n);
  auto* q = m->addGlobal("q", Type::f64(), n);
  auto* s = m->addGlobal("s", Type::f64(), n);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  {
    Value* i = kb.beginLoop(0, n, "init");
    kb.storeAt(s, i, kb.ir().f64(0.0));
    kb.endLoop();
  }
  Value* i = kb.beginLoop(0, n, "rows");
  kb.storeAt(q, i, kb.ir().f64(0.0));
  Value* j = kb.beginLoop(0, n, "inner");
  Value* sv = kb.loadAt(s, j);
  Value* a = kb.loadAt(A, kb.idx2(i, j, n));
  kb.storeAt(s, j, kb.ir().fadd(sv, kb.ir().fmul(kb.loadAt(r, i), a)));
  Value* qv = kb.loadAt(q, i);
  kb.storeAt(q, i, kb.ir().fadd(qv, kb.ir().fmul(a, kb.loadAt(p, j))));
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  return m;
}

std::unique_ptr<Module> buildDoitgen() {
  constexpr int64_t nr = 10, nq = 10, np = 16;
  auto m = std::make_unique<Module>("doitgen");
  auto* A = m->addGlobal("A", Type::f64(), nr * nq * np);
  auto* C4 = m->addGlobal("C4", Type::f64(), np * np);
  auto* sum = m->addGlobal("sum", Type::f64(), np);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  Value* r = kb.beginLoop(0, nr, "r");
  Value* q = kb.beginLoop(0, nq, "q");
  {
    Value* p = kb.beginLoop(0, np, "p");
    kb.storeAt(sum, p, kb.ir().f64(0.0));
    Value* s = kb.beginLoop(0, np, "s");
    Value* acc = kb.loadAt(sum, p);
    Value* av = kb.loadAt(A, kb.idx3(r, q, s, nq, np));
    Value* cv = kb.loadAt(C4, kb.idx2(s, p, np));
    kb.storeAt(sum, p, kb.ir().fadd(acc, kb.ir().fmul(av, cv)));
    kb.endLoop();
    kb.endLoop();
  }
  {
    Value* p = kb.beginLoop(0, np, "copy");
    kb.storeAt(A, kb.idx3(r, q, p, nq, np), kb.loadAt(sum, p));
    kb.endLoop();
  }
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  return m;
}

std::unique_ptr<Module> buildMvt() {
  constexpr int64_t n = 48;
  auto m = std::make_unique<Module>("mvt");
  auto* A = m->addGlobal("A", Type::f64(), n * n);
  auto* x1 = m->addGlobal("x1", Type::f64(), n);
  auto* x2 = m->addGlobal("x2", Type::f64(), n);
  auto* y1 = m->addGlobal("y1", Type::f64(), n);
  auto* y2 = m->addGlobal("y2", Type::f64(), n);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  {
    Value* i = kb.beginLoop(0, n, "fwd");
    Value* j = kb.beginLoop(0, n, "fwd.j");
    Value* v = kb.loadAt(x1, i);
    Value* prod = kb.ir().fmul(kb.loadAt(A, kb.idx2(i, j, n)),
                               kb.loadAt(y1, j));
    kb.storeAt(x1, i, kb.ir().fadd(v, prod));
    kb.endLoop();
    kb.endLoop();
  }
  {
    Value* i = kb.beginLoop(0, n, "trn");
    Value* j = kb.beginLoop(0, n, "trn.j");
    Value* v = kb.loadAt(x2, i);
    Value* prod = kb.ir().fmul(kb.loadAt(A, kb.idx2(j, i, n)),
                               kb.loadAt(y2, j));
    kb.storeAt(x2, i, kb.ir().fadd(v, prod));
    kb.endLoop();
    kb.endLoop();
  }
  kb.endFunction();
  return m;
}

std::unique_ptr<Module> buildSymm() {
  constexpr int64_t n = 28;
  auto m = std::make_unique<Module>("symm");
  auto* A = m->addGlobal("A", Type::f64(), n * n);
  auto* B = m->addGlobal("B", Type::f64(), n * n);
  auto* C = m->addGlobal("C", Type::f64(), n * n);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  Value* i = kb.beginLoop(0, n, "i");
  Value* j = kb.beginLoop(0, n, "j");
  // temp = Σ_{k<i} A[i][k] * B[k][j]
  kb.storeAt(C, kb.idx2(i, j, n),
             kb.ir().fmul(kb.loadAt(C, kb.idx2(i, j, n)), kb.ir().f64(0.8)));
  Value* k = kb.beginLoop(kb.ir().i64(0), i, "k");
  Value* av = kb.loadAt(A, kb.idx2(i, k, n));
  Value* bv = kb.loadAt(B, kb.idx2(k, j, n));
  Value* cv = kb.loadAt(C, kb.idx2(i, j, n));
  kb.storeAt(C, kb.idx2(i, j, n), kb.ir().fadd(cv, kb.ir().fmul(av, bv)));
  kb.endLoop();
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  return m;
}

std::unique_ptr<Module> buildSyrk() {
  constexpr int64_t n = 28;
  auto m = std::make_unique<Module>("syrk");
  auto* A = m->addGlobal("A", Type::f64(), n * n);
  auto* C = m->addGlobal("C", Type::f64(), n * n);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  Value* i = kb.beginLoop(0, n, "i");
  Value* j = kb.beginLoop(0, n, "j");
  Value* scaled = kb.ir().fmul(kb.loadAt(C, kb.idx2(i, j, n)),
                               kb.ir().f64(0.9));
  kb.storeAt(C, kb.idx2(i, j, n), scaled);
  Value* k = kb.beginLoop(0, n, "k");
  Value* prod = kb.ir().fmul(kb.loadAt(A, kb.idx2(i, k, n)),
                             kb.loadAt(A, kb.idx2(j, k, n)));
  Value* cv = kb.loadAt(C, kb.idx2(i, j, n));
  kb.storeAt(C, kb.idx2(i, j, n), kb.ir().fadd(cv, prod));
  kb.endLoop();
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  return m;
}

std::unique_ptr<Module> buildTrmm() {
  constexpr int64_t n = 28;
  auto m = std::make_unique<Module>("trmm");
  auto* A = m->addGlobal("A", Type::f64(), n * n);
  auto* B = m->addGlobal("B", Type::f64(), n * n);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  Value* i = kb.beginLoop(0, n, "i");
  Value* j = kb.beginLoop(0, n, "j");
  Value* kStart = kb.ir().add(i, kb.ir().i64(1));
  Value* k = kb.beginLoop(kStart, kb.ir().i64(n), "k");
  Value* prod = kb.ir().fmul(kb.loadAt(A, kb.idx2(k, i, n)),
                             kb.loadAt(B, kb.idx2(k, j, n)));
  Value* bv = kb.loadAt(B, kb.idx2(i, j, n));
  kb.storeAt(B, kb.idx2(i, j, n), kb.ir().fadd(bv, prod));
  kb.endLoop();
  kb.storeAt(B, kb.idx2(i, j, n),
             kb.ir().fmul(kb.loadAt(B, kb.idx2(i, j, n)), kb.ir().f64(1.1)));
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  return m;
}

std::unique_ptr<Module> buildCholesky() {
  constexpr int64_t n = 24;
  auto m = std::make_unique<Module>("cholesky");
  auto* A = m->addGlobal("A", Type::f64(), n * n);
  // Seed a diagonally dominant matrix so sqrt stays real.
  std::vector<double> init(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      init[static_cast<size_t>(i * n + j)] =
          i == j ? static_cast<double>(n) : 0.1;
    }
  }
  A->setInit(init);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  Value* i = kb.beginLoop(0, n, "i");
  {
    // A[i][j] = (A[i][j] - Σ_{k<j} A[i][k]A[j][k]) / A[j][j]
    Value* j = kb.beginLoop(kb.ir().i64(0), i, "j");
    Value* k = kb.beginLoop(kb.ir().i64(0), j, "k");
    Value* prod = kb.ir().fmul(kb.loadAt(A, kb.idx2(i, k, n)),
                               kb.loadAt(A, kb.idx2(j, k, n)));
    Value* av = kb.loadAt(A, kb.idx2(i, j, n));
    kb.storeAt(A, kb.idx2(i, j, n), kb.ir().fsub(av, prod));
    kb.endLoop();
    Value* divided = kb.ir().fdiv(kb.loadAt(A, kb.idx2(i, j, n)),
                                  kb.loadAt(A, kb.idx2(j, j, n)));
    kb.storeAt(A, kb.idx2(i, j, n), divided);
    kb.endLoop();
  }
  {
    Value* k = kb.beginLoop(kb.ir().i64(0), i, "diag");
    Value* sq = kb.loadAt(A, kb.idx2(i, k, n));
    Value* av = kb.loadAt(A, kb.idx2(i, i, n));
    kb.storeAt(A, kb.idx2(i, i, n),
               kb.ir().fsub(av, kb.ir().fmul(sq, sq)));
    kb.endLoop();
  }
  kb.storeAt(A, kb.idx2(i, i, n),
             kb.ir().fsqrt(kb.loadAt(A, kb.idx2(i, i, n))));
  kb.endLoop();
  kb.endFunction();
  return m;
}

std::unique_ptr<Module> buildGramschmidt() {
  constexpr int64_t n = 20;
  auto m = std::make_unique<Module>("gramschmidt");
  auto* A = m->addGlobal("A", Type::f64(), n * n);
  auto* R = m->addGlobal("R", Type::f64(), n * n);
  auto* Q = m->addGlobal("Q", Type::f64(), n * n);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  Value* k = kb.beginLoop(0, n, "k");
  // nrm = sqrt(Σ A[i][k]^2)
  Instruction* nrm = nullptr;
  {
    Value* i = kb.beginLoop(0, n, "nrm");
    nrm = kb.reduction(Type::f64(), kb.ir().f64(1e-9), "nrm");
    Value* av = kb.loadAt(A, kb.idx2(i, k, n));
    kb.setReductionNext(nrm, kb.ir().fadd(nrm, kb.ir().fmul(av, av)));
    kb.endLoop();
  }
  Value* norm = kb.ir().fsqrt(kb.reductionResult(nrm), "norm");
  kb.storeAt(R, kb.idx2(k, k, n), norm);
  {
    Value* i = kb.beginLoop(0, n, "q");
    kb.storeAt(Q, kb.idx2(i, k, n),
               kb.ir().fdiv(kb.loadAt(A, kb.idx2(i, k, n)), norm));
    kb.endLoop();
  }
  {
    Value* jStart = kb.ir().add(k, kb.ir().i64(1));
    Value* j = kb.beginLoop(jStart, kb.ir().i64(n), "j");
    kb.storeAt(R, kb.idx2(k, j, n), kb.ir().f64(0.0));
    {
      Value* i = kb.beginLoop(0, n, "proj");
      Value* rv = kb.loadAt(R, kb.idx2(k, j, n));
      Value* prod = kb.ir().fmul(kb.loadAt(Q, kb.idx2(i, k, n)),
                                 kb.loadAt(A, kb.idx2(i, j, n)));
      kb.storeAt(R, kb.idx2(k, j, n), kb.ir().fadd(rv, prod));
      kb.endLoop();
    }
    {
      Value* i = kb.beginLoop(0, n, "upd");
      Value* av = kb.loadAt(A, kb.idx2(i, j, n));
      Value* prod = kb.ir().fmul(kb.loadAt(Q, kb.idx2(i, k, n)),
                                 kb.loadAt(R, kb.idx2(k, j, n)));
      kb.storeAt(A, kb.idx2(i, j, n), kb.ir().fsub(av, prod));
      kb.endLoop();
    }
    kb.endLoop();
  }
  kb.endLoop();
  kb.endFunction();
  return m;
}

std::unique_ptr<Module> buildLu() {
  constexpr int64_t n = 24;
  auto m = std::make_unique<Module>("lu");
  auto* A = m->addGlobal("A", Type::f64(), n * n);
  std::vector<double> init(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      init[static_cast<size_t>(i * n + j)] =
          i == j ? static_cast<double>(n) : 0.3;
    }
  }
  A->setInit(init);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  Value* i = kb.beginLoop(0, n, "i");
  {
    Value* j = kb.beginLoop(kb.ir().i64(0), i, "low");
    Value* k = kb.beginLoop(kb.ir().i64(0), j, "low.k");
    Value* prod = kb.ir().fmul(kb.loadAt(A, kb.idx2(i, k, n)),
                               kb.loadAt(A, kb.idx2(k, j, n)));
    kb.storeAt(A, kb.idx2(i, j, n),
               kb.ir().fsub(kb.loadAt(A, kb.idx2(i, j, n)), prod));
    kb.endLoop();
    kb.storeAt(A, kb.idx2(i, j, n),
               kb.ir().fdiv(kb.loadAt(A, kb.idx2(i, j, n)),
                            kb.loadAt(A, kb.idx2(j, j, n))));
    kb.endLoop();
  }
  {
    Value* j = kb.beginLoop(i, kb.ir().i64(n), "up");
    Value* k = kb.beginLoop(kb.ir().i64(0), i, "up.k");
    Value* prod = kb.ir().fmul(kb.loadAt(A, kb.idx2(i, k, n)),
                               kb.loadAt(A, kb.idx2(k, j, n)));
    kb.storeAt(A, kb.idx2(i, j, n),
               kb.ir().fsub(kb.loadAt(A, kb.idx2(i, j, n)), prod));
    kb.endLoop();
    kb.endLoop();
  }
  kb.endLoop();
  kb.endFunction();
  return m;
}

std::unique_ptr<Module> buildTrisolv() {
  constexpr int64_t n = 64;
  auto m = std::make_unique<Module>("trisolv");
  auto* L = m->addGlobal("L", Type::f64(), n * n);
  auto* x = m->addGlobal("x", Type::f64(), n);
  auto* b = m->addGlobal("b", Type::f64(), n);
  std::vector<double> init(static_cast<size_t>(n * n), 0.05);
  for (int64_t i = 0; i < n; ++i) {
    init[static_cast<size_t>(i * n + i)] = 2.0;
  }
  L->setInit(init);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  Value* i = kb.beginLoop(0, n, "i");
  kb.storeAt(x, i, kb.loadAt(b, i));
  Value* j = kb.beginLoop(kb.ir().i64(0), i, "j");
  Value* xv = kb.loadAt(x, i);
  Value* prod = kb.ir().fmul(kb.loadAt(L, kb.idx2(i, j, n)), kb.loadAt(x, j));
  kb.storeAt(x, i, kb.ir().fsub(xv, prod));
  kb.endLoop();
  kb.storeAt(x, i, kb.ir().fdiv(kb.loadAt(x, i),
                                kb.loadAt(L, kb.idx2(i, i, n))));
  kb.endLoop();
  kb.endFunction();
  return m;
}

std::unique_ptr<Module> buildCovariance() {
  constexpr int64_t n = 28, d = 24;
  auto m = std::make_unique<Module>("covariance");
  auto* data = m->addGlobal("data", Type::f64(), n * d);
  auto* mean = m->addGlobal("mean", Type::f64(), d);
  auto* cov = m->addGlobal("cov", Type::f64(), d * d);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  {
    Value* j = kb.beginLoop(0, d, "mean");
    kb.storeAt(mean, j, kb.ir().f64(0.0));
    Value* i = kb.beginLoop(0, n, "mean.i");
    Value* acc = kb.loadAt(mean, j);
    kb.storeAt(mean, j, kb.ir().fadd(acc, kb.loadAt(data, kb.idx2(i, j, d))));
    kb.endLoop();
    kb.storeAt(mean, j, kb.ir().fdiv(kb.loadAt(mean, j),
                                     kb.ir().f64(static_cast<double>(n))));
    kb.endLoop();
  }
  {
    Value* i = kb.beginLoop(0, n, "center");
    Value* j = kb.beginLoop(0, d, "center.j");
    Value* v = kb.ir().fsub(kb.loadAt(data, kb.idx2(i, j, d)),
                            kb.loadAt(mean, j));
    kb.storeAt(data, kb.idx2(i, j, d), v);
    kb.endLoop();
    kb.endLoop();
  }
  {
    Value* i = kb.beginLoop(0, d, "cov");
    Value* j = kb.beginLoop(i, kb.ir().i64(d), "cov.j");
    kb.storeAt(cov, kb.idx2(i, j, d), kb.ir().f64(0.0));
    Value* k = kb.beginLoop(0, n, "cov.k");
    Value* prod = kb.ir().fmul(kb.loadAt(data, kb.idx2(k, i, d)),
                               kb.loadAt(data, kb.idx2(k, j, d)));
    Value* acc = kb.loadAt(cov, kb.idx2(i, j, d));
    kb.storeAt(cov, kb.idx2(i, j, d), kb.ir().fadd(acc, prod));
    kb.endLoop();
    kb.storeAt(cov, kb.idx2(j, i, d), kb.loadAt(cov, kb.idx2(i, j, d)));
    kb.endLoop();
    kb.endLoop();
  }
  kb.endFunction();
  return m;
}

std::unique_ptr<Module> buildJacobi2d() {
  constexpr int64_t n = 30, steps = 8;
  auto m = std::make_unique<Module>("jacobi-2d");
  auto* A = m->addGlobal("A", Type::f64(), n * n);
  auto* B = m->addGlobal("B", Type::f64(), n * n);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  kb.beginLoop(0, steps, "t");
  {
    Value* i = kb.beginLoop(1, n - 1, "a.i");
    Value* j = kb.beginLoop(1, n - 1, "a.j");
    Value* c = kb.loadAt(A, kb.idx2(i, j, n));
    Value* w = kb.loadAt(A, kb.idx2(i, kb.ir().sub(j, kb.ir().i64(1)), n));
    Value* e = kb.loadAt(A, kb.idx2(i, kb.ir().add(j, kb.ir().i64(1)), n));
    Value* no = kb.loadAt(A, kb.idx2(kb.ir().sub(i, kb.ir().i64(1)), j, n));
    Value* so = kb.loadAt(A, kb.idx2(kb.ir().add(i, kb.ir().i64(1)), j, n));
    Value* sum = kb.ir().fadd(kb.ir().fadd(c, w),
                              kb.ir().fadd(e, kb.ir().fadd(no, so)));
    kb.storeAt(B, kb.idx2(i, j, n), kb.ir().fmul(sum, kb.ir().f64(0.2)));
    kb.endLoop();
    kb.endLoop();
  }
  {
    Value* i = kb.beginLoop(1, n - 1, "b.i");
    Value* j = kb.beginLoop(1, n - 1, "b.j");
    Value* c = kb.loadAt(B, kb.idx2(i, j, n));
    Value* w = kb.loadAt(B, kb.idx2(i, kb.ir().sub(j, kb.ir().i64(1)), n));
    Value* e = kb.loadAt(B, kb.idx2(i, kb.ir().add(j, kb.ir().i64(1)), n));
    Value* no = kb.loadAt(B, kb.idx2(kb.ir().sub(i, kb.ir().i64(1)), j, n));
    Value* so = kb.loadAt(B, kb.idx2(kb.ir().add(i, kb.ir().i64(1)), j, n));
    Value* sum = kb.ir().fadd(kb.ir().fadd(c, w),
                              kb.ir().fadd(e, kb.ir().fadd(no, so)));
    kb.storeAt(A, kb.idx2(i, j, n), kb.ir().fmul(sum, kb.ir().f64(0.2)));
    kb.endLoop();
    kb.endLoop();
  }
  kb.endLoop();
  kb.endFunction();
  return m;
}

std::unique_ptr<Module> buildDeriche() {
  constexpr int64_t w = 32, h = 24;
  auto m = std::make_unique<Module>("deriche");
  auto* img = m->addGlobal("img", Type::f64(), w * h);
  auto* y1 = m->addGlobal("y1", Type::f64(), w * h);
  auto* y2 = m->addGlobal("y2", Type::f64(), w * h);
  auto* out = m->addGlobal("out", Type::f64(), w * h);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  // Horizontal causal pass: y1[i][j] = a*img + b*y1[i][j-1].
  {
    Value* i = kb.beginLoop(0, h, "hf.i");
    kb.storeAt(y1, kb.idx2(i, kb.ir().i64(0), w), kb.ir().f64(0.0));
    Value* j = kb.beginLoop(1, w, "hf.j");
    Value* cur = kb.ir().fmul(kb.loadAt(img, kb.idx2(i, j, w)),
                              kb.ir().f64(0.25));
    Value* prev = kb.ir().fmul(
        kb.loadAt(y1, kb.idx2(i, kb.ir().sub(j, kb.ir().i64(1)), w)),
        kb.ir().f64(0.75));
    kb.storeAt(y1, kb.idx2(i, j, w), kb.ir().fadd(cur, prev));
    kb.endLoop();
    kb.endLoop();
  }
  // Horizontal anticausal pass.
  {
    Value* i = kb.beginLoop(0, h, "hb.i");
    kb.storeAt(y2, kb.idx2(i, kb.ir().i64(w - 1), w), kb.ir().f64(0.0));
    Value* jj = kb.beginLoop(1, w, "hb.j");
    Value* j = kb.ir().sub(kb.ir().i64(w - 1), jj, "rev");
    Value* cur = kb.ir().fmul(kb.loadAt(img, kb.idx2(i, j, w)),
                              kb.ir().f64(0.25));
    Value* prev = kb.ir().fmul(
        kb.loadAt(y2, kb.idx2(i, kb.ir().add(j, kb.ir().i64(1)), w)),
        kb.ir().f64(0.75));
    kb.storeAt(y2, kb.idx2(i, j, w), kb.ir().fadd(cur, prev));
    kb.endLoop();
    kb.endLoop();
  }
  // Combine.
  {
    Value* i = kb.beginLoop(0, h, "sum.i");
    Value* j = kb.beginLoop(0, w, "sum.j");
    kb.storeAt(out, kb.idx2(i, j, w),
               kb.ir().fadd(kb.loadAt(y1, kb.idx2(i, j, w)),
                            kb.loadAt(y2, kb.idx2(i, j, w))));
    kb.endLoop();
    kb.endLoop();
  }
  kb.endFunction();
  return m;
}

std::unique_ptr<Module> buildFloydWarshall() {
  constexpr int64_t n = 24;
  auto m = std::make_unique<Module>("floyd-warshall");
  auto* path = m->addGlobal("path", Type::f64(), n * n);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  Value* k = kb.beginLoop(0, n, "k");
  Value* i = kb.beginLoop(0, n, "i");
  Value* j = kb.beginLoop(0, n, "j");
  Value* direct = kb.loadAt(path, kb.idx2(i, j, n));
  Value* via = kb.ir().fadd(kb.loadAt(path, kb.idx2(i, k, n)),
                            kb.loadAt(path, kb.idx2(k, j, n)));
  kb.storeAt(path, kb.idx2(i, j, n), kb.ir().fmin(direct, via));
  kb.endLoop();
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  return m;
}

}  // namespace

std::vector<WorkloadInfo> polybenchWorkloads() {
  return {
      {"3mm", "PolyBench", "", build3mm},
      {"atax", "PolyBench", "", buildAtax},
      {"bicg", "PolyBench", "", buildBicg},
      {"doitgen", "PolyBench", "", buildDoitgen},
      {"mvt", "PolyBench", "", buildMvt},
      {"symm", "PolyBench", "", buildSymm},
      {"syrk", "PolyBench", "", buildSyrk},
      {"trmm", "PolyBench", "", buildTrmm},
      {"cholesky", "PolyBench", "", buildCholesky},
      {"gramschmidt", "PolyBench", "", buildGramschmidt},
      {"lu", "PolyBench", "", buildLu},
      {"trisolv", "PolyBench", "", buildTrisolv},
      {"covariance", "PolyBench", "", buildCovariance},
      {"jacobi-2d", "PolyBench", "", buildJacobi2d},
      {"deriche", "PolyBench",
       "two-pass IIR variant of the four-pass filter (same recurrence "
       "structure)",
       buildDeriche},
      {"floyd-warshall", "PolyBench", "", buildFloydWarshall},
  };
}

}  // namespace cayman::workloads
