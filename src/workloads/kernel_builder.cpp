#include "workloads/kernel_builder.h"

namespace cayman::workloads {

using namespace cayman::ir;

Function* KernelBuilder::beginFunction(
    std::string name, const Type* returnType,
    std::vector<std::pair<const Type*, std::string>> params) {
  CAYMAN_ASSERT(function_ == nullptr, "previous function still open");
  function_ = b_.module()->addFunction(std::move(name), returnType,
                                       std::move(params));
  BasicBlock* entry = function_->addBlock("entry");
  b_.setInsertPoint(entry);
  return function_;
}

void KernelBuilder::endFunction(Value* returnValue) {
  CAYMAN_ASSERT(function_ != nullptr, "no open function");
  CAYMAN_ASSERT(loops_.empty() && ifs_.empty(),
                "unclosed loop or if in " + function_->name());
  b_.ret(returnValue);
  function_ = nullptr;
}

Value* KernelBuilder::beginLoop(Value* lo, Value* hi, std::string name,
                                int64_t step) {
  CAYMAN_ASSERT(function_ != nullptr, "no open function");
  LoopFrame frame;
  frame.preheader = b_.insertBlock();
  frame.header = function_->addBlock(name + ".header");
  BasicBlock* body = function_->addBlock(name + ".body");
  frame.latch = function_->addBlock(name + ".latch");
  frame.exit = function_->addBlock(name + ".exit");
  frame.step = b_.i64(step);

  b_.br(frame.header);

  b_.setInsertPoint(frame.header);
  frame.iv = b_.phi(Type::i64(), name);
  frame.iv->addIncoming(lo, frame.preheader);
  Value* cond = b_.icmp(CmpPred::LT, frame.iv, hi, name + ".cond");
  b_.condBr(cond, body, frame.exit);

  b_.setInsertPoint(body);
  loops_.push_back(frame);
  return frame.iv;
}

void KernelBuilder::endLoop() {
  CAYMAN_ASSERT(!loops_.empty(), "no open loop");
  LoopFrame frame = loops_.back();
  loops_.pop_back();

  // Close the body into the latch, bump the IV, and branch back.
  b_.br(frame.latch);
  b_.setInsertPoint(frame.latch);
  Value* next =
      b_.add(frame.iv, frame.step, frame.iv->name() + ".next");
  b_.br(frame.header);
  frame.iv->addIncoming(next, frame.latch);

  for (auto& [phi, nextValue] : frame.reductions) {
    CAYMAN_ASSERT(nextValue != nullptr,
                  "reduction " + phi->name() + " never given a next value");
    phi->addIncoming(nextValue, frame.latch);
  }

  b_.setInsertPoint(frame.exit);
}

void KernelBuilder::beginIf(Value* cond, bool withElse, std::string name) {
  CAYMAN_ASSERT(function_ != nullptr, "no open function");
  IfFrame frame;
  frame.thenBlock = function_->addBlock(name + ".then");
  frame.elseBlock = withElse ? function_->addBlock(name + ".else") : nullptr;
  frame.join = function_->addBlock(name + ".join");
  b_.condBr(cond, frame.thenBlock,
            withElse ? frame.elseBlock : frame.join);
  b_.setInsertPoint(frame.thenBlock);
  ifs_.push_back(frame);
}

void KernelBuilder::beginElse() {
  CAYMAN_ASSERT(!ifs_.empty(), "no open if");
  IfFrame& frame = ifs_.back();
  CAYMAN_ASSERT(frame.elseBlock != nullptr, "if was opened without an else");
  CAYMAN_ASSERT(!frame.inElse, "beginElse called twice");
  b_.br(frame.join);
  b_.setInsertPoint(frame.elseBlock);
  frame.inElse = true;
}

void KernelBuilder::endIf() {
  CAYMAN_ASSERT(!ifs_.empty(), "no open if");
  IfFrame frame = ifs_.back();
  ifs_.pop_back();
  CAYMAN_ASSERT(frame.elseBlock == nullptr || frame.inElse,
                "if with else-arm closed before beginElse");
  b_.br(frame.join);
  b_.setInsertPoint(frame.join);
}

Instruction* KernelBuilder::reduction(const Type* type, Value* init,
                                      std::string name) {
  CAYMAN_ASSERT(!loops_.empty(), "reduction outside a loop");
  LoopFrame& frame = loops_.back();
  auto phi = std::make_unique<Instruction>(Opcode::Phi, type,
                                           std::vector<Value*>{}, name);
  Instruction* raw = frame.header->insertPhi(std::move(phi));
  raw->addIncoming(init, frame.preheader);
  frame.reductions.emplace_back(raw, nullptr);
  return raw;
}

void KernelBuilder::setReductionNext(Instruction* phi, Value* next) {
  for (auto& frame : loops_) {
    for (auto& [p, n] : frame.reductions) {
      if (p == phi) {
        n = next;
        return;
      }
    }
  }
  CAYMAN_ASSERT(false, "setReductionNext: unknown reduction phi");
}

Value* KernelBuilder::reductionResult(Instruction* phi) const {
  // The header phi holds the final value on loop exit (the header dominates
  // the exit block).
  return phi;
}

Value* KernelBuilder::loadAt(GlobalArray* array, Value* index,
                             std::string name) {
  Value* ptr = b_.gep(array, index, array->elemType(),
                      array->name() + ".ptr");
  return b_.load(array->elemType(), ptr,
                 name.empty() ? array->name() + ".val" : std::move(name));
}

void KernelBuilder::storeAt(GlobalArray* array, Value* index, Value* value) {
  Value* ptr = b_.gep(array, index, array->elemType(),
                      array->name() + ".ptr");
  b_.store(value, ptr);
}

Value* KernelBuilder::idx2(Value* i, Value* j, int64_t cols,
                           std::string name) {
  Value* scaled = b_.mul(i, b_.i64(cols));
  return b_.add(scaled, j, std::move(name));
}

Value* KernelBuilder::idx3(Value* i, Value* j, Value* k, int64_t d1,
                           int64_t d2, std::string name) {
  Value* a = b_.mul(i, b_.i64(d1));
  Value* b = b_.add(a, j);
  Value* c = b_.mul(b, b_.i64(d2));
  return b_.add(c, k, std::move(name));
}

}  // namespace cayman::workloads
