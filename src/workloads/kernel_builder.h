// KernelBuilder: structured-control-flow authoring layer over IRBuilder.
//
// Emits canonical loops (preheader / header+phi / body / latch / exit) and
// if/else diamonds, which is exactly the structured shape the region analysis
// recognizes as SESE ctrl-flow regions.
#pragma once

#include <functional>

#include "ir/builder.h"

namespace cayman::workloads {

class KernelBuilder {
 public:
  explicit KernelBuilder(ir::Module* module) : b_(module) {}

  ir::Module* module() const { return b_.module(); }
  ir::IRBuilder& ir() { return b_; }

  /// Starts a function; the builder is positioned in its entry block.
  ir::Function* beginFunction(
      std::string name, const ir::Type* returnType = ir::Type::voidTy(),
      std::vector<std::pair<const ir::Type*, std::string>> params = {});
  /// Emits `ret` and finishes the function.
  void endFunction(ir::Value* returnValue = nullptr);

  /// Opens a counted loop `for (iv = lo; iv < hi; iv += step)` and returns
  /// the induction variable; the builder is positioned in the body.
  ir::Value* beginLoop(ir::Value* lo, ir::Value* hi, std::string name,
                       int64_t step = 1);
  ir::Value* beginLoop(int64_t lo, int64_t hi, std::string name,
                       int64_t step = 1) {
    return beginLoop(b_.i64(lo), b_.i64(hi), std::move(name), step);
  }
  /// Closes the innermost open loop; the builder moves to its exit block.
  void endLoop();

  /// Opens an if (and optional else); builder is positioned in the then-arm.
  void beginIf(ir::Value* cond, bool withElse = false, std::string name = "if");
  /// Switches from the then-arm to the else-arm (requires withElse=true).
  void beginElse();
  /// Closes the innermost if; the builder moves to the join block.
  void endIf();

  /// Declares a reduction variable carried by the innermost open loop:
  /// returns the phi seeded with `init`; call setReductionNext before the
  /// loop closes to provide the next-iteration value.
  ir::Instruction* reduction(const ir::Type* type, ir::Value* init,
                             std::string name);
  void setReductionNext(ir::Instruction* phi, ir::Value* next);
  /// Value of the reduction after the loop closed (usable in the exit block).
  ir::Value* reductionResult(ir::Instruction* phi) const;

  // --- Array access sugar ----------------------------------------------------
  ir::Value* loadAt(ir::GlobalArray* array, ir::Value* index,
                    std::string name = "");
  void storeAt(ir::GlobalArray* array, ir::Value* index, ir::Value* value);
  /// Row-major 2-D index helper: i * cols + j.
  ir::Value* idx2(ir::Value* i, ir::Value* j, int64_t cols,
                  std::string name = "");
  /// Row-major 3-D index helper: (i * d1 + j) * d2 + k.
  ir::Value* idx3(ir::Value* i, ir::Value* j, ir::Value* k, int64_t d1,
                  int64_t d2, std::string name = "");

 private:
  struct LoopFrame {
    ir::BasicBlock* preheader;
    ir::BasicBlock* header;
    ir::BasicBlock* latch;
    ir::BasicBlock* exit;
    ir::Instruction* iv;
    ir::Value* step;
    std::vector<std::pair<ir::Instruction*, ir::Value*>> reductions;
  };
  struct IfFrame {
    ir::BasicBlock* thenBlock;
    ir::BasicBlock* elseBlock;  ///< nullptr without an else arm
    ir::BasicBlock* join;
    bool inElse = false;
  };

  ir::IRBuilder b_;
  ir::Function* function_ = nullptr;
  std::vector<LoopFrame> loops_;
  std::vector<IfFrame> ifs_;
  std::map<const ir::Instruction*, ir::Value*> reductionResults_;
  int nameCounter_ = 0;
};

}  // namespace cayman::workloads
