// CoreMark-Pro-style workloads. Originals are not redistributable here; the
// synthetic equivalents keep each benchmark's defining structure: hotspot
// spread, control-flow richness, integer-vs-float mix, and (for
// loops-all-mid) floating-point loop-carried recurrences that bound II.
#include "workloads/kernel_builder.h"
#include "workloads/workloads.h"

namespace cayman::workloads {

namespace {

using ir::CmpPred;
using ir::GlobalArray;
using ir::Instruction;
using ir::Module;
using ir::Type;
using ir::Value;

/// cjpeg-rose7-preset: JPEG-like compression pass over a different image
/// shape, with chroma subsampling ahead of the transform.
std::unique_ptr<Module> buildCjpegRose() {
  constexpr int64_t n = 32, elems = n * n;
  auto m = std::make_unique<Module>("cjpeg-rose7-preset");
  auto* r = m->addGlobal("r", Type::f64(), elems);
  auto* g = m->addGlobal("g", Type::f64(), elems);
  auto* b = m->addGlobal("b", Type::f64(), elems);
  auto* ycc = m->addGlobal("ycc", Type::f64(), elems);
  auto* cb = m->addGlobal("cb", Type::f64(), elems / 4);
  auto* freq = m->addGlobal("freq", Type::f64(), elems);
  auto* coef = m->addGlobal("coef", Type::f64(), 64);
  auto* quant = m->addGlobal("quant", Type::f64(), 64);
  auto* stats = m->addGlobal("stats", Type::i64(), 2);
  stats->setInit(std::vector<double>(2, 0.0));
  std::vector<double> qinit(64);
  for (int k = 0; k < 64; ++k) qinit[static_cast<size_t>(k)] = 1.0 + k * 0.2;
  quant->setInit(qinit);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  // Colour transform.
  {
    Value* i = kb.beginLoop(0, elems, "ycc");
    Value* y = kb.ir().fadd(
        kb.ir().fadd(kb.ir().fmul(kb.loadAt(r, i), kb.ir().f64(0.299)),
                     kb.ir().fmul(kb.loadAt(g, i), kb.ir().f64(0.587))),
        kb.ir().fmul(kb.loadAt(b, i), kb.ir().f64(0.114)));
    kb.storeAt(ycc, i, y);
    kb.endLoop();
  }
  // 2x2 chroma subsampling.
  {
    Value* i = kb.beginLoop(0, n / 2, "sub.i");
    Value* j = kb.beginLoop(0, n / 2, "sub.j");
    Value* si = kb.ir().mul(i, kb.ir().i64(2));
    Value* sj = kb.ir().mul(j, kb.ir().i64(2));
    Value* a = kb.loadAt(ycc, kb.idx2(si, sj, n));
    Value* bb = kb.loadAt(ycc, kb.idx2(si, kb.ir().add(sj, kb.ir().i64(1)),
                                       n));
    Value* c = kb.loadAt(ycc, kb.idx2(kb.ir().add(si, kb.ir().i64(1)), sj,
                                      n));
    Value* d = kb.loadAt(
        ycc, kb.idx2(kb.ir().add(si, kb.ir().i64(1)),
                     kb.ir().add(sj, kb.ir().i64(1)), n));
    Value* avg = kb.ir().fmul(kb.ir().fadd(kb.ir().fadd(a, bb),
                                           kb.ir().fadd(c, d)),
                              kb.ir().f64(0.25));
    kb.storeAt(cb, kb.idx2(i, j, n / 2), avg);
    kb.endLoop();
    kb.endLoop();
  }
  // Block transform (row-only pass: 1-D DCT per 8-pixel strip).
  {
    Value* row = kb.beginLoop(0, n, "dct.row");
    Value* blk = kb.beginLoop(0, n / 8, "dct.blk");
    Value* u = kb.beginLoop(0, 8, "dct.u");
    Value* x = kb.beginLoop(0, 8, "dct.x");
    Instruction* acc = kb.reduction(Type::f64(), kb.ir().f64(0.0), "acc");
    Value* col = kb.ir().add(kb.ir().mul(blk, kb.ir().i64(8)), x);
    Value* pix = kb.loadAt(ycc, kb.idx2(row, col, n));
    Value* cf = kb.loadAt(coef, kb.idx2(u, x, 8));
    kb.setReductionNext(acc, kb.ir().fadd(acc, kb.ir().fmul(pix, cf)));
    kb.endLoop();
    Value* outCol = kb.ir().add(kb.ir().mul(blk, kb.ir().i64(8)), u);
    kb.storeAt(freq, kb.idx2(row, outCol, n), kb.reductionResult(acc));
    kb.endLoop();
    kb.endLoop();
    kb.endLoop();
  }
  // Quantize with branch statistics.
  {
    Value* i = kb.beginLoop(0, elems, "quant");
    Value* q = kb.loadAt(quant, kb.ir().and_(i, kb.ir().i64(63)));
    Value* v = kb.ir().fdiv(kb.loadAt(freq, i), q);
    Value* rounded =
        kb.ir().sitofp(kb.ir().fptosi(v, Type::i64()), Type::f64());
    kb.storeAt(freq, i, rounded);
    Value* zero = kb.ir().fcmp(CmpPred::EQ, rounded, kb.ir().f64(0.0));
    kb.beginIf(zero, /*withElse=*/false, "z");
    kb.storeAt(stats, kb.ir().i64(0),
               kb.ir().add(kb.loadAt(stats, kb.ir().i64(0)), kb.ir().i64(1)));
    kb.endIf();
    kb.endLoop();
  }
  kb.endFunction();
  return m;
}

/// zip-test: LZ77-style window matching: for each cursor, scan a fixed
/// window for the longest prefix match (integer-heavy, branchy).
std::unique_ptr<Module> buildZipTest() {
  constexpr int64_t len = 160, window = 24, maxMatch = 8;
  auto m = std::make_unique<Module>("zip-test");
  auto* data = m->addGlobal("data", Type::i64(), len);
  auto* bestLen = m->addGlobal("bestLen", Type::i64(), len);
  auto* bestOff = m->addGlobal("bestOff", Type::i64(), len);
  std::vector<double> init(len);
  for (int64_t k = 0; k < len; ++k) {
    init[static_cast<size_t>(k)] = static_cast<double>((k * 5 + k / 7) % 8);
  }
  data->setInit(init);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  Value* pos = kb.beginLoop(window, len - maxMatch, "pos");
  kb.storeAt(bestLen, pos, kb.ir().i64(0));
  kb.storeAt(bestOff, pos, kb.ir().i64(0));
  Value* off = kb.beginLoop(1, window, "off");
  // Count matching symbols at this offset (fixed-length compare loop).
  Value* k = kb.beginLoop(0, maxMatch, "cmp");
  Instruction* run = kb.reduction(Type::i64(), kb.ir().i64(0), "run");
  Value* cur = kb.loadAt(data, kb.ir().add(pos, k));
  Value* past = kb.loadAt(data, kb.ir().sub(kb.ir().add(pos, k), off));
  Value* same = kb.ir().icmp(CmpPred::EQ, cur, past);
  // Run-length only grows while every previous symbol matched: emulate with
  // saturating "and" against position (run == k means unbroken so far).
  Value* unbroken = kb.ir().icmp(CmpPred::EQ, run, k);
  Value* grow = kb.ir().and_(kb.ir().zext(same, Type::i64()),
                             kb.ir().zext(unbroken, Type::i64()));
  kb.setReductionNext(run, kb.ir().add(run, grow));
  kb.endLoop();
  Value* length = kb.reductionResult(run);
  Value* better = kb.ir().icmp(CmpPred::GT, length, kb.loadAt(bestLen, pos));
  kb.beginIf(better, /*withElse=*/false, "upd");
  kb.storeAt(bestLen, pos, length);
  kb.storeAt(bestOff, pos, off);
  kb.endIf();
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  return m;
}

/// parser-125k: branchy token scanner over a character stream, updating
/// class counters and a rolling hash (pure integer control-flow).
std::unique_ptr<Module> buildParser() {
  constexpr int64_t len = 4096;
  auto m = std::make_unique<Module>("parser-125k");
  auto* text = m->addGlobal("text", Type::i64(), len);
  auto* counts = m->addGlobal("counts", Type::i64(), 8);
  counts->setInit(std::vector<double>(8, 0.0));
  auto* hashes = m->addGlobal("hashes", Type::i64(), len);
  std::vector<double> init(len);
  for (int64_t k = 0; k < len; ++k) {
    init[static_cast<size_t>(k)] = static_cast<double>((k * 31 + 17) % 96);
  }
  text->setInit(init);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  Value* i = kb.beginLoop(0, len, "scan");
  Instruction* hash = kb.reduction(Type::i64(), kb.ir().i64(5381), "hash");
  Value* c = kb.loadAt(text, i);
  Value* nextHash = kb.ir().add(
      kb.ir().mul(hash, kb.ir().i64(33)), c);
  kb.setReductionNext(hash, nextHash);
  kb.storeAt(hashes, i, nextHash);
  Value* isSpace = kb.ir().icmp(CmpPred::LT, c, kb.ir().i64(16));
  kb.beginIf(isSpace, /*withElse=*/true, "sp");
  kb.storeAt(counts, kb.ir().i64(0),
             kb.ir().add(kb.loadAt(counts, kb.ir().i64(0)), kb.ir().i64(1)));
  kb.beginElse();
  Value* isDigit = kb.ir().icmp(CmpPred::LT, c, kb.ir().i64(32));
  kb.beginIf(isDigit, /*withElse=*/true, "dg");
  kb.storeAt(counts, kb.ir().i64(1),
             kb.ir().add(kb.loadAt(counts, kb.ir().i64(1)), kb.ir().i64(1)));
  kb.beginElse();
  Value* isUpper = kb.ir().icmp(CmpPred::LT, c, kb.ir().i64(64));
  Value* slot = kb.ir().select(isUpper, kb.ir().i64(2), kb.ir().i64(3));
  kb.storeAt(counts, slot,
             kb.ir().add(kb.loadAt(counts, slot), kb.ir().i64(1)));
  kb.endIf();
  kb.endIf();
  kb.endLoop();
  kb.endFunction();
  return m;
}

/// nnet-test: two-layer MLP forward pass plus a rank-1 weight update.
std::unique_ptr<Module> buildNnet() {
  constexpr int64_t in = 32, hid = 24, out = 8;
  auto m = std::make_unique<Module>("nnet-test");
  auto* x = m->addGlobal("x", Type::f64(), in);
  auto* w1 = m->addGlobal("w1", Type::f64(), hid * in);
  auto* h = m->addGlobal("h", Type::f64(), hid);
  auto* w2 = m->addGlobal("w2", Type::f64(), out * hid);
  auto* y = m->addGlobal("y", Type::f64(), out);
  auto* grad = m->addGlobal("grad", Type::f64(), out);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  kb.beginLoop(0, 6, "epoch");
  // Hidden layer: h = relu(W1 x).
  {
    Value* i = kb.beginLoop(0, hid, "l1");
    Value* j = kb.beginLoop(0, in, "l1.dot");
    Instruction* acc = kb.reduction(Type::f64(), kb.ir().f64(0.0), "acc");
    Value* prod = kb.ir().fmul(kb.loadAt(w1, kb.idx2(i, j, in)),
                               kb.loadAt(x, j));
    kb.setReductionNext(acc, kb.ir().fadd(acc, prod));
    kb.endLoop();
    kb.storeAt(h, i,
               kb.ir().fmax(kb.reductionResult(acc), kb.ir().f64(0.0)));
    kb.endLoop();
  }
  // Output layer.
  {
    Value* i = kb.beginLoop(0, out, "l2");
    Value* j = kb.beginLoop(0, hid, "l2.dot");
    Instruction* acc = kb.reduction(Type::f64(), kb.ir().f64(0.0), "acc");
    Value* prod = kb.ir().fmul(kb.loadAt(w2, kb.idx2(i, j, hid)),
                               kb.loadAt(h, j));
    kb.setReductionNext(acc, kb.ir().fadd(acc, prod));
    kb.endLoop();
    Value* o = kb.reductionResult(acc);
    kb.storeAt(y, i, o);
    kb.storeAt(grad, i, kb.ir().fsub(kb.ir().f64(0.5), o));
    kb.endLoop();
  }
  // Rank-1 update: W2 += lr * grad h^T.
  {
    Value* i = kb.beginLoop(0, out, "upd");
    Value* j = kb.beginLoop(0, hid, "upd.j");
    Value* delta = kb.ir().fmul(
        kb.ir().fmul(kb.loadAt(grad, i), kb.loadAt(h, j)),
        kb.ir().f64(0.01));
    Value* w = kb.loadAt(w2, kb.idx2(i, j, hid));
    kb.storeAt(w2, kb.idx2(i, j, hid), kb.ir().fadd(w, delta));
    kb.endLoop();
    kb.endLoop();
  }
  kb.endLoop();
  kb.endFunction();
  return m;
}

/// linear-alg-mid: dense solve via Gaussian elimination + back-substitution.
std::unique_ptr<Module> buildLinearAlg() {
  constexpr int64_t n = 28;
  auto m = std::make_unique<Module>("linear-alg-mid");
  auto* A = m->addGlobal("A", Type::f64(), n * n);
  auto* bvec = m->addGlobal("b", Type::f64(), n);
  auto* x = m->addGlobal("x", Type::f64(), n);
  std::vector<double> init(static_cast<size_t>(n * n), 0.2);
  for (int64_t i = 0; i < n; ++i) {
    init[static_cast<size_t>(i * n + i)] = static_cast<double>(n);
  }
  A->setInit(init);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  // Forward elimination.
  {
    Value* k = kb.beginLoop(0, n - 1, "elim");
    Value* iStart = kb.ir().add(k, kb.ir().i64(1));
    Value* i = kb.beginLoop(iStart, kb.ir().i64(n), "elim.i");
    Value* factor = kb.ir().fdiv(kb.loadAt(A, kb.idx2(i, k, n)),
                                 kb.loadAt(A, kb.idx2(k, k, n)), "factor");
    Value* j = kb.beginLoop(k, kb.ir().i64(n), "elim.j");
    Value* av = kb.loadAt(A, kb.idx2(i, j, n));
    Value* sub = kb.ir().fmul(factor, kb.loadAt(A, kb.idx2(k, j, n)));
    kb.storeAt(A, kb.idx2(i, j, n), kb.ir().fsub(av, sub));
    kb.endLoop();
    Value* bv = kb.loadAt(bvec, i);
    kb.storeAt(bvec, i,
               kb.ir().fsub(bv, kb.ir().fmul(factor, kb.loadAt(bvec, k))));
    kb.endLoop();
    kb.endLoop();
  }
  // Back substitution (reverse walk via index arithmetic).
  {
    Value* r = kb.beginLoop(0, n, "back");
    Value* i = kb.ir().sub(kb.ir().i64(n - 1), r, "row");
    Value* jStart = kb.ir().add(i, kb.ir().i64(1));
    Value* j = kb.beginLoop(jStart, kb.ir().i64(n), "back.j");
    Value* bv = kb.loadAt(bvec, i);
    Value* sub = kb.ir().fmul(kb.loadAt(A, kb.idx2(i, j, n)), kb.loadAt(x, j));
    kb.storeAt(bvec, i, kb.ir().fsub(bv, sub));
    kb.endLoop();
    kb.storeAt(x, i, kb.ir().fdiv(kb.loadAt(bvec, i),
                                  kb.loadAt(A, kb.idx2(i, i, n))));
    kb.endLoop();
  }
  kb.endFunction();
  return m;
}

/// loops-all-mid-10k-sp: many distinct small loops, most carrying a
/// floating-point recurrence (the paper notes these bound the pipeline II
/// and mute the benefit of decoupled/scratchpad interfaces).
std::unique_ptr<Module> buildLoopsAll() {
  constexpr int64_t n = 96, kLoops = 12;
  auto m = std::make_unique<Module>("loops-all-mid-10k-sp");
  std::vector<GlobalArray*> arrays;
  for (int64_t k = 0; k < kLoops; ++k) {
    arrays.push_back(
        m->addGlobal("a" + std::to_string(k), Type::f64(), n));
  }
  auto* out = m->addGlobal("out", Type::f64(), kLoops);
  KernelBuilder kb(m.get());
  kb.beginFunction("main");
  for (int64_t k = 0; k < kLoops; ++k) {
    std::string tag = "l" + std::to_string(k);
    Value* i = kb.beginLoop(0, n, tag);
    if (k % 3 == 0) {
      // First-order IIR recurrence through memory: a[i] += c * a[i-1].
      ir::IRBuilder& b = kb.ir();
      Value* prevIdx = b.select(
          b.icmp(CmpPred::GT, i, b.i64(0)), b.sub(i, b.i64(1)), b.i64(0));
      Value* prev = kb.loadAt(arrays[static_cast<size_t>(k)], prevIdx);
      Value* cur = kb.loadAt(arrays[static_cast<size_t>(k)], i);
      kb.storeAt(arrays[static_cast<size_t>(k)], i,
                 b.fadd(cur, b.fmul(prev, b.f64(0.5))));
    } else if (k % 3 == 1) {
      // Scalar product-style recurrence.
      Instruction* acc = kb.reduction(Type::f64(), kb.ir().f64(1.0), "acc");
      Value* v = kb.loadAt(arrays[static_cast<size_t>(k)], i);
      kb.setReductionNext(
          acc, kb.ir().fadd(kb.ir().fmul(acc, kb.ir().f64(0.999)),
                            kb.ir().fmul(v, kb.ir().f64(0.001))));
      kb.endLoop();
      kb.storeAt(out, kb.ir().i64(k), kb.reductionResult(acc));
      continue;
    } else {
      // Elementwise with an FP-heavy body.
      Value* v = kb.loadAt(arrays[static_cast<size_t>(k)], i);
      Value* t = kb.ir().fadd(kb.ir().fmul(v, v), kb.ir().f64(0.125));
      kb.storeAt(arrays[static_cast<size_t>(k)], i, kb.ir().fsqrt(t));
    }
    kb.endLoop();
  }
  kb.endFunction();
  return m;
}

}  // namespace

std::vector<WorkloadInfo> coremarkWorkloads() {
  return {
      {"cjpeg-rose7-preset", "CoreMark-Pro",
       "synthetic JPEG compression preset: colour transform, subsampling, "
       "1-D block DCT, quantization",
       buildCjpegRose},
      {"zip-test", "CoreMark-Pro",
       "LZ77-style window matching with fixed-length compare loops "
       "(early-exit replaced by saturating run counters)",
       buildZipTest},
      {"parser-125k", "CoreMark-Pro",
       "branchy token scanner with rolling hash over a synthetic stream",
       buildParser},
      {"nnet-test", "CoreMark-Pro",
       "two-layer MLP forward pass + rank-1 update over several epochs",
       buildNnet},
      {"linear-alg-mid", "CoreMark-Pro",
       "Gaussian elimination + back-substitution dense solve", buildLinearAlg},
      {"loops-all-mid-10k-sp", "CoreMark-Pro",
       "12 distinct small loops, most with FP loop-carried recurrences",
       buildLoopsAll},
  };
}

}  // namespace cayman::workloads
