// Benchmark registry: the 28 applications of the paper's evaluation
// (PolyBench, MachSuite, MediaBench, CoreMark-Pro), re-authored as IR
// programs. PolyBench/MachSuite kernels are faithful ports at reduced
// problem sizes; MediaBench/CoreMark-Pro entries are structurally
// equivalent synthetic kernels (see each builder's comment) because the
// original sources are not redistributable here — they preserve hotspot
// distribution, control-flow richness, and access patterns.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/module.h"

namespace cayman::workloads {

struct WorkloadInfo {
  std::string name;
  std::string suite;
  /// Substitution note (empty for faithful ports).
  std::string note;
  std::function<std::unique_ptr<ir::Module>()> build;
  /// Relative evaluation cost (arbitrary units, default 1.0) used for LPT
  /// scheduling in evaluateWorkloads: heavier workloads are *submitted*
  /// first so the sweep's makespan is not bound by a tail workload landing
  /// last. Purely a scheduling hint — never affects results or output
  /// order. Filled by the registry (registry.cpp); suite builders leave it
  /// defaulted.
  double costHint = 1.0;
};

/// All registered workloads in the paper's Table II order.
const std::vector<WorkloadInfo>& all();

/// Lookup by name; nullptr when unknown.
const WorkloadInfo* byName(std::string_view name);

/// Builds (and verifies) a workload module by name; throws on unknown names.
std::unique_ptr<ir::Module> build(std::string_view name);

// Suite builders (one translation unit each).
std::vector<WorkloadInfo> polybenchWorkloads();
std::vector<WorkloadInfo> machsuiteWorkloads();
std::vector<WorkloadInfo> mediabenchWorkloads();
std::vector<WorkloadInfo> coremarkWorkloads();

}  // namespace cayman::workloads
