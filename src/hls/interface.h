// Processor–accelerator data access interfaces (paper §III-C, Fig. 3).
#pragma once

#include <functional>
#include <map>

#include "ir/instruction.h"

namespace cayman::hls {

/// The three interface types Cayman models.
enum class IfaceKind {
  Coupled,     ///< blocking load/store unit on a shared memory port
  Decoupled,   ///< AGU + FIFO prefetch/drain; stream accesses only
  Scratchpad,  ///< banked local buffer + DMA fill/drain around execution
};

const char* ifaceSpelling(IfaceKind kind);

/// Interface assignment for one memory access operation.
struct AccessIface {
  IfaceKind kind = IfaceKind::Coupled;
  /// Scratchpad banks available to this access (memory partitioning under
  /// unrolled loops, paper §III-C).
  unsigned partitions = 1;
  /// Backing array: scratchpad buffers/banks are allocated per array.
  const ir::GlobalArray* array = nullptr;
  /// Scratchpad footprint in bytes (buffer sizing; static by construction).
  uint64_t footprintBytes = 0;
  /// Register promotion: the address is invariant in the optimized loop, so
  /// the value lives in a register during execution (load before / store
  /// after the loop). Promoted accesses cost no latency, no port, and no
  /// interface hardware beyond one holding register.
  bool promoted = false;
};

inline bool operator==(const AccessIface& a, const AccessIface& b) {
  return a.kind == b.kind && a.partitions == b.partitions &&
         a.array == b.array && a.footprintBytes == b.footprintBytes &&
         a.promoted == b.promoted;
}
inline bool operator!=(const AccessIface& a, const AccessIface& b) {
  return !(a == b);
}
/// Strict weak order consistent with operator== (equal iff neither is less).
/// Lets signatures (vectors of AccessIface) key ordered containers, e.g. the
/// model's block-schedule cache. Pointers compare via std::less, which is a
/// total order even for unrelated objects. The order is arbitrary but stable
/// within a process; it is never serialized.
inline bool operator<(const AccessIface& a, const AccessIface& b) {
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.partitions != b.partitions) return a.partitions < b.partitions;
  if (a.array != b.array) {
    return std::less<const ir::GlobalArray*>{}(a.array, b.array);
  }
  if (a.footprintBytes != b.footprintBytes) {
    return a.footprintBytes < b.footprintBytes;
  }
  return a.promoted < b.promoted;
}

/// Timing parameters of the interfaces. The defaults are calibrated so the
/// paper's Fig. 4 example reproduces: sequential 6N vs 4N, pipelined II 3
/// vs 1, unrolled-by-2 9(N/2) vs 4(N/2).
struct InterfaceTiming {
  /// Cycles until a coupled load's data arrives (accelerator stalls).
  unsigned coupledLoadLatency = 3;
  /// Cycles the shared port is busy per coupled load (non-overlapping).
  unsigned coupledLoadOccupancy = 3;
  unsigned coupledStoreLatency = 1;
  unsigned coupledStoreOccupancy = 1;  ///< posted writes
  /// Decoupled FIFO pop/push latency as seen by the datapath.
  unsigned decoupledLatency = 1;
  unsigned scratchpadLatency = 1;
  /// Bytes the DMA engine moves per cycle when (pre)filling scratchpads.
  unsigned dmaBytesPerCycle = 8;
  /// Decoupled FIFO depth in elements (buffering area).
  unsigned fifoDepthElems = 8;

  unsigned loadLatency(IfaceKind kind) const {
    switch (kind) {
      case IfaceKind::Coupled: return coupledLoadLatency;
      case IfaceKind::Decoupled: return decoupledLatency;
      case IfaceKind::Scratchpad: return scratchpadLatency;
    }
    return coupledLoadLatency;
  }
  unsigned storeLatency(IfaceKind kind) const {
    switch (kind) {
      case IfaceKind::Coupled: return coupledStoreLatency;
      case IfaceKind::Decoupled: return decoupledLatency;
      case IfaceKind::Scratchpad: return scratchpadLatency;
    }
    return coupledStoreLatency;
  }
};

/// Per-access interface assignment for a candidate kernel.
using IfaceAssignment = std::map<const ir::Instruction*, AccessIface>;

}  // namespace cayman::hls
