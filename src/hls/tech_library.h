// Technology characterization: per-operation delay/area plus interface and
// control hardware costs.
//
// Substitutes for the paper's OpenROAD + Nangate45 characterization runs:
// the constants below are a static table calibrated to published 45 nm-class
// synthesis results. The accelerator model only performs lookups, so the
// code paths match the paper's flow exactly.
#pragma once

#include "ir/instruction.h"

namespace cayman::hls {

/// Combinational delay (ns) and cell area (um^2) of one operator instance.
struct OpHw {
  double delayNs = 0.0;
  double areaUm2 = 0.0;
};

class TechLibrary {
 public:
  /// 45nm-class characterization at the paper's operating point.
  static TechLibrary nangate45();

  /// Delay/area for one op on the given scalar type.
  OpHw opInfo(ir::Opcode op, const ir::Type* type) const;

  /// Latency in cycles at `clockNs` (>=1; multi-cycle ops pipelined into
  /// ceil(delay/clock) stages).
  unsigned latencyCycles(ir::Opcode op, const ir::Type* type,
                         double clockNs) const;

  // --- Control / storage hardware -----------------------------------------
  double registerAreaPerBit = 6.0;
  double muxAreaPerInputBit = 1.6;
  double fsmAreaPerState = 120.0;
  /// Fixed overhead per accelerator (bus interface, start/done handshake).
  double acceleratorWrapperArea = 4500.0;
  /// Global Ctrl unit of a merged (reusable) accelerator (paper §III-E).
  double mergeCtrlArea = 2200.0;
  /// Per reconfiguration bit register in merged datapaths.
  double configBitArea = 8.0;

  // --- Data-access interface hardware --------------------------------------
  double lsuArea = 2400.0;            ///< coupled load/store unit
  double aguArea = 1500.0;            ///< address generation unit (decoupled)
  double fifoAreaPerByte = 14.0;      ///< decoupled data FIFO
  double scratchpadAreaPerByte = 9.0; ///< SRAM buffer
  double scratchpadPortArea = 900.0;  ///< per extra bank port
  double dmaEngineArea = 3200.0;      ///< scratchpad DMA engine

  /// Area of one CVA6 RISC-V tile [32]; accelerator areas are reported as a
  /// ratio of this (paper §IV-A).
  double cva6TileAreaUm2 = 2.0e6;
};

}  // namespace cayman::hls
