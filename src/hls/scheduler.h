// HLS scheduling: list scheduling of basic-block datapaths with
// interface-aware memory-port resources, plus pipelining MII bounds.
#pragma once

#include <atomic>
#include <span>

#include "analysis/memdep.h"
#include "hls/interface.h"
#include "hls/tech_library.h"

namespace cayman::hls {

/// Scheduling result for one basic block (one FSM state sequence).
struct BlockSchedule {
  /// Cycles for one execution of the block (>= 1 for non-empty blocks).
  unsigned latency = 0;
  /// Datapath operator area, including unroll replication.
  double opAreaUm2 = 0.0;
  /// Pipeline registers along the schedule (approximated per scheduled op).
  double regAreaUm2 = 0.0;
  /// Number of scheduled operations (one unroll instance).
  unsigned numOps = 0;
  /// Start cycle per instruction (first unroll instance).
  std::map<const ir::Instruction*, unsigned> start;
};

class Scheduler {
 public:
  Scheduler(const TechLibrary& tech, InterfaceTiming timing, double clockNs)
      : tech_(tech), timing_(timing), clockNs_(clockNs) {}

  const TechLibrary& tech() const { return tech_; }
  const InterfaceTiming& timing() const { return timing_; }
  double clockNs() const { return clockNs_; }

  /// Latency of one operation under its interface assignment.
  unsigned opLatency(const ir::Instruction& inst,
                     const IfaceAssignment& ifaces) const;

  /// Schedules one basic block with `unroll` parallel instances (used to
  /// model unrolled loop bodies: compute replicates, memory ports contend).
  BlockSchedule scheduleBlock(const ir::BasicBlock& block,
                              const IfaceAssignment& ifaces,
                              unsigned unroll = 1) const;

  /// Resource-constrained minimum II for a pipelined body block.
  unsigned resMII(const ir::BasicBlock& block, const IfaceAssignment& ifaces,
                  unsigned unroll = 1) const;

  /// Recurrence-constrained minimum II from loop-carried dependences.
  unsigned recMII(std::span<const analysis::LoopCarriedDep> deps,
                  const IfaceAssignment& ifaces) const;

  /// Steady-state cycles of a pipelined loop: depth + (iterations-1) * II.
  static uint64_t pipelinedCycles(uint64_t iterations, unsigned depth,
                                  unsigned ii);

  /// Number of scheduleBlock() invocations on this scheduler (the expensive
  /// list-scheduling core; resMII/recMII scans are not counted).
  uint64_t blockCalls() const {
    return blockCalls_.load(std::memory_order_relaxed);
  }

  /// Credits `calls` scheduleBlock() invocations without running them —
  /// counter and trace side effects only. Used by the persistent model cache
  /// to replay a warm region's cold-generation call count so warm and cold
  /// runs emit identical metrics. No-op when `calls` is 0 (a cold run with
  /// zero calls emits no counter either).
  void creditBlockCalls(uint64_t calls) const;

 private:
  /// Resource key for scratchpad banking (per backing array).
  static const void* bankKey(const AccessIface& iface,
                             const ir::Instruction& inst);

  const TechLibrary& tech_;
  InterfaceTiming timing_;
  double clockNs_;
  mutable std::atomic<uint64_t> blockCalls_{0};
};

}  // namespace cayman::hls
