#include "hls/scheduler.h"

#include <algorithm>
#include <cmath>

#include "support/trace.h"

namespace cayman::hls {

namespace {

AccessIface ifaceFor(const ir::Instruction& inst,
                     const IfaceAssignment& ifaces) {
  auto it = ifaces.find(&inst);
  return it == ifaces.end() ? AccessIface{} : it->second;
}

}  // namespace

const char* ifaceSpelling(IfaceKind kind) {
  switch (kind) {
    case IfaceKind::Coupled: return "coupled";
    case IfaceKind::Decoupled: return "decoupled";
    case IfaceKind::Scratchpad: return "scratchpad";
  }
  return "?";
}

unsigned Scheduler::opLatency(const ir::Instruction& inst,
                              const IfaceAssignment& ifaces) const {
  if (inst.opcode() == ir::Opcode::Load) {
    AccessIface iface = ifaceFor(inst, ifaces);
    return iface.promoted ? 0 : timing_.loadLatency(iface.kind);
  }
  if (inst.opcode() == ir::Opcode::Store) {
    AccessIface iface = ifaceFor(inst, ifaces);
    return iface.promoted ? 0 : timing_.storeLatency(iface.kind);
  }
  return tech_.latencyCycles(inst.opcode(), inst.type(), clockNs_);
}

const void* Scheduler::bankKey(const AccessIface& iface,
                               const ir::Instruction& inst) {
  (void)inst;
  return iface.array != nullptr ? static_cast<const void*>(iface.array)
                                : static_cast<const void*>(&inst);
}

void Scheduler::creditBlockCalls(uint64_t calls) const {
  if (calls == 0) return;
  blockCalls_.fetch_add(calls, std::memory_order_relaxed);
  support::trace::count("sched.block_calls", calls);
}

BlockSchedule Scheduler::scheduleBlock(const ir::BasicBlock& block,
                                       const IfaceAssignment& ifaces,
                                       unsigned unroll) const {
  CAYMAN_ASSERT(unroll >= 1, "unroll factor must be >= 1");
  blockCalls_.fetch_add(1, std::memory_order_relaxed);
  support::trace::count("sched.block_calls", 1);
  BlockSchedule result;

  // Schedulable nodes: everything but phis (register selects, free) and the
  // terminator (FSM transition).
  std::vector<const ir::Instruction*> nodes;
  for (const auto& inst : block.instructions()) {
    if (inst->opcode() == ir::Opcode::Phi || inst->isTerminator()) continue;
    nodes.push_back(inst.get());
  }
  result.numOps = static_cast<unsigned>(nodes.size());

  // Resource state shared across unroll instances.
  unsigned coupledPortFree = 0;
  // Scratchpad: per array, per bank, the next free cycle (greedy).
  std::map<const void*, std::vector<unsigned>> banks;

  // Memory ordering within one instance: accesses that may conflict must
  // keep program order (same array with a store involved, or any unknown
  // address). `ifaces.array` is the statically resolved base where known.
  auto mayConflict = [&](const ir::Instruction* a, const ir::Instruction* b) {
    if (a->opcode() != ir::Opcode::Store && b->opcode() != ir::Opcode::Store) {
      return false;
    }
    const ir::GlobalArray* arrA = ifaceFor(*a, ifaces).array;
    const ir::GlobalArray* arrB = ifaceFor(*b, ifaces).array;
    if (arrA == nullptr || arrB == nullptr) return true;  // unknown base
    return arrA == arrB;
  };

  unsigned overallFinish = 0;
  for (unsigned instance = 0; instance < unroll; ++instance) {
    std::map<const ir::Instruction*, unsigned> finish;
    std::map<const ir::Instruction*, unsigned> start;
    unsigned lastConflictingFinish = 0;  // per-instance memory ordering chain

    std::vector<const ir::Instruction*> memOrder;  // accesses seen so far
    for (const ir::Instruction* inst : nodes) {
      unsigned ready = 0;
      for (const ir::Value* operand : inst->operands()) {
        const auto* def = ir::dynCast<ir::Instruction>(operand);
        if (def == nullptr || def->parent() != &block) continue;
        auto it = finish.find(def);
        if (it != finish.end()) ready = std::max(ready, it->second);
      }

      unsigned latency = opLatency(*inst, ifaces);
      unsigned startCycle = ready;

      if (inst->isMemoryAccess() && !ifaceFor(*inst, ifaces).promoted) {
        // Honour intra-instance memory ordering.
        for (const ir::Instruction* prior : memOrder) {
          if (mayConflict(prior, inst)) {
            startCycle = std::max(startCycle, finish[prior]);
          }
        }
        memOrder.push_back(inst);

        AccessIface iface = ifaceFor(*inst, ifaces);
        switch (iface.kind) {
          case IfaceKind::Coupled: {
            unsigned occupancy = inst->opcode() == ir::Opcode::Load
                                     ? timing_.coupledLoadOccupancy
                                     : timing_.coupledStoreOccupancy;
            startCycle = std::max(startCycle, coupledPortFree);
            coupledPortFree = startCycle + occupancy;
            break;
          }
          case IfaceKind::Scratchpad: {
            auto& bankFree = banks[bankKey(iface, *inst)];
            if (bankFree.size() < iface.partitions) {
              bankFree.resize(std::max<size_t>(iface.partitions, 1), 0);
            }
            auto slot = std::min_element(bankFree.begin(), bankFree.end());
            startCycle = std::max(startCycle, *slot);
            *slot = startCycle + 1;  // single-cycle bank occupancy
            break;
          }
          case IfaceKind::Decoupled:
            break;  // private FIFO: no shared resource
        }
        (void)lastConflictingFinish;
      }

      start[inst] = startCycle;
      finish[inst] = startCycle + latency;
      overallFinish = std::max(overallFinish, finish[inst]);
    }
    if (instance == 0) result.start = std::move(start);
  }

  result.latency = nodes.empty() ? 1 : std::max(1u, overallFinish);

  // Area: operators replicate per unroll instance; every multi-cycle value
  // needs a pipeline/holding register.
  double opArea = 0.0;
  double regArea = 0.0;
  for (const ir::Instruction* inst : nodes) {
    opArea += tech_.opInfo(inst->opcode(), inst->type()).areaUm2;
    if (!inst->type()->isVoid()) {
      regArea += tech_.registerAreaPerBit * inst->type()->bitWidth();
    }
  }
  result.opAreaUm2 = opArea * unroll;
  result.regAreaUm2 = regArea * unroll;
  return result;
}

unsigned Scheduler::resMII(const ir::BasicBlock& block,
                           const IfaceAssignment& ifaces,
                           unsigned unroll) const {
  unsigned coupledDemand = 0;
  std::map<const void*, std::pair<unsigned, unsigned>> bankDemand;  // count, parts
  for (const auto& inst : block.instructions()) {
    if (!inst->isMemoryAccess()) continue;
    AccessIface iface = ifaceFor(*inst, ifaces);
    if (iface.promoted) continue;  // register-held: no port demand
    switch (iface.kind) {
      case IfaceKind::Coupled:
        coupledDemand += (inst->opcode() == ir::Opcode::Load
                              ? timing_.coupledLoadOccupancy
                              : timing_.coupledStoreOccupancy) *
                         unroll;
        break;
      case IfaceKind::Scratchpad: {
        auto& [count, parts] = bankDemand[bankKey(iface, *inst)];
        count += unroll;
        parts = std::max(parts, std::max(1u, iface.partitions));
        break;
      }
      case IfaceKind::Decoupled:
        break;
    }
  }
  unsigned ii = std::max(1u, coupledDemand);
  for (const auto& [key, demand] : bankDemand) {
    (void)key;
    auto [count, parts] = demand;
    ii = std::max(ii, (count + parts - 1) / parts);
  }
  return ii;
}

unsigned Scheduler::recMII(std::span<const analysis::LoopCarriedDep> deps,
                           const IfaceAssignment& ifaces) const {
  unsigned ii = 1;
  for (const analysis::LoopCarriedDep& dep : deps) {
    unsigned chainLatency = 0;
    for (const ir::Instruction* inst : dep.chain) {
      chainLatency += opLatency(*inst, ifaces);
    }
    unsigned distance = std::max(1u, dep.distance);
    ii = std::max(ii, (chainLatency + distance - 1) / distance);
  }
  return ii;
}

uint64_t Scheduler::pipelinedCycles(uint64_t iterations, unsigned depth,
                                    unsigned ii) {
  if (iterations == 0) return 0;
  return depth + (iterations - 1) * static_cast<uint64_t>(ii);
}

}  // namespace cayman::hls
