#include "hls/tech_library.h"

#include <cmath>

namespace cayman::hls {

TechLibrary TechLibrary::nangate45() { return TechLibrary{}; }

OpHw TechLibrary::opInfo(ir::Opcode op, const ir::Type* type) const {
  using ir::Opcode;
  const bool wide = type != nullptr && type->bitWidth() >= 64;
  const double w = wide ? 1.0 : 0.55;  // narrow datapaths are cheaper

  switch (op) {
    case Opcode::Add:
    case Opcode::Sub:
      return {1.2 * w, 780.0 * w};
    case Opcode::Mul:
      return {3.4 * w, 7900.0 * w};
    case Opcode::SDiv:
    case Opcode::SRem:
      return {24.0 * w, 11500.0 * w};
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
      return {0.4 * w, 210.0 * w};
    case Opcode::Shl:
    case Opcode::AShr:
    case Opcode::LShr:
      return {0.9 * w, 640.0 * w};
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FNeg:
    case Opcode::FAbs:
    case Opcode::FMin:
    case Opcode::FMax:
      return {5.2 * w, 3600.0 * w};
    case Opcode::FMul:
      return {5.6 * w, 6400.0 * w};
    case Opcode::FDiv:
      return {22.0 * w, 15500.0 * w};
    case Opcode::FSqrt:
      return {30.0 * w, 18500.0 * w};
    case Opcode::ICmp:
      return {0.9 * w, 420.0 * w};
    case Opcode::FCmp:
      return {2.2 * w, 980.0 * w};
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Trunc:
      return {0.1, 60.0};
    case Opcode::SIToFP:
    case Opcode::FPToSI:
      return {3.8 * w, 2700.0 * w};
    case Opcode::Select:
      return {0.5 * w, 340.0 * w};
    case Opcode::Gep:
      // Address adder (shift-add).
      return {1.3, 860.0};
    case Opcode::Load:
    case Opcode::Store:
      // The datapath-side request logic; interface hardware is costed
      // separately per the configured access interface.
      return {0.8, 300.0};
    case Opcode::Phi:
      // Register selects folded into the FSM datapath muxes.
      return {0.0, 0.0};
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Ret:
    case Opcode::Call:
      return {0.0, 0.0};
  }
  return {};
}

unsigned TechLibrary::latencyCycles(ir::Opcode op, const ir::Type* type,
                                    double clockNs) const {
  OpHw hw = opInfo(op, type);
  if (hw.delayNs <= 0.0) return 0;
  unsigned cycles = static_cast<unsigned>(std::ceil(hw.delayNs / clockNs));
  return cycles == 0 ? 1 : cycles;
}

}  // namespace cayman::hls
