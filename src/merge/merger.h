// Accelerator merging (paper §III-E): share reconfigurable datapath units
// between basic blocks of different kernels so one reusable accelerator
// serves multiple program regions — FSMs stay per-kernel, datapath operators
// get multiplexed inputs plus reconfiguration bits.
#pragma once

#include "hls/tech_library.h"
#include "select/solution.h"

namespace cayman::merge {

/// Outcome of merging one solution's accelerators.
struct MergeResult {
  double areaBeforeUm2 = 0.0;
  double areaAfterUm2 = 0.0;
  /// Number of pairwise merge steps performed.
  int mergeSteps = 0;
  /// Reusable accelerators produced (groups of >= 2 original kernels).
  int reusableAccelerators = 0;
  /// Average original kernels per reusable accelerator.
  double avgKernelsPerReusable = 0.0;

  double savingPercent() const {
    if (areaBeforeUm2 <= 0.0) return 0.0;
    return 100.0 * (areaBeforeUm2 - areaAfterUm2) / areaBeforeUm2;
  }
};

class AcceleratorMerger {
 public:
  explicit AcceleratorMerger(const hls::TechLibrary& tech) : tech_(tech) {}

  /// Greedy merging: repeatedly merge the basic-block pair with the maximum
  /// estimated area saving until no positive saving remains. Execution time
  /// is unaffected — kernels are offloaded one at a time, so a shared
  /// datapath never serializes anything that ran in parallel before.
  MergeResult run(const select::Solution& solution) const;

  /// Estimated net area saving of merging two op multisets (shared operator
  /// area minus multiplexer / config-bit overhead). Exposed for tests.
  double pairSaving(const std::map<std::pair<ir::Opcode, bool>, unsigned>& a,
                    const std::map<std::pair<ir::Opcode, bool>, unsigned>& b)
      const;

 private:
  const hls::TechLibrary& tech_;
};

}  // namespace cayman::merge
