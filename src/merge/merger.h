// Accelerator merging (paper §III-E): share reconfigurable datapath units
// between basic blocks of different kernels so one reusable accelerator
// serves multiple program regions — FSMs stay per-kernel, datapath operators
// get multiplexed inputs plus reconfiguration bits.
#pragma once

#include "merge/graph.h"

namespace cayman::merge {

/// Which matching engine contracts the compatibility graph. Both produce
/// value-identical MergeResults (a property the differential tests pin over
/// all 28 workloads); Graph is strictly faster.
enum class MergeMode {
  /// Lazy-deletion edge-heap matching over union-find groups (default):
  /// every cross-accelerator pair is scored once, merges rescore only the
  /// surviving unit's edges. See merge/graph.h.
  Graph,
  /// The bug-fixed seed-era greedy, rescoring every cross-group pair per
  /// round. Kept in-tree as the differential oracle (the same role
  /// SelectMode::Reference plays for the selector DP).
  Reference,
};

/// Outcome of merging one solution's accelerators.
struct MergeResult {
  double areaBeforeUm2 = 0.0;
  double areaAfterUm2 = 0.0;
  /// Number of pairwise merge steps performed. Every step unions two
  /// distinct accelerator groups, so this never exceeds accelerators - 1.
  int mergeSteps = 0;
  /// Reusable accelerators produced (groups of >= 2 original kernels).
  int reusableAccelerators = 0;
  /// Average original kernels per reusable accelerator.
  double avgKernelsPerReusable = 0.0;
  /// Datapath units extracted (0 when the solution has < 2 accelerators —
  /// merging is strictly cross-accelerator, so nothing is even extracted).
  size_t unitsExtracted = 0;
  /// Cross-accelerator unit pairs in the initial compatibility scan.
  /// Mode-independent by construction (and the `merge.pairs_evaluated`
  /// trace counter, so exported metrics agree across MergeMode).
  uint64_t pairsEvaluated = 0;
  /// pairSaving evaluations the engine actually performed. Mode-DEPENDENT
  /// work measure for benches; deliberately never exported as a counter.
  uint64_t pairsScored = 0;

  double savingPercent() const {
    if (areaBeforeUm2 <= 0.0) return 0.0;
    return 100.0 * (areaBeforeUm2 - areaAfterUm2) / areaBeforeUm2;
  }
};

class AcceleratorMerger {
 public:
  explicit AcceleratorMerger(const hls::TechLibrary& tech,
                             MergeMode mode = MergeMode::Graph)
      : tech_(tech), mode_(mode) {}

  /// Contracts the compatibility graph: repeatedly merge the cross-group
  /// unit pair with the maximum positive net saving until none remains.
  /// Execution time is unaffected — kernels are offloaded one at a time, so
  /// a shared datapath never serializes anything that ran in parallel
  /// before.
  MergeResult run(const select::Solution& solution) const;

  /// Estimated net area saving of merging two fresh (fan-in 1) op multisets
  /// (shared operator area minus multiplexer / config-bit overhead).
  /// Exposed for tests; chained merges use the fan-in-aware
  /// merge::unitPairSaving.
  double pairSaving(const OpCounts& a, const OpCounts& b) const;

  MergeMode mode() const { return mode_; }

 private:
  const hls::TechLibrary& tech_;
  MergeMode mode_;
};

}  // namespace cayman::merge
