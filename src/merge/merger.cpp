#include "merge/merger.h"

#include <map>

#include "support/trace.h"

namespace cayman::merge {

double AcceleratorMerger::pairSaving(const OpCounts& a,
                                     const OpCounts& b) const {
  Unit unitA;
  unitA.ops = a;
  Unit unitB;
  unitB.ops = b;
  unitB.acceleratorIndex = 1;
  return unitPairSaving(tech_, unitA, unitB);
}

MergeResult AcceleratorMerger::run(const select::Solution& solution) const {
  MergeResult result;
  result.areaBeforeUm2 = solution.areaUm2;
  result.areaAfterUm2 = solution.areaUm2;
  // Merging is strictly cross-accelerator: a single-accelerator solution
  // has nobody to share with, so skip unit extraction entirely.
  if (solution.accelerators.size() < 2) return result;

  support::trace::Span span("merge.pairing", "merge");
  std::vector<Unit> units = extractUnits(solution);
  result.unitsExtracted = units.size();
  support::trace::count("merge.units", units.size());

  // The initial compatibility scan considers every cross-accelerator unit
  // pair in both engines; counting it here (instead of inside an engine)
  // keeps the exported metrics byte-identical across MergeMode and --jobs.
  for (size_t i = 0; i < units.size(); ++i) {
    for (size_t j = i + 1; j < units.size(); ++j) {
      if (units[i].acceleratorIndex != units[j].acceleratorIndex) {
        ++result.pairsEvaluated;
      }
    }
  }
  support::trace::count("merge.pairs_evaluated", result.pairsEvaluated);

  UnionFind groups(solution.accelerators.size());
  MatchStats stats;
  double totalSaving =
      mode_ == MergeMode::Graph
          ? matchUnitsGraph(units, tech_, groups, stats)
          : matchUnitsReference(units, tech_, groups, stats);
  result.mergeSteps = stats.steps;
  result.pairsScored = stats.pairsScored;
  support::trace::count("merge.steps",
                        static_cast<uint64_t>(stats.steps));
  result.areaAfterUm2 = solution.areaUm2 - totalSaving;

  // A merged group additionally pays for one global Ctrl unit (paper Fig. 5)
  // but drops the per-accelerator wrapper of all but one member.
  std::map<size_t, int> groupSizes;
  for (size_t a = 0; a < solution.accelerators.size(); ++a) {
    ++groupSizes[groups.find(a)];
  }
  int reusable = 0;
  int kernelsInReusable = 0;
  for (const auto& [root, size] : groupSizes) {
    (void)root;
    if (size >= 2) {
      ++reusable;
      kernelsInReusable += size;
      result.areaAfterUm2 += tech_.mergeCtrlArea;
      result.areaAfterUm2 -= tech_.acceleratorWrapperArea * (size - 1);
    }
  }
  support::trace::count("merge.groups", static_cast<uint64_t>(reusable));
  result.reusableAccelerators = reusable;
  result.avgKernelsPerReusable =
      reusable == 0 ? 0.0
                    : static_cast<double>(kernelsInReusable) / reusable;
  result.areaAfterUm2 = std::max(result.areaAfterUm2, 0.0);
  return result;
}

}  // namespace cayman::merge
