#include "merge/merger.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "support/trace.h"

namespace cayman::merge {

namespace {

using OpClass = std::pair<ir::Opcode, bool>;  // opcode, wide (>= 64 bit)
using OpCounts = std::map<OpClass, unsigned>;

/// A mergeable datapath unit: the operator multiset of one basic block
/// (times its unroll replication), tagged with its owning accelerator.
struct Unit {
  OpCounts ops;
  size_t acceleratorIndex = 0;
  bool alive = true;
};

const ir::Type* typeForArea(const ir::Instruction& inst) {
  // Stores are void-typed; their datapath width is the stored value's.
  if (inst.opcode() == ir::Opcode::Store) return inst.operand(0)->type();
  return inst.type();
}

unsigned unrollOf(const accel::AcceleratorConfig& config,
                  const ir::BasicBlock* block,
                  const analysis::Region* region) {
  (void)region;
  // The block replicates per the unroll factor of its innermost configured
  // loop (conservatively 1 when it is not inside a configured loop).
  for (const accel::LoopConfig& lc : config.loops) {
    if (lc.loop != nullptr && lc.loop->contains(block)) {
      return std::max(1u, lc.unroll);
    }
  }
  return 1;
}

std::vector<Unit> extractUnits(const select::Solution& solution) {
  std::vector<Unit> units;
  for (size_t a = 0; a < solution.accelerators.size(); ++a) {
    const accel::AcceleratorConfig& config = solution.accelerators[a];
    for (const ir::BasicBlock* block : config.region->blocks()) {
      Unit unit;
      unit.acceleratorIndex = a;
      unsigned unroll = unrollOf(config, block, config.region);
      for (const auto& inst : block->instructions()) {
        if (inst->opcode() == ir::Opcode::Phi || inst->isTerminator()) {
          continue;
        }
        const ir::Type* type = typeForArea(*inst);
        unit.ops[{inst->opcode(), type->bitWidth() >= 64}] += unroll;
      }
      if (!unit.ops.empty()) units.push_back(std::move(unit));
    }
  }
  return units;
}

unsigned operandCount(ir::Opcode op) {
  switch (op) {
    case ir::Opcode::FNeg: case ir::Opcode::FSqrt: case ir::Opcode::FAbs:
    case ir::Opcode::ZExt: case ir::Opcode::SExt: case ir::Opcode::Trunc:
    case ir::Opcode::SIToFP: case ir::Opcode::FPToSI: case ir::Opcode::Load:
      return 1;
    case ir::Opcode::Select:
      return 3;
    default:
      return 2;
  }
}

}  // namespace

double AcceleratorMerger::pairSaving(const OpCounts& a,
                                     const OpCounts& b) const {
  double saving = 0.0;
  for (const auto& [opClass, countA] : a) {
    auto it = b.find(opClass);
    if (it == b.end()) continue;
    unsigned shared = std::min(countA, it->second);
    const ir::Type* type =
        opClass.second ? ir::Type::i64() : ir::Type::i32();
    double opArea = tech_.opInfo(opClass.first, type).areaUm2;
    unsigned bits = opClass.second ? 64 : 32;
    // Each shared operator needs a 2:1 mux per operand input plus
    // reconfiguration bits selecting the active kernel.
    double muxCost = operandCount(opClass.first) *
                         (2.0 * bits * tech_.muxAreaPerInputBit) +
                     2.0 * tech_.configBitArea;
    // Not-worth-sharing op classes contribute nothing: a merger would keep
    // separate instances rather than pay more mux area than the operator is
    // worth, so a cheap-op-dominated pair must never drag the total saving
    // below what its expensive ops alone justify.
    saving += shared * std::max(0.0, opArea - muxCost);
  }
  return saving;
}

MergeResult AcceleratorMerger::run(const select::Solution& solution) const {
  MergeResult result;
  result.areaBeforeUm2 = solution.areaUm2;
  result.areaAfterUm2 = solution.areaUm2;
  if (solution.accelerators.size() < 1) return result;

  support::trace::Span span("merge.pairing", "merge");
  std::vector<Unit> units = extractUnits(solution);
  support::trace::count("merge.units", units.size());
  uint64_t pairsEvaluated = 0;

  // Union-find over accelerators to track reusable groups.
  std::vector<size_t> parent(solution.accelerators.size());
  std::iota(parent.begin(), parent.end(), size_t{0});
  std::function<size_t(size_t)> find = [&](size_t x) {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };

  double totalSaving = 0.0;
  while (true) {
    double bestSaving = 0.0;
    size_t bestI = 0, bestJ = 0;
    for (size_t i = 0; i < units.size(); ++i) {
      if (!units[i].alive) continue;
      for (size_t j = i + 1; j < units.size(); ++j) {
        if (!units[j].alive) continue;
        // Merging shares datapaths across accelerators (paper §III-E);
        // two units of the same accelerator are one datapath already and
        // pairing them would book intra-accelerator sharing as reuse.
        if (units[i].acceleratorIndex == units[j].acceleratorIndex) continue;
        ++pairsEvaluated;
        double saving = pairSaving(units[i].ops, units[j].ops);
        if (saving > bestSaving) {
          bestSaving = saving;
          bestI = i;
          bestJ = j;
        }
      }
    }
    if (bestSaving <= 0.0) break;
    support::trace::count("merge.steps", 1);

    // Merge j into i: the reconfigurable unit carries the op maximum.
    Unit& into = units[bestI];
    Unit& from = units[bestJ];
    for (const auto& [opClass, count] : from.ops) {
      into.ops[opClass] = std::max(into.ops[opClass], count);
    }
    from.alive = false;
    parent[find(from.acceleratorIndex)] = find(into.acceleratorIndex);
    totalSaving += bestSaving;
    ++result.mergeSteps;
  }

  support::trace::count("merge.pairs_evaluated", pairsEvaluated);
  result.areaAfterUm2 = solution.areaUm2 - totalSaving;

  // A merged group additionally pays for one global Ctrl unit (paper Fig. 5)
  // but drops the per-accelerator wrapper of all but one member.
  std::map<size_t, int> groupSizes;
  for (size_t a = 0; a < solution.accelerators.size(); ++a) {
    ++groupSizes[find(a)];
  }
  int reusable = 0;
  int kernelsInReusable = 0;
  for (const auto& [root, size] : groupSizes) {
    (void)root;
    if (size >= 2) {
      ++reusable;
      kernelsInReusable += size;
      result.areaAfterUm2 += tech_.mergeCtrlArea;
      result.areaAfterUm2 -= tech_.acceleratorWrapperArea * (size - 1);
    }
  }
  result.reusableAccelerators = reusable;
  result.avgKernelsPerReusable =
      reusable == 0 ? 0.0
                    : static_cast<double>(kernelsInReusable) / reusable;
  result.areaAfterUm2 = std::max(result.areaAfterUm2, 0.0);
  return result;
}

}  // namespace cayman::merge
