#include "merge/graph.h"

#include <algorithm>
#include <numeric>
#include <queue>

namespace cayman::merge {

namespace {

const ir::Type* typeForArea(const ir::Instruction& inst) {
  // Stores are void-typed; their datapath width is the stored value's.
  if (inst.opcode() == ir::Opcode::Store) return inst.operand(0)->type();
  return inst.type();
}

unsigned unrollOf(const accel::AcceleratorConfig& config,
                  const ir::BasicBlock* block) {
  // The block replicates per the unroll factor of its innermost configured
  // loop (conservatively 1 when it is not inside a configured loop).
  for (const accel::LoopConfig& lc : config.loops) {
    if (lc.loop != nullptr && lc.loop->contains(block)) {
      return std::max(1u, lc.unroll);
    }
  }
  return 1;
}

}  // namespace

std::vector<Unit> extractUnits(const select::Solution& solution) {
  std::vector<Unit> units;
  for (size_t a = 0; a < solution.accelerators.size(); ++a) {
    const accel::AcceleratorConfig& config = solution.accelerators[a];
    for (const ir::BasicBlock* block : config.region->blocks()) {
      Unit unit;
      unit.acceleratorIndex = a;
      unsigned unroll = unrollOf(config, block);
      for (const auto& inst : block->instructions()) {
        if (inst->opcode() == ir::Opcode::Phi || inst->isTerminator()) {
          continue;
        }
        const ir::Type* type = typeForArea(*inst);
        unit.ops[{inst->opcode(), type->bitWidth() >= 64}] += unroll;
      }
      if (!unit.ops.empty()) units.push_back(std::move(unit));
    }
  }
  return units;
}

unsigned operandCount(ir::Opcode op) {
  switch (op) {
    case ir::Opcode::FNeg: case ir::Opcode::FSqrt: case ir::Opcode::FAbs:
    case ir::Opcode::ZExt: case ir::Opcode::SExt: case ir::Opcode::Trunc:
    case ir::Opcode::SIToFP: case ir::Opcode::FPToSI: case ir::Opcode::Load:
      return 1;
    case ir::Opcode::Select:
      return 3;
    default:
      return 2;
  }
}

unsigned selectBits(unsigned k) {
  unsigned bits = 0;
  while ((1u << bits) < k) ++bits;
  return bits;
}

double muxInputBits(unsigned fanIn) {
  if (fanIn < 2) return 0.0;
  return static_cast<double>(fanIn) * selectBits(fanIn);
}

double configBits(unsigned fanIn) {
  if (fanIn < 2) return 0.0;
  return 2.0 * selectBits(fanIn);
}

double unitPairSaving(const hls::TechLibrary& tech, const Unit& a,
                      const Unit& b) {
  unsigned combined = a.fanIn + b.fanIn;
  // Incremental select-network growth: what the merged unit needs minus what
  // both halves already paid for in their own earlier merges.
  double muxDeltaBits =
      muxInputBits(combined) - muxInputBits(a.fanIn) - muxInputBits(b.fanIn);
  double configDeltaBits =
      configBits(combined) - configBits(a.fanIn) - configBits(b.fanIn);
  double saving = 0.0;
  for (const auto& [opClass, countA] : a.ops) {
    auto it = b.ops.find(opClass);
    if (it == b.ops.end()) continue;
    unsigned shared = std::min(countA, it->second);
    const ir::Type* type = opClass.second ? ir::Type::i64() : ir::Type::i32();
    double opArea = tech.opInfo(opClass.first, type).areaUm2;
    unsigned bits = opClass.second ? 64 : 32;
    double muxCost =
        operandCount(opClass.first) * muxDeltaBits * bits *
            tech.muxAreaPerInputBit +
        configDeltaBits * tech.configBitArea;
    // Not-worth-sharing op classes contribute nothing: a merger would keep
    // separate instances rather than pay more mux area than the operator is
    // worth, so a cheap-op-dominated pair must never drag the total saving
    // below what its expensive ops alone justify.
    saving += shared * std::max(0.0, opArea - muxCost);
  }
  return saving;
}

void absorbUnit(Unit& into, Unit& from) {
  for (const auto& [opClass, count] : from.ops) {
    into.ops[opClass] = std::max(into.ops[opClass], count);
  }
  into.fanIn += from.fanIn;
  from.alive = false;
}

UnionFind::UnionFind(size_t n) : parent_(n) {
  std::iota(parent_.begin(), parent_.end(), size_t{0});
}

size_t UnionFind::find(size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving, no recursion
    x = parent_[x];
  }
  return x;
}

void UnionFind::unite(size_t from, size_t into) {
  parent_[find(from)] = find(into);
}

namespace {

/// One scored compatibility edge. Stamps snapshot the endpoints' merge
/// generation at scoring time: a popped edge whose stamp trails the current
/// one is stale (the unit's ops/fan-in changed and a freshly-scored entry
/// for the pair is already in the heap), so it is discarded.
struct Edge {
  double saving = 0.0;
  uint32_t i = 0, j = 0;  // unit indices, i < j
  uint32_t stampI = 0, stampJ = 0;
};

/// Max-heap order mirroring the reference scan's pick: highest saving first,
/// ties broken by the lexicographically smallest (i, j) — exactly the pair a
/// strict `saving > best` row-major sweep settles on.
struct EdgeOrder {
  bool operator()(const Edge& a, const Edge& b) const {
    if (a.saving != b.saving) return a.saving < b.saving;
    if (a.i != b.i) return a.i > b.i;
    return a.j > b.j;
  }
};

}  // namespace

double matchUnitsGraph(std::vector<Unit>& units, const hls::TechLibrary& tech,
                       UnionFind& groups, MatchStats& stats) {
  std::priority_queue<Edge, std::vector<Edge>, EdgeOrder> heap;
  std::vector<uint32_t> stamp(units.size(), 0);

  // Initial compatibility scan: score every cross-accelerator pair once.
  // Non-positive edges never enter the heap (and can only become positive
  // through a merge, which rescores the surviving endpoint's edges anyway).
  for (uint32_t i = 0; i < units.size(); ++i) {
    for (uint32_t j = i + 1; j < units.size(); ++j) {
      if (units[i].acceleratorIndex == units[j].acceleratorIndex) continue;
      ++stats.pairsScored;
      double saving = unitPairSaving(tech, units[i], units[j]);
      if (saving > 0.0) heap.push(Edge{saving, i, j, 0, 0});
    }
  }

  double total = 0.0;
  while (!heap.empty()) {
    Edge edge = heap.top();
    heap.pop();
    Unit& into = units[edge.i];
    Unit& from = units[edge.j];
    if (!into.alive || !from.alive) continue;
    if (edge.stampI != stamp[edge.i] || edge.stampJ != stamp[edge.j]) {
      continue;  // stale weight; the rescored entry is still queued
    }
    if (groups.find(into.acceleratorIndex) ==
        groups.find(from.acceleratorIndex)) {
      continue;  // intra-group sharing is not fresh saving
    }

    absorbUnit(into, from);
    groups.unite(from.acceleratorIndex, into.acceleratorIndex);
    total += edge.saving;
    ++stats.steps;
    ++stamp[edge.i];

    // Only the surviving unit's edges changed weight: rescore them eagerly
    // so the heap always holds a current entry for every live cross-group
    // pair. Everything else keeps its exact cached weight.
    size_t root = groups.find(into.acceleratorIndex);
    for (uint32_t k = 0; k < units.size(); ++k) {
      if (k == edge.i || !units[k].alive) continue;
      if (groups.find(units[k].acceleratorIndex) == root) continue;
      ++stats.pairsScored;
      uint32_t lo = std::min(k, edge.i);
      uint32_t hi = std::max(k, edge.i);
      double saving = unitPairSaving(tech, units[lo], units[hi]);
      if (saving > 0.0) {
        heap.push(Edge{saving, lo, hi, stamp[lo], stamp[hi]});
      }
    }
  }
  return total;
}

double matchUnitsReference(std::vector<Unit>& units,
                           const hls::TechLibrary& tech, UnionFind& groups,
                           MatchStats& stats) {
  double total = 0.0;
  while (true) {
    double bestSaving = 0.0;
    size_t bestI = 0, bestJ = 0;
    for (size_t i = 0; i < units.size(); ++i) {
      if (!units[i].alive) continue;
      for (size_t j = i + 1; j < units.size(); ++j) {
        if (!units[j].alive) continue;
        // Merging shares datapaths across accelerator *groups* (paper
        // §III-E): once A merged into B, surviving units of A and B are one
        // reconfigurable datapath already, and pairing them would book
        // intra-group sharing as fresh cross-kernel saving (the seed
        // compared raw accelerator indices and did exactly that).
        if (groups.find(units[i].acceleratorIndex) ==
            groups.find(units[j].acceleratorIndex)) {
          continue;
        }
        ++stats.pairsScored;
        double saving = unitPairSaving(tech, units[i], units[j]);
        if (saving > bestSaving) {
          bestSaving = saving;
          bestI = i;
          bestJ = j;
        }
      }
    }
    if (bestSaving <= 0.0) break;
    absorbUnit(units[bestI], units[bestJ]);
    groups.unite(units[bestJ].acceleratorIndex,
                 units[bestI].acceleratorIndex);
    total += bestSaving;
    ++stats.steps;
  }
  return total;
}

}  // namespace cayman::merge
