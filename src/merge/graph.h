// Op-class compatibility graph for accelerator merging (paper §III-E):
// datapath units are nodes carrying per-unit fan-in state, edges carry the
// fan-in-aware net area saving of multiplexing two units onto one datapath,
// and merging is greedy maximum-weight matching over union-find *groups* —
// clustering rounds that contract the best positive edge until none remains.
//
// Two engines share this unit model (merger.h dispatches on MergeMode):
//   - matchUnitsGraph: a lazy-deletion max-heap over scored edges. Only the
//     edges incident to a surviving merged unit are rescored; everything
//     else keeps its exact cached weight. O(U^2) initial scoring plus
//     O(U log U) per merge step instead of O(U^2) per step.
//   - matchUnitsReference: the seed-era greedy (bug-fixed), rescoring every
//     cross-group pair each round. Retained as the differential oracle, the
//     same role SelectMode::Reference plays for the selector DP.
// Both contract edges in the identical order (saving desc, then lowest unit
// index pair), so their MergeResults are value-identical by construction.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "hls/tech_library.h"
#include "select/solution.h"

namespace cayman::merge {

/// Operator class shared between datapaths: opcode plus wide (>= 64 bit).
using OpClass = std::pair<ir::Opcode, bool>;
using OpCounts = std::map<OpClass, unsigned>;

/// A mergeable datapath unit: the operator multiset of one basic block
/// (times its unroll replication), tagged with its owning accelerator and
/// the number of kernels already multiplexed onto it.
struct Unit {
  OpCounts ops;
  size_t acceleratorIndex = 0;
  /// Kernels this datapath serves. The k-th absorbed kernel widens every
  /// shared operator's operand muxes from k:1 to (k+1):1 — chained merges
  /// pay incrementally more, never a flat 2:1 (the seed-era accounting bug).
  unsigned fanIn = 1;
  bool alive = true;
};

/// Extracts the datapath units of a solution's accelerators: one unit per
/// basic block with at least one non-phi, non-terminator operation, operator
/// counts replicated by the block's configured unroll factor.
std::vector<Unit> extractUnits(const select::Solution& solution);

/// Datapath operand count of an opcode (mux-guarded inputs per operator).
unsigned operandCount(ir::Opcode op);

/// ceil(log2(k)) for k >= 1 (select-line width of a k-way choice).
unsigned selectBits(unsigned k);

/// Input bits of the operand-select network of one shared operator serving
/// `fanIn` kernels: k input words gated by a decoded select term whose cost
/// grows with the select width, i.e. k * ceil(log2 k) gated bits per operand
/// bit — so the k-th merge costs more than the first, not a flat 2:1 slice.
/// 0 for an unshared operator (no mux at all).
double muxInputBits(unsigned fanIn);

/// Reconfiguration-register bits per shared operator of a `fanIn`-kernel
/// unit: two bits per select line (select + enable), 0 when unshared.
double configBits(unsigned fanIn);

/// Fan-in-aware net area saving of merging units `a` and `b`: per shared
/// operator class, the eliminated duplicate operator area minus the
/// *incremental* mux-input and config-bit area of widening the combined
/// unit's select network from (fanIn_a, fanIn_b) to fanIn_a + fanIn_b.
/// Not-worth-sharing classes clamp at zero (kept as separate instances).
/// Symmetric in a and b.
double unitPairSaving(const hls::TechLibrary& tech, const Unit& a,
                      const Unit& b);

/// Folds `from` into `into`: the reconfigurable unit carries the op-class
/// maximum, accumulates fan-in, and `from` dies.
void absorbUnit(Unit& into, Unit& from);

/// Union-find over accelerator indices with *iterative path-halving* find —
/// no recursion, so population-scale merge chains cannot overflow the stack
/// (the seed used a recursive std::function).
class UnionFind {
 public:
  explicit UnionFind(size_t n);
  size_t find(size_t x);
  /// Attaches `from`'s root under `into`'s root.
  void unite(size_t from, size_t into);
  size_t size() const { return parent_.size(); }

 private:
  std::vector<size_t> parent_;
};

/// Per-engine matching statistics. `pairsScored` measures engine *work*
/// (pairSaving evaluations actually performed) and is mode-DEPENDENT — it
/// feeds benches only, never trace counters, which must stay byte-identical
/// across merge modes.
struct MatchStats {
  int steps = 0;
  uint64_t pairsScored = 0;
};

/// Greedy maximum-weight matching over union-find groups via a lazy-deletion
/// edge heap. Mutates `units` (absorbed units die) and `groups`; returns the
/// total net area saving.
double matchUnitsGraph(std::vector<Unit>& units, const hls::TechLibrary& tech,
                       UnionFind& groups, MatchStats& stats);

/// The bug-fixed seed-era greedy: full cross-group rescoring rounds picking
/// the single best positive pair. Value-identical to matchUnitsGraph.
double matchUnitsReference(std::vector<Unit>& units,
                           const hls::TechLibrary& tech, UnionFind& groups,
                           MatchStats& stats);

}  // namespace cayman::merge
