// RTL backend: lowers a scheduled accelerator configuration to a
// synthesizable Verilog module — an FSM per control step plus a datapath
// with one operator instance per IR operation, and interface ports per the
// configured access interfaces (paper §III-F synthesizes selected kernels
// into complete hardware; this emitter is that last-mile step on our
// substrate).
#pragma once

#include <string>

#include "accel/config.h"
#include "hls/scheduler.h"

namespace cayman::accel {

struct RtlOptions {
  /// Module name; defaults to a sanitized region label.
  std::string moduleName;
  /// Emit per-state commentary (useful when eyeballing the FSM).
  bool comments = true;
};

/// Emits Verilog for one accelerator. The generated module has:
///   - clk / rst_n / start / done control handshake,
///   - one coupled memory port (req/addr/wdata/rdata/ack) when any access
///     is coupled,
///   - stream in/out ports per decoupled access (FIFO handshakes),
///   - scratchpad ports per scratchpad-backed array (bank address/data),
///   - an FSM sequencing the scheduled basic blocks,
///   - registered results for every multi-cycle operation.
std::string emitAcceleratorRtl(const AcceleratorConfig& config,
                               const hls::Scheduler& scheduler,
                               RtlOptions options = {});

/// Sanitizes an arbitrary label into a Verilog identifier.
std::string sanitizeIdentifier(const std::string& label);

}  // namespace cayman::accel
