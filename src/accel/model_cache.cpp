#include "accel/model_cache.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "accel/model.h"
#include "ir/module.h"
#include "ir/printer.h"
#include "support/trace.h"

namespace cayman::accel {

namespace {

using support::Diagnostic;
using support::Expected;
using support::Stage;
using support::blobio::ByteReader;
using support::blobio::ByteWriter;
using support::blobio::fnv1a64;

constexpr uint8_t kTagMeta = 0;
constexpr uint8_t kTagRegion = 1;
/// Unroll widths / partition counts above this are corruption.
constexpr uint32_t kMaxWidth = 1u << 20;
constexpr size_t kMaxDiagnostics = 16;

Diagnostic cacheError(const std::string& unit, std::string message) {
  return Diagnostic{Stage::Cache, unit, std::move(message)};
}

void encodeIface(ByteWriter& w, const RawIface& iface) {
  w.u8(iface.kind);
  w.u32(iface.partitions);
  w.u8(iface.hasArray ? 1 : 0);
  if (iface.hasArray) w.str(iface.arrayName);
  w.u64(iface.footprintBytes);
  w.u8(iface.promoted ? 1 : 0);
}

bool decodeBool(ByteReader& r, bool& out) {
  uint8_t byte = 0;
  if (!r.u8(byte) || byte > 1) return false;  // >1 breaks re-encode fixpoint
  out = byte == 1;
  return true;
}

bool decodeIface(ByteReader& r, const ModelCacheLimits& limits,
                 RawIface& iface) {
  if (!r.u8(iface.kind) || iface.kind > 2) return false;
  if (!r.u32(iface.partitions) || iface.partitions < 1 ||
      iface.partitions > kMaxWidth) {
    return false;
  }
  if (!decodeBool(r, iface.hasArray)) return false;
  if (iface.hasArray && !r.str(iface.arrayName, limits.maxStringBytes)) {
    return false;
  }
  if (!r.u64(iface.footprintBytes)) return false;
  return decodeBool(r, iface.promoted);
}

RawIface rawFromIface(const hls::AccessIface& iface) {
  RawIface raw;
  raw.kind = static_cast<uint8_t>(iface.kind);
  raw.partitions = iface.partitions;
  raw.hasArray = iface.array != nullptr;
  if (raw.hasArray) raw.arrayName = iface.array->name();
  raw.footprintBytes = iface.footprintBytes;
  raw.promoted = iface.promoted;
  return raw;
}

uint64_t doubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Index of `inst` inside its block, or nullopt when absent.
std::optional<uint32_t> instIndexIn(const ir::BasicBlock* block,
                                    const ir::Instruction* inst) {
  const auto& insts = block->instructions();
  for (uint32_t i = 0; i < insts.size(); ++i) {
    if (insts[i].get() == inst) return i;
  }
  return std::nullopt;
}

}  // namespace

// --- Raw encode -------------------------------------------------------------

std::string encodeMeta(const RawMeta& meta) {
  ByteWriter w;
  w.u8(kTagMeta);
  w.u32(meta.schema);
  w.u64(meta.irHash);
  w.u64(meta.fingerprint);
  w.str(meta.moduleName);
  return w.take();
}

std::string encodeRegionRecord(const RawRegionRecord& record) {
  ByteWriter w;
  w.u8(kTagRegion);
  w.u32(record.regionId);
  w.str(record.label);
  w.u64(record.estimateCalls);
  w.u64(record.schedBlockCalls);
  w.u32(static_cast<uint32_t>(record.configs.size()));
  for (const RawConfig& config : record.configs) {
    w.u32(static_cast<uint32_t>(config.loops.size()));
    for (const RawLoopConfig& loop : config.loops) {
      w.u32(loop.loopRegionId);
      w.u32(loop.unroll);
      w.u8(loop.pipelined ? 1 : 0);
    }
    w.u32(static_cast<uint32_t>(config.ifaces.size()));
    for (const RawIfaceEntry& entry : config.ifaces) {
      w.u32(entry.blockIdx);
      w.u32(entry.instIdx);
      encodeIface(w, entry.iface);
    }
    w.u64(config.cyclesBits);
    w.u64(config.cpuCyclesBits);
    w.u64(config.areaBits);
    w.u32(config.numSeqBlocks);
    w.u32(config.numPipelinedRegions);
    w.u32(config.numCoupled);
    w.u32(config.numDecoupled);
    w.u32(config.numScratchpad);
  }
  w.u32(static_cast<uint32_t>(record.schedInserts.size()));
  for (const RawSchedInsert& sched : record.schedInserts) {
    w.u32(sched.funcIdx);
    w.u32(sched.blockIdx);
    w.u32(sched.width);
    w.u32(static_cast<uint32_t>(sched.signature.size()));
    for (const RawIface& iface : sched.signature) encodeIface(w, iface);
    w.u32(sched.latency);
    w.u64(sched.opAreaBits);
    w.u64(sched.regAreaBits);
    w.u32(sched.numOps);
    w.u32(static_cast<uint32_t>(sched.starts.size()));
    for (const RawSchedStart& start : sched.starts) {
      w.u32(start.instIdx);
      w.u32(start.cycle);
    }
  }
  return w.take();
}

// --- Raw decode -------------------------------------------------------------

Expected<RawMeta> decodeMeta(std::string_view payload,
                             const ModelCacheLimits& limits,
                             const std::string& unit) {
  ByteReader r(payload);
  RawMeta meta;
  uint8_t tag = 0;
  if (!r.u8(tag) || tag != kTagMeta) {
    return cacheError(unit, "first record is not a meta record");
  }
  if (!r.u32(meta.schema) || !r.u64(meta.irHash) || !r.u64(meta.fingerprint) ||
      !r.str(meta.moduleName, limits.maxStringBytes) || !r.done()) {
    return cacheError(unit, "malformed meta record");
  }
  return meta;
}

Expected<RawRegionRecord> decodeRegionRecord(std::string_view payload,
                                             const ModelCacheLimits& limits,
                                             const std::string& unit) {
  ByteReader r(payload);
  RawRegionRecord record;
  auto bad = [&](const char* what) {
    return cacheError(unit, std::string("malformed region record: ") + what);
  };
  uint8_t tag = 0;
  if (!r.u8(tag) || tag != kTagRegion) return bad("bad tag");
  if (!r.u32(record.regionId) || !r.str(record.label, limits.maxStringBytes)) {
    return bad("id/label");
  }
  if (!r.u64(record.estimateCalls) ||
      record.estimateCalls > limits.maxCounterDelta) {
    return bad("estimate-call delta");
  }
  if (!r.u64(record.schedBlockCalls) ||
      record.schedBlockCalls > limits.maxCounterDelta) {
    return bad("schedule-call delta");
  }

  uint32_t numConfigs = 0;
  if (!r.u32(numConfigs) || numConfigs < 1 ||
      numConfigs > limits.maxConfigsPerRegion) {
    return bad("config count");
  }
  record.configs.resize(numConfigs);
  for (RawConfig& config : record.configs) {
    uint32_t numLoops = 0;
    if (!r.u32(numLoops) || numLoops > limits.maxLoopsPerConfig) {
      return bad("loop count");
    }
    config.loops.resize(numLoops);
    for (RawLoopConfig& loop : config.loops) {
      if (!r.u32(loop.loopRegionId) || !r.u32(loop.unroll) ||
          loop.unroll < 1 || loop.unroll > kMaxWidth ||
          !decodeBool(r, loop.pipelined)) {
        return bad("loop config");
      }
    }
    uint32_t numIfaces = 0;
    if (!r.u32(numIfaces) || numIfaces > limits.maxIfacesPerConfig) {
      return bad("interface count");
    }
    config.ifaces.resize(numIfaces);
    for (RawIfaceEntry& entry : config.ifaces) {
      if (!r.u32(entry.blockIdx) || !r.u32(entry.instIdx) ||
          !decodeIface(r, limits, entry.iface)) {
        return bad("interface entry");
      }
    }
    if (!r.u64(config.cyclesBits) || !r.u64(config.cpuCyclesBits) ||
        !r.u64(config.areaBits) || !r.u32(config.numSeqBlocks) ||
        !r.u32(config.numPipelinedRegions) || !r.u32(config.numCoupled) ||
        !r.u32(config.numDecoupled) || !r.u32(config.numScratchpad)) {
      return bad("config estimates");
    }
  }

  uint32_t numSched = 0;
  if (!r.u32(numSched) || numSched > limits.maxSchedEntries) {
    return bad("schedule count");
  }
  record.schedInserts.resize(numSched);
  for (RawSchedInsert& sched : record.schedInserts) {
    if (!r.u32(sched.funcIdx) || !r.u32(sched.blockIdx) ||
        !r.u32(sched.width) || sched.width < 1 || sched.width > kMaxWidth) {
      return bad("schedule key");
    }
    uint32_t numSig = 0;
    if (!r.u32(numSig) || numSig > limits.maxIfacesPerConfig) {
      return bad("signature count");
    }
    sched.signature.resize(numSig);
    for (RawIface& iface : sched.signature) {
      if (!decodeIface(r, limits, iface)) return bad("signature entry");
    }
    if (!r.u32(sched.latency) || !r.u64(sched.opAreaBits) ||
        !r.u64(sched.regAreaBits) || !r.u32(sched.numOps)) {
      return bad("schedule result");
    }
    uint32_t numStarts = 0;
    if (!r.u32(numStarts) || numStarts > limits.maxSchedStarts) {
      return bad("start count");
    }
    sched.starts.resize(numStarts);
    for (RawSchedStart& start : sched.starts) {
      if (!r.u32(start.instIdx) || !r.u32(start.cycle)) return bad("start");
    }
  }
  if (!r.done()) return bad("trailing bytes");
  return record;
}

Expected<SnapshotSummary> summarizeSnapshot(std::string_view bytes,
                                            const ModelCacheLimits& limits,
                                            const std::string& unit) {
  Expected<support::blobio::ParsedStream> parsed =
      support::blobio::parseStream(bytes, limits.stream, unit);
  if (!parsed.ok()) return parsed.diagnostic();
  const support::blobio::ParsedStream& stream = parsed.value();

  SnapshotSummary summary;
  summary.streamVersion = stream.version;
  summary.truncated = stream.truncated;
  summary.rejectedRecords = stream.rejectedRecords;
  if (stream.records.empty()) {
    return cacheError(unit, "snapshot has no meta record");
  }
  Expected<RawMeta> meta = decodeMeta(stream.records.front(), limits, unit);
  if (!meta.ok()) return meta.diagnostic();
  summary.meta = meta.takeValue();
  if (summary.meta.schema != kModelCacheSchema) {
    return cacheError(unit, "snapshot schema version " +
                                std::to_string(summary.meta.schema) +
                                " (expected " +
                                std::to_string(kModelCacheSchema) + ")");
  }

  std::vector<uint32_t> seen;
  for (size_t i = 1; i < stream.records.size(); ++i) {
    Expected<RawRegionRecord> record =
        decodeRegionRecord(stream.records[i], limits, unit);
    if (!record.ok()) {
      ++summary.rejectedRecords;
      if (!summary.firstReject.has_value()) {
        summary.firstReject = record.diagnostic();
      }
      continue;
    }
    const RawRegionRecord& raw = record.value();
    if (std::find(seen.begin(), seen.end(), raw.regionId) != seen.end()) {
      ++summary.rejectedRecords;
      if (!summary.firstReject.has_value()) {
        summary.firstReject = cacheError(
            unit, "duplicate region record id " + std::to_string(raw.regionId));
      }
      continue;
    }
    seen.push_back(raw.regionId);
    ++summary.regionRecords;
    summary.configs += raw.configs.size();
    summary.schedInserts += raw.schedInserts.size();
  }
  return summary;
}

// --- Hashing ----------------------------------------------------------------

uint64_t ModelCache::irContentHash(const ir::Module& module) {
  return fnv1a64(ir::printModule(module));
}

uint64_t ModelCache::modelFingerprint(const ModelParams& params,
                                      const hls::TechLibrary& tech,
                                      const hls::InterfaceTiming& timing) {
  // Every parameter the generation result depends on goes through the
  // writer; the IR hash covers everything the program contributes (profile,
  // wPST shape, region numbering).
  ByteWriter w;
  w.u32(kModelCacheSchema);
  w.f64bits(params.clockNs);
  w.f64bits(params.beta);
  w.u32(static_cast<uint32_t>(params.unrollFactors.size()));
  for (unsigned factor : params.unrollFactors) w.u32(factor);
  w.u64(params.maxScratchpadBytes);
  w.u8(params.allowDecoupled ? 1 : 0);
  w.u8(params.allowScratchpad ? 1 : 0);
  w.u8(params.allowPipelining ? 1 : 0);
  w.u8(params.allowUnrolling ? 1 : 0);
  w.u64(params.unknownTripFallback);
  w.u8(params.generateMode == GenerateMode::Reference ? 1 : 0);
  for (double field :
       {tech.registerAreaPerBit, tech.muxAreaPerInputBit, tech.fsmAreaPerState,
        tech.acceleratorWrapperArea, tech.mergeCtrlArea, tech.configBitArea,
        tech.lsuArea, tech.aguArea, tech.fifoAreaPerByte,
        tech.scratchpadAreaPerByte, tech.scratchpadPortArea,
        tech.dmaEngineArea, tech.cva6TileAreaUm2}) {
    w.f64bits(field);
  }
  for (unsigned field :
       {timing.coupledLoadLatency, timing.coupledLoadOccupancy,
        timing.coupledStoreLatency, timing.coupledStoreOccupancy,
        timing.decoupledLatency, timing.scratchpadLatency,
        timing.dmaBytesPerCycle, timing.fifoDepthElems}) {
    w.u32(field);
  }
  return fnv1a64(w.bytes());
}

std::string ModelCache::snapshotFileName(uint64_t irHash,
                                         uint64_t fingerprint) {
  char name[64];
  std::snprintf(name, sizeof(name), "model-%016llx-%016llx.cayc",
                static_cast<unsigned long long>(irHash),
                static_cast<unsigned long long>(fingerprint));
  return name;
}

// --- ModelCache -------------------------------------------------------------

ModelCache::ModelCache(const std::string& dir, const analysis::WPst& wpst,
                       uint64_t irHash, uint64_t fingerprint,
                       ModelCacheLimits limits)
    : path_(dir + "/" + snapshotFileName(irHash, fingerprint)),
      wpst_(wpst),
      irHash_(irHash),
      fingerprint_(fingerprint),
      limits_(limits) {}

void ModelCache::noteDiagnostic(Diagnostic diagnostic) {
  if (diagnostics_.size() < kMaxDiagnostics) {
    diagnostics_.push_back(std::move(diagnostic));
  }
}

Expected<CachedRegion> ModelCache::resolve(const RawRegionRecord& raw) const {
  auto bad = [&](std::string what) {
    return cacheError(path_, "region record " + std::to_string(raw.regionId) +
                                 ": " + std::move(what));
  };
  const auto& regions = wpst_.allRegions();
  if (raw.regionId >= regions.size()) return bad("region id out of range");
  const analysis::Region* region = wpst_.regionById(raw.regionId);
  if (region->label() != raw.label) {
    return bad("label mismatch ('" + raw.label + "' vs '" + region->label() +
               "')");
  }
  const ir::Module& module = wpst_.module();

  auto resolveIface = [&](const RawIface& rawIface,
                          hls::AccessIface& out) -> bool {
    out.kind = static_cast<hls::IfaceKind>(rawIface.kind);
    out.partitions = rawIface.partitions;
    out.array = nullptr;
    if (rawIface.hasArray) {
      out.array = module.globalByName(rawIface.arrayName);
      if (out.array == nullptr) return false;
    }
    out.footprintBytes = rawIface.footprintBytes;
    out.promoted = rawIface.promoted;
    return true;
  };

  CachedRegion entry;
  entry.region = region;
  entry.estimateCalls = raw.estimateCalls;
  entry.schedBlockCalls = raw.schedBlockCalls;

  for (const RawConfig& rawConfig : raw.configs) {
    AcceleratorConfig config;
    config.region = region;
    for (const RawLoopConfig& rawLoop : rawConfig.loops) {
      if (rawLoop.loopRegionId >= regions.size()) {
        return bad("loop region id out of range");
      }
      const analysis::Region* loopRegion =
          wpst_.regionById(rawLoop.loopRegionId);
      if (loopRegion->kind() != analysis::RegionKind::Loop) {
        return bad("loop id names a non-loop region");
      }
      LoopConfig lc;
      lc.loop = loopRegion->loop();
      lc.unroll = rawLoop.unroll;
      lc.pipelined = rawLoop.pipelined;
      config.loops.push_back(lc);
    }
    for (const RawIfaceEntry& rawEntry : rawConfig.ifaces) {
      if (rawEntry.blockIdx >= region->blocks().size()) {
        return bad("interface block index out of range");
      }
      const ir::BasicBlock* block = region->blocks()[rawEntry.blockIdx];
      if (rawEntry.instIdx >= block->instructions().size()) {
        return bad("interface instruction index out of range");
      }
      const ir::Instruction* inst =
          block->instructions()[rawEntry.instIdx].get();
      if (!inst->isMemoryAccess()) {
        return bad("interface names a non-memory instruction");
      }
      hls::AccessIface iface;
      if (!resolveIface(rawEntry.iface, iface)) {
        return bad("unknown array '" + rawEntry.iface.arrayName + "'");
      }
      if (!config.ifaces.emplace(inst, iface).second) {
        return bad("duplicate interface entry");
      }
    }
    config.cycles = bitsToDouble(rawConfig.cyclesBits);
    config.cpuCycles = bitsToDouble(rawConfig.cpuCyclesBits);
    config.areaUm2 = bitsToDouble(rawConfig.areaBits);
    if (!std::isfinite(config.cycles) || !std::isfinite(config.cpuCycles) ||
        !std::isfinite(config.areaUm2)) {
      return bad("non-finite estimate");
    }
    config.numSeqBlocks = rawConfig.numSeqBlocks;
    config.numPipelinedRegions = rawConfig.numPipelinedRegions;
    config.numCoupled = rawConfig.numCoupled;
    config.numDecoupled = rawConfig.numDecoupled;
    config.numScratchpad = rawConfig.numScratchpad;
    entry.configs.push_back(std::move(config));
  }

  for (const RawSchedInsert& rawSched : raw.schedInserts) {
    if (rawSched.funcIdx >= module.functions().size()) {
      return bad("schedule function index out of range");
    }
    const ir::Function* function = module.functions()[rawSched.funcIdx].get();
    if (rawSched.blockIdx >= function->blocks().size()) {
      return bad("schedule block index out of range");
    }
    const ir::BasicBlock* block = function->blocks()[rawSched.blockIdx].get();

    CachedSchedule sched;
    sched.block = block;
    sched.width = rawSched.width;
    for (const RawIface& rawIface : rawSched.signature) {
      hls::AccessIface iface;
      if (!resolveIface(rawIface, iface)) {
        return bad("unknown array in schedule signature");
      }
      sched.signature.push_back(iface);
    }
    sched.schedule.latency = rawSched.latency;
    sched.schedule.opAreaUm2 = bitsToDouble(rawSched.opAreaBits);
    sched.schedule.regAreaUm2 = bitsToDouble(rawSched.regAreaBits);
    sched.schedule.numOps = rawSched.numOps;
    if (!std::isfinite(sched.schedule.opAreaUm2) ||
        !std::isfinite(sched.schedule.regAreaUm2)) {
      return bad("non-finite schedule area");
    }
    for (const RawSchedStart& start : rawSched.starts) {
      if (start.instIdx >= block->instructions().size()) {
        return bad("schedule start index out of range");
      }
      const ir::Instruction* inst = block->instructions()[start.instIdx].get();
      if (!sched.schedule.start.emplace(inst, start.cycle).second) {
        return bad("duplicate schedule start");
      }
    }
    entry.schedInserts.push_back(std::move(sched));
  }
  return entry;
}

uint64_t ModelCache::load() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!support::blobio::fileExists(path_)) {
    return 0;  // clean cold start, not a diagnostic
  }
  stats_.fileFound = true;

  Expected<std::string> bytes = support::blobio::readFile(path_, limits_.stream);
  if (!bytes.ok()) {
    noteDiagnostic(bytes.diagnostic());
    return 0;
  }
  Expected<support::blobio::ParsedStream> parsed =
      support::blobio::parseStream(bytes.value(), limits_.stream, path_);
  if (!parsed.ok()) {
    noteDiagnostic(parsed.diagnostic());
    return 0;
  }
  const support::blobio::ParsedStream& stream = parsed.value();
  stats_.rejectedRecords += stream.rejectedRecords;
  if (stream.rejectedRecords > 0) {
    noteDiagnostic(cacheError(
        path_, std::to_string(stream.rejectedRecords) +
                   " record(s) failed their checksum; affected regions "
                   "regenerate cold"));
  }
  if (stream.truncated) {
    noteDiagnostic(cacheError(
        path_, "snapshot truncated; keeping the records that survived"));
  }
  if (stream.records.empty()) {
    noteDiagnostic(cacheError(path_, "snapshot has no meta record"));
    return 0;
  }

  Expected<RawMeta> metaOr = decodeMeta(stream.records.front(), limits_, path_);
  if (!metaOr.ok()) {
    noteDiagnostic(metaOr.diagnostic());
    return 0;
  }
  const RawMeta& meta = metaOr.value();
  if (meta.schema != kModelCacheSchema) {
    noteDiagnostic(cacheError(
        path_, "schema version skew (file " + std::to_string(meta.schema) +
                   ", expected " + std::to_string(kModelCacheSchema) +
                   "); starting cold"));
    return 0;
  }
  if (meta.irHash != irHash_) {
    noteDiagnostic(cacheError(
        path_, "IR content hash mismatch; snapshot is for a different "
               "module — starting cold"));
    return 0;
  }
  if (meta.fingerprint != fingerprint_) {
    noteDiagnostic(cacheError(
        path_, "model fingerprint mismatch; snapshot was built under "
               "different parameters — starting cold"));
    return 0;
  }
  stats_.fileUsable = true;

  for (size_t i = 1; i < stream.records.size(); ++i) {
    Expected<RawRegionRecord> rawOr =
        decodeRegionRecord(stream.records[i], limits_, path_);
    if (!rawOr.ok()) {
      ++stats_.rejectedRecords;
      noteDiagnostic(rawOr.diagnostic());
      continue;
    }
    RawRegionRecord raw = rawOr.takeValue();
    if (rawByRegion_.count(raw.regionId) > 0) {
      ++stats_.rejectedRecords;
      noteDiagnostic(cacheError(path_, "duplicate region record id " +
                                           std::to_string(raw.regionId)));
      continue;
    }
    Expected<CachedRegion> resolvedOr = resolve(raw);
    if (!resolvedOr.ok()) {
      ++stats_.rejectedRecords;
      noteDiagnostic(resolvedOr.diagnostic());
      continue;
    }
    uint32_t id = raw.regionId;
    rawByRegion_.emplace(id, std::move(raw));
    resolved_.emplace(id, resolvedOr.takeValue());
  }
  stats_.loadedRegions = resolved_.size();
  if (stats_.rejectedRecords > 0 && support::trace::on()) {
    support::trace::TraceRecorder::global().countGlobal(
        "cache.rejected", stats_.rejectedRecords);
  }
  return stats_.loadedRegions;
}

const CachedRegion* ModelCache::find(const analysis::Region* region) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = resolved_.find(static_cast<uint32_t>(region->id()));
  if (it != resolved_.end() && it->second.region == region) {
    ++stats_.diskHits;
    if (support::trace::on()) {
      support::trace::TraceRecorder::global().countGlobal("cache.disk_hits",
                                                          1);
    }
    return &it->second;
  }
  ++stats_.diskMisses;
  if (support::trace::on()) {
    support::trace::TraceRecorder::global().countGlobal("cache.disk_misses",
                                                        1);
  }
  return nullptr;
}

void ModelCache::record(const analysis::Region* region,
                        const std::vector<AcceleratorConfig>& configs,
                        uint64_t estimateCalls, uint64_t schedBlockCalls,
                        std::vector<CachedSchedule> schedInserts) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint32_t id = static_cast<uint32_t>(region->id());
  if (rawByRegion_.count(id) > 0) return;  // idempotent

  RawRegionRecord raw;
  raw.regionId = id;
  raw.label = region->label();
  raw.estimateCalls = estimateCalls;
  raw.schedBlockCalls = schedBlockCalls;

  const ir::Module& module = wpst_.module();
  for (const AcceleratorConfig& config : configs) {
    RawConfig rawConfig;
    for (const LoopConfig& lc : config.loops) {
      const analysis::Region* loopRegion = wpst_.loopRegion(lc.loop);
      if (loopRegion == nullptr) return;  // unrepresentable: skip caching
      RawLoopConfig rawLoop;
      rawLoop.loopRegionId = static_cast<uint32_t>(loopRegion->id());
      rawLoop.unroll = lc.unroll;
      rawLoop.pipelined = lc.pipelined;
      rawConfig.loops.push_back(rawLoop);
    }
    // Interface entries in program order (block index, instruction index):
    // the on-disk bytes stay deterministic even though IfaceAssignment
    // iterates in pointer order.
    for (uint32_t b = 0; b < config.region->blocks().size(); ++b) {
      const ir::BasicBlock* block = config.region->blocks()[b];
      const auto& insts = block->instructions();
      for (uint32_t i = 0; i < insts.size(); ++i) {
        auto it = config.ifaces.find(insts[i].get());
        if (it == config.ifaces.end()) continue;
        RawIfaceEntry entry;
        entry.blockIdx = b;
        entry.instIdx = i;
        entry.iface = rawFromIface(it->second);
        rawConfig.ifaces.push_back(std::move(entry));
      }
    }
    if (rawConfig.ifaces.size() != config.ifaces.size()) return;
    rawConfig.cyclesBits = doubleBits(config.cycles);
    rawConfig.cpuCyclesBits = doubleBits(config.cpuCycles);
    rawConfig.areaBits = doubleBits(config.areaUm2);
    rawConfig.numSeqBlocks = config.numSeqBlocks;
    rawConfig.numPipelinedRegions = config.numPipelinedRegions;
    rawConfig.numCoupled = config.numCoupled;
    rawConfig.numDecoupled = config.numDecoupled;
    rawConfig.numScratchpad = config.numScratchpad;
    raw.configs.push_back(std::move(rawConfig));
  }
  if (raw.configs.empty()) return;  // cacheable regions always have configs

  for (const CachedSchedule& sched : schedInserts) {
    RawSchedInsert rawSched;
    bool located = false;
    for (uint32_t f = 0; f < module.functions().size() && !located; ++f) {
      const auto& blocks = module.functions()[f]->blocks();
      for (uint32_t b = 0; b < blocks.size(); ++b) {
        if (blocks[b].get() == sched.block) {
          rawSched.funcIdx = f;
          rawSched.blockIdx = b;
          located = true;
          break;
        }
      }
    }
    if (!located) return;
    rawSched.width = sched.width;
    for (const hls::AccessIface& iface : sched.signature) {
      rawSched.signature.push_back(rawFromIface(iface));
    }
    rawSched.latency = sched.schedule.latency;
    rawSched.opAreaBits = doubleBits(sched.schedule.opAreaUm2);
    rawSched.regAreaBits = doubleBits(sched.schedule.regAreaUm2);
    rawSched.numOps = sched.schedule.numOps;
    // Starts sorted by instruction index (the map iterates in pointer
    // order, which is not stable run to run).
    for (const auto& [inst, cycle] : sched.schedule.start) {
      std::optional<uint32_t> idx = instIndexIn(sched.block, inst);
      if (!idx.has_value()) return;
      rawSched.starts.push_back(RawSchedStart{*idx, cycle});
    }
    std::sort(rawSched.starts.begin(), rawSched.starts.end(),
              [](const RawSchedStart& a, const RawSchedStart& b) {
                return a.instIdx < b.instIdx;
              });
    raw.schedInserts.push_back(std::move(rawSched));
  }

  rawByRegion_.emplace(id, std::move(raw));
  dirty_ = true;
}

bool ModelCache::dirty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dirty_;
}

Expected<uint64_t> ModelCache::save() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!dirty_) return uint64_t{0};

  RawMeta meta;
  meta.schema = kModelCacheSchema;
  meta.irHash = irHash_;
  meta.fingerprint = fingerprint_;
  meta.moduleName = wpst_.module().name();

  std::vector<std::string> payloads;
  payloads.reserve(rawByRegion_.size() + 1);
  payloads.push_back(encodeMeta(meta));
  for (const auto& [id, raw] : rawByRegion_) {
    (void)id;
    payloads.push_back(encodeRegionRecord(raw));
  }
  std::string bytes = support::blobio::buildStream(payloads);
  Expected<uint64_t> written = support::blobio::writeFileAtomic(path_, bytes);
  if (!written.ok()) {
    noteDiagnostic(written.diagnostic());
    return written;
  }
  dirty_ = false;
  stats_.saved = true;
  stats_.savedRegions = rawByRegion_.size();
  return written;
}

ModelCacheStats ModelCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<support::Diagnostic> ModelCache::diagnostics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return diagnostics_;
}

}  // namespace cayman::accel
