#include "accel/energy.h"

namespace cayman::accel {

EnergyReport EnergyModel::estimate(const select::Solution& solution,
                                   double totalCpuCycles) const {
  EnergyReport report;

  // CPU side: time spent in the selected kernels times core power.
  double cpuSeconds = solution.cpuCycles * params_.cpuClockNs * 1e-9;
  report.cpuEnergyUj = params_.cpuPowerMw * 1e-3 * cpuSeconds * 1e6;

  // Accelerator side: dynamic energy proportional to executed work, plus
  // leakage over the time the accelerators are active.
  double dynamicPj = 0.0;
  for (const AcceleratorConfig& config : solution.accelerators) {
    // Executed operations: approximate via profiled block counts of the
    // region's blocks (each non-phi op executes once per block execution).
    const sim::ProfileData& profile = model_.profile();
    for (const ir::BasicBlock* block : config.region->blocks()) {
      double execs = static_cast<double>(profile.blockCount(block));
      double ops = 0.0;
      double accesses = 0.0;
      for (const auto& inst : block->instructions()) {
        if (inst->opcode() == ir::Opcode::Phi || inst->isTerminator()) {
          continue;
        }
        if (inst->isMemoryAccess()) {
          accesses += 1.0;
        } else {
          ops += 1.0;
        }
      }
      dynamicPj += execs * (ops * params_.opEnergyPj +
                            accesses * params_.accessEnergyPj);
    }
  }

  double accelSeconds = solution.accelCycles * params_.accelClockNs * 1e-9;
  double areaMm2 = solution.areaUm2 * 1e-6;
  double activeLeakageUj =
      params_.leakageMwPerMm2 * areaMm2 * 1e-3 * accelSeconds * 1e6;
  report.accelEnergyUj = dynamicPj * 1e-6 + activeLeakageUj;

  // Idle leakage: the accelerator area leaks for the remainder of the run.
  double restCycles = totalCpuCycles - solution.cpuCycles;
  double restSeconds =
      (restCycles > 0 ? restCycles : 0.0) * params_.cpuClockNs * 1e-9;
  report.idleLeakageUj =
      params_.leakageMwPerMm2 * areaMm2 * 1e-3 * restSeconds * 1e6;
  return report;
}

}  // namespace cayman::accel
