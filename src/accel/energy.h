// Energy model (extension): estimates the energy consumed by a selection
// solution versus running the same regions on the CPU.
//
// The paper's related work (conservation cores / QsCores [22], [23]) frames
// off-core accelerators as an *energy* play; the paper itself optimizes
// performance under area budgets. This extension closes the loop: given a
// solution, estimate dynamic + leakage energy on the accelerator and the
// CPU energy it displaces.
#pragma once

#include "accel/model.h"
#include "select/solution.h"

namespace cayman::accel {

struct EnergyParams {
  /// CPU core power when busy (a CVA6-class in-order core at 45nm).
  double cpuPowerMw = 180.0;
  /// CPU clock period (ns) converting profiled cycles into time.
  double cpuClockNs = 1.6;
  /// Accelerator clock period (ns).
  double accelClockNs = 2.0;
  /// Dynamic energy per datapath operation (pJ, averaged across op mix).
  double opEnergyPj = 3.2;
  /// Dynamic energy per memory access through an interface (pJ).
  double accessEnergyPj = 12.0;
  /// Leakage power density of accelerator logic (mW per mm^2).
  double leakageMwPerMm2 = 45.0;
};

struct EnergyReport {
  /// Energy the selected kernels would burn on the CPU (uJ per run).
  double cpuEnergyUj = 0.0;
  /// Accelerator energy for the same work (uJ per run): dynamic + leakage
  /// while running.
  double accelEnergyUj = 0.0;
  /// Idle leakage of the accelerator area over the rest of the run (uJ).
  double idleLeakageUj = 0.0;

  double totalAccelUj() const { return accelEnergyUj + idleLeakageUj; }
  /// Energy-reduction factor for the offloaded work.
  double savingsFactor() const {
    double total = totalAccelUj();
    return total <= 0.0 ? 1.0 : cpuEnergyUj / total;
  }
};

class EnergyModel {
 public:
  EnergyModel(const AcceleratorModel& model, EnergyParams params = {})
      : model_(model), params_(params) {}

  const EnergyParams& params() const { return params_; }

  /// Energy accounting for one solution over one profiled application run.
  EnergyReport estimate(const select::Solution& solution,
                        double totalCpuCycles) const;

 private:
  const AcceleratorModel& model_;
  EnergyParams params_;
};

}  // namespace cayman::accel
