#include "accel/model.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>
#include <utility>

#include "support/thread_pool.h"
#include "support/trace.h"

namespace cayman::accel {

using analysis::Loop;
using analysis::Region;
using analysis::RegionKind;

namespace {

/// Process-wide count (and high-water mark) of generateUncached bodies in
/// flight, across all models: the injected-stall overlap tests read the peak
/// to prove distinct regions/workloads really generated concurrently, and
/// wall-mode metrics export it as the model.cold_inflight_peak gauge.
std::atomic<int64_t> g_coldInflight{0};
std::atomic<int64_t> g_coldInflightPeak{0};

struct ColdInflightScope {
  ColdInflightScope() {
    int64_t now = g_coldInflight.fetch_add(1, std::memory_order_relaxed) + 1;
    int64_t peak = g_coldInflightPeak.load(std::memory_order_relaxed);
    while (now > peak && !g_coldInflightPeak.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
    support::trace::gaugeMax("model.cold_inflight_peak", now);
  }
  ~ColdInflightScope() {
    g_coldInflight.fetch_sub(1, std::memory_order_relaxed);
  }
};

/// While a region generates cold under the persistent cache, its schedule-
/// cache insertions are logged here for the region's record. Thread-local:
/// one region's generation runs entirely on one thread, so concurrent cold
/// regions log independently without sharing a guarded model-wide log.
thread_local std::vector<CachedSchedule>* t_schedInsertLog = nullptr;

struct SchedLogScope {
  std::vector<CachedSchedule>* previous;
  explicit SchedLogScope(std::vector<CachedSchedule>* log)
      : previous(t_schedInsertLog) {
    t_schedInsertLog = log;
  }
  ~SchedLogScope() { t_schedInsertLog = previous; }
};

}  // namespace

int64_t coldGenerationInflightPeak() {
  return g_coldInflightPeak.load(std::memory_order_relaxed);
}

void resetColdGenerationInflightPeak() {
  g_coldInflightPeak.store(0, std::memory_order_relaxed);
}

AcceleratorModel::AcceleratorModel(const analysis::WPst& wpst,
                                   const sim::ProfileData& profile,
                                   const hls::TechLibrary& tech,
                                   hls::InterfaceTiming timing,
                                   ModelParams params)
    : wpst_(wpst),
      profile_(profile),
      tech_(tech),
      scheduler_(tech, timing, params.clockNs),
      params_(std::move(params)) {
  for (const auto& function : wpst.module().functions()) {
    analyses_.emplace(function.get(),
                      std::make_unique<KernelAnalyses>(
                          *function, wpst.analyses(function.get())));
  }
}

const KernelAnalyses& AcceleratorModel::analysesFor(
    const ir::Function* function) const {
  return *analyses_.at(function);
}

double AcceleratorModel::tripCount(const Loop* loop) const {
  const KernelAnalyses& ka = analysesFor(loop->header()->parent());
  analysis::TripCount staticTrip = ka.scev.tripCount(loop);
  if (staticTrip.known) return static_cast<double>(staticTrip.value);
  double profiled = profile_.avgTripCount(loop);
  if (profiled > 0.0) return profiled;
  return static_cast<double>(params_.unknownTripFallback);
}

bool AcceleratorModel::isPipelineable(const Region* loopRegion) const {
  if (loopRegion->kind() != RegionKind::Loop) return false;
  if (!loopRegion->loop()->isInnermost()) return false;
  // Canonical shape: exactly bb children (header, single body, latch) —
  // no nested ctrl-flow, which would need predication we do not model.
  unsigned bodyBlocks = 0;
  for (const auto& child : loopRegion->children()) {
    if (!child->isBb()) return false;
    const ir::BasicBlock* block = child->block();
    if (block == loopRegion->loop()->header() ||
        block == loopRegion->loop()->latch()) {
      continue;
    }
    ++bodyBlocks;
  }
  return bodyBlocks == 1;
}

bool AcceleratorModel::canUnroll(const Loop* loop,
                                 const KernelAnalyses& ka) const {
  // Unrolling is legal for dependence-free loops, and for reductions —
  // scalar accumulators and loop-invariant memory accumulators unroll into
  // per-lane partial sums combined after the loop (HLS tree reduction).
  for (const analysis::LoopCarriedDep& dep : ka.mem.carriedDeps(loop)) {
    if (dep.kind == analysis::LoopCarriedDep::Kind::Scalar) continue;
    const analysis::MemAccessInfo* info = ka.mem.infoFor(dep.src);
    if (info != nullptr && info->addr.valid &&
        info->addr.offset.isStreamIn(loop) &&
        info->addr.offset.coeffForLoop(loop) == 0) {
      continue;  // accumulation into a fixed location
    }
    return false;  // genuine cross-iteration data flow (e.g. a[i+1] = a[i])
  }
  return true;
}

/// Can this access live in a register while `loop` runs? Requires a fixed,
/// statically-known address and that every same-array access inside the
/// loop hits that same address (no aliasing partner to forward through
/// memory).
bool AcceleratorModel::isPromotable(const ir::Instruction* access,
                                    const Loop* loop,
                                    const KernelAnalyses& ka) const {
  const analysis::MemAccessInfo* info = ka.mem.infoFor(access);
  if (info == nullptr || !info->addr.valid) return false;
  const analysis::Affine& addr = info->addr.offset;
  if (!addr.isStreamIn(loop) || addr.coeffForLoop(loop) != 0) return false;
  for (const analysis::MemAccessInfo& other : ka.mem.accesses()) {
    if (other.inst == access) continue;
    if (!loop->contains(other.inst->parent())) continue;
    if (!other.addr.valid) return false;  // may alias anything
    if (other.addr.base != info->addr.base) continue;
    if (other.addr.offset.terms != addr.terms ||
        other.addr.offset.constant != addr.constant) {
      return false;  // same array, different location: keep memory ordering
    }
  }
  return true;
}

std::vector<LoopConfig> AcceleratorModel::makeLoopConfigs(
    const Region* region, unsigned unroll, bool optimize) const {
  std::vector<LoopConfig> configs;
  const KernelAnalyses& ka = analysesFor(region->function());
  region->walk([&](const Region& r) {
    if (r.kind() != RegionKind::Loop) return;
    LoopConfig lc;
    lc.loop = r.loop();
    if (optimize) {
      bool pipelineable = isPipelineable(&r);
      lc.unroll = (params_.allowUnrolling && pipelineable &&
                   canUnroll(r.loop(), ka))
                      ? unroll
                      : 1;
      lc.pipelined = params_.allowPipelining && pipelineable;
    }
    configs.push_back(lc);
  });
  return configs;
}

hls::IfaceAssignment AcceleratorModel::assignInterfaces(
    const Region* region, const std::vector<LoopConfig>& loops) const {
  hls::IfaceAssignment assignment;
  const KernelAnalyses& ka = analysesFor(region->function());
  const analysis::FunctionAnalyses& fa = wpst_.analyses(region->function());
  uint64_t entries = std::max<uint64_t>(1, profile_.entries(region));

  auto loopConfig = [&](const Loop* loop) -> const LoopConfig* {
    for (const LoopConfig& lc : loops) {
      if (lc.loop == loop) return &lc;
    }
    return nullptr;
  };

  for (const ir::BasicBlock* block : region->blocks()) {
    for (const auto& inst : block->instructions()) {
      if (!inst->isMemoryAccess()) continue;
      const analysis::MemAccessInfo* info = ka.mem.infoFor(inst.get());
      hls::AccessIface iface;
      iface.kind = hls::IfaceKind::Coupled;
      iface.array = info != nullptr && info->addr.valid ? info->addr.base
                                                        : nullptr;

      double countPerEntry =
          static_cast<double>(profile_.blockCount(block)) /
          static_cast<double>(entries);
      const Loop* inLoop = fa.loops.loopFor(block);
      const LoopConfig* lc =
          inLoop != nullptr ? loopConfig(inLoop) : nullptr;

      // Register promotion inside pipelined loops: a loop-invariant scalar
      // slot is held in a register; the load/store bracket the loop.
      if (lc != nullptr && lc->pipelined && inLoop != nullptr &&
          isPromotable(inst.get(), inLoop, ka)) {
        iface.promoted = true;
        assignment[inst.get()] = iface;
        continue;
      }

      // Scratchpad rule: per-entry access count >= beta * footprint, with a
      // statically-sized footprint (paper: "requires statically analyzed
      // footprints to determine the scratchpad size").
      std::optional<uint64_t> footprint = ka.mem.footprintElems(
          inst.get(), region, params_.unknownTripFallback);
      if (params_.allowScratchpad && footprint.has_value() &&
          iface.array != nullptr && *footprint > 0) {
        uint64_t footprintBytes =
            *footprint * iface.array->elemType()->sizeBytes();
        if (countPerEntry >= params_.beta * static_cast<double>(*footprint) &&
            footprintBytes <= params_.maxScratchpadBytes) {
          iface.kind = hls::IfaceKind::Scratchpad;
          iface.footprintBytes = footprintBytes;
          iface.partitions = lc != nullptr ? std::max(1u, lc->unroll) : 1;
          assignment[inst.get()] = iface;
          continue;
        }
      }

      // Decoupled rule: stream accesses inside pipelined loops reach II=1.
      if (params_.allowDecoupled && lc != nullptr && lc->pipelined &&
          inLoop != nullptr && ka.mem.isStream(inst.get(), inLoop)) {
        iface.kind = hls::IfaceKind::Decoupled;
        assignment[inst.get()] = iface;
        continue;
      }

      assignment[inst.get()] = iface;  // coupled fallback (area saving)
    }
  }
  return assignment;
}

AcceleratorModel::GenerateShard& AcceleratorModel::shardFor(
    const Region* region) const {
  size_t h = std::hash<const Region*>{}(region);
  h ^= h >> 9;  // pointers are aligned; fold the live bits into the index
  return generateShards_[h % kGenerateShards];
}

AcceleratorModel::SchedStripe& AcceleratorModel::stripeFor(
    const ir::BasicBlock* block) const {
  size_t h = std::hash<const ir::BasicBlock*>{}(block);
  h ^= h >> 9;
  return schedStripes_[h % kSchedStripes];
}

AcceleratorModel::Claim AcceleratorModel::claimEntry(const Region* region,
                                                     bool wait) const {
  GenerateShard& shard = shardFor(region);
  std::unique_lock<std::mutex> lock(shard.mutex);
  while (true) {
    auto [it, inserted] = shard.entries.try_emplace(region);
    if (inserted) return Claim{&it->second, ClaimKind::Claimed};
    if (it->second.done) return Claim{&it->second, ClaimKind::Hit};
    if (!wait) return Claim{nullptr, ClaimKind::Running};
    // The latch owner finalizes (or abandons, on failure) under this mutex
    // and notifies; spurious wakeups just re-run the lookup.
    shard.ready.wait(lock);
  }
}

const std::vector<AcceleratorConfig>& AcceleratorModel::finalizeEntry(
    const Region* region, GenerateEntry* entry,
    std::vector<AcceleratorConfig> configs) const {
  GenerateShard& shard = shardFor(region);
  std::lock_guard<std::mutex> lock(shard.mutex);
  entry->configs = std::move(configs);
  entry->done = true;
  shard.ready.notify_all();
  return entry->configs;
}

void AcceleratorModel::abandonEntry(const Region* region) const {
  GenerateShard& shard = shardFor(region);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.entries.erase(region);
  shard.ready.notify_all();
}

void AcceleratorModel::replayDiskHit(const CachedRegion& hit) const {
  // Replay the cold generation's observable side effects. The schedule cache
  // gains this region's insertions now, at hit time, so interleaved warm and
  // cold regions see exactly the cache states they saw when the snapshot was
  // recorded — later cold regions' hit/miss counts (and so sched.block_calls)
  // stay byte-identical.
  for (const CachedSchedule& sched : hit.schedInserts) {
    SchedStripe& stripe = stripeFor(sched.block);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    SchedBucket& bucket =
        stripe.buckets
            .try_emplace(std::make_pair(sched.block, sched.width),
                         SigLess{&sigComparisons_})
            .first->second;
    bucket.try_emplace(sched.signature, sched.schedule);
  }
  // Counter deltas mirror the cold emission discipline: estimate and
  // schedule counts appear only when nonzero (cold emits one count per
  // call), candidates_total unconditionally (cold emits it once per full
  // generateUncached).
  if (hit.estimateCalls > 0) {
    estimateCalls_.fetch_add(hit.estimateCalls, std::memory_order_relaxed);
    support::trace::count("model.estimate_calls", hit.estimateCalls);
  }
  scheduler_.creditBlockCalls(hit.schedBlockCalls);
  candidatesTotal_.fetch_add(hit.configs.size(), std::memory_order_relaxed);
  support::trace::count("model.candidates_total", hit.configs.size());
}

const std::vector<AcceleratorConfig>& AcceleratorModel::generateCold(
    const Region* region, GenerateEntry* entry) const {
  try {
    if (diskEligible(region)) {
      if (const CachedRegion* hit = persistentCache_->find(region)) {
        replayDiskHit(*hit);
        return finalizeEntry(region, entry,
                             std::vector<AcceleratorConfig>(hit->configs));
      }
      // Disk miss: generate cold under a thread-local counter capture and
      // schedule-insert log, then replay the captured counts into the
      // ambient scope — same totals as counting directly, but the recorded
      // deltas belong to this region alone even while other regions
      // generate concurrently on sibling threads.
      std::vector<AcceleratorConfig> configs;
      std::vector<CachedSchedule> log;
      std::vector<std::pair<std::string, uint64_t>> counters;
      uint64_t estimates = 0;
      uint64_t blocks = 0;
      {
        support::trace::CounterCapture capture;
        SchedLogScope logScope(&log);
        configs = generateUncached(region);
        estimates = capture.value("model.estimate_calls");
        blocks = capture.value("sched.block_calls");
        counters = capture.take();
      }
      for (const auto& [name, delta] : counters) {
        support::trace::count(name, delta);
      }
      persistentCache_->record(region, configs, estimates, blocks,
                               std::move(log));
      return finalizeEntry(region, entry, std::move(configs));
    }
    return finalizeEntry(region, entry, generateUncached(region));
  } catch (...) {
    // Cancellation (or any failure) mid-generation: erase the latch so
    // waiters re-claim and retry instead of blocking on a corpse.
    abandonEntry(region);
    throw;
  }
}

const std::vector<AcceleratorConfig>& AcceleratorModel::generate(
    const Region* region) const {
  Claim claim = claimEntry(region, /*wait=*/true);
  if (claim.kind == ClaimKind::Hit) {
    support::trace::count("model.cache_hits", 1);
    return claim.entry->configs;
  }
  // We own the cold generation; everyone who arrives before finalizeEntry
  // waits on the shard latch and then counts a hit — the hit/miss totals
  // match a serial run at any concurrency.
  support::trace::count("model.cache_misses", 1);
  return generateCold(region, claim.entry);
}

std::vector<const std::vector<AcceleratorConfig>*>
AcceleratorModel::generateAll(const std::vector<const Region*>& regions) const {
  std::vector<const std::vector<AcceleratorConfig>*> lists(regions.size(),
                                                           nullptr);
  // A cold region this call claimed: generation state shuttled between the
  // phases below.
  struct ColdJob {
    size_t slot = 0;
    GenerateEntry* entry = nullptr;
    bool record = false;  ///< disk-eligible: record the capture for save()
    std::vector<AcceleratorConfig> configs;
    std::vector<CachedSchedule> log;
    std::vector<std::pair<std::string, uint64_t>> counters;
    uint64_t estimates = 0;
    uint64_t blocks = 0;
  };
  std::vector<ColdJob> cold;
  std::vector<size_t> deferred;  ///< slots another thread is generating

  // Phase A — serial, input order: resolve in-memory hits and disk-hit
  // replays, claim cold regions, and emit every hit/miss count exactly where
  // a serial generate() loop would. Disk-hit replay must stay serial and
  // ordered so the schedule cache evolves exactly as the recorded cold run's
  // traversal did.
  for (size_t i = 0; i < regions.size(); ++i) {
    const Region* region = regions[i];
    Claim claim = claimEntry(region, /*wait=*/false);
    if (claim.kind == ClaimKind::Hit) {
      support::trace::count("model.cache_hits", 1);
      lists[i] = &claim.entry->configs;
      continue;
    }
    if (claim.kind == ClaimKind::Running) {
      // Another thread's claim is the miss; our observation is a hit. Block
      // for the result only in phase D, after every region we claimed is
      // finalized or abandoned — never while holding claims, so concurrent
      // generateAll calls cannot form a claim-wait cycle.
      support::trace::count("model.cache_hits", 1);
      deferred.push_back(i);
      continue;
    }
    support::trace::count("model.cache_misses", 1);
    bool eligible = diskEligible(region);
    if (eligible) {
      const CachedRegion* hit = nullptr;
      try {
        hit = persistentCache_->find(region);
        if (hit != nullptr) replayDiskHit(*hit);
      } catch (...) {
        abandonEntry(region);
        for (const ColdJob& job : cold) abandonEntry(regions[job.slot]);
        throw;
      }
      if (hit != nullptr) {
        lists[i] = &finalizeEntry(
            region, claim.entry, std::vector<AcceleratorConfig>(hit->configs));
        continue;
      }
    }
    ColdJob job;
    job.slot = i;
    job.entry = claim.entry;
    job.record = eligible;
    cold.push_back(job);
  }

  if (!cold.empty()) {
    // Phase B — cold generation, fanned out on the pool when one is
    // configured. Each job runs under a thread-local CounterCapture and
    // schedule-insert log, so nothing schedule-dependent escapes into the
    // ambient trace scope; with no pool (or one job) the loop below runs the
    // jobs inline in input order, which also keeps persistent-cache record
    // attribution deterministic for the serial byte-compare scenarios.
    auto runJob = [&](ColdJob& job) {
      support::trace::CounterCapture capture;
      SchedLogScope logScope(&job.log);
      job.configs = generateUncached(regions[job.slot]);
      job.estimates = capture.value("model.estimate_calls");
      job.blocks = capture.value("sched.block_calls");
      job.counters = capture.take();
    };
    try {
      if (params_.pool != nullptr && cold.size() > 1) {
        TaskGroup group(*params_.pool);
        for (ColdJob& job : cold) {
          group.run([&runJob, &job] { runJob(job); });
        }
        group.wait();  // rethrows the lowest-input-index failure
      } else {
        for (ColdJob& job : cold) runJob(job);
      }
    } catch (...) {
      // Abandon every claimed entry — completed jobs' counters were never
      // replayed, so finalizing them would desynchronize totals if a caller
      // retried after cancellation. Waiters re-claim and regenerate.
      for (const ColdJob& job : cold) abandonEntry(regions[job.slot]);
      throw;
    }

    // Phase C — serial, input order: replay each job's captured counters
    // into the ambient scope (a sorted map, so per-task records accumulate
    // identically to direct counting), record disk-cacheable regions, and
    // open the latches.
    for (ColdJob& job : cold) {
      for (const auto& [name, delta] : job.counters) {
        support::trace::count(name, delta);
      }
      if (job.record) {
        persistentCache_->record(regions[job.slot], job.configs, job.estimates,
                                 job.blocks, std::move(job.log));
      }
      lists[job.slot] =
          &finalizeEntry(regions[job.slot], job.entry, std::move(job.configs));
    }
  }

  // Phase D — resolve regions other threads were generating. No claims are
  // held here, so blocking is deadlock-free; if the owner abandoned (its
  // generation failed), generate locally — the hit was already counted in
  // phase A, and this path only exists after a concurrent failure, where
  // byte-identity is moot.
  for (size_t slot : deferred) {
    Claim claim = claimEntry(regions[slot], /*wait=*/true);
    lists[slot] = claim.kind == ClaimKind::Hit
                      ? &claim.entry->configs
                      : &generateCold(regions[slot], claim.entry);
  }
  return lists;
}

void AcceleratorModel::warmGenerateCache() const {
  std::vector<const Region*> regions;
  wpst_.root()->walk([&](const Region& region) {
    if (params_.cancel != nullptr) {
      params_.cancel->check(support::Stage::Select, region.label());
    }
    regions.push_back(&region);
  });
  generateAll(regions);
}

const analysis::RooflineAnalysis& AcceleratorModel::roofline() const {
  std::lock_guard<std::mutex> lock(rooflineMutex_);
  if (roofline_ == nullptr) {
    roofline_ = std::make_unique<analysis::RooflineAnalysis>(
        wpst_, profile_, tech_, scheduler_.timing(), params_.clockNs,
        params_.unknownTripFallback);
  }
  return *roofline_;
}

std::vector<AcceleratorConfig> AcceleratorModel::generateUncached(
    const Region* region) const {
  ColdInflightScope inflight;
  if (params_.injectGenerateStallUs > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(params_.injectGenerateStallUs));
  }
  if (params_.cancel != nullptr) {
    params_.cancel->check(support::Stage::Select, region->label());
  }
  std::vector<AcceleratorConfig> result;
  if (!region->isCandidate()) return result;
  // Regions that never executed cannot gain anything.
  if (profile_.cycles(region) <= 0.0) return result;

  result = params_.generateMode == GenerateMode::Reference
               ? generateReference(region)
               : generateGuided(region);

  // Drop dominated duplicates (same cycles and area).
  std::sort(result.begin(), result.end(),
            [](const AcceleratorConfig& a, const AcceleratorConfig& b) {
              return a.areaUm2 < b.areaUm2;
            });
  std::vector<AcceleratorConfig> unique;
  for (AcceleratorConfig& config : result) {
    if (!unique.empty() &&
        std::abs(unique.back().areaUm2 - config.areaUm2) < 1e-9 &&
        std::abs(unique.back().cycles - config.cycles) < 1e-9) {
      continue;
    }
    unique.push_back(std::move(config));
  }
  // Guided mode also drops strictly dominated points (the guardrail walk
  // estimates one worsening step per region to observe the cutoff; that
  // point is dominated by an already-kept cheaper config and the selector
  // could never pick it). Reference keeps them: its list is the enumeration
  // oracle, and the differential tests pin guided fronts against it.
  if (params_.generateMode == GenerateMode::Guided) {
    std::vector<AcceleratorConfig> front;
    for (size_t i = 0; i < unique.size(); ++i) {
      bool dominated = false;
      for (size_t j = 0; j < unique.size() && !dominated; ++j) {
        dominated = j != i && unique[j].areaUm2 <= unique[i].areaUm2 &&
                    unique[j].cycles < unique[i].cycles;
      }
      if (!dominated) front.push_back(std::move(unique[i]));
    }
    unique = std::move(front);
  }
  candidatesTotal_.fetch_add(unique.size(), std::memory_order_relaxed);
  support::trace::count("model.candidates_total", unique.size());
  return unique;
}

std::vector<AcceleratorConfig> AcceleratorModel::generateReference(
    const Region* region) const {
  std::vector<AcceleratorConfig> result;
  auto makeConfig = [&](unsigned unroll, bool optimize) {
    if (params_.cancel != nullptr) {
      params_.cancel->check(support::Stage::Select, region->label());
    }
    AcceleratorConfig config;
    config.region = region;
    config.loops = makeLoopConfigs(region, unroll, optimize);
    config.ifaces = assignInterfaces(region, config.loops);
    estimate(config);
    return config;
  };

  // Cheapest point: fully sequential, interface heuristic still applies the
  // beta rule but nothing is pipelined (so no decoupled interfaces).
  result.push_back(makeConfig(1, /*optimize=*/false));

  bool hasLoops = false;
  region->walk([&](const Region& r) {
    hasLoops |= r.kind() == RegionKind::Loop;
  });
  if (hasLoops && (params_.allowPipelining || params_.allowUnrolling)) {
    if (params_.allowUnrolling) {
      for (unsigned unroll : params_.unrollFactors) {
        result.push_back(makeConfig(unroll, /*optimize=*/true));
      }
    } else {
      result.push_back(makeConfig(1, /*optimize=*/true));
    }
  }
  return result;
}

double AcceleratorModel::iiTreeTerm(
    const Region* region, const std::vector<LoopConfig>& loops,
    const hls::IfaceAssignment& ifaces) const {
  const KernelAnalyses& ka = analysesFor(region->function());
  double total = 0.0;
  region->walk([&](const Region& r) {
    if (r.kind() != RegionKind::Loop) return;
    const LoopConfig* lc = nullptr;
    for (const LoopConfig& candidate : loops) {
      if (candidate.loop == r.loop()) {
        lc = &candidate;
        break;
      }
    }
    if (lc == nullptr || !lc->pipelined) return;
    // Mirror of estimateRegion's pipelined branch, minus the terms that do
    // not depend on the unroll factor (depth, start/drain control, promoted
    // brackets, DMA). Pipelined loops are innermost, so the unroll context
    // above them is always 1 and the datapath width equals lc->unroll.
    const ir::BasicBlock* body = nullptr;
    for (const auto& child : r.children()) {
      const ir::BasicBlock* block = child->block();
      if (block != r.loop()->header() && block != r.loop()->latch()) {
        body = block;
      }
    }
    if (body == nullptr) return;
    unsigned unroll = std::max(1u, lc->unroll);
    double entries =
        std::max<double>(1.0, static_cast<double>(profile_.entries(&r)));
    double iterations = std::ceil(tripCount(r.loop()) /
                                  static_cast<double>(unroll));
    unsigned ii = std::max(
        scheduler_.recMII(ka.mem.carriedDeps(r.loop()), ifaces),
        scheduler_.resMII(*body, ifaces, unroll));
    double perEntry = static_cast<double>(hls::Scheduler::pipelinedCycles(
        static_cast<uint64_t>(iterations), 0, ii));
    for (unsigned lanes = unroll; lanes > 1; lanes /= 2) {
      perEntry += 3.0;  // reduction-tree level, as in estimateRegion
    }
    total += entries * perEntry;
  });
  return total;
}

std::vector<AcceleratorConfig> AcceleratorModel::generateGuided(
    const Region* region) const {
  // Unrolling without pipelining reshapes sequential-loop costs in ways the
  // II term below does not model; that ablation keeps the exhaustive
  // enumerator (the stock pipeline never uses it — QsCores disables both).
  if (params_.allowUnrolling && !params_.allowPipelining) {
    return generateReference(region);
  }

  auto makeConfig = [&](std::vector<LoopConfig> loops,
                        hls::IfaceAssignment ifaces) {
    if (params_.cancel != nullptr) {
      params_.cancel->check(support::Stage::Select, region->label());
    }
    AcceleratorConfig config;
    config.region = region;
    config.loops = std::move(loops);
    config.ifaces = std::move(ifaces);
    estimate(config);
    return config;
  };

  std::vector<AcceleratorConfig> result;
  // Cheapest point: fully sequential (same as the reference enumerator).
  {
    std::vector<LoopConfig> loops = makeLoopConfigs(region, 1, false);
    hls::IfaceAssignment ifaces = assignInterfaces(region, loops);
    result.push_back(makeConfig(std::move(loops), std::move(ifaces)));
  }
  const std::vector<LoopConfig>& baselineLoops = result.front().loops;

  bool hasLoops = false;
  region->walk([&](const Region& r) {
    hasLoops |= r.kind() == RegionKind::Loop;
  });
  if (!hasLoops || !(params_.allowPipelining || params_.allowUnrolling)) {
    return result;
  }

  if (!params_.allowUnrolling) {
    std::vector<LoopConfig> loops = makeLoopConfigs(region, 1, true);
    // Structural dedupe: when nothing in the region is pipelineable the
    // optimized point is the baseline again — interfaces are a
    // deterministic function of the loop configs, so equal loop vectors
    // mean equal configs.
    if (loops != baselineLoops) {
      hls::IfaceAssignment ifaces = assignInterfaces(region, loops);
      result.push_back(makeConfig(std::move(loops), std::move(ifaces)));
    }
    return result;
  }

  // Roofline-directed unroll-ladder walk. Admission is analytic (MII
  // bounds), estimation is guarded (branch-and-bound on the measured
  // unroll-invariant part), and both preserve the per-region Pareto front:
  // a skipped point is either structurally identical to a kept config or
  // dominated by one (its II term, pipeline depth, and area are all no
  // better than an admitted smaller-width point's).
  const analysis::RegionRoofline& rf = roofline().classify(region);
  struct Point {
    unsigned unroll = 1;
    std::vector<LoopConfig> loops;
    hls::IfaceAssignment ifaces;
    double iiTerm = 0.0;
  };
  std::vector<Point> admitted;
  double bestTerm = std::numeric_limits<double>::infinity();
  for (unsigned unroll : params_.unrollFactors) {
    std::vector<LoopConfig> loops = makeLoopConfigs(region, unroll, true);
    // Structural dedupe: ladder points that bind no loop collapse.
    if (loops == baselineLoops) continue;
    bool duplicate = false;
    for (const Point& p : admitted) duplicate |= p.loops == loops;
    if (duplicate) continue;
    hls::IfaceAssignment ifaces = assignInterfaces(region, loops);
    double term = iiTreeTerm(region, loops, ifaces);
    // MII admission filter: a wider point whose recurrence/resource II term
    // does not strictly improve is dominated — depth and area only grow
    // with width. This is also what skips pipelining/unrolling wholesale
    // when the recurrence MII pins the II (the term is then flat).
    if (term >= bestTerm) {
      // Bandwidth clamp: once a memory-bound region stops improving past
      // the computed saturating factor, the port-limited II term can only
      // ride the flat memory roof — end the ladder scan instead of probing
      // wider points (compute-bound regions keep scanning: their ceil
      // staircase can still step down at the iteration-collapse cliff).
      if (rf.bottleneck == analysis::Bottleneck::MemoryBound &&
          unroll > rf.saturatingUnroll) {
        break;
      }
      continue;
    }
    bestTerm = term;
    admitted.push_back(Point{unroll, std::move(loops), std::move(ifaces), term});
  }

  // Guarded estimation walk (compute-bound regions walk the ladder until a
  // step scores worse than the bound allows): g tracks the measured
  // unroll-invariant-plus-depth part, which only grows with width, so
  // g + iiTerm lower-bounds any later point's cycles. A point whose bound
  // cannot beat the best measured cycles is dominated (it is wider, so its
  // area is no smaller).
  double gLower = -std::numeric_limits<double>::infinity();
  double bestCycles = std::numeric_limits<double>::infinity();
  bool estimatedAny = false;
  for (Point& p : admitted) {
    if (estimatedAny && gLower + p.iiTerm >= bestCycles) continue;
    AcceleratorConfig config =
        makeConfig(std::move(p.loops), std::move(p.ifaces));
    gLower = std::max(gLower, config.cycles - p.iiTerm);
    bestCycles = std::min(bestCycles, config.cycles);
    estimatedAny = true;
    result.push_back(std::move(config));
  }
  return result;
}

hls::BlockSchedule AcceleratorModel::scheduleBlockCached(
    const ir::BasicBlock& block, const hls::IfaceAssignment& ifaces,
    unsigned unroll) const {
  if (params_.generateMode == GenerateMode::Reference) {
    return scheduler_.scheduleBlock(block, ifaces, unroll);
  }
  // The scheduler reads the assignment only through per-instruction
  // ifaceFor() lookups, so the AccessIface of each memory access (in program
  // order, defaulted like the scheduler defaults unmapped accesses) is a
  // complete cache key for this (block, width). Normalized to the fields the
  // schedule can observe: a promoted access is register-held (latency 0, no
  // port, exempt from memory ordering) regardless of its other fields, and
  // footprintBytes only prices scratchpad area in interfaceArea(), never the
  // schedule — collapsing them turns nesting-level beta-rule variations of
  // one block into cache hits.
  std::vector<hls::AccessIface> signature;
  for (const auto& inst : block.instructions()) {
    if (!inst->isMemoryAccess()) continue;
    auto it = ifaces.find(inst.get());
    hls::AccessIface iface =
        it == ifaces.end() ? hls::AccessIface{} : it->second;
    if (iface.promoted) {
      iface = hls::AccessIface{};
      iface.promoted = true;
    }
    iface.footprintBytes = 0;
    signature.push_back(iface);
  }
  const auto key = std::make_pair(&block, unroll);
  // The stripe lock spans the miss-path scheduling so concurrent callers
  // cannot double-schedule one tuple: the sched.block_calls total must be
  // deterministic across --jobs counts (the metrics exporter's byte-identity
  // contract), and scheduleBlock is cheap enough that contention is noise.
  // Striping by block keeps concurrent cold generations of distinct regions
  // off each other's locks, and the sorted bucket turns the old O(entries)
  // signature scan into O(log entries) comparisons.
  SchedStripe& stripe = stripeFor(&block);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  SchedBucket& bucket =
      stripe.buckets.try_emplace(key, SigLess{&sigComparisons_})
          .first->second;
  auto it = bucket.find(signature);
  if (it != bucket.end()) return it->second;
  hls::BlockSchedule schedule = scheduler_.scheduleBlock(block, ifaces, unroll);
  auto inserted = bucket.emplace(std::move(signature), schedule).first;
  if (t_schedInsertLog != nullptr) {
    t_schedInsertLog->push_back(
        CachedSchedule{&block, unroll, inserted->first, inserted->second});
  }
  return schedule;
}

AcceleratorModel::Estimate AcceleratorModel::estimateRegion(
    const Region* region, const AcceleratorConfig& config,
    unsigned unrollContext) const {
  Estimate e;
  const KernelAnalyses& ka = analysesFor(region->function());

  switch (region->kind()) {
    case RegionKind::Bb: {
      const ir::BasicBlock* block = region->block();
      double execs = std::ceil(
          static_cast<double>(profile_.blockCount(block)) /
          static_cast<double>(unrollContext));
      hls::BlockSchedule sched =
          scheduleBlockCached(*block, config.ifaces, unrollContext);
      e.cycles = execs * static_cast<double>(sched.latency);
      e.area = sched.opAreaUm2 + sched.regAreaUm2 +
               tech_.fsmAreaPerState * sched.latency;
      e.seqBlocks = 1;
      return e;
    }

    case RegionKind::Loop: {
      const Loop* loop = region->loop();
      const LoopConfig* lc = config.configFor(loop);
      unsigned unroll = lc != nullptr ? std::max(1u, lc->unroll) : 1;
      bool pipelined = lc != nullptr && lc->pipelined;
      double entries =
          std::max<double>(1.0, static_cast<double>(profile_.entries(region)));
      double trip = tripCount(loop);
      double iterations = std::ceil(trip / static_cast<double>(unroll));

      if (pipelined) {
        // Single straight-line body block by construction.
        const ir::BasicBlock* body = nullptr;
        for (const auto& child : region->children()) {
          const ir::BasicBlock* block = child->block();
          if (block != loop->header() && block != loop->latch()) body = block;
        }
        CAYMAN_ASSERT(body != nullptr, "pipelined loop without body block");
        unsigned width = unroll * unrollContext;
        hls::BlockSchedule sched =
            scheduleBlockCached(*body, config.ifaces, width);
        unsigned depth = sched.latency + 1;  // +1: IV/exit-condition stage
        unsigned ii = std::max(
            scheduler_.recMII(ka.mem.carriedDeps(loop), config.ifaces),
            scheduler_.resMII(*body, config.ifaces, width));
        double perEntry =
            static_cast<double>(hls::Scheduler::pipelinedCycles(
                static_cast<uint64_t>(iterations), depth, ii)) +
            2.0;  // start / drain control
        // Register-promoted accesses bracket the loop: load the cells before
        // the first iteration, write accumulators back after the last.
        for (const auto& inst : body->instructions()) {
          if (!inst->isMemoryAccess()) continue;
          auto it = config.ifaces.find(inst.get());
          if (it == config.ifaces.end() || !it->second.promoted) continue;
          perEntry += inst->opcode() == ir::Opcode::Load
                          ? scheduler_.timing().coupledLoadLatency
                          : scheduler_.timing().coupledStoreLatency;
        }
        // Unrolled reductions combine partial sums in a tree after the loop.
        for (unsigned lanes = width; lanes > 1; lanes /= 2) {
          perEntry += 3.0;  // one FP-add level
        }
        e.cycles = entries * perEntry;
        e.area = sched.opAreaUm2 + sched.regAreaUm2 +
                 tech_.fsmAreaPerState * 4;  // pipeline controller
        e.pipelined = 1;
        return e;
      }

      // Sequential loop: children estimated against profiled counts, plus
      // per-entry enter/exit control.
      for (const auto& child : region->children()) {
        Estimate ce =
            estimateRegion(child.get(), config, unrollContext * unroll);
        e.cycles += ce.cycles;
        e.area += ce.area;
        e.seqBlocks += ce.seqBlocks;
        e.pipelined += ce.pipelined;
      }
      e.cycles += entries * 2.0;
      e.area += tech_.fsmAreaPerState * 2;  // loop control states
      return e;
    }

    case RegionKind::If: {
      for (const auto& child : region->children()) {
        Estimate ce = estimateRegion(child.get(), config, unrollContext);
        e.cycles += ce.cycles;
        e.area += ce.area;
        e.seqBlocks += ce.seqBlocks;
        e.pipelined += ce.pipelined;
      }
      // Branch decision folds into the FSM (one extra state).
      e.area += tech_.fsmAreaPerState;
      return e;
    }

    case RegionKind::Function:
    case RegionKind::Root:
      CAYMAN_ASSERT(false, "estimateRegion on non-candidate region");
  }
  return e;
}

/// Visit the interface assignment in program order (region block order,
/// then instruction order within each block). `config.ifaces` is keyed by
/// instruction pointer, so iterating the map directly follows heap-address
/// order — which varies between runs and between sequential and threaded
/// executions of the same process. Floating-point accumulations (and "first
/// access per array" decisions) must use this stable order instead.
template <typename Fn>
static void forEachIfaceInProgramOrder(const AcceleratorConfig& config,
                                       Fn&& fn) {
  for (const ir::BasicBlock* block : config.region->blocks()) {
    for (const auto& inst : block->instructions()) {
      auto it = config.ifaces.find(inst.get());
      if (it != config.ifaces.end()) fn(inst.get(), it->second);
    }
  }
}

double AcceleratorModel::interfaceArea(const AcceleratorConfig& config) const {
  double area = 0.0;
  std::set<const ir::GlobalArray*> scratchArrays;
  forEachIfaceInProgramOrder(config, [&](const ir::Instruction* inst,
                                         const hls::AccessIface& iface) {
    if (iface.promoted) {
      // One 64-bit holding register; the bracketing access reuses the
      // loop's control FSM.
      area += tech_.registerAreaPerBit * 64;
      return;
    }
    switch (iface.kind) {
      case hls::IfaceKind::Coupled:
        area += tech_.lsuArea;
        break;
      case hls::IfaceKind::Decoupled: {
        unsigned elemBytes = 8;
        if (inst->opcode() == ir::Opcode::Load) {
          elemBytes = inst->type()->sizeBytes();
        } else if (inst->numOperands() > 0) {
          elemBytes = inst->operand(0)->type()->sizeBytes();
        }
        area += tech_.aguArea +
                tech_.fifoAreaPerByte *
                    scheduler_.timing().fifoDepthElems * elemBytes;
        break;
      }
      case hls::IfaceKind::Scratchpad: {
        // Buffer + DMA costed once per backing array (charged to the first
        // access in program order); banking per access.
        if (iface.array != nullptr &&
            scratchArrays.insert(iface.array).second) {
          area += tech_.scratchpadAreaPerByte *
                      static_cast<double>(iface.footprintBytes) +
                  tech_.dmaEngineArea;
        }
        area += tech_.scratchpadPortArea * iface.partitions;
        break;
      }
    }
  });
  return area;
}

double AcceleratorModel::dmaCyclesPerEntry(
    const AcceleratorConfig& config) const {
  // Fill before execution for read arrays, drain after for written arrays.
  // Arrays are summed in first-access program order, not pointer order.
  struct ArrayDma {
    bool rd = false;
    bool wr = false;
    uint64_t bytes = 0;
  };
  std::vector<const ir::GlobalArray*> order;
  std::map<const ir::GlobalArray*, ArrayDma> arrays;
  forEachIfaceInProgramOrder(config, [&](const ir::Instruction* inst,
                                         const hls::AccessIface& iface) {
    if (iface.kind != hls::IfaceKind::Scratchpad || iface.array == nullptr) {
      return;
    }
    auto [it, inserted] = arrays.try_emplace(iface.array);
    if (inserted) order.push_back(iface.array);
    it->second.rd |= inst->opcode() == ir::Opcode::Load;
    it->second.wr |= inst->opcode() == ir::Opcode::Store;
    it->second.bytes = std::max(it->second.bytes, iface.footprintBytes);
  });
  double cycles = 0.0;
  for (const ir::GlobalArray* array : order) {
    const ArrayDma& dma = arrays[array];
    double transfer = std::ceil(
        static_cast<double>(dma.bytes) /
        static_cast<double>(scheduler_.timing().dmaBytesPerCycle));
    if (dma.rd) cycles += transfer;
    if (dma.wr) cycles += transfer;
  }
  return cycles;
}

void AcceleratorModel::estimate(AcceleratorConfig& config) const {
  CAYMAN_ASSERT(config.region != nullptr, "config without region");
  estimateCalls_.fetch_add(1, std::memory_order_relaxed);
  support::trace::count("model.estimate_calls", 1);
  Estimate e = estimateRegion(config.region, config, 1);
  double entries = static_cast<double>(profile_.entries(config.region));
  config.cycles = e.cycles + entries * dmaCyclesPerEntry(config);
  config.cpuCycles = profile_.cycles(config.region);
  config.areaUm2 =
      e.area + interfaceArea(config) + tech_.acceleratorWrapperArea;
  config.numSeqBlocks = e.seqBlocks;
  config.numPipelinedRegions = e.pipelined;
  config.numCoupled = config.numDecoupled = config.numScratchpad = 0;
  for (const auto& [inst, iface] : config.ifaces) {
    (void)inst;
    if (iface.promoted) continue;  // register-held, no interface hardware
    switch (iface.kind) {
      case hls::IfaceKind::Coupled: ++config.numCoupled; break;
      case hls::IfaceKind::Decoupled: ++config.numDecoupled; break;
      case hls::IfaceKind::Scratchpad: ++config.numScratchpad; break;
    }
  }
}

}  // namespace cayman::accel
