// Accelerator configurations: control-flow optimization decisions plus
// data-access interface assignments, with estimated cost/benefit.
#pragma once

#include "analysis/regions.h"
#include "hls/interface.h"

namespace cayman::accel {

/// Control-flow optimization for one loop inside a candidate kernel.
struct LoopConfig {
  const analysis::Loop* loop = nullptr;
  unsigned unroll = 1;
  bool pipelined = false;
};

inline bool operator==(const LoopConfig& a, const LoopConfig& b) {
  return a.loop == b.loop && a.unroll == b.unroll &&
         a.pipelined == b.pipelined;
}
inline bool operator!=(const LoopConfig& a, const LoopConfig& b) {
  return !(a == b);
}

/// One synthesizable accelerator: a candidate kernel region plus its
/// configuration and the model's estimates.
struct AcceleratorConfig {
  const analysis::Region* region = nullptr;
  std::vector<LoopConfig> loops;
  hls::IfaceAssignment ifaces;

  // --- Estimates (filled by AcceleratorModel) -----------------------------
  /// Accelerator cycles across the whole application run (contribution to
  /// Cycle_cand in Eq. 1).
  double cycles = 0.0;
  /// Cycles the CPU spent in this kernel (contribution to T_cand).
  double cpuCycles = 0.0;
  double areaUm2 = 0.0;

  // --- Table II bookkeeping -------------------------------------------------
  unsigned numSeqBlocks = 0;         ///< #SB
  unsigned numPipelinedRegions = 0;  ///< #PR
  unsigned numCoupled = 0;           ///< #C
  unsigned numDecoupled = 0;         ///< #D
  unsigned numScratchpad = 0;        ///< #S

  const LoopConfig* configFor(const analysis::Loop* loop) const {
    for (const LoopConfig& lc : loops) {
      if (lc.loop == loop) return &lc;
    }
    return nullptr;
  }
};

/// Config identity: two configs are the same decision iff they target the
/// same region with the same loop optimizations, interface assignment and
/// estimates. The selection DP's frontier path references configs by stable
/// address (AcceleratorModel::generate results are address-stable for the
/// model's lifetime) and materializes copies only for surviving solutions;
/// this equality is what the new-vs-reference differential tests compare.
inline bool operator==(const AcceleratorConfig& a,
                       const AcceleratorConfig& b) {
  return a.region == b.region && a.loops == b.loops && a.ifaces == b.ifaces &&
         a.cycles == b.cycles && a.cpuCycles == b.cpuCycles &&
         a.areaUm2 == b.areaUm2 && a.numSeqBlocks == b.numSeqBlocks &&
         a.numPipelinedRegions == b.numPipelinedRegions &&
         a.numCoupled == b.numCoupled && a.numDecoupled == b.numDecoupled &&
         a.numScratchpad == b.numScratchpad;
}
inline bool operator!=(const AcceleratorConfig& a,
                       const AcceleratorConfig& b) {
  return !(a == b);
}

}  // namespace cayman::accel
