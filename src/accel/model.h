// Cayman's accelerator model (paper §III-C): generates candidate
// configurations for a kernel region — control-flow optimization (unrolling,
// pipelining) plus per-access interface specialization — and estimates each
// configuration's cycle count and area without synthesizing full hardware.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "accel/config.h"
#include "accel/model_cache.h"
#include "analysis/roofline.h"
#include "hls/scheduler.h"
#include "sim/profiler.h"
#include "support/cancellation.h"

namespace cayman {
class ThreadPool;
}

namespace cayman::accel {

/// How generate() explores the per-region design space.
///
///   Reference — exhaustive enumeration: one config per unroll-ladder point
///     (the quality oracle; PR 5's SelectMode::Reference pattern).
///   Guided — roofline-directed: structurally identical ladder points are
///     deduped before estimation, memory-bound regions clamp the ladder at
///     the computed bandwidth-saturating factor, and compute-bound regions
///     stop walking once a step scores worse. Must reproduce Reference's
///     per-region Pareto fronts exactly (enforced by differential tests).
enum class GenerateMode {
  Guided,
  Reference,
};

struct ModelParams {
  /// Target clock (2 ns = the paper's 500 MHz).
  double clockNs = 2.0;
  /// Scratchpad threshold β: cache an access when its per-entry count is at
  /// least β times its footprint (paper §III-C).
  double beta = 4.0;
  /// Unroll factors explored for dependence-free innermost loops.
  std::vector<unsigned> unrollFactors = {1, 2, 4, 8, 16};
  /// Largest scratchpad buffer worth allocating (bytes).
  uint64_t maxScratchpadBytes = 1u << 15;
  /// Ablation switches (coupled-only Cayman in Fig. 6 disables the first
  /// two; the QsCores-like baseline additionally disables control-flow
  /// optimization).
  bool allowDecoupled = true;
  bool allowScratchpad = true;
  bool allowPipelining = true;
  bool allowUnrolling = true;
  /// Substituted trip count when neither SCEV nor the profile knows one.
  uint64_t unknownTripFallback = 16;
  /// Design-space exploration strategy for generate().
  GenerateMode generateMode = GenerateMode::Guided;
  /// Cooperative cancellation: polled between candidate estimations so a
  /// pathological region cannot overshoot a per-workload deadline. Not owned.
  const support::CancelToken* cancel = nullptr;
  /// Test hook: microseconds slept per generateUncached() call (deadline
  /// tests force slowness here the way CAYMAN_INJECT_FAULT forces failures).
  unsigned injectGenerateStallUs = 0;
  /// Worker pool for generateAll()'s region-level fan-out: cold generations
  /// of distinct regions run concurrently on it. Not owned; nullptr keeps
  /// generateAll serial. Scheduling only — results, counters, and traces are
  /// byte-identical at any worker count. Deliberately NOT part of the
  /// persistent-cache model fingerprint (modelFingerprint hashes only the
  /// result-affecting fields).
  ThreadPool* pool = nullptr;
};

/// Per-function analysis bundle the model consumes.
struct KernelAnalyses {
  KernelAnalyses(const ir::Function& function,
                 const analysis::FunctionAnalyses& fa)
      : scev(function, fa), mem(function, fa, scev) {}

  analysis::ScalarEvolution scev;
  analysis::MemoryAnalysis mem;
};

class AcceleratorModel {
 public:
  AcceleratorModel(const analysis::WPst& wpst, const sim::ProfileData& profile,
                   const hls::TechLibrary& tech, hls::InterfaceTiming timing,
                   ModelParams params = {});

  const ModelParams& params() const { return params_; }
  const hls::TechLibrary& tech() const { return tech_; }
  const hls::InterfaceTiming& timing() const { return scheduler_.timing(); }
  const analysis::WPst& wpst() const { return wpst_; }
  const sim::ProfileData& profile() const { return profile_; }

  /// accel(v, R): candidate configurations for one kernel region, cheapest
  /// first. Empty when the region is not a legal/profitable candidate.
  ///
  /// Memoized: the result is budget-independent (budget filtering happens in
  /// the selector), so repeated budget sweeps over one model reuse the cached
  /// list. Safe to call from concurrent selector runs; the returned reference
  /// stays valid for the model's lifetime.
  const std::vector<AcceleratorConfig>& generate(
      const analysis::Region* region) const;

  /// Batch generate(): one entry per input region, in input order (the
  /// pointed-to lists stay valid for the model's lifetime, exactly like
  /// generate()'s return). When params().pool is set, cold generations of
  /// distinct regions run concurrently on it; warm hits, disk-hit replay,
  /// and all counter emission stay serial in input order, so the observable
  /// counter/trace stream is byte-identical to calling generate() on each
  /// region in sequence — at any worker count, warm or cold.
  ///
  /// Deadlock-free under concurrent calls: a generateAll never *blocks* on a
  /// region another thread is generating until it has finalized (or
  /// abandoned) every region it claimed itself, so claim-wait cycles cannot
  /// form.
  std::vector<const std::vector<AcceleratorConfig>*> generateAll(
      const std::vector<const analysis::Region*>& regions) const;

  /// Eagerly fills the generate cache for every candidate region of the
  /// wPST (through generateAll, so params().pool parallelizes the cold
  /// generations), leaving later concurrent explore() calls pure cache
  /// reads.
  void warmGenerateCache() const;

  /// Re-estimates (cycles, area, counters) for a fully-specified config.
  void estimate(AcceleratorConfig& config) const;

  /// Analyses for the function owning `region`.
  const KernelAnalyses& analysesFor(const ir::Function* function) const;

  /// Effective trip count of a loop (static, else profiled, else fallback).
  double tripCount(const analysis::Loop* loop) const;

  /// True when the loop region has the canonical pipelineable shape:
  /// innermost, straight-line single body block.
  bool isPipelineable(const analysis::Region* loopRegion) const;

  /// Roofline/bottleneck analysis backing GenerateMode::Guided (lazily
  /// built on first use; memoized per region).
  const analysis::RooflineAnalysis& roofline() const;

  /// Number of estimate() invocations on this model (both modes count at
  /// the same point: every scored candidate costs exactly one call).
  uint64_t estimateCalls() const {
    return estimateCalls_.load(std::memory_order_relaxed);
  }
  /// Number of candidate configs produced by generateUncached() across all
  /// regions (post-dedup, i.e. the lists the selector actually sees).
  uint64_t candidatesTotal() const {
    return candidatesTotal_.load(std::memory_order_relaxed);
  }
  /// scheduleBlock() invocations made on this model's scheduler.
  uint64_t scheduleBlockCalls() const { return scheduler_.blockCalls(); }

  /// Signature comparisons performed by the guided schedule cache's ordered
  /// lookups. Regression measure for the cache's container: the old
  /// linear-scan buckets cost O(entries) comparisons per lookup, the sorted
  /// map costs O(log entries) — tests pin the gap.
  uint64_t schedSignatureComparisons() const {
    return sigComparisons_.load(std::memory_order_relaxed);
  }

  /// Attaches a persistent snapshot (not owned; must outlive the model, or
  /// be detached with nullptr first). generate() then consults it behind the
  /// in-memory cache: a disk hit replays the cold generation's observable
  /// side effects (counter deltas, schedule-cache insertions) instead of
  /// regenerating, and a disk miss records them for the next save. Attach
  /// before the first generate() call — warm replay assumes the schedule
  /// cache evolves exactly as it did during the recorded cold run.
  void attachPersistentCache(ModelCache* cache) { persistentCache_ = cache; }
  ModelCache* persistentCache() const { return persistentCache_; }

 private:
  struct Estimate {
    double cycles = 0.0;  ///< whole-run cycles
    double area = 0.0;
    unsigned seqBlocks = 0;
    unsigned pipelined = 0;
  };

  std::vector<AcceleratorConfig> generateUncached(
      const analysis::Region* region) const;
  std::vector<AcceleratorConfig> generateReference(
      const analysis::Region* region) const;
  std::vector<AcceleratorConfig> generateGuided(
      const analysis::Region* region) const;
  /// The unroll-sensitive part of a config's estimated cycles: for every
  /// pipelined loop in `region`, entries * ((iterations-1)*II +
  /// reduction-tree cycles), computed from the scheduler's MII bounds
  /// exactly as estimateRegion() would. Used by the guided engine to admit
  /// ladder points without estimating them.
  double iiTreeTerm(const analysis::Region* region,
                    const std::vector<LoopConfig>& loops,
                    const hls::IfaceAssignment& ifaces) const;
  /// scheduleBlock with guided-mode memoization: identical
  /// (block, interface-restriction, width) requests are scheduled once.
  /// Reference mode calls the scheduler directly so its call counts reflect
  /// the full enumeration.
  hls::BlockSchedule scheduleBlockCached(const ir::BasicBlock& block,
                                         const hls::IfaceAssignment& ifaces,
                                         unsigned unroll) const;
  Estimate estimateRegion(const analysis::Region* region,
                          const AcceleratorConfig& config,
                          unsigned unrollContext) const;
  bool canUnroll(const analysis::Loop* loop, const KernelAnalyses& ka) const;
  bool isPromotable(const ir::Instruction* access, const analysis::Loop* loop,
                    const KernelAnalyses& ka) const;
  double interfaceArea(const AcceleratorConfig& config) const;
  double dmaCyclesPerEntry(const AcceleratorConfig& config) const;
  hls::IfaceAssignment assignInterfaces(
      const analysis::Region* region,
      const std::vector<LoopConfig>& loops) const;
  std::vector<LoopConfig> makeLoopConfigs(const analysis::Region* region,
                                          unsigned unroll,
                                          bool optimize) const;

  const analysis::WPst& wpst_;
  const sim::ProfileData& profile_;
  const hls::TechLibrary& tech_;
  hls::Scheduler scheduler_;
  ModelParams params_;
  std::map<const ir::Function*, std::unique_ptr<KernelAnalyses>> analyses_;
  mutable std::atomic<uint64_t> estimateCalls_{0};
  mutable std::atomic<uint64_t> candidatesTotal_{0};

  /// Lazily-built roofline analysis (guided mode only). Guarded by
  /// rooflineMutex_ for concurrent generate() callers.
  mutable std::mutex rooflineMutex_;
  mutable std::unique_ptr<analysis::RooflineAnalysis> roofline_;

  // --- Guided-mode schedule memoization ------------------------------------
  //
  // Striped by block pointer so concurrent cold generations of distinct
  // regions rarely contend, and each (block, width) bucket is a sorted map
  // keyed by the interface signature (AccessIface per memory access in
  // program order) — O(log n) signature comparisons per lookup where the old
  // linear bucket scan paid O(n).

  /// Signature order for the sorted buckets: lexicographic over AccessIface
  /// operator<. Stateful so every comparison is counted (the container-
  /// complexity regression measure behind schedSignatureComparisons()).
  struct SigLess {
    std::atomic<uint64_t>* comparisons = nullptr;
    bool operator()(const std::vector<hls::AccessIface>& a,
                    const std::vector<hls::AccessIface>& b) const {
      comparisons->fetch_add(1, std::memory_order_relaxed);
      return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                          b.end());
    }
  };
  using SchedBucket =
      std::map<std::vector<hls::AccessIface>, hls::BlockSchedule, SigLess>;
  struct SchedStripe {
    std::mutex mutex;
    std::map<std::pair<const ir::BasicBlock*, unsigned>, SchedBucket> buckets;
  };
  static constexpr size_t kSchedStripes = 16;
  SchedStripe& stripeFor(const ir::BasicBlock* block) const;
  mutable std::array<SchedStripe, kSchedStripes> schedStripes_;
  mutable std::atomic<uint64_t> sigComparisons_{0};

  // --- generate() memoization ----------------------------------------------
  //
  // Sharded latch cache: each region's entry is claimed exactly once (the
  // claimer runs the cold path; it alone counts the miss) and every other
  // caller either returns the finished list (counting a hit) or waits on the
  // shard's condition variable until the claimer finalizes. Distinct regions
  // on distinct shards generate fully concurrently — there is no global
  // model lock left, and the persistent cache (internally synchronized) is
  // consulted without one.
  //
  // Entry references are stable: unordered_map rehash moves buckets, not
  // nodes, so finished lists are handed out by reference while other regions
  // are still being inserted.

  struct GenerateEntry {
    bool done = false;  ///< false = cold generation in flight (latch closed)
    std::vector<AcceleratorConfig> configs;
  };
  struct GenerateShard {
    std::mutex mutex;
    std::condition_variable ready;
    std::unordered_map<const analysis::Region*, GenerateEntry> entries;
  };
  static constexpr size_t kGenerateShards = 16;
  enum class ClaimKind {
    Hit,      ///< entry finished: configs are readable, a cache hit
    Claimed,  ///< we inserted the entry: we own the cold generation
    Running,  ///< another thread owns it (only when wait == false)
  };
  struct Claim {
    GenerateEntry* entry = nullptr;
    ClaimKind kind = ClaimKind::Hit;
  };
  GenerateShard& shardFor(const analysis::Region* region) const;
  /// Claim `region`'s entry or resolve it as a hit. With wait == true blocks
  /// until an in-flight generation finishes (never returns Running); with
  /// wait == false returns Running instead (generateAll's deadlock-free
  /// deferral).
  Claim claimEntry(const analysis::Region* region, bool wait) const;
  /// Publishes a claimed entry's configs and opens the latch. Returns the
  /// now-stable cached list.
  const std::vector<AcceleratorConfig>& finalizeEntry(
      const analysis::Region* region, GenerateEntry* entry,
      std::vector<AcceleratorConfig> configs) const;
  /// Erases a claimed entry after a failed generation (cancellation) so
  /// waiters re-claim and retry instead of reading a corpse.
  void abandonEntry(const analysis::Region* region) const;
  /// Cold path for one claimed region: disk-hit replay or capture-generate-
  /// record, then finalize (abandon on throw). Does not count hit/miss —
  /// callers already did, in deterministic order.
  const std::vector<AcceleratorConfig>& generateCold(
      const analysis::Region* region, GenerateEntry* entry) const;
  /// Replays a disk hit's observable side effects (schedule-cache inserts,
  /// counter deltas) exactly as the recorded cold run emitted them.
  void replayDiskHit(const CachedRegion& hit) const;
  /// Regions whose cold generation is disk-cacheable (the generateUncached
  /// early-outs emit no counters, so only fully-generated regions record).
  bool diskEligible(const analysis::Region* region) const {
    return persistentCache_ != nullptr && region->isCandidate() &&
           profile_.cycles(region) > 0.0;
  }
  mutable std::array<GenerateShard, kGenerateShards> generateShards_;

  /// Optional persistent snapshot (not owned). Internally synchronized, so
  /// concurrent cold generations consult and record without a model-level
  /// lock; per-region counter deltas come from thread-local CounterCaptures
  /// instead of global before/after reads.
  ModelCache* persistentCache_ = nullptr;
};

/// Process-wide high-water mark of concurrently running cold candidate
/// generations (generateUncached bodies, all models). Exported as the
/// model.cold_inflight_peak gauge in wall-clock trace mode; tests read it
/// directly to prove cold generations actually overlapped.
int64_t coldGenerationInflightPeak();
/// Resets the peak (tests only; the gauge in an already-attached trace
/// recorder keeps its high-water mark).
void resetColdGenerationInflightPeak();

}  // namespace cayman::accel
