// Cayman's accelerator model (paper §III-C): generates candidate
// configurations for a kernel region — control-flow optimization (unrolling,
// pipelining) plus per-access interface specialization — and estimates each
// configuration's cycle count and area without synthesizing full hardware.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "accel/config.h"
#include "accel/model_cache.h"
#include "analysis/roofline.h"
#include "hls/scheduler.h"
#include "sim/profiler.h"
#include "support/cancellation.h"

namespace cayman::accel {

/// How generate() explores the per-region design space.
///
///   Reference — exhaustive enumeration: one config per unroll-ladder point
///     (the quality oracle; PR 5's SelectMode::Reference pattern).
///   Guided — roofline-directed: structurally identical ladder points are
///     deduped before estimation, memory-bound regions clamp the ladder at
///     the computed bandwidth-saturating factor, and compute-bound regions
///     stop walking once a step scores worse. Must reproduce Reference's
///     per-region Pareto fronts exactly (enforced by differential tests).
enum class GenerateMode {
  Guided,
  Reference,
};

struct ModelParams {
  /// Target clock (2 ns = the paper's 500 MHz).
  double clockNs = 2.0;
  /// Scratchpad threshold β: cache an access when its per-entry count is at
  /// least β times its footprint (paper §III-C).
  double beta = 4.0;
  /// Unroll factors explored for dependence-free innermost loops.
  std::vector<unsigned> unrollFactors = {1, 2, 4, 8, 16};
  /// Largest scratchpad buffer worth allocating (bytes).
  uint64_t maxScratchpadBytes = 1u << 15;
  /// Ablation switches (coupled-only Cayman in Fig. 6 disables the first
  /// two; the QsCores-like baseline additionally disables control-flow
  /// optimization).
  bool allowDecoupled = true;
  bool allowScratchpad = true;
  bool allowPipelining = true;
  bool allowUnrolling = true;
  /// Substituted trip count when neither SCEV nor the profile knows one.
  uint64_t unknownTripFallback = 16;
  /// Design-space exploration strategy for generate().
  GenerateMode generateMode = GenerateMode::Guided;
  /// Cooperative cancellation: polled between candidate estimations so a
  /// pathological region cannot overshoot a per-workload deadline. Not owned.
  const support::CancelToken* cancel = nullptr;
  /// Test hook: microseconds slept per generateUncached() call (deadline
  /// tests force slowness here the way CAYMAN_INJECT_FAULT forces failures).
  unsigned injectGenerateStallUs = 0;
};

/// Per-function analysis bundle the model consumes.
struct KernelAnalyses {
  KernelAnalyses(const ir::Function& function,
                 const analysis::FunctionAnalyses& fa)
      : scev(function, fa), mem(function, fa, scev) {}

  analysis::ScalarEvolution scev;
  analysis::MemoryAnalysis mem;
};

class AcceleratorModel {
 public:
  AcceleratorModel(const analysis::WPst& wpst, const sim::ProfileData& profile,
                   const hls::TechLibrary& tech, hls::InterfaceTiming timing,
                   ModelParams params = {});

  const ModelParams& params() const { return params_; }
  const hls::TechLibrary& tech() const { return tech_; }
  const hls::InterfaceTiming& timing() const { return scheduler_.timing(); }
  const analysis::WPst& wpst() const { return wpst_; }
  const sim::ProfileData& profile() const { return profile_; }

  /// accel(v, R): candidate configurations for one kernel region, cheapest
  /// first. Empty when the region is not a legal/profitable candidate.
  ///
  /// Memoized: the result is budget-independent (budget filtering happens in
  /// the selector), so repeated budget sweeps over one model reuse the cached
  /// list. Safe to call from concurrent selector runs; the returned reference
  /// stays valid for the model's lifetime.
  const std::vector<AcceleratorConfig>& generate(
      const analysis::Region* region) const;

  /// Eagerly fills the generate cache for every candidate region of the
  /// wPST, so later concurrent explore() calls are pure cache reads.
  void warmGenerateCache() const;

  /// Re-estimates (cycles, area, counters) for a fully-specified config.
  void estimate(AcceleratorConfig& config) const;

  /// Analyses for the function owning `region`.
  const KernelAnalyses& analysesFor(const ir::Function* function) const;

  /// Effective trip count of a loop (static, else profiled, else fallback).
  double tripCount(const analysis::Loop* loop) const;

  /// True when the loop region has the canonical pipelineable shape:
  /// innermost, straight-line single body block.
  bool isPipelineable(const analysis::Region* loopRegion) const;

  /// Roofline/bottleneck analysis backing GenerateMode::Guided (lazily
  /// built on first use; memoized per region).
  const analysis::RooflineAnalysis& roofline() const;

  /// Number of estimate() invocations on this model (both modes count at
  /// the same point: every scored candidate costs exactly one call).
  uint64_t estimateCalls() const {
    return estimateCalls_.load(std::memory_order_relaxed);
  }
  /// Number of candidate configs produced by generateUncached() across all
  /// regions (post-dedup, i.e. the lists the selector actually sees).
  uint64_t candidatesTotal() const {
    return candidatesTotal_.load(std::memory_order_relaxed);
  }
  /// scheduleBlock() invocations made on this model's scheduler.
  uint64_t scheduleBlockCalls() const { return scheduler_.blockCalls(); }

  /// Attaches a persistent snapshot (not owned; must outlive the model, or
  /// be detached with nullptr first). generate() then consults it behind the
  /// in-memory cache: a disk hit replays the cold generation's observable
  /// side effects (counter deltas, schedule-cache insertions) instead of
  /// regenerating, and a disk miss records them for the next save. Attach
  /// before the first generate() call — warm replay assumes the schedule
  /// cache evolves exactly as it did during the recorded cold run.
  void attachPersistentCache(ModelCache* cache) { persistentCache_ = cache; }
  ModelCache* persistentCache() const { return persistentCache_; }

 private:
  struct Estimate {
    double cycles = 0.0;  ///< whole-run cycles
    double area = 0.0;
    unsigned seqBlocks = 0;
    unsigned pipelined = 0;
  };

  std::vector<AcceleratorConfig> generateUncached(
      const analysis::Region* region) const;
  /// Disk-backed slow path for cacheable regions (in-memory miss with a
  /// persistent cache attached): replay a disk hit, or generate cold while
  /// capturing the side effects to record.
  const std::vector<AcceleratorConfig>& generatePersistent(
      const analysis::Region* region) const;
  std::vector<AcceleratorConfig> generateReference(
      const analysis::Region* region) const;
  std::vector<AcceleratorConfig> generateGuided(
      const analysis::Region* region) const;
  /// The unroll-sensitive part of a config's estimated cycles: for every
  /// pipelined loop in `region`, entries * ((iterations-1)*II +
  /// reduction-tree cycles), computed from the scheduler's MII bounds
  /// exactly as estimateRegion() would. Used by the guided engine to admit
  /// ladder points without estimating them.
  double iiTreeTerm(const analysis::Region* region,
                    const std::vector<LoopConfig>& loops,
                    const hls::IfaceAssignment& ifaces) const;
  /// scheduleBlock with guided-mode memoization: identical
  /// (block, interface-restriction, width) requests are scheduled once.
  /// Reference mode calls the scheduler directly so its call counts reflect
  /// the full enumeration.
  hls::BlockSchedule scheduleBlockCached(const ir::BasicBlock& block,
                                         const hls::IfaceAssignment& ifaces,
                                         unsigned unroll) const;
  Estimate estimateRegion(const analysis::Region* region,
                          const AcceleratorConfig& config,
                          unsigned unrollContext) const;
  bool canUnroll(const analysis::Loop* loop, const KernelAnalyses& ka) const;
  bool isPromotable(const ir::Instruction* access, const analysis::Loop* loop,
                    const KernelAnalyses& ka) const;
  double interfaceArea(const AcceleratorConfig& config) const;
  double dmaCyclesPerEntry(const AcceleratorConfig& config) const;
  hls::IfaceAssignment assignInterfaces(
      const analysis::Region* region,
      const std::vector<LoopConfig>& loops) const;
  std::vector<LoopConfig> makeLoopConfigs(const analysis::Region* region,
                                          unsigned unroll,
                                          bool optimize) const;

  const analysis::WPst& wpst_;
  const sim::ProfileData& profile_;
  const hls::TechLibrary& tech_;
  hls::Scheduler scheduler_;
  ModelParams params_;
  std::map<const ir::Function*, std::unique_ptr<KernelAnalyses>> analyses_;
  mutable std::atomic<uint64_t> estimateCalls_{0};
  mutable std::atomic<uint64_t> candidatesTotal_{0};

  /// Lazily-built roofline analysis (guided mode only). Guarded by
  /// rooflineMutex_ for concurrent generate() callers.
  mutable std::mutex rooflineMutex_;
  mutable std::unique_ptr<analysis::RooflineAnalysis> roofline_;

  /// Guided-mode schedule memoization: per (block, width), the interface
  /// signatures (AccessIface per memory access in program order) already
  /// scheduled and their results.
  struct SchedCacheEntry {
    std::vector<hls::AccessIface> signature;
    hls::BlockSchedule schedule;
  };
  mutable std::mutex schedCacheMutex_;
  mutable std::map<std::pair<const ir::BasicBlock*, unsigned>,
                   std::vector<SchedCacheEntry>>
      schedCache_;
  /// While a region generates cold under the persistent cache, its schedule
  /// -cache insertions are logged here so the snapshot can replay them at
  /// hit time in the same order. Both guarded by schedCacheMutex_.
  mutable std::vector<CachedSchedule> schedInsertLog_;
  mutable bool schedLogActive_ = false;

  /// Optional persistent snapshot (not owned). persistentMutex_ serializes
  /// cold generations under it so a captured counter delta belongs to one
  /// region alone. The framework path is effectively single-threaded here
  /// (warmGenerateCache runs before concurrent explore), so the lock is
  /// correctness insurance for direct concurrent generate() callers, not a
  /// bottleneck.
  mutable std::mutex persistentMutex_;
  ModelCache* persistentCache_ = nullptr;

  /// generate() memoization. unordered_map node references survive rehashes,
  /// so cached lists can be handed out by reference while other regions are
  /// still being inserted. Guarded for concurrent selector runs.
  mutable std::mutex generateCacheMutex_;
  mutable std::unordered_map<const analysis::Region*,
                             std::vector<AcceleratorConfig>>
      generateCache_;
};

}  // namespace cayman::accel
