// Persistent, corruption-tolerant snapshot of the accelerator model's
// generate() cache.
//
// One snapshot file holds the per-region candidate lists of one
// (module, model-parameter) pair, keyed by two 64-bit hashes:
//
//   IR content hash   — fnv1a64 of the printed module. The profile, the
//                       wPST, and the region numbering are deterministic
//                       functions of the IR, so this pins every input the
//                       generation step reads from the program.
//   model fingerprint — hash of every ModelParams field that shapes the
//                       result, the TechLibrary constants, the
//                       InterfaceTiming parameters, and a schema salt.
//
// A hash mismatch means the snapshot answers a different question and the
// whole file is ignored (cold start, one diagnostic). Within a matching
// file, damage is contained per record: a record that fails its CRC, its
// structural decode, or its resolution against the live wPST is dropped and
// only those regions regenerate cold.
//
// Byte-identity contract: a warm run must reproduce a cold run's stdout,
// metrics and trace exactly, so each record also carries the trace-counter
// deltas (estimate calls, scheduleBlock calls) and the schedule-cache
// insertions its cold generation produced; AcceleratorModel replays them on
// a disk hit (see model.cpp). Pointer-laden structures travel by stable
// names and indices — regions by id+label, loops by their loop-region id,
// instructions by (block index, instruction index), arrays by name — and
// doubles as raw bit patterns.
//
// The raw (Raw*) layer is context-free and shared with tools/cache_check
// and fuzz/fuzz_cache: decode rejects out-of-cap input, and encode(decode(x))
// == x for every accepted payload (the fuzzer's fixpoint invariant).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "accel/config.h"
#include "hls/scheduler.h"
#include "support/blobio.h"
#include "support/status.h"

namespace cayman::ir {
class Module;
}

namespace cayman::accel {

struct ModelParams;

/// Payload schema version (independent of the blobio stream version); bump
/// whenever a record's field layout changes.
inline constexpr uint32_t kModelCacheSchema = 1;

/// Bounded-read caps for snapshot payloads (the ParserLimits idiom).
struct ModelCacheLimits {
  support::blobio::Limits stream;
  uint32_t maxRegions = 1u << 20;
  uint32_t maxConfigsPerRegion = 4096;
  uint32_t maxLoopsPerConfig = 1024;
  uint32_t maxIfacesPerConfig = 1u << 16;
  uint32_t maxSchedEntries = 1u << 16;
  uint32_t maxSchedStarts = 1u << 16;
  uint32_t maxStringBytes = 4096;
  /// Replayed counter deltas above this are corruption, not measurements.
  uint64_t maxCounterDelta = 1ull << 40;
};

// --- Raw (context-free) record layer ---------------------------------------

struct RawMeta {
  uint32_t schema = kModelCacheSchema;
  uint64_t irHash = 0;
  uint64_t fingerprint = 0;
  std::string moduleName;
};

struct RawIface {
  uint8_t kind = 0;  ///< hls::IfaceKind as u8
  uint32_t partitions = 1;
  bool hasArray = false;
  std::string arrayName;
  uint64_t footprintBytes = 0;
  bool promoted = false;
};

struct RawLoopConfig {
  uint32_t loopRegionId = 0;  ///< Region::id() of the loop's region
  uint32_t unroll = 1;
  bool pipelined = false;
};

struct RawIfaceEntry {
  uint32_t blockIdx = 0;  ///< index into Region::blocks()
  uint32_t instIdx = 0;   ///< index into BasicBlock::instructions()
  RawIface iface;
};

struct RawConfig {
  std::vector<RawLoopConfig> loops;
  std::vector<RawIfaceEntry> ifaces;
  uint64_t cyclesBits = 0;
  uint64_t cpuCyclesBits = 0;
  uint64_t areaBits = 0;
  uint32_t numSeqBlocks = 0;
  uint32_t numPipelinedRegions = 0;
  uint32_t numCoupled = 0;
  uint32_t numDecoupled = 0;
  uint32_t numScratchpad = 0;
};

struct RawSchedStart {
  uint32_t instIdx = 0;  ///< index into the scheduled block's instructions
  uint32_t cycle = 0;
};

/// One schedule-cache insertion made while a region generated cold.
struct RawSchedInsert {
  uint32_t funcIdx = 0;   ///< index into Module::functions()
  uint32_t blockIdx = 0;  ///< index into Function::blocks()
  uint32_t width = 1;     ///< unroll width of the cache key
  std::vector<RawIface> signature;
  uint32_t latency = 0;
  uint64_t opAreaBits = 0;
  uint64_t regAreaBits = 0;
  uint32_t numOps = 0;
  std::vector<RawSchedStart> starts;
};

struct RawRegionRecord {
  uint32_t regionId = 0;
  std::string label;  ///< belt-and-braces check against Region::label()
  uint64_t estimateCalls = 0;
  uint64_t schedBlockCalls = 0;
  std::vector<RawConfig> configs;
  std::vector<RawSchedInsert> schedInserts;
};

std::string encodeMeta(const RawMeta& meta);
std::string encodeRegionRecord(const RawRegionRecord& record);
/// Structural decode with caps; the Diagnostic's unit is `unit`.
support::Expected<RawMeta> decodeMeta(std::string_view payload,
                                      const ModelCacheLimits& limits,
                                      const std::string& unit = "");
support::Expected<RawRegionRecord> decodeRegionRecord(
    std::string_view payload, const ModelCacheLimits& limits,
    const std::string& unit = "");

/// Context-free whole-file summary (tools/cache_check, fuzzing): stream
/// framing plus a structural decode of every surviving record. Fails only
/// on whole-stream damage, like ModelCache::load.
struct SnapshotSummary {
  uint32_t streamVersion = 0;
  RawMeta meta;
  uint64_t regionRecords = 0;
  uint64_t configs = 0;
  uint64_t schedInserts = 0;
  /// CRC-skipped + structurally-rejected records (duplicates included).
  uint64_t rejectedRecords = 0;
  bool truncated = false;
  /// First structural-rejection reason, when any.
  std::optional<support::Diagnostic> firstReject;
};
support::Expected<SnapshotSummary> summarizeSnapshot(
    std::string_view bytes, const ModelCacheLimits& limits,
    const std::string& unit = "");

// --- Resolved layer ---------------------------------------------------------

/// A resolved RawSchedInsert: ready to materialize into the model's
/// (block, width, signature) schedule cache on a disk hit.
struct CachedSchedule {
  const ir::BasicBlock* block = nullptr;
  unsigned width = 1;
  std::vector<hls::AccessIface> signature;
  hls::BlockSchedule schedule;
};

/// One warm region: everything generate() needs to skip cold generation
/// while reproducing its observable side effects.
struct CachedRegion {
  const analysis::Region* region = nullptr;
  std::vector<AcceleratorConfig> configs;
  uint64_t estimateCalls = 0;
  uint64_t schedBlockCalls = 0;
  std::vector<CachedSchedule> schedInserts;
};

struct ModelCacheStats {
  bool fileFound = false;     ///< a snapshot existed at the path
  bool fileUsable = false;    ///< header + meta accepted (warm candidates)
  uint64_t loadedRegions = 0; ///< records resolved and available to hit
  uint64_t rejectedRecords = 0;
  uint64_t diskHits = 0;
  uint64_t diskMisses = 0;
  uint64_t savedRegions = 0;  ///< regions in the last successful save
  bool saved = false;
};

/// The persistent snapshot for one (module, params) pair. Thread-safe: the
/// model serializes find/record behind its own persistent-cache mutex, but
/// every public method also locks internally so stats and diagnostics can
/// be read concurrently.
class ModelCache {
 public:
  /// fnv1a64 over the printed module text.
  static uint64_t irContentHash(const ir::Module& module);
  /// Hash of every generation-shaping parameter (see file comment).
  static uint64_t modelFingerprint(const ModelParams& params,
                                   const hls::TechLibrary& tech,
                                   const hls::InterfaceTiming& timing);
  /// "model-<irHash>-<fingerprint>.cayc" (hex, zero-padded).
  static std::string snapshotFileName(uint64_t irHash, uint64_t fingerprint);

  /// The snapshot lives at `dir`/snapshotFileName(...). `wpst` (and the
  /// module it analyzes) must outlive the cache.
  ModelCache(const std::string& dir, const analysis::WPst& wpst,
             uint64_t irHash, uint64_t fingerprint,
             ModelCacheLimits limits = {});

  const std::string& path() const { return path_; }

  /// Loads and resolves the snapshot. Never throws and never fails the
  /// pipeline: a missing file is a clean cold start, whole-file damage
  /// (framing, version/hash skew) ignores the file with one diagnostic, and
  /// per-record damage drops just that record. Returns the number of
  /// regions available to hit.
  uint64_t load();

  /// Warm lookup; counts a disk hit or miss. The pointer stays valid for
  /// the cache's lifetime.
  const CachedRegion* find(const analysis::Region* region);

  /// Records one region's cold generation for the next save(). Idempotent
  /// per region.
  void record(const analysis::Region* region,
              const std::vector<AcceleratorConfig>& configs,
              uint64_t estimateCalls, uint64_t schedBlockCalls,
              std::vector<CachedSchedule> schedInserts);

  /// True when record() added regions the on-disk snapshot lacks.
  bool dirty() const;

  /// Serializes every known region (loaded + recorded, sorted by region id
  /// for deterministic bytes) and publishes atomically. No-op when clean.
  /// Returns the number of bytes written (0 when skipped).
  support::Expected<uint64_t> save();

  ModelCacheStats stats() const;
  /// Load/degradation diagnostics, capped to the first few per category.
  std::vector<support::Diagnostic> diagnostics() const;

 private:
  support::Expected<CachedRegion> resolve(const RawRegionRecord& raw) const;
  void noteDiagnostic(support::Diagnostic diagnostic);

  std::string path_;
  const analysis::WPst& wpst_;
  uint64_t irHash_ = 0;
  uint64_t fingerprint_ = 0;
  ModelCacheLimits limits_;

  mutable std::mutex mutex_;
  /// Canonical raw records (loaded-and-valid plus newly recorded), the save
  /// image. Keyed by region id, so saves are deterministic.
  std::map<uint32_t, RawRegionRecord> rawByRegion_;
  /// Resolved loaded records backing find(). Node-stable map.
  std::map<uint32_t, CachedRegion> resolved_;
  bool dirty_ = false;
  ModelCacheStats stats_;
  std::vector<support::Diagnostic> diagnostics_;
};

}  // namespace cayman::accel
