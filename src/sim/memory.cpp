#include "sim/memory.h"

#include <cstring>

#include "support/error.h"

namespace cayman::sim {

namespace {

/// SplitMix64: deterministic fill for uninitialized globals.
uint64_t splitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

SimMemory::SimMemory(const ir::Module& module) {
  uint64_t cursor = kBase;
  for (const auto& global : module.globals()) {
    cursor = (cursor + 63) & ~uint64_t{63};  // 64-byte aligned arrays
    bases_[global.get()] = cursor;
    cursor += global->sizeBytes();
  }
  bytes_.assign(cursor - kBase, std::byte{0});

  uint64_t seed = 0xCA51A0FFULL;
  for (const auto& global : module.globals()) {
    const ir::Type* elem = global->elemType();
    uint64_t base = bases_[global.get()];
    for (uint64_t i = 0; i < global->numElems(); ++i) {
      uint64_t address = base + i * elem->sizeBytes();
      if (global->hasInit()) {
        double v = global->init()[i];
        if (elem->isFloat()) {
          storeFloat(address, elem, v);
        } else {
          storeInt(address, elem, static_cast<int64_t>(v));
        }
      } else if (elem->isFloat()) {
        // Uniform in [0, 1): keeps accumulations numerically tame.
        storeFloat(address, elem,
                   static_cast<double>(splitMix64(seed) >> 11) * 0x1.0p-53);
      } else {
        // Small non-negative integers, safe as indices into the array.
        storeInt(address, elem,
                 static_cast<int64_t>(splitMix64(seed) % global->numElems()));
      }
    }
  }
  initialBytes_ = bytes_;
}

void SimMemory::reset() { bytes_ = initialBytes_; }

uint64_t SimMemory::baseOf(const ir::GlobalArray* global) const {
  auto it = bases_.find(global);
  CAYMAN_ASSERT(it != bases_.end(), "global not laid out: " + global->name());
  return it->second;
}

const std::byte* SimMemory::at(uint64_t address, size_t size) const {
  CAYMAN_ASSERT(address >= kBase && address - kBase + size <= bytes_.size(),
                "simulated memory access out of bounds at address " +
                    std::to_string(address));
  return bytes_.data() + (address - kBase);
}

std::byte* SimMemory::at(uint64_t address, size_t size) {
  return const_cast<std::byte*>(
      static_cast<const SimMemory*>(this)->at(address, size));
}

int64_t SimMemory::loadInt(uint64_t address, const ir::Type* type) const {
  switch (type->kind()) {
    case ir::Type::Kind::I1: {
      uint8_t v;
      std::memcpy(&v, at(address, 1), 1);
      return v != 0;
    }
    case ir::Type::Kind::I32: {
      int32_t v;
      std::memcpy(&v, at(address, 4), 4);
      return v;
    }
    case ir::Type::Kind::I64:
    case ir::Type::Kind::Ptr: {
      int64_t v;
      std::memcpy(&v, at(address, 8), 8);
      return v;
    }
    default:
      CAYMAN_ASSERT(false, "loadInt of non-integer type");
  }
}

double SimMemory::loadFloat(uint64_t address, const ir::Type* type) const {
  if (type->kind() == ir::Type::Kind::F32) {
    float v;
    std::memcpy(&v, at(address, 4), 4);
    return v;
  }
  CAYMAN_ASSERT(type->kind() == ir::Type::Kind::F64,
                "loadFloat of non-float type");
  double v;
  std::memcpy(&v, at(address, 8), 8);
  return v;
}

void SimMemory::storeInt(uint64_t address, const ir::Type* type,
                         int64_t value) {
  switch (type->kind()) {
    case ir::Type::Kind::I1: {
      uint8_t v = value != 0;
      std::memcpy(at(address, 1), &v, 1);
      return;
    }
    case ir::Type::Kind::I32: {
      int32_t v = static_cast<int32_t>(value);
      std::memcpy(at(address, 4), &v, 4);
      return;
    }
    case ir::Type::Kind::I64:
    case ir::Type::Kind::Ptr: {
      std::memcpy(at(address, 8), &value, 8);
      return;
    }
    default:
      CAYMAN_ASSERT(false, "storeInt of non-integer type");
  }
}

void SimMemory::storeFloat(uint64_t address, const ir::Type* type,
                           double value) {
  if (type->kind() == ir::Type::Kind::F32) {
    float v = static_cast<float>(value);
    std::memcpy(at(address, 4), &v, 4);
    return;
  }
  CAYMAN_ASSERT(type->kind() == ir::Type::Kind::F64,
                "storeFloat of non-float type");
  std::memcpy(at(address, 8), &value, 8);
}

double SimMemory::readElemF64(const ir::GlobalArray* global,
                              uint64_t index) const {
  return loadFloat(baseOf(global) + index * global->elemType()->sizeBytes(),
                   global->elemType());
}

int64_t SimMemory::readElemI64(const ir::GlobalArray* global,
                               uint64_t index) const {
  return loadInt(baseOf(global) + index * global->elemType()->sizeBytes(),
                 global->elemType());
}

}  // namespace cayman::sim
