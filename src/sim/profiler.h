// Region profiler: joins interpreter execution counts with the wPST,
// producing the "profiling results R" of paper §III-B (duration and
// execution count for every program region).
#pragma once

#include "analysis/regions.h"
#include "sim/interpreter.h"

namespace cayman::sim {

class ProfileData {
 public:
  ProfileData(const analysis::WPst& wpst, const Interpreter::Result& run,
              const CpuCostModel& model);

  /// Whole-application cycle count (T_all in Eq. 1).
  double totalCycles() const { return totalCycles_; }

  /// Dynamic execution count of a block.
  uint64_t blockCount(const ir::BasicBlock* block) const;
  /// Cycles spent in a block across the run (count × static block cost).
  double blockCycles(const ir::BasicBlock* block) const;

  /// Times the region was entered (its anchor block's execution count).
  uint64_t entries(const analysis::Region* region) const;
  /// Total cycles spent inside the region across the run (T_cand when the
  /// region is selected). Excludes callee time — regions containing calls
  /// are not candidates.
  double cycles(const analysis::Region* region) const;
  /// cycles(region) / totalCycles().
  double hotFraction(const analysis::Region* region) const {
    return totalCycles_ <= 0 ? 0.0 : cycles(region) / totalCycles_;
  }

  /// Average iterations per entry, from profile (latch count / entries).
  double avgTripCount(const analysis::Loop* loop) const;

 private:
  const analysis::WPst& wpst_;
  std::unordered_map<const ir::BasicBlock*, uint64_t> counts_;
  std::unordered_map<const ir::BasicBlock*, double> cycles_;
  std::vector<double> regionCycles_;    // by region id
  std::vector<uint64_t> regionEntries_; // by region id
  double totalCycles_ = 0.0;
};

}  // namespace cayman::sim
