#include "sim/cpu_model.h"

#include "ir/basic_block.h"

namespace cayman::sim {

double CpuCostModel::cost(const ir::Instruction& inst) const {
  using ir::Opcode;
  switch (inst.opcode()) {
    case Opcode::Add: case Opcode::Sub: case Opcode::And: case Opcode::Or:
    case Opcode::Xor: case Opcode::Shl: case Opcode::AShr: case Opcode::LShr:
    case Opcode::ICmp: case Opcode::Select: case Opcode::Gep:
      return intAlu;
    case Opcode::Mul:
      return intMul;
    case Opcode::SDiv: case Opcode::SRem:
      return intDiv;
    case Opcode::FAdd: case Opcode::FSub: case Opcode::FNeg:
    case Opcode::FAbs: case Opcode::FMin: case Opcode::FMax:
      return fpAdd;
    case Opcode::FMul:
      return fpMul;
    case Opcode::FDiv:
      return fpDiv;
    case Opcode::FSqrt:
      return fpSqrt;
    case Opcode::FCmp:
      return fpCmp;
    case Opcode::ZExt: case Opcode::SExt: case Opcode::Trunc:
      return intAlu;
    case Opcode::SIToFP: case Opcode::FPToSI:
      return convert;
    case Opcode::Load:
      return load;
    case Opcode::Store:
      return store;
    case Opcode::Br: case Opcode::CondBr:
      return branch;
    case Opcode::Call: case Opcode::Ret:
      return call;
    case Opcode::Phi:
      return phi;
  }
  return intAlu;
}

double CpuCostModel::blockCost(const ir::BasicBlock& block) const {
  double total = 0.0;
  for (const auto& inst : block.instructions()) {
    total += cost(*inst);
    if (inst->opcode() != ir::Opcode::Phi) total += issueOverhead;
  }
  return total;
}

CpuCostModel CpuCostModel::cva6() { return CpuCostModel{}; }

}  // namespace cayman::sim
