// Pre-decoding pass: lowers an ir::Function into a dense, directly-executable
// micro-op stream so the interpreter's hot loop never touches a hash map.
//
// Decode-time resolution:
//   - every SSA value gets a fixed frame-slot index (arguments first, then
//     value-producing instructions);
//   - constants and global-array base addresses are interned into a per-
//     function constant pool whose slots are appended to the frame and
//     copied in once per activation;
//   - phi nodes disappear: each CFG edge into a block with phis becomes a
//     sequentialized parallel-copy sequence (one scratch slot breaks cycles)
//     followed by a jump, so block bodies are pure straight-line code;
//   - blocks get dense IDs, making per-block execution counts and cycle
//     costs plain array indexing.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cpu_model.h"
#include "sim/memory.h"

namespace cayman::sim {

/// One SSA value at runtime (integer or float payload per the static type).
struct Slot {
  int64_t i = 0;
  double f = 0.0;
};

/// Executable operation kinds. Mostly 1:1 with ir::Opcode, but memory ops are
/// split by payload type, SExt becomes MoveI, and control flow is lowered to
/// explicit pc-targeted jumps plus per-block accounting heads.
enum class MicroOpcode : uint16_t {
  BlockHead,  // b = dense block id: count, cycles, instruction accounting
  Add, Sub, Mul, SDiv, SRem, And, Or, Xor, Shl, AShr, LShr,
  FAdd, FSub, FMul, FDiv, FNeg, FSqrt, FAbs, FMin, FMax,
  ICmp,       // aux = ir::CmpPred
  FCmp,       // aux = ir::CmpPred
  SelectOp,   // a = cond, b = true slot, c = false slot
  ZExt,       // aux = source ir::Type::Kind
  MoveI,      // dst = {frame[a].i, 0.0} (SExt in this 64-bit-slot IR)
  Trunc,      // aux = destination ir::Type::Kind
  SIToFP,
  FPToSI,     // aux = destination ir::Type::Kind
  Gep,        // dst = frame[a].i + frame[b].i * imm
  // Memory ops specialized by access width at decode time (Ptr loads/stores
  // use the I64 forms). a = address slot for loads; a = value, b = address
  // for stores.
  LoadI1, LoadI32, LoadI64, LoadF32, LoadF64,
  StoreI1, StoreI32, StoreI64, StoreF32, StoreF64,
  Copy,       // dst = frame[a] (whole slot; phi edge moves)
  Jump,       // b = target pc
  CondJump,   // a = cond slot, b = pc if true, c = pc if false
  Call,       // imm = callee index, a = arg offset, b = arg count,
              // aux = 1 when dst receives the return value
  Ret,        // aux = 1 when a holds the returned slot
};

/// Fixed-size decoded operation. Field meaning depends on the opcode; for
/// plain compute ops dst/a/b/c are frame-slot indices. Integer arithmetic
/// carries the result ir::Type::Kind in aux so narrow results wrap exactly
/// like the tree-walking reference.
struct MicroOp {
  MicroOpcode op = MicroOpcode::BlockHead;
  uint16_t aux = 0;
  uint32_t dst = 0;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t c = 0;
  int64_t imm = 0;
};

/// One function lowered to a flat stream. Execution starts at ops[0] (the
/// entry block's BlockHead) and finishes at a Ret micro-op.
struct DecodedFunction {
  const ir::Function* source = nullptr;
  std::vector<MicroOp> ops;

  // Frame layout: [arguments | instruction results | constant pool | scratch].
  uint32_t numArgs = 0;
  uint32_t constBase = 0;
  uint32_t scratchSlot = 0;
  uint32_t frameSize = 0;
  std::vector<Slot> constPool;  // copied to frame[constBase..] per activation
  bool returnsValue = false;

  // Call micro-ops index these side tables (variable-length argument lists).
  std::vector<uint32_t> callArgSlots;
  std::vector<const ir::Function*> callees;

  // Dense per-block metadata, indexed by the id in BlockHead.b.
  std::vector<const ir::BasicBlock*> blockOf;
  std::vector<double> blockCost;
  std::vector<uint32_t> blockSize;

  size_t numBlocks() const { return blockOf.size(); }
};

class Decoder {
 public:
  /// Memory provides global base addresses (stable across SimMemory::reset);
  /// the cost model provides the per-block cycle costs baked into BlockHead
  /// accounting.
  Decoder(const SimMemory& memory, const CpuCostModel& model)
      : memory_(memory), model_(model) {}

  DecodedFunction decode(const ir::Function& function) const;

 private:
  const SimMemory& memory_;
  const CpuCostModel& model_;
};

}  // namespace cayman::sim
