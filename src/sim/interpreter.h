// IR interpreter with cycle accounting — Cayman's profiling substrate.
//
// Two execution engines share one Result shape:
//   - Decoded (default): each function is lowered once by sim::Decoder into a
//     flat micro-op stream; the hot loop is a tight switch over fixed-size
//     micro-ops with all operands pre-resolved to frame slots — no hash-map
//     access per dynamic instruction.
//   - Reference: the original tree-walking loop, kept as the semantic oracle
//     for golden-equivalence tests (results must be bit-identical).
#pragma once

#include <optional>
#include <span>
#include <unordered_map>

#include "sim/cpu_model.h"
#include "sim/decoder.h"
#include "sim/memory.h"
#include "support/cancellation.h"

namespace cayman::sim {

class Interpreter {
 public:
  enum class ExecMode { Decoded, Reference };

  explicit Interpreter(const ir::Module& module,
                       CpuCostModel model = CpuCostModel::cva6(),
                       ExecMode mode = ExecMode::Decoded);

  struct Result {
    double totalCycles = 0.0;
    uint64_t instructions = 0;
    std::unordered_map<const ir::BasicBlock*, uint64_t> blockCounts;
    std::optional<Slot> returnValue;

    uint64_t countOf(const ir::BasicBlock* block) const {
      auto it = blockCounts.find(block);
      return it == blockCounts.end() ? 0 : it->second;
    }
  };

  /// Executes the module's entry function. Integer arguments map
  /// positionally; missing arguments default to zero. Memory is reset to its
  /// initial image first, so repeated runs are deterministic.
  Result run(std::span<const int64_t> args = {});
  /// Executes a specific function (also from a freshly reset memory image).
  Result runFunction(const ir::Function& function,
                     std::span<const int64_t> args = {});

  ExecMode mode() const { return mode_; }
  void setMode(ExecMode mode) { mode_ = mode; }

  SimMemory& memory() { return memory_; }
  const SimMemory& memory() const { return memory_; }
  const CpuCostModel& costModel() const { return model_; }

  /// Abort execution after this many dynamic instructions (runaway guard).
  /// Tripping the limit throws a catchable cayman::Error; SimMemory stays
  /// valid and is reset on the next run.
  void setInstructionLimit(uint64_t limit) { instructionLimit_ = limit; }
  uint64_t instructionLimit() const { return instructionLimit_; }

  /// Cooperative cancellation: when set, the step loop polls the token at
  /// block granularity (rate-limited to every ~1k blocks so the steady-clock
  /// read stays off the hot path) and aborts with support::CancelledError.
  /// The token must outlive every run. Pass nullptr to detach.
  void setCancelToken(const support::CancelToken* token) { cancel_ = token; }

  struct DecodeStats {
    size_t functions = 0;
    size_t microOps = 0;
    size_t constants = 0;
  };
  /// Decodes every function in the module (normally decoding is lazy, per
  /// function, on first execution). With force, drops cached streams and
  /// re-decodes — used to benchmark decode time in isolation.
  DecodeStats predecodeAll(bool force = false);

 private:
  struct Numbering {
    std::unordered_map<const ir::Value*, int> index;
    int count = 0;
  };
  /// Decoded stream plus its dense execution-count accumulator (folded into
  /// Result::blockCounts at the end of each run).
  struct DecodedEntry {
    DecodedFunction df;
    std::vector<uint64_t> counts;
  };

  const Numbering& numberingFor(const ir::Function& function);
  DecodedEntry& decodedFor(const ir::Function& function);
  Slot execDecoded(DecodedEntry& entry, std::vector<Slot> args, Result& result,
                   int depth);
  Slot execReference(const ir::Function& function, std::vector<Slot> args,
                     Result& result, int depth);

  const ir::Module& module_;
  CpuCostModel model_;
  SimMemory memory_;
  ExecMode mode_;
  std::unordered_map<const ir::Function*, std::unique_ptr<DecodedEntry>>
      decoded_;
  std::unordered_map<const ir::Function*, Numbering> numberings_;
  std::unordered_map<const ir::BasicBlock*, double> blockCost_;
  uint64_t instructionLimit_ = 2'000'000'000;
  uint64_t executed_ = 0;
  const support::CancelToken* cancel_ = nullptr;
  uint64_t cancelTick_ = 0;
};

}  // namespace cayman::sim
