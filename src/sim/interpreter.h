// IR interpreter with cycle accounting — Cayman's profiling substrate.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>

#include "sim/cpu_model.h"
#include "sim/memory.h"

namespace cayman::sim {

/// One SSA value at runtime (integer or float payload per the static type).
struct Slot {
  int64_t i = 0;
  double f = 0.0;
};

class Interpreter {
 public:
  explicit Interpreter(const ir::Module& module,
                       CpuCostModel model = CpuCostModel::cva6());

  struct Result {
    double totalCycles = 0.0;
    uint64_t instructions = 0;
    std::unordered_map<const ir::BasicBlock*, uint64_t> blockCounts;
    std::optional<Slot> returnValue;

    uint64_t countOf(const ir::BasicBlock* block) const {
      auto it = blockCounts.find(block);
      return it == blockCounts.end() ? 0 : it->second;
    }
  };

  /// Executes the module's entry function. Integer arguments map
  /// positionally; missing arguments default to zero.
  Result run(std::span<const int64_t> args = {});
  /// Executes a specific function.
  Result runFunction(const ir::Function& function,
                     std::span<const int64_t> args = {});

  SimMemory& memory() { return memory_; }
  const SimMemory& memory() const { return memory_; }
  const CpuCostModel& costModel() const { return model_; }

  /// Abort execution after this many dynamic instructions (runaway guard).
  void setInstructionLimit(uint64_t limit) { instructionLimit_ = limit; }

 private:
  struct Numbering {
    std::unordered_map<const ir::Value*, int> index;
    int count = 0;
  };

  const Numbering& numberingFor(const ir::Function& function);
  Slot execFunction(const ir::Function& function, std::vector<Slot> args,
                    Result& result, int depth);

  const ir::Module& module_;
  CpuCostModel model_;
  SimMemory memory_;
  std::unordered_map<const ir::Function*, Numbering> numberings_;
  std::unordered_map<const ir::BasicBlock*, double> blockCost_;
  uint64_t instructionLimit_ = 2'000'000'000;
  uint64_t executed_ = 0;
};

}  // namespace cayman::sim
