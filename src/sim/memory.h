// Flat byte-addressed memory for the IR interpreter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "ir/module.h"

namespace cayman::sim {

/// Lays the module's globals out in one flat address space, applies explicit
/// initializers, and fills the rest with a deterministic pseudo-random
/// pattern so profiles are reproducible.
class SimMemory {
 public:
  explicit SimMemory(const ir::Module& module);

  uint64_t baseOf(const ir::GlobalArray* global) const;

  /// Restores every byte to the post-construction image (explicit
  /// initializers + deterministic fill), discarding all stores since. Global
  /// base addresses are unaffected, so decoded micro-op streams that folded
  /// them into immediates stay valid.
  void reset();

  int64_t loadInt(uint64_t address, const ir::Type* type) const;
  double loadFloat(uint64_t address, const ir::Type* type) const;
  void storeInt(uint64_t address, const ir::Type* type, int64_t value);
  void storeFloat(uint64_t address, const ir::Type* type, double value);

  /// Typed element accessors for tests and workload validation.
  double readElemF64(const ir::GlobalArray* global, uint64_t index) const;
  int64_t readElemI64(const ir::GlobalArray* global, uint64_t index) const;

  size_t sizeBytes() const { return bytes_.size(); }

  /// Bounds-checked raw access for the decoded interpreter's width-
  /// specialized load/store micro-ops; inline so the hot loop pays one
  /// compare instead of an out-of-line call plus a type switch.
  const std::byte* rawAt(uint64_t address, size_t size) const {
    CAYMAN_ASSERT(address >= kBase && address - kBase + size <= bytes_.size(),
                  "simulated memory access out of bounds at address " +
                      std::to_string(address));
    return bytes_.data() + (address - kBase);
  }
  std::byte* rawAt(uint64_t address, size_t size) {
    return const_cast<std::byte*>(
        static_cast<const SimMemory*>(this)->rawAt(address, size));
  }

 private:
  const std::byte* at(uint64_t address, size_t size) const;
  std::byte* at(uint64_t address, size_t size);

  static constexpr uint64_t kBase = 0x1000;

  std::vector<std::byte> bytes_;
  std::vector<std::byte> initialBytes_;
  std::map<const ir::GlobalArray*, uint64_t> bases_;
};

}  // namespace cayman::sim
