#include "sim/decoder.h"

#include <bit>
#include <map>
#include <unordered_map>
#include <utility>

#include "support/error.h"

namespace cayman::sim {

using ir::Opcode;

namespace {

/// Builder state for one decode() invocation.
struct DecodeCtx {
  DecodedFunction df;
  std::unordered_map<const ir::Value*, uint32_t> valueSlot;
  // Constants interned by bit pattern (covers int, fp, and global bases).
  std::map<std::pair<int64_t, int64_t>, uint32_t> constSlot;
  std::unordered_map<const ir::BasicBlock*, uint32_t> blockId;
  std::vector<uint32_t> blockEntryPc;
  // Jump/CondJump fields to patch with a block's entry pc once known.
  struct Fixup {
    size_t opIndex;
    int field;  // 1 = b, 2 = c
    uint32_t targetBlock;
  };
  std::vector<Fixup> fixups;
  // CondJump edges that need a phi parallel-copy trampoline.
  struct Trampoline {
    size_t opIndex;
    int field;
    const ir::BasicBlock* pred;
    const ir::BasicBlock* succ;
  };
  std::vector<Trampoline> trampolines;
};

MicroOpcode computeOpcodeFor(const ir::Instruction& inst) {
  switch (inst.opcode()) {
    case Opcode::Add: return MicroOpcode::Add;
    case Opcode::Sub: return MicroOpcode::Sub;
    case Opcode::Mul: return MicroOpcode::Mul;
    case Opcode::SDiv: return MicroOpcode::SDiv;
    case Opcode::SRem: return MicroOpcode::SRem;
    case Opcode::And: return MicroOpcode::And;
    case Opcode::Or: return MicroOpcode::Or;
    case Opcode::Xor: return MicroOpcode::Xor;
    case Opcode::Shl: return MicroOpcode::Shl;
    case Opcode::AShr: return MicroOpcode::AShr;
    case Opcode::LShr: return MicroOpcode::LShr;
    case Opcode::FAdd: return MicroOpcode::FAdd;
    case Opcode::FSub: return MicroOpcode::FSub;
    case Opcode::FMul: return MicroOpcode::FMul;
    case Opcode::FDiv: return MicroOpcode::FDiv;
    case Opcode::FNeg: return MicroOpcode::FNeg;
    case Opcode::FSqrt: return MicroOpcode::FSqrt;
    case Opcode::FAbs: return MicroOpcode::FAbs;
    case Opcode::FMin: return MicroOpcode::FMin;
    case Opcode::FMax: return MicroOpcode::FMax;
    case Opcode::ICmp: return MicroOpcode::ICmp;
    case Opcode::FCmp: return MicroOpcode::FCmp;
    case Opcode::Select: return MicroOpcode::SelectOp;
    case Opcode::ZExt: return MicroOpcode::ZExt;
    case Opcode::SExt: return MicroOpcode::MoveI;
    case Opcode::Trunc: return MicroOpcode::Trunc;
    case Opcode::SIToFP: return MicroOpcode::SIToFP;
    case Opcode::FPToSI: return MicroOpcode::FPToSI;
    case Opcode::Gep: return MicroOpcode::Gep;
    default:
      CAYMAN_ASSERT(false, "not a compute opcode");
  }
}

MicroOpcode loadOpcodeFor(const ir::Type* type) {
  switch (type->kind()) {
    case ir::Type::Kind::I1: return MicroOpcode::LoadI1;
    case ir::Type::Kind::I32: return MicroOpcode::LoadI32;
    case ir::Type::Kind::I64:
    case ir::Type::Kind::Ptr: return MicroOpcode::LoadI64;
    case ir::Type::Kind::F32: return MicroOpcode::LoadF32;
    case ir::Type::Kind::F64: return MicroOpcode::LoadF64;
    default:
      CAYMAN_ASSERT(false, "load of unsupported type");
  }
}

MicroOpcode storeOpcodeFor(const ir::Type* type) {
  switch (type->kind()) {
    case ir::Type::Kind::I1: return MicroOpcode::StoreI1;
    case ir::Type::Kind::I32: return MicroOpcode::StoreI32;
    case ir::Type::Kind::I64:
    case ir::Type::Kind::Ptr: return MicroOpcode::StoreI64;
    case ir::Type::Kind::F32: return MicroOpcode::StoreF32;
    case ir::Type::Kind::F64: return MicroOpcode::StoreF64;
    default:
      CAYMAN_ASSERT(false, "store of unsupported type");
  }
}

}  // namespace

DecodedFunction Decoder::decode(const ir::Function& function) const {
  DecodeCtx ctx;
  DecodedFunction& df = ctx.df;
  df.source = &function;
  df.returnsValue = !function.returnType()->isVoid();

  // --- Slot assignment: arguments, then value-producing instructions. ------
  df.numArgs = static_cast<uint32_t>(function.numArguments());
  uint32_t nextSlot = 0;
  for (const auto& arg : function.arguments()) {
    ctx.valueSlot[arg.get()] = nextSlot++;
  }
  for (const auto& block : function.blocks()) {
    for (const auto& inst : block->instructions()) {
      if (!inst->type()->isVoid()) ctx.valueSlot[inst.get()] = nextSlot++;
    }
  }
  df.constBase = nextSlot;

  auto slotOf = [&](const ir::Value* value) -> uint32_t {
    Slot constant;
    switch (value->valueKind()) {
      case ir::ValueKind::ConstantInt:
        constant = {static_cast<const ir::ConstantInt*>(value)->value(), 0.0};
        break;
      case ir::ValueKind::ConstantFP:
        constant = {0, static_cast<const ir::ConstantFP*>(value)->value()};
        break;
      case ir::ValueKind::GlobalArray:
        constant = {static_cast<int64_t>(memory_.baseOf(
                        static_cast<const ir::GlobalArray*>(value))),
                    0.0};
        break;
      default: {
        auto it = ctx.valueSlot.find(value);
        CAYMAN_ASSERT(it != ctx.valueSlot.end(),
                      "value not numbered in " + function.name());
        return it->second;
      }
    }
    auto key = std::make_pair(constant.i, std::bit_cast<int64_t>(constant.f));
    auto [it, inserted] = ctx.constSlot.emplace(
        key, df.constBase + static_cast<uint32_t>(df.constPool.size()));
    if (inserted) df.constPool.push_back(constant);
    return it->second;
  };

  // --- Dense block metadata. ------------------------------------------------
  for (const auto& block : function.blocks()) {
    ctx.blockId[block.get()] = static_cast<uint32_t>(df.blockOf.size());
    df.blockOf.push_back(block.get());
    df.blockCost.push_back(model_.blockCost(*block));
    df.blockSize.push_back(static_cast<uint32_t>(block->size()));
  }
  ctx.blockEntryPc.assign(df.numBlocks(), 0);
  CAYMAN_ASSERT(function.entry()->phis().empty(), "phi in entry block");

  // Sequentializes the parallel copy set of edge pred->succ. Emitted copies
  // never read a slot already written by an earlier copy of the sequence;
  // cycles are broken through the scratch slot (set post-layout, see below).
  constexpr uint32_t kScratch = UINT32_MAX;
  auto emitEdgeCopies = [&](const ir::BasicBlock* pred,
                            const ir::BasicBlock* succ) {
    std::vector<std::pair<uint32_t, uint32_t>> pending;  // (dst, src)
    for (const ir::Instruction* phi : succ->phis()) {
      uint32_t dst = ctx.valueSlot.at(phi);
      uint32_t src = slotOf(phi->incomingValueFor(pred));
      if (dst != src) pending.emplace_back(dst, src);
    }
    auto emitCopy = [&](uint32_t dst, uint32_t src) {
      MicroOp op;
      op.op = MicroOpcode::Copy;
      op.dst = dst;
      op.a = src;
      df.ops.push_back(op);
    };
    while (!pending.empty()) {
      bool progressed = false;
      for (size_t i = 0; i < pending.size(); ++i) {
        uint32_t dst = pending[i].first;
        bool isSource = false;
        for (size_t j = 0; j < pending.size(); ++j) {
          if (j != i && pending[j].second == dst) { isSource = true; break; }
        }
        if (isSource) continue;
        emitCopy(dst, pending[i].second);
        pending.erase(pending.begin() + static_cast<long>(i));
        progressed = true;
        --i;
      }
      if (progressed || pending.empty()) continue;
      // Every remaining destination is still needed as a source: a cycle.
      // Park one destination in scratch and redirect its readers there.
      uint32_t parked = pending.front().first;
      emitCopy(kScratch, parked);
      for (auto& copy : pending) {
        if (copy.second == parked) copy.second = kScratch;
      }
    }
  };

  // --- Emit blocks in layout order. -----------------------------------------
  for (const auto& blockPtr : function.blocks()) {
    const ir::BasicBlock* block = blockPtr.get();
    uint32_t id = ctx.blockId.at(block);
    ctx.blockEntryPc[id] = static_cast<uint32_t>(df.ops.size());
    {
      MicroOp head;
      head.op = MicroOpcode::BlockHead;
      head.b = id;
      df.ops.push_back(head);
    }
    CAYMAN_ASSERT(block->hasTerminator(),
                  "block " + block->name() + " lacks a terminator");
    for (const auto& instPtr : block->instructions()) {
      const ir::Instruction* inst = instPtr.get();
      switch (inst->opcode()) {
        case Opcode::Phi:
          continue;  // materialized on incoming edges
        case Opcode::Br: {
          const ir::BasicBlock* succ = inst->successors()[0];
          emitEdgeCopies(block, succ);
          MicroOp op;
          op.op = MicroOpcode::Jump;
          ctx.fixups.push_back({df.ops.size(), 1, ctx.blockId.at(succ)});
          df.ops.push_back(op);
          break;
        }
        case Opcode::CondBr: {
          MicroOp op;
          op.op = MicroOpcode::CondJump;
          op.a = slotOf(inst->operand(0));
          size_t opIndex = df.ops.size();
          df.ops.push_back(op);
          const ir::BasicBlock* succs[2] = {inst->successors()[0],
                                            inst->successors()[1]};
          for (int field = 1; field <= 2; ++field) {
            const ir::BasicBlock* succ = succs[field - 1];
            if (succ->phis().empty()) {
              ctx.fixups.push_back({opIndex, field, ctx.blockId.at(succ)});
            } else {
              ctx.trampolines.push_back({opIndex, field, block, succ});
            }
          }
          break;
        }
        case Opcode::Ret: {
          MicroOp op;
          op.op = MicroOpcode::Ret;
          if (inst->numOperands() == 1) {
            op.aux = 1;
            op.a = slotOf(inst->operand(0));
          }
          df.ops.push_back(op);
          break;
        }
        case Opcode::Call: {
          MicroOp op;
          op.op = MicroOpcode::Call;
          op.imm = static_cast<int64_t>(df.callees.size());
          df.callees.push_back(inst->callee());
          op.a = static_cast<uint32_t>(df.callArgSlots.size());
          op.b = static_cast<uint32_t>(inst->numOperands());
          for (const ir::Value* operand : inst->operands()) {
            df.callArgSlots.push_back(slotOf(operand));
          }
          if (!inst->type()->isVoid()) {
            op.aux = 1;
            op.dst = ctx.valueSlot.at(inst);
          }
          df.ops.push_back(op);
          break;
        }
        case Opcode::Load: {
          MicroOp op;
          op.op = loadOpcodeFor(inst->type());
          op.dst = ctx.valueSlot.at(inst);
          op.a = slotOf(inst->operand(0));
          df.ops.push_back(op);
          break;
        }
        case Opcode::Store: {
          MicroOp op;
          op.op = storeOpcodeFor(inst->operand(0)->type());
          op.a = slotOf(inst->operand(0));
          op.b = slotOf(inst->operand(1));
          df.ops.push_back(op);
          break;
        }
        default: {
          MicroOp op;
          op.op = computeOpcodeFor(*inst);
          op.dst = ctx.valueSlot.at(inst);
          op.a = slotOf(inst->operand(0));
          if (inst->numOperands() > 1) op.b = slotOf(inst->operand(1));
          if (inst->numOperands() > 2) op.c = slotOf(inst->operand(2));
          switch (inst->opcode()) {
            case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
            case Opcode::SDiv: case Opcode::SRem: case Opcode::Shl:
            case Opcode::Trunc: case Opcode::FPToSI:
              op.aux = static_cast<uint16_t>(inst->type()->kind());
              break;
            case Opcode::ZExt:
              op.aux = static_cast<uint16_t>(inst->operand(0)->type()->kind());
              break;
            case Opcode::ICmp: case Opcode::FCmp:
              op.aux = static_cast<uint16_t>(inst->cmpPred());
              break;
            case Opcode::Gep:
              op.imm = static_cast<int64_t>(inst->gepElemSize());
              break;
            default:
              break;
          }
          df.ops.push_back(op);
          break;
        }
      }
    }
  }

  // --- Phi-edge trampolines for conditional branches. -----------------------
  for (const DecodeCtx::Trampoline& tramp : ctx.trampolines) {
    uint32_t pc = static_cast<uint32_t>(df.ops.size());
    emitEdgeCopies(tramp.pred, tramp.succ);
    MicroOp op;
    op.op = MicroOpcode::Jump;
    ctx.fixups.push_back({df.ops.size(), 1, ctx.blockId.at(tramp.succ)});
    df.ops.push_back(op);
    MicroOp& site = df.ops[tramp.opIndex];
    (tramp.field == 1 ? site.b : site.c) = pc;
  }

  // --- Patch direct jump targets. -------------------------------------------
  for (const DecodeCtx::Fixup& fixup : ctx.fixups) {
    MicroOp& site = df.ops[fixup.opIndex];
    (fixup.field == 1 ? site.b : site.c) = ctx.blockEntryPc[fixup.targetBlock];
  }

  // --- Final frame layout; rewrite parked scratch references. ---------------
  df.scratchSlot = df.constBase + static_cast<uint32_t>(df.constPool.size());
  df.frameSize = df.scratchSlot + 1;
  for (MicroOp& op : df.ops) {
    if (op.op != MicroOpcode::Copy) continue;
    if (op.dst == kScratch) op.dst = df.scratchSlot;
    if (op.a == kScratch) op.a = df.scratchSlot;
  }
  return df;
}

}  // namespace cayman::sim
