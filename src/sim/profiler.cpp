#include "sim/profiler.h"

namespace cayman::sim {

ProfileData::ProfileData(const analysis::WPst& wpst,
                         const Interpreter::Result& run,
                         const CpuCostModel& model)
    : wpst_(wpst), totalCycles_(run.totalCycles) {
  for (const auto& [block, count] : run.blockCounts) {
    counts_[block] = count;
    cycles_[block] = static_cast<double>(count) * model.blockCost(*block);
  }

  regionCycles_.assign(wpst.allRegions().size(), 0.0);
  regionEntries_.assign(wpst.allRegions().size(), 0);
  for (const analysis::Region* region : wpst.allRegions()) {
    double total = 0.0;
    for (const ir::BasicBlock* block : region->blocks()) {
      total += blockCycles(block);
    }
    regionCycles_[static_cast<size_t>(region->id())] = total;
    if (region->profileAnchor() != nullptr) {
      regionEntries_[static_cast<size_t>(region->id())] =
          blockCount(region->profileAnchor());
    }
  }
}

uint64_t ProfileData::blockCount(const ir::BasicBlock* block) const {
  auto it = counts_.find(block);
  return it == counts_.end() ? 0 : it->second;
}

double ProfileData::blockCycles(const ir::BasicBlock* block) const {
  auto it = cycles_.find(block);
  return it == cycles_.end() ? 0.0 : it->second;
}

uint64_t ProfileData::entries(const analysis::Region* region) const {
  return regionEntries_.at(static_cast<size_t>(region->id()));
}

double ProfileData::cycles(const analysis::Region* region) const {
  return regionCycles_.at(static_cast<size_t>(region->id()));
}

double ProfileData::avgTripCount(const analysis::Loop* loop) const {
  uint64_t iterations = blockCount(loop->latch());
  uint64_t entries = loop->preheader() != nullptr
                         ? blockCount(loop->preheader())
                         : 1;
  if (entries == 0) return 0.0;
  return static_cast<double>(iterations) / static_cast<double>(entries);
}

}  // namespace cayman::sim
