#include "sim/interpreter.h"

#include <cmath>

namespace cayman::sim {

using ir::Opcode;

Interpreter::Interpreter(const ir::Module& module, CpuCostModel model)
    : module_(module), model_(model), memory_(module) {}

const Interpreter::Numbering& Interpreter::numberingFor(
    const ir::Function& function) {
  auto it = numberings_.find(&function);
  if (it != numberings_.end()) return it->second;
  Numbering numbering;
  for (const auto& arg : function.arguments()) {
    numbering.index[arg.get()] = numbering.count++;
  }
  for (const auto& block : function.blocks()) {
    for (const auto& inst : block->instructions()) {
      numbering.index[inst.get()] = numbering.count++;
    }
    blockCost_[block.get()] = model_.blockCost(*block);
  }
  return numberings_.emplace(&function, std::move(numbering)).first->second;
}

Interpreter::Result Interpreter::run(std::span<const int64_t> args) {
  return runFunction(*module_.entryFunction(), args);
}

Interpreter::Result Interpreter::runFunction(const ir::Function& function,
                                             std::span<const int64_t> args) {
  Result result;
  std::vector<Slot> slots(function.numArguments());
  for (size_t i = 0; i < function.numArguments(); ++i) {
    Slot slot;
    if (i < args.size()) {
      if (function.argument(i)->type()->isFloat()) {
        slot.f = static_cast<double>(args[i]);
      } else {
        slot.i = args[i];
      }
    }
    slots[i] = slot;
  }
  executed_ = 0;
  Slot returnValue = execFunction(function, std::move(slots), result, 0);
  if (!function.returnType()->isVoid()) result.returnValue = returnValue;
  return result;
}

namespace {

int64_t wrapInt(const ir::Type* type, int64_t value) {
  switch (type->kind()) {
    case ir::Type::Kind::I1: return value & 1;
    case ir::Type::Kind::I32: return static_cast<int32_t>(value);
    default: return value;
  }
}

bool compareInt(ir::CmpPred pred, int64_t a, int64_t b) {
  switch (pred) {
    case ir::CmpPred::EQ: return a == b;
    case ir::CmpPred::NE: return a != b;
    case ir::CmpPred::LT: return a < b;
    case ir::CmpPred::LE: return a <= b;
    case ir::CmpPred::GT: return a > b;
    case ir::CmpPred::GE: return a >= b;
  }
  return false;
}

bool compareFloat(ir::CmpPred pred, double a, double b) {
  switch (pred) {
    case ir::CmpPred::EQ: return a == b;
    case ir::CmpPred::NE: return a != b;
    case ir::CmpPred::LT: return a < b;
    case ir::CmpPred::LE: return a <= b;
    case ir::CmpPred::GT: return a > b;
    case ir::CmpPred::GE: return a >= b;
  }
  return false;
}

}  // namespace

Slot Interpreter::execFunction(const ir::Function& function,
                               std::vector<Slot> args, Result& result,
                               int depth) {
  CAYMAN_ASSERT(depth < 64, "interpreter call depth exceeded");
  const Numbering& numbering = numberingFor(function);
  std::vector<Slot> frame(static_cast<size_t>(numbering.count));
  for (size_t i = 0; i < args.size(); ++i) frame[i] = args[i];

  auto slotOf = [&](const ir::Value* value) -> Slot {
    switch (value->valueKind()) {
      case ir::ValueKind::ConstantInt:
        return {static_cast<const ir::ConstantInt*>(value)->value(), 0.0};
      case ir::ValueKind::ConstantFP:
        return {0, static_cast<const ir::ConstantFP*>(value)->value()};
      case ir::ValueKind::GlobalArray:
        return {static_cast<int64_t>(memory_.baseOf(
                    static_cast<const ir::GlobalArray*>(value))),
                0.0};
      default: {
        auto it = numbering.index.find(value);
        CAYMAN_ASSERT(it != numbering.index.end(),
                      "value not numbered in " + function.name());
        return frame[static_cast<size_t>(it->second)];
      }
    }
  };
  auto setSlot = [&](const ir::Instruction* inst, Slot slot) {
    frame[static_cast<size_t>(numbering.index.at(inst))] = slot;
  };

  const ir::BasicBlock* block = function.entry();
  const ir::BasicBlock* previous = nullptr;
  std::vector<Slot> phiBuffer;

  while (true) {
    ++result.blockCounts[block];
    result.totalCycles += blockCost_.at(block);
    result.instructions += block->size();
    executed_ += block->size();
    CAYMAN_ASSERT(executed_ <= instructionLimit_,
                  "instruction limit exceeded in " + function.name());

    // Phase 1: evaluate all phis against the incoming edge, then commit,
    // so mutually-referencing phis see pre-transfer values.
    std::vector<ir::Instruction*> phis = block->phis();
    if (!phis.empty()) {
      CAYMAN_ASSERT(previous != nullptr, "phi in entry block");
      phiBuffer.clear();
      for (ir::Instruction* phi : phis) {
        phiBuffer.push_back(slotOf(phi->incomingValueFor(previous)));
      }
      for (size_t i = 0; i < phis.size(); ++i) setSlot(phis[i], phiBuffer[i]);
    }

    for (size_t idx = phis.size(); idx < block->instructions().size(); ++idx) {
      const ir::Instruction* inst = block->instructions()[idx].get();
      switch (inst->opcode()) {
        case Opcode::Add:
          setSlot(inst, {wrapInt(inst->type(), slotOf(inst->operand(0)).i +
                                                   slotOf(inst->operand(1)).i),
                         0.0});
          break;
        case Opcode::Sub:
          setSlot(inst, {wrapInt(inst->type(), slotOf(inst->operand(0)).i -
                                                   slotOf(inst->operand(1)).i),
                         0.0});
          break;
        case Opcode::Mul:
          setSlot(inst, {wrapInt(inst->type(), slotOf(inst->operand(0)).i *
                                                   slotOf(inst->operand(1)).i),
                         0.0});
          break;
        case Opcode::SDiv: {
          int64_t divisor = slotOf(inst->operand(1)).i;
          setSlot(inst,
                  {divisor == 0 ? 0
                                : wrapInt(inst->type(),
                                          slotOf(inst->operand(0)).i / divisor),
                   0.0});
          break;
        }
        case Opcode::SRem: {
          int64_t divisor = slotOf(inst->operand(1)).i;
          setSlot(inst,
                  {divisor == 0 ? 0
                                : wrapInt(inst->type(),
                                          slotOf(inst->operand(0)).i % divisor),
                   0.0});
          break;
        }
        case Opcode::And:
          setSlot(inst, {slotOf(inst->operand(0)).i &
                             slotOf(inst->operand(1)).i,
                         0.0});
          break;
        case Opcode::Or:
          setSlot(inst, {slotOf(inst->operand(0)).i |
                             slotOf(inst->operand(1)).i,
                         0.0});
          break;
        case Opcode::Xor:
          setSlot(inst, {slotOf(inst->operand(0)).i ^
                             slotOf(inst->operand(1)).i,
                         0.0});
          break;
        case Opcode::Shl:
          setSlot(inst, {wrapInt(inst->type(),
                                 slotOf(inst->operand(0)).i
                                     << (slotOf(inst->operand(1)).i & 63)),
                         0.0});
          break;
        case Opcode::AShr:
          setSlot(inst, {slotOf(inst->operand(0)).i >>
                             (slotOf(inst->operand(1)).i & 63),
                         0.0});
          break;
        case Opcode::LShr:
          setSlot(inst,
                  {static_cast<int64_t>(
                       static_cast<uint64_t>(slotOf(inst->operand(0)).i) >>
                       (slotOf(inst->operand(1)).i & 63)),
                   0.0});
          break;
        case Opcode::FAdd:
          setSlot(inst, {0, slotOf(inst->operand(0)).f +
                                slotOf(inst->operand(1)).f});
          break;
        case Opcode::FSub:
          setSlot(inst, {0, slotOf(inst->operand(0)).f -
                                slotOf(inst->operand(1)).f});
          break;
        case Opcode::FMul:
          setSlot(inst, {0, slotOf(inst->operand(0)).f *
                                slotOf(inst->operand(1)).f});
          break;
        case Opcode::FDiv:
          setSlot(inst, {0, slotOf(inst->operand(0)).f /
                                slotOf(inst->operand(1)).f});
          break;
        case Opcode::FNeg:
          setSlot(inst, {0, -slotOf(inst->operand(0)).f});
          break;
        case Opcode::FSqrt:
          setSlot(inst, {0, std::sqrt(std::fabs(slotOf(inst->operand(0)).f))});
          break;
        case Opcode::FAbs:
          setSlot(inst, {0, std::fabs(slotOf(inst->operand(0)).f)});
          break;
        case Opcode::FMin:
          setSlot(inst, {0, std::fmin(slotOf(inst->operand(0)).f,
                                      slotOf(inst->operand(1)).f)});
          break;
        case Opcode::FMax:
          setSlot(inst, {0, std::fmax(slotOf(inst->operand(0)).f,
                                      slotOf(inst->operand(1)).f)});
          break;
        case Opcode::ICmp:
          setSlot(inst, {compareInt(inst->cmpPred(),
                                    slotOf(inst->operand(0)).i,
                                    slotOf(inst->operand(1)).i)
                             ? 1
                             : 0,
                         0.0});
          break;
        case Opcode::FCmp:
          setSlot(inst, {compareFloat(inst->cmpPred(),
                                      slotOf(inst->operand(0)).f,
                                      slotOf(inst->operand(1)).f)
                             ? 1
                             : 0,
                         0.0});
          break;
        case Opcode::Select:
          setSlot(inst, slotOf(inst->operand(0)).i != 0
                            ? slotOf(inst->operand(1))
                            : slotOf(inst->operand(2)));
          break;
        case Opcode::ZExt: {
          int64_t v = slotOf(inst->operand(0)).i;
          const ir::Type* from = inst->operand(0)->type();
          if (from->kind() == ir::Type::Kind::I32) {
            v = static_cast<int64_t>(static_cast<uint32_t>(v));
          } else if (from->kind() == ir::Type::Kind::I1) {
            v &= 1;
          }
          setSlot(inst, {v, 0.0});
          break;
        }
        case Opcode::SExt:
          setSlot(inst, {slotOf(inst->operand(0)).i, 0.0});
          break;
        case Opcode::Trunc:
          setSlot(inst,
                  {wrapInt(inst->type(), slotOf(inst->operand(0)).i), 0.0});
          break;
        case Opcode::SIToFP:
          setSlot(inst,
                  {0, static_cast<double>(slotOf(inst->operand(0)).i)});
          break;
        case Opcode::FPToSI:
          setSlot(inst, {wrapInt(inst->type(), static_cast<int64_t>(
                                                   slotOf(inst->operand(0)).f)),
                         0.0});
          break;
        case Opcode::Gep:
          setSlot(inst,
                  {slotOf(inst->operand(0)).i +
                       slotOf(inst->operand(1)).i *
                           static_cast<int64_t>(inst->gepElemSize()),
                   0.0});
          break;
        case Opcode::Load: {
          uint64_t address =
              static_cast<uint64_t>(slotOf(inst->operand(0)).i);
          if (inst->type()->isFloat()) {
            setSlot(inst, {0, memory_.loadFloat(address, inst->type())});
          } else {
            setSlot(inst, {memory_.loadInt(address, inst->type()), 0.0});
          }
          break;
        }
        case Opcode::Store: {
          uint64_t address =
              static_cast<uint64_t>(slotOf(inst->operand(1)).i);
          const ir::Type* type = inst->operand(0)->type();
          if (type->isFloat()) {
            memory_.storeFloat(address, type, slotOf(inst->operand(0)).f);
          } else {
            memory_.storeInt(address, type, slotOf(inst->operand(0)).i);
          }
          break;
        }
        case Opcode::Call: {
          std::vector<Slot> callArgs;
          callArgs.reserve(inst->numOperands());
          for (const ir::Value* operand : inst->operands()) {
            callArgs.push_back(slotOf(operand));
          }
          Slot ret = execFunction(*inst->callee(), std::move(callArgs),
                                  result, depth + 1);
          if (!inst->type()->isVoid()) setSlot(inst, ret);
          break;
        }
        case Opcode::Br:
          previous = block;
          block = inst->successors()[0];
          goto nextBlock;
        case Opcode::CondBr:
          previous = block;
          block = slotOf(inst->operand(0)).i != 0 ? inst->successors()[0]
                                                  : inst->successors()[1];
          goto nextBlock;
        case Opcode::Ret:
          return inst->numOperands() == 1 ? slotOf(inst->operand(0)) : Slot{};
        case Opcode::Phi:
          CAYMAN_ASSERT(false, "phi after non-phi instructions");
      }
    }
    CAYMAN_ASSERT(false, "block fell through without terminator");
  nextBlock:;
  }
}

}  // namespace cayman::sim
