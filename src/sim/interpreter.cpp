#include "sim/interpreter.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "support/trace.h"

namespace cayman::sim {

using ir::Opcode;

Interpreter::Interpreter(const ir::Module& module, CpuCostModel model,
                         ExecMode mode)
    : module_(module), model_(model), memory_(module), mode_(mode) {}

const Interpreter::Numbering& Interpreter::numberingFor(
    const ir::Function& function) {
  auto it = numberings_.find(&function);
  if (it != numberings_.end()) return it->second;
  Numbering numbering;
  for (const auto& arg : function.arguments()) {
    numbering.index[arg.get()] = numbering.count++;
  }
  for (const auto& block : function.blocks()) {
    for (const auto& inst : block->instructions()) {
      numbering.index[inst.get()] = numbering.count++;
    }
    blockCost_[block.get()] = model_.blockCost(*block);
  }
  return numberings_.emplace(&function, std::move(numbering)).first->second;
}

Interpreter::DecodedEntry& Interpreter::decodedFor(
    const ir::Function& function) {
  auto it = decoded_.find(&function);
  if (it != decoded_.end()) return *it->second;
  auto entry = std::make_unique<DecodedEntry>();
  entry->df = Decoder(memory_, model_).decode(function);
  entry->counts.assign(entry->df.numBlocks(), 0);
  return *decoded_.emplace(&function, std::move(entry)).first->second;
}

Interpreter::DecodeStats Interpreter::predecodeAll(bool force) {
  if (force) decoded_.clear();
  DecodeStats stats;
  for (const auto& function : module_.functions()) {
    const DecodedEntry& entry = decodedFor(*function);
    ++stats.functions;
    stats.microOps += entry.df.ops.size();
    stats.constants += entry.df.constPool.size();
  }
  return stats;
}

Interpreter::Result Interpreter::run(std::span<const int64_t> args) {
  return runFunction(*module_.entryFunction(), args);
}

Interpreter::Result Interpreter::runFunction(const ir::Function& function,
                                             std::span<const int64_t> args) {
  memory_.reset();
  Result result;
  std::vector<Slot> slots(function.numArguments());
  for (size_t i = 0; i < function.numArguments(); ++i) {
    Slot slot;
    if (i < args.size()) {
      if (function.argument(i)->type()->isFloat()) {
        slot.f = static_cast<double>(args[i]);
      } else {
        slot.i = args[i];
      }
    }
    slots[i] = slot;
  }
  executed_ = 0;
  cancelTick_ = 0;
  Slot returnValue;
  if (mode_ == ExecMode::Decoded) {
    returnValue =
        execDecoded(decodedFor(function), std::move(slots), result, 0);
    // Map dense per-function counts back onto BasicBlock pointers.
    for (auto& [fn, entry] : decoded_) {
      for (size_t i = 0; i < entry->counts.size(); ++i) {
        if (entry->counts[i] == 0) continue;
        result.blockCounts[entry->df.blockOf[i]] += entry->counts[i];
        entry->counts[i] = 0;
      }
    }
  } else {
    returnValue = execReference(function, std::move(slots), result, 0);
  }
  if (!function.returnType()->isVoid()) result.returnValue = returnValue;
  if (support::trace::on()) {
    support::trace::count("interp.runs", 1);
    support::trace::count("interp.instructions", result.instructions);
    uint64_t blocks = 0;
    for (const auto& [block, blockCount] : result.blockCounts) {
      (void)block;
      blocks += blockCount;
    }
    support::trace::count("interp.blocks", blocks);
  }
  return result;
}

namespace {

int64_t wrapInt(const ir::Type* type, int64_t value) {
  switch (type->kind()) {
    case ir::Type::Kind::I1: return value & 1;
    case ir::Type::Kind::I32: return static_cast<int32_t>(value);
    default: return value;
  }
}

/// Decoded-path variant keyed by the Type::Kind baked into MicroOp::aux.
int64_t wrapKind(uint16_t kind, int64_t value) {
  switch (static_cast<ir::Type::Kind>(kind)) {
    case ir::Type::Kind::I1: return value & 1;
    case ir::Type::Kind::I32: return static_cast<int32_t>(value);
    default: return value;
  }
}

/// Two's-complement wrapping arithmetic via unsigned casts: signed overflow
/// is UB in C++, but several workloads (hash mixing, LCG-style token
/// scramblers) rely on i64 wraparound. Results are identical to what the
/// hardware produced before; UBSan now agrees.
int64_t wrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}

int64_t wrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}

int64_t wrapMul(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) *
                              static_cast<uint64_t>(b));
}

int64_t wrapShl(int64_t a, int64_t shift) {
  return static_cast<int64_t>(static_cast<uint64_t>(a)
                              << (shift & 63));
}

/// Division guarded against the two C++-undefined cases: x/0 (defined here as
/// 0, matching the pre-existing contract) and INT64_MIN / -1 (defined as the
/// two's-complement wrap, INT64_MIN).
int64_t safeSDiv(int64_t a, int64_t b) {
  if (b == 0) return 0;
  if (a == std::numeric_limits<int64_t>::min() && b == -1) return a;
  return a / b;
}

int64_t safeSRem(int64_t a, int64_t b) {
  if (b == 0) return 0;
  if (a == std::numeric_limits<int64_t>::min() && b == -1) return 0;
  return a % b;
}

bool compareInt(ir::CmpPred pred, int64_t a, int64_t b) {
  switch (pred) {
    case ir::CmpPred::EQ: return a == b;
    case ir::CmpPred::NE: return a != b;
    case ir::CmpPred::LT: return a < b;
    case ir::CmpPred::LE: return a <= b;
    case ir::CmpPred::GT: return a > b;
    case ir::CmpPred::GE: return a >= b;
  }
  return false;
}

bool compareFloat(ir::CmpPred pred, double a, double b) {
  switch (pred) {
    case ir::CmpPred::EQ: return a == b;
    case ir::CmpPred::NE: return a != b;
    case ir::CmpPred::LT: return a < b;
    case ir::CmpPred::LE: return a <= b;
    case ir::CmpPred::GT: return a > b;
    case ir::CmpPred::GE: return a >= b;
  }
  return false;
}

[[noreturn]] void throwInstructionLimit(const std::string& functionName,
                                        uint64_t limit) {
  throw Error("instruction limit exceeded in " + functionName + " (" +
              std::to_string(limit) + " dynamic instructions)");
}

}  // namespace

Slot Interpreter::execDecoded(DecodedEntry& entry, std::vector<Slot> args,
                              Result& result, int depth) {
  CAYMAN_ASSERT(depth < 64, "interpreter call depth exceeded");
  const DecodedFunction& df = entry.df;
  std::vector<Slot> frame(df.frameSize);
  for (size_t i = 0; i < args.size(); ++i) frame[i] = args[i];
  for (size_t i = 0; i < df.constPool.size(); ++i) {
    frame[df.constBase + i] = df.constPool[i];
  }

  Slot* f = frame.data();
  const MicroOp* ops = df.ops.data();
  uint64_t* counts = entry.counts.data();
  uint32_t pc = 0;
  for (;;) {
    const MicroOp& u = ops[pc];
    switch (u.op) {
      case MicroOpcode::BlockHead: {
        uint32_t id = u.b;
        ++counts[id];
        result.totalCycles += df.blockCost[id];
        result.instructions += df.blockSize[id];
        executed_ += df.blockSize[id];
        if (executed_ > instructionLimit_) {
          throwInstructionLimit(df.source->name(), instructionLimit_);
        }
        if (cancel_ != nullptr && (++cancelTick_ & 0x3FF) == 0) {
          cancel_->check(support::Stage::Profile, df.source->name());
        }
        ++pc;
        break;
      }
      case MicroOpcode::Add:
        f[u.dst] = {wrapKind(u.aux, wrapAdd(f[u.a].i, f[u.b].i)), 0.0};
        ++pc;
        break;
      case MicroOpcode::Sub:
        f[u.dst] = {wrapKind(u.aux, wrapSub(f[u.a].i, f[u.b].i)), 0.0};
        ++pc;
        break;
      case MicroOpcode::Mul:
        f[u.dst] = {wrapKind(u.aux, wrapMul(f[u.a].i, f[u.b].i)), 0.0};
        ++pc;
        break;
      case MicroOpcode::SDiv:
        f[u.dst] = {wrapKind(u.aux, safeSDiv(f[u.a].i, f[u.b].i)), 0.0};
        ++pc;
        break;
      case MicroOpcode::SRem:
        f[u.dst] = {wrapKind(u.aux, safeSRem(f[u.a].i, f[u.b].i)), 0.0};
        ++pc;
        break;
      case MicroOpcode::And:
        f[u.dst] = {f[u.a].i & f[u.b].i, 0.0};
        ++pc;
        break;
      case MicroOpcode::Or:
        f[u.dst] = {f[u.a].i | f[u.b].i, 0.0};
        ++pc;
        break;
      case MicroOpcode::Xor:
        f[u.dst] = {f[u.a].i ^ f[u.b].i, 0.0};
        ++pc;
        break;
      case MicroOpcode::Shl:
        f[u.dst] = {wrapKind(u.aux, wrapShl(f[u.a].i, f[u.b].i)), 0.0};
        ++pc;
        break;
      case MicroOpcode::AShr:
        f[u.dst] = {f[u.a].i >> (f[u.b].i & 63), 0.0};
        ++pc;
        break;
      case MicroOpcode::LShr:
        f[u.dst] = {static_cast<int64_t>(static_cast<uint64_t>(f[u.a].i) >>
                                         (f[u.b].i & 63)),
                    0.0};
        ++pc;
        break;
      case MicroOpcode::FAdd:
        f[u.dst] = {0, f[u.a].f + f[u.b].f};
        ++pc;
        break;
      case MicroOpcode::FSub:
        f[u.dst] = {0, f[u.a].f - f[u.b].f};
        ++pc;
        break;
      case MicroOpcode::FMul:
        f[u.dst] = {0, f[u.a].f * f[u.b].f};
        ++pc;
        break;
      case MicroOpcode::FDiv:
        f[u.dst] = {0, f[u.a].f / f[u.b].f};
        ++pc;
        break;
      case MicroOpcode::FNeg:
        f[u.dst] = {0, -f[u.a].f};
        ++pc;
        break;
      case MicroOpcode::FSqrt:
        f[u.dst] = {0, std::sqrt(std::fabs(f[u.a].f))};
        ++pc;
        break;
      case MicroOpcode::FAbs:
        f[u.dst] = {0, std::fabs(f[u.a].f)};
        ++pc;
        break;
      case MicroOpcode::FMin:
        f[u.dst] = {0, std::fmin(f[u.a].f, f[u.b].f)};
        ++pc;
        break;
      case MicroOpcode::FMax:
        f[u.dst] = {0, std::fmax(f[u.a].f, f[u.b].f)};
        ++pc;
        break;
      case MicroOpcode::ICmp:
        f[u.dst] = {compareInt(static_cast<ir::CmpPred>(u.aux), f[u.a].i,
                               f[u.b].i)
                        ? 1
                        : 0,
                    0.0};
        ++pc;
        break;
      case MicroOpcode::FCmp:
        f[u.dst] = {compareFloat(static_cast<ir::CmpPred>(u.aux), f[u.a].f,
                                 f[u.b].f)
                        ? 1
                        : 0,
                    0.0};
        ++pc;
        break;
      case MicroOpcode::SelectOp:
        f[u.dst] = f[u.a].i != 0 ? f[u.b] : f[u.c];
        ++pc;
        break;
      case MicroOpcode::ZExt: {
        int64_t v = f[u.a].i;
        switch (static_cast<ir::Type::Kind>(u.aux)) {
          case ir::Type::Kind::I32:
            v = static_cast<int64_t>(static_cast<uint32_t>(v));
            break;
          case ir::Type::Kind::I1:
            v &= 1;
            break;
          default:
            break;
        }
        f[u.dst] = {v, 0.0};
        ++pc;
        break;
      }
      case MicroOpcode::MoveI:
        f[u.dst] = {f[u.a].i, 0.0};
        ++pc;
        break;
      case MicroOpcode::Trunc:
        f[u.dst] = {wrapKind(u.aux, f[u.a].i), 0.0};
        ++pc;
        break;
      case MicroOpcode::SIToFP:
        f[u.dst] = {0, static_cast<double>(f[u.a].i)};
        ++pc;
        break;
      case MicroOpcode::FPToSI:
        f[u.dst] = {wrapKind(u.aux, static_cast<int64_t>(f[u.a].f)), 0.0};
        ++pc;
        break;
      case MicroOpcode::Gep:
        f[u.dst] = {wrapAdd(f[u.a].i, wrapMul(f[u.b].i, u.imm)), 0.0};
        ++pc;
        break;
      case MicroOpcode::LoadI1: {
        uint8_t v;
        std::memcpy(&v, memory_.rawAt(static_cast<uint64_t>(f[u.a].i), 1), 1);
        f[u.dst] = {v != 0, 0.0};
        ++pc;
        break;
      }
      case MicroOpcode::LoadI32: {
        int32_t v;
        std::memcpy(&v, memory_.rawAt(static_cast<uint64_t>(f[u.a].i), 4), 4);
        f[u.dst] = {v, 0.0};
        ++pc;
        break;
      }
      case MicroOpcode::LoadI64: {
        int64_t v;
        std::memcpy(&v, memory_.rawAt(static_cast<uint64_t>(f[u.a].i), 8), 8);
        f[u.dst] = {v, 0.0};
        ++pc;
        break;
      }
      case MicroOpcode::LoadF32: {
        float v;
        std::memcpy(&v, memory_.rawAt(static_cast<uint64_t>(f[u.a].i), 4), 4);
        f[u.dst] = {0, v};
        ++pc;
        break;
      }
      case MicroOpcode::LoadF64: {
        double v;
        std::memcpy(&v, memory_.rawAt(static_cast<uint64_t>(f[u.a].i), 8), 8);
        f[u.dst] = {0, v};
        ++pc;
        break;
      }
      case MicroOpcode::StoreI1: {
        uint8_t v = f[u.a].i != 0;
        std::memcpy(memory_.rawAt(static_cast<uint64_t>(f[u.b].i), 1), &v, 1);
        ++pc;
        break;
      }
      case MicroOpcode::StoreI32: {
        int32_t v = static_cast<int32_t>(f[u.a].i);
        std::memcpy(memory_.rawAt(static_cast<uint64_t>(f[u.b].i), 4), &v, 4);
        ++pc;
        break;
      }
      case MicroOpcode::StoreI64: {
        std::memcpy(memory_.rawAt(static_cast<uint64_t>(f[u.b].i), 8),
                    &f[u.a].i, 8);
        ++pc;
        break;
      }
      case MicroOpcode::StoreF32: {
        float v = static_cast<float>(f[u.a].f);
        std::memcpy(memory_.rawAt(static_cast<uint64_t>(f[u.b].i), 4), &v, 4);
        ++pc;
        break;
      }
      case MicroOpcode::StoreF64: {
        std::memcpy(memory_.rawAt(static_cast<uint64_t>(f[u.b].i), 8),
                    &f[u.a].f, 8);
        ++pc;
        break;
      }
      case MicroOpcode::Copy:
        f[u.dst] = f[u.a];
        ++pc;
        break;
      case MicroOpcode::Jump:
        pc = u.b;
        break;
      case MicroOpcode::CondJump:
        pc = f[u.a].i != 0 ? u.b : u.c;
        break;
      case MicroOpcode::Call: {
        std::vector<Slot> callArgs(u.b);
        for (uint32_t i = 0; i < u.b; ++i) {
          callArgs[i] = f[df.callArgSlots[u.a + i]];
        }
        DecodedEntry& callee =
            decodedFor(*df.callees[static_cast<size_t>(u.imm)]);
        Slot ret = execDecoded(callee, std::move(callArgs), result, depth + 1);
        if (u.aux != 0) f[u.dst] = ret;
        ++pc;
        break;
      }
      case MicroOpcode::Ret:
        return u.aux != 0 ? f[u.a] : Slot{};
    }
  }
}

Slot Interpreter::execReference(const ir::Function& function,
                                std::vector<Slot> args, Result& result,
                                int depth) {
  CAYMAN_ASSERT(depth < 64, "interpreter call depth exceeded");
  const Numbering& numbering = numberingFor(function);
  std::vector<Slot> frame(static_cast<size_t>(numbering.count));
  for (size_t i = 0; i < args.size(); ++i) frame[i] = args[i];

  auto slotOf = [&](const ir::Value* value) -> Slot {
    switch (value->valueKind()) {
      case ir::ValueKind::ConstantInt:
        return {static_cast<const ir::ConstantInt*>(value)->value(), 0.0};
      case ir::ValueKind::ConstantFP:
        return {0, static_cast<const ir::ConstantFP*>(value)->value()};
      case ir::ValueKind::GlobalArray:
        return {static_cast<int64_t>(memory_.baseOf(
                    static_cast<const ir::GlobalArray*>(value))),
                0.0};
      default: {
        auto it = numbering.index.find(value);
        CAYMAN_ASSERT(it != numbering.index.end(),
                      "value not numbered in " + function.name());
        return frame[static_cast<size_t>(it->second)];
      }
    }
  };
  auto setSlot = [&](const ir::Instruction* inst, Slot slot) {
    frame[static_cast<size_t>(numbering.index.at(inst))] = slot;
  };

  const ir::BasicBlock* block = function.entry();
  const ir::BasicBlock* previous = nullptr;
  std::vector<Slot> phiBuffer;

  while (true) {
    ++result.blockCounts[block];
    result.totalCycles += blockCost_.at(block);
    result.instructions += block->size();
    executed_ += block->size();
    if (executed_ > instructionLimit_) {
      throwInstructionLimit(function.name(), instructionLimit_);
    }
    if (cancel_ != nullptr && (++cancelTick_ & 0x3FF) == 0) {
      cancel_->check(support::Stage::Profile, function.name());
    }

    // Phase 1: evaluate all phis against the incoming edge, then commit,
    // so mutually-referencing phis see pre-transfer values.
    std::vector<ir::Instruction*> phis = block->phis();
    if (!phis.empty()) {
      CAYMAN_ASSERT(previous != nullptr, "phi in entry block");
      phiBuffer.clear();
      for (ir::Instruction* phi : phis) {
        phiBuffer.push_back(slotOf(phi->incomingValueFor(previous)));
      }
      for (size_t i = 0; i < phis.size(); ++i) setSlot(phis[i], phiBuffer[i]);
    }

    for (size_t idx = phis.size(); idx < block->instructions().size(); ++idx) {
      const ir::Instruction* inst = block->instructions()[idx].get();
      switch (inst->opcode()) {
        case Opcode::Add:
          setSlot(inst, {wrapInt(inst->type(),
                                 wrapAdd(slotOf(inst->operand(0)).i,
                                         slotOf(inst->operand(1)).i)),
                         0.0});
          break;
        case Opcode::Sub:
          setSlot(inst, {wrapInt(inst->type(),
                                 wrapSub(slotOf(inst->operand(0)).i,
                                         slotOf(inst->operand(1)).i)),
                         0.0});
          break;
        case Opcode::Mul:
          setSlot(inst, {wrapInt(inst->type(),
                                 wrapMul(slotOf(inst->operand(0)).i,
                                         slotOf(inst->operand(1)).i)),
                         0.0});
          break;
        case Opcode::SDiv:
          setSlot(inst, {wrapInt(inst->type(),
                                 safeSDiv(slotOf(inst->operand(0)).i,
                                          slotOf(inst->operand(1)).i)),
                         0.0});
          break;
        case Opcode::SRem:
          setSlot(inst, {wrapInt(inst->type(),
                                 safeSRem(slotOf(inst->operand(0)).i,
                                          slotOf(inst->operand(1)).i)),
                         0.0});
          break;
        case Opcode::And:
          setSlot(inst, {slotOf(inst->operand(0)).i &
                             slotOf(inst->operand(1)).i,
                         0.0});
          break;
        case Opcode::Or:
          setSlot(inst, {slotOf(inst->operand(0)).i |
                             slotOf(inst->operand(1)).i,
                         0.0});
          break;
        case Opcode::Xor:
          setSlot(inst, {slotOf(inst->operand(0)).i ^
                             slotOf(inst->operand(1)).i,
                         0.0});
          break;
        case Opcode::Shl:
          setSlot(inst, {wrapInt(inst->type(),
                                 wrapShl(slotOf(inst->operand(0)).i,
                                         slotOf(inst->operand(1)).i)),
                         0.0});
          break;
        case Opcode::AShr:
          setSlot(inst, {slotOf(inst->operand(0)).i >>
                             (slotOf(inst->operand(1)).i & 63),
                         0.0});
          break;
        case Opcode::LShr:
          setSlot(inst,
                  {static_cast<int64_t>(
                       static_cast<uint64_t>(slotOf(inst->operand(0)).i) >>
                       (slotOf(inst->operand(1)).i & 63)),
                   0.0});
          break;
        case Opcode::FAdd:
          setSlot(inst, {0, slotOf(inst->operand(0)).f +
                                slotOf(inst->operand(1)).f});
          break;
        case Opcode::FSub:
          setSlot(inst, {0, slotOf(inst->operand(0)).f -
                                slotOf(inst->operand(1)).f});
          break;
        case Opcode::FMul:
          setSlot(inst, {0, slotOf(inst->operand(0)).f *
                                slotOf(inst->operand(1)).f});
          break;
        case Opcode::FDiv:
          setSlot(inst, {0, slotOf(inst->operand(0)).f /
                                slotOf(inst->operand(1)).f});
          break;
        case Opcode::FNeg:
          setSlot(inst, {0, -slotOf(inst->operand(0)).f});
          break;
        case Opcode::FSqrt:
          setSlot(inst, {0, std::sqrt(std::fabs(slotOf(inst->operand(0)).f))});
          break;
        case Opcode::FAbs:
          setSlot(inst, {0, std::fabs(slotOf(inst->operand(0)).f)});
          break;
        case Opcode::FMin:
          setSlot(inst, {0, std::fmin(slotOf(inst->operand(0)).f,
                                      slotOf(inst->operand(1)).f)});
          break;
        case Opcode::FMax:
          setSlot(inst, {0, std::fmax(slotOf(inst->operand(0)).f,
                                      slotOf(inst->operand(1)).f)});
          break;
        case Opcode::ICmp:
          setSlot(inst, {compareInt(inst->cmpPred(),
                                    slotOf(inst->operand(0)).i,
                                    slotOf(inst->operand(1)).i)
                             ? 1
                             : 0,
                         0.0});
          break;
        case Opcode::FCmp:
          setSlot(inst, {compareFloat(inst->cmpPred(),
                                      slotOf(inst->operand(0)).f,
                                      slotOf(inst->operand(1)).f)
                             ? 1
                             : 0,
                         0.0});
          break;
        case Opcode::Select:
          setSlot(inst, slotOf(inst->operand(0)).i != 0
                            ? slotOf(inst->operand(1))
                            : slotOf(inst->operand(2)));
          break;
        case Opcode::ZExt: {
          int64_t v = slotOf(inst->operand(0)).i;
          const ir::Type* from = inst->operand(0)->type();
          if (from->kind() == ir::Type::Kind::I32) {
            v = static_cast<int64_t>(static_cast<uint32_t>(v));
          } else if (from->kind() == ir::Type::Kind::I1) {
            v &= 1;
          }
          setSlot(inst, {v, 0.0});
          break;
        }
        case Opcode::SExt:
          setSlot(inst, {slotOf(inst->operand(0)).i, 0.0});
          break;
        case Opcode::Trunc:
          setSlot(inst,
                  {wrapInt(inst->type(), slotOf(inst->operand(0)).i), 0.0});
          break;
        case Opcode::SIToFP:
          setSlot(inst,
                  {0, static_cast<double>(slotOf(inst->operand(0)).i)});
          break;
        case Opcode::FPToSI:
          setSlot(inst, {wrapInt(inst->type(), static_cast<int64_t>(
                                                   slotOf(inst->operand(0)).f)),
                         0.0});
          break;
        case Opcode::Gep:
          setSlot(inst,
                  {wrapAdd(slotOf(inst->operand(0)).i,
                           wrapMul(slotOf(inst->operand(1)).i,
                                   static_cast<int64_t>(inst->gepElemSize()))),
                   0.0});
          break;
        case Opcode::Load: {
          uint64_t address =
              static_cast<uint64_t>(slotOf(inst->operand(0)).i);
          if (inst->type()->isFloat()) {
            setSlot(inst, {0, memory_.loadFloat(address, inst->type())});
          } else {
            setSlot(inst, {memory_.loadInt(address, inst->type()), 0.0});
          }
          break;
        }
        case Opcode::Store: {
          uint64_t address =
              static_cast<uint64_t>(slotOf(inst->operand(1)).i);
          const ir::Type* type = inst->operand(0)->type();
          if (type->isFloat()) {
            memory_.storeFloat(address, type, slotOf(inst->operand(0)).f);
          } else {
            memory_.storeInt(address, type, slotOf(inst->operand(0)).i);
          }
          break;
        }
        case Opcode::Call: {
          std::vector<Slot> callArgs;
          callArgs.reserve(inst->numOperands());
          for (const ir::Value* operand : inst->operands()) {
            callArgs.push_back(slotOf(operand));
          }
          Slot ret = execReference(*inst->callee(), std::move(callArgs),
                                   result, depth + 1);
          if (!inst->type()->isVoid()) setSlot(inst, ret);
          break;
        }
        case Opcode::Br:
          previous = block;
          block = inst->successors()[0];
          goto nextBlock;
        case Opcode::CondBr:
          previous = block;
          block = slotOf(inst->operand(0)).i != 0 ? inst->successors()[0]
                                                  : inst->successors()[1];
          goto nextBlock;
        case Opcode::Ret:
          return inst->numOperands() == 1 ? slotOf(inst->operand(0)) : Slot{};
        case Opcode::Phi:
          CAYMAN_ASSERT(false, "phi after non-phi instructions");
      }
    }
    CAYMAN_ASSERT(false, "block fell through without terminator");
  nextBlock:;
  }
}

}  // namespace cayman::sim
