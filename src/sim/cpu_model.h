// In-order scalar CPU cost model (CVA6-class RISC-V core).
//
// Substitutes for the paper's hardware profiling runs: the interpreter
// attributes these per-instruction cycle costs to regions, yielding the
// region durations and execution counts candidate selection consumes.
#pragma once

#include "ir/instruction.h"

namespace cayman::sim {

class CpuCostModel {
 public:
  /// Cycle cost of one dynamic execution of `inst`.
  double cost(const ir::Instruction& inst) const;

  /// Static cost of a block body (sum over its instructions).
  double blockCost(const ir::BasicBlock& block) const;

  /// Latencies tuned to an application-class in-order RV64GC core
  /// (CVA6 [32]): single-issue, blocking L1 loads, iterative divider.
  static CpuCostModel cva6();

  // Individual latencies (cycles); public so tests/benches can inspect them.
  double intAlu = 1.0;
  double intMul = 3.0;
  double intDiv = 20.0;
  double fpAdd = 4.0;
  double fpMul = 5.0;
  double fpDiv = 18.0;
  double fpSqrt = 22.0;
  double fpCmp = 2.0;
  double convert = 2.0;
  double load = 2.0;    ///< L1-hit average
  double store = 1.0;
  double branch = 2.0;  ///< average with misprediction amortized
  double call = 4.0;
  double phi = 0.0;     ///< resolved by register renaming / copies
  /// Per-instruction issue/hazard overhead of the single-issue in-order
  /// pipeline (structural stalls, RAW bubbles) added on top of latency.
  double issueOverhead = 0.5;
};

}  // namespace cayman::sim
