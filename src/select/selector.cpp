#include "select/selector.h"

#include "support/trace.h"

namespace cayman::select {

using analysis::Region;
using analysis::RegionKind;

std::vector<Solution> CandidateSelector::dp(const Region* region,
                                            Stats& stats) const {
  ++stats.regionsVisited;
  if (params_.cancel != nullptr) {
    params_.cancel->check(support::Stage::Select, region->label());
  }

  // prune(v, R): regions that are not hotspots cannot pay for themselves —
  // skip the whole subtree (their descendants are at most as hot). Root and
  // Function vertices are structural and never pruned.
  if ((region->isBb() || region->isCtrlFlow()) &&
      model_.profile().hotFraction(region) < params_.pruneHotFraction) {
    ++stats.regionsPruned;
    return {Solution{}};
  }

  std::vector<Solution> front{Solution{}};

  if (region->kind() == RegionKind::Bb) {
    std::vector<Solution> options{Solution{}};
    for (const accel::AcceleratorConfig& config : model_.generate(region)) {
      ++stats.configsGenerated;
      if (config.areaUm2 > params_.areaBudgetUm2) continue;
      options.push_back(Solution::fromConfig(config));
    }
    return filterByAlpha(pareto(std::move(options), params_.clockRatio),
                         params_.alpha);
  }

  // Combine children subtrees (⊗ over siblings).
  for (const auto& child : region->children()) {
    std::vector<Solution> childFront = dp(child.get(), stats);
    front = filterByAlpha(
        combine(front, childFront, params_.areaBudgetUm2, params_.clockRatio),
        params_.alpha);
  }

  // ctrl-flow regions may alternatively be selected whole.
  if (region->isCtrlFlow()) {
    for (const accel::AcceleratorConfig& config : model_.generate(region)) {
      ++stats.configsGenerated;
      if (config.areaUm2 > params_.areaBudgetUm2) continue;
      front.push_back(Solution::fromConfig(config));
    }
    front = filterByAlpha(pareto(std::move(front), params_.clockRatio),
                          params_.alpha);
  }
  return front;
}

std::vector<Solution> CandidateSelector::select(Stats& stats) const {
  stats = Stats{};
  support::trace::Span span("select.dp", "select");
  std::vector<Solution> front = dp(model_.wpst().root(), stats);
  if (support::trace::on()) {
    support::trace::count("select.regions_visited",
                          static_cast<uint64_t>(stats.regionsVisited));
    support::trace::count("select.regions_pruned",
                          static_cast<uint64_t>(stats.regionsPruned));
    support::trace::count("select.configs_generated",
                          static_cast<uint64_t>(stats.configsGenerated));
  }
  return front;
}

Solution CandidateSelector::best(Stats& stats) const {
  std::vector<Solution> front = select(stats);
  Solution bestSolution;
  double bestSaved = 0.0;
  for (Solution& s : front) {
    double saved = s.savedCycles(params_.clockRatio);
    if (saved > bestSaved) {
      bestSaved = saved;
      bestSolution = std::move(s);
    }
  }
  return bestSolution;
}

}  // namespace cayman::select
