#include "select/selector.h"

#include <cassert>

#include "support/error.h"
#include "support/trace.h"

namespace cayman::select {

using analysis::Region;
using analysis::RegionKind;

namespace {

/// Peak-front bookkeeping, fired after every α-filter in both DP paths (the
/// same program points, so the stat is mode-independent).
void notePeak(CandidateSelector::Stats& stats, size_t frontSize) {
  if (frontSize > stats.frontPeak) stats.frontPeak = frontSize;
}

}  // namespace

const std::vector<accel::AcceleratorConfig>& CandidateSelector::candidatesFor(
    const CandidateLists& lists, const Region* region) {
  auto it = lists.find(region);
  CAYMAN_ASSERT(it != lists.end(),
                "selector pre-pass missed a region the DP queries");
  return *it->second;
}

bool CandidateSelector::prunes(const Region* region) const {
  // prune(v, R): regions that are not hotspots cannot pay for themselves —
  // skip the whole subtree (their descendants are at most as hot). Root and
  // Function vertices are structural and never pruned.
  return (region->isBb() || region->isCtrlFlow()) &&
         model_.profile().hotFraction(region) < params_.pruneHotFraction;
}

void CandidateSelector::collectRegions(
    const Region* region, std::vector<const Region*>& order) const {
  if (params_.cancel != nullptr) {
    params_.cancel->check(support::Stage::Select, region->label());
  }
  if (prunes(region)) return;
  if (region->kind() == RegionKind::Bb) {
    order.push_back(region);
    return;
  }
  for (const auto& child : region->children()) {
    collectRegions(child.get(), order);
  }
  if (region->isCtrlFlow()) order.push_back(region);
}

void CandidateSelector::collectCandidates(const Region* region,
                                          CandidateLists& lists) const {
  std::vector<const Region*> order;
  collectRegions(region, order);
  std::vector<const std::vector<accel::AcceleratorConfig>*> generated =
      model_.generateAll(order);
  lists.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    lists.emplace(order[i], generated[i]);
  }
}

std::vector<Solution> CandidateSelector::dpReference(
    const Region* region, const CandidateLists& lists, Stats& stats) const {
  ++stats.regionsVisited;
  if (params_.cancel != nullptr) {
    params_.cancel->check(support::Stage::Select, region->label());
  }

  if (prunes(region)) {
    ++stats.regionsPruned;
    return {Solution{}};
  }

  std::vector<Solution> front{Solution{}};

  if (region->kind() == RegionKind::Bb) {
    std::vector<Solution> options{Solution{}};
    for (const accel::AcceleratorConfig& config :
         candidatesFor(lists, region)) {
      ++stats.configsGenerated;
      if (config.areaUm2 > params_.areaBudgetUm2) continue;
      ++stats.singleConfigSolutions;
      options.push_back(Solution::fromConfig(config));
    }
    front = filterByAlpha(pareto(std::move(options), params_.clockRatio),
                          params_.alpha);
    notePeak(stats, front.size());
    return front;
  }

  // Combine children subtrees (⊗ over siblings).
  for (const auto& child : region->children()) {
    std::vector<Solution> childFront = dpReference(child.get(), lists, stats);
    front = filterByAlpha(
        combine(front, childFront, params_.areaBudgetUm2, params_.clockRatio,
                &stats.combinePairs),
        params_.alpha);
    notePeak(stats, front.size());
  }

  // ctrl-flow regions may alternatively be selected whole.
  if (region->isCtrlFlow()) {
    for (const accel::AcceleratorConfig& config :
         candidatesFor(lists, region)) {
      ++stats.configsGenerated;
      if (config.areaUm2 > params_.areaBudgetUm2) continue;
      ++stats.singleConfigSolutions;
      front.push_back(Solution::fromConfig(config));
    }
    front = filterByAlpha(pareto(std::move(front), params_.clockRatio),
                          params_.alpha);
    notePeak(stats, front.size());
  }
  return front;
}

std::vector<FrontierEntry> CandidateSelector::dpFrontier(
    const Region* region, const CandidateLists& lists, Stats& stats,
    SolutionArena& arena) const {
  ++stats.regionsVisited;
  if (params_.cancel != nullptr) {
    params_.cancel->check(support::Stage::Select, region->label());
  }

  if (prunes(region)) {
    ++stats.regionsPruned;
    return {FrontierEntry{}};
  }

  std::vector<FrontierEntry> front{FrontierEntry{}};

  if (region->kind() == RegionKind::Bb) {
    std::vector<FrontierEntry> options{FrontierEntry{}};
    for (const accel::AcceleratorConfig& config :
         candidatesFor(lists, region)) {
      ++stats.configsGenerated;
      if (config.areaUm2 > params_.areaBudgetUm2) continue;
      ++stats.singleConfigSolutions;
      options.push_back(entryFromConfig(config, params_.clockRatio, arena));
    }
    front = filterByAlpha(pareto(std::move(options)), params_.alpha);
    notePeak(stats, front.size());
    return front;
  }

  for (const auto& child : region->children()) {
    std::vector<FrontierEntry> childFront =
        dpFrontier(child.get(), lists, stats, arena);
    front = filterByAlpha(
        combine(front, childFront, params_.areaBudgetUm2, params_.clockRatio,
                arena, &stats.combinePairs),
        params_.alpha);
    notePeak(stats, front.size());
  }

  if (region->isCtrlFlow()) {
    for (const accel::AcceleratorConfig& config :
         candidatesFor(lists, region)) {
      ++stats.configsGenerated;
      if (config.areaUm2 > params_.areaBudgetUm2) continue;
      ++stats.singleConfigSolutions;
      front.push_back(entryFromConfig(config, params_.clockRatio, arena));
    }
    front = filterByAlpha(pareto(std::move(front)), params_.alpha);
    notePeak(stats, front.size());
  }
  return front;
}

std::vector<Solution> CandidateSelector::select(Stats& stats) const {
  stats = Stats{};
  // Candidate generation first, outside the span: it is memoized model work
  // shared by every budget sweep and both DP engines, and folding its cold
  // first computation into select.dp made the DP look ~5x more expensive
  // than it is. No new span is opened for it, so the deterministic trace
  // event stream is unchanged.
  CandidateLists lists;
  collectCandidates(model_.wpst().root(), lists);
  support::trace::Span span("select.dp", "select");
  std::vector<Solution> front;
  if (params_.mode == SelectMode::Reference) {
    front = dpReference(model_.wpst().root(), lists, stats);
  } else {
    SolutionArena arena;
    std::vector<FrontierEntry> entries =
        dpFrontier(model_.wpst().root(), lists, stats, arena);
    assert(arena.nodeCount() == stats.arenaNodes() &&
           "arena grew out of step with the leaf/pair counters");
    front.reserve(entries.size());
    for (const FrontierEntry& entry : entries) {
      front.push_back(materialize(entry, arena));
    }
  }
  if (support::trace::on()) {
    support::trace::count("select.regions_visited",
                          static_cast<uint64_t>(stats.regionsVisited));
    support::trace::count("select.regions_pruned",
                          static_cast<uint64_t>(stats.regionsPruned));
    support::trace::count("select.configs_generated",
                          static_cast<uint64_t>(stats.configsGenerated));
    support::trace::count("select.combine_pairs", stats.combinePairs);
    support::trace::count("select.front_peak",
                          static_cast<uint64_t>(stats.frontPeak));
    support::trace::count("select.arena_nodes", stats.arenaNodes());
  }
  return front;
}

Solution CandidateSelector::best(Stats& stats) const {
  std::vector<Solution> front = select(stats);
  Solution bestSolution;
  double bestSaved = 0.0;
  for (Solution& s : front) {
    double saved = s.savedCycles(params_.clockRatio);
    if (saved > bestSaved) {
      bestSaved = saved;
      bestSolution = std::move(s);
    }
  }
  return bestSolution;
}

}  // namespace cayman::select
