// Pareto sequences and the α-filter of Algorithm 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "select/solution.h"

namespace cayman::select {

/// Shared by both combine() paths: reserve at most this many merged slots up
/// front. α-filtered fronts are short, but a full a.size()*b.size() cross
/// product can run to tens of thousands of slots of which the budget filter
/// admits a fraction — the old unconditional reserve made peak memory scale
/// with the product instead of the admitted count.
constexpr size_t kCombineReserveCap = 256;

/// Area-ascending Pareto front over (area, saved cycles): keeps solutions
/// where more area strictly buys more saved time. The empty solution (area
/// 0) always survives.
///
/// Postcondition (checked in debug builds): the returned front is strictly
/// ascending in area AND in saved cycles — the invariant the α-filter and
/// the sorted-front combine early break rely on.
std::vector<Solution> pareto(std::vector<Solution> solutions,
                             double clockRatio);

/// Paper's `filter`: walking the Pareto sequence in ascending area, drop
/// solutions until the next kept one has area > alpha * previous kept area.
/// Bounds the sequence length to log_alpha(A).
std::vector<Solution> filterByAlpha(std::vector<Solution> solutions,
                                    double alpha);

/// The ⊗ operation: pairwise unions of solutions from two disjoint subtrees,
/// Pareto-reduced, and truncated to the area budget. `pairsAdmitted`, when
/// non-null, accumulates the number of within-budget pairs merged (the
/// select.combine_pairs counter).
std::vector<Solution> combine(const std::vector<Solution>& a,
                              const std::vector<Solution>& b,
                              double areaBudget, double clockRatio,
                              uint64_t* pairsAdmitted = nullptr);

}  // namespace cayman::select
