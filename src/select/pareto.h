// Pareto sequences and the α-filter of Algorithm 1.
#pragma once

#include <vector>

#include "select/solution.h"

namespace cayman::select {

/// Area-ascending Pareto front over (area, saved cycles): keeps solutions
/// where more area strictly buys more saved time. The empty solution (area
/// 0) always survives.
std::vector<Solution> pareto(std::vector<Solution> solutions,
                             double clockRatio);

/// Paper's `filter`: walking the Pareto sequence in ascending area, drop
/// solutions until the next kept one has area > alpha * previous kept area.
/// Bounds the sequence length to log_alpha(A).
std::vector<Solution> filterByAlpha(std::vector<Solution> solutions,
                                    double alpha);

/// The ⊗ operation: pairwise unions of solutions from two disjoint subtrees,
/// Pareto-reduced, and truncated to the area budget.
std::vector<Solution> combine(const std::vector<Solution>& a,
                              const std::vector<Solution>& b,
                              double areaBudget, double clockRatio);

}  // namespace cayman::select
