#include "select/pareto.h"

#include <algorithm>
#include <cassert>

#include "support/trace.h"

namespace cayman::select {

namespace {

#ifndef NDEBUG
/// Debug postcondition of pareto(): strictly area-ascending with strictly
/// increasing saved cycles (see pareto.h).
bool isStrictFront(const std::vector<Solution>& front, double clockRatio) {
  for (size_t i = 1; i < front.size(); ++i) {
    if (!(front[i - 1].areaUm2 < front[i].areaUm2)) return false;
    if (!(front[i - 1].savedCycles(clockRatio) <
          front[i].savedCycles(clockRatio))) {
      return false;
    }
  }
  return true;
}
#endif

}  // namespace

std::vector<Solution> pareto(std::vector<Solution> solutions,
                             double clockRatio) {
  std::sort(solutions.begin(), solutions.end(),
            [clockRatio](const Solution& a, const Solution& b) {
              if (a.areaUm2 != b.areaUm2) return a.areaUm2 < b.areaUm2;
              return a.savedCycles(clockRatio) > b.savedCycles(clockRatio);
            });
  std::vector<Solution> front;
  double bestSaved = -1e300;
  for (Solution& s : solutions) {
    double saved = s.savedCycles(clockRatio);
    bool keep = s.empty() ? front.empty() : saved > bestSaved;
    if (!keep) continue;
    bestSaved = std::max(bestSaved, saved);
    front.push_back(std::move(s));
  }
  if (support::trace::on() && front.size() < solutions.size()) {
    support::trace::count("select.pareto_dropped",
                          solutions.size() - front.size());
  }
  assert(isStrictFront(front, clockRatio) &&
         "pareto() front not strictly monotone");
  return front;
}

std::vector<Solution> filterByAlpha(std::vector<Solution> solutions,
                                    double alpha) {
  if (solutions.size() <= 2 || alpha <= 1.0) return solutions;
  std::vector<Solution> kept;
  kept.push_back(std::move(solutions.front()));
  // Always retain the final (best-performing) solution.
  for (size_t i = 1; i + 1 < solutions.size(); ++i) {
    double previousArea = kept.back().areaUm2;
    if (solutions[i].areaUm2 > alpha * std::max(previousArea, 1.0)) {
      kept.push_back(std::move(solutions[i]));
    }
  }
  kept.push_back(std::move(solutions.back()));
  if (support::trace::on() && kept.size() < solutions.size()) {
    support::trace::count("select.alpha_dropped",
                          solutions.size() - kept.size());
  }
  return kept;
}

std::vector<Solution> combine(const std::vector<Solution>& a,
                              const std::vector<Solution>& b,
                              double areaBudget, double clockRatio,
                              uint64_t* pairsAdmitted) {
  std::vector<Solution> merged;
  merged.reserve(std::min(a.size() * b.size(), kCombineReserveCap));
  for (const Solution& x : a) {
    for (const Solution& y : b) {
      if (x.areaUm2 + y.areaUm2 > areaBudget) continue;
      merged.push_back(Solution::merge(x, y));
    }
  }
  if (pairsAdmitted != nullptr) *pairsAdmitted += merged.size();
  return pareto(std::move(merged), clockRatio);
}

}  // namespace cayman::select
