// Candidate selection (paper §III-D, Algorithm 1): a knapsack over the wPST
// solved by dynamic programming with Pareto sequences, the ⊗ combine, the
// α-filter and heuristic hotspot pruning.
#pragma once

#include <unordered_map>

#include "accel/model.h"
#include "select/frontier.h"
#include "select/pareto.h"
#include "support/cancellation.h"

namespace cayman::select {

/// Which DP engine runs Algorithm 1. Both produce bit-identical fronts (a
/// property the differential tests pin over all 28 workloads); Frontier is
/// strictly faster.
enum class SelectMode {
  /// Frontier-compressed DP (default): scalar cost records with O(1)
  /// merges, arena-backed reconstruction, sorted-front combine with early
  /// budget break-out. See select/frontier.h.
  Frontier,
  /// The original Solution-copying DP, kept in-tree as the differential
  /// oracle (the same role ExecMode::Reference plays for the interpreter).
  Reference,
};

struct SelectorParams {
  /// Knapsack area limit (um^2). Table II uses 25% / 65% of a CVA6 tile.
  double areaBudgetUm2 = 0.0;
  /// Filter ratio α: neighbouring kept solutions differ in area by > α.
  double alpha = 1.12;
  /// Prune regions whose profiled share of T_all is below this fraction.
  double pruneHotFraction = 5e-4;
  /// Accelerator clock period over CPU clock period (Eq. 1's 1/F in CPU
  /// cycle units). 1.25 = 500 MHz accelerators beside a 625 MHz CVA6 on the
  /// same 45nm node.
  double clockRatio = 1.25;
  /// DP engine; Reference exists for differential testing and debugging.
  SelectMode mode = SelectMode::Frontier;
  /// Optional cooperative cancellation: the DP polls this once per region
  /// visit and aborts with support::CancelledError when expired. Must
  /// outlive the selector run; nullptr disables the checks.
  const support::CancelToken* cancel = nullptr;
};

class CandidateSelector {
 public:
  CandidateSelector(const accel::AcceleratorModel& model,
                    SelectorParams params)
      : model_(model), params_(params) {}

  struct Stats {
    int regionsVisited = 0;
    int regionsPruned = 0;
    int configsGenerated = 0;
    /// ⊗ pairs admitted under the area budget across all combines.
    uint64_t combinePairs = 0;
    /// Single-config solutions created (arena leaves in frontier mode).
    uint64_t singleConfigSolutions = 0;
    /// Largest post-filter front either DP path carried.
    size_t frontPeak = 0;

    /// Reconstruction-arena size the run implies: one node per leaf plus
    /// one per admitted merge. Counted identically in both modes so
    /// exported metrics stay byte-identical across SelectMode.
    uint64_t arenaNodes() const { return singleConfigSolutions + combinePairs; }
  };

  /// Runs Algorithm 1 and returns F[root]: the Pareto-optimal solution
  /// sequence under the area budget, ascending in area. Stats accumulate
  /// into the caller-owned `stats`, so one selector can run concurrently
  /// from several threads (the model's generate cache is internally
  /// synchronized; the selector itself holds no mutable state).
  std::vector<Solution> select(Stats& stats) const;

  /// The single best solution under the budget (from select()).
  Solution best(Stats& stats) const;

  /// Convenience wrappers recording into the selector-owned stats block.
  /// Single-threaded use only; `stats()` reads back the last run.
  std::vector<Solution> select() { return select(stats_); }
  Solution best() { return best(stats_); }
  const Stats& stats() const { return stats_; }

  const SelectorParams& params() const { return params_; }

 private:
  /// Candidate lists the DP consumes, keyed by region. Lookup-only (never
  /// iterated), so the pointer keys cannot leak into output ordering.
  using CandidateLists =
      std::unordered_map<const analysis::Region*,
                         const std::vector<accel::AcceleratorConfig>*>;

  /// True when the DP prunes this region's subtree (the hotspot heuristic).
  bool prunes(const analysis::Region* region) const;

  /// Pre-pass mirroring the DP traversal: records, in the DP's exact query
  /// order, every region the DP will ask candidates for, then batch-
  /// generates them through model_.generateAll() — the same per-region call
  /// pattern the DP used to make inline (so model.cache_* counter totals are
  /// unchanged), except cold regions fan out on the model's worker pool when
  /// one is configured. Runs outside the select.dp span: generation is
  /// memoized, budget-independent model work, and attributing its first
  /// (cold) computation to the DP span hid what the DP itself costs.
  void collectCandidates(const analysis::Region* region,
                         CandidateLists& lists) const;
  /// The recursive walk behind collectCandidates: emits the DP-queried
  /// regions post-order into `order` (Bb leaves as encountered, ctrl-flow
  /// regions after their children).
  void collectRegions(const analysis::Region* region,
                      std::vector<const analysis::Region*>& order) const;

  /// Looks up a pre-collected candidate list; the pre-pass mirrors the DP
  /// traversal exactly, so a miss is a traversal bug, not a data condition.
  static const std::vector<accel::AcceleratorConfig>& candidatesFor(
      const CandidateLists& lists, const analysis::Region* region);

  std::vector<Solution> dpReference(const analysis::Region* region,
                                    const CandidateLists& lists,
                                    Stats& stats) const;
  std::vector<FrontierEntry> dpFrontier(const analysis::Region* region,
                                        const CandidateLists& lists,
                                        Stats& stats,
                                        SolutionArena& arena) const;

  const accel::AcceleratorModel& model_;
  SelectorParams params_;
  Stats stats_;
};

}  // namespace cayman::select
