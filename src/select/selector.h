// Candidate selection (paper §III-D, Algorithm 1): a knapsack over the wPST
// solved by dynamic programming with Pareto sequences, the ⊗ combine, the
// α-filter and heuristic hotspot pruning.
#pragma once

#include "accel/model.h"
#include "select/pareto.h"
#include "support/cancellation.h"

namespace cayman::select {

struct SelectorParams {
  /// Knapsack area limit (um^2). Table II uses 25% / 65% of a CVA6 tile.
  double areaBudgetUm2 = 0.0;
  /// Filter ratio α: neighbouring kept solutions differ in area by > α.
  double alpha = 1.12;
  /// Prune regions whose profiled share of T_all is below this fraction.
  double pruneHotFraction = 5e-4;
  /// Accelerator clock period over CPU clock period (Eq. 1's 1/F in CPU
  /// cycle units). 1.25 = 500 MHz accelerators beside a 625 MHz CVA6 on the
  /// same 45nm node.
  double clockRatio = 1.25;
  /// Optional cooperative cancellation: the DP polls this once per region
  /// visit and aborts with support::CancelledError when expired. Must
  /// outlive the selector run; nullptr disables the checks.
  const support::CancelToken* cancel = nullptr;
};

class CandidateSelector {
 public:
  CandidateSelector(const accel::AcceleratorModel& model,
                    SelectorParams params)
      : model_(model), params_(params) {}

  struct Stats {
    int regionsVisited = 0;
    int regionsPruned = 0;
    int configsGenerated = 0;
  };

  /// Runs Algorithm 1 and returns F[root]: the Pareto-optimal solution
  /// sequence under the area budget, ascending in area. Stats accumulate
  /// into the caller-owned `stats`, so one selector can run concurrently
  /// from several threads (the model's generate cache is internally
  /// synchronized; the selector itself holds no mutable state).
  std::vector<Solution> select(Stats& stats) const;

  /// The single best solution under the budget (from select()).
  Solution best(Stats& stats) const;

  /// Convenience wrappers recording into the selector-owned stats block.
  /// Single-threaded use only; `stats()` reads back the last run.
  std::vector<Solution> select() { return select(stats_); }
  Solution best() { return best(stats_); }
  const Stats& stats() const { return stats_; }

  const SelectorParams& params() const { return params_; }

 private:
  std::vector<Solution> dp(const analysis::Region* region, Stats& stats) const;

  const accel::AcceleratorModel& model_;
  SelectorParams params_;
  Stats stats_;
};

}  // namespace cayman::select
