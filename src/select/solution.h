// Selection solutions: sets of non-overlapping accelerated kernels.
#pragma once

#include "accel/config.h"

namespace cayman::select {

/// One candidate-selection solution φ (paper §III-D): one or more
/// non-overlapping kernels, each with an accelerator configuration.
struct Solution {
  std::vector<accel::AcceleratorConfig> accelerators;
  double areaUm2 = 0.0;
  /// Total accelerator cycles across the run (Cycle_cand, accelerator clock).
  double accelCycles = 0.0;
  /// CPU cycles the selected kernels used to take (T_cand, CPU clock).
  double cpuCycles = 0.0;

  bool empty() const { return accelerators.empty(); }

  /// CPU cycles saved per run when accelerator cycles are scaled into CPU
  /// cycle units by `clockRatio` (= accel period / CPU period).
  double savedCycles(double clockRatio) const {
    return cpuCycles - accelCycles * clockRatio;
  }

  /// Whole-application speedup per Eq. 1.
  double speedup(double totalCpuCycles, double clockRatio) const {
    double remaining = totalCpuCycles - cpuCycles + accelCycles * clockRatio;
    if (remaining <= 0.0) return 1.0;
    return totalCpuCycles / remaining;
  }

  /// Concatenates two solutions over disjoint wPST subtrees.
  static Solution merge(const Solution& a, const Solution& b) {
    Solution merged = a;
    merged.accelerators.insert(merged.accelerators.end(),
                               b.accelerators.begin(), b.accelerators.end());
    merged.areaUm2 += b.areaUm2;
    merged.accelCycles += b.accelCycles;
    merged.cpuCycles += b.cpuCycles;
    return merged;
  }

  static Solution fromConfig(const accel::AcceleratorConfig& config) {
    Solution s;
    s.accelerators.push_back(config);
    s.areaUm2 = config.areaUm2;
    s.accelCycles = config.cycles;
    s.cpuCycles = config.cpuCycles;
    return s;
  }
};

}  // namespace cayman::select
