#include "select/frontier.h"

#include <algorithm>
#include <cassert>

#include "select/pareto.h"
#include "support/trace.h"

namespace cayman::select {

namespace {

#ifndef NDEBUG
/// Debug postcondition of pareto(): strictly area-ascending with strictly
/// increasing saved cycles. combine()'s early budget break-out and the
/// α-filter's spacing rule both depend on it.
bool isStrictFront(const std::vector<FrontierEntry>& front) {
  for (size_t i = 1; i < front.size(); ++i) {
    if (!(front[i - 1].areaUm2 < front[i].areaUm2)) return false;
    if (!(front[i - 1].savedCycles < front[i].savedCycles)) return false;
  }
  return true;
}
#endif

}  // namespace

int32_t SolutionArena::leaf(const accel::AcceleratorConfig* config) {
  int32_t id = static_cast<int32_t>(nodes_.size());
  Node node;
  node.configId = static_cast<int32_t>(configs_.size());
  configs_.push_back(config);
  nodes_.push_back(node);
  return id;
}

int32_t SolutionArena::merge(int32_t left, int32_t right) {
  int32_t id = static_cast<int32_t>(nodes_.size());
  Node node;
  node.left = left;
  node.right = right;
  nodes_.push_back(node);
  return id;
}

void SolutionArena::appendConfigs(
    int32_t node, std::vector<accel::AcceleratorConfig>& out) const {
  // Iterative in-order walk (left pushed last so it pops first): leaves
  // stream out in exactly Solution::merge's concatenation order.
  std::vector<int32_t> stack;
  stack.push_back(node);
  while (!stack.empty()) {
    int32_t current = stack.back();
    stack.pop_back();
    if (current == kEmptyNode) continue;
    const Node& n = nodes_[static_cast<size_t>(current)];
    if (n.configId >= 0) {
      out.push_back(*configs_[static_cast<size_t>(n.configId)]);
      continue;
    }
    stack.push_back(n.right);
    stack.push_back(n.left);
  }
}

FrontierEntry entryFromConfig(const accel::AcceleratorConfig& config,
                              double clockRatio, SolutionArena& arena) {
  FrontierEntry entry;
  entry.areaUm2 = config.areaUm2;
  entry.accelCycles = config.cycles;
  entry.cpuCycles = config.cpuCycles;
  entry.savedCycles = entry.cpuCycles - entry.accelCycles * clockRatio;
  entry.node = arena.leaf(&config);
  return entry;
}

FrontierEntry mergeEntries(const FrontierEntry& x, const FrontierEntry& y,
                           double clockRatio, SolutionArena& arena) {
  FrontierEntry merged;
  merged.areaUm2 = x.areaUm2 + y.areaUm2;
  merged.accelCycles = x.accelCycles + y.accelCycles;
  merged.cpuCycles = x.cpuCycles + y.cpuCycles;
  // Recomputed from the sums — never x.savedCycles + y.savedCycles, whose
  // rounding could differ from what the reference comparator sees.
  merged.savedCycles = merged.cpuCycles - merged.accelCycles * clockRatio;
  merged.node = arena.merge(x.node, y.node);
  return merged;
}

std::vector<FrontierEntry> pareto(std::vector<FrontierEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const FrontierEntry& a, const FrontierEntry& b) {
              if (a.areaUm2 != b.areaUm2) return a.areaUm2 < b.areaUm2;
              return a.savedCycles > b.savedCycles;
            });
  std::vector<FrontierEntry> front;
  double bestSaved = -1e300;
  for (const FrontierEntry& entry : entries) {
    bool keep =
        entry.empty() ? front.empty() : entry.savedCycles > bestSaved;
    if (!keep) continue;
    bestSaved = std::max(bestSaved, entry.savedCycles);
    front.push_back(entry);
  }
  if (support::trace::on() && front.size() < entries.size()) {
    support::trace::count("select.pareto_dropped",
                          entries.size() - front.size());
  }
  assert(isStrictFront(front) && "pareto() front not strictly monotone");
  return front;
}

std::vector<FrontierEntry> filterByAlpha(std::vector<FrontierEntry> entries,
                                         double alpha) {
  if (entries.size() <= 2 || alpha <= 1.0) return entries;
  std::vector<FrontierEntry> kept;
  kept.push_back(entries.front());
  for (size_t i = 1; i + 1 < entries.size(); ++i) {
    double previousArea = kept.back().areaUm2;
    if (entries[i].areaUm2 > alpha * std::max(previousArea, 1.0)) {
      kept.push_back(entries[i]);
    }
  }
  kept.push_back(entries.back());
  if (support::trace::on() && kept.size() < entries.size()) {
    support::trace::count("select.alpha_dropped",
                          entries.size() - kept.size());
  }
  return kept;
}

std::vector<FrontierEntry> combine(const std::vector<FrontierEntry>& a,
                                   const std::vector<FrontierEntry>& b,
                                   double areaBudget, double clockRatio,
                                   SolutionArena& arena,
                                   uint64_t* pairsAdmitted) {
  assert(isStrictFront(a) && isStrictFront(b) &&
         "combine() requires area-sorted fronts for the early break");
  std::vector<FrontierEntry> merged;
  merged.reserve(std::min(a.size() * b.size(), kCombineReserveCap));
  for (const FrontierEntry& x : a) {
    for (const FrontierEntry& y : b) {
      // b ascends in area, so every later y is at least as large: the whole
      // remaining row is over budget (floating-point addition is monotone).
      if (x.areaUm2 + y.areaUm2 > areaBudget) break;
      merged.push_back(mergeEntries(x, y, clockRatio, arena));
    }
  }
  if (pairsAdmitted != nullptr) *pairsAdmitted += merged.size();
  return pareto(std::move(merged));
}

Solution materialize(const FrontierEntry& entry, const SolutionArena& arena) {
  Solution solution;
  arena.appendConfigs(entry.node, solution.accelerators);
  solution.areaUm2 = entry.areaUm2;
  solution.accelCycles = entry.accelCycles;
  solution.cpuCycles = entry.cpuCycles;
  return solution;
}

}  // namespace cayman::select
