// Frontier-compressed DP representation: the fast path of Algorithm 1.
//
// The reference DP carries full Solution objects through every ⊗ combine:
// each admitted pair deep-copies two AcceleratorConfig vectors (each config
// itself owning a LoopConfig vector and an interface map) only for pareto()
// to throw most of the merged results away, so allocation churn dominates
// select.dp. The frontier path replaces the in-flight representation with a
// trivially-copyable scalar record — (area, accelerator cycles, CPU cycles)
// plus the cached saved-cycles value — and a node reference into a
// per-selection arena. Merging two records is O(1): sum the scalars and
// allocate one 12-byte arena node pointing at the operands' nodes. Full
// AcceleratorConfig lists are materialized only for the final surviving
// front by an in-order walk of the arena (left subtree before right), which
// reproduces exactly Solution::merge's concatenation order. Reconstruction
// iterates arena nodes in allocation order — never pointer-keyed maps — so
// it is deterministic across runs and jobs counts.
//
// Bit-exactness contract with SelectMode::Reference: every scalar is
// accumulated through the same additions in the same order as
// Solution::merge, and savedCycles is always recomputed from the summed
// cycle counts (never summed incrementally), so fronts, filters and final
// solutions are bit-identical to the reference DP.
#pragma once

#include <cstdint>
#include <vector>

#include "select/solution.h"

namespace cayman::select {

/// Arena node id of the empty solution (no accelerators).
constexpr int32_t kEmptyNode = -1;

/// One in-flight DP solution: the cost triple plus its reconstruction
/// handle. Trivially copyable; no allocation on copy or merge.
struct FrontierEntry {
  double areaUm2 = 0.0;
  double accelCycles = 0.0;
  double cpuCycles = 0.0;
  /// Cached Solution::savedCycles(clockRatio) of the sums above, refreshed
  /// after every accumulation so comparators stop recomputing it.
  double savedCycles = 0.0;
  int32_t node = kEmptyNode;

  bool empty() const { return node == kEmptyNode; }
};

/// Per-selection reconstruction arena: a DAG of cons cells. A leaf names
/// one AcceleratorConfig; a merge node concatenates its left operand's
/// configs before its right operand's. Nodes are append-only, so entries
/// can share subtrees freely (persistence) and dropped Pareto points cost
/// nothing beyond their node.
class SolutionArena {
 public:
  /// Registers a single-config solution. The pointer must stay valid for
  /// the arena's lifetime; configs handed out by AcceleratorModel::generate
  /// live as long as the model, which outlives any selection.
  int32_t leaf(const accel::AcceleratorConfig* config);

  /// O(1) concatenation: left's configs materialize before right's (the
  /// order Solution::merge produces). Either side may be kEmptyNode.
  int32_t merge(int32_t left, int32_t right);

  size_t nodeCount() const { return nodes_.size(); }

  /// Appends the configs reachable from `node` in program order.
  void appendConfigs(int32_t node,
                     std::vector<accel::AcceleratorConfig>& out) const;

 private:
  struct Node {
    int32_t configId = -1;  ///< >= 0: leaf; children unused
    int32_t left = kEmptyNode;
    int32_t right = kEmptyNode;
  };
  std::vector<Node> nodes_;
  std::vector<const accel::AcceleratorConfig*> configs_;
};

/// Solution::fromConfig, frontier flavor: one leaf node plus the config's
/// cost triple.
FrontierEntry entryFromConfig(const accel::AcceleratorConfig& config,
                              double clockRatio, SolutionArena& arena);

/// Solution::merge, frontier flavor: O(1), allocates exactly one node.
FrontierEntry mergeEntries(const FrontierEntry& x, const FrontierEntry& y,
                           double clockRatio, SolutionArena& arena);

/// pareto() over frontier entries — same algorithm, comparator semantics
/// and trace counter as the Solution overload, minus the per-comparison
/// savedCycles recomputation (it is cached in the entry).
std::vector<FrontierEntry> pareto(std::vector<FrontierEntry> entries);

/// filterByAlpha() over frontier entries — same algorithm and trace counter
/// as the Solution overload.
std::vector<FrontierEntry> filterByAlpha(std::vector<FrontierEntry> entries,
                                         double alpha);

/// The ⊗ operation over two area-ascending fronts with early budget
/// break-out: because `b` ascends in area, once x.area + y.area exceeds the
/// budget no later y can fit, so the inner loop stops instead of filtering
/// pair by pair. Admits exactly the pairs the reference combine admits, in
/// the same order. `pairsAdmitted`, when non-null, accumulates the number
/// of merged pairs created (the select.combine_pairs counter).
///
/// Precondition: both inputs ascend strictly in area — the pareto()
/// postcondition, checked in debug builds.
std::vector<FrontierEntry> combine(const std::vector<FrontierEntry>& a,
                                   const std::vector<FrontierEntry>& b,
                                   double areaBudget, double clockRatio,
                                   SolutionArena& arena,
                                   uint64_t* pairsAdmitted = nullptr);

/// Expands one surviving entry into a full Solution: configs from the arena
/// walk, cost triple from the entry's (bit-identical) accumulated sums.
Solution materialize(const FrontierEntry& entry, const SolutionArena& arena);

}  // namespace cayman::select
