// Error handling utilities for the Cayman framework.
//
// The framework uses exceptions for unrecoverable misuse (malformed IR,
// analysis preconditions violated) and CAYMAN_ASSERT for internal invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace cayman {

/// Thrown when a framework precondition is violated (malformed IR fed to an
/// analysis, parser syntax errors, invalid configuration parameters, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// Internal: builds the assertion failure message and throws.
[[noreturn]] void assertFail(const char* expr, const char* file, int line,
                             const std::string& message);

}  // namespace cayman

/// Invariant check that stays enabled in release builds: the framework is a
/// research tool where a wrong answer is worse than an abort.
#define CAYMAN_ASSERT(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) ::cayman::assertFail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
