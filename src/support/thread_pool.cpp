#include "support/thread_pool.h"

#include <cstdlib>
#include <stdexcept>
#include <string>

#ifdef __linux__
#include <pthread.h>
#endif

#include "support/strings.h"
#include "support/trace.h"

namespace cayman {

namespace {

/// Worker-thread identity: which pool this thread belongs to (submit routes
/// to the thread's own deque when it targets that pool) and how deep this
/// thread currently is in pool-task execution (workers run at depth 1;
/// helping waits push deeper).
thread_local ThreadPool* t_pool = nullptr;
thread_local unsigned t_workerIndex = 0;
thread_local int t_taskDepth = 0;

struct TaskDepthGuard {
  TaskDepthGuard() { ++t_taskDepth; }
  ~TaskDepthGuard() { --t_taskDepth; }
};

}  // namespace

unsigned ThreadPool::defaultWorkers() {
  // Same strict parse as the --jobs flag (full consumption, [1, 1024]); a
  // malformed value falls back to hardware concurrency here because a
  // library has no usage-error channel — the CLI additionally validates the
  // variable up front and exits 2 on garbage.
  if (const char* env = std::getenv("CAYMAN_JOBS")) {
    if (std::optional<unsigned> jobs = parseJobs(env)) return *jobs;
  }
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

ThreadPool& ThreadPool::shared() {
  // Leaked: tasks submitted from static-destruction-order-unknown contexts
  // must never observe a destroyed pool. Starts at one worker — callers
  // grow it to their --jobs with ensureWorkers, and a 1-worker pool keeps
  // --jobs 1 runs genuinely serial.
  static ThreadPool* pool = new ThreadPool(1);
  return *pool;
}

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = 1;
  ensureWorkers(workers);
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleepMutex_);
    ++version_;
  }
  wake_.notify_all();
  unsigned count = workerCount_.load(std::memory_order_acquire);
  for (unsigned i = 0; i < count; ++i) {
    if (slots_[i]->thread.joinable()) slots_[i]->thread.join();
  }
}

void ThreadPool::ensureWorkers(unsigned workers) {
  if (workers == 0) workers = 1;
  if (workers > kMaxWorkers) workers = kMaxWorkers;
  std::lock_guard<std::mutex> grow(growMutex_);
  unsigned current = workerCount_.load(std::memory_order_acquire);
  if (workers <= current) return;
  for (unsigned i = current; i < workers; ++i) {
    slots_[i] = std::make_unique<Worker>();
    slots_[i]->thread = std::thread([this, i] { workerLoop(i); });
    // Publish the slot only after it is fully constructed: the steal scan
    // indexes slots_[0, workerCount_) without taking growMutex_.
    workerCount_.store(i + 1, std::memory_order_release);
  }
  support::trace::gauge("pool.workers", workers);
}

bool ThreadPool::inPoolTask() { return t_taskDepth > 0; }

void ThreadPool::submitRaw(std::function<void()> fn) {
  if (stopping_.load(std::memory_order_acquire)) {
    throw std::runtime_error(
        "ThreadPool::submit during shutdown: the task would never run");
  }
  // Counted at enqueue, not execution: a TaskGroup tick whose subtask a
  // helping waiter already claimed may still sit in a deque as a no-op when
  // metrics are exported, and counting late would let a pool.tasks snapshot
  // transiently undercount pool.tasks_nested / pool.steals.
  support::trace::countGlobal("pool.tasks", 1);
  if (t_pool == this &&
      t_workerIndex < workerCount_.load(std::memory_order_acquire)) {
    // Worker submitting to its own pool: push to the bottom of its own
    // deque. The owner pops the same end (newest first, depth-first);
    // thieves take the other end (oldest first, coarsest work).
    Worker& self = *slots_[t_workerIndex];
    std::lock_guard<std::mutex> lock(self.mutex);
    self.deque.push_back(std::move(fn));
  } else {
    std::lock_guard<std::mutex> lock(injectMutex_);
    inject_.push_back(std::move(fn));
  }
  notifyOne();
}

void ThreadPool::notifyOne() {
  {
    std::lock_guard<std::mutex> lock(sleepMutex_);
    ++version_;
  }
  wake_.notify_one();
}

bool ThreadPool::findTask(unsigned selfIndex, std::function<void()>& task) {
  unsigned count = workerCount_.load(std::memory_order_acquire);
  {
    Worker& self = *slots_[selfIndex];
    std::lock_guard<std::mutex> lock(self.mutex);
    if (!self.deque.empty()) {
      task = std::move(self.deque.back());
      self.deque.pop_back();
      return true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(injectMutex_);
    if (!inject_.empty()) {
      task = std::move(inject_.front());
      inject_.pop_front();
      return true;
    }
  }
  // Steal the oldest task from a sibling, scanning from our right neighbour
  // so thieves spread instead of all hammering worker 0.
  for (unsigned step = 1; step < count; ++step) {
    Worker& victim = *slots_[(selfIndex + step) % count];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.deque.empty()) {
      task = std::move(victim.deque.front());
      victim.deque.pop_front();
      support::trace::countGlobal("pool.steals", 1);
      return true;
    }
  }
  return false;
}

void ThreadPool::runTask(std::function<void()>& task) {
  TaskDepthGuard depth;
  // Worker-occupancy span, orphan-buffered (wall-mode traces only). Never
  // opened on a thread inside a TaskScope: a helping waiter would otherwise
  // leak schedule-dependent events into the deterministic task record.
  std::optional<support::trace::Span> span;
  if (!support::trace::inTask()) span.emplace("pool.task", "pool");
  task();
}

void ThreadPool::workerLoop(unsigned index) {
  t_pool = this;
  t_workerIndex = index;
#ifdef __linux__
  // Visible in /proc, gdb, and perf; 15-char limit on Linux.
  std::string name = "cayman-w" + std::to_string(index);
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#endif
  support::trace::setThreadLabel("pool-worker-" + std::to_string(index));
  while (true) {
    std::function<void()> task;
    if (findTask(index, task)) {
      runTask(task);
      continue;
    }
    // Sleep protocol: snapshot the version, re-scan once, and only then
    // wait for the version to move. A submit between the re-scan and the
    // wait bumps version_ under sleepMutex_, so the predicate sees it — no
    // lost wakeups.
    uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(sleepMutex_);
      seen = version_;
    }
    if (findTask(index, task)) {
      runTask(task);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lock(sleepMutex_);
    wake_.wait(lock, [this, seen] {
      return version_ != seen || stopping_.load(std::memory_order_relaxed);
    });
  }
}

struct TaskGroup::Shared {
  std::mutex mutex;
  std::condition_variable changed;
  /// Subtasks not yet claimed by a worker or a helping waiter, each tagged
  /// with its submission index for first-error-by-index reporting.
  std::deque<std::pair<size_t, std::function<void()>>> pending;
  size_t submitted = 0;
  size_t finished = 0;
  size_t errorIndex = SIZE_MAX;
  std::exception_ptr error;
};

TaskGroup::TaskGroup(ThreadPool& pool)
    : pool_(pool), shared_(std::make_shared<Shared>()) {}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // The destructor only guarantees the join; callers that care about the
    // subtask outcome call wait() themselves.
  }
}

void TaskGroup::run(std::function<void()> fn) {
  size_t index;
  {
    std::lock_guard<std::mutex> lock(shared_->mutex);
    index = shared_->submitted++;
    shared_->pending.emplace_back(index, std::move(fn));
  }
  // The tick makes the subtask available to pool workers; a helping wait()
  // may claim the subtask first, in which case the tick finds an empty
  // pending deque and returns.
  std::shared_ptr<Shared> shared = shared_;
  try {
    pool_.submitRaw([shared] { runOne(shared); });
  } catch (...) {
    // Pool stopping: withdraw the subtask (unless a concurrent helper
    // already claimed it) so wait() does not hang on a tick-less entry.
    std::lock_guard<std::mutex> lock(shared_->mutex);
    for (auto it = shared_->pending.rbegin(); it != shared_->pending.rend();
         ++it) {
      if (it->first == index) {
        shared_->pending.erase(std::next(it).base());
        --shared_->submitted;
        break;
      }
    }
    throw;
  }
  // Counted only after the tick is enqueued (which already bumped
  // pool.tasks), so a concurrent counter snapshot always sees
  // pool.tasks_nested <= pool.tasks — metrics_check enforces that.
  if (ThreadPool::inPoolTask()) {
    support::trace::countGlobal("pool.tasks_nested", 1);
  }
}

void TaskGroup::runOne(const std::shared_ptr<Shared>& shared) {
  size_t index;
  std::function<void()> fn;
  {
    std::lock_guard<std::mutex> lock(shared->mutex);
    if (shared->pending.empty()) return;  // a helping wait() got there first
    index = shared->pending.front().first;
    fn = std::move(shared->pending.front().second);
    shared->pending.pop_front();
  }
  std::exception_ptr error;
  {
    // Subtasks run "in the pool" wherever they execute — including inline
    // on a helping waiter — so nested TaskGroup::run calls under them count
    // on pool.tasks_nested.
    TaskDepthGuard depth;
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
  }
  std::lock_guard<std::mutex> lock(shared->mutex);
  ++shared->finished;
  if (error != nullptr && index < shared->errorIndex) {
    shared->errorIndex = index;
    // Moved, not copied: a lingering worker-side reference could otherwise
    // be the one that frees the exception storage after wait() rethrows,
    // racing the waiter's read of the caught object.
    shared->error = std::move(error);
  }
  shared->changed.notify_all();
}

void TaskGroup::wait() {
  std::shared_ptr<Shared> shared = shared_;
  while (true) {
    bool help = false;
    {
      std::unique_lock<std::mutex> lock(shared->mutex);
      if (!shared->pending.empty()) {
        help = true;
      } else if (shared->finished == shared->submitted) {
        break;
      } else {
        // Every subtask is claimed; whoever claimed them makes progress
        // (a claimant can itself only block in a nested wait(), where it
        // helps its own nested group — induction on nesting depth).
        shared->changed.wait(lock, [&shared] {
          return !shared->pending.empty() ||
                 shared->finished == shared->submitted;
        });
        continue;
      }
    }
    if (help) runOne(shared);
  }
  std::lock_guard<std::mutex> lock(shared->mutex);
  if (shared->error != nullptr) {
    std::exception_ptr error = shared->error;
    shared->error = nullptr;
    shared->errorIndex = SIZE_MAX;
    std::rethrow_exception(error);
  }
}

}  // namespace cayman
