#include "support/thread_pool.h"

#include <cstdlib>

namespace cayman {

unsigned ThreadPool::defaultWorkers() {
  if (const char* env = std::getenv("CAYMAN_JOBS")) {
    char* end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0 && value <= 1024) {
      return static_cast<unsigned>(value);
    }
  }
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace cayman
