#include "support/thread_pool.h"

#include <cstdlib>

#include "support/strings.h"
#include "support/trace.h"

namespace cayman {

unsigned ThreadPool::defaultWorkers() {
  // Same strict parse as the --jobs flag (full consumption, [1, 1024]); a
  // malformed value falls back to hardware concurrency here because a
  // library has no usage-error channel — the CLI additionally validates the
  // variable up front and exits 2 on garbage.
  if (const char* env = std::getenv("CAYMAN_JOBS")) {
    if (std::optional<unsigned> jobs = parseJobs(env)) return *jobs;
  }
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = 1;
  support::trace::gauge("pool.workers", workers);
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // The span lands on this worker's (orphan) timeline: the task body
    // typically opens its own TaskScope, so workload-attributed events nest
    // inside while this one shows worker occupancy in wall-clock traces.
    support::trace::Span span("pool.task", "pool");
    support::trace::count("pool.tasks", 1);
    task();
  }
}

}  // namespace cayman
