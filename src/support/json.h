// Minimal JSON document model used by the observability exporters and the
// metrics schema checker.
//
// Determinism contract: `dump()` is a pure function of the document — object
// members keep insertion order, numbers are formatted with a fixed
// shortest-round-trip algorithm, and no locale or pointer-order state leaks
// in. Two structurally identical documents always serialize to identical
// bytes, which is what lets `--jobs 1` and `--jobs N` metrics files be
// compared with `cmp`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/status.h"

namespace cayman::support::json {

/// One JSON value. Objects preserve insertion order (determinism) and are
/// small vectors rather than maps: documents here have a handful of keys.
class Value {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Value() : kind_(Kind::Null) {}
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}                  // NOLINT
  Value(int64_t i) : kind_(Kind::Int), int_(i) {}                 // NOLINT
  Value(int i) : kind_(Kind::Int), int_(i) {}                     // NOLINT
  Value(unsigned u) : kind_(Kind::Int), int_(u) {}                // NOLINT
  Value(uint64_t u) : kind_(Kind::Int), int_(static_cast<int64_t>(u)) {}  // NOLINT
  Value(double d) : kind_(Kind::Double), double_(d) {}            // NOLINT
  Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}  // NOLINT
  Value(const char* s) : kind_(Kind::String), string_(s) {}       // NOLINT

  static Value array() { Value v; v.kind_ = Kind::Array; return v; }
  static Value object() { Value v; v.kind_ = Kind::Object; return v; }

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isBool() const { return kind_ == Kind::Bool; }
  bool isInt() const { return kind_ == Kind::Int; }
  /// Ints count as numbers too (JSON does not distinguish).
  bool isNumber() const { return kind_ == Kind::Int || kind_ == Kind::Double; }
  bool isString() const { return kind_ == Kind::String; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isObject() const { return kind_ == Kind::Object; }

  bool boolValue() const { return bool_; }
  int64_t intValue() const { return int_; }
  double numberValue() const {
    return kind_ == Kind::Int ? static_cast<double>(int_) : double_;
  }
  const std::string& stringValue() const { return string_; }

  /// Array access.
  const std::vector<Value>& items() const { return items_; }
  void push(Value value) { items_.push_back(std::move(value)); }
  size_t size() const { return items_.size(); }

  /// Object access. `set` appends (or overwrites an existing key in place,
  /// keeping its original position); `find` returns nullptr when missing.
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }
  void set(std::string key, Value value);
  const Value* find(std::string_view key) const;

  /// Serializes the document. indent < 0 emits the compact single-line form;
  /// indent >= 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

 private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Formats a double deterministically: the shortest of %.15g/%.16g/%.17g
/// that parses back to the same bits. NaN/inf (not representable in JSON)
/// serialize as null — callers are expected to have guarded them away.
std::string formatNumber(double value);

/// Escapes and quotes a string per RFC 8259.
std::string quote(std::string_view text);

/// Parses one JSON document (trailing garbage is an error). Failures come
/// back as a Diagnostic with a 1-based line:col position.
Expected<Value> parse(std::string_view text);

}  // namespace cayman::support::json
