// Structured status reporting for the evaluation pipeline.
//
// A `Diagnostic` pins a failure to a pipeline stage (parse/verify/analyze/
// profile/cache/select/merge), the pipeline unit it happened in (workload or module
// name), and — for ingestion stages — a 1-based line:col source position.
// `DiagnosticError` carries one through the exception path so the driver can
// turn it into a per-workload FAILED row instead of aborting a whole sweep;
// `Expected<T>` carries one through return values for callers that prefer
// status objects over exceptions (the hardened parser API, the fuzz harness).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "support/error.h"

namespace cayman::support {

/// Pipeline stages a failure can be attributed to. `Internal` is the bucket
/// for exceptions that escape outside any tracked stage.
enum class Stage {
  Parse,
  Verify,
  Analyze,
  Profile,
  Cache,
  Select,
  Merge,
  Internal,
};

/// Stable lower-case spelling ("parse", "verify", ...).
const char* stageName(Stage stage);

/// Inverse of stageName; nullopt for unknown spellings.
std::optional<Stage> stageByName(std::string_view name);

/// One structured failure report.
struct Diagnostic {
  Stage stage = Stage::Internal;
  /// Pipeline unit: workload or module name. May be empty when unknown.
  std::string unit;
  std::string message;
  /// 1-based source position for parse/verify diagnostics; 0 when absent.
  int line = 0;
  int col = 0;

  /// "parse error in 'atax' at 3:14: ..." — stage, unit and position are
  /// omitted when absent.
  std::string str() const;
};

/// Exception carrying a structured Diagnostic. Derives from Error so legacy
/// `catch (const Error&)` sites keep working; what() is Diagnostic::str().
class DiagnosticError : public Error {
 public:
  explicit DiagnosticError(Diagnostic diagnostic)
      : Error(diagnostic.str()), diagnostic_(std::move(diagnostic)) {}

  const Diagnostic& diagnostic() const { return diagnostic_; }

 private:
  Diagnostic diagnostic_;
};

/// Thrown by cooperative cancellation checkpoints when a deadline passed.
/// Distinct type so drivers can label rows as timeouts vs. faults.
class CancelledError : public DiagnosticError {
 public:
  using DiagnosticError::DiagnosticError;
};

/// Minimal Expected: a value or the Diagnostic explaining its absence.
template <typename T>
class Expected {
 public:
  Expected(T value) : state_(std::move(value)) {}             // NOLINT
  Expected(Diagnostic diagnostic) : state_(std::move(diagnostic)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  T& value() {
    CAYMAN_ASSERT(ok(), "Expected::value() on a failed Expected");
    return std::get<T>(state_);
  }
  const T& value() const {
    CAYMAN_ASSERT(ok(), "Expected::value() on a failed Expected");
    return std::get<T>(state_);
  }
  /// Moves the value out (the Expected is left holding a moved-from value).
  T takeValue() { return std::move(value()); }

  const Diagnostic& diagnostic() const {
    CAYMAN_ASSERT(!ok(), "Expected::diagnostic() on an ok Expected");
    return std::get<Diagnostic>(state_);
  }

 private:
  std::variant<T, Diagnostic> state_;
};

}  // namespace cayman::support
