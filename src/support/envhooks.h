// Strict parsing for the CAYMAN_INJECT_* test hooks.
//
// Three environment variables deliberately break the pipeline for fault-
// isolation and recovery testing:
//
//   CAYMAN_INJECT_FAULT=<workload>:<stage>       throw after a stage
//   CAYMAN_INJECT_SLOW=<workload>:generate:<us>  stall each generate() call
//   CAYMAN_INJECT_CORRUPT=<mode>:<offset>        damage a cache publish
//
// They used to be hand-parsed with silent fallbacks; a typo meant the hook
// quietly did nothing and the test passed vacuously. These parsers apply the
// same full-consumption discipline as the CLI's parseLong/parseDouble: a
// malformed spec is a loud, stage-attributed Diagnostic that callers turn
// into a failed workload row (driver) or an exit-2 usage error (CLI).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace cayman::support::envhooks {

/// CAYMAN_INJECT_FAULT: fail `workload` right after `stage` completes.
struct FaultSpec {
  std::string workload;
  Stage stage = Stage::Internal;
};

/// CAYMAN_INJECT_SLOW: stall every generate() call of `workload`.
struct SlowSpec {
  std::string workload;
  uint64_t micros = 0;
};

/// How CAYMAN_INJECT_CORRUPT damages a blobio publish (see blobio.h).
enum class CorruptMode {
  Truncate,  ///< after rename, truncate the published file to <offset> bytes
  Bitflip,   ///< after rename, flip one bit at byte <offset>
  Torn,      ///< publish only the first <offset> bytes (lost unsynced tail)
  Crash,     ///< write the temp file, then die before rename
};

struct CorruptSpec {
  CorruptMode mode = CorruptMode::Truncate;
  uint64_t offset = 0;
};

const char* corruptModeName(CorruptMode mode);

// Spec parsers: exact segment counts, strict numerics, named stages/modes.
// `text` is the raw variable value; the Diagnostic names the variable.
Expected<FaultSpec> parseInjectFault(std::string_view text);
Expected<SlowSpec> parseInjectSlow(std::string_view text);
Expected<CorruptSpec> parseInjectCorrupt(std::string_view text);

/// CAYMAN_INJECT_SLOW accepts a comma-separated list of specs so overlap
/// tests can stall *several* workloads in one run
/// (`fir:generate:50000,dotproduct:generate:50000`). Every element must
/// parse; empty elements (stray commas) are rejected. Duplicate workload
/// names are rejected too — the driver matches by name and a duplicate
/// would silently shadow.
Expected<std::vector<SlowSpec>> parseInjectSlowList(std::string_view text);

// getenv wrappers: unset (or empty) variable -> ok(nullopt / empty list);
// set but malformed -> the parser's failed Expected.
Expected<std::optional<FaultSpec>> envInjectFault();
Expected<std::vector<SlowSpec>> envInjectSlow();
Expected<std::optional<CorruptSpec>> envInjectCorrupt();

}  // namespace cayman::support::envhooks
