#include "support/blobio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "support/envhooks.h"

namespace cayman::support::blobio {

namespace {

Diagnostic ioError(const std::string& unit, const std::string& message) {
  return Diagnostic{Stage::Cache, unit, message};
}

std::string errnoText() { return std::strerror(errno); }

/// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78), byte-at-a-time.
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      entries[i] = crc;
    }
  }
};

void putU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void putU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t getU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t getU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

/// Writes all of `bytes` to `fd`, retrying short writes.
bool writeAll(int fd, std::string_view bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

/// Post-publish damage for the truncate/bitflip inject modes.
Expected<uint64_t> damagePublished(const std::string& path,
                                   const envhooks::CorruptSpec& spec,
                                   uint64_t written) {
  using envhooks::CorruptMode;
  if (spec.mode == CorruptMode::Truncate) {
    uint64_t keep = spec.offset < written ? spec.offset : written;
    if (::truncate(path.c_str(), static_cast<off_t>(keep)) != 0) {
      return ioError(path, "inject truncate failed: " + errnoText());
    }
    return keep;
  }
  // Bitflip: flip bit 0 of the byte at `offset` (clamped into the file).
  if (written == 0) return written;
  uint64_t at = spec.offset < written ? spec.offset : written - 1;
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return ioError(path, "inject bitflip open failed: " + errnoText());
  char byte = 0;
  bool ok = ::pread(fd, &byte, 1, static_cast<off_t>(at)) == 1;
  byte = static_cast<char>(byte ^ 0x01);
  ok = ok && ::pwrite(fd, &byte, 1, static_cast<off_t>(at)) == 1;
  ::close(fd);
  if (!ok) return ioError(path, "inject bitflip rewrite failed");
  return written;
}

}  // namespace

uint64_t fnv1a64(std::string_view bytes, uint64_t seed) {
  uint64_t hash = seed;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint32_t crc32c(std::string_view bytes) {
  static const Crc32cTable table;
  uint32_t crc = 0xFFFFFFFFu;
  for (char c : bytes) {
    crc = (crc >> 8) ^ table.entries[(crc ^ static_cast<unsigned char>(c)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

void ByteWriter::u32(uint32_t v) { putU32(out_, v); }
void ByteWriter::u64(uint64_t v) { putU64(out_, v); }

void ByteWriter::f64bits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out_, bits);
}

void ByteWriter::str(std::string_view s) {
  putU32(out_, static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

bool ByteReader::take(size_t n, const char** out) {
  if (failed_ || data_.size() - offset_ < n) {
    failed_ = true;
    return false;
  }
  *out = data_.data() + offset_;
  offset_ += n;
  return true;
}

bool ByteReader::u8(uint8_t& out) {
  const char* p = nullptr;
  if (!take(1, &p)) return false;
  out = static_cast<uint8_t>(*p);
  return true;
}

bool ByteReader::u32(uint32_t& out) {
  const char* p = nullptr;
  if (!take(4, &p)) return false;
  out = getU32(p);
  return true;
}

bool ByteReader::u64(uint64_t& out) {
  const char* p = nullptr;
  if (!take(8, &p)) return false;
  out = getU64(p);
  return true;
}

bool ByteReader::f64bits(double& out) {
  uint64_t bits = 0;
  if (!u64(bits)) return false;
  std::memcpy(&out, &bits, sizeof(out));
  return true;
}

bool ByteReader::str(std::string& out, uint32_t maxLen) {
  uint32_t len = 0;
  if (!u32(len)) return false;
  if (len > maxLen) {
    failed_ = true;
    return false;
  }
  const char* p = nullptr;
  if (!take(len, &p)) return false;
  out.assign(p, len);
  return true;
}

std::string buildStream(const std::vector<std::string>& payloads,
                        uint32_t version) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  putU32(out, version);
  putU64(out, payloads.size());
  out.resize(kHeaderBytes);  // reserve the header CRC slot
  uint32_t headerCrc = crc32c(std::string_view(out.data(), kHeaderBytes - 4));
  out.resize(kHeaderBytes - 4);
  putU32(out, headerCrc);
  for (const std::string& payload : payloads) {
    putU32(out, static_cast<uint32_t>(payload.size()));
    putU32(out, crc32c(payload));
    out += payload;
  }
  return out;
}

Expected<ParsedStream> parseStream(std::string_view bytes,
                                   const Limits& limits,
                                   const std::string& unit) {
  if (bytes.size() > limits.maxFileBytes) {
    return ioError(unit, "stream exceeds the file size cap");
  }
  if (bytes.size() < kHeaderBytes) {
    return ioError(unit, "stream shorter than the header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return ioError(unit, "bad magic (not a blobio stream)");
  }
  uint32_t storedHeaderCrc = getU32(bytes.data() + kHeaderBytes - 4);
  uint32_t actualHeaderCrc =
      crc32c(std::string_view(bytes.data(), kHeaderBytes - 4));
  if (storedHeaderCrc != actualHeaderCrc) {
    return ioError(unit, "header CRC mismatch");
  }
  ParsedStream stream;
  stream.version = getU32(bytes.data() + 4);
  stream.declaredCount = getU64(bytes.data() + 8);
  if (stream.version != kFormatVersion) {
    return ioError(unit, "unsupported stream format version " +
                             std::to_string(stream.version) + " (expected " +
                             std::to_string(kFormatVersion) + ")");
  }
  if (stream.declaredCount > limits.maxRecords) {
    return ioError(unit, "record count exceeds the cap");
  }

  size_t offset = kHeaderBytes;
  uint64_t seen = 0;
  while (seen < stream.declaredCount) {
    if (bytes.size() - offset < kRecordPrefixBytes) {
      break;  // the epilogue check below marks the stream truncated
    }
    uint32_t length = getU32(bytes.data() + offset);
    uint32_t storedCrc = getU32(bytes.data() + offset + 4);
    offset += kRecordPrefixBytes;
    if (length > limits.maxRecordBytes || bytes.size() - offset < length) {
      // Implausible length: either real truncation or a corrupted length
      // field. The framing can no longer be trusted past this point.
      stream.truncated = true;
      break;
    }
    std::string_view payload(bytes.data() + offset, length);
    offset += length;
    ++seen;
    if (crc32c(payload) != storedCrc) {
      ++stream.rejectedRecords;  // skip just this record
      continue;
    }
    stream.records.emplace_back(payload);
  }
  // Fewer records than promised, or trailing garbage after the promised
  // ones, both mean the file does not match its own framing.
  if (seen < stream.declaredCount || offset != bytes.size()) {
    stream.truncated = true;
  }
  return stream;
}

bool fileExists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

Expected<std::string> readFile(const std::string& path, const Limits& limits) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return ioError(path, "no such file");
    return ioError(path, "open failed: " + errnoText());
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ioError(path, "stat failed: " + errnoText());
  }
  if (static_cast<uint64_t>(st.st_size) > limits.maxFileBytes) {
    ::close(fd);
    return ioError(path, "file exceeds the size cap");
  }
  std::string bytes(static_cast<size_t>(st.st_size), '\0');
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::read(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  bytes.resize(done);
  return bytes;
}

Expected<uint64_t> writeFileAtomic(const std::string& path,
                                   std::string_view bytes) {
  Expected<std::optional<envhooks::CorruptSpec>> injected =
      envhooks::envInjectCorrupt();
  if (!injected.ok()) return injected.diagnostic();
  const std::optional<envhooks::CorruptSpec>& spec = injected.value();

  using envhooks::CorruptMode;
  std::string_view toWrite = bytes;
  if (spec.has_value() && spec->mode == CorruptMode::Torn) {
    toWrite = bytes.substr(0, spec->offset < bytes.size() ? spec->offset
                                                          : bytes.size());
  }

  std::string tmp = path + ".tmp." + std::to_string(::getpid());
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return ioError(path, "temp file open failed: " + errnoText());
  }
  bool ok = writeAll(fd, toWrite);
  ok = ::fsync(fd) == 0 && ok;
  ok = ::close(fd) == 0 && ok;
  if (!ok) {
    ::unlink(tmp.c_str());
    return ioError(path, "temp file write failed: " + errnoText());
  }
  if (spec.has_value() && spec->mode == CorruptMode::Crash) {
    // Simulated death between temp-file write and rename: the temp file is
    // left behind (as a crashed process would) and the target is untouched.
    return ioError(path, "injected crash before rename (CAYMAN_INJECT_CORRUPT)");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    std::string message = "rename failed: " + errnoText();
    ::unlink(tmp.c_str());
    return ioError(path, message);
  }
  uint64_t written = toWrite.size();
  if (spec.has_value() && (spec->mode == CorruptMode::Truncate ||
                           spec->mode == CorruptMode::Bitflip)) {
    return damagePublished(path, *spec, written);
  }
  return written;
}

}  // namespace cayman::support::blobio
