// Work-stealing thread pool for the evaluation driver and the model's
// nested region-level fan-out.
//
// Architecture:
//   - One deque per worker. A submit from a worker thread pushes to that
//     worker's own deque (LIFO bottom — cache-warm, depth-first); a submit
//     from any other thread lands in a global injection queue. Idle workers
//     drain their own deque first, then the injection queue, then steal from
//     sibling deques (FIFO top, so thieves take the oldest — coarsest —
//     work). Steals are counted on pool.steals.
//   - TaskGroup is the structured-fork primitive for nested parallelism:
//     run() submits subtasks, wait() *helps* — it pops and runs this group's
//     pending subtasks inline instead of blocking — so a task on a fixed
//     pool can fan out subtasks and join them without ever deadlocking, even
//     on a 1-worker pool (the waiter itself supplies the missing worker).
//   - Workers grow but never shrink: ensureWorkers() lets one shared()
//     process-wide pool be reused across driver and bench invocations
//     instead of constructing (and tearing down) a pool per call.
//
// Determinism contract: parallelIndexMap returns results in index order and
// surfaces the lowest-index exception; TaskGroup::wait rethrows the
// lowest-submission-index exception. The pool's own counters (pool.tasks,
// pool.steals, pool.tasks_nested) are schedule-dependent and therefore
// always recorded as *global* trace counters — they never enter the
// deterministic per-task records, so metrics and traces stay byte-identical
// at any worker count.
//
// Shutdown: the destructor drains every queued task, then joins. submit()
// during or after shutdown throws std::runtime_error — a silently dropped
// task is a hang in the caller, a thrown one is a bug report.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace cayman {

class ThreadPool {
 public:
  /// Hard cap on workers; matches the CLI's --jobs upper bound.
  static constexpr unsigned kMaxWorkers = 1024;

  /// Workers to use when the caller does not say: CAYMAN_JOBS from the
  /// environment when set, else std::thread::hardware_concurrency, never 0.
  static unsigned defaultWorkers();

  /// The process-wide shared pool (deliberately leaked — tasks may still be
  /// draining when static destructors run). Starts with a single worker so
  /// callers that asked for --jobs 1 get genuinely serial execution; grow it
  /// with ensureWorkers(jobs).
  static ThreadPool& shared();

  explicit ThreadPool(unsigned workers = defaultWorkers());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const {
    return workerCount_.load(std::memory_order_acquire);
  }

  /// Grows the pool to at least `workers` workers (never shrinks; capped at
  /// kMaxWorkers). Thread-safe; no-op when already large enough.
  void ensureWorkers(unsigned workers);

  /// True once destruction has begun (submit() would throw).
  bool stopping() const {
    return stopping_.load(std::memory_order_acquire);
  }

  /// Enqueues `fn` and returns its future. Exceptions thrown by `fn`
  /// propagate through the future. Throws std::runtime_error when the pool
  /// is stopping: enqueueing into a dead pool would silently never run.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    submitRaw([task] { (*task)(); });
    return future;
  }

  /// Fire-and-forget submission (TaskGroup ticks, packaged submits). Same
  /// stopping behavior as submit().
  void submitRaw(std::function<void()> fn);

  /// True when the calling thread is currently executing a task of this
  /// pool (directly as a worker or inline through a helping wait).
  static bool inPoolTask();

 private:
  friend class TaskGroup;

  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> deque;
    std::thread thread;
  };

  void workerLoop(unsigned index);
  void runTask(std::function<void()>& task);
  bool findTask(unsigned selfIndex, std::function<void()>& task);
  void notifyOne();

  /// Fixed slot table so the steal scan can index workers lock-free: slots
  /// [0, workerCount_) are fully constructed before the count is published
  /// with release ordering.
  std::array<std::unique_ptr<Worker>, kMaxWorkers> slots_;
  std::atomic<unsigned> workerCount_{0};
  std::mutex growMutex_;  ///< serializes ensureWorkers

  std::mutex injectMutex_;
  std::deque<std::function<void()>> inject_;

  /// Sleep coordination: workers re-scan when `version_` moved since their
  /// last empty scan, so a submit between scan and wait cannot be lost.
  std::mutex sleepMutex_;
  std::condition_variable wake_;
  uint64_t version_ = 0;

  std::atomic<bool> stopping_{false};
};

/// Structured fork/join for nested parallelism on a fixed pool. run()
/// submits subtasks; wait() helps (runs pending subtasks of *this group*
/// inline) until every subtask finished, then rethrows the exception of the
/// lowest-submission-index failed subtask, if any. The destructor waits too
/// (swallowing exceptions), so a group can never outlive its subtasks.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool);
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits one subtask. Counted on pool.tasks_nested when called from
  /// inside a pool task (the nested-parallelism case this type exists for).
  void run(std::function<void()> fn);

  /// Helping join; safe to call repeatedly (later calls join later run()s).
  void wait();

 private:
  struct Shared;
  static void runOne(const std::shared_ptr<Shared>& shared);

  ThreadPool& pool_;
  std::shared_ptr<Shared> shared_;
};

/// Runs fn(0), ..., fn(n - 1) on the pool and returns the results ordered by
/// index. The schedule is nondeterministic; the result vector is not.
/// `submitOrder`, when non-empty, must be a permutation of [0, n) and only
/// changes the order tasks are *enqueued* (e.g. LPT: longest first) — never
/// the order of results or which exception surfaces (always the
/// lowest-index one, because futures are consumed in index order).
template <typename Fn>
auto parallelIndexMap(ThreadPool& pool, size_t n, Fn fn,
                      const std::vector<size_t>& submitOrder = {})
    -> std::vector<std::invoke_result_t<Fn, size_t>> {
  using Result = std::invoke_result_t<Fn, size_t>;
  std::vector<std::future<Result>> futures(n);
  auto submitAt = [&](size_t i) {
    futures[i] = pool.submit([fn, i] { return fn(i); });
  };
  if (submitOrder.empty()) {
    for (size_t i = 0; i < n; ++i) submitAt(i);
  } else {
    for (size_t i : submitOrder) submitAt(i);
  }
  std::vector<Result> results;
  results.reserve(n);
  for (auto& future : futures) {
    results.push_back(future.get());
  }
  return results;
}

}  // namespace cayman
