// Fixed-size thread pool for the evaluation driver: `submit` returns a
// std::future, `parallelIndexMap` fans an index range out across the workers
// and returns the results in index order, so parallel runs are bit-identical
// to sequential ones as long as each task is a pure function of its index.
//
// No work stealing, no priorities: DSE tasks (one workload or one budget
// point each) are coarse enough that a single locked queue never contends.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cayman {

class ThreadPool {
 public:
  /// Workers to use when the caller does not say: CAYMAN_JOBS from the
  /// environment when set, else std::thread::hardware_concurrency, never 0.
  static unsigned defaultWorkers();

  explicit ThreadPool(unsigned workers = defaultWorkers());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  /// Enqueues `fn` and returns its future. Exceptions thrown by `fn`
  /// propagate through the future.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

 private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

/// Runs fn(0), ..., fn(n - 1) on the pool and returns the results ordered by
/// index. The schedule is nondeterministic; the result vector is not.
template <typename Fn>
auto parallelIndexMap(ThreadPool& pool, size_t n, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, size_t>> {
  using Result = std::invoke_result_t<Fn, size_t>;
  std::vector<std::future<Result>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([fn, i] { return fn(i); }));
  }
  std::vector<Result> results;
  results.reserve(n);
  for (std::future<Result>& future : futures) {
    results.push_back(future.get());
  }
  return results;
}

}  // namespace cayman
