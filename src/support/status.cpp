#include "support/status.h"

#include <sstream>

namespace cayman::support {

const char* stageName(Stage stage) {
  switch (stage) {
    case Stage::Parse: return "parse";
    case Stage::Verify: return "verify";
    case Stage::Analyze: return "analyze";
    case Stage::Profile: return "profile";
    case Stage::Cache: return "cache";
    case Stage::Select: return "select";
    case Stage::Merge: return "merge";
    case Stage::Internal: return "internal";
  }
  return "internal";
}

std::optional<Stage> stageByName(std::string_view name) {
  for (Stage stage : {Stage::Parse, Stage::Verify, Stage::Analyze,
                      Stage::Profile, Stage::Cache, Stage::Select,
                      Stage::Merge, Stage::Internal}) {
    if (name == stageName(stage)) return stage;
  }
  return std::nullopt;
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  os << stageName(stage) << " error";
  if (!unit.empty()) os << " in '" << unit << "'";
  if (line > 0) {
    os << " at " << line;
    if (col > 0) os << ":" << col;
  }
  os << ": " << message;
  return os.str();
}

}  // namespace cayman::support
