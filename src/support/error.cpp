#include "support/error.h"

namespace cayman {

void assertFail(const char* expr, const char* file, int line,
                const std::string& message) {
  throw Error(std::string("assertion failed: ") + expr + " at " + file + ":" +
              std::to_string(line) + ": " + message);
}

}  // namespace cayman
