// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cayman {

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string_view> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True when `text` starts with `prefix`.
bool startsWith(std::string_view text, std::string_view prefix);

/// Formats a double with fixed precision (no locale surprises).
std::string formatFixed(double value, int digits);

}  // namespace cayman
