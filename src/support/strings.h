// Small string helpers shared across modules.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cayman {

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string_view> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True when `text` starts with `prefix`.
bool startsWith(std::string_view text, std::string_view prefix);

/// Formats a double with fixed precision (no locale surprises).
std::string formatFixed(double value, int digits);

// Strict numeric parsing shared by every CLI flag and env knob. All three
// reject empty input, trailing garbage ("8x", "1e2" for integers), and
// out-of-range values — the strtol/strtod full-consumption pattern. Callers
// get nullopt instead of a silently-degenerate value (the old atof-style
// bugs: "--jobs 0" spinning up zero workers, "0.25x" evaluating at budget 0).

/// Base-10 integer in [minValue, maxValue].
std::optional<long> parseLong(const char* text, long minValue, long maxValue);

/// Finite double in (minExclusive, maxInclusive]; rejects NaN and overflow
/// (ERANGE, e.g. "1e999").
std::optional<double> parseDouble(const char* text, double minExclusive,
                                  double maxInclusive);

/// Worker/job count: integer in [1, maxJobs]. Used by --jobs and the
/// CAYMAN_JOBS environment knob so both accept exactly the same spellings.
std::optional<unsigned> parseJobs(const char* text, unsigned maxJobs = 1024);

}  // namespace cayman
