// Pipeline-wide tracing and metrics (the observability layer).
//
// Design:
//   - A process-global TraceRecorder that is OFF by default. Every probe
//     (Span, count, gauge, addStageSeconds) starts with a single relaxed
//     atomic load; when tracing is disabled nothing else happens, so hot
//     paths (interpreter dispatch, selector DP) pay one predictable branch.
//   - Work units register a TaskScope (workload name + stable index). All
//     probes on that thread then record into the scope's private buffer —
//     no locking, no cross-thread contention — and the buffer is published
//     to the recorder when the scope closes. Records are drained sorted by
//     index, so parallel runs export byte-identically to sequential ones
//     (the same discipline as parallelIndexMap).
//   - Probes fired outside any TaskScope go to a per-thread "orphan" buffer
//     (worker-lifetime spans) or a global counter map. Orphan data is
//     inherently schedule-dependent and is only exported in wall-clock mode.
//
// Export: Chrome trace-event JSON (chrome://tracing, ui.perfetto.dev) with
// balanced B/E pairs. Two time modes:
//   - deterministic (default): timestamps are per-task event ordinals, so
//     the file is a pure function of the work and bit-identical across jobs
//     counts and runs. Use for regression diffing and CI artifacts.
//   - wall: real steady-clock microseconds. Use for actual profiling.
//
// Env: CAYMAN_TRACE=1 enables the global recorder at first use (for
// instrumenting binaries that take no CLI flags, e.g. the benches).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.h"

namespace cayman::support::trace {

/// Fast path: is the global recorder recording? Single relaxed atomic load.
bool on();

/// One Begin or End event. Complete spans are always recorded as a balanced
/// B/E pair in buffer order, which keeps nesting explicit for the exporter.
struct Event {
  enum class Phase : uint8_t { Begin, End };
  Phase phase = Phase::Begin;
  std::string name;
  std::string category;
  uint64_t wallNs = 0;  ///< steady-clock, common process epoch
};

/// Everything one task (workload) recorded, published on TaskScope close.
struct TaskRecord {
  std::string unit;   ///< workload / module name
  size_t index = 0;   ///< stable output position (workload registry order)
  std::vector<Event> events;
  /// Monotonic counters, sorted by name at publish time.
  std::vector<std::pair<std::string, uint64_t>> counters;
  /// Per-stage wall seconds accumulated by the pipeline checkpoints.
  std::vector<std::pair<std::string, double>> stageSeconds;
  double totalSeconds = 0.0;  ///< TaskScope open -> close
};

/// Schedule-dependent data recorded outside any TaskScope (one per thread
/// that fired orphan probes, e.g. pool workers). Wall-mode export only.
struct OrphanRecord {
  std::string label;  ///< "thread-<registration order>"
  std::vector<Event> events;
};

class TraceRecorder {
 public:
  /// The process-global recorder used by all probes. First call honours
  /// CAYMAN_TRACE=1.
  static TraceRecorder& global();

  /// Turns recording on or off. Existing records are kept.
  void setEnabled(bool enabled);
  bool enabled() const;

  /// Discards all published records and global counters.
  void clear();

  /// Global (out-of-task) counters: schedule-independent totals like
  /// pool.tasks. Thread-safe.
  void countGlobal(const std::string& name, uint64_t delta);
  /// Global gauges: last-written values (e.g. pool.workers). Thread-safe.
  void setGauge(const std::string& name, int64_t value);
  /// Raises gauge `name` to at least `value` — a monotonic high-water mark
  /// (e.g. model.cold_inflight_peak), safe against racing late writers that
  /// would regress a last-write gauge. Thread-safe.
  void setGaugeMax(const std::string& name, int64_t value);

  /// Takes every published task record, sorted by (index, unit); the
  /// recorder keeps running. Orphan buffers of live threads stay attached.
  std::vector<TaskRecord> drainTasks();
  std::vector<OrphanRecord> drainOrphans();
  std::vector<std::pair<std::string, uint64_t>> globalCounters() const;
  std::vector<std::pair<std::string, int64_t>> gauges() const;

  // Internal publication API used by TaskScope / orphan buffers.
  void publishTask(TaskRecord record);
  void publishOrphan(OrphanRecord record);

 private:
  mutable std::mutex mutex_;
  std::vector<TaskRecord> tasks_;
  std::vector<OrphanRecord> orphans_;
  std::vector<std::pair<std::string, uint64_t>> globalCounters_;
  std::vector<std::pair<std::string, int64_t>> gauges_;
  size_t orphanLabels_ = 0;
};

/// Declares "this thread is now running work unit `unit` at output position
/// `index`". Probes on the thread record into this scope until it closes;
/// closing publishes the record. Scopes nest (the inner one wins); a scope
/// created while tracing is off is inert even if tracing turns on later.
class TaskScope {
 public:
  TaskScope(std::string unit, size_t index);
  ~TaskScope();
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

  /// Implementation detail (defined in trace.cpp; public so the thread-local
  /// current-scope pointer can name it).
  struct State;

 private:
  State* state_ = nullptr;
  State* previous_ = nullptr;
  uint64_t beginNs_ = 0;
};

/// RAII span. Constructing records a Begin event, destroying the matching
/// End. No-op when tracing is off or (for task-attributed data) outside any
/// scope — outside a scope it records into the thread's orphan buffer.
class Span {
 public:
  explicit Span(std::string name, std::string category = "stage");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
  std::string name_;
  std::string category_;
};

/// Captures every trace::count fired on this thread while alive, instead of
/// letting it reach the ambient TaskScope or the global map. This is the
/// determinism primitive for nested parallelism: a pool worker (or helping
/// waiter) generating region R on behalf of workload W runs under a capture,
/// so R's model.*/sched.* deltas never leak into whatever scope the
/// executing thread happens to carry; the coordinating thread later replays
/// the captured deltas into W's TaskScope in traversal order.
///
/// Captures intercept *before* the global on() check: the persistent model
/// cache needs per-region counter deltas even when tracing is disabled.
/// Spans and addStageSeconds are suppressed while a capture is active
/// (events are position-dependent and cannot be replayed deterministically).
/// Captures nest; the innermost wins.
class CounterCapture {
 public:
  CounterCapture();
  ~CounterCapture();
  CounterCapture(const CounterCapture&) = delete;
  CounterCapture& operator=(const CounterCapture&) = delete;

  /// All captured (name, delta) pairs sorted by name; clears the capture.
  std::vector<std::pair<std::string, uint64_t>> take();
  /// Current captured total for `name` (0 when absent).
  uint64_t value(const std::string& name) const;

  /// Implementation detail (defined in trace.cpp).
  struct State;

 private:
  State* state_ = nullptr;
  State* previous_ = nullptr;
};

/// Adds `delta` to counter `name`: into the innermost CounterCapture if one
/// is active on this thread (even with tracing off), else task-local inside
/// a TaskScope (fully deterministic), else global.
void count(const std::string& name, uint64_t delta);

/// Adds `delta` directly to the global counter map, bypassing any TaskScope
/// or CounterCapture. For schedule-dependent pool internals (pool.tasks,
/// pool.steals, pool.tasks_nested) that must never enter a deterministic
/// task record — or a capture that replays into one.
void countGlobal(const std::string& name, uint64_t delta);

/// True when the calling thread is inside a TaskScope.
bool inTask();

/// Accumulates pipeline-stage wall seconds into the current TaskScope.
void addStageSeconds(const std::string& stage, double seconds);

/// Sets a global gauge (no-op when tracing is off).
void gauge(const std::string& name, int64_t value);

/// Raises a global gauge to at least `value` (no-op when tracing is off).
void gaugeMax(const std::string& name, int64_t value);

/// Names this thread's orphan record (e.g. "pool-worker-3") instead of the
/// default publish-order "thread-<n>" label. Wall-mode traces only.
void setThreadLabel(std::string label);

/// Steady-clock nanoseconds since the recorder's process epoch.
uint64_t nowNs();

enum class TimeMode {
  Deterministic,  ///< ordinal timestamps; bit-identical across runs
  Wall,           ///< real steady-clock timestamps
};

/// Builds a Chrome trace-event document ({"traceEvents": [...]}).
/// Deterministic mode exports task records only; wall mode adds orphan
/// (worker) timelines and global gauges as metadata.
json::Value chromeTrace(const std::vector<TaskRecord>& tasks,
                        const std::vector<OrphanRecord>& orphans,
                        TimeMode mode);

}  // namespace cayman::support::trace
