#include "support/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>

namespace cayman::support::trace {

namespace {

/// Single global switch all probes check first. Kept outside the recorder so
/// `on()` is one relaxed load with no function-local-static guard.
std::atomic<bool> g_enabled{false};

std::chrono::steady_clock::time_point processEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// Per-thread buffer for probes fired outside any TaskScope (pool worker
/// lifetimes). Published to the global recorder when the thread exits.
struct OrphanBuffer {
  std::string label;  ///< optional override set via setThreadLabel
  std::vector<Event> events;
  ~OrphanBuffer();
};

thread_local OrphanBuffer t_orphan;

}  // namespace

bool on() { return g_enabled.load(std::memory_order_relaxed); }

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - processEpoch())
          .count());
}

TraceRecorder& TraceRecorder::global() {
  // Deliberately leaked: orphan buffers publish from thread_local
  // destructors, which may run after function-local statics are destroyed.
  static TraceRecorder* recorder = [] {
    auto* r = new TraceRecorder();
    const char* env = std::getenv("CAYMAN_TRACE");
    if (env != nullptr && env[0] == '1' && env[1] == '\0') {
      r->setEnabled(true);
    }
    return r;
  }();
  return *recorder;
}

void TraceRecorder::setEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceRecorder::enabled() const { return on(); }

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  tasks_.clear();
  orphans_.clear();
  globalCounters_.clear();
  gauges_.clear();
  orphanLabels_ = 0;
}

void TraceRecorder::countGlobal(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [existing, value] : globalCounters_) {
    if (existing == name) {
      value += delta;
      return;
    }
  }
  globalCounters_.emplace_back(name, delta);
}

void TraceRecorder::setGauge(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [existing, slot] : gauges_) {
    if (existing == name) {
      slot = value;
      return;
    }
  }
  gauges_.emplace_back(name, value);
}

void TraceRecorder::setGaugeMax(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [existing, slot] : gauges_) {
    if (existing == name) {
      if (value > slot) slot = value;
      return;
    }
  }
  gauges_.emplace_back(name, value);
}

std::vector<TaskRecord> TraceRecorder::drainTasks() {
  std::vector<TaskRecord> result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    result.swap(tasks_);
  }
  std::sort(result.begin(), result.end(),
            [](const TaskRecord& a, const TaskRecord& b) {
              if (a.index != b.index) return a.index < b.index;
              return a.unit < b.unit;
            });
  return result;
}

std::vector<OrphanRecord> TraceRecorder::drainOrphans() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<OrphanRecord> result;
  result.swap(orphans_);
  return result;
}

std::vector<std::pair<std::string, uint64_t>> TraceRecorder::globalCounters()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto result = globalCounters_;
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::pair<std::string, int64_t>> TraceRecorder::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto result = gauges_;
  std::sort(result.begin(), result.end());
  return result;
}

void TraceRecorder::publishTask(TaskRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  tasks_.push_back(std::move(record));
}

void TraceRecorder::publishOrphan(OrphanRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (record.label.empty()) {
    record.label = "thread-" + std::to_string(orphanLabels_++);
  }
  orphans_.push_back(std::move(record));
}

namespace {

OrphanBuffer::~OrphanBuffer() {
  if (events.empty()) return;
  OrphanRecord record;
  record.label = std::move(label);
  record.events = std::move(events);
  TraceRecorder::global().publishOrphan(std::move(record));
}

}  // namespace

void setThreadLabel(std::string label) { t_orphan.label = std::move(label); }

struct TaskScope::State {
  TaskRecord record;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> stages;
};

namespace {
thread_local TaskScope::State* t_current = nullptr;
}  // namespace

TaskScope::TaskScope(std::string unit, size_t index) {
  if (!on()) return;
  state_ = new State();
  state_->record.unit = std::move(unit);
  state_->record.index = index;
  previous_ = t_current;
  t_current = state_;
  beginNs_ = nowNs();
  state_->record.events.push_back(
      Event{Event::Phase::Begin, "workload:" + state_->record.unit, "task",
            beginNs_});
}

TaskScope::~TaskScope() {
  if (state_ == nullptr) return;
  uint64_t endNs = nowNs();
  state_->record.events.push_back(
      Event{Event::Phase::End, "workload:" + state_->record.unit, "task",
            endNs});
  state_->record.totalSeconds =
      static_cast<double>(endNs - beginNs_) * 1e-9;
  state_->record.counters.assign(state_->counters.begin(),
                                 state_->counters.end());
  state_->record.stageSeconds.assign(state_->stages.begin(),
                                     state_->stages.end());
  t_current = previous_;
  TraceRecorder::global().publishTask(std::move(state_->record));
  delete state_;
}

struct CounterCapture::State {
  std::map<std::string, uint64_t> counters;
};

namespace {

thread_local CounterCapture::State* t_capture = nullptr;

/// The buffer a span or event lands in: the active task if any, otherwise
/// the thread's orphan buffer.
std::vector<Event>& eventSink() {
  if (t_current != nullptr) return t_current->record.events;
  return t_orphan.events;
}

}  // namespace

CounterCapture::CounterCapture() {
  state_ = new State();
  previous_ = t_capture;
  t_capture = state_;
}

CounterCapture::~CounterCapture() {
  t_capture = previous_;
  delete state_;
}

std::vector<std::pair<std::string, uint64_t>> CounterCapture::take() {
  std::vector<std::pair<std::string, uint64_t>> result(
      state_->counters.begin(), state_->counters.end());
  state_->counters.clear();
  return result;
}

uint64_t CounterCapture::value(const std::string& name) const {
  auto it = state_->counters.find(name);
  return it == state_->counters.end() ? 0 : it->second;
}

Span::Span(std::string name, std::string category) {
  // Captures suppress spans: a span fired while generating on behalf of
  // another task is position-dependent and cannot be replayed
  // deterministically the way counter deltas can.
  if (!on() || t_capture != nullptr) return;
  active_ = true;
  name_ = std::move(name);
  category_ = std::move(category);
  eventSink().push_back(Event{Event::Phase::Begin, name_, category_, nowNs()});
}

Span::~Span() {
  if (!active_) return;
  eventSink().push_back(Event{Event::Phase::End, name_, category_, nowNs()});
}

void count(const std::string& name, uint64_t delta) {
  // The capture check precedes on(): persistent-cache accounting consumes
  // captured deltas even when tracing is disabled.
  if (t_capture != nullptr) {
    t_capture->counters[name] += delta;
    return;
  }
  if (!on()) return;
  if (t_current != nullptr) {
    t_current->counters[name] += delta;
  } else {
    TraceRecorder::global().countGlobal(name, delta);
  }
}

void countGlobal(const std::string& name, uint64_t delta) {
  if (!on()) return;
  TraceRecorder::global().countGlobal(name, delta);
}

bool inTask() { return t_current != nullptr; }

void addStageSeconds(const std::string& stage, double seconds) {
  if (!on() || t_capture != nullptr) return;
  if (t_current != nullptr) t_current->stages[stage] += seconds;
}

void gauge(const std::string& name, int64_t value) {
  if (!on()) return;
  TraceRecorder::global().setGauge(name, value);
}

void gaugeMax(const std::string& name, int64_t value) {
  if (!on()) return;
  TraceRecorder::global().setGaugeMax(name, value);
}

namespace {

json::Value traceEvent(const Event& event, size_t tid, json::Value ts) {
  json::Value e = json::Value::object();
  e.set("ph", event.phase == Event::Phase::Begin ? "B" : "E");
  e.set("name", event.name);
  e.set("cat", event.category);
  e.set("pid", int64_t{0});
  e.set("tid", static_cast<int64_t>(tid));
  e.set("ts", std::move(ts));
  return e;
}

json::Value threadName(size_t tid, const std::string& name) {
  json::Value e = json::Value::object();
  e.set("ph", "M");
  e.set("name", "thread_name");
  e.set("pid", int64_t{0});
  e.set("tid", static_cast<int64_t>(tid));
  json::Value args = json::Value::object();
  args.set("name", name);
  e.set("args", std::move(args));
  return e;
}

}  // namespace

json::Value chromeTrace(const std::vector<TaskRecord>& tasks,
                        const std::vector<OrphanRecord>& orphans,
                        TimeMode mode) {
  json::Value events = json::Value::array();
  for (const TaskRecord& task : tasks) {
    size_t tid = task.index;
    events.push(threadName(tid, task.unit));
    uint64_t ordinal = 0;
    for (const Event& event : task.events) {
      json::Value ts =
          mode == TimeMode::Deterministic
              ? json::Value(static_cast<int64_t>(ordinal++))
              : json::Value(static_cast<double>(event.wallNs) * 1e-3);
      events.push(traceEvent(event, tid, std::move(ts)));
    }
  }
  if (mode == TimeMode::Wall) {
    // Worker / orphan timelines are schedule-dependent; they only appear in
    // wall-clock traces, on tids far above any workload index.
    size_t tid = 1000;
    for (const OrphanRecord& orphan : orphans) {
      events.push(threadName(tid, orphan.label));
      for (const Event& event : orphan.events) {
        events.push(traceEvent(
            event, tid, json::Value(static_cast<double>(event.wallNs) * 1e-3)));
      }
      ++tid;
    }
  }
  json::Value doc = json::Value::object();
  doc.set("traceEvents", std::move(events));
  return doc;
}

}  // namespace cayman::support::trace
