// Crash-safe binary record streams (the persistent-cache substrate).
//
// A blobio stream is a length-prefixed record container designed to be read
// back as hostile input, the same discipline as the hardened IR parser:
//
//   header:  "CYMB" magic | u32 format version | u64 record count | u32 CRC
//   record:  u32 payload length | u32 payload CRC32C | payload bytes
//
// All integers are little-endian and fixed-width. Reads are bounded by a
// `Limits` struct (the ParserLimits idiom), every record is integrity-checked
// with CRC32C, and parsing degrades instead of failing wholesale: a record
// whose CRC mismatches is skipped (counted in `rejectedRecords`), a stream
// that ends mid-record stops early (`truncated`), and only damage to the
// framing itself — bad magic, unknown version, corrupt header — rejects the
// whole stream via a failed Expected.
//
// Publication is atomic: writeFileAtomic() writes `path + ".tmp.<pid>"`,
// flushes it to disk, and rename(2)s it over the target, so a reader either
// sees the old complete file or the new complete file, never a torn one. The
// CAYMAN_INJECT_CORRUPT=<mode>:<offset> test hook (see support/envhooks.h)
// deliberately breaks this path to exercise recovery: truncate/bitflip
// damage the published file, torn publishes a partial write, crash dies
// between temp-file write and rename.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace cayman::support::blobio {

/// Stream format version; bump on any framing change.
inline constexpr uint32_t kFormatVersion = 1;
/// Stream magic ("CaYMan Blob").
inline constexpr char kMagic[4] = {'C', 'Y', 'M', 'B'};
/// Fixed sizes of the framing (header and per-record prefix).
inline constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4;
inline constexpr size_t kRecordPrefixBytes = 4 + 4;

/// FNV-1a 64-bit (content hashing: IR text, fingerprints). `seed` chains
/// multiple pieces: fnv1a64(b, fnv1a64(a)) hashes a||b.
inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
uint64_t fnv1a64(std::string_view bytes, uint64_t seed = kFnvOffset);

/// CRC-32C (Castagnoli), software table implementation. Catches all 1- and
/// 2-bit errors and any burst up to 32 bits per record.
uint32_t crc32c(std::string_view bytes);

/// Bounded-read caps applied while parsing untrusted streams.
struct Limits {
  uint64_t maxFileBytes = 256ull << 20;   ///< refuse larger files outright
  uint64_t maxRecordBytes = 16ull << 20;  ///< larger lengths = bad framing
  uint64_t maxRecords = 1ull << 20;
};

/// Little-endian primitive encoder for record payloads.
class ByteWriter {
 public:
  void u8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(uint32_t v);
  void u64(uint64_t v);
  /// Doubles travel as raw bit patterns: bit-exact round-trips, NaNs intact.
  void f64bits(double v);
  /// u32 length prefix + bytes.
  void str(std::string_view s);

  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounded little-endian decoder. Every read reports success; after the
/// first failure the reader is sticky-failed and all further reads fail, so
/// decode functions can chain reads and check once.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool u8(uint8_t& out);
  bool u32(uint32_t& out);
  bool u64(uint64_t& out);
  bool f64bits(double& out);
  /// Rejects lengths above maxLen before allocating.
  bool str(std::string& out, uint32_t maxLen);

  bool failed() const { return failed_; }
  bool done() const { return !failed_ && offset_ == data_.size(); }
  size_t offset() const { return offset_; }

 private:
  bool take(size_t n, const char** out);

  std::string_view data_;
  size_t offset_ = 0;
  bool failed_ = false;
};

/// Result of tolerantly parsing a record stream.
struct ParsedStream {
  uint32_t version = 0;
  uint64_t declaredCount = 0;       ///< record count the header promised
  std::vector<std::string> records; ///< payloads that passed their CRC
  uint64_t rejectedRecords = 0;     ///< CRC-mismatched records skipped
  bool truncated = false;           ///< stream ended mid-record / framing died
};

/// Serializes payloads into a complete stream (header + records + CRCs).
std::string buildStream(const std::vector<std::string>& payloads,
                        uint32_t version = kFormatVersion);

/// Parses a stream, tolerating per-record damage (see file comment). Fails
/// only on whole-stream problems: short/corrupt header, wrong magic,
/// unsupported version, file or record-count caps exceeded. `unit` labels
/// diagnostics (typically the file path).
Expected<ParsedStream> parseStream(std::string_view bytes,
                                   const Limits& limits,
                                   const std::string& unit = "");

/// True when `path` exists (stat-based; no read).
bool fileExists(const std::string& path);

/// Reads a whole file with the size cap applied before allocation. A
/// missing file is a failed Expected whose message starts with "no such
/// file" (callers treat that case as a clean cold start).
Expected<std::string> readFile(const std::string& path, const Limits& limits);

/// Atomically publishes `bytes` at `path` via temp file + fsync + rename.
/// Returns the number of bytes written. Honours CAYMAN_INJECT_CORRUPT
/// (malformed specs fail the write loudly rather than being ignored).
Expected<uint64_t> writeFileAtomic(const std::string& path,
                                   std::string_view bytes);

}  // namespace cayman::support::blobio
