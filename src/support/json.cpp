#include "support/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cayman::support::json {

void Value::set(std::string key, Value value) {
  for (auto& [existing, slot] : members_) {
    if (existing == key) {
      slot = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

const Value* Value::find(std::string_view key) const {
  for (const auto& [existing, slot] : members_) {
    if (existing == key) return &slot;
  }
  return nullptr;
}

std::string formatNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

std::string quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Value::dumpTo(std::string& out, int indent, int depth) const {
  auto newline = [&](int level) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<size_t>(indent * level), ' ');
  };
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Int: out += std::to_string(int_); break;
    case Kind::Double: out += formatNumber(double_); break;
    case Kind::String: out += quote(string_); break;
    case Kind::Array: {
      out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        items_[i].dumpTo(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        out += quote(members_[i].first);
        out += indent < 0 ? ":" : ": ";
        members_[i].second.dumpTo(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser with a depth cap, mirroring the hardened IR
/// parser's discipline: reject instead of crash on hostile input.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Expected<Value> run() {
    skipSpace();
    Value value;
    if (!parseValue(value, 0)) return takeError();
    skipSpace();
    if (pos_ != text_.size()) return error("trailing garbage after document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool parseValue(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return parseObject(out, depth);
      case '[': return parseArray(out, depth);
      case '"': return parseString(out);
      case 't': return parseLiteral("true", Value(true), out);
      case 'f': return parseLiteral("false", Value(false), out);
      case 'n': return parseLiteral("null", Value(), out);
      default: return parseNumber(out);
    }
  }

  bool parseObject(Value& out, int depth) {
    out = Value::object();
    ++pos_;  // '{'
    skipSpace();
    if (consume('}')) return true;
    while (true) {
      skipSpace();
      Value key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      if (!parseString(key)) return false;
      skipSpace();
      if (!consume(':')) return fail("expected ':' after object key");
      skipSpace();
      Value value;
      if (!parseValue(value, depth + 1)) return false;
      out.set(key.stringValue(), std::move(value));
      skipSpace();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(Value& out, int depth) {
    out = Value::array();
    ++pos_;  // '['
    skipSpace();
    if (consume(']')) return true;
    while (true) {
      skipSpace();
      Value value;
      if (!parseValue(value, depth + 1)) return false;
      out.push(std::move(value));
      skipSpace();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(Value& out) {
    ++pos_;  // '"'
    std::string result;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        out = Value(std::move(result));
        return true;
      }
      if (c != '\\') {
        result += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char escape = text_[pos_++];
      switch (escape) {
        case '"': result += '"'; break;
        case '\\': result += '\\'; break;
        case '/': result += '/'; break;
        case 'b': result += '\b'; break;
        case 'f': result += '\f'; break;
        case 'n': result += '\n'; break;
        case 'r': result += '\r'; break;
        case 't': result += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // Minimal UTF-8 encoding; surrogate pairs are passed through as
          // two 3-byte sequences (the exporters never emit them).
          if (code < 0x80) {
            result += static_cast<char>(code);
          } else if (code < 0x800) {
            result += static_cast<char>(0xC0 | (code >> 6));
            result += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            result += static_cast<char>(0xE0 | (code >> 12));
            result += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            result += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parseLiteral(std::string_view literal, Value value, Value& out) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return fail("unrecognized literal");
    }
    pos_ += literal.size();
    out = std::move(value);
    return true;
  }

  bool parseNumber(Value& out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool isDouble = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        isDouble = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    if (!isDouble) {
      long long value = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size()) {
        out = Value(static_cast<int64_t>(value));
        return true;
      }
    }
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("malformed number");
    out = Value(value);
    return true;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(std::string message) {
    if (error_.empty()) {
      error_ = std::move(message);
      errorPos_ = pos_;
    }
    return false;
  }

  Expected<Value> error(std::string message) {
    fail(std::move(message));
    return takeError();
  }

  Expected<Value> takeError() {
    Diagnostic diagnostic;
    diagnostic.stage = Stage::Parse;
    diagnostic.unit = "json";
    diagnostic.message = error_.empty() ? "malformed document" : error_;
    diagnostic.line = 1;
    diagnostic.col = 1;
    for (size_t i = 0; i < errorPos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++diagnostic.line;
        diagnostic.col = 1;
      } else {
        ++diagnostic.col;
      }
    }
    return diagnostic;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
  size_t errorPos_ = 0;
};

}  // namespace

Expected<Value> parse(std::string_view text) { return Parser(text).run(); }

}  // namespace cayman::support::json
