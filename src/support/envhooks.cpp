#include "support/envhooks.h"

#include <cstdlib>
#include <string>

#include "support/strings.h"

namespace cayman::support::envhooks {

namespace {

Diagnostic badSpec(const char* var, std::string_view text,
                   const std::string& expected) {
  return Diagnostic{Stage::Internal, var,
                    "invalid spec '" + std::string(text) + "' — expected " +
                        expected};
}

/// Offsets are byte positions inside a cache file; anything beyond 1 TiB is
/// a typo, not a file.
constexpr long kMaxOffset = 1ll << 40;
/// Stalls above 1000 s per call would deadlock CI long before testing it.
constexpr long kMaxStallUs = 1'000'000'000;

template <typename T>
Expected<std::optional<T>> fromEnv(const char* var,
                                   Expected<T> (*parse)(std::string_view)) {
  const char* value = std::getenv(var);
  if (value == nullptr || *value == '\0') {
    return std::optional<T>(std::nullopt);
  }
  Expected<T> parsed = parse(value);
  if (!parsed.ok()) return parsed.diagnostic();
  return std::optional<T>(parsed.takeValue());
}

}  // namespace

const char* corruptModeName(CorruptMode mode) {
  switch (mode) {
    case CorruptMode::Truncate: return "truncate";
    case CorruptMode::Bitflip: return "bitflip";
    case CorruptMode::Torn: return "torn";
    case CorruptMode::Crash: return "crash";
  }
  return "truncate";
}

Expected<FaultSpec> parseInjectFault(std::string_view text) {
  const char* var = "CAYMAN_INJECT_FAULT";
  std::vector<std::string_view> pieces = split(text, ':');
  if (pieces.size() != 2 || pieces[0].empty()) {
    return badSpec(var, text, "<workload>:<stage>");
  }
  std::optional<Stage> stage = stageByName(pieces[1]);
  if (!stage.has_value()) {
    return badSpec(var, text,
                   "a stage name (parse/verify/analyze/profile/cache/"
                   "select/merge/internal) after ':'");
  }
  return FaultSpec{std::string(pieces[0]), *stage};
}

Expected<SlowSpec> parseInjectSlow(std::string_view text) {
  const char* var = "CAYMAN_INJECT_SLOW";
  std::vector<std::string_view> pieces = split(text, ':');
  if (pieces.size() != 3 || pieces[0].empty() || pieces[1] != "generate") {
    return badSpec(var, text, "<workload>:generate:<microseconds>");
  }
  std::optional<long> micros =
      parseLong(std::string(pieces[2]).c_str(), 0, kMaxStallUs);
  if (!micros.has_value()) {
    return badSpec(var, text,
                   "an integer microsecond count in [0, 1e9] after "
                   "':generate:'");
  }
  return SlowSpec{std::string(pieces[0]), static_cast<uint64_t>(*micros)};
}

Expected<CorruptSpec> parseInjectCorrupt(std::string_view text) {
  const char* var = "CAYMAN_INJECT_CORRUPT";
  std::vector<std::string_view> pieces = split(text, ':');
  if (pieces.size() != 2) {
    return badSpec(var, text, "<truncate|bitflip|torn|crash>:<offset>");
  }
  std::optional<CorruptMode> mode;
  for (CorruptMode m : {CorruptMode::Truncate, CorruptMode::Bitflip,
                        CorruptMode::Torn, CorruptMode::Crash}) {
    if (pieces[0] == corruptModeName(m)) mode = m;
  }
  if (!mode.has_value()) {
    return badSpec(var, text, "a mode in {truncate, bitflip, torn, crash}");
  }
  std::optional<long> offset =
      parseLong(std::string(pieces[1]).c_str(), 0, kMaxOffset);
  if (!offset.has_value()) {
    return badSpec(var, text, "a byte offset in [0, 2^40] after ':'");
  }
  return CorruptSpec{*mode, static_cast<uint64_t>(*offset)};
}

Expected<std::vector<SlowSpec>> parseInjectSlowList(std::string_view text) {
  const char* var = "CAYMAN_INJECT_SLOW";
  std::vector<SlowSpec> specs;
  for (std::string_view piece : split(text, ',')) {
    if (piece.empty()) {
      return badSpec(var, text,
                     "a comma-separated list of "
                     "<workload>:generate:<microseconds> specs with no "
                     "empty elements");
    }
    Expected<SlowSpec> spec = parseInjectSlow(piece);
    if (!spec.ok()) return spec.diagnostic();
    for (const SlowSpec& existing : specs) {
      if (existing.workload == spec.value().workload) {
        return badSpec(var, text,
                       "at most one spec per workload (duplicate '" +
                           spec.value().workload + "')");
      }
    }
    specs.push_back(spec.takeValue());
  }
  return specs;
}

Expected<std::optional<FaultSpec>> envInjectFault() {
  return fromEnv("CAYMAN_INJECT_FAULT", parseInjectFault);
}

Expected<std::vector<SlowSpec>> envInjectSlow() {
  const char* value = std::getenv("CAYMAN_INJECT_SLOW");
  if (value == nullptr || *value == '\0') {
    return std::vector<SlowSpec>{};
  }
  return parseInjectSlowList(value);
}

Expected<std::optional<CorruptSpec>> envInjectCorrupt() {
  return fromEnv("CAYMAN_INJECT_CORRUPT", parseInjectCorrupt);
}

}  // namespace cayman::support::envhooks
