#include "support/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cayman {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.push_back(text.substr(start));
      break;
    }
    pieces.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string formatFixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::optional<long> parseLong(const char* text, long minValue,
                              long maxValue) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return std::nullopt;
  if (value < minValue || value > maxValue) return std::nullopt;
  return value;
}

std::optional<double> parseDouble(const char* text, double minExclusive,
                                  double maxInclusive) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) return std::nullopt;
  // !(value > min) also rejects NaN.
  if (!(value > minExclusive) || value > maxInclusive) return std::nullopt;
  return value;
}

std::optional<unsigned> parseJobs(const char* text, unsigned maxJobs) {
  std::optional<long> value =
      parseLong(text, 1, static_cast<long>(maxJobs));
  if (!value.has_value()) return std::nullopt;
  return static_cast<unsigned>(*value);
}

}  // namespace cayman
