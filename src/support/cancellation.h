// Cooperative cancellation for long-running pipeline stages.
//
// A CancelToken is a shared flag plus an optional wall-clock deadline. Hot
// loops (the interpreter's block dispatch, the selector's DP) poll it at a
// coarse granularity and bail out with a catchable CancelledError instead of
// hanging a whole sweep. Polling never blocks and the flag path is a single
// relaxed atomic load; the deadline path additionally reads the steady clock,
// so tight loops should rate-limit calls (see Interpreter's check counter).
#pragma once

#include <atomic>
#include <chrono>
#include <optional>
#include <string>

#include "support/status.h"

namespace cayman::support {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms a wall-clock deadline `seconds` from now (<= 0 disarms).
  void setTimeout(double seconds) {
    if (seconds > 0.0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(seconds));
    } else {
      deadline_.reset();
    }
  }

  /// Requests cancellation from any thread.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancelled or past the deadline (reads the clock when armed).
  bool expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return deadline_.has_value() &&
           std::chrono::steady_clock::now() >= *deadline_;
  }

  /// Checkpoint: throws CancelledError attributed to `stage`/`unit` when
  /// expired, otherwise returns immediately.
  void check(Stage stage, const std::string& unit = std::string()) const {
    if (!expired()) return;
    throw CancelledError(Diagnostic{
        stage, unit,
        deadline_.has_value() ? "timeout: wall-clock deadline exceeded"
                              : "cancelled"});
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::optional<std::chrono::steady_clock::time_point> deadline_;
};

}  // namespace cayman::support
