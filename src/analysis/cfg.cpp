#include "analysis/cfg.h"

#include <set>

namespace cayman::analysis {

Cfg::Cfg(const ir::Function& function) : function_(function) {
  // Iterative DFS producing post-order, then reverse it.
  std::set<const ir::BasicBlock*> visited;
  std::vector<std::pair<const ir::BasicBlock*, size_t>> stack;
  std::vector<const ir::BasicBlock*> postOrder;

  const ir::BasicBlock* entry = function.entry();
  stack.emplace_back(entry, 0);
  visited.insert(entry);
  while (!stack.empty()) {
    auto& [block, nextSucc] = stack.back();
    std::vector<const ir::BasicBlock*> succs = successors(block);
    if (nextSucc < succs.size()) {
      const ir::BasicBlock* succ = succs[nextSucc++];
      if (visited.insert(succ).second) stack.emplace_back(succ, 0);
    } else {
      postOrder.push_back(block);
      stack.pop_back();
    }
  }
  rpo_.assign(postOrder.rbegin(), postOrder.rend());
  for (size_t i = 0; i < rpo_.size(); ++i) {
    rpoIndex_[rpo_[i]] = static_cast<int>(i);
  }

  for (const ir::BasicBlock* block : rpo_) {
    const ir::Instruction* term = block->terminator();
    CAYMAN_ASSERT(term != nullptr, "unterminated block in Cfg");
    if (term->opcode() == ir::Opcode::Ret) exits_.push_back(block);
    for (const ir::BasicBlock* succ : term->successors()) {
      preds_[succ].push_back(block);
    }
  }
}

const std::vector<const ir::BasicBlock*>& Cfg::predecessors(
    const ir::BasicBlock* block) const {
  auto it = preds_.find(block);
  return it == preds_.end() ? empty_ : it->second;
}

int Cfg::rpoIndex(const ir::BasicBlock* block) const {
  auto it = rpoIndex_.find(block);
  return it == rpoIndex_.end() ? -1 : it->second;
}

}  // namespace cayman::analysis
