// Roofline / bottleneck classification of wPST candidate regions.
//
// For each candidate region the analysis derives an operational intensity
// (compute operations per byte moved, both per region entry) from the
// profile and the memory analysis, and classifies the region against the
// interface timing's bandwidth ceiling and the datapath's issue ceiling:
//
//   MemoryBound  — intensity well below the machine balance: runtime is
//                  dominated by moving bytes; widening the datapath cannot
//                  pay beyond the bandwidth-saturating unroll factor.
//   ComputeBound — intensity well above balance: runtime is dominated by
//                  datapath work; the unroll ladder is worth walking until
//                  the model scores a step worse.
//   Balanced     — within the hysteresis band around the ridge point.
//
// A second, orthogonal label comes from the scheduler's MII bounds: a
// pipelineable loop is *recurrence-limited* when recMII >= resMII at unroll
// 1, i.e. its II is pinned by a loop-carried dependence chain and no amount
// of memory-port replication can improve it.
//
// The analysis is a pure function of (wPST, profile, tech, timing): results
// are deterministic and invariant under uniform profile scaling, which the
// property tests pin down. It drives GenerateMode::Guided in the
// accelerator model but has no dependency on the model itself.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "analysis/memdep.h"
#include "analysis/regions.h"
#include "hls/scheduler.h"
#include "sim/profiler.h"

namespace cayman::analysis {

enum class Bottleneck {
  ComputeBound,
  MemoryBound,
  Balanced,
};

const char* bottleneckSpelling(Bottleneck b);

/// Classification of one candidate region. All "per entry" figures are
/// averages over the profiled run (dynamic counts / region entries).
struct RegionRoofline {
  /// Compute operations (arithmetic, compares, conversions, selects)
  /// executed per region entry.
  double opsPerEntry = 0.0;
  /// Floating-point subset of opsPerEntry (op mix via the tech library's
  /// opcode classification).
  double flopsPerEntry = 0.0;
  /// Bytes moved through load/store interfaces per region entry.
  double bytesPerEntry = 0.0;
  /// opsPerEntry / bytesPerEntry; +inf for regions that touch no memory.
  double intensity = 0.0;
  /// Ridge point of the ceilings: datapath ops/cycle over DMA bytes/cycle.
  double machineBalance = 0.0;
  Bottleneck bottleneck = Bottleneck::Balanced;
  /// True when the region contains a pipelineable loop whose II is pinned
  /// by a loop-carried recurrence (recMII >= resMII at unroll 1) — widening
  /// memory ports cannot improve such a loop's II.
  bool recurrenceLimited = false;
  /// Computed bandwidth-saturating unroll factor of the region's hottest
  /// pipelineable loop (1 when the region has none): beyond this factor the
  /// per-iteration traffic alone fills the II, so further widening moves
  /// the loop along the flat memory roof. Monotone non-increasing in the
  /// loop's bytes-per-iteration.
  unsigned saturatingUnroll = 1;
};

class RooflineAnalysis {
 public:
  RooflineAnalysis(const WPst& wpst, const sim::ProfileData& profile,
                   const hls::TechLibrary& tech, hls::InterfaceTiming timing,
                   double clockNs, uint64_t unknownTripFallback = 16);
  ~RooflineAnalysis();

  /// Classification for one region (memoized; thread-safe). Candidate
  /// regions only — other kinds return a default-constructed result.
  const RegionRoofline& classify(const Region* region) const;

  /// Label from intensity vs. machine balance with a 2x hysteresis band:
  /// intensity <= balance/2 -> MemoryBound, >= 2*balance -> ComputeBound,
  /// else Balanced. Exposed for property tests.
  static Bottleneck classifyIntensity(double intensity, double machineBalance);

  /// Unroll factor at which a pipelined loop's per-II traffic saturates the
  /// bandwidth ceiling: the II floor from bandwidth is u*bytesPerIter/BW
  /// cycles, so widening helps only while that floor sits below the
  /// recurrence floor — u_sat = max(1, floor(recMII * BW / bytesPerIter)).
  /// Monotone non-increasing in bytesPerIter; loops that touch no memory
  /// have no bandwidth ceiling (returns kUnbounded).
  static unsigned saturatingUnroll(unsigned recMii, double bytesPerIter,
                                   double bytesPerCycle);

  static constexpr unsigned kUnboundedUnroll = 1u << 16;

 private:
  struct FunctionBundle;

  const FunctionBundle& bundleFor(const ir::Function* function) const;
  RegionRoofline classifyUncached(const Region* region) const;
  /// Mirrors the accelerator model's pipelineable-shape test: innermost
  /// loop, bb children only, exactly one body block besides header/latch.
  const ir::BasicBlock* pipelineableBody(const Region* loopRegion) const;

  const WPst& wpst_;
  const sim::ProfileData& profile_;
  hls::Scheduler scheduler_;
  uint64_t unknownTripFallback_;

  std::map<const ir::Function*, std::unique_ptr<FunctionBundle>> bundles_;

  mutable std::mutex mutex_;
  /// Memoized results by Region::id(); pointers stay stable (unique_ptr).
  mutable std::vector<std::unique_ptr<RegionRoofline>> byId_;
};

}  // namespace cayman::analysis
