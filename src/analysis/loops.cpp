#include "analysis/loops.h"

#include <algorithm>

namespace cayman::analysis {

bool Loop::contains(const Loop* other) const {
  for (const Loop* l = other; l != nullptr; l = l->parent()) {
    if (l == this) return true;
  }
  return false;
}

LoopInfo::LoopInfo(const Cfg& cfg, const DominatorTree& domTree) {
  // 1. Find back edges (latch -> header with header dominating latch) and
  //    collect each natural loop's blocks by reverse reachability.
  for (const ir::BasicBlock* block : cfg.rpo()) {
    for (const ir::BasicBlock* succ : block->successors()) {
      if (!domTree.dominates(succ, block)) continue;
      // succ is a loop header, block the latch.
      auto loop = std::make_unique<Loop>();
      loop->header_ = succ;
      loop->latch_ = block;
      loop->blocks_.insert(succ);
      std::vector<const ir::BasicBlock*> work{block};
      while (!work.empty()) {
        const ir::BasicBlock* b = work.back();
        work.pop_back();
        if (!loop->blocks_.insert(b).second) continue;
        for (const ir::BasicBlock* pred : cfg.predecessors(b)) {
          work.push_back(pred);
        }
      }
      loops_.push_back(std::move(loop));
    }
  }

  // 2. Nesting: parent = smallest strictly-containing loop.
  for (auto& loop : loops_) {
    Loop* best = nullptr;
    for (auto& candidate : loops_) {
      if (candidate.get() == loop.get()) continue;
      if (candidate->blocks_.count(loop->header_) == 0) continue;
      if (candidate->blocks_.size() <= loop->blocks_.size()) continue;
      if (best == nullptr || candidate->blocks_.size() < best->blocks_.size()) {
        best = candidate.get();
      }
    }
    loop->parent_ = best;
    if (best != nullptr) {
      best->subLoops_.push_back(loop.get());
    } else {
      topLevel_.push_back(loop.get());
    }
  }
  for (auto& loop : loops_) {
    unsigned depth = 1;
    for (Loop* p = loop->parent_; p != nullptr; p = p->parent_) ++depth;
    loop->depth_ = depth;
  }

  // 3. Canonical-form features: preheader, exits, innermost map.
  for (auto& loop : loops_) {
    const ir::BasicBlock* preheader = nullptr;
    bool unique = true;
    for (const ir::BasicBlock* pred : cfg.predecessors(loop->header_)) {
      if (loop->contains(pred)) continue;
      if (preheader != nullptr) unique = false;
      preheader = pred;
    }
    loop->preheader_ = unique ? preheader : nullptr;

    std::set<const ir::BasicBlock*> exits;
    for (const ir::BasicBlock* block : loop->blocks_) {
      for (const ir::BasicBlock* succ : block->successors()) {
        if (!loop->contains(succ)) exits.insert(succ);
      }
    }
    loop->exits_.assign(exits.begin(), exits.end());
  }

  for (auto& loop : loops_) {
    for (const ir::BasicBlock* block : loop->blocks_) {
      auto [it, inserted] = innermost_.try_emplace(block, loop.get());
      if (!inserted && loop->depth_ > it->second->depth_) {
        it->second = loop.get();
      }
    }
  }

  // Deterministic order: outermost nests first, by header RPO position.
  auto byRpo = [&cfg](const Loop* a, const Loop* b) {
    return cfg.rpoIndex(a->header()) < cfg.rpoIndex(b->header());
  };
  std::sort(topLevel_.begin(), topLevel_.end(), byRpo);
  for (auto& loop : loops_) {
    std::sort(loop->subLoops_.begin(), loop->subLoops_.end(), byRpo);
  }
}

const Loop* LoopInfo::loopFor(const ir::BasicBlock* block) const {
  auto it = innermost_.find(block);
  return it == innermost_.end() ? nullptr : it->second;
}

}  // namespace cayman::analysis
