// Natural loop detection and the loop nesting forest.
#pragma once

#include <memory>
#include <set>

#include "analysis/dominators.h"

namespace cayman::analysis {

class Loop {
 public:
  const ir::BasicBlock* header() const { return header_; }
  const ir::BasicBlock* latch() const { return latch_; }
  /// Unique predecessor of the header from outside the loop; nullptr when
  /// the loop is not in canonical form.
  const ir::BasicBlock* preheader() const { return preheader_; }
  /// Blocks outside the loop reached from inside (canonical loops have one).
  const std::vector<const ir::BasicBlock*>& exitBlocks() const {
    return exits_;
  }

  const std::set<const ir::BasicBlock*>& blocks() const { return blocks_; }
  bool contains(const ir::BasicBlock* block) const {
    return blocks_.count(block) != 0;
  }
  bool contains(const Loop* other) const;

  Loop* parent() const { return parent_; }
  const std::vector<Loop*>& subLoops() const { return subLoops_; }
  /// 1 for outermost loops.
  unsigned depth() const { return depth_; }
  bool isInnermost() const { return subLoops_.empty(); }

  /// A printable label: the header block's name.
  const std::string& name() const { return header_->name(); }

 private:
  friend class LoopInfo;

  const ir::BasicBlock* header_ = nullptr;
  const ir::BasicBlock* latch_ = nullptr;
  const ir::BasicBlock* preheader_ = nullptr;
  std::vector<const ir::BasicBlock*> exits_;
  std::set<const ir::BasicBlock*> blocks_;
  Loop* parent_ = nullptr;
  std::vector<Loop*> subLoops_;
  unsigned depth_ = 1;
};

class LoopInfo {
 public:
  LoopInfo(const Cfg& cfg, const DominatorTree& domTree);

  /// All loops, outermost-first within each nest.
  const std::vector<std::unique_ptr<Loop>>& loops() const { return loops_; }
  const std::vector<Loop*>& topLevelLoops() const { return topLevel_; }

  /// Innermost loop containing `block`; nullptr when not in a loop.
  const Loop* loopFor(const ir::BasicBlock* block) const;
  unsigned loopDepth(const ir::BasicBlock* block) const {
    const Loop* loop = loopFor(block);
    return loop == nullptr ? 0 : loop->depth();
  }

 private:
  std::vector<std::unique_ptr<Loop>> loops_;
  std::vector<Loop*> topLevel_;
  std::map<const ir::BasicBlock*, Loop*> innermost_;
};

}  // namespace cayman::analysis
