#include "analysis/regions.h"

#include <algorithm>
#include <set>

namespace cayman::analysis {

namespace {

bool blockContainsCall(const ir::BasicBlock* block) {
  for (const auto& inst : block->instructions()) {
    if (inst->opcode() == ir::Opcode::Call) return true;
  }
  return false;
}

}  // namespace

WPst::WPst(const ir::Module& module) : module_(module) {
  for (const auto& function : module.functions()) {
    analyses_.emplace(function.get(),
                      std::make_unique<FunctionAnalyses>(*function));
  }

  root_ = std::make_unique<Region>();
  root_->kind_ = RegionKind::Root;
  root_->id_ = nextId_++;
  root_->label_ = "app:" + module.name();
  byId_.push_back(root_.get());

  for (const auto& function : module.functions()) {
    Region* functionRegion = makeRegion(RegionKind::Function, root_.get());
    functionRegion->function_ = function.get();
    functionRegion->label_ = "@" + function->name();
    functionRegion->anchor_ = function->entry();
    buildFunction(functionRegion, *function);
  }

  finalize(root_.get());
}

Region* WPst::makeRegion(RegionKind kind, Region* parent) {
  auto region = std::make_unique<Region>();
  region->kind_ = kind;
  region->id_ = nextId_++;
  region->parent_ = parent;
  Region* raw = region.get();
  byId_.push_back(raw);
  parent->children_.push_back(std::move(region));
  return raw;
}

void WPst::buildFunction(Region* functionRegion,
                         const ir::Function& function) {
  const FunctionAnalyses& fa = *analyses_.at(&function);
  functionRegion->blocks_ = fa.cfg.rpo();
  buildScope(functionRegion, function, fa.cfg.rpo(), nullptr);
}

void WPst::buildScope(Region* parent, const ir::Function& function,
                      const std::vector<const ir::BasicBlock*>& scope,
                      const Loop* context) {
  const FunctionAnalyses& fa = *analyses_.at(&function);
  std::set<const ir::BasicBlock*> scopeSet(scope.begin(), scope.end());
  std::set<const ir::BasicBlock*> assigned;

  auto makeBb = [&](const ir::BasicBlock* block, Region* owner) {
    Region* bb = makeRegion(RegionKind::Bb, owner);
    bb->kind_ = RegionKind::Bb;
    bb->function_ = &function;
    bb->block_ = block;
    bb->blocks_ = {block};
    bb->anchor_ = block;
    bb->label_ = "bb @" + function.name() + ":" + block->name();
    bb->containsCall_ = blockContainsCall(block);
    bbRegions_[block] = bb;
  };

  for (const ir::BasicBlock* block : scope) {
    if (assigned.count(block) != 0) continue;
    assigned.insert(block);

    // --- Loop region: `block` heads a loop nested directly below `context`.
    const Loop* loop = fa.loops.loopFor(block);
    if (loop != nullptr && loop != context && block == loop->header()) {
      CAYMAN_ASSERT(loop->parent() == context,
                    "unstructured loop nesting at " + block->name());
      Region* loopRegion = makeRegion(RegionKind::Loop, parent);
      loopRegion->function_ = &function;
      loopRegion->loop_ = loop;
      loopRegion->block_ = block;
      loopRegion->anchor_ =
          loop->preheader() != nullptr ? loop->preheader() : loop->header();
      loopRegion->label_ = "loop @" + function.name() + ":" + block->name();
      loopRegions_[loop] = loopRegion;

      std::vector<const ir::BasicBlock*> inner;
      for (const ir::BasicBlock* b : fa.cfg.rpo()) {
        if (loop->contains(b)) {
          inner.push_back(b);
          assigned.insert(b);
        }
      }
      loopRegion->blocks_ = inner;
      buildScope(loopRegion, function, inner, loop);
      continue;
    }

    // --- If region: a condbr diamond that rejoins inside the scope.
    const ir::Instruction* term = block->terminator();
    if (term->opcode() == ir::Opcode::CondBr) {
      const ir::BasicBlock* join = fa.postDom.idom(block);
      auto succs = term->successors();
      bool succsInScope = scopeSet.count(succs[0]) != 0 &&
                          scopeSet.count(succs[1]) != 0;
      if (join != nullptr && succsInScope && scopeSet.count(join) != 0) {
        // Collect blocks strictly between the branch and the join.
        std::set<const ir::BasicBlock*> body;
        std::vector<const ir::BasicBlock*> work{succs[0], succs[1]};
        bool sese = true;
        while (!work.empty() && sese) {
          const ir::BasicBlock* b = work.back();
          work.pop_back();
          if (b == join || body.count(b) != 0) continue;
          if (scopeSet.count(b) == 0 || !fa.dom.dominates(block, b) ||
              assigned.count(b) != 0) {
            sese = false;
            break;
          }
          body.insert(b);
          for (const ir::BasicBlock* succ : b->successors()) {
            work.push_back(succ);
          }
        }
        if (sese && !body.empty()) {
          Region* ifRegion = makeRegion(RegionKind::If, parent);
          ifRegion->function_ = &function;
          ifRegion->block_ = block;
          ifRegion->anchor_ = block;
          ifRegion->label_ =
              "if @" + function.name() + ":" + block->name();
          ifRegion->blocks_.push_back(block);
          makeBb(block, ifRegion);

          std::vector<const ir::BasicBlock*> inner;
          for (const ir::BasicBlock* b : fa.cfg.rpo()) {
            if (body.count(b) != 0) {
              inner.push_back(b);
              assigned.insert(b);
            }
          }
          ifRegion->blocks_.insert(ifRegion->blocks_.end(), inner.begin(),
                                   inner.end());
          buildScope(ifRegion, function, inner, context);
          continue;
        }
      }
    }

    // --- Plain basic block.
    makeBb(block, parent);
  }
}

void WPst::finalize(Region* region) {
  for (auto& child : region->children_) {
    finalize(child.get());
    region->containsCall_ |= child->containsCall_;
  }
}

const Region* WPst::bbRegion(const ir::BasicBlock* block) const {
  auto it = bbRegions_.find(block);
  return it == bbRegions_.end() ? nullptr : it->second;
}

const Region* WPst::loopRegion(const Loop* loop) const {
  auto it = loopRegions_.find(loop);
  return it == loopRegions_.end() ? nullptr : it->second;
}

const FunctionAnalyses& WPst::analyses(const ir::Function* function) const {
  return *analyses_.at(function);
}

}  // namespace cayman::analysis
