#include "analysis/roofline.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cayman::analysis {

/// Per-function address/dependence analyses the classifier consumes. Built
/// eagerly (same bundle the accelerator model builds for itself) so
/// classify() is read-only and lock-cheap.
struct RooflineAnalysis::FunctionBundle {
  FunctionBundle(const ir::Function& function, const FunctionAnalyses& fa)
      : scev(function, fa), mem(function, fa, scev) {}

  ScalarEvolution scev;
  MemoryAnalysis mem;
};

const char* bottleneckSpelling(Bottleneck b) {
  switch (b) {
    case Bottleneck::ComputeBound: return "compute-bound";
    case Bottleneck::MemoryBound: return "memory-bound";
    case Bottleneck::Balanced: return "balanced";
  }
  return "?";
}

RooflineAnalysis::RooflineAnalysis(const WPst& wpst,
                                   const sim::ProfileData& profile,
                                   const hls::TechLibrary& tech,
                                   hls::InterfaceTiming timing, double clockNs,
                                   uint64_t unknownTripFallback)
    : wpst_(wpst),
      profile_(profile),
      scheduler_(tech, timing, clockNs),
      unknownTripFallback_(unknownTripFallback) {
  for (const auto& function : wpst.module().functions()) {
    bundles_.emplace(function.get(),
                     std::make_unique<FunctionBundle>(
                         *function, wpst.analyses(function.get())));
  }
}

RooflineAnalysis::~RooflineAnalysis() = default;

const RooflineAnalysis::FunctionBundle& RooflineAnalysis::bundleFor(
    const ir::Function* function) const {
  return *bundles_.at(function);
}

Bottleneck RooflineAnalysis::classifyIntensity(double intensity,
                                               double machineBalance) {
  if (intensity <= machineBalance * 0.5) return Bottleneck::MemoryBound;
  if (intensity >= machineBalance * 2.0) return Bottleneck::ComputeBound;
  return Bottleneck::Balanced;
}

unsigned RooflineAnalysis::saturatingUnroll(unsigned recMii,
                                            double bytesPerIter,
                                            double bytesPerCycle) {
  if (bytesPerIter <= 0.0) return kUnboundedUnroll;
  double u = std::floor(static_cast<double>(std::max(1u, recMii)) *
                        bytesPerCycle / bytesPerIter);
  if (u < 1.0) return 1;
  if (u >= static_cast<double>(kUnboundedUnroll)) return kUnboundedUnroll;
  return static_cast<unsigned>(u);
}

const ir::BasicBlock* RooflineAnalysis::pipelineableBody(
    const Region* loopRegion) const {
  if (loopRegion->kind() != RegionKind::Loop) return nullptr;
  if (!loopRegion->loop()->isInnermost()) return nullptr;
  const ir::BasicBlock* body = nullptr;
  unsigned bodyBlocks = 0;
  for (const auto& child : loopRegion->children()) {
    if (!child->isBb()) return nullptr;
    const ir::BasicBlock* block = child->block();
    if (block == loopRegion->loop()->header() ||
        block == loopRegion->loop()->latch()) {
      continue;
    }
    ++bodyBlocks;
    body = block;
  }
  return bodyBlocks == 1 ? body : nullptr;
}

/// Bytes a single load/store moves (element size of the accessed slot).
static double accessBytes(const ir::Instruction& inst) {
  const ir::Type* type = inst.opcode() == ir::Opcode::Load
                             ? inst.type()
                             : inst.operand(0)->type();
  return static_cast<double>(type->sizeBytes());
}

RegionRoofline RooflineAnalysis::classifyUncached(const Region* region) const {
  RegionRoofline r;
  // Ridge point of the two ceilings: the datapath FSM retires on the order
  // of one dependent operation level per cycle, the DMA/bus moves
  // dmaBytesPerCycle. Both sides of the ratio are per-cycle, so the balance
  // is in ops/byte like the intensity.
  r.machineBalance =
      1.0 / static_cast<double>(scheduler_.timing().dmaBytesPerCycle);
  if (!region->isCandidate()) return r;

  double entries =
      std::max<double>(1.0, static_cast<double>(profile_.entries(region)));
  for (const ir::BasicBlock* block : region->blocks()) {
    double execsPerEntry =
        static_cast<double>(profile_.blockCount(block)) / entries;
    for (const auto& inst : block->instructions()) {
      if (inst->isMemoryAccess()) {
        r.bytesPerEntry += execsPerEntry * accessBytes(*inst);
      } else if (ir::isComputeOp(inst->opcode())) {
        r.opsPerEntry += execsPerEntry;
        if (ir::isFloatOp(inst->opcode())) r.flopsPerEntry += execsPerEntry;
      }
    }
  }
  r.intensity = r.bytesPerEntry > 0.0
                    ? r.opsPerEntry / r.bytesPerEntry
                    : std::numeric_limits<double>::infinity();
  r.bottleneck = classifyIntensity(r.intensity, r.machineBalance);

  // Critical-path label and bandwidth-saturating unroll from the hottest
  // pipelineable loop, judged under default (coupled) interfaces: the MII
  // bounds are interface-refinable, but a recurrence that pins the II under
  // the slowest interface choice identifies loops where the dependence
  // chain, not port replication, is the lever.
  const hls::IfaceAssignment defaultIfaces;
  double hottest = -1.0;
  region->walk([&](const Region& sub) {
    const ir::BasicBlock* body = pipelineableBody(&sub);
    if (body == nullptr) return;
    const FunctionBundle& bundle = bundleFor(sub.function());
    unsigned rec = scheduler_.recMII(bundle.mem.carriedDeps(sub.loop()),
                                     defaultIfaces);
    unsigned res = scheduler_.resMII(*body, defaultIfaces, 1);
    if (rec >= res) r.recurrenceLimited = true;
    double bytesPerIter = 0.0;
    for (const auto& inst : body->instructions()) {
      if (inst->isMemoryAccess()) bytesPerIter += accessBytes(*inst);
    }
    double cycles = profile_.cycles(&sub);
    if (cycles > hottest) {
      hottest = cycles;
      r.saturatingUnroll = saturatingUnroll(
          rec, bytesPerIter,
          static_cast<double>(scheduler_.timing().dmaBytesPerCycle));
    }
  });
  return r;
}

const RegionRoofline& RooflineAnalysis::classify(const Region* region) const {
  size_t id = static_cast<size_t>(region->id());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (byId_.size() <= id) byId_.resize(wpst_.allRegions().size());
    CAYMAN_ASSERT(id < byId_.size(), "region id out of range");
    if (byId_[id] != nullptr) return *byId_[id];
  }
  // Compute outside the lock (pure function of the region); the loser of a
  // race simply discards its copy.
  RegionRoofline result = classifyUncached(region);
  std::lock_guard<std::mutex> lock(mutex_);
  if (byId_[id] == nullptr) {
    byId_[id] = std::make_unique<RegionRoofline>(result);
  }
  return *byId_[id];
}

}  // namespace cayman::analysis
