// Basic CFG utilities: predecessor lists and reverse post-order.
#pragma once

#include <map>
#include <vector>

#include "ir/function.h"

namespace cayman::analysis {

/// Predecessors / orderings computed once per function and shared by the
/// dominator, loop, and region analyses.
class Cfg {
 public:
  explicit Cfg(const ir::Function& function);

  const ir::Function& function() const { return function_; }

  const std::vector<const ir::BasicBlock*>& predecessors(
      const ir::BasicBlock* block) const;
  std::vector<const ir::BasicBlock*> successors(
      const ir::BasicBlock* block) const {
    auto succs = block->successors();
    return {succs.begin(), succs.end()};
  }

  /// Reverse post-order over reachable blocks, entry first.
  const std::vector<const ir::BasicBlock*>& rpo() const { return rpo_; }
  /// Position of a block in rpo(); -1 for unreachable blocks.
  int rpoIndex(const ir::BasicBlock* block) const;
  bool isReachable(const ir::BasicBlock* block) const {
    return rpoIndex(block) >= 0;
  }

  /// Blocks whose terminator is Ret.
  const std::vector<const ir::BasicBlock*>& exitBlocks() const {
    return exits_;
  }

 private:
  const ir::Function& function_;
  std::map<const ir::BasicBlock*, std::vector<const ir::BasicBlock*>> preds_;
  std::vector<const ir::BasicBlock*> rpo_;
  std::map<const ir::BasicBlock*, int> rpoIndex_;
  std::vector<const ir::BasicBlock*> exits_;
  std::vector<const ir::BasicBlock*> empty_;
};

}  // namespace cayman::analysis
