// SCEV-lite: induction variables, static trip counts, and affine address
// analysis — the facts Cayman's accelerator model consumes (paper §III-B:
// stream pattern detection and footprint analysis).
#pragma once

#include <map>
#include <optional>

#include "analysis/regions.h"

namespace cayman::analysis {

/// A canonical induction variable: phi in the loop header updated by a
/// loop-invariant constant step once per iteration.
struct InductionVar {
  const ir::Instruction* phi = nullptr;
  const Loop* loop = nullptr;
  std::optional<int64_t> init;  ///< constant initial value when known
  int64_t step = 0;
  const ir::Instruction* update = nullptr;  ///< the add feeding the backedge
};

/// Static trip count; `known == false` means profiling must supply one.
struct TripCount {
  bool known = false;
  uint64_t value = 0;
};

/// A linear form: constant + Σ coeff·symbol. Symbols are induction-variable
/// phis or other values (arguments, invariant instructions).
struct Affine {
  bool valid = false;
  int64_t constant = 0;
  std::map<const ir::Value*, int64_t> terms;

  /// Coefficient for the induction variable of `loop` (0 when absent).
  int64_t coeffForLoop(const Loop* loop) const;
  /// True when the form is usable and every non-IV symbol is defined outside
  /// `loop` (i.e. address moves affinely as `loop` iterates).
  bool isStreamIn(const Loop* loop) const;
};

/// Byte-granularity address of a memory access.
struct AddressInfo {
  bool valid = false;
  const ir::GlobalArray* base = nullptr;  ///< nullptr = statically unknown
  Affine offset;                          ///< bytes relative to base
};

class ScalarEvolution {
 public:
  ScalarEvolution(const ir::Function& function, const FunctionAnalyses& fa);

  /// Induction variable record for a header phi; nullptr if not an IV.
  const InductionVar* inductionVar(const ir::Instruction* phi) const;
  /// All IVs of a loop (usually one).
  std::vector<const InductionVar*> inductionVars(const Loop* loop) const;

  /// Static trip count from the header comparison (init/step/bound constant).
  TripCount tripCount(const Loop* loop) const;

  /// Linear-form analysis of an arbitrary integer value.
  Affine analyze(const ir::Value* value) const;

  /// Address analysis of a Load/Store pointer operand.
  AddressInfo addressOf(const ir::Instruction* access) const;

 private:
  Affine analyzeImpl(const ir::Value* value, int depth) const;

  const ir::Function& function_;
  const FunctionAnalyses& fa_;
  std::map<const ir::Instruction*, InductionVar> ivs_;
};

}  // namespace cayman::analysis
