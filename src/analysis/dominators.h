// Dominator and post-dominator trees (Cooper–Harvey–Kennedy iterative
// algorithm over reverse post-order).
#pragma once

#include <map>

#include "analysis/cfg.h"

namespace cayman::analysis {

class DominatorTree {
 public:
  /// Builds the (forward) dominator tree.
  static DominatorTree dominators(const Cfg& cfg);
  /// Builds the post-dominator tree. Multiple Ret blocks are joined through a
  /// virtual exit represented by nullptr.
  static DominatorTree postDominators(const Cfg& cfg);

  /// Immediate (post-)dominator; nullptr for the root (and, in the post-dom
  /// tree, for blocks whose ipdom is the virtual exit).
  const ir::BasicBlock* idom(const ir::BasicBlock* block) const;

  /// Reflexive dominance query.
  bool dominates(const ir::BasicBlock* a, const ir::BasicBlock* b) const;
  bool strictlyDominates(const ir::BasicBlock* a,
                         const ir::BasicBlock* b) const {
    return a != b && dominates(a, b);
  }

 private:
  DominatorTree() = default;

  std::map<const ir::BasicBlock*, const ir::BasicBlock*> idom_;
  // Interval labelling for O(1) dominance queries.
  std::map<const ir::BasicBlock*, std::pair<int, int>> interval_;

  void computeIntervals();
};

}  // namespace cayman::analysis
