// SESE region tree (program structure tree) and the whole-application PST.
//
// Paper §III-B: the wPST extends the per-function PST with a root vertex for
// the application and one vertex per function. Region vertices are the legal
// acceleration candidates: *bb* regions (basic blocks) and *ctrl-flow*
// regions (loops and if/else diamonds), both single-entry-single-exit.
#pragma once

#include <memory>

#include "analysis/loops.h"
#include "ir/module.h"

namespace cayman::analysis {

enum class RegionKind {
  Root,      ///< the whole application (cannot be selected)
  Function,  ///< one per function (cannot be selected)
  Loop,      ///< ctrl-flow region: a natural loop
  If,        ///< ctrl-flow region: an if/else diamond
  Bb,        ///< a single basic block
};

class Region {
 public:
  RegionKind kind() const { return kind_; }
  int id() const { return id_; }
  const std::string& label() const { return label_; }

  bool isCtrlFlow() const {
    return kind_ == RegionKind::Loop || kind_ == RegionKind::If;
  }
  bool isBb() const { return kind_ == RegionKind::Bb; }
  /// Only bb and ctrl-flow regions may be offloaded (paper §III-B); regions
  /// containing calls are excluded because the kernel must run isolated from
  /// the processor.
  bool isCandidate() const {
    return (isCtrlFlow() || isBb()) && !containsCall_;
  }
  bool containsCall() const { return containsCall_; }

  const ir::Function* function() const { return function_; }
  /// The loop of a Loop region; nullptr otherwise.
  const Loop* loop() const { return loop_; }
  /// The single block of a Bb region / the branching block of an If region.
  const ir::BasicBlock* block() const { return block_; }
  /// Every basic block contained in the region (transitively).
  const std::vector<const ir::BasicBlock*>& blocks() const { return blocks_; }

  /// Block whose execution count equals the region's entry count.
  const ir::BasicBlock* profileAnchor() const { return anchor_; }

  Region* parent() const { return parent_; }
  const std::vector<std::unique_ptr<Region>>& children() const {
    return children_;
  }

  /// Depth-first walk (pre-order) over this subtree.
  template <typename Fn>
  void walk(Fn&& fn) const {
    fn(*this);
    for (const auto& child : children_) child->walk(fn);
  }

 private:
  friend class WPst;

  RegionKind kind_ = RegionKind::Bb;
  int id_ = -1;
  std::string label_;
  bool containsCall_ = false;
  const ir::Function* function_ = nullptr;
  const Loop* loop_ = nullptr;
  const ir::BasicBlock* block_ = nullptr;
  std::vector<const ir::BasicBlock*> blocks_;
  const ir::BasicBlock* anchor_ = nullptr;
  Region* parent_ = nullptr;
  std::vector<std::unique_ptr<Region>> children_;
};

/// Per-function CFG analyses bundled for reuse by downstream passes.
struct FunctionAnalyses {
  explicit FunctionAnalyses(const ir::Function& function)
      : cfg(function),
        dom(DominatorTree::dominators(cfg)),
        postDom(DominatorTree::postDominators(cfg)),
        loops(cfg, dom) {}

  Cfg cfg;
  DominatorTree dom;
  DominatorTree postDom;
  LoopInfo loops;
};

/// The whole-application program structure tree.
class WPst {
 public:
  explicit WPst(const ir::Module& module);

  const ir::Module& module() const { return module_; }
  const Region* root() const { return root_.get(); }

  /// All regions indexed by Region::id().
  const std::vector<const Region*>& allRegions() const { return byId_; }
  const Region* regionById(int id) const { return byId_.at(id); }
  /// Innermost region owning `block` (its Bb region).
  const Region* bbRegion(const ir::BasicBlock* block) const;
  /// The Loop region vertex for `loop`.
  const Region* loopRegion(const Loop* loop) const;

  const FunctionAnalyses& analyses(const ir::Function* function) const;

 private:
  Region* makeRegion(RegionKind kind, Region* parent);
  void buildFunction(Region* functionRegion, const ir::Function& function);
  /// Builds child regions of `parent` for the blocks in `scope`, which all
  /// live at loop-nesting context `context` (nullptr = function top level).
  void buildScope(Region* parent, const ir::Function& function,
                  const std::vector<const ir::BasicBlock*>& scope,
                  const Loop* context);
  void finalize(Region* region);

  const ir::Module& module_;
  std::unique_ptr<Region> root_;
  std::vector<const Region*> byId_;
  std::map<const ir::BasicBlock*, const Region*> bbRegions_;
  std::map<const Loop*, const Region*> loopRegions_;
  std::map<const ir::Function*, std::unique_ptr<FunctionAnalyses>> analyses_;
  int nextId_ = 0;
};

}  // namespace cayman::analysis
