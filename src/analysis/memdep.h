// Memory access classification and loop-carried dependence analysis
// (paper §III-B: memory dependencies, stream patterns, access footprints).
#pragma once

#include <optional>

#include "analysis/scev.h"

namespace cayman::analysis {

/// One Load/Store with its resolved address form.
struct MemAccessInfo {
  const ir::Instruction* inst = nullptr;
  bool isStore = false;
  AddressInfo addr;
};

/// A dependence carried across iterations of `loop`. The `chain` lists the
/// instructions on the recurrence cycle so the scheduler can bound RecMII.
struct LoopCarriedDep {
  enum class Kind { Memory, Scalar };

  Kind kind = Kind::Memory;
  const Loop* loop = nullptr;
  const ir::Instruction* src = nullptr;  ///< store (Memory) or phi (Scalar)
  const ir::Instruction* dst = nullptr;  ///< load (Memory) or update (Scalar)
  unsigned distance = 1;                 ///< iterations spanned
  std::vector<const ir::Instruction*> chain;
};

class MemoryAnalysis {
 public:
  MemoryAnalysis(const ir::Function& function, const FunctionAnalyses& fa,
                 const ScalarEvolution& scev);

  const std::vector<MemAccessInfo>& accesses() const { return accesses_; }
  const MemAccessInfo* infoFor(const ir::Instruction* inst) const;

  const std::vector<LoopCarriedDep>& carriedDeps(const Loop* loop) const;
  bool hasCarriedDep(const Loop* loop) const {
    return !carriedDeps(loop).empty();
  }

  /// Stream pattern: the access address is an affine function of induction
  /// variables while `loop` iterates (paper: statically computable address
  /// sequence, required by the decoupled interface).
  bool isStream(const ir::Instruction* access, const Loop* loop) const;

  /// Distinct addresses touched during ONE execution of `region`;
  /// `unknownTrip` substitutes for loops without a static trip count.
  /// nullopt when the address is not statically analyzable (scratchpad
  /// interfaces then do not apply — their size must be static).
  std::optional<uint64_t> footprintElems(const ir::Instruction* access,
                                         const Region* region,
                                         uint64_t unknownTrip) const;

 private:
  void analyzeLoop(const Loop* loop);
  /// Def-use path dst ... src (operand walk) restricted to `loop`;
  /// empty when `src` does not feed `dst`.
  std::vector<const ir::Instruction*> defUsePath(const ir::Instruction* from,
                                                 const ir::Instruction* to,
                                                 const Loop* loop) const;

  const ir::Function& function_;
  const FunctionAnalyses& fa_;
  const ScalarEvolution& scev_;
  std::vector<MemAccessInfo> accesses_;
  std::map<const ir::Instruction*, size_t> accessIndex_;
  std::map<const Loop*, std::vector<LoopCarriedDep>> deps_;
  std::vector<LoopCarriedDep> noDeps_;
};

}  // namespace cayman::analysis
