#include "analysis/dominators.h"

#include <algorithm>
#include <functional>

namespace cayman::analysis {

namespace {

/// Generic CHK solver over an abstract graph given by ordered nodes (root
/// first in "rpo"), and a predecessor functor.
std::map<const ir::BasicBlock*, const ir::BasicBlock*> solve(
    const std::vector<const ir::BasicBlock*>& order,
    const std::function<std::vector<const ir::BasicBlock*>(
        const ir::BasicBlock*)>& preds) {
  std::map<const ir::BasicBlock*, int> index;
  for (size_t i = 0; i < order.size(); ++i) {
    index[order[i]] = static_cast<int>(i);
  }

  std::vector<int> idom(order.size(), -1);
  if (!order.empty()) idom[0] = 0;

  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (a > b) a = idom[static_cast<size_t>(a)];
      while (b > a) b = idom[static_cast<size_t>(b)];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 1; i < order.size(); ++i) {
      int newIdom = -1;
      for (const ir::BasicBlock* pred : preds(order[i])) {
        auto it = index.find(pred);
        if (it == index.end()) continue;  // unreachable predecessor
        int p = it->second;
        if (idom[static_cast<size_t>(p)] < 0) continue;
        newIdom = newIdom < 0 ? p : intersect(newIdom, p);
      }
      if (newIdom >= 0 && idom[i] != newIdom) {
        idom[i] = newIdom;
        changed = true;
      }
    }
  }

  std::map<const ir::BasicBlock*, const ir::BasicBlock*> result;
  for (size_t i = 1; i < order.size(); ++i) {
    if (idom[i] >= 0) result[order[i]] = order[static_cast<size_t>(idom[i])];
  }
  if (!order.empty()) result[order[0]] = nullptr;
  return result;
}

}  // namespace

DominatorTree DominatorTree::dominators(const Cfg& cfg) {
  DominatorTree tree;
  tree.idom_ = solve(cfg.rpo(), [&cfg](const ir::BasicBlock* b) {
    return cfg.predecessors(b);
  });
  tree.computeIntervals();
  return tree;
}

DominatorTree DominatorTree::postDominators(const Cfg& cfg) {
  // Build order: post-order of the forward CFG approximates an RPO of the
  // reverse CFG. We instead run a reverse DFS from the exits.
  // Virtual exit handling: treat all Ret blocks as roots.
  std::vector<const ir::BasicBlock*> order;
  std::map<const ir::BasicBlock*, bool> visited;
  // Iterative DFS on reversed edges.
  std::vector<std::pair<const ir::BasicBlock*, size_t>> stack;
  for (const ir::BasicBlock* exit : cfg.exitBlocks()) {
    if (visited[exit]) continue;
    stack.emplace_back(exit, 0);
    visited[exit] = true;
    std::vector<const ir::BasicBlock*> postOrder;
    while (!stack.empty()) {
      auto& [block, next] = stack.back();
      const auto& preds = cfg.predecessors(block);
      if (next < preds.size()) {
        const ir::BasicBlock* pred = preds[next++];
        if (!visited[pred]) {
          visited[pred] = true;
          stack.emplace_back(pred, 0);
        }
      } else {
        postOrder.push_back(block);
        stack.pop_back();
      }
    }
    order.insert(order.end(), postOrder.rbegin(), postOrder.rend());
  }

  DominatorTree tree;
  if (cfg.exitBlocks().size() == 1) {
    tree.idom_ = solve(order, [&cfg](const ir::BasicBlock* b) {
      auto succs = b->successors();
      return std::vector<const ir::BasicBlock*>(succs.begin(), succs.end());
    });
  } else {
    // Multiple exits: prepend a virtual root. We emulate it by solving with
    // each exit as an initialized root; the CHK loop needs a single root, so
    // we instead solve on an augmented order where exits' idom stays null.
    // Simpler and adequate here: solve per the first exit and mark the other
    // exits as roots too (their ipdom is the virtual exit = nullptr).
    tree.idom_ = solve(order, [&cfg](const ir::BasicBlock* b) {
      auto succs = b->successors();
      return std::vector<const ir::BasicBlock*>(succs.begin(), succs.end());
    });
    for (const ir::BasicBlock* exit : cfg.exitBlocks()) {
      tree.idom_[exit] = nullptr;
    }
  }
  tree.computeIntervals();
  return tree;
}

const ir::BasicBlock* DominatorTree::idom(const ir::BasicBlock* block) const {
  auto it = idom_.find(block);
  return it == idom_.end() ? nullptr : it->second;
}

void DominatorTree::computeIntervals() {
  std::map<const ir::BasicBlock*, std::vector<const ir::BasicBlock*>> children;
  std::vector<const ir::BasicBlock*> roots;
  for (const auto& [block, parent] : idom_) {
    if (parent == nullptr) {
      roots.push_back(block);
    } else {
      children[parent].push_back(block);
    }
  }
  int clock = 0;
  // Iterative Euler tour assigning [in, out] intervals.
  for (const ir::BasicBlock* root : roots) {
    std::vector<std::pair<const ir::BasicBlock*, size_t>> stack{{root, 0}};
    interval_[root].first = clock++;
    while (!stack.empty()) {
      auto& [block, next] = stack.back();
      auto& kids = children[block];
      if (next < kids.size()) {
        const ir::BasicBlock* child = kids[next++];
        interval_[child].first = clock++;
        stack.emplace_back(child, 0);
      } else {
        interval_[block].second = clock++;
        stack.pop_back();
      }
    }
  }
}

bool DominatorTree::dominates(const ir::BasicBlock* a,
                              const ir::BasicBlock* b) const {
  if (a == b) return true;
  auto ia = interval_.find(a);
  auto ib = interval_.find(b);
  if (ia == interval_.end() || ib == interval_.end()) return false;
  return ia->second.first <= ib->second.first &&
         ib->second.second <= ia->second.second;
}

}  // namespace cayman::analysis
