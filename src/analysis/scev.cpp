#include "analysis/scev.h"

namespace cayman::analysis {

namespace {

/// Is `value` computed outside `loop` (therefore invariant while it runs)?
bool isInvariantIn(const ir::Value* value, const Loop* loop) {
  const auto* inst = ir::dynCast<ir::Instruction>(value);
  if (inst == nullptr) return true;  // constants, arguments, globals
  return !loop->contains(inst->parent());
}

}  // namespace

int64_t Affine::coeffForLoop(const Loop* loop) const {
  int64_t total = 0;
  for (const auto& [symbol, coeff] : terms) {
    const auto* phi = ir::dynCast<ir::Instruction>(symbol);
    if (phi != nullptr && phi->opcode() == ir::Opcode::Phi &&
        phi->parent() == loop->header()) {
      total += coeff;
    }
  }
  return total;
}

bool Affine::isStreamIn(const Loop* loop) const {
  if (!valid) return false;
  for (const auto& [symbol, coeff] : terms) {
    (void)coeff;
    const auto* inst = ir::dynCast<ir::Instruction>(symbol);
    if (inst == nullptr) continue;  // argument: invariant
    if (inst->opcode() == ir::Opcode::Phi) {
      // Induction variables of this loop or enclosing/inner loops are fine:
      // they are either the stream dimension or constant during `loop`.
      continue;
    }
    if (!isInvariantIn(inst, loop)) return false;
  }
  return true;
}

ScalarEvolution::ScalarEvolution(const ir::Function& function,
                                 const FunctionAnalyses& fa)
    : function_(function), fa_(fa) {
  // Recognize canonical IVs: phi(init from preheader, phi+step from latch).
  for (const auto& loop : fa.loops.loops()) {
    const ir::BasicBlock* header = loop->header();
    const ir::BasicBlock* preheader = loop->preheader();
    const ir::BasicBlock* latch = loop->latch();
    if (preheader == nullptr || latch == nullptr) continue;
    for (const ir::Instruction* phi : header->phis()) {
      if (!phi->type()->isInteger()) continue;
      const ir::Value* backedge = phi->incomingValueFor(latch);
      const auto* update = ir::dynCast<ir::Instruction>(backedge);
      if (update == nullptr) continue;
      if (update->opcode() != ir::Opcode::Add &&
          update->opcode() != ir::Opcode::Sub) {
        continue;
      }
      const ir::Value* stepValue = nullptr;
      if (update->operand(0) == phi) {
        stepValue = update->operand(1);
      } else if (update->operand(1) == phi &&
                 update->opcode() == ir::Opcode::Add) {
        stepValue = update->operand(0);
      }
      if (stepValue == nullptr) continue;
      const auto* stepConst = ir::dynCast<ir::ConstantInt>(stepValue);
      if (stepConst == nullptr) continue;

      InductionVar iv;
      iv.phi = phi;
      iv.loop = loop.get();
      iv.step = update->opcode() == ir::Opcode::Sub ? -stepConst->value()
                                                    : stepConst->value();
      iv.update = update;
      if (const auto* initConst = ir::dynCast<ir::ConstantInt>(
              phi->incomingValueFor(preheader))) {
        iv.init = initConst->value();
      }
      ivs_.emplace(phi, iv);
    }
  }
}

const InductionVar* ScalarEvolution::inductionVar(
    const ir::Instruction* phi) const {
  auto it = ivs_.find(phi);
  return it == ivs_.end() ? nullptr : &it->second;
}

std::vector<const InductionVar*> ScalarEvolution::inductionVars(
    const Loop* loop) const {
  std::vector<const InductionVar*> result;
  for (const auto& [phi, iv] : ivs_) {
    if (iv.loop == loop) result.push_back(&iv);
  }
  return result;
}

TripCount ScalarEvolution::tripCount(const Loop* loop) const {
  // Pattern: header ends with `condbr (icmp pred iv bound), body, exit`
  // where iv is a canonical IV with constant init/step and bound constant.
  const ir::Instruction* term = loop->header()->terminator();
  if (term == nullptr || term->opcode() != ir::Opcode::CondBr) return {};
  const auto* cmp = ir::dynCast<ir::Instruction>(term->operand(0));
  if (cmp == nullptr || cmp->opcode() != ir::Opcode::ICmp) return {};

  const InductionVar* iv = nullptr;
  const ir::ConstantInt* bound = nullptr;
  ir::CmpPred pred = cmp->cmpPred();
  if (const auto* phi = ir::dynCast<ir::Instruction>(cmp->operand(0))) {
    iv = inductionVar(phi);
    bound = ir::dynCast<ir::ConstantInt>(cmp->operand(1));
  }
  if (iv == nullptr || iv->loop != loop || bound == nullptr ||
      !iv->init.has_value() || iv->step == 0) {
    return {};
  }

  int64_t init = *iv->init;
  int64_t limit = bound->value();
  int64_t step = iv->step;
  int64_t iterations = 0;
  switch (pred) {
    case ir::CmpPred::LT:
      if (step <= 0 || init >= limit) return {};
      iterations = (limit - init + step - 1) / step;
      break;
    case ir::CmpPred::LE:
      if (step <= 0 || init > limit) return {};
      iterations = (limit - init) / step + 1;
      break;
    case ir::CmpPred::GT:
      if (step >= 0 || init <= limit) return {};
      iterations = (init - limit - step - 1) / (-step);
      break;
    case ir::CmpPred::GE:
      if (step >= 0 || init < limit) return {};
      iterations = (init - limit) / (-step) + 1;
      break;
    default:
      return {};
  }
  if (iterations <= 0) return {};
  return {true, static_cast<uint64_t>(iterations)};
}

Affine ScalarEvolution::analyze(const ir::Value* value) const {
  return analyzeImpl(value, 0);
}

Affine ScalarEvolution::analyzeImpl(const ir::Value* value, int depth) const {
  Affine result;
  if (depth > 32) return result;  // defensive: pathological chains

  if (const auto* ci = ir::dynCast<ir::ConstantInt>(value)) {
    result.valid = true;
    result.constant = ci->value();
    return result;
  }
  if (ir::isa<ir::Argument>(value)) {
    result.valid = true;
    result.terms[value] = 1;
    return result;
  }
  const auto* inst = ir::dynCast<ir::Instruction>(value);
  if (inst == nullptr) return result;

  auto symbol = [&]() {
    result.valid = true;
    result.terms[value] = 1;
    return result;
  };

  switch (inst->opcode()) {
    case ir::Opcode::Phi:
      // Induction variables are symbols; other phis are opaque symbols too
      // (their invariance is judged by the consumer).
      return symbol();
    case ir::Opcode::Add:
    case ir::Opcode::Sub: {
      Affine lhs = analyzeImpl(inst->operand(0), depth + 1);
      Affine rhs = analyzeImpl(inst->operand(1), depth + 1);
      if (!lhs.valid || !rhs.valid) return symbol();
      int64_t sign = inst->opcode() == ir::Opcode::Sub ? -1 : 1;
      result = lhs;
      result.constant += sign * rhs.constant;
      for (const auto& [sym, coeff] : rhs.terms) {
        result.terms[sym] += sign * coeff;
        if (result.terms[sym] == 0) result.terms.erase(sym);
      }
      return result;
    }
    case ir::Opcode::Mul: {
      Affine lhs = analyzeImpl(inst->operand(0), depth + 1);
      Affine rhs = analyzeImpl(inst->operand(1), depth + 1);
      if (!lhs.valid || !rhs.valid) return symbol();
      const Affine* linear = nullptr;
      int64_t scale = 0;
      if (lhs.terms.empty()) {
        scale = lhs.constant;
        linear = &rhs;
      } else if (rhs.terms.empty()) {
        scale = rhs.constant;
        linear = &lhs;
      } else {
        return symbol();  // product of two non-constants: not affine
      }
      result.valid = true;
      result.constant = linear->constant * scale;
      for (const auto& [sym, coeff] : linear->terms) {
        if (coeff * scale != 0) result.terms[sym] = coeff * scale;
      }
      return result;
    }
    case ir::Opcode::Shl: {
      const auto* amount = ir::dynCast<ir::ConstantInt>(inst->operand(1));
      if (amount == nullptr || amount->value() < 0 || amount->value() > 32) {
        return symbol();
      }
      Affine lhs = analyzeImpl(inst->operand(0), depth + 1);
      if (!lhs.valid) return symbol();
      int64_t scale = int64_t{1} << amount->value();
      result.valid = true;
      result.constant = lhs.constant * scale;
      for (const auto& [sym, coeff] : lhs.terms) {
        result.terms[sym] = coeff * scale;
      }
      return result;
    }
    case ir::Opcode::SExt:
    case ir::Opcode::ZExt:
    case ir::Opcode::Trunc:
      return analyzeImpl(inst->operand(0), depth + 1);
    default:
      return symbol();
  }
}

AddressInfo ScalarEvolution::addressOf(const ir::Instruction* access) const {
  AddressInfo info;
  CAYMAN_ASSERT(access->isMemoryAccess(), "addressOf on non-memory op");

  // Walk the GEP chain accumulating byte offsets.
  const ir::Value* pointer = access->pointerOperand();
  Affine offset;
  offset.valid = true;
  while (true) {
    if (const auto* global = ir::dynCast<ir::GlobalArray>(pointer)) {
      info.valid = true;
      info.base = global;
      info.offset = offset;
      return info;
    }
    const auto* gep = ir::dynCast<ir::Instruction>(pointer);
    if (gep == nullptr || gep->opcode() != ir::Opcode::Gep) {
      // Pointer arguments / unknown pointers: offset stays relative to an
      // unidentified base.
      info.valid = false;
      return info;
    }
    Affine index = analyzeImpl(gep->operand(1), 0);
    if (!index.valid) {
      info.valid = false;
      return info;
    }
    int64_t scale = static_cast<int64_t>(gep->gepElemSize());
    offset.constant += index.constant * scale;
    for (const auto& [sym, coeff] : index.terms) {
      offset.terms[sym] += coeff * scale;
      if (offset.terms[sym] == 0) offset.terms.erase(sym);
    }
    pointer = gep->operand(0);
  }
}

}  // namespace cayman::analysis
