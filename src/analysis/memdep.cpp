#include "analysis/memdep.h"

#include <algorithm>
#include <deque>

namespace cayman::analysis {

namespace {

/// True when two affine forms have identical symbolic terms (so their
/// difference is the constant delta).
bool sameTerms(const Affine& a, const Affine& b) {
  return a.terms == b.terms;
}

/// Do the symbol sets make a static comparison meaningful? Any symbol that
/// varies inside `loop` and is not an induction-variable phi defeats it.
bool comparableIn(const Affine& a, const Loop* loop) {
  if (!a.valid) return false;
  for (const auto& [symbol, coeff] : a.terms) {
    (void)coeff;
    const auto* inst = ir::dynCast<ir::Instruction>(symbol);
    if (inst == nullptr) continue;
    if (inst->opcode() == ir::Opcode::Phi) continue;  // IV-like
    if (loop->contains(inst->parent())) return false;
  }
  return true;
}

}  // namespace

MemoryAnalysis::MemoryAnalysis(const ir::Function& function,
                               const FunctionAnalyses& fa,
                               const ScalarEvolution& scev)
    : function_(function), fa_(fa), scev_(scev) {
  for (const auto& block : function.blocks()) {
    for (const auto& inst : block->instructions()) {
      if (!inst->isMemoryAccess()) continue;
      MemAccessInfo info;
      info.inst = inst.get();
      info.isStore = inst->opcode() == ir::Opcode::Store;
      info.addr = scev.addressOf(inst.get());
      accessIndex_[inst.get()] = accesses_.size();
      accesses_.push_back(std::move(info));
    }
  }
  for (const auto& loop : fa.loops.loops()) {
    analyzeLoop(loop.get());
  }
}

const MemAccessInfo* MemoryAnalysis::infoFor(
    const ir::Instruction* inst) const {
  auto it = accessIndex_.find(inst);
  return it == accessIndex_.end() ? nullptr : &accesses_[it->second];
}

const std::vector<LoopCarriedDep>& MemoryAnalysis::carriedDeps(
    const Loop* loop) const {
  auto it = deps_.find(loop);
  return it == deps_.end() ? noDeps_ : it->second;
}

void MemoryAnalysis::analyzeLoop(const Loop* loop) {
  std::vector<LoopCarriedDep>& out = deps_[loop];

  // --- Scalar recurrences: non-IV header phis fed from the latch through a
  // def-use cycle (e.g. floating-point accumulation).
  const ir::BasicBlock* latch = loop->latch();
  for (const ir::Instruction* phi : loop->header()->phis()) {
    if (scev_.inductionVar(phi) != nullptr) continue;
    if (latch == nullptr) continue;
    const auto* update =
        ir::dynCast<ir::Instruction>(phi->incomingValueFor(latch));
    if (update == nullptr || !loop->contains(update->parent())) continue;
    std::vector<const ir::Instruction*> chain = defUsePath(update, phi, loop);
    if (chain.empty()) continue;
    LoopCarriedDep dep;
    dep.kind = LoopCarriedDep::Kind::Scalar;
    dep.loop = loop;
    dep.src = phi;
    dep.dst = update;
    dep.distance = 1;
    dep.chain = std::move(chain);
    out.push_back(std::move(dep));
  }

  // --- Memory recurrences: store vs load/store pairs on the same base.
  std::vector<const MemAccessInfo*> inLoop;
  for (const MemAccessInfo& info : accesses_) {
    if (loop->contains(info.inst->parent())) inLoop.push_back(&info);
  }
  for (const MemAccessInfo* store : inLoop) {
    if (!store->isStore) continue;
    for (const MemAccessInfo* other : inLoop) {
      if (other == store) continue;
      if (other->isStore && other->inst < store->inst) continue;  // dedupe

      // Distinct statically-known bases can never alias (globals are
      // disjoint arrays in the flat address space).
      if (store->addr.valid && other->addr.valid &&
          store->addr.base != other->addr.base) {
        continue;
      }

      auto conservative = [&]() {
        LoopCarriedDep dep;
        dep.kind = LoopCarriedDep::Kind::Memory;
        dep.loop = loop;
        dep.src = store->inst;
        dep.dst = other->inst;
        dep.distance = 1;
        dep.chain = defUsePath(store->inst, other->inst, loop);
        dep.chain.push_back(store->inst);
        if (std::find(dep.chain.begin(), dep.chain.end(), other->inst) ==
            dep.chain.end()) {
          dep.chain.push_back(other->inst);
        }
        out.push_back(std::move(dep));
      };

      if (!store->addr.valid || !other->addr.valid ||
          !comparableIn(store->addr.offset, loop) ||
          !comparableIn(other->addr.offset, loop)) {
        conservative();
        continue;
      }
      if (!sameTerms(store->addr.offset, other->addr.offset)) {
        // Same array, structurally different subscripts (e.g. A[i][j] vs
        // A[j][i]): assume a carried dependence.
        conservative();
        continue;
      }

      int64_t delta =
          other->addr.offset.constant - store->addr.offset.constant;
      int64_t stride = store->addr.offset.coeffForLoop(loop);
      if (stride == 0) {
        if (delta == 0) {
          // Same loop-invariant location every iteration (z[i] += ...).
          LoopCarriedDep dep;
          dep.kind = LoopCarriedDep::Kind::Memory;
          dep.loop = loop;
          dep.src = store->inst;
          dep.dst = other->inst;
          dep.distance = 1;
          dep.chain = defUsePath(store->inst, other->inst, loop);
          dep.chain.push_back(store->inst);
          if (std::find(dep.chain.begin(), dep.chain.end(), other->inst) ==
              dep.chain.end()) {
            dep.chain.push_back(other->inst);
          }
          out.push_back(std::move(dep));
        }
        // delta != 0: two fixed, distinct locations — independent.
        continue;
      }
      if (delta == 0) continue;  // same address, same iteration only
      if (delta % stride != 0) continue;  // interleaved, never collide
      int64_t distance = delta / stride;
      if (distance < 0) distance = -distance;
      LoopCarriedDep dep;
      dep.kind = LoopCarriedDep::Kind::Memory;
      dep.loop = loop;
      dep.src = store->inst;
      dep.dst = other->inst;
      dep.distance = static_cast<unsigned>(distance);
      dep.chain = {store->inst, other->inst};
      out.push_back(std::move(dep));
    }
  }
}

std::vector<const ir::Instruction*> MemoryAnalysis::defUsePath(
    const ir::Instruction* from, const ir::Instruction* to,
    const Loop* loop) const {
  // BFS backwards through operands of `from` until `to` is reached.
  std::map<const ir::Instruction*, const ir::Instruction*> cameFrom;
  std::deque<const ir::Instruction*> queue{from};
  cameFrom[from] = nullptr;
  while (!queue.empty()) {
    const ir::Instruction* current = queue.front();
    queue.pop_front();
    if (current == to) {
      std::vector<const ir::Instruction*> path;
      for (const ir::Instruction* i = current; i != nullptr;
           i = cameFrom[i]) {
        path.push_back(i);
      }
      return path;
    }
    for (const ir::Value* operand : current->operands()) {
      const auto* inst = ir::dynCast<ir::Instruction>(operand);
      if (inst == nullptr || cameFrom.count(inst) != 0) continue;
      if (loop != nullptr && !loop->contains(inst->parent())) continue;
      cameFrom[inst] = current;
      queue.push_back(inst);
    }
  }
  return {};
}

bool MemoryAnalysis::isStream(const ir::Instruction* access,
                              const Loop* loop) const {
  const MemAccessInfo* info = infoFor(access);
  if (info == nullptr || !info->addr.valid) return false;
  return info->addr.offset.isStreamIn(loop);
}

std::optional<uint64_t> MemoryAnalysis::footprintElems(
    const ir::Instruction* access, const Region* region,
    uint64_t unknownTrip) const {
  const MemAccessInfo* info = infoFor(access);
  if (info == nullptr || !info->addr.valid) return std::nullopt;

  // Reject addresses with loop-varying non-IV symbols (indirect indexing).
  for (const auto& [symbol, coeff] : info->addr.offset.terms) {
    (void)coeff;
    const auto* inst = ir::dynCast<ir::Instruction>(symbol);
    if (inst != nullptr && inst->opcode() != ir::Opcode::Phi) {
      // Invariant relative to the region? If defined inside, give up.
      for (const ir::BasicBlock* b : region->blocks()) {
        if (inst->parent() == b) return std::nullopt;
      }
    }
  }

  uint64_t footprint = 1;
  for (const Loop* loop = fa_.loops.loopFor(access->parent()); loop != nullptr;
       loop = loop->parent()) {
    // Only loops nested inside the region multiply the footprint.
    bool loopInRegion =
        std::find(region->blocks().begin(), region->blocks().end(),
                  loop->header()) != region->blocks().end();
    if (!loopInRegion) break;
    if (info->addr.offset.coeffForLoop(loop) == 0) continue;
    TripCount trip = scev_.tripCount(loop);
    footprint *= trip.known ? trip.value : unknownTrip;
  }
  return footprint;
}

}  // namespace cayman::analysis
