#include "cayman/framework.h"

#include "ir/verifier.h"
#include "support/trace.h"

namespace cayman {

namespace {

/// Runs one pipeline stage with failure attribution: any escaping exception
/// becomes a DiagnosticError carrying the stage and unit (already-attributed
/// DiagnosticErrors — parse/verify diagnostics, cancellation — pass through
/// untouched). After a successful stage this is also the fault-injection and
/// cancellation checkpoint, and — when tracing is on — the span / stage-time
/// attribution point for the observability layer.
template <typename Fn>
void runStage(support::Stage stage, const std::string& unit,
              const FrameworkOptions& options, Fn&& fn) {
  const bool tracing = support::trace::on();
  uint64_t beginNs = tracing ? support::trace::nowNs() : 0;
  try {
    support::trace::Span span(
        tracing ? support::stageName(stage) : "", "pipeline");
    fn();
  } catch (const support::DiagnosticError&) {
    throw;
  } catch (const std::exception& e) {
    throw support::DiagnosticError(
        support::Diagnostic{stage, unit, e.what()});
  }
  if (tracing) {
    support::trace::addStageSeconds(
        support::stageName(stage),
        static_cast<double>(support::trace::nowNs() - beginNs) * 1e-9);
  }
  if (options.failAfterStage == stage) {
    throw support::DiagnosticError(support::Diagnostic{
        stage, unit, "injected fault (failAfterStage)"});
  }
  if (options.cancel != nullptr) options.cancel->check(stage, unit);
}

}  // namespace

Framework::Framework(std::unique_ptr<ir::Module> module,
                     FrameworkOptions options)
    : options_(options),
      module_(std::move(module)),
      tech_(hls::TechLibrary::nangate45()) {
  CAYMAN_ASSERT(module_ != nullptr, "Framework requires a module");
  const std::string unit = module_->name();

  runStage(support::Stage::Verify, unit, options_,
           [&] { ir::verifyOrThrow(*module_); });

  // Fig. 1 pipeline: wPST construction, profiling, program analysis.
  runStage(support::Stage::Analyze, unit, options_,
           [&] { wpst_ = std::make_unique<analysis::WPst>(*module_); });

  runStage(support::Stage::Profile, unit, options_, [&] {
    interpreter_ = std::make_unique<sim::Interpreter>(*module_);
    interpreter_->setCancelToken(options_.cancel);
    sim::Interpreter::Result run = interpreter_->run();
    profile_ = std::make_unique<sim::ProfileData>(*wpst_, run,
                                                  interpreter_->costModel());

    accel::ModelParams params;
    params.clockNs = options_.accelClockNs;
    params.beta = options_.beta;
    params.allowDecoupled = !options_.coupledOnly;
    params.allowScratchpad = !options_.coupledOnly;
    params.generateMode = options_.generateMode;
    params.cancel = options_.cancel;
    params.injectGenerateStallUs = options_.injectGenerateStallUs;
    params.pool = options_.pool;
    model_ = std::make_unique<accel::AcceleratorModel>(
        *wpst_, *profile_, tech_, hls::InterfaceTiming{}, params);

    novia_ = std::make_unique<baselines::NoviaFlow>(
        *wpst_, *profile_, tech_, interpreter_->costModel(),
        options_.cpuClockNs);
    qscores_ = std::make_unique<baselines::QsCoresFlow>(
        *wpst_, *profile_, tech_, options_.generateMode, options_.cancel);
  });

  // Warm-state stage: present (span, stage seconds, fault/cancel checkpoint)
  // whenever a cache dir is configured, whether or not a snapshot exists, so
  // cold-with-cache and warm runs walk identical stage sequences.
  if (!options_.cacheDir.empty()) {
    runStage(support::Stage::Cache, unit, options_, [&] {
      uint64_t irHash = accel::ModelCache::irContentHash(*module_);
      uint64_t fingerprint = accel::ModelCache::modelFingerprint(
          model_->params(), tech_, model_->timing());
      modelCache_ = std::make_unique<accel::ModelCache>(
          options_.cacheDir, *wpst_, irHash, fingerprint);
      modelCache_->load();
      model_->attachPersistentCache(modelCache_.get());
    });
  }
}

support::Expected<uint64_t> Framework::saveModelCache() {
  if (modelCache_ == nullptr) return uint64_t{0};
  return modelCache_->save();
}

select::SelectorParams Framework::selectorParams(double budgetRatio) const {
  select::SelectorParams params;
  params.areaBudgetUm2 = budgetUm2(budgetRatio);
  params.alpha = options_.alpha;
  params.pruneHotFraction = options_.pruneHotFraction;
  params.clockRatio = options_.clockRatio();
  params.mode = options_.selectMode;
  params.cancel = options_.cancel;
  return params;
}

std::vector<select::Solution> Framework::explore(double budgetRatio) const {
  select::CandidateSelector selector(*model_, selectorParams(budgetRatio));
  select::CandidateSelector::Stats stats;
  return selector.select(stats);
}

select::Solution Framework::best(double budgetRatio) const {
  select::CandidateSelector selector(*model_, selectorParams(budgetRatio));
  select::CandidateSelector::Stats stats;
  return selector.best(stats);
}

merge::MergeResult Framework::mergeSolution(
    const select::Solution& solution) const {
  merge::AcceleratorMerger merger(tech_, options_.mergeMode);
  return merger.run(solution);
}

EvaluationReport Framework::evaluate(double budgetRatio) const {
  EvaluationReport report;
  report.budgetRatio = budgetRatio;
  const std::string& unit = module_->name();

  auto start = std::chrono::steady_clock::now();
  runStage(support::Stage::Select, unit, options_,
           [&] { report.solution = best(budgetRatio); });
  runStage(support::Stage::Merge, unit, options_,
           [&] { report.merging = mergeSolution(report.solution); });
  report.selectionSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  double tAll = totalCpuCycles();
  double ratio = options_.clockRatio();
  report.totalCpuCycles = tAll;
  report.caymanSpeedup = report.solution.speedup(tAll, ratio);

  runStage(support::Stage::Select, unit, options_, [&] {
    baselines::NoviaFlow::Point noviaBest =
        novia_->best(budgetUm2(budgetRatio));
    report.noviaSpeedup = noviaBest.speedup(tAll);
    select::Solution qscoresBest =
        qscores_->best(budgetUm2(budgetRatio), ratio, options_.selectMode);
    report.qscoresSpeedup = qscoresBest.speedup(tAll, ratio);
  });

  // Baseline speedups are 0 when the baseline found nothing to accelerate
  // over an empty/degenerate profile; report the ratio as 0 instead of
  // letting inf/NaN flow into tables and averages.
  report.overNovia = report.noviaSpeedup > 0.0
                         ? report.caymanSpeedup / report.noviaSpeedup
                         : 0.0;
  report.overQsCores = report.qscoresSpeedup > 0.0
                           ? report.caymanSpeedup / report.qscoresSpeedup
                           : 0.0;

  for (const accel::AcceleratorConfig& config :
       report.solution.accelerators) {
    report.numSeqBlocks += config.numSeqBlocks;
    report.numPipelinedRegions += config.numPipelinedRegions;
    report.numCoupled += config.numCoupled;
    report.numDecoupled += config.numDecoupled;
    report.numScratchpad += config.numScratchpad;
  }
  report.areaSavingPercent = report.merging.savingPercent();
  return report;
}

}  // namespace cayman
