// Machine-readable evaluation reports (--metrics-json).
//
// Determinism contract: the default document is a pure function of the
// (workload, budget) pairs — counters, selection decisions and speedups, no
// wall-clock fields — so a jobs=1 and a jobs=8 sweep dump byte-identical
// files. `includeWallTimes` opts into per-stage wall seconds for human
// profiling; such files are schedule-dependent by nature and are excluded
// from the byte-identity guarantee.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "cayman/driver.h"
#include "support/json.h"
#include "support/trace.h"

namespace cayman {

struct MetricsOptions {
  /// Adds stage_seconds / total_seconds / selection_seconds (wall clock) to
  /// each workload entry. Off by default to keep the document deterministic.
  bool includeWallTimes = false;
  /// Out-of-task counters (pool.tasks, pool.steals, pool.tasks_nested) from
  /// TraceRecorder::globalCounters(). Exported under "global" only when
  /// includeWallTimes is set: which thread executes which task is schedule-
  /// dependent, so these values would break deterministic byte-identity.
  std::vector<std::pair<std::string, uint64_t>> globalCounters;
  /// Global gauges (model.cold_inflight_peak, pool.workers) from
  /// TraceRecorder::gauges(). Same wall-mode-only export rule.
  std::vector<std::pair<std::string, int64_t>> gauges;
};

/// Builds the "cayman-metrics-v1" document. `tasks` are the trace records
/// drained from the recorder (may be empty when tracing was off; counters
/// are then omitted); they are matched to evaluations by task index.
support::json::Value buildMetricsJson(
    const std::vector<WorkloadEvaluation>& evaluations,
    const std::vector<support::trace::TaskRecord>& tasks,
    const MetricsOptions& options = {});

}  // namespace cayman
