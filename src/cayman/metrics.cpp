#include "cayman/metrics.h"

#include <map>

namespace cayman {

namespace {

using support::json::Value;

Value decisionJson(const SelectionDecision& d) {
  Value entry = Value::object();
  entry.set("region", d.region);
  entry.set("cpu_cycles", d.cpuCycles);
  entry.set("accel_cycles", d.accelCycles);
  entry.set("hot_fraction", d.hotFraction);
  entry.set("kernel_speedup", d.kernelSpeedup);
  entry.set("area_um2", d.areaUm2);
  entry.set("num_seq_blocks", d.numSeqBlocks);
  entry.set("num_pipelined_regions", d.numPipelinedRegions);
  entry.set("num_coupled", d.numCoupled);
  entry.set("num_decoupled", d.numDecoupled);
  entry.set("num_scratchpad", d.numScratchpad);
  return entry;
}

Value reportJson(const EvaluationReport& r) {
  Value metrics = Value::object();
  metrics.set("total_cpu_cycles", r.totalCpuCycles);
  metrics.set("cayman_speedup", r.caymanSpeedup);
  metrics.set("novia_speedup", r.noviaSpeedup);
  metrics.set("qscores_speedup", r.qscoresSpeedup);
  metrics.set("over_novia", r.overNovia);
  metrics.set("over_qscores", r.overQsCores);
  metrics.set("num_seq_blocks", r.numSeqBlocks);
  metrics.set("num_pipelined_regions", r.numPipelinedRegions);
  metrics.set("num_coupled", r.numCoupled);
  metrics.set("num_decoupled", r.numDecoupled);
  metrics.set("num_scratchpad", r.numScratchpad);
  metrics.set("area_before_um2", r.merging.areaBeforeUm2);
  metrics.set("area_after_um2", r.merging.areaAfterUm2);
  metrics.set("area_saving_percent", r.areaSavingPercent);
  return metrics;
}

}  // namespace

Value buildMetricsJson(const std::vector<WorkloadEvaluation>& evaluations,
                       const std::vector<support::trace::TaskRecord>& tasks,
                       const MetricsOptions& options) {
  std::map<size_t, const support::trace::TaskRecord*> taskByIndex;
  for (const support::trace::TaskRecord& task : tasks) {
    taskByIndex[task.index] = &task;
  }

  Value document = Value::object();
  document.set("schema", "cayman-metrics-v1");
  document.set("time_mode",
               options.includeWallTimes ? "wall" : "deterministic");
  if (!evaluations.empty()) {
    document.set("budget_ratio", evaluations.front().report.budgetRatio);
  }
  document.set("workload_count", evaluations.size());
  document.set("failed", countFailures(evaluations));

  std::map<std::string, uint64_t> totals;
  Value workloads = Value::array();
  for (size_t i = 0; i < evaluations.size(); ++i) {
    const WorkloadEvaluation& evaluation = evaluations[i];
    Value entry = Value::object();
    entry.set("name", evaluation.name);
    entry.set("suite", evaluation.suite);
    entry.set("index", i);
    entry.set("ok", evaluation.ok());
    if (!evaluation.ok()) {
      const support::Diagnostic& d = *evaluation.failure;
      Value failure = Value::object();
      failure.set("stage", support::stageName(d.stage));
      failure.set("message", d.message);
      entry.set("failure", std::move(failure));
    }
    entry.set("metrics", reportJson(evaluation.report));

    Value selection = Value::array();
    for (const SelectionDecision& decision : evaluation.decisions) {
      selection.push(decisionJson(decision));
    }
    entry.set("selection", std::move(selection));

    auto it = taskByIndex.find(i);
    if (it != taskByIndex.end()) {
      const support::trace::TaskRecord& task = *it->second;
      Value counters = Value::object();
      for (const auto& [name, value] : task.counters) {
        counters.set(name, value);
        totals[name] += value;
      }
      entry.set("counters", std::move(counters));
      if (options.includeWallTimes) {
        Value stages = Value::object();
        for (const auto& [stage, seconds] : task.stageSeconds) {
          stages.set(stage, seconds);
        }
        entry.set("stage_seconds", std::move(stages));
        entry.set("total_seconds", task.totalSeconds);
        entry.set("selection_seconds", evaluation.report.selectionSeconds);
      }
    }
    workloads.push(std::move(entry));
  }
  document.set("workloads", std::move(workloads));

  Value totalsJson = Value::object();
  for (const auto& [name, value] : totals) totalsJson.set(name, value);
  document.set("totals", std::move(totalsJson));

  // Out-of-task pool/gauge data is schedule-dependent (which thread steals
  // which task varies run to run), so it rides the same wall-mode opt-in as
  // stage_seconds and never perturbs the deterministic document.
  if (options.includeWallTimes &&
      (!options.globalCounters.empty() || !options.gauges.empty())) {
    Value global = Value::object();
    Value counters = Value::object();
    for (const auto& [name, value] : options.globalCounters) {
      counters.set(name, value);
    }
    global.set("counters", std::move(counters));
    Value gaugesJson = Value::object();
    for (const auto& [name, value] : options.gauges) {
      gaugesJson.set(name, value);
    }
    global.set("gauges", std::move(gaugesJson));
    document.set("global", std::move(global));
  }
  return document;
}

}  // namespace cayman
