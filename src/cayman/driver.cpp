#include "cayman/driver.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "support/envhooks.h"
#include "support/thread_pool.h"
#include "support/trace.h"
#include "workloads/workloads.h"

namespace cayman {

namespace {

std::string formatLine(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list argsCopy;
  va_copy(argsCopy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(argsCopy);
    return {};
  }
  std::string line(static_cast<size_t>(needed), '\0');
  // C++11 strings are contiguous with space for the terminating NUL at
  // data()[size()].
  std::vsnprintf(line.data(), static_cast<size_t>(needed) + 1, format,
                 argsCopy);
  va_end(argsCopy);
  return line;
}

}  // namespace

WorkloadEvaluation evaluateWorkload(const std::string& name,
                                    double budgetRatio,
                                    const FrameworkOptions& options,
                                    size_t traceIndex) {
  WorkloadEvaluation evaluation;
  evaluation.name = name;
  evaluation.report.budgetRatio = budgetRatio;

  const workloads::WorkloadInfo* info = workloads::byName(name);
  if (info == nullptr) {
    evaluation.failure = support::Diagnostic{
        support::Stage::Internal, name, "unknown workload"};
    return evaluation;
  }
  evaluation.name = info->name;
  evaluation.suite = info->suite;

  // All probes on this thread now attribute to (workload, index); inert
  // when tracing is off.
  support::trace::TaskScope traceScope(info->name, traceIndex);

  FrameworkOptions taskOptions = options;
  // Strict env-hook parsing (envhooks.h): a malformed spec is a loud failed
  // row, not a silently inert hook — the CLI additionally pre-validates and
  // refuses to start the sweep.
  {
    support::Expected<std::optional<support::envhooks::FaultSpec>> fault =
        support::envhooks::envInjectFault();
    if (!fault.ok()) {
      evaluation.failure = fault.diagnostic();
      return evaluation;
    }
    if (!taskOptions.failAfterStage.has_value() &&
        fault.value().has_value() && fault.value()->workload == info->name) {
      taskOptions.failAfterStage = fault.value()->stage;
    }
    support::Expected<std::vector<support::envhooks::SlowSpec>> slow =
        support::envhooks::envInjectSlow();
    if (!slow.ok()) {
      evaluation.failure = slow.diagnostic();
      return evaluation;
    }
    if (taskOptions.injectGenerateStallUs == 0) {
      for (const support::envhooks::SlowSpec& spec : slow.value()) {
        if (spec.workload == info->name) {
          taskOptions.injectGenerateStallUs =
              static_cast<unsigned>(spec.micros);
          break;
        }
      }
    }
  }
  // Per-workload deadline: each task gets its own token so one slow workload
  // cannot consume a shared budget. The token lives on this frame, which
  // outlives the Framework that polls it.
  support::CancelToken deadline;
  if (taskOptions.timeoutSeconds > 0.0) {
    deadline.setTimeout(taskOptions.timeoutSeconds);
    taskOptions.cancel = &deadline;
  }

  try {
    std::unique_ptr<ir::Module> module;
    try {
      module = workloads::build(info->name);
    } catch (const support::DiagnosticError&) {
      throw;
    } catch (const std::exception& e) {
      throw support::DiagnosticError(
          support::Diagnostic{support::Stage::Parse, info->name, e.what()});
    }
    if (taskOptions.failAfterStage == support::Stage::Parse) {
      throw support::DiagnosticError(
          support::Diagnostic{support::Stage::Parse, info->name,
                              "injected fault (failAfterStage)"});
    }
    Framework framework(std::move(module), taskOptions);
    evaluation.report = framework.evaluate(budgetRatio);
    // Capture selection decisions by value while the Framework still owns
    // the regions the solution's config pointers reference.
    const double ratio = taskOptions.clockRatio();
    for (const accel::AcceleratorConfig& config :
         evaluation.report.solution.accelerators) {
      SelectionDecision decision;
      decision.region =
          config.region != nullptr ? config.region->label() : "<none>";
      decision.cpuCycles = config.cpuCycles;
      decision.accelCycles = config.cycles;
      decision.hotFraction = config.region != nullptr
                                 ? framework.profile().hotFraction(config.region)
                                 : 0.0;
      double accelTimeCycles = config.cycles * ratio;
      decision.kernelSpeedup =
          accelTimeCycles > 0.0 ? config.cpuCycles / accelTimeCycles : 0.0;
      decision.areaUm2 = config.areaUm2;
      decision.numSeqBlocks = config.numSeqBlocks;
      decision.numPipelinedRegions = config.numPipelinedRegions;
      decision.numCoupled = config.numCoupled;
      decision.numDecoupled = config.numDecoupled;
      decision.numScratchpad = config.numScratchpad;
      evaluation.decisions.push_back(std::move(decision));
    }
    // Publish newly generated regions for the next run. Only successful
    // rows save: a failed row may hold a partially generated model whose
    // counters never reached their deterministic emission points. Save
    // failures degrade to diagnostics (stderr), never to a failed row.
    if (framework.modelCache() != nullptr) {
      (void)framework.saveModelCache();
      evaluation.cacheStats = framework.modelCache()->stats();
      evaluation.cacheDiagnostics = framework.modelCache()->diagnostics();
    }
  } catch (const support::DiagnosticError& e) {
    evaluation.failure = e.diagnostic();
    evaluation.report.budgetRatio = budgetRatio;
  } catch (const std::exception& e) {
    evaluation.failure = support::Diagnostic{
        support::Stage::Internal, info->name, e.what()};
    evaluation.report.budgetRatio = budgetRatio;
  }
  return evaluation;
}

std::vector<WorkloadEvaluation> evaluateWorkloads(
    const std::vector<std::string>& names, double budgetRatio, unsigned jobs,
    const FrameworkOptions& options) {
  if (jobs == 0) jobs = ThreadPool::defaultWorkers();
  // One process-wide pool reused across invocations (driver sweeps, benches)
  // instead of a construct/join cycle per call; grow-only, so a jobs=1 call
  // after a jobs=N call still yields byte-identical output — only the
  // schedule differs.
  ThreadPool& pool = ThreadPool::shared();
  pool.ensureWorkers(jobs);
  FrameworkOptions taskOptions = options;
  if (taskOptions.pool == nullptr) taskOptions.pool = &pool;
  // LPT (longest-processing-time-first) list scheduling: submit the
  // heaviest workloads first so the cjpeg/3mm-class tails start early
  // instead of landing last on an otherwise-drained pool. Submission order
  // only — output stays in `names` order, exceptions still surface
  // lowest-index-first.
  std::vector<size_t> submitOrder(names.size());
  for (size_t i = 0; i < submitOrder.size(); ++i) submitOrder[i] = i;
  std::vector<double> hints(names.size(), 1.0);
  for (size_t i = 0; i < names.size(); ++i) {
    if (const workloads::WorkloadInfo* info = workloads::byName(names[i])) {
      hints[i] = info->costHint;
    }
  }
  std::stable_sort(submitOrder.begin(), submitOrder.end(),
                   [&hints](size_t a, size_t b) { return hints[a] > hints[b]; });
  return parallelIndexMap(
      pool, names.size(),
      [&](size_t i) {
        return evaluateWorkload(names[i], budgetRatio, taskOptions, i);
      },
      submitOrder);
}

std::vector<WorkloadEvaluation> evaluateAll(double budgetRatio, unsigned jobs,
                                            const FrameworkOptions& options) {
  std::vector<std::string> names;
  for (const auto& info : workloads::all()) names.push_back(info.name);
  return evaluateWorkloads(names, budgetRatio, jobs, options);
}

size_t countFailures(const std::vector<WorkloadEvaluation>& evaluations) {
  size_t failures = 0;
  for (const WorkloadEvaluation& evaluation : evaluations) {
    if (!evaluation.ok()) ++failures;
  }
  return failures;
}

std::string formatEvaluationLine(const WorkloadEvaluation& evaluation) {
  if (!evaluation.ok()) {
    const support::Diagnostic& d = *evaluation.failure;
    return formatLine("%-12s %-22s FAILED %s: %s", evaluation.suite.c_str(),
                      evaluation.name.c_str(), support::stageName(d.stage),
                      d.message.c_str());
  }
  const EvaluationReport& r = evaluation.report;
  return formatLine(
      "%-12s %-22s %8.3fx over[21]=%8.3f over[23]=%8.3f "
      "SB=%-3u PR=%-3u C=%-3u D=%-3u S=%-3u save=%6.2f%%",
      evaluation.suite.c_str(), evaluation.name.c_str(), r.caymanSpeedup,
      r.overNovia, r.overQsCores, r.numSeqBlocks, r.numPipelinedRegions,
      r.numCoupled, r.numDecoupled, r.numScratchpad, r.areaSavingPercent);
}

std::string formatEvaluationTable(
    const std::vector<WorkloadEvaluation>& evaluations) {
  std::string table;
  if (evaluations.empty()) return table;
  table += formatLine("evaluation at budget %.0f%% of a CVA6 tile (%zu "
                      "workloads)\n",
                      100.0 * evaluations.front().report.budgetRatio,
                      evaluations.size());
  double overNovia = 0.0, overQs = 0.0, save = 0.0, speedup = 0.0;
  size_t numOk = 0;
  for (const WorkloadEvaluation& evaluation : evaluations) {
    table += formatEvaluationLine(evaluation);
    table += '\n';
    if (!evaluation.ok()) continue;
    ++numOk;
    overNovia += evaluation.report.overNovia;
    overQs += evaluation.report.overQsCores;
    save += evaluation.report.areaSavingPercent;
    speedup += evaluation.report.caymanSpeedup;
  }
  if (numOk > 0) {
    double n = static_cast<double>(numOk);
    table += formatLine("average: speedup=%8.3fx over[21]=%8.3f "
                        "over[23]=%8.3f save=%6.2f%%\n",
                        speedup / n, overNovia / n, overQs / n, save / n);
  }
  // The failure summary only appears when something failed, so clean-run
  // output stays byte-identical to the historical format.
  size_t failures = countFailures(evaluations);
  if (failures > 0) {
    table += formatLine("FAILED: %zu of %zu workloads\n", failures,
                        evaluations.size());
  }
  return table;
}

}  // namespace cayman
