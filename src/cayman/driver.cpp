#include "cayman/driver.h"

#include <cstdarg>
#include <cstdio>

#include "support/thread_pool.h"
#include "workloads/workloads.h"

namespace cayman {

namespace {

std::string formatLine(const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return buffer;
}

}  // namespace

WorkloadEvaluation evaluateWorkload(const std::string& name,
                                    double budgetRatio,
                                    const FrameworkOptions& options) {
  const workloads::WorkloadInfo* info = workloads::byName(name);
  CAYMAN_ASSERT(info != nullptr, "unknown workload: " + name);
  WorkloadEvaluation evaluation;
  evaluation.name = info->name;
  evaluation.suite = info->suite;
  Framework framework(workloads::build(name), options);
  evaluation.report = framework.evaluate(budgetRatio);
  return evaluation;
}

std::vector<WorkloadEvaluation> evaluateWorkloads(
    const std::vector<std::string>& names, double budgetRatio, unsigned jobs,
    const FrameworkOptions& options) {
  if (jobs == 0) jobs = ThreadPool::defaultWorkers();
  ThreadPool pool(jobs);
  return parallelIndexMap(pool, names.size(), [&](size_t i) {
    return evaluateWorkload(names[i], budgetRatio, options);
  });
}

std::vector<WorkloadEvaluation> evaluateAll(double budgetRatio,
                                            unsigned jobs) {
  std::vector<std::string> names;
  for (const auto& info : workloads::all()) names.push_back(info.name);
  return evaluateWorkloads(names, budgetRatio, jobs);
}

std::string formatEvaluationLine(const WorkloadEvaluation& evaluation) {
  const EvaluationReport& r = evaluation.report;
  return formatLine(
      "%-12s %-22s %8.3fx over[21]=%8.3f over[23]=%8.3f "
      "SB=%-3u PR=%-3u C=%-3u D=%-3u S=%-3u save=%6.2f%%",
      evaluation.suite.c_str(), evaluation.name.c_str(), r.caymanSpeedup,
      r.overNovia, r.overQsCores, r.numSeqBlocks, r.numPipelinedRegions,
      r.numCoupled, r.numDecoupled, r.numScratchpad, r.areaSavingPercent);
}

std::string formatEvaluationTable(
    const std::vector<WorkloadEvaluation>& evaluations) {
  std::string table;
  if (evaluations.empty()) return table;
  table += formatLine("evaluation at budget %.0f%% of a CVA6 tile (%zu "
                      "workloads)\n",
                      100.0 * evaluations.front().report.budgetRatio,
                      evaluations.size());
  double overNovia = 0.0, overQs = 0.0, save = 0.0, speedup = 0.0;
  for (const WorkloadEvaluation& evaluation : evaluations) {
    table += formatEvaluationLine(evaluation);
    table += '\n';
    overNovia += evaluation.report.overNovia;
    overQs += evaluation.report.overQsCores;
    save += evaluation.report.areaSavingPercent;
    speedup += evaluation.report.caymanSpeedup;
  }
  double n = static_cast<double>(evaluations.size());
  table += formatLine("average: speedup=%8.3fx over[21]=%8.3f "
                      "over[23]=%8.3f save=%6.2f%%\n",
                      speedup / n, overNovia / n, overQs / n, save / n);
  return table;
}

}  // namespace cayman
