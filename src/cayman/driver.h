// Parallel evaluation driver: runs the full Table II-style evaluation over
// many workloads on a thread pool, one Framework per worker task, results
// ordered by workload registry order regardless of schedule.
//
// Determinism contract: every field of the returned reports (and every byte
// of the formatted table, which deliberately omits wall-clock timings) is
// bit-identical between jobs=1 and jobs=N runs — each task is a pure
// function of (workload name, budget). Engine-mode toggles extend this:
// trace counters (including the merge.* set) are emitted at mode-independent
// points, so metrics are also byte-identical across --select-mode,
// --generate-mode, and --merge-mode.
//
// Fault isolation contract: evaluateWorkload never throws. Every failure —
// cayman::Error, std::bad_alloc, timeouts, injected faults — is caught
// inside the task and returned as a per-workload Diagnostic, so one
// misbehaving workload cannot abort the other rows of a sweep. Rows that
// succeed render byte-identically whether or not a sibling failed.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cayman/framework.h"
#include "support/status.h"

namespace cayman {

/// One chosen accelerator region, captured as plain values while the
/// Framework (and the wPST/regions it owns) is still alive —
/// AcceleratorConfig::region dangles once evaluateWorkload's Framework is
/// destroyed, so reports must never carry the raw config pointers around.
struct SelectionDecision {
  std::string region;          ///< wPST region label
  double cpuCycles = 0.0;      ///< T_cand contribution (CPU cycles)
  double accelCycles = 0.0;    ///< Cycle_cand contribution (accel cycles)
  double hotFraction = 0.0;    ///< cpuCycles / T_all
  double kernelSpeedup = 0.0;  ///< cpuCycles / (accelCycles * clockRatio)
  double areaUm2 = 0.0;
  unsigned numSeqBlocks = 0;
  unsigned numPipelinedRegions = 0;
  unsigned numCoupled = 0;
  unsigned numDecoupled = 0;
  unsigned numScratchpad = 0;
};

/// One evaluated workload: the registry entry plus its Table II row, or the
/// structured failure that prevented it.
struct WorkloadEvaluation {
  std::string name;
  std::string suite;
  EvaluationReport report;
  /// Chosen regions of the best solution, in solution order.
  std::vector<SelectionDecision> decisions;
  /// Set when the pipeline failed; `report` is then only partially filled.
  std::optional<support::Diagnostic> failure;

  /// Persistent model-cache activity (zeros when options.cacheDir was empty
  /// or the row failed before the cache stage). Never part of the
  /// deterministic stdout/metrics surface — the CLI reports it on stderr.
  accel::ModelCacheStats cacheStats;
  /// Cache degradation notes (corrupt records skipped, failed saves, ...).
  std::vector<support::Diagnostic> cacheDiagnostics;

  bool ok() const { return !failure.has_value(); }
};

/// Builds, profiles, and evaluates one workload at `budgetRatio`. Never
/// throws: failures (including `options.timeoutSeconds` deadline expiry and
/// faults injected via `options.failAfterStage` or env
/// CAYMAN_INJECT_FAULT=<workload>:<stage>) come back in `failure`.
/// `traceIndex` is the workload's stable output position for the trace
/// recorder (registry order in sweeps; 0 for one-off calls).
WorkloadEvaluation evaluateWorkload(const std::string& name,
                                    double budgetRatio,
                                    const FrameworkOptions& options = {},
                                    size_t traceIndex = 0);

/// Evaluates the named workloads at `budgetRatio` on `jobs` pool workers
/// (jobs == 0 means ThreadPool::defaultWorkers()). Output order follows
/// `names`.
std::vector<WorkloadEvaluation> evaluateWorkloads(
    const std::vector<std::string>& names, double budgetRatio, unsigned jobs,
    const FrameworkOptions& options = {});

/// Evaluates every registered workload (the paper's 28) at `budgetRatio`.
std::vector<WorkloadEvaluation> evaluateAll(double budgetRatio, unsigned jobs,
                                            const FrameworkOptions& options = {});

/// Number of failed rows (drives the CLI's non-zero exit).
size_t countFailures(const std::vector<WorkloadEvaluation>& evaluations);

/// Deterministic one-line rendering of one evaluation (no timing fields).
/// Failed rows render as "<suite> <name> FAILED <stage>: <message>".
std::string formatEvaluationLine(const WorkloadEvaluation& evaluation);

/// Deterministic multi-line table: header, one line per workload, and an
/// average row over the successful workloads. Bit-identical across jobs
/// counts by construction; identical to the historical format when no row
/// failed.
std::string formatEvaluationTable(
    const std::vector<WorkloadEvaluation>& evaluations);

}  // namespace cayman
