// Parallel evaluation driver: runs the full Table II-style evaluation over
// many workloads on a thread pool, one Framework per worker task, results
// ordered by workload registry order regardless of schedule.
//
// Determinism contract: every field of the returned reports (and every byte
// of the formatted table, which deliberately omits wall-clock timings) is
// bit-identical between jobs=1 and jobs=N runs — each task is a pure
// function of (workload name, budget).
#pragma once

#include <string>
#include <vector>

#include "cayman/framework.h"

namespace cayman {

/// One evaluated workload: the registry entry plus its Table II row.
struct WorkloadEvaluation {
  std::string name;
  std::string suite;
  EvaluationReport report;
};

/// Builds, profiles, and evaluates one workload at `budgetRatio`.
WorkloadEvaluation evaluateWorkload(const std::string& name,
                                    double budgetRatio,
                                    const FrameworkOptions& options = {});

/// Evaluates the named workloads at `budgetRatio` on `jobs` pool workers
/// (jobs == 0 means ThreadPool::defaultWorkers()). Output order follows
/// `names`.
std::vector<WorkloadEvaluation> evaluateWorkloads(
    const std::vector<std::string>& names, double budgetRatio, unsigned jobs,
    const FrameworkOptions& options = {});

/// Evaluates every registered workload (the paper's 28) at `budgetRatio`.
std::vector<WorkloadEvaluation> evaluateAll(double budgetRatio, unsigned jobs);

/// Deterministic one-line rendering of one evaluation (no timing fields).
std::string formatEvaluationLine(const WorkloadEvaluation& evaluation);

/// Deterministic multi-line table: header, one line per workload, and an
/// average row. Bit-identical across jobs counts by construction.
std::string formatEvaluationTable(
    const std::vector<WorkloadEvaluation>& evaluations);

}  // namespace cayman
