// Cayman's end-to-end public API (paper Fig. 1): application IR in,
// profiled wPST + candidate selection + accelerator merging out.
//
// Typical use:
//   auto module = ...;                       // build or parse IR
//   cayman::Framework framework(std::move(module));
//   auto best = framework.best(0.25);        // 25% of a CVA6 tile
//   auto merged = framework.mergeSolution(best);
#pragma once

#include <chrono>
#include <memory>
#include <optional>

#include "baselines/novia.h"
#include "baselines/qscores.h"
#include "merge/merger.h"
#include "select/selector.h"
#include "support/cancellation.h"
#include "support/status.h"

namespace cayman {

class ThreadPool;

struct FrameworkOptions {
  /// Accelerator target clock (paper: 500 MHz).
  double accelClockNs = 2.0;
  /// CPU clock the profile's cycles are measured against. A CVA6-class core
  /// implemented on the same 45nm node clocks around 625 MHz (the 1.7 GHz
  /// figure of [32] is 22nm FDSOI).
  double cpuClockNs = 1.6;
  /// α-filter ratio of Algorithm 1.
  double alpha = 1.12;
  /// Scratchpad threshold β (§III-C).
  double beta = 4.0;
  /// Hotspot pruning threshold (fraction of T_all).
  double pruneHotFraction = 5e-4;
  /// Disable decoupled/scratchpad interfaces (Fig. 6's "coupled-only").
  bool coupledOnly = false;
  /// Which selector DP runs Algorithm 1 (also forwarded to the QsCores
  /// baseline's selector). Reference is the slow oracle for differential
  /// testing; both produce bit-identical evaluations.
  select::SelectMode selectMode = select::SelectMode::Frontier;
  /// Which candidate-generation engine the accelerator model runs (also
  /// forwarded to the QsCores baseline's model). Reference is the exhaustive
  /// oracle for differential testing; both produce bit-identical fronts.
  accel::GenerateMode generateMode = accel::GenerateMode::Guided;
  /// Which matching engine contracts the merge compatibility graph.
  /// Reference is the bug-fixed seed greedy kept as the differential oracle;
  /// both produce value-identical MergeResults.
  merge::MergeMode mergeMode = merge::MergeMode::Graph;
  /// Test hook forwarded to the model: microseconds slept per candidate
  /// generation, so deadline tests can force a slow select stage. The driver
  /// also honours env CAYMAN_INJECT_SLOW=<workload>:generate:<us>.
  unsigned injectGenerateStallUs = 0;
  /// Directory for the persistent model cache (empty disables it). When set,
  /// a Cache stage after Profile loads the snapshot keyed by (IR content
  /// hash, model fingerprint) and attaches it to the model; cache damage
  /// never fails the pipeline — affected regions just regenerate cold.
  std::string cacheDir;
  /// Worker pool for nested region-level fan-out inside this workload: the
  /// model's generateAll() runs cold candidate generations of distinct
  /// regions concurrently on it. Not owned; must outlive the Framework.
  /// nullptr keeps generation serial. Counter/trace/output bytes are
  /// identical either way — only wall-clock changes. Deliberately excluded
  /// from the persistent-cache model fingerprint.
  ThreadPool* pool = nullptr;

  /// Per-workload wall-clock deadline in seconds (<= 0 disables). Policy
  /// knob only: the driver converts it into a CancelToken deadline; the
  /// Framework itself consumes `cancel`.
  double timeoutSeconds = 0.0;
  /// Cooperative cancellation token, polled by the interpreter step loop and
  /// the selector DP. Must outlive the Framework; nullptr disables.
  const support::CancelToken* cancel = nullptr;
  /// Deterministic fault injection for testing fault isolation: throw a
  /// DiagnosticError right after this pipeline stage completes. The driver
  /// also honours env CAYMAN_INJECT_FAULT=<workload>:<stage>.
  std::optional<support::Stage> failAfterStage;

  double clockRatio() const { return accelClockNs / cpuClockNs; }
};

/// Everything a Table II row needs for one (benchmark, budget) pair.
struct EvaluationReport {
  double budgetRatio = 0.0;  ///< of the CVA6 tile area
  double totalCpuCycles = 0.0;  ///< T_all (Eq. 1 denominator basis)
  select::Solution solution; ///< best Cayman solution under the budget
  merge::MergeResult merging;

  double caymanSpeedup = 1.0;   ///< Eq. 1 whole-program speedup
  double noviaSpeedup = 1.0;
  double qscoresSpeedup = 1.0;
  /// Runtime ratios (baseline program time / Cayman program time).
  double overNovia = 1.0;
  double overQsCores = 1.0;

  unsigned numSeqBlocks = 0;         ///< #SB
  unsigned numPipelinedRegions = 0;  ///< #PR
  unsigned numCoupled = 0;           ///< #C
  unsigned numDecoupled = 0;         ///< #D
  unsigned numScratchpad = 0;        ///< #S
  double areaSavingPercent = 0.0;    ///< by accelerator merging
  double selectionSeconds = 0.0;     ///< framework runtime
};

class Framework {
 public:
  explicit Framework(std::unique_ptr<ir::Module> module,
                     FrameworkOptions options = {});

  const ir::Module& module() const { return *module_; }
  const analysis::WPst& wpst() const { return *wpst_; }
  const sim::ProfileData& profile() const { return *profile_; }
  const hls::TechLibrary& tech() const { return tech_; }
  const accel::AcceleratorModel& model() const { return *model_; }
  const FrameworkOptions& options() const { return options_; }

  /// T_all in CPU cycles.
  double totalCpuCycles() const { return profile_->totalCycles(); }
  /// Area budget in um^2 for a CVA6-tile ratio.
  double budgetUm2(double budgetRatio) const {
    return budgetRatio * tech_.cva6TileAreaUm2;
  }

  /// Pareto-optimal solution sequence under the budget (Algorithm 1).
  /// Thread-safe: concurrent explore/best/evaluate calls on one Framework
  /// share only the model's mutex-guarded generate cache; selector state is
  /// per-call.
  std::vector<select::Solution> explore(double budgetRatio) const;
  /// Best (highest-saving) solution under the budget.
  select::Solution best(double budgetRatio) const;
  /// Whole-program speedup of a solution (Eq. 1).
  double speedupOf(const select::Solution& solution) const {
    return solution.speedup(totalCpuCycles(), options_.clockRatio());
  }

  /// Accelerator merging over one solution (§III-E).
  merge::MergeResult mergeSolution(const select::Solution& solution) const;

  /// Full evaluation against both baselines (one Table II row).
  EvaluationReport evaluate(double budgetRatio) const;

  /// Baseline access (Fig. 6 series).
  const baselines::NoviaFlow& novia() const { return *novia_; }
  const baselines::QsCoresFlow& qscores() const { return *qscores_; }

  /// The persistent model cache; nullptr when options.cacheDir is empty.
  /// (The QsCores baseline runs its own model under different parameters
  /// and always generates cold.)
  const accel::ModelCache* modelCache() const { return modelCache_.get(); }
  /// Publishes newly recorded regions atomically (temp file + rename).
  /// No-op returning 0 when the cache is absent or clean; failures come
  /// back as a Diagnostic (and are also queued on modelCache()->
  /// diagnostics()) — never an exception.
  support::Expected<uint64_t> saveModelCache();

 private:
  select::SelectorParams selectorParams(double budgetRatio) const;

  FrameworkOptions options_;
  std::unique_ptr<ir::Module> module_;
  std::unique_ptr<analysis::WPst> wpst_;
  std::unique_ptr<sim::Interpreter> interpreter_;
  std::unique_ptr<sim::ProfileData> profile_;
  hls::TechLibrary tech_;
  std::unique_ptr<accel::AcceleratorModel> model_;
  std::unique_ptr<accel::ModelCache> modelCache_;
  std::unique_ptr<baselines::NoviaFlow> novia_;
  std::unique_ptr<baselines::QsCoresFlow> qscores_;
};

}  // namespace cayman
