// NOVIA-like baseline [21]: custom functional units discovered from
// application dataflow. Per the paper's characterization (Table I), this
// flow accelerates single-basic-block data-flow graphs only — no control
// flow and no memory access acceleration; operands arrive as scalars and
// memory operations stay on the CPU.
#pragma once

#include "hls/tech_library.h"
#include "sim/profiler.h"

namespace cayman::baselines {

/// One selectable CFU candidate plus a Pareto front over subsets.
class NoviaFlow {
 public:
  struct Point {
    double areaUm2 = 0.0;
    double savedCpuCycles = 0.0;
    int fusedBlocks = 0;

    double speedup(double totalCpuCycles) const {
      double remaining = totalCpuCycles - savedCpuCycles;
      return remaining <= 0.0 ? totalCpuCycles : totalCpuCycles / remaining;
    }
  };

  NoviaFlow(const analysis::WPst& wpst, const sim::ProfileData& profile,
            const hls::TechLibrary& tech,
            const sim::CpuCostModel& cpu = sim::CpuCostModel::cva6(),
            double cpuClockNs = 1.0);

  /// Increasing-area Pareto points under the budget (greedy knapsack by
  /// benefit density — NOVIA's inline-accelerator selection heuristic).
  std::vector<Point> paretoFront(double areaBudgetUm2) const;
  /// Highest-speedup point under the budget.
  Point best(double areaBudgetUm2) const;

 private:
  struct Candidate {
    const ir::BasicBlock* block = nullptr;
    double savedCpuCycles = 0.0;
    double areaUm2 = 0.0;
  };

  std::vector<Candidate> candidates_;
};

}  // namespace cayman::baselines
