// QsCores-like baseline [23]: off-core accelerators ("quasi-specific
// cores") that do support control flow and memory, but only synthesize
// sequential control logic and reach memory through a slow scan-chain-style
// interface (paper Table I / §II-B). Implemented by instantiating Cayman's
// own accelerator model with those restrictions, so the comparison isolates
// exactly the paper's claimed advantages.
#pragma once

#include "select/selector.h"

namespace cayman::baselines {

class QsCoresFlow {
 public:
  QsCoresFlow(const analysis::WPst& wpst, const sim::ProfileData& profile,
              const hls::TechLibrary& tech,
              accel::GenerateMode mode = accel::GenerateMode::Guided,
              const support::CancelToken* cancel = nullptr);

  /// Scan-chain access timing: high latency, one word at a time, the chain
  /// shared by every access.
  static hls::InterfaceTiming scanChainTiming();

  /// Model restrictions: sequential control only, coupled-style access only.
  static accel::ModelParams restrictedParams(
      accel::GenerateMode mode = accel::GenerateMode::Guided,
      const support::CancelToken* cancel = nullptr);

  /// Both are safe to call concurrently: selection state is per-call and
  /// the restricted model's generate cache is internally synchronized.
  /// `mode` selects the DP engine (bit-identical results either way).
  std::vector<select::Solution> paretoFront(
      double areaBudgetUm2, double clockRatio = 1.25,
      select::SelectMode mode = select::SelectMode::Frontier) const;
  select::Solution best(
      double areaBudgetUm2, double clockRatio = 1.25,
      select::SelectMode mode = select::SelectMode::Frontier) const;

  const accel::AcceleratorModel& model() const { return model_; }

 private:
  accel::AcceleratorModel model_;
};

}  // namespace cayman::baselines
