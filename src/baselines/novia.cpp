#include "baselines/novia.h"

#include <algorithm>

namespace cayman::baselines {

NoviaFlow::NoviaFlow(const analysis::WPst& wpst,
                     const sim::ProfileData& profile,
                     const hls::TechLibrary& tech,
                     const sim::CpuCostModel& cpu, double cpuClockNs) {
  const double wrapperArea = 600.0;  // decode + operand routing of a CFU

  for (const auto& function : wpst.module().functions()) {
    for (const auto& block : function->blocks()) {
      uint64_t execs = profile.blockCount(block.get());
      if (execs == 0) continue;

      // The CFU covers the block's pure-compute dataflow; memory accesses,
      // address computation feeding them, and control stay on the core.
      double cpuComputeCycles = 0.0;
      double area = 0.0;
      unsigned ops = 0;
      // Critical path through compute ops only (ASAP over def-use edges).
      std::map<const ir::Instruction*, double> finish;
      double critical = 0.0;
      for (const auto& inst : block->instructions()) {
        if (!ir::isComputeOp(inst->opcode()) ||
            inst->opcode() == ir::Opcode::Gep) {
          continue;
        }
        double ready = 0.0;
        for (const ir::Value* operand : inst->operands()) {
          const auto* def = ir::dynCast<ir::Instruction>(operand);
          if (def == nullptr) continue;
          auto it = finish.find(def);
          if (it != finish.end()) ready = std::max(ready, it->second);
        }
        double latency = std::max(
            1.0, static_cast<double>(tech.latencyCycles(
                     inst->opcode(), inst->type(), cpuClockNs)));
        finish[inst.get()] = ready + latency;
        critical = std::max(critical, finish[inst.get()]);
        cpuComputeCycles += cpu.cost(*inst);
        area += tech.opInfo(inst->opcode(), inst->type()).areaUm2;
        ++ops;
      }
      if (ops < 2) continue;  // single ops are not worth a custom unit

      // Invocation overhead: operand marshalling into the CFU register file.
      double perExecSaved = cpuComputeCycles - (critical + 1.0);
      if (perExecSaved <= 0.0) continue;

      Candidate candidate;
      candidate.block = block.get();
      candidate.savedCpuCycles = perExecSaved * static_cast<double>(execs);
      candidate.areaUm2 = area + wrapperArea;
      candidates_.push_back(candidate);
    }
  }
}

std::vector<NoviaFlow::Point> NoviaFlow::paretoFront(
    double areaBudgetUm2) const {
  // Greedy by benefit density, accumulating prefix points.
  std::vector<Candidate> sorted = candidates_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.savedCpuCycles / a.areaUm2 >
                     b.savedCpuCycles / b.areaUm2;
            });
  std::vector<Point> points;
  Point current;
  points.push_back(current);
  for (const Candidate& candidate : sorted) {
    if (current.areaUm2 + candidate.areaUm2 > areaBudgetUm2) continue;
    current.areaUm2 += candidate.areaUm2;
    current.savedCpuCycles += candidate.savedCpuCycles;
    current.fusedBlocks += 1;
    points.push_back(current);
  }
  return points;
}

NoviaFlow::Point NoviaFlow::best(double areaBudgetUm2) const {
  std::vector<Point> points = paretoFront(areaBudgetUm2);
  return points.back();
}

}  // namespace cayman::baselines
