#include "baselines/qscores.h"

namespace cayman::baselines {

hls::InterfaceTiming QsCoresFlow::scanChainTiming() {
  hls::InterfaceTiming timing;
  // Scan-chain data access: words serially shifted through the chain —
  // roughly twice the latency and occupancy of a dedicated coupled port
  // ([22], [23]). Slow enough to cap scaling, not so slow the flow never
  // beats the CPU (QsCores is a real baseline, clearly above NOVIA).
  timing.coupledLoadLatency = 6;
  timing.coupledLoadOccupancy = 5;
  timing.coupledStoreLatency = 3;
  timing.coupledStoreOccupancy = 2;
  return timing;
}

accel::ModelParams QsCoresFlow::restrictedParams(
    accel::GenerateMode mode, const support::CancelToken* cancel) {
  accel::ModelParams params;
  params.allowDecoupled = false;
  params.allowScratchpad = false;
  params.allowPipelining = false;
  params.allowUnrolling = false;
  params.generateMode = mode;
  params.cancel = cancel;
  return params;
}

QsCoresFlow::QsCoresFlow(const analysis::WPst& wpst,
                         const sim::ProfileData& profile,
                         const hls::TechLibrary& tech,
                         accel::GenerateMode mode,
                         const support::CancelToken* cancel)
    : model_(wpst, profile, tech, scanChainTiming(),
             restrictedParams(mode, cancel)) {}

std::vector<select::Solution> QsCoresFlow::paretoFront(
    double areaBudgetUm2, double clockRatio,
    select::SelectMode mode) const {
  select::SelectorParams params;
  params.areaBudgetUm2 = areaBudgetUm2;
  params.clockRatio = clockRatio;
  params.mode = mode;
  select::CandidateSelector selector(model_, params);
  select::CandidateSelector::Stats stats;
  return selector.select(stats);
}

select::Solution QsCoresFlow::best(double areaBudgetUm2, double clockRatio,
                                   select::SelectMode mode) const {
  select::SelectorParams params;
  params.areaBudgetUm2 = areaBudgetUm2;
  params.clockRatio = clockRatio;
  params.mode = mode;
  select::CandidateSelector selector(model_, params);
  select::CandidateSelector::Stats stats;
  return selector.best(stats);
}

}  // namespace cayman::baselines
