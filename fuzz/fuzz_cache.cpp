// Fuzz target for the persistent model-cache ingestion path.
//
// One input exercises the whole untrusted-snapshot stack:
//   1. blobio::parseStream under tight fuzz limits (rejections are fine,
//      crashes are not),
//   2. rebuild the surviving payloads with buildStream and reparse: the
//      framing layer must round-trip to a clean fixpoint,
//   3. for every surviving payload, decodeMeta / decodeRegionRecord; any
//      accepted record must re-encode byte-identically (the fixpoint
//      invariant ModelCache::save depends on: decoded raws ARE the save
//      image),
//   4. summarizeSnapshot over the raw input must never crash.
//
// Build shapes mirror fuzz_parser:
//   - fuzz_cache        libFuzzer driver (Clang only, -fsanitize=fuzzer).
//   - fuzz_cache_replay standalone main (any compiler): replays corpus files
//     under ctest and writes synthesized seeds with --write-seeds.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "accel/model_cache.h"
#include "support/blobio.h"

namespace {

using namespace cayman;

/// Much tighter than production ModelCacheLimits: the fuzzer probes parsing
/// logic, not allocator throughput.
accel::ModelCacheLimits fuzzLimits() {
  accel::ModelCacheLimits limits;
  limits.stream.maxFileBytes = 1u << 20;
  limits.stream.maxRecordBytes = 1u << 16;
  limits.stream.maxRecords = 1u << 10;
  limits.maxRegions = 1u << 10;
  limits.maxConfigsPerRegion = 64;
  limits.maxLoopsPerConfig = 32;
  limits.maxIfacesPerConfig = 256;
  limits.maxSchedEntries = 256;
  limits.maxSchedStarts = 256;
  limits.maxStringBytes = 256;
  return limits;
}

void require(bool condition, const char* what) {
  if (condition) return;
  std::fprintf(stderr, "fuzz invariant violated: %s\n", what);
  std::abort();
}

void runOne(const uint8_t* data, size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);
  accel::ModelCacheLimits limits = fuzzLimits();

  support::Expected<support::blobio::ParsedStream> parsed =
      support::blobio::parseStream(bytes, limits.stream, "fuzz");
  if (!parsed.ok()) return;
  const support::blobio::ParsedStream& stream = parsed.value();

  // Framing fixpoint: surviving payloads rebuild into a stream that parses
  // back clean and equal.
  std::string rebuilt =
      support::blobio::buildStream(stream.records, stream.version);
  support::Expected<support::blobio::ParsedStream> reparsed =
      support::blobio::parseStream(rebuilt, limits.stream, "fuzz");
  require(reparsed.ok(), "rebuilt stream failed to parse");
  require(!reparsed.value().truncated, "rebuilt stream reports truncation");
  require(reparsed.value().rejectedRecords == 0,
          "rebuilt stream rejected records");
  require(reparsed.value().records == stream.records,
          "rebuilt stream changed the payloads");

  // Payload fixpoint: decode -> encode must reproduce accepted payloads
  // byte for byte.
  for (const std::string& payload : stream.records) {
    support::Expected<accel::RawMeta> meta =
        accel::decodeMeta(payload, limits, "fuzz");
    if (meta.ok()) {
      require(accel::encodeMeta(meta.value()) == payload,
              "meta decode -> encode is not a fixpoint");
    }
    support::Expected<accel::RawRegionRecord> record =
        accel::decodeRegionRecord(payload, limits, "fuzz");
    if (record.ok()) {
      require(accel::encodeRegionRecord(record.value()) == payload,
              "region decode -> encode is not a fixpoint");
    }
  }

  // Whole-file summary walks the same path with duplicate tracking; it must
  // tolerate anything the stream layer let through.
  (void)accel::summarizeSnapshot(bytes, limits, "fuzz");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  runOne(data, size);
  return 0;
}

#ifdef CAYMAN_FUZZ_STANDALONE

#include <fstream>
#include <sstream>

namespace {

/// Synthesized seed snapshots covering every record shape (meta, region with
/// loops/ifaces/schedule insertions) so the fuzzer starts from structurally
/// valid streams instead of discovering the framing byte by byte.
int writeSeeds(const std::string& dir) {
  using support::blobio::buildStream;

  accel::RawMeta meta;
  meta.schema = accel::kModelCacheSchema;
  meta.irHash = 0x1234567890abcdefull;
  meta.fingerprint = 0xfedcba0987654321ull;
  meta.moduleName = "seed";

  accel::RawRegionRecord region;
  region.regionId = 3;
  region.label = "loop i [depth 1]";
  region.estimateCalls = 5;
  region.schedBlockCalls = 7;
  accel::RawConfig config;
  config.loops.push_back(accel::RawLoopConfig{3, 4, true});
  accel::RawIfaceEntry entry;
  entry.blockIdx = 0;
  entry.instIdx = 2;
  entry.iface.kind = 2;
  entry.iface.partitions = 4;
  entry.iface.hasArray = true;
  entry.iface.arrayName = "A";
  entry.iface.footprintBytes = 256;
  config.ifaces.push_back(entry);
  config.cyclesBits = 0x4059000000000000ull;  // 100.0
  config.cpuCyclesBits = 0x40c3880000000000ull;
  config.areaBits = 0x40fd4c0000000000ull;
  config.numSeqBlocks = 1;
  config.numPipelinedRegions = 1;
  config.numCoupled = 0;
  config.numDecoupled = 0;
  config.numScratchpad = 1;
  region.configs.push_back(config);
  accel::RawSchedInsert sched;
  sched.funcIdx = 0;
  sched.blockIdx = 1;
  sched.width = 4;
  sched.signature.push_back(entry.iface);
  sched.latency = 9;
  sched.opAreaBits = 0x40a0000000000000ull;
  sched.regAreaBits = 0x4090000000000000ull;
  sched.numOps = 6;
  sched.starts.push_back(accel::RawSchedStart{2, 3});
  region.schedInserts.push_back(sched);

  struct Seed {
    const char* name;
    std::string bytes;
  };
  std::vector<Seed> seeds;
  seeds.push_back({"meta_only.cayc", buildStream({accel::encodeMeta(meta)})});
  seeds.push_back(
      {"one_region.cayc",
       buildStream({accel::encodeMeta(meta),
                    accel::encodeRegionRecord(region)})});
  accel::RawRegionRecord bare = region;
  bare.schedInserts.clear();
  bare.configs.front().loops.clear();
  bare.configs.front().ifaces.clear();
  seeds.push_back(
      {"two_regions.cayc",
       buildStream({accel::encodeMeta(meta), accel::encodeRegionRecord(region),
                    accel::encodeRegionRecord(bare)})});

  for (const Seed& seed : seeds) {
    std::string path = dir + "/" + seed.name;
    std::ofstream out(path, std::ios::binary);
    out << seed.bytes;
    out.flush();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
  }
  std::printf("wrote %zu seed files to %s\n", seeds.size(), dir.c_str());
  return 0;
}

}  // namespace

// Standalone replay driver: each argument is a corpus file fed through
// runOne(). Exits 0 iff every file replays without tripping an invariant.
int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--write-seeds") {
    return writeSeeds(argv[2]);
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: fuzz_cache_replay <corpus-file>...\n"
                 "       fuzz_cache_replay --write-seeds <dir>\n");
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string bytes = text.str();
    runOne(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
    std::printf("replayed %s (%zu bytes)\n", argv[i], bytes.size());
  }
  return 0;
}

#endif  // CAYMAN_FUZZ_STANDALONE
