// Fuzz target for the untrusted-IR ingestion path.
//
// One input exercises the whole hardened front end:
//   1. parse under tight fuzz limits (rejections are fine, crashes are not),
//   2. verify (structurally bad modules are rejected),
//   3. print -> reparse -> verify -> print: the textual format must round-trip
//      to a fixpoint for any module that survived 1+2,
//   4. differential interpretation: the decoded engine and the reference
//      tree-walker run the module under a tiny instruction limit and must
//      either both throw or produce bit-identical results.
//
// Build shapes:
//   - fuzz_parser        libFuzzer driver (Clang only, -fsanitize=fuzzer).
//   - fuzz_parser_replay standalone main (any compiler): replays corpus files
//     under ctest and writes the workload seed corpus with --write-seeds.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "sim/interpreter.h"
#include "support/status.h"

namespace {

using namespace cayman;

/// Much tighter than production ParserLimits: the fuzzer probes logic, not
/// allocator throughput, so keep per-input work small.
ir::ParserLimits fuzzLimits() {
  ir::ParserLimits limits;
  limits.maxInputBytes = 1u << 17;  // covers the largest workload seed
  limits.maxGlobalElems = 1u << 14;
  limits.maxTotalGlobalBytes = 1u << 18;
  limits.maxFunctions = 64;
  limits.maxBlocksPerFunction = 1u << 10;
  limits.maxInstructionsPerFunction = 1u << 12;
  limits.maxParams = 16;
  return limits;
}

constexpr uint64_t kFuzzInstructionLimit = 1u << 14;

void require(bool condition, const char* what) {
  if (condition) return;
  std::fprintf(stderr, "fuzz invariant violated: %s\n", what);
  std::abort();
}

/// Result of one interpreter run, reduced to bit-comparable fields.
struct RunOutcome {
  bool threw = false;
  uint64_t instructions = 0;
  uint64_t cyclesBits = 0;
  bool hasReturn = false;
  int64_t returnI = 0;
  uint64_t returnFBits = 0;
};

RunOutcome interpret(const ir::Module& module, sim::Interpreter::ExecMode mode) {
  RunOutcome out;
  try {
    sim::Interpreter interpreter(module, sim::CpuCostModel::cva6(), mode);
    interpreter.setInstructionLimit(kFuzzInstructionLimit);
    sim::Interpreter::Result result = interpreter.run();
    out.instructions = result.instructions;
    std::memcpy(&out.cyclesBits, &result.totalCycles, sizeof(out.cyclesBits));
    out.hasReturn = result.returnValue.has_value();
    if (out.hasReturn) {
      out.returnI = result.returnValue->i;
      std::memcpy(&out.returnFBits, &result.returnValue->f,
                  sizeof(out.returnFBits));
    }
  } catch (const Error&) {
    // Instruction limit, call-depth guard, division traps, ... — catchable
    // rejection is a valid outcome as long as both engines agree.
    out.threw = true;
  }
  return out;
}

void runOne(const uint8_t* data, size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);

  support::Expected<std::unique_ptr<ir::Module>> parsed =
      ir::parseModuleExpected(text, fuzzLimits());
  if (!parsed.ok()) return;
  std::unique_ptr<ir::Module> module = parsed.takeValue();
  if (!ir::verifyModule(*module).empty()) return;

  // Roundtrip: a verified module's printed form must reparse (under the
  // untightened production limits — printing can expand the text), verify
  // cleanly, and print to a fixpoint.
  std::string printed = ir::printModule(*module);
  support::Expected<std::unique_ptr<ir::Module>> reparsed =
      ir::parseModuleExpected(printed, ir::ParserLimits{});
  require(reparsed.ok(), "printed IR failed to reparse");
  std::unique_ptr<ir::Module> roundtrip = reparsed.takeValue();
  require(ir::verifyModule(*roundtrip).empty(),
          "printed IR failed to verify after reparse");
  require(ir::printModule(*roundtrip) == printed,
          "print -> reparse -> print is not a fixpoint");

  // Differential interpretation, decoded vs. reference oracle.
  if (module->entryFunction() == nullptr) return;
  RunOutcome decoded = interpret(*module, sim::Interpreter::ExecMode::Decoded);
  RunOutcome reference =
      interpret(*module, sim::Interpreter::ExecMode::Reference);
  require(decoded.threw == reference.threw,
          "decoded and reference engines disagree on rejection");
  if (decoded.threw) return;
  require(decoded.instructions == reference.instructions,
          "decoded and reference engines disagree on instruction count");
  require(decoded.cyclesBits == reference.cyclesBits,
          "decoded and reference engines disagree on cycles");
  require(decoded.hasReturn == reference.hasReturn &&
              decoded.returnI == reference.returnI &&
              decoded.returnFBits == reference.returnFBits,
          "decoded and reference engines disagree on return value");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  runOne(data, size);
  return 0;
}

#ifdef CAYMAN_FUZZ_STANDALONE

#include <fstream>
#include <sstream>

#include "workloads/workloads.h"

namespace {

int writeSeeds(const std::string& dir) {
  size_t written = 0;
  for (const auto& info : workloads::all()) {
    std::unique_ptr<ir::Module> module = workloads::build(info.name);
    std::string path = dir + "/" + info.name + ".cir";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << ir::printModule(*module);
    ++written;
  }
  std::printf("wrote %zu seed files to %s\n", written, dir.c_str());
  return 0;
}

}  // namespace

// Standalone replay driver: each argument is a corpus file to feed through
// runOne(). Exits 0 iff every file replays without tripping an invariant.
int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--write-seeds") {
    return writeSeeds(argv[2]);
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: fuzz_parser_replay <corpus-file>...\n"
                 "       fuzz_parser_replay --write-seeds <dir>\n");
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string bytes = text.str();
    runOne(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
    std::printf("replayed %s (%zu bytes)\n", argv[i], bytes.size());
  }
  return 0;
}

#endif  // CAYMAN_FUZZ_STANDALONE
