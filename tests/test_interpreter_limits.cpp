// Runaway-guard tests: both execution engines must trip the instruction
// limit on divergent programs with a catchable Error, stay usable for the
// next run (memory is reset per run), and honor cooperative cancellation.
#include <gtest/gtest.h>

#include "ir/parser.h"
#include "sim/interpreter.h"
#include "support/cancellation.h"

namespace cayman::sim {
namespace {

/// Counts to 1e6 with a store per iteration, then returns the counter.
constexpr const char* kLongLoop = R"(module "long_loop" {
global @out : i64[1] = [0]

func @main() -> i64 {
entry:
  br loop
loop:
  %i = phi i64 [ 0, entry ], [ %next, loop ]
  %next = add i64 %i, 1
  %p = gep @out, 0, elem 8
  store i64 %next, %p
  %done = icmp ge i64 %next, 1000000
  condbr %done, exit, loop
exit:
  %v = load i64, %p
  ret i64 %v
}
}
)";

class InstructionLimitTest
    : public ::testing::TestWithParam<Interpreter::ExecMode> {};

TEST_P(InstructionLimitTest, DivergentRunTripsLimitWithCatchableError) {
  std::unique_ptr<ir::Module> module = ir::parseModule(kLongLoop);
  Interpreter interpreter(*module, CpuCostModel::cva6(), GetParam());
  interpreter.setInstructionLimit(1000);
  try {
    interpreter.run();
    FAIL() << "expected instruction-limit Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("instruction limit"),
              std::string::npos);
  }
}

TEST_P(InstructionLimitTest, InterpreterIsReusableAfterTrippingTheLimit) {
  std::unique_ptr<ir::Module> module = ir::parseModule(kLongLoop);
  Interpreter interpreter(*module, CpuCostModel::cva6(), GetParam());
  interpreter.setInstructionLimit(1000);
  EXPECT_THROW(interpreter.run(), Error);

  // Raise the limit: the same interpreter (and its SimMemory, reset at run
  // start) must now complete and produce the correct result.
  interpreter.setInstructionLimit(100'000'000);
  Interpreter::Result result = interpreter.run();
  ASSERT_TRUE(result.returnValue.has_value());
  EXPECT_EQ(result.returnValue->i, 1000000);
}

TEST_P(InstructionLimitTest, CancelTokenAbortsTheRun) {
  std::unique_ptr<ir::Module> module = ir::parseModule(kLongLoop);
  Interpreter interpreter(*module, CpuCostModel::cva6(), GetParam());
  support::CancelToken token;
  token.cancel();  // pre-cancelled: the rate-limited poll must still fire
  interpreter.setCancelToken(&token);
  EXPECT_THROW(interpreter.run(), support::CancelledError);

  // Detaching the token restores normal execution.
  interpreter.setCancelToken(nullptr);
  Interpreter::Result result = interpreter.run();
  ASSERT_TRUE(result.returnValue.has_value());
  EXPECT_EQ(result.returnValue->i, 1000000);
}

TEST_P(InstructionLimitTest, LimitBoundaryIsExactAcrossEngines) {
  std::unique_ptr<ir::Module> module = ir::parseModule(kLongLoop);
  // Find the instruction count of a full run, then confirm a limit exactly
  // at that count passes while one below fails — for both engines the same.
  Interpreter interpreter(*module, CpuCostModel::cva6(), GetParam());
  uint64_t total = interpreter.run().instructions;
  interpreter.setInstructionLimit(total);
  EXPECT_NO_THROW(interpreter.run());
  interpreter.setInstructionLimit(total - 1);
  EXPECT_THROW(interpreter.run(), Error);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, InstructionLimitTest,
                         ::testing::Values(Interpreter::ExecMode::Decoded,
                                           Interpreter::ExecMode::Reference),
                         [](const auto& info) {
                           return info.param ==
                                          Interpreter::ExecMode::Decoded
                                      ? "Decoded"
                                      : "Reference";
                         });

}  // namespace
}  // namespace cayman::sim
