// Golden-equivalence suite: the pre-decoded register-machine interpreter
// must produce bit-identical profiling results to the tree-walking reference
// engine on every registered workload — same total cycles (exact double
// equality, since block costs are accumulated in the same order), same
// dynamic instruction count, same per-block execution counts, and the same
// return value.
#include <gtest/gtest.h>

#include <bit>
#include <cctype>

#include "sim/interpreter.h"
#include "workloads/workloads.h"

namespace cayman::sim {
namespace {

class GoldenEquivalenceTest
    : public ::testing::TestWithParam<workloads::WorkloadInfo> {};

TEST_P(GoldenEquivalenceTest, DecodedMatchesReference) {
  const workloads::WorkloadInfo& info = GetParam();
  std::unique_ptr<ir::Module> module = workloads::build(info.name);

  Interpreter reference(*module, CpuCostModel::cva6(),
                        Interpreter::ExecMode::Reference);
  Interpreter decoded(*module, CpuCostModel::cva6(),
                      Interpreter::ExecMode::Decoded);
  Interpreter::Result ref = reference.run();
  Interpreter::Result dec = decoded.run();

  // Exact, not approximate: both engines add the same per-block costs in the
  // same dynamic block order.
  EXPECT_EQ(std::bit_cast<uint64_t>(ref.totalCycles),
            std::bit_cast<uint64_t>(dec.totalCycles))
      << info.name << ": cycles " << ref.totalCycles << " vs "
      << dec.totalCycles;
  EXPECT_EQ(ref.instructions, dec.instructions) << info.name;

  EXPECT_EQ(ref.blockCounts.size(), dec.blockCounts.size()) << info.name;
  for (const auto& [block, count] : ref.blockCounts) {
    EXPECT_EQ(dec.countOf(block), count)
        << info.name << ": block " << block->name();
  }

  ASSERT_EQ(ref.returnValue.has_value(), dec.returnValue.has_value())
      << info.name;
  if (ref.returnValue.has_value()) {
    EXPECT_EQ(ref.returnValue->i, dec.returnValue->i) << info.name;
    EXPECT_EQ(std::bit_cast<uint64_t>(ref.returnValue->f),
              std::bit_cast<uint64_t>(dec.returnValue->f))
        << info.name;
  }

  // Both engines must also leave the same memory image behind.
  for (const auto& global : module->globals()) {
    for (uint64_t i = 0; i < global->numElems(); ++i) {
      if (global->elemType()->isFloat()) {
        ASSERT_EQ(std::bit_cast<uint64_t>(
                      reference.memory().readElemF64(global.get(), i)),
                  std::bit_cast<uint64_t>(
                      decoded.memory().readElemF64(global.get(), i)))
            << info.name << ": " << global->name() << "[" << i << "]";
      } else {
        ASSERT_EQ(reference.memory().readElemI64(global.get(), i),
                  decoded.memory().readElemI64(global.get(), i))
            << info.name << ": " << global->name() << "[" << i << "]";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, GoldenEquivalenceTest,
    ::testing::ValuesIn(workloads::all()),
    [](const ::testing::TestParamInfo<workloads::WorkloadInfo>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

/// Re-running the same interpreter must be deterministic: run() resets memory
/// to the initial image, so mutated globals cannot leak into the next run.
TEST(GoldenEquivalenceTest, RepeatedRunsAreIdentical) {
  for (const char* name : {"atax", "fft", "cjpeg"}) {
    std::unique_ptr<ir::Module> module = workloads::build(name);
    Interpreter interp(*module);
    Interpreter::Result first = interp.run();
    Interpreter::Result second = interp.run();
    EXPECT_EQ(std::bit_cast<uint64_t>(first.totalCycles),
              std::bit_cast<uint64_t>(second.totalCycles))
        << name;
    EXPECT_EQ(first.instructions, second.instructions) << name;
    EXPECT_EQ(first.blockCounts, second.blockCounts) << name;
  }
}

}  // namespace
}  // namespace cayman::sim
