// Workload registry tests: every benchmark builds, verifies, runs under the
// interpreter, and has the structural properties its suite implies.
// Parameterized across all 28 workloads.
#include <gtest/gtest.h>

#include "analysis/regions.h"
#include "sim/interpreter.h"
#include "workloads/workloads.h"

namespace cayman::workloads {
namespace {

TEST(RegistryTest, HasTwentyEightWorkloadsInFourSuites) {
  EXPECT_EQ(all().size(), 28u);
  std::map<std::string, int> suites;
  for (const WorkloadInfo& info : all()) ++suites[info.suite];
  EXPECT_EQ(suites["PolyBench"], 16);
  EXPECT_EQ(suites["MachSuite"], 4);
  EXPECT_EQ(suites["MediaBench"], 2);
  EXPECT_EQ(suites["CoreMark-Pro"], 6);
}

TEST(RegistryTest, LookupAndErrors) {
  EXPECT_NE(byName("3mm"), nullptr);
  EXPECT_EQ(byName("nonexistent"), nullptr);
  EXPECT_THROW(build("nonexistent"), Error);
}

TEST(RegistryTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const WorkloadInfo& info : all()) {
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
  }
}

class WorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadTest, BuildsAndVerifies) {
  std::unique_ptr<ir::Module> module = build(GetParam());
  ASSERT_NE(module, nullptr);
  EXPECT_EQ(module->name(), GetParam());
  EXPECT_GE(module->functions().size(), 1u);
  EXPECT_GE(module->globals().size(), 1u);
}

TEST_P(WorkloadTest, RunsToCompletionDeterministically) {
  std::unique_ptr<ir::Module> module = build(GetParam());
  sim::Interpreter first(*module);
  sim::Interpreter::Result a = first.run();
  EXPECT_GT(a.totalCycles, 0.0);
  EXPECT_GT(a.instructions, 100u);
  // Kept small enough for fast profiling across the whole suite.
  EXPECT_LT(a.instructions, 20'000'000u);

  sim::Interpreter second(*module);
  sim::Interpreter::Result b = second.run();
  EXPECT_DOUBLE_EQ(a.totalCycles, b.totalCycles);
  EXPECT_EQ(a.instructions, b.instructions);
}

TEST_P(WorkloadTest, HasLoopRegionsAndHotspots) {
  std::unique_ptr<ir::Module> module = build(GetParam());
  analysis::WPst wpst(*module);
  int loops = 0;
  wpst.root()->walk([&](const analysis::Region& r) {
    if (r.kind() == analysis::RegionKind::Loop) ++loops;
  });
  EXPECT_GT(loops, 0) << "every benchmark needs loop candidates";
}

std::vector<std::string> workloadNames() {
  std::vector<std::string> names;
  for (const WorkloadInfo& info : all()) names.push_back(info.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadTest, ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- Spot checks on numerical behaviour -----------------------------------

TEST(WorkloadSemanticsTest, FloydWarshallShrinksDistances) {
  std::unique_ptr<ir::Module> module = build("floyd-warshall");
  const ir::GlobalArray* path = module->globalByName("path");
  ASSERT_NE(path, nullptr);
  sim::Interpreter interp(*module);
  // Record the initial matrix before running.
  std::vector<double> before(path->numElems());
  for (uint64_t i = 0; i < path->numElems(); ++i) {
    before[i] = interp.memory().readElemF64(path, i);
  }
  interp.run();
  for (uint64_t i = 0; i < path->numElems(); ++i) {
    EXPECT_LE(interp.memory().readElemF64(path, i), before[i] + 1e-12);
  }
}

TEST(WorkloadSemanticsTest, NwFillsScoreMatrix) {
  std::unique_ptr<ir::Module> module = build("nw");
  const ir::GlobalArray* score = module->globalByName("score");
  ASSERT_NE(score, nullptr);
  sim::Interpreter interp(*module);
  interp.run();
  // Border is the gap penalty ramp.
  EXPECT_EQ(interp.memory().readElemI64(score, 0), 0);
  EXPECT_EQ(interp.memory().readElemI64(score, 1), -1);
  // Scores are bounded by the sequence length.
  int64_t last = interp.memory().readElemI64(score, score->numElems() - 1);
  EXPECT_LE(last, 48);
  EXPECT_GE(last, -96);
}

TEST(WorkloadSemanticsTest, ParserCountsEveryCharacter) {
  std::unique_ptr<ir::Module> module = build("parser-125k");
  const ir::GlobalArray* counts = module->globalByName("counts");
  ASSERT_NE(counts, nullptr);
  sim::Interpreter interp(*module);
  interp.run();
  int64_t total = 0;
  for (uint64_t i = 0; i < counts->numElems(); ++i) {
    total += interp.memory().readElemI64(counts, i);
  }
  EXPECT_EQ(total, 4096);  // every scanned character lands in one class
}

TEST(WorkloadSemanticsTest, CjpegQuantizationCountsBlocks) {
  std::unique_ptr<ir::Module> module = build("cjpeg");
  const ir::GlobalArray* stats = module->globalByName("stats");
  ASSERT_NE(stats, nullptr);
  sim::Interpreter interp(*module);
  interp.run();
  int64_t zeros = interp.memory().readElemI64(stats, 0);
  int64_t nonzeros = interp.memory().readElemI64(stats, 1);
  EXPECT_EQ(zeros + nonzeros, 32 * 32);  // every coefficient classified
  EXPECT_GT(zeros, 0);  // quantization zeroes high frequencies
}

}  // namespace
}  // namespace cayman::workloads
