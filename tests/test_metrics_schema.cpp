// Golden-schema tests for the cayman-metrics-v1 document and the
// determinism contract: a jobs=1 and a jobs=N sweep over every registered
// workload must serialize to byte-identical JSON.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cayman/driver.h"
#include "cayman/metrics.h"
#include "support/json.h"
#include "support/trace.h"
#include "workloads/workloads.h"

namespace cayman {
namespace {

using support::json::Value;

/// Runs a full traced sweep and returns (metrics JSON dump, trace dump).
std::pair<std::string, std::string> runSweep(unsigned jobs) {
  support::trace::TraceRecorder& recorder =
      support::trace::TraceRecorder::global();
  recorder.clear();
  recorder.setEnabled(true);
  std::vector<WorkloadEvaluation> evaluations = evaluateAll(0.25, jobs);
  std::vector<support::trace::TaskRecord> tasks = recorder.drainTasks();
  std::vector<support::trace::OrphanRecord> orphans = recorder.drainOrphans();
  recorder.setEnabled(false);
  recorder.clear();
  std::string metrics = buildMetricsJson(evaluations, tasks).dump(2);
  std::string trace =
      support::trace::chromeTrace(tasks, orphans,
                                  support::trace::TimeMode::Deterministic)
          .dump();
  return {metrics, trace};
}

TEST(MetricsDeterminismTest, AllWorkloadsBitExactAcrossJobsCounts) {
  auto [metrics1, trace1] = runSweep(1);
  auto [metrics4, trace4] = runSweep(4);
  EXPECT_EQ(metrics1, metrics4);
  EXPECT_EQ(trace1, trace4);
}

class MetricsSchemaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    support::trace::TraceRecorder& recorder =
        support::trace::TraceRecorder::global();
    recorder.clear();
    recorder.setEnabled(true);
    evaluations_ = new std::vector<WorkloadEvaluation>(
        evaluateAll(0.25, 2));
    tasks_ = new std::vector<support::trace::TaskRecord>(
        recorder.drainTasks());
    recorder.setEnabled(false);
    recorder.clear();
  }
  static void TearDownTestSuite() {
    delete evaluations_;
    delete tasks_;
    evaluations_ = nullptr;
    tasks_ = nullptr;
  }

  static std::vector<WorkloadEvaluation>* evaluations_;
  static std::vector<support::trace::TaskRecord>* tasks_;
};

std::vector<WorkloadEvaluation>* MetricsSchemaTest::evaluations_ = nullptr;
std::vector<support::trace::TaskRecord>* MetricsSchemaTest::tasks_ = nullptr;

TEST_F(MetricsSchemaTest, DocumentRoundTripsThroughTheParser) {
  Value document = buildMetricsJson(*evaluations_, *tasks_);
  std::string dumped = document.dump(2);
  support::Expected<Value> parsed = support::json::parse(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.diagnostic().message;
  EXPECT_EQ(parsed.value().dump(2), dumped);
}

TEST_F(MetricsSchemaTest, TopLevelKeysAndTypes) {
  Value document = buildMetricsJson(*evaluations_, *tasks_);
  ASSERT_TRUE(document.isObject());
  EXPECT_EQ(document.find("schema")->stringValue(), "cayman-metrics-v1");
  EXPECT_EQ(document.find("time_mode")->stringValue(), "deterministic");
  EXPECT_DOUBLE_EQ(document.find("budget_ratio")->numberValue(), 0.25);
  ASSERT_TRUE(document.find("workloads")->isArray());
  EXPECT_EQ(document.find("workload_count")->intValue(),
            static_cast<int64_t>(workloads::all().size()));
  EXPECT_EQ(document.find("workloads")->items().size(),
            workloads::all().size());
  EXPECT_TRUE(document.find("totals")->isObject());
  // Pipeline counters survived into the totals.
  const Value* totals = document.find("totals");
  for (const char* key : {"interp.instructions", "interp.runs",
                          "model.cache_misses", "select.regions_visited",
                          "select.configs_generated"}) {
    const Value* counter = totals->find(key);
    ASSERT_NE(counter, nullptr) << key;
    EXPECT_GT(counter->intValue(), 0) << key;
  }
}

TEST_F(MetricsSchemaTest, WorkloadEntriesCarryMetricsCountersAndSelection) {
  Value document = buildMetricsJson(*evaluations_, *tasks_);
  const Value* workloads = document.find("workloads");
  size_t selected = 0;
  for (size_t i = 0; i < workloads->items().size(); ++i) {
    const Value& entry = workloads->items()[i];
    ASSERT_TRUE(entry.isObject());
    EXPECT_EQ(entry.find("index")->intValue(), static_cast<int64_t>(i));
    EXPECT_TRUE(entry.find("name")->isString());
    EXPECT_TRUE(entry.find("ok")->boolValue());
    const Value* metrics = entry.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_GT(metrics->find("total_cpu_cycles")->numberValue(), 0.0);
    EXPECT_GE(metrics->find("cayman_speedup")->numberValue(), 1.0);
    const Value* counters = entry.find("counters");
    ASSERT_NE(counters, nullptr) << "tracing was on, counters must exist";
    EXPECT_GT(counters->find("interp.instructions")->intValue(), 0);
    // Deterministic documents must not carry wall-clock fields.
    EXPECT_EQ(entry.find("stage_seconds"), nullptr);
    EXPECT_EQ(entry.find("total_seconds"), nullptr);
    const Value* selection = entry.find("selection");
    ASSERT_NE(selection, nullptr);
    for (const Value& decision : selection->items()) {
      ++selected;
      EXPECT_FALSE(decision.find("region")->stringValue().empty());
      EXPECT_GT(decision.find("cpu_cycles")->numberValue(), 0.0);
      EXPECT_GT(decision.find("area_um2")->numberValue(), 0.0);
      double hot = decision.find("hot_fraction")->numberValue();
      EXPECT_GT(hot, 0.0);
      EXPECT_LE(hot, 1.0);
      EXPECT_GT(decision.find("kernel_speedup")->numberValue(), 0.0);
    }
  }
  EXPECT_GT(selected, 0u) << "no workload selected any accelerator";
}

TEST_F(MetricsSchemaTest, WallModeStageSecondsSumBelowTotal) {
  Value document;
  {
    support::trace::TraceRecorder& recorder =
        support::trace::TraceRecorder::global();
    recorder.clear();
    recorder.setEnabled(true);
    std::vector<WorkloadEvaluation> evaluations;
    evaluations.push_back(evaluateWorkload("atax", 0.25));
    std::vector<support::trace::TaskRecord> tasks = recorder.drainTasks();
    recorder.setEnabled(false);
    recorder.clear();
    MetricsOptions options;
    options.includeWallTimes = true;
    document = buildMetricsJson(evaluations, tasks, options);
  }
  EXPECT_EQ(document.find("time_mode")->stringValue(), "wall");
  const Value& entry = document.find("workloads")->items().at(0);
  const Value* stages = entry.find("stage_seconds");
  ASSERT_NE(stages, nullptr);
  ASSERT_FALSE(stages->members().empty());
  double sum = 0.0;
  for (const auto& [stage, seconds] : stages->members()) {
    EXPECT_GE(seconds.numberValue(), 0.0) << stage;
    sum += seconds.numberValue();
  }
  const Value* total = entry.find("total_seconds");
  ASSERT_NE(total, nullptr);
  EXPECT_LE(sum, total->numberValue() * (1.0 + 1e-9));
}

TEST(MetricsFailureTest, FailedRowsCarryStructuredFailureObjects) {
  support::trace::TraceRecorder& recorder =
      support::trace::TraceRecorder::global();
  recorder.clear();
  recorder.setEnabled(true);
  FrameworkOptions options;
  options.failAfterStage = support::Stage::Select;
  std::vector<WorkloadEvaluation> evaluations;
  evaluations.push_back(evaluateWorkload("atax", 0.25, options));
  std::vector<support::trace::TaskRecord> tasks = recorder.drainTasks();
  recorder.setEnabled(false);
  recorder.clear();

  Value document = buildMetricsJson(evaluations, tasks);
  EXPECT_EQ(document.find("failed")->intValue(), 1);
  const Value& entry = document.find("workloads")->items().at(0);
  EXPECT_FALSE(entry.find("ok")->boolValue());
  const Value* failure = entry.find("failure");
  ASSERT_NE(failure, nullptr);
  EXPECT_EQ(failure->find("stage")->stringValue(), "select");
  EXPECT_FALSE(failure->find("message")->stringValue().empty());
  // The failed row still published its trace record with counters.
  const Value* counters = entry.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GT(counters->find("interp.instructions")->intValue(), 0);
}

}  // namespace
}  // namespace cayman
