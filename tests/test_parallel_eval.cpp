// Determinism tests for the parallel DSE layer: a parallel evaluate-all run
// must be bit-identical to the sequential one, and concurrent explore()
// calls on a shared Framework must match their sequential counterparts.
// The TSan CI job runs this binary.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "cayman/driver.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

namespace cayman {
namespace {

/// Exact comparison of every deterministic report field (wall-clock
/// selectionSeconds is the one legitimate difference).
void expectReportsIdentical(const EvaluationReport& a,
                            const EvaluationReport& b,
                            const std::string& name) {
  EXPECT_EQ(a.budgetRatio, b.budgetRatio) << name;
  EXPECT_EQ(a.caymanSpeedup, b.caymanSpeedup) << name;
  EXPECT_EQ(a.noviaSpeedup, b.noviaSpeedup) << name;
  EXPECT_EQ(a.qscoresSpeedup, b.qscoresSpeedup) << name;
  EXPECT_EQ(a.overNovia, b.overNovia) << name;
  EXPECT_EQ(a.overQsCores, b.overQsCores) << name;
  EXPECT_EQ(a.numSeqBlocks, b.numSeqBlocks) << name;
  EXPECT_EQ(a.numPipelinedRegions, b.numPipelinedRegions) << name;
  EXPECT_EQ(a.numCoupled, b.numCoupled) << name;
  EXPECT_EQ(a.numDecoupled, b.numDecoupled) << name;
  EXPECT_EQ(a.numScratchpad, b.numScratchpad) << name;
  EXPECT_EQ(a.areaSavingPercent, b.areaSavingPercent) << name;
  EXPECT_EQ(a.solution.areaUm2, b.solution.areaUm2) << name;
  EXPECT_EQ(a.solution.accelCycles, b.solution.accelCycles) << name;
  EXPECT_EQ(a.solution.cpuCycles, b.solution.cpuCycles) << name;
  EXPECT_EQ(a.solution.accelerators.size(), b.solution.accelerators.size())
      << name;
  EXPECT_EQ(a.merging.areaBeforeUm2, b.merging.areaBeforeUm2) << name;
  EXPECT_EQ(a.merging.areaAfterUm2, b.merging.areaAfterUm2) << name;
  EXPECT_EQ(a.merging.mergeSteps, b.merging.mergeSteps) << name;
  EXPECT_EQ(a.merging.reusableAccelerators, b.merging.reusableAccelerators)
      << name;
}

TEST(ParallelEvalTest, ParallelEvaluateAllMatchesSequentialBitExact) {
  // All 28 workloads: jobs=1 is the sequential reference; jobs=4 must
  // reproduce every report field and every output byte.
  std::vector<WorkloadEvaluation> sequential = evaluateAll(0.25, 1);
  std::vector<WorkloadEvaluation> parallel = evaluateAll(0.25, 4);
  ASSERT_EQ(sequential.size(), workloads::all().size());
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].name, parallel[i].name);
    EXPECT_EQ(sequential[i].suite, parallel[i].suite);
    expectReportsIdentical(sequential[i].report, parallel[i].report,
                           sequential[i].name);
  }
  EXPECT_EQ(formatEvaluationTable(sequential), formatEvaluationTable(parallel));
}

TEST(ParallelEvalTest, ConcurrentExploreOnSharedFrameworkIsDeterministic) {
  // Budget sweeps on one Framework race on the model's generate cache —
  // exactly the access pattern the mutex guards.
  Framework framework(workloads::build("3mm"));
  const std::vector<double> budgets = {0.10, 0.15, 0.20, 0.25,
                                       0.30, 0.35, 0.40, 0.45};

  std::vector<std::vector<select::Solution>> sequential;
  for (double budget : budgets) {
    sequential.push_back(framework.explore(budget));
  }

  ThreadPool pool(4);
  std::vector<std::vector<select::Solution>> parallel = parallelIndexMap(
      pool, budgets.size(),
      [&](size_t i) { return framework.explore(budgets[i]); });

  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < budgets.size(); ++i) {
    ASSERT_EQ(sequential[i].size(), parallel[i].size()) << budgets[i];
    for (size_t j = 0; j < sequential[i].size(); ++j) {
      EXPECT_EQ(sequential[i][j].areaUm2, parallel[i][j].areaUm2);
      EXPECT_EQ(sequential[i][j].accelCycles, parallel[i][j].accelCycles);
      EXPECT_EQ(sequential[i][j].cpuCycles, parallel[i][j].cpuCycles);
      EXPECT_EQ(sequential[i][j].accelerators.size(),
                parallel[i][j].accelerators.size());
    }
  }
}

TEST(ParallelEvalTest, ConcurrentEvaluateOnSharedFrameworkIsDeterministic) {
  Framework framework(workloads::build("fft"));
  EvaluationReport seqSmall = framework.evaluate(0.25);
  EvaluationReport seqLarge = framework.evaluate(0.65);

  // Hammer both budgets from several threads at once.
  ThreadPool pool(4);
  std::vector<EvaluationReport> reports =
      parallelIndexMap(pool, 8, [&](size_t i) {
        return framework.evaluate(i % 2 == 0 ? 0.25 : 0.65);
      });
  for (size_t i = 0; i < reports.size(); ++i) {
    expectReportsIdentical(reports[i], i % 2 == 0 ? seqSmall : seqLarge,
                           "fft");
  }
}

TEST(ParallelEvalTest, WarmedCacheDoesNotChangeResults) {
  Framework cold(workloads::build("atax"));
  Framework warm(workloads::build("atax"));
  warm.model().warmGenerateCache();
  expectReportsIdentical(cold.evaluate(0.25), warm.evaluate(0.25), "atax");
}

TEST(ParallelEvalTest, HighJobCountsMatchColdAndWarmWithCacheDir) {
  // Oversubscribed pools (jobs far above the core count) and the persistent
  // model cache, cold then warm, must all reproduce the jobs=1 cold run
  // byte-for-byte. Separate cache dirs per jobs count keep the cold runs
  // genuinely cold.
  namespace fs = std::filesystem;
  const std::vector<std::string> names = {"atax", "bicg", "mvt", "doitgen"};
  std::vector<WorkloadEvaluation> reference =
      evaluateWorkloads(names, 0.25, 1);
  std::string referenceTable = formatEvaluationTable(reference);

  for (unsigned jobs : {8u, 64u}) {
    fs::path dir = fs::temp_directory_path() /
                   ("cayman_jobs_cache_" + std::to_string(jobs));
    fs::remove_all(dir);
    fs::create_directories(dir);
    FrameworkOptions options;
    options.cacheDir = dir.string();

    std::vector<WorkloadEvaluation> cold =
        evaluateWorkloads(names, 0.25, jobs, options);
    EXPECT_EQ(formatEvaluationTable(cold), referenceTable)
        << "cold jobs=" << jobs;
    size_t snapshots = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().extension() == ".cayc") ++snapshots;
    }
    EXPECT_EQ(snapshots, names.size()) << "jobs=" << jobs;

    std::vector<WorkloadEvaluation> warm =
        evaluateWorkloads(names, 0.25, jobs, options);
    EXPECT_EQ(formatEvaluationTable(warm), referenceTable)
        << "warm jobs=" << jobs;
    for (const WorkloadEvaluation& evaluation : warm) {
      EXPECT_GE(evaluation.cacheStats.diskHits, 1u) << evaluation.name;
    }
    fs::remove_all(dir);
  }
}

TEST(ParallelEvalTest, EvaluateWorkloadsHonorsNameOrder) {
  std::vector<std::string> names = {"mvt", "atax", "3mm"};
  std::vector<WorkloadEvaluation> evaluations =
      evaluateWorkloads(names, 0.25, 3);
  ASSERT_EQ(evaluations.size(), names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(evaluations[i].name, names[i]);
  }
}

}  // namespace
}  // namespace cayman
