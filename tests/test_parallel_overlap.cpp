// The ctest-enforced overlap guard: two workloads carrying injected 50 ms
// generate stalls must evaluate in well under the serial sum once two pool
// workers are available — proving the stalls (and therefore independent
// cold generations) actually overlap — while the rendered table stays
// byte-identical. The stalls are sleeps, so the guard holds even on a
// single hardware core; compute time is noise next to the injected delay.
//
// This binary must stay order-sensitive: the process-wide shared pool never
// shrinks, so the jobs=1 run has to happen before anything grows the pool.
// Keep it a single test.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "accel/model.h"
#include "cayman/driver.h"

namespace cayman {
namespace {

TEST(ParallelOverlapTest, InjectedStallsOverlapAcrossWorkloads) {
  setenv("CAYMAN_INJECT_SLOW", "atax:generate:50000,bicg:generate:50000", 1);
  const std::vector<std::string> names = {"atax", "bicg"};

  auto timedRun = [&names](unsigned jobs) {
    auto start = std::chrono::steady_clock::now();
    std::vector<WorkloadEvaluation> evaluations =
        evaluateWorkloads(names, 0.25, jobs);
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return std::make_pair(seconds, formatEvaluationTable(evaluations));
  };

  // jobs=1 first: the shared pool starts at one worker and never shrinks,
  // so this run is genuinely serial.
  auto [serialSeconds, serialTable] = timedRun(1);

  accel::resetColdGenerationInflightPeak();
  auto [parallelSeconds, parallelTable] = timedRun(2);
  unsetenv("CAYMAN_INJECT_SLOW");

  // Determinism: the table is byte-identical whatever the schedule.
  EXPECT_EQ(parallelTable, serialTable);

  // The stalls overlapped: two cold generations were in flight at once ...
  EXPECT_GE(accel::coldGenerationInflightPeak(), 2);

  // ... and the wall clock proves it. 0.6 leaves 10% of the serial time as
  // scheduling slack over the perfect-overlap ratio of ~0.5.
  EXPECT_LE(parallelSeconds, 0.6 * serialSeconds)
      << "jobs=2 took " << parallelSeconds << "s vs jobs=1 "
      << serialSeconds << "s";
}

}  // namespace
}  // namespace cayman
