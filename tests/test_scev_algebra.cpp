// Affine (SCEV-lite) algebra tests: linear-form construction through adds,
// subs, scales, shifts, extensions, and deep GEP chains.
#include <gtest/gtest.h>

#include "analysis/scev.h"
#include "ir/verifier.h"
#include "workloads/kernel_builder.h"

namespace cayman::analysis {
namespace {

using workloads::KernelBuilder;

/// Builds a single loop and hands the body builder to `emit`, which returns
/// the integer value whose affine form the test inspects.
struct LoopFixture {
  LoopFixture() : module(std::make_unique<ir::Module>("scev")),
                  kb(module.get()) {
    array = module->addGlobal("a", ir::Type::f64(), 4096);
    kb.beginFunction("main", ir::Type::voidTy(), {{ir::Type::i64(), "n"}});
    iv = kb.beginLoop(0, 64, "i");
  }

  /// Finishes construction and analyzes `value`.
  Affine analyze(ir::Value* value) {
    // Keep the value alive through a store so DCE-ish checks don't matter.
    kb.storeAt(array, kb.ir().and_(value, kb.ir().i64(4095)), kb.ir().f64(1));
    kb.endLoop();
    kb.endFunction();
    ir::verifyOrThrow(*module);
    fa = std::make_unique<FunctionAnalyses>(*module->entryFunction());
    scev = std::make_unique<ScalarEvolution>(*module->entryFunction(), *fa);
    loop = fa->loops.topLevelLoops()[0];
    return scev->analyze(value);
  }

  std::unique_ptr<ir::Module> module;
  KernelBuilder kb;
  ir::GlobalArray* array = nullptr;
  ir::Value* iv = nullptr;
  std::unique_ptr<FunctionAnalyses> fa;
  std::unique_ptr<ScalarEvolution> scev;
  const Loop* loop = nullptr;
};

TEST(AffineTest, ConstantsFold) {
  LoopFixture fx;
  ir::Value* v = fx.kb.ir().add(fx.kb.ir().i64(10),
                                fx.kb.ir().mul(fx.kb.ir().i64(3),
                                               fx.kb.ir().i64(4)));
  Affine form = fx.analyze(v);
  ASSERT_TRUE(form.valid);
  EXPECT_EQ(form.constant, 22);
  EXPECT_TRUE(form.terms.empty());
}

TEST(AffineTest, LinearInIv) {
  LoopFixture fx;
  // 5*i + 7
  ir::Value* v = fx.kb.ir().add(fx.kb.ir().mul(fx.iv, fx.kb.ir().i64(5)),
                                fx.kb.ir().i64(7));
  Affine form = fx.analyze(v);
  ASSERT_TRUE(form.valid);
  EXPECT_EQ(form.constant, 7);
  EXPECT_EQ(form.coeffForLoop(fx.loop), 5);
}

TEST(AffineTest, SubtractionAndCancellation) {
  LoopFixture fx;
  // (3i + 4) - (3i + 1) = 3 : IV terms cancel exactly.
  ir::Value* a = fx.kb.ir().add(fx.kb.ir().mul(fx.iv, fx.kb.ir().i64(3)),
                                fx.kb.ir().i64(4));
  ir::Value* b = fx.kb.ir().add(fx.kb.ir().mul(fx.iv, fx.kb.ir().i64(3)),
                                fx.kb.ir().i64(1));
  Affine form = fx.analyze(fx.kb.ir().sub(a, b));
  ASSERT_TRUE(form.valid);
  EXPECT_EQ(form.constant, 3);
  EXPECT_TRUE(form.terms.empty());
}

TEST(AffineTest, ShiftIsScale) {
  LoopFixture fx;
  ir::Value* v = fx.kb.ir().shl(fx.iv, fx.kb.ir().i64(3));  // i * 8
  Affine form = fx.analyze(v);
  ASSERT_TRUE(form.valid);
  EXPECT_EQ(form.coeffForLoop(fx.loop), 8);
}

TEST(AffineTest, ArgumentIsSymbol) {
  LoopFixture fx;
  ir::Function* f = fx.module->functionByName("main");
  ir::Value* v = fx.kb.ir().add(fx.iv, f->argument(0));  // i + n
  Affine form = fx.analyze(v);
  ASSERT_TRUE(form.valid);
  EXPECT_EQ(form.coeffForLoop(fx.loop), 1);
  EXPECT_EQ(form.terms.count(f->argument(0)), 1u);
  // n is invariant in the loop -> still a stream.
  EXPECT_TRUE(form.isStreamIn(fx.loop));
}

TEST(AffineTest, ProductOfTwoVariablesIsOpaque) {
  LoopFixture fx;
  ir::Function* f = fx.module->functionByName("main");
  ir::Value* v = fx.kb.ir().mul(fx.iv, f->argument(0));  // i * n: not affine
  Affine form = fx.analyze(v);
  // Falls back to an opaque symbol (the mul itself), still "valid" as a
  // 1-term linear form but with the product as the symbol.
  ASSERT_TRUE(form.valid);
  EXPECT_EQ(form.terms.size(), 1u);
  EXPECT_EQ(form.coeffForLoop(fx.loop), 0);
  // The mul is computed inside the loop -> not a stream.
  EXPECT_FALSE(form.isStreamIn(fx.loop));
}

TEST(AffineTest, LoadResultIsLoopVaryingSymbol) {
  LoopFixture fx;
  ir::GlobalArray* idx = fx.module->addGlobal("idx", ir::Type::i64(), 64);
  ir::Value* loaded = fx.kb.loadAt(idx, fx.iv);
  Affine form = fx.analyze(loaded);
  ASSERT_TRUE(form.valid);
  EXPECT_FALSE(form.isStreamIn(fx.loop));  // indirect index
}

TEST(AddressTest, ChainedGepsAccumulate) {
  auto module = std::make_unique<ir::Module>("geps");
  auto* a = module->addGlobal("a", ir::Type::f64(), 1024);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 16, "i");
  // &a[0] + i*8 elems, then + 3 elems: address = base + 64i + 24 bytes.
  ir::Value* p1 = kb.ir().gep(a, kb.ir().mul(i, kb.ir().i64(8)),
                              ir::Type::f64());
  ir::Value* p2 = kb.ir().gep(p1, kb.ir().i64(3), ir::Type::f64());
  ir::Value* v = kb.ir().load(ir::Type::f64(), p2);
  kb.storeAt(a, i, v);
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  const ir::Function* f = module->entryFunction();
  FunctionAnalyses fa(*f);
  ScalarEvolution scev(*f, fa);
  const ir::Instruction* load = nullptr;
  for (const auto& block : f->blocks()) {
    for (const auto& inst : block->instructions()) {
      if (inst->opcode() == ir::Opcode::Load) load = inst.get();
    }
  }
  ASSERT_NE(load, nullptr);
  AddressInfo info = scev.addressOf(load);
  ASSERT_TRUE(info.valid);
  EXPECT_EQ(info.base, a);
  EXPECT_EQ(info.offset.constant, 24);
  EXPECT_EQ(info.offset.coeffForLoop(fa.loops.topLevelLoops()[0]), 64);
}

TEST(AddressTest, NegativeStrides) {
  auto module = std::make_unique<ir::Module>("revwalk");
  auto* a = module->addGlobal("a", ir::Type::f64(), 64);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 64, "i");
  ir::Value* rev = kb.ir().sub(kb.ir().i64(63), i, "rev");
  ir::Value* v = kb.loadAt(a, rev);
  kb.storeAt(a, rev, kb.ir().fmul(v, kb.ir().f64(2.0)));
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  const ir::Function* f = module->entryFunction();
  FunctionAnalyses fa(*f);
  ScalarEvolution scev(*f, fa);
  const ir::Instruction* load = nullptr;
  for (const auto& block : f->blocks()) {
    for (const auto& inst : block->instructions()) {
      if (inst->opcode() == ir::Opcode::Load) load = inst.get();
    }
  }
  AddressInfo info = scev.addressOf(load);
  ASSERT_TRUE(info.valid);
  EXPECT_EQ(info.offset.coeffForLoop(fa.loops.topLevelLoops()[0]), -8);
  EXPECT_EQ(info.offset.constant, 63 * 8);
  EXPECT_TRUE(info.offset.isStreamIn(fa.loops.topLevelLoops()[0]));
}

TEST(IvTest, NegativeStepInduction) {
  auto module = std::make_unique<ir::Module>("countdown");
  auto* out = module->addGlobal("out", ir::Type::i64(), 64);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  // Hand-rolled countdown: for (i = 63; i > 0; i -= 2).
  ir::Function* f = module->functionByName("main");
  ir::BasicBlock* entry = kb.ir().insertBlock();
  ir::BasicBlock* header = f->addBlock("header");
  ir::BasicBlock* body = f->addBlock("body");
  ir::BasicBlock* latch = f->addBlock("latch");
  ir::BasicBlock* exit = f->addBlock("exit");
  kb.ir().br(header);
  kb.ir().setInsertPoint(header);
  ir::Instruction* iv = kb.ir().phi(ir::Type::i64(), "i");
  iv->addIncoming(kb.ir().i64(63), entry);
  kb.ir().condBr(kb.ir().icmp(ir::CmpPred::GT, iv, kb.ir().i64(0)), body,
                 exit);
  kb.ir().setInsertPoint(body);
  kb.storeAt(out, iv, iv);
  kb.ir().br(latch);
  kb.ir().setInsertPoint(latch);
  ir::Value* next = kb.ir().sub(iv, kb.ir().i64(2), "i.next");
  kb.ir().br(header);
  iv->addIncoming(next, latch);
  kb.ir().setInsertPoint(exit);
  kb.ir().ret();
  ir::verifyOrThrow(*module);

  const ir::Function* fn = module->entryFunction();
  FunctionAnalyses fa(*fn);
  ScalarEvolution scev(*fn, fa);
  const Loop* loop = fa.loops.topLevelLoops()[0];
  auto ivs = scev.inductionVars(loop);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0]->step, -2);
  TripCount trip = scev.tripCount(loop);
  ASSERT_TRUE(trip.known);
  EXPECT_EQ(trip.value, 32u);  // 63, 61, ..., 1
}

}  // namespace
}  // namespace cayman::analysis
