// Differential tests pinning SelectMode::Frontier to the
// SelectMode::Reference oracle: bit-exact front equivalence over all 28
// registered workloads across budgets and alphas, plus seeded
// randomized-front combine equivalence. The frontier DP is only allowed to
// be faster — never different.
#include <gtest/gtest.h>

#include "cayman/framework.h"
#include "workloads/workloads.h"

namespace cayman::select {
namespace {

constexpr double kRatio = 1.25;

void expectBitExact(const Solution& a, const Solution& b,
                    const std::string& context) {
  EXPECT_EQ(a.areaUm2, b.areaUm2) << context;
  EXPECT_EQ(a.accelCycles, b.accelCycles) << context;
  EXPECT_EQ(a.cpuCycles, b.cpuCycles) << context;
  ASSERT_EQ(a.accelerators.size(), b.accelerators.size()) << context;
  for (size_t k = 0; k < a.accelerators.size(); ++k) {
    EXPECT_TRUE(a.accelerators[k] == b.accelerators[k])
        << context << " accelerator " << k;
  }
}

void expectSameStats(const CandidateSelector::Stats& a,
                     const CandidateSelector::Stats& b,
                     const std::string& context) {
  EXPECT_EQ(a.regionsVisited, b.regionsVisited) << context;
  EXPECT_EQ(a.regionsPruned, b.regionsPruned) << context;
  EXPECT_EQ(a.configsGenerated, b.configsGenerated) << context;
  EXPECT_EQ(a.combinePairs, b.combinePairs) << context;
  EXPECT_EQ(a.singleConfigSolutions, b.singleConfigSolutions) << context;
  EXPECT_EQ(a.frontPeak, b.frontPeak) << context;
}

// Every workload, several budgets, several alphas: the full Algorithm 1
// output (front, solution contents, stats) must agree bit for bit.
TEST(SelectDifferentialTest, FrontierMatchesReferenceOnAllWorkloads) {
  for (const workloads::WorkloadInfo& info : workloads::all()) {
    Framework fw(info.build());
    for (double budgetRatio : {0.05, 0.25, 0.65}) {
      for (double alpha : {1.02, 1.12, 1.5}) {
        SelectorParams params;
        params.areaBudgetUm2 = fw.budgetUm2(budgetRatio);
        params.alpha = alpha;
        params.clockRatio = fw.options().clockRatio();
        std::string context = info.name + " budget " +
                              std::to_string(budgetRatio) + " alpha " +
                              std::to_string(alpha);

        params.mode = SelectMode::Frontier;
        CandidateSelector frontier(fw.model(), params);
        CandidateSelector::Stats frontierStats;
        std::vector<Solution> frontierFront = frontier.select(frontierStats);

        params.mode = SelectMode::Reference;
        CandidateSelector reference(fw.model(), params);
        CandidateSelector::Stats referenceStats;
        std::vector<Solution> referenceFront =
            reference.select(referenceStats);

        ASSERT_EQ(frontierFront.size(), referenceFront.size()) << context;
        for (size_t i = 0; i < frontierFront.size(); ++i) {
          expectBitExact(frontierFront[i], referenceFront[i],
                         context + " index " + std::to_string(i));
        }
        expectSameStats(frontierStats, referenceStats, context);

        params.mode = SelectMode::Frontier;
        Solution frontierBest =
            CandidateSelector(fw.model(), params).best(frontierStats);
        params.mode = SelectMode::Reference;
        Solution referenceBest =
            CandidateSelector(fw.model(), params).best(referenceStats);
        expectBitExact(frontierBest, referenceBest, context + " best");
      }
    }
  }
}

// --------------------------------------------------------------------------
// Randomized-front ⊗ equivalence (seeded LCG, no wall-clock or libc rand).
// --------------------------------------------------------------------------

struct Lcg {
  uint64_t state;
  explicit Lcg(uint64_t seed) : state(seed) {}
  uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * static_cast<double>(next() % 100000) / 100000.0;
  }
};

std::vector<accel::AcceleratorConfig> randomConfigs(Lcg& rng, size_t count) {
  std::vector<accel::AcceleratorConfig> configs(count);
  for (accel::AcceleratorConfig& config : configs) {
    config.areaUm2 = rng.uniform(1.0, 500.0);
    config.cpuCycles = rng.uniform(0.0, 2000.0);
    config.cycles = rng.uniform(0.0, 1500.0);
  }
  return configs;
}

/// Builds the two representations of the same front from shared configs:
/// pareto over single-config solutions, with some adjacent pairs pre-merged
/// so multi-config solutions flow through the combine too.
struct TwinFronts {
  TwinFronts(const std::vector<accel::AcceleratorConfig>& configs,
             SolutionArena& arena) {
    std::vector<Solution> rawSolutions{Solution{}};
    std::vector<FrontierEntry> rawEntries{FrontierEntry{}};
    for (size_t i = 0; i < configs.size(); ++i) {
      Solution s = Solution::fromConfig(configs[i]);
      FrontierEntry e = entryFromConfig(configs[i], kRatio, arena);
      if (i + 1 < configs.size() && i % 3 == 0) {
        s = Solution::merge(s, Solution::fromConfig(configs[i + 1]));
        e = mergeEntries(e, entryFromConfig(configs[i + 1], kRatio, arena),
                         kRatio, arena);
        ++i;
      }
      rawSolutions.push_back(std::move(s));
      rawEntries.push_back(e);
    }
    solutions = pareto(std::move(rawSolutions), kRatio);
    entries = pareto(std::move(rawEntries));
  }

  std::vector<Solution> solutions;
  std::vector<FrontierEntry> entries;
};

TEST(SelectDifferentialTest, RandomizedCombineEquivalence) {
  for (uint64_t seed : {2ULL, 13ULL, 101ULL, 7777ULL, 123456ULL}) {
    Lcg rng(seed);
    std::vector<accel::AcceleratorConfig> configsA = randomConfigs(rng, 60);
    std::vector<accel::AcceleratorConfig> configsB = randomConfigs(rng, 60);
    SolutionArena arena;
    TwinFronts a(configsA, arena);
    TwinFronts b(configsB, arena);
    ASSERT_EQ(a.solutions.size(), a.entries.size());
    ASSERT_EQ(b.solutions.size(), b.entries.size());

    for (double budget : {150.0, 600.0, 1e9}) {
      uint64_t solutionPairs = 0;
      uint64_t entryPairs = 0;
      std::vector<Solution> sCombined = combine(
          a.solutions, b.solutions, budget, kRatio, &solutionPairs);
      std::vector<FrontierEntry> eCombined = combine(
          a.entries, b.entries, budget, kRatio, arena, &entryPairs);
      std::string context = "seed " + std::to_string(seed) + " budget " +
                            std::to_string(budget);
      // The early budget break-out must admit exactly the pairs the
      // reference's per-pair filter admits.
      EXPECT_EQ(solutionPairs, entryPairs) << context;
      ASSERT_EQ(sCombined.size(), eCombined.size()) << context;
      for (size_t i = 0; i < sCombined.size(); ++i) {
        Solution materialized = materialize(eCombined[i], arena);
        EXPECT_EQ(sCombined[i].areaUm2, eCombined[i].areaUm2) << context;
        EXPECT_EQ(sCombined[i].savedCycles(kRatio), eCombined[i].savedCycles)
            << context;
        expectBitExact(sCombined[i], materialized,
                       context + " index " + std::to_string(i));
      }
    }
  }
}

}  // namespace
}  // namespace cayman::select
