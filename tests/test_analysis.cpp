// Unit tests for the analysis substrate: CFG, dominators, loops, regions
// (wPST), scalar evolution, and memory dependence analysis.
#include <gtest/gtest.h>

#include "analysis/memdep.h"
#include "analysis/regions.h"
#include "analysis/scev.h"
#include "ir/verifier.h"
#include "workloads/kernel_builder.h"

namespace cayman::analysis {
namespace {

using workloads::KernelBuilder;

/// y[i] = k * x[i] + b over i in [0, 64).
std::unique_ptr<ir::Module> buildLinear() {
  auto module = std::make_unique<ir::Module>("linear");
  auto* x = module->addGlobal("x", ir::Type::f64(), 64);
  auto* y = module->addGlobal("y", ir::Type::f64(), 64);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 64, "i");
  ir::Value* xi = kb.loadAt(x, i);
  ir::Value* scaled = kb.ir().fmul(xi, kb.ir().f64(2.0));
  ir::Value* shifted = kb.ir().fadd(scaled, kb.ir().f64(1.0));
  kb.storeAt(y, i, shifted);
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);
  return module;
}

/// z[i] += A[i*M+j] * B[i*M+j] — two nested loops with a carried dep on j.
std::unique_ptr<ir::Module> buildDotRows() {
  auto module = std::make_unique<ir::Module>("dotrows");
  auto* a = module->addGlobal("A", ir::Type::f64(), 16 * 8);
  auto* bArr = module->addGlobal("B", ir::Type::f64(), 16 * 8);
  auto* z = module->addGlobal("z", ir::Type::f64(), 16);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 16, "i");
  ir::Value* j = kb.beginLoop(0, 8, "j");
  ir::Value* idx = kb.idx2(i, j, 8);
  ir::Value* av = kb.loadAt(a, idx);
  ir::Value* bv = kb.loadAt(bArr, idx);
  ir::Value* prod = kb.ir().fmul(av, bv);
  ir::Value* zv = kb.loadAt(z, i);
  ir::Value* sum = kb.ir().fadd(zv, prod);
  kb.storeAt(z, i, sum);
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);
  return module;
}

/// Loop with an if/else diamond in the body.
std::unique_ptr<ir::Module> buildBranchy() {
  auto module = std::make_unique<ir::Module>("branchy");
  auto* v = module->addGlobal("v", ir::Type::i64(), 32);
  auto* out = module->addGlobal("out", ir::Type::i64(), 32);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 32, "i");
  ir::Value* value = kb.loadAt(v, i);
  ir::Value* isNeg = kb.ir().icmp(ir::CmpPred::LT, value, kb.ir().i64(0));
  kb.beginIf(isNeg, /*withElse=*/true);
  kb.storeAt(out, i, kb.ir().sub(kb.ir().i64(0), value));
  kb.beginElse();
  kb.storeAt(out, i, value);
  kb.endIf();
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);
  return module;
}

// --------------------------------------------------------------------------
// CFG and dominators
// --------------------------------------------------------------------------

TEST(CfgTest, RpoStartsAtEntryAndCoversAllBlocks) {
  auto module = buildLinear();
  const ir::Function* f = module->entryFunction();
  Cfg cfg(*f);
  EXPECT_EQ(cfg.rpo().front(), f->entry());
  EXPECT_EQ(cfg.rpo().size(), f->numBlocks());
  EXPECT_EQ(cfg.rpoIndex(f->entry()), 0);
}

TEST(CfgTest, PredecessorsAreInverted) {
  auto module = buildLinear();
  const ir::Function* f = module->entryFunction();
  Cfg cfg(*f);
  const ir::BasicBlock* header = f->blockByName("i.header");
  ASSERT_NE(header, nullptr);
  EXPECT_EQ(cfg.predecessors(header).size(), 2u);  // entry + latch
  EXPECT_EQ(cfg.exitBlocks().size(), 1u);
}

TEST(DomTest, HeaderDominatesBodyAndExit) {
  auto module = buildLinear();
  const ir::Function* f = module->entryFunction();
  Cfg cfg(*f);
  DominatorTree dom = DominatorTree::dominators(cfg);
  const ir::BasicBlock* header = f->blockByName("i.header");
  const ir::BasicBlock* body = f->blockByName("i.body");
  const ir::BasicBlock* exit = f->blockByName("i.exit");
  EXPECT_TRUE(dom.dominates(f->entry(), header));
  EXPECT_TRUE(dom.dominates(header, body));
  EXPECT_TRUE(dom.dominates(header, exit));
  EXPECT_FALSE(dom.dominates(body, exit));
  EXPECT_TRUE(dom.dominates(header, header));
  EXPECT_FALSE(dom.strictlyDominates(header, header));
}

TEST(DomTest, PostDominanceOfJoin) {
  auto module = buildBranchy();
  const ir::Function* f = module->entryFunction();
  Cfg cfg(*f);
  DominatorTree postDom = DominatorTree::postDominators(cfg);
  const ir::BasicBlock* branch = f->blockByName("i.body");
  const ir::BasicBlock* join = f->blockByName("if.join");
  ASSERT_NE(branch, nullptr);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(postDom.idom(branch), join);
  EXPECT_TRUE(postDom.dominates(join, branch));
}

// --------------------------------------------------------------------------
// Loops
// --------------------------------------------------------------------------

TEST(LoopTest, SingleLoopCanonicalForm) {
  auto module = buildLinear();
  const ir::Function* f = module->entryFunction();
  FunctionAnalyses fa(*f);
  ASSERT_EQ(fa.loops.loops().size(), 1u);
  const Loop* loop = fa.loops.loops()[0].get();
  EXPECT_EQ(loop->header(), f->blockByName("i.header"));
  EXPECT_EQ(loop->preheader(), f->entry());
  EXPECT_EQ(loop->latch(), f->blockByName("i.latch"));
  ASSERT_EQ(loop->exitBlocks().size(), 1u);
  EXPECT_EQ(loop->exitBlocks()[0], f->blockByName("i.exit"));
  EXPECT_EQ(loop->depth(), 1u);
  EXPECT_TRUE(loop->isInnermost());
}

TEST(LoopTest, NestingDepths) {
  auto module = buildDotRows();
  const ir::Function* f = module->entryFunction();
  FunctionAnalyses fa(*f);
  ASSERT_EQ(fa.loops.loops().size(), 2u);
  ASSERT_EQ(fa.loops.topLevelLoops().size(), 1u);
  const Loop* outer = fa.loops.topLevelLoops()[0];
  ASSERT_EQ(outer->subLoops().size(), 1u);
  const Loop* inner = outer->subLoops()[0];
  EXPECT_EQ(outer->depth(), 1u);
  EXPECT_EQ(inner->depth(), 2u);
  EXPECT_TRUE(outer->contains(inner));
  EXPECT_FALSE(inner->contains(outer));
  EXPECT_EQ(fa.loops.loopFor(f->blockByName("j.body")), inner);
  EXPECT_EQ(fa.loops.loopFor(f->blockByName("i.body")), inner->parent());
  EXPECT_EQ(fa.loops.loopDepth(f->blockByName("j.body")), 2u);
  EXPECT_EQ(fa.loops.loopDepth(f->entry()), 0u);
}

// --------------------------------------------------------------------------
// Regions / wPST
// --------------------------------------------------------------------------

TEST(RegionTest, WPstShapeForNestedLoops) {
  auto module = buildDotRows();
  WPst wpst(*module);
  const Region* root = wpst.root();
  EXPECT_EQ(root->kind(), RegionKind::Root);
  ASSERT_EQ(root->children().size(), 1u);  // one function
  const Region* funcRegion = root->children()[0].get();
  EXPECT_EQ(funcRegion->kind(), RegionKind::Function);

  // Function scope: entry bb, outer loop region, exit bb.
  int loopRegions = 0;
  funcRegion->walk([&](const Region& r) {
    if (r.kind() == RegionKind::Loop) ++loopRegions;
  });
  EXPECT_EQ(loopRegions, 2);

  const ir::Function* f = module->entryFunction();
  const FunctionAnalyses& fa = wpst.analyses(f);
  const Loop* outer = fa.loops.topLevelLoops()[0];
  const Region* outerRegion = wpst.loopRegion(outer);
  ASSERT_NE(outerRegion, nullptr);
  EXPECT_EQ(outerRegion->kind(), RegionKind::Loop);
  EXPECT_EQ(outerRegion->parent(), funcRegion);
  const Region* innerRegion = wpst.loopRegion(outer->subLoops()[0]);
  ASSERT_NE(innerRegion, nullptr);
  EXPECT_EQ(innerRegion->parent(), outerRegion);
  EXPECT_TRUE(outerRegion->isCandidate());
}

TEST(RegionTest, IfDiamondBecomesCtrlFlowRegion) {
  auto module = buildBranchy();
  WPst wpst(*module);
  int ifRegions = 0;
  const Region* ifRegion = nullptr;
  wpst.root()->walk([&](const Region& r) {
    if (r.kind() == RegionKind::If) {
      ++ifRegions;
      ifRegion = &r;
    }
  });
  ASSERT_EQ(ifRegions, 1);
  // The if region holds the branch bb plus both arms.
  EXPECT_GE(ifRegion->blocks().size(), 3u);
  EXPECT_TRUE(ifRegion->isCandidate());
  // It nests inside the loop region.
  EXPECT_EQ(ifRegion->parent()->kind(), RegionKind::Loop);
}

TEST(RegionTest, BbRegionLookupAndAnchors) {
  auto module = buildLinear();
  WPst wpst(*module);
  const ir::Function* f = module->entryFunction();
  const ir::BasicBlock* body = f->blockByName("i.body");
  const Region* bb = wpst.bbRegion(body);
  ASSERT_NE(bb, nullptr);
  EXPECT_EQ(bb->kind(), RegionKind::Bb);
  EXPECT_EQ(bb->profileAnchor(), body);
  EXPECT_EQ(bb->parent()->kind(), RegionKind::Loop);
  EXPECT_EQ(bb->parent()->profileAnchor(), f->entry());  // preheader
}

TEST(RegionTest, RegionsWithCallsAreNotCandidates) {
  auto module = std::make_unique<ir::Module>("calls");
  KernelBuilder kb(module.get());
  kb.beginFunction("callee");
  kb.endFunction();
  kb.beginFunction("main");
  kb.beginLoop(0, 8, "i");
  kb.ir().call(module->functionByName("callee"), {});
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  WPst wpst(*module);
  const ir::Function* main = module->functionByName("main");
  const FunctionAnalyses& fa = wpst.analyses(main);
  const Region* loopRegion = wpst.loopRegion(fa.loops.topLevelLoops()[0]);
  ASSERT_NE(loopRegion, nullptr);
  EXPECT_TRUE(loopRegion->containsCall());
  EXPECT_FALSE(loopRegion->isCandidate());
}

TEST(RegionTest, IdsAreDenseAndStable) {
  auto module = buildDotRows();
  WPst wpst(*module);
  const auto& all = wpst.allRegions();
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i]->id(), static_cast<int>(i));
    EXPECT_EQ(wpst.regionById(static_cast<int>(i)), all[i]);
  }
}

// --------------------------------------------------------------------------
// Scalar evolution
// --------------------------------------------------------------------------

TEST(ScevTest, RecognizesInductionVariable) {
  auto module = buildLinear();
  const ir::Function* f = module->entryFunction();
  FunctionAnalyses fa(*f);
  ScalarEvolution scev(*f, fa);
  const Loop* loop = fa.loops.loops()[0].get();
  auto ivs = scev.inductionVars(loop);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0]->step, 1);
  ASSERT_TRUE(ivs[0]->init.has_value());
  EXPECT_EQ(*ivs[0]->init, 0);
}

TEST(ScevTest, StaticTripCount) {
  auto module = buildDotRows();
  const ir::Function* f = module->entryFunction();
  FunctionAnalyses fa(*f);
  ScalarEvolution scev(*f, fa);
  const Loop* outer = fa.loops.topLevelLoops()[0];
  const Loop* inner = outer->subLoops()[0];
  TripCount outerTrip = scev.tripCount(outer);
  TripCount innerTrip = scev.tripCount(inner);
  ASSERT_TRUE(outerTrip.known);
  EXPECT_EQ(outerTrip.value, 16u);
  ASSERT_TRUE(innerTrip.known);
  EXPECT_EQ(innerTrip.value, 8u);
}

TEST(ScevTest, AffineAddressOfNestedAccess) {
  auto module = buildDotRows();
  const ir::Function* f = module->entryFunction();
  FunctionAnalyses fa(*f);
  ScalarEvolution scev(*f, fa);

  // Find the load from A.
  const ir::Instruction* loadA = nullptr;
  for (const auto& block : f->blocks()) {
    for (const auto& inst : block->instructions()) {
      if (inst->opcode() != ir::Opcode::Load) continue;
      AddressInfo info = scev.addressOf(inst.get());
      if (info.valid && info.base->name() == "A") loadA = inst.get();
    }
  }
  ASSERT_NE(loadA, nullptr);

  AddressInfo info = scev.addressOf(loadA);
  ASSERT_TRUE(info.valid);
  const Loop* outer = fa.loops.topLevelLoops()[0];
  const Loop* inner = outer->subLoops()[0];
  // Byte strides: 8*8=64 for i, 8 for j.
  EXPECT_EQ(info.offset.coeffForLoop(outer), 64);
  EXPECT_EQ(info.offset.coeffForLoop(inner), 8);
  EXPECT_TRUE(info.offset.isStreamIn(inner));
  EXPECT_TRUE(info.offset.isStreamIn(outer));
}

TEST(ScevTest, TripCountDirectionsAndSteps) {
  auto module = std::make_unique<ir::Module>("steps");
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  kb.beginLoop(0, 10, "a", 3);  // 0,3,6,9 -> 4 iters
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);
  const ir::Function* f = module->entryFunction();
  FunctionAnalyses fa(*f);
  ScalarEvolution scev(*f, fa);
  TripCount trip = scev.tripCount(fa.loops.topLevelLoops()[0]);
  ASSERT_TRUE(trip.known);
  EXPECT_EQ(trip.value, 4u);
}

// --------------------------------------------------------------------------
// Memory dependence
// --------------------------------------------------------------------------

TEST(MemDepTest, ReductionCreatesInnerLoopDep) {
  auto module = buildDotRows();
  const ir::Function* f = module->entryFunction();
  FunctionAnalyses fa(*f);
  ScalarEvolution scev(*f, fa);
  MemoryAnalysis mem(*f, fa, scev);

  const Loop* outer = fa.loops.topLevelLoops()[0];
  const Loop* inner = outer->subLoops()[0];
  // z[i] += ...: the store/load to z repeat the same address every j
  // iteration -> inner-loop carried dep; i-loop has none.
  EXPECT_TRUE(mem.hasCarriedDep(inner));
  EXPECT_FALSE(mem.hasCarriedDep(outer));

  const auto& deps = mem.carriedDeps(inner);
  bool sawMemoryDep = false;
  for (const auto& dep : deps) {
    if (dep.kind == LoopCarriedDep::Kind::Memory) {
      sawMemoryDep = true;
      EXPECT_EQ(dep.distance, 1u);
      EXPECT_FALSE(dep.chain.empty());
    }
  }
  EXPECT_TRUE(sawMemoryDep);
}

TEST(MemDepTest, ElementwiseLoopHasNoCarriedDep) {
  auto module = buildLinear();
  const ir::Function* f = module->entryFunction();
  FunctionAnalyses fa(*f);
  ScalarEvolution scev(*f, fa);
  MemoryAnalysis mem(*f, fa, scev);
  EXPECT_FALSE(mem.hasCarriedDep(fa.loops.topLevelLoops()[0]));
}

TEST(MemDepTest, ShiftedStoreCreatesDistanceDep) {
  // out[i+1] = out[i] * 0.5 : carried dep with distance 1.
  auto module = std::make_unique<ir::Module>("shift");
  auto* out = module->addGlobal("out", ir::Type::f64(), 64);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 63, "i");
  ir::Value* cur = kb.loadAt(out, i);
  ir::Value* scaled = kb.ir().fmul(cur, kb.ir().f64(0.5));
  ir::Value* next = kb.ir().add(i, kb.ir().i64(1));
  kb.storeAt(out, next, scaled);
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  const ir::Function* f = module->entryFunction();
  FunctionAnalyses fa(*f);
  ScalarEvolution scev(*f, fa);
  MemoryAnalysis mem(*f, fa, scev);
  const Loop* loop = fa.loops.topLevelLoops()[0];
  const auto& deps = mem.carriedDeps(loop);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].kind, LoopCarriedDep::Kind::Memory);
  EXPECT_EQ(deps[0].distance, 1u);
}

TEST(MemDepTest, ScalarReductionDetected) {
  // acc += x[i] via a reduction phi (no memory round-trip).
  auto module = std::make_unique<ir::Module>("reduce");
  auto* x = module->addGlobal("x", ir::Type::f64(), 64);
  auto* out = module->addGlobal("out", ir::Type::f64(), 1);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 64, "i");
  ir::Instruction* acc =
      kb.reduction(ir::Type::f64(), kb.ir().f64(0.0), "acc");
  ir::Value* xi = kb.loadAt(x, i);
  ir::Value* sum = kb.ir().fadd(acc, xi, "acc.next");
  kb.setReductionNext(acc, sum);
  kb.endLoop();
  kb.storeAt(out, kb.ir().i64(0), kb.reductionResult(acc));
  kb.endFunction();
  ir::verifyOrThrow(*module);

  const ir::Function* f = module->entryFunction();
  FunctionAnalyses fa(*f);
  ScalarEvolution scev(*f, fa);
  MemoryAnalysis mem(*f, fa, scev);
  const Loop* loop = fa.loops.topLevelLoops()[0];
  const auto& deps = mem.carriedDeps(loop);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].kind, LoopCarriedDep::Kind::Scalar);
  // The chain must include the fadd.
  bool hasFAdd = false;
  for (const ir::Instruction* inst : deps[0].chain) {
    if (inst->opcode() == ir::Opcode::FAdd) hasFAdd = true;
  }
  EXPECT_TRUE(hasFAdd);
}

TEST(MemDepTest, StreamAndFootprint) {
  auto module = buildDotRows();
  const ir::Function* f = module->entryFunction();
  WPst wpst(*module);
  const FunctionAnalyses& fa = wpst.analyses(f);
  ScalarEvolution scev(*f, fa);
  MemoryAnalysis mem(*f, fa, scev);

  const Loop* outer = fa.loops.topLevelLoops()[0];
  const Loop* inner = outer->subLoops()[0];
  const Region* outerRegion = wpst.loopRegion(outer);
  const Region* innerRegion = wpst.loopRegion(inner);

  const ir::Instruction* loadA = nullptr;
  const ir::Instruction* loadZ = nullptr;
  for (const MemAccessInfo& info : mem.accesses()) {
    if (!info.addr.valid || info.isStore) continue;
    if (info.addr.base->name() == "A") loadA = info.inst;
    if (info.addr.base->name() == "z") loadZ = info.inst;
  }
  ASSERT_NE(loadA, nullptr);
  ASSERT_NE(loadZ, nullptr);

  EXPECT_TRUE(mem.isStream(loadA, inner));
  EXPECT_TRUE(mem.isStream(loadZ, inner));  // invariant = degenerate stream

  // Paper Fig. 2d: ld A footprint M in the inner loop; ld z footprint 1.
  auto fpA = mem.footprintElems(loadA, innerRegion, 1);
  auto fpZ = mem.footprintElems(loadZ, innerRegion, 1);
  ASSERT_TRUE(fpA.has_value());
  ASSERT_TRUE(fpZ.has_value());
  EXPECT_EQ(*fpA, 8u);
  EXPECT_EQ(*fpZ, 1u);

  // Over the whole nest: A touches 16*8 elements, z touches 16.
  auto fpAOuter = mem.footprintElems(loadA, outerRegion, 1);
  auto fpZOuter = mem.footprintElems(loadZ, outerRegion, 1);
  ASSERT_TRUE(fpAOuter.has_value());
  EXPECT_EQ(*fpAOuter, 128u);
  ASSERT_TRUE(fpZOuter.has_value());
  EXPECT_EQ(*fpZOuter, 16u);
}

TEST(MemDepTest, IndirectAccessHasUnknownFootprint) {
  // y[idx[i]] = x[i]: indirect store footprint unknown.
  auto module = std::make_unique<ir::Module>("indirect");
  auto* x = module->addGlobal("x", ir::Type::f64(), 64);
  auto* y = module->addGlobal("y", ir::Type::f64(), 64);
  auto* idx = module->addGlobal("idx", ir::Type::i64(), 64);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 64, "i");
  ir::Value* xi = kb.loadAt(x, i);
  ir::Value* target = kb.loadAt(idx, i);
  kb.storeAt(y, target, xi);
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  const ir::Function* f = module->entryFunction();
  WPst wpst(*module);
  const FunctionAnalyses& fa = wpst.analyses(f);
  ScalarEvolution scev(*f, fa);
  MemoryAnalysis mem(*f, fa, scev);
  const Loop* loop = fa.loops.topLevelLoops()[0];
  const Region* region = wpst.loopRegion(loop);

  const ir::Instruction* store = nullptr;
  for (const MemAccessInfo& info : mem.accesses()) {
    if (info.isStore) store = info.inst;
  }
  ASSERT_NE(store, nullptr);
  EXPECT_FALSE(mem.isStream(store, loop));
  EXPECT_FALSE(mem.footprintElems(store, region, 1).has_value());
}

}  // namespace
}  // namespace cayman::analysis
