// Edge-case tests for the SESE region builder and wPST: nested conditionals,
// if-inside-loop-inside-if shapes, multi-function applications, if-regions
// without else arms, and loops whose bounds are runtime values.
#include <gtest/gtest.h>

#include "analysis/regions.h"
#include "analysis/scev.h"
#include "ir/verifier.h"
#include "workloads/kernel_builder.h"

namespace cayman::analysis {
namespace {

using workloads::KernelBuilder;

int countKind(const WPst& wpst, RegionKind kind) {
  int count = 0;
  wpst.root()->walk([&](const Region& r) {
    if (r.kind() == kind) ++count;
  });
  return count;
}

TEST(RegionEdgeTest, NestedIfDiamonds) {
  auto module = std::make_unique<ir::Module>("nested-if");
  auto* data = module->addGlobal("data", ir::Type::i64(), 16);
  auto* out = module->addGlobal("out", ir::Type::i64(), 16);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 16, "i");
  ir::Value* v = kb.loadAt(data, i);
  ir::Value* big = kb.ir().icmp(ir::CmpPred::GT, v, kb.ir().i64(8));
  kb.beginIf(big, /*withElse=*/true, "outer");
  {
    ir::Value* huge = kb.ir().icmp(ir::CmpPred::GT, v, kb.ir().i64(12));
    kb.beginIf(huge, /*withElse=*/true, "inner");
    kb.storeAt(out, i, kb.ir().i64(2));
    kb.beginElse();
    kb.storeAt(out, i, kb.ir().i64(1));
    kb.endIf();
  }
  kb.beginElse();
  kb.storeAt(out, i, kb.ir().i64(0));
  kb.endIf();
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  WPst wpst(*module);
  // Two if regions: inner nested inside outer.
  EXPECT_EQ(countKind(wpst, RegionKind::If), 2);
  const Region* inner = nullptr;
  wpst.root()->walk([&](const Region& r) {
    if (r.kind() == RegionKind::If && r.block()->name().find("outer.then") !=
                                          std::string::npos) {
      inner = &r;
    }
  });
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->parent()->kind(), RegionKind::If);
}

TEST(RegionEdgeTest, IfWithoutElseArm) {
  auto module = std::make_unique<ir::Module>("if-no-else");
  auto* out = module->addGlobal("out", ir::Type::i64(), 8);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 8, "i");
  ir::Value* odd = kb.ir().icmp(
      ir::CmpPred::EQ, kb.ir().srem(i, kb.ir().i64(2)), kb.ir().i64(1));
  kb.beginIf(odd, /*withElse=*/false, "odd");
  kb.storeAt(out, i, i);
  kb.endIf();
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  WPst wpst(*module);
  EXPECT_EQ(countKind(wpst, RegionKind::If), 1);
}

TEST(RegionEdgeTest, LoopInsideConditional) {
  auto module = std::make_unique<ir::Module>("loop-in-if");
  auto* out = module->addGlobal("out", ir::Type::f64(), 32);
  KernelBuilder kb(module.get());
  kb.beginFunction("main", ir::Type::voidTy(), {{ir::Type::i64(), "mode"}});
  ir::Function* f = module->functionByName("main");
  ir::Value* wantIt =
      kb.ir().icmp(ir::CmpPred::GT, f->argument(0), kb.ir().i64(0));
  kb.beginIf(wantIt, /*withElse=*/false, "gate");
  ir::Value* i = kb.beginLoop(0, 32, "work");
  kb.storeAt(out, i, kb.ir().f64(1.0));
  kb.endLoop();
  kb.endIf();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  WPst wpst(*module);
  EXPECT_EQ(countKind(wpst, RegionKind::If), 1);
  EXPECT_EQ(countKind(wpst, RegionKind::Loop), 1);
  // The loop region must nest inside the if region.
  const FunctionAnalyses& fa = wpst.analyses(f);
  const Region* loopRegion = wpst.loopRegion(fa.loops.topLevelLoops()[0]);
  ASSERT_NE(loopRegion, nullptr);
  EXPECT_EQ(loopRegion->parent()->kind(), RegionKind::If);
}

TEST(RegionEdgeTest, MultiFunctionApplication) {
  auto module = std::make_unique<ir::Module>("multi");
  auto* buf = module->addGlobal("buf", ir::Type::f64(), 64);
  KernelBuilder kb(module.get());
  kb.beginFunction("helper1");
  {
    ir::Value* i = kb.beginLoop(0, 64, "h1");
    kb.storeAt(buf, i, kb.ir().f64(1.0));
    kb.endLoop();
  }
  kb.endFunction();
  kb.beginFunction("helper2");
  {
    ir::Value* i = kb.beginLoop(0, 64, "h2");
    kb.storeAt(buf, i, kb.ir().fmul(kb.loadAt(buf, i), kb.ir().f64(2.0)));
    kb.endLoop();
  }
  kb.endFunction();
  kb.beginFunction("main");
  kb.ir().call(module->functionByName("helper1"), {});
  kb.ir().call(module->functionByName("helper2"), {});
  kb.endFunction();
  ir::verifyOrThrow(*module);

  WPst wpst(*module);
  EXPECT_EQ(wpst.root()->children().size(), 3u);
  EXPECT_EQ(countKind(wpst, RegionKind::Function), 3);
  EXPECT_EQ(countKind(wpst, RegionKind::Loop), 2);
  // main's entry bb contains calls -> not a candidate; helpers' loops are.
  const ir::Function* main = module->functionByName("main");
  EXPECT_FALSE(wpst.bbRegion(main->entry())->isCandidate());
  const ir::Function* h1 = module->functionByName("helper1");
  const FunctionAnalyses& fa = wpst.analyses(h1);
  EXPECT_TRUE(wpst.loopRegion(fa.loops.topLevelLoops()[0])->isCandidate());
}

TEST(RegionEdgeTest, RuntimeBoundLoopStillForms) {
  auto module = std::make_unique<ir::Module>("runtime-bound");
  auto* out = module->addGlobal("out", ir::Type::i64(), 128);
  KernelBuilder kb(module.get());
  kb.beginFunction("main", ir::Type::voidTy(), {{ir::Type::i64(), "n"}});
  ir::Function* f = module->functionByName("main");
  ir::Value* i = kb.beginLoop(kb.ir().i64(0), f->argument(0), "i");
  kb.storeAt(out, kb.ir().and_(i, kb.ir().i64(127)), i);
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  WPst wpst(*module);
  EXPECT_EQ(countKind(wpst, RegionKind::Loop), 1);
  // No static trip count available.
  const FunctionAnalyses& fa = wpst.analyses(f);
  ScalarEvolution scev(*f, fa);
  EXPECT_FALSE(scev.tripCount(fa.loops.topLevelLoops()[0]).known);
}

TEST(RegionEdgeTest, TriangularLoopNest) {
  // for i; for j < i: the inner bound is the outer IV.
  auto module = std::make_unique<ir::Module>("triangular");
  auto* out = module->addGlobal("out", ir::Type::f64(), 32 * 32);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 32, "i");
  ir::Value* j = kb.beginLoop(kb.ir().i64(0), i, "j");
  kb.storeAt(out, kb.idx2(i, j, 32), kb.ir().f64(1.0));
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  WPst wpst(*module);
  EXPECT_EQ(countKind(wpst, RegionKind::Loop), 2);
  const ir::Function* f = module->entryFunction();
  const FunctionAnalyses& fa = wpst.analyses(f);
  const Loop* outer = fa.loops.topLevelLoops()[0];
  ASSERT_EQ(outer->subLoops().size(), 1u);
  // Outer trip static; inner is not (bound is the IV).
  ScalarEvolution scev(*f, fa);
  EXPECT_TRUE(scev.tripCount(outer).known);
  EXPECT_FALSE(scev.tripCount(outer->subLoops()[0]).known);
}

TEST(RegionEdgeTest, EmptyFunctionHasOnlyEntryBb) {
  auto module = std::make_unique<ir::Module>("empty");
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  kb.endFunction();
  ir::verifyOrThrow(*module);
  WPst wpst(*module);
  EXPECT_EQ(countKind(wpst, RegionKind::Bb), 1);
  EXPECT_EQ(countKind(wpst, RegionKind::Loop), 0);
  EXPECT_EQ(countKind(wpst, RegionKind::If), 0);
}

TEST(RegionEdgeTest, SequentialLoopsAreSiblings) {
  auto module = std::make_unique<ir::Module>("sequence");
  auto* out = module->addGlobal("out", ir::Type::f64(), 16);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  for (int k = 0; k < 3; ++k) {
    ir::Value* i = kb.beginLoop(0, 16, "l" + std::to_string(k));
    kb.storeAt(out, i, kb.ir().f64(k));
    kb.endLoop();
  }
  kb.endFunction();
  ir::verifyOrThrow(*module);
  WPst wpst(*module);
  std::vector<const Region*> loops;
  wpst.root()->walk([&](const Region& r) {
    if (r.kind() == RegionKind::Loop) loops.push_back(&r);
  });
  ASSERT_EQ(loops.size(), 3u);
  EXPECT_EQ(loops[0]->parent(), loops[1]->parent());
  EXPECT_EQ(loops[1]->parent(), loops[2]->parent());
  EXPECT_EQ(loops[0]->parent()->kind(), RegionKind::Function);
}

}  // namespace
}  // namespace cayman::analysis
