// Tests for the structured status layer: Diagnostic formatting, stage names,
// Expected<T>, DiagnosticError, and cooperative CancelToken semantics.
#include <gtest/gtest.h>

#include <thread>

#include "support/cancellation.h"
#include "support/status.h"

namespace cayman::support {
namespace {

TEST(StatusTest, StageNamesRoundTrip) {
  const Stage stages[] = {Stage::Parse,   Stage::Verify, Stage::Analyze,
                          Stage::Profile, Stage::Select, Stage::Merge,
                          Stage::Internal};
  for (Stage stage : stages) {
    std::optional<Stage> back = stageByName(stageName(stage));
    ASSERT_TRUE(back.has_value()) << stageName(stage);
    EXPECT_EQ(*back, stage);
  }
  EXPECT_FALSE(stageByName("bogus").has_value());
  EXPECT_FALSE(stageByName("").has_value());
}

TEST(StatusTest, DiagnosticStrIncludesAllPresentParts) {
  Diagnostic full{Stage::Parse, "atax", "unexpected token", 3, 14};
  EXPECT_EQ(full.str(), "parse error in 'atax' at 3:14: unexpected token");

  Diagnostic noPos{Stage::Select, "gemm", "budget infeasible"};
  EXPECT_EQ(noPos.str(), "select error in 'gemm': budget infeasible");

  Diagnostic bare{Stage::Internal, "", "bad_alloc"};
  EXPECT_EQ(bare.str(), "internal error: bad_alloc");
}

TEST(StatusTest, DiagnosticErrorWhatMatchesStr) {
  Diagnostic d{Stage::Verify, "mvt", "phi arity mismatch", 7, 2};
  DiagnosticError error(d);
  EXPECT_EQ(std::string(error.what()), d.str());
  EXPECT_EQ(error.diagnostic().stage, Stage::Verify);
  EXPECT_EQ(error.diagnostic().line, 7);
  // DiagnosticError stays catchable as the legacy Error base.
  try {
    throw DiagnosticError(d);
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("phi arity"), std::string::npos);
  }
}

TEST(StatusTest, ExpectedHoldsValueOrDiagnostic) {
  Expected<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.value(), 42);

  Expected<int> bad(Diagnostic{Stage::Parse, "f", "nope", 1, 1});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.diagnostic().message, "nope");
}

TEST(StatusTest, ExpectedTakeValueMovesOut) {
  Expected<std::unique_ptr<int>> ok(std::make_unique<int>(9));
  std::unique_ptr<int> moved = ok.takeValue();
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(*moved, 9);
}

TEST(CancelTokenTest, FreshTokenNeverExpires) {
  CancelToken token;
  EXPECT_FALSE(token.expired());
  EXPECT_NO_THROW(token.check(Stage::Profile, "unit"));
}

TEST(CancelTokenTest, CancelTripsCheckWithCancelledError) {
  CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.expired());
  try {
    token.check(Stage::Select, "gemm");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.diagnostic().stage, Stage::Select);
    EXPECT_EQ(e.diagnostic().unit, "gemm");
  }
}

TEST(CancelTokenTest, DeadlineExpiresAndReportsTimeout) {
  CancelToken token;
  token.setTimeout(0.01);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(token.expired());
  try {
    token.check(Stage::Profile, "atax");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("timeout"), std::string::npos);
  }
}

TEST(CancelTokenTest, NonPositiveTimeoutDisarms) {
  CancelToken token;
  token.setTimeout(0.001);
  token.setTimeout(0.0);  // disarm again
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(token.expired());
}

TEST(CancelTokenTest, CancelledErrorIsCatchableAsDiagnosticError) {
  CancelToken token;
  token.cancel();
  EXPECT_THROW(token.check(Stage::Merge), DiagnosticError);
}

}  // namespace
}  // namespace cayman::support
