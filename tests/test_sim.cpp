// Tests for the simulation substrate: memory layout, interpreter semantics,
// cycle accounting, and region profiling.
#include <gtest/gtest.h>

#include <cmath>

#include "ir/verifier.h"
#include "sim/profiler.h"
#include "workloads/kernel_builder.h"

namespace cayman::sim {
namespace {

using workloads::KernelBuilder;

TEST(SimMemoryTest, LayoutIsAlignedAndDisjoint) {
  ir::Module m("mem");
  auto* a = m.addGlobal("a", ir::Type::f64(), 10);
  auto* b = m.addGlobal("b", ir::Type::i32(), 7);
  SimMemory memory(m);
  uint64_t baseA = memory.baseOf(a);
  uint64_t baseB = memory.baseOf(b);
  EXPECT_EQ(baseA % 64, 0u);
  EXPECT_EQ(baseB % 64, 0u);
  EXPECT_GE(baseB, baseA + a->sizeBytes());
}

TEST(SimMemoryTest, ExplicitInitializersApplied) {
  ir::Module m("mem");
  auto* a = m.addGlobal("a", ir::Type::f64(), 4);
  a->setInit({1.0, 2.0, 3.0, 4.0});
  auto* idx = m.addGlobal("idx", ir::Type::i64(), 3);
  idx->setInit({2, 0, 1});
  SimMemory memory(m);
  EXPECT_DOUBLE_EQ(memory.readElemF64(a, 0), 1.0);
  EXPECT_DOUBLE_EQ(memory.readElemF64(a, 3), 4.0);
  EXPECT_EQ(memory.readElemI64(idx, 0), 2);
  EXPECT_EQ(memory.readElemI64(idx, 2), 1);
}

TEST(SimMemoryTest, DefaultFillIsDeterministicAndBounded) {
  ir::Module m("mem");
  auto* f = m.addGlobal("f", ir::Type::f64(), 100);
  auto* n = m.addGlobal("n", ir::Type::i64(), 100);
  SimMemory first(m);
  SimMemory second(m);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(first.readElemF64(f, i), second.readElemF64(f, i));
    EXPECT_GE(first.readElemF64(f, i), 0.0);
    EXPECT_LT(first.readElemF64(f, i), 1.0);
    // Default integers are valid indices into their own array.
    EXPECT_GE(first.readElemI64(n, i), 0);
    EXPECT_LT(first.readElemI64(n, i), 100);
  }
}

TEST(SimMemoryTest, ResetRestoresInitialImage) {
  ir::Module m("mem");
  auto* a = m.addGlobal("a", ir::Type::f64(), 4);
  a->setInit({1.0, 2.0, 3.0, 4.0});
  auto* n = m.addGlobal("n", ir::Type::i64(), 8);  // deterministic fill
  SimMemory memory(m);
  std::vector<int64_t> fill(8);
  for (uint64_t i = 0; i < 8; ++i) {
    fill[i] = memory.readElemI64(n, i);
  }

  memory.storeFloat(memory.baseOf(a), ir::Type::f64(), -99.0);
  memory.storeInt(memory.baseOf(n), ir::Type::i64(), 1234);
  ASSERT_DOUBLE_EQ(memory.readElemF64(a, 0), -99.0);

  memory.reset();
  EXPECT_DOUBLE_EQ(memory.readElemF64(a, 0), 1.0);
  EXPECT_DOUBLE_EQ(memory.readElemF64(a, 3), 4.0);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(memory.readElemI64(n, i), fill[i]);
  }
}

/// Round-trip through the interpreter: run, mutate globals from outside,
/// re-run — the automatic reset at the start of run() must make the second
/// Result identical to the first.
TEST(SimMemoryTest, ResetRoundTripThroughInterpreter) {
  auto module = std::make_unique<ir::Module>("roundtrip");
  auto* x = module->addGlobal("x", ir::Type::i64(), 16);
  auto* out = module->addGlobal("out", ir::Type::i64(), 16);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 16, "i");
  // Data-dependent control flow so clobbered inputs would change counts.
  ir::Value* v = kb.loadAt(x, i);
  ir::Value* odd = kb.ir().icmp(ir::CmpPred::EQ,
                                kb.ir().srem(v, kb.ir().i64(2)),
                                kb.ir().i64(1));
  kb.beginIf(odd, /*withElse=*/true);
  kb.storeAt(out, i, kb.ir().mul(v, kb.ir().i64(3)));
  kb.beginElse();
  kb.storeAt(out, i, v);
  kb.endIf();
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  Interpreter interp(*module);
  Interpreter::Result first = interp.run();
  std::vector<int64_t> firstOut(16);
  for (uint64_t k = 0; k < 16; ++k) {
    firstOut[k] = interp.memory().readElemI64(out, k);
  }

  // Trash both arrays, then re-run: reset must restore the initial image.
  for (uint64_t k = 0; k < 16; ++k) {
    interp.memory().storeInt(
        interp.memory().baseOf(x) + k * sizeof(int64_t), ir::Type::i64(), -7);
    interp.memory().storeInt(
        interp.memory().baseOf(out) + k * sizeof(int64_t), ir::Type::i64(),
        -8);
  }
  Interpreter::Result second = interp.run();

  EXPECT_EQ(first.totalCycles, second.totalCycles);
  EXPECT_EQ(first.instructions, second.instructions);
  EXPECT_EQ(first.blockCounts, second.blockCounts);
  for (uint64_t k = 0; k < 16; ++k) {
    EXPECT_EQ(interp.memory().readElemI64(out, k), firstOut[k]) << k;
  }
}

TEST(SimMemoryTest, OutOfBoundsAccessThrows) {
  ir::Module m("mem");
  m.addGlobal("a", ir::Type::f64(), 4);
  SimMemory memory(m);
  EXPECT_THROW(memory.loadInt(0x0, ir::Type::i64()), Error);
  EXPECT_THROW(memory.loadInt(0x1000 + (1 << 20), ir::Type::i64()), Error);
}

/// Builds and runs y[i] = 2*x[i] + 1 and checks the results numerically.
TEST(InterpreterTest, LinearKernelComputesCorrectValues) {
  auto module = std::make_unique<ir::Module>("linear");
  auto* x = module->addGlobal("x", ir::Type::f64(), 16);
  auto* y = module->addGlobal("y", ir::Type::f64(), 16);
  std::vector<double> xs(16);
  for (int i = 0; i < 16; ++i) xs[static_cast<size_t>(i)] = i * 0.5;
  x->setInit(xs);

  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 16, "i");
  ir::Value* xi = kb.loadAt(x, i);
  ir::Value* v = kb.ir().fadd(kb.ir().fmul(xi, kb.ir().f64(2.0)),
                              kb.ir().f64(1.0));
  kb.storeAt(y, i, v);
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  Interpreter interp(*module);
  Interpreter::Result result = interp.run();
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(interp.memory().readElemF64(y, i),
                     2.0 * (static_cast<double>(i) * 0.5) + 1.0);
  }
  EXPECT_GT(result.totalCycles, 0.0);
  EXPECT_GT(result.instructions, 16u * 5u);
}

TEST(InterpreterTest, BlockCountsMatchTripCounts) {
  auto module = std::make_unique<ir::Module>("counts");
  auto* out = module->addGlobal("out", ir::Type::i64(), 8);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 8, "i");
  ir::Value* j = kb.beginLoop(0, 4, "j");
  kb.storeAt(out, i, j);
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  Interpreter interp(*module);
  Interpreter::Result result = interp.run();
  const ir::Function* f = module->entryFunction();
  EXPECT_EQ(result.countOf(f->blockByName("i.header")), 9u);
  EXPECT_EQ(result.countOf(f->blockByName("i.body")), 8u);
  EXPECT_EQ(result.countOf(f->blockByName("j.header")), 8u * 5u);
  EXPECT_EQ(result.countOf(f->blockByName("j.body")), 32u);
  EXPECT_EQ(result.countOf(f->blockByName("j.latch")), 32u);
  EXPECT_EQ(result.countOf(f->blockByName("i.exit")), 1u);
}

TEST(InterpreterTest, ConditionalsTakeTheRightArm) {
  auto module = std::make_unique<ir::Module>("cond");
  auto* v = module->addGlobal("v", ir::Type::i64(), 8);
  auto* out = module->addGlobal("out", ir::Type::i64(), 8);
  v->setInit({-3, 5, -1, 0, 7, -9, 2, -4});
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 8, "i");
  ir::Value* value = kb.loadAt(v, i);
  ir::Value* isNeg = kb.ir().icmp(ir::CmpPred::LT, value, kb.ir().i64(0));
  kb.beginIf(isNeg, /*withElse=*/true);
  kb.storeAt(out, i, kb.ir().sub(kb.ir().i64(0), value));
  kb.beginElse();
  kb.storeAt(out, i, value);
  kb.endIf();
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  Interpreter interp(*module);
  interp.run();
  const int64_t expected[] = {3, 5, 1, 0, 7, 9, 2, 4};
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(interp.memory().readElemI64(out, i), expected[i]);
  }
}

TEST(InterpreterTest, CallsAndReturnValues) {
  auto module = std::make_unique<ir::Module>("calls");
  KernelBuilder kb(module.get());
  ir::Function* sq = kb.beginFunction("square", ir::Type::i64(),
                                      {{ir::Type::i64(), "v"}});
  ir::Value* squared = kb.ir().mul(sq->argument(0), sq->argument(0));
  kb.endFunction(squared);

  kb.beginFunction("main", ir::Type::i64(), {{ir::Type::i64(), "n"}});
  ir::Function* main = module->functionByName("main");
  ir::Value* result = kb.ir().call(sq, {main->argument(0)}, "sq");
  kb.endFunction(result);
  ir::verifyOrThrow(*module);

  Interpreter interp(*module);
  int64_t args[] = {9};
  Interpreter::Result run = interp.run(args);
  ASSERT_TRUE(run.returnValue.has_value());
  EXPECT_EQ(run.returnValue->i, 81);
}

TEST(InterpreterTest, ReductionAccumulates) {
  auto module = std::make_unique<ir::Module>("reduce");
  auto* x = module->addGlobal("x", ir::Type::f64(), 32);
  auto* out = module->addGlobal("out", ir::Type::f64(), 1);
  std::vector<double> xs(32, 0.25);
  x->setInit(xs);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 32, "i");
  ir::Instruction* acc =
      kb.reduction(ir::Type::f64(), kb.ir().f64(0.0), "acc");
  ir::Value* sum = kb.ir().fadd(acc, kb.loadAt(x, i), "acc.next");
  kb.setReductionNext(acc, sum);
  kb.endLoop();
  kb.storeAt(out, kb.ir().i64(0), kb.reductionResult(acc));
  kb.endFunction();
  ir::verifyOrThrow(*module);

  Interpreter interp(*module);
  interp.run();
  EXPECT_DOUBLE_EQ(interp.memory().readElemF64(out, 0), 8.0);
}

TEST(InterpreterTest, InstructionLimitGuardsRunaways) {
  auto module = std::make_unique<ir::Module>("spin");
  auto* out = module->addGlobal("out", ir::Type::i64(), 1);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 1'000'000, "i");
  kb.storeAt(out, kb.ir().i64(0), i);
  kb.endLoop();
  kb.endFunction();

  Interpreter interp(*module);
  interp.setInstructionLimit(1000);
  EXPECT_THROW(interp.run(), Error);
}

TEST(CpuModelTest, RelativeCostsAreSane) {
  CpuCostModel model = CpuCostModel::cva6();
  ir::Module m("cost");
  ir::Function* f = m.addFunction("f", ir::Type::voidTy(),
                                  {{ir::Type::f64(), "a"}});
  ir::BasicBlock* entry = f->addBlock("entry");
  ir::IRBuilder b(&m);
  b.setInsertPoint(entry);
  auto* fdiv = ir::dynCast<ir::Instruction>(b.fdiv(f->argument(0),
                                                   f->argument(0)));
  auto* faddInst = ir::dynCast<ir::Instruction>(b.fadd(f->argument(0),
                                                       f->argument(0)));
  b.ret();
  EXPECT_GT(model.cost(*fdiv), model.cost(*faddInst));
  EXPECT_GT(model.blockCost(*entry), 0.0);
}

TEST(ProfilerTest, RegionCyclesAndEntries) {
  auto module = std::make_unique<ir::Module>("prof");
  auto* x = module->addGlobal("x", ir::Type::f64(), 64);
  auto* y = module->addGlobal("y", ir::Type::f64(), 64);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 64, "i");
  kb.storeAt(y, i, kb.ir().fmul(kb.loadAt(x, i), kb.ir().f64(3.0)));
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  analysis::WPst wpst(*module);
  Interpreter interp(*module);
  Interpreter::Result run = interp.run();
  ProfileData profile(wpst, run, interp.costModel());

  EXPECT_DOUBLE_EQ(profile.totalCycles(), run.totalCycles);

  const ir::Function* f = module->entryFunction();
  const analysis::FunctionAnalyses& fa = wpst.analyses(f);
  const analysis::Loop* loop = fa.loops.topLevelLoops()[0];
  const analysis::Region* loopRegion = wpst.loopRegion(loop);
  ASSERT_NE(loopRegion, nullptr);

  EXPECT_EQ(profile.entries(loopRegion), 1u);
  EXPECT_NEAR(profile.avgTripCount(loop), 64.0, 1e-9);
  // The loop dominates the program's runtime.
  EXPECT_GT(profile.hotFraction(loopRegion), 0.9);
  // Region cycles are the sum of contained block cycles.
  double sum = 0.0;
  for (const ir::BasicBlock* block : loopRegion->blocks()) {
    sum += profile.blockCycles(block);
  }
  EXPECT_DOUBLE_EQ(profile.cycles(loopRegion), sum);
  // The function region covers everything.
  const analysis::Region* funcRegion = wpst.root()->children()[0].get();
  EXPECT_NEAR(profile.cycles(funcRegion), profile.totalCycles(), 1e-9);
}

TEST(ProfilerTest, DegenerateProfileYieldsZerosNotNaN) {
  // A profile with no executed blocks (e.g. an entry function whose hot
  // code is never reached) must produce 0 for every derived ratio — never
  // NaN/inf from 0/0 — so downstream pruning and Eq. 1 stay well-defined.
  auto module = std::make_unique<ir::Module>("empty_prof");
  auto* x = module->addGlobal("x", ir::Type::f64(), 8);
  KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* i = kb.beginLoop(0, 8, "i");
  kb.storeAt(x, i, kb.ir().f64(1.0));
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  analysis::WPst wpst(*module);
  Interpreter::Result emptyRun;  // totalCycles == 0, no block counts
  Interpreter interp(*module);
  ProfileData profile(wpst, emptyRun, interp.costModel());

  EXPECT_DOUBLE_EQ(profile.totalCycles(), 0.0);
  const ir::Function* f = module->entryFunction();
  const analysis::Loop* loop = wpst.analyses(f).loops.topLevelLoops()[0];
  const analysis::Region* loopRegion = wpst.loopRegion(loop);
  ASSERT_NE(loopRegion, nullptr);
  EXPECT_EQ(profile.entries(loopRegion), 0u);
  // latch count 0 / entries 0 and cycles 0 / total 0 both resolve to 0.
  double trip = profile.avgTripCount(loop);
  EXPECT_DOUBLE_EQ(trip, 0.0);
  EXPECT_FALSE(std::isnan(trip));
  double hot = profile.hotFraction(loopRegion);
  EXPECT_DOUBLE_EQ(hot, 0.0);
  EXPECT_FALSE(std::isnan(hot));
}

TEST(ProfilerTest, CalleeTimeStaysInCallee) {
  auto module = std::make_unique<ir::Module>("callee");
  auto* out = module->addGlobal("out", ir::Type::f64(), 1);
  KernelBuilder kb(module.get());
  kb.beginFunction("work");
  ir::Value* i = kb.beginLoop(0, 100, "i");
  kb.storeAt(out, kb.ir().i64(0), kb.ir().sitofp(i, ir::Type::f64()));
  kb.endLoop();
  kb.endFunction();

  kb.beginFunction("main");
  kb.ir().call(module->functionByName("work"), {});
  kb.endFunction();
  ir::verifyOrThrow(*module);

  analysis::WPst wpst(*module);
  Interpreter interp(*module);
  Interpreter::Result run = interp.run();
  ProfileData profile(wpst, run, interp.costModel());

  const analysis::Region* workRegion = nullptr;
  const analysis::Region* mainRegion = nullptr;
  for (const auto& child : wpst.root()->children()) {
    if (child->function()->name() == "work") workRegion = child.get();
    if (child->function()->name() == "main") mainRegion = child.get();
  }
  ASSERT_NE(workRegion, nullptr);
  ASSERT_NE(mainRegion, nullptr);
  EXPECT_GT(profile.cycles(workRegion), profile.cycles(mainRegion));
  EXPECT_EQ(profile.entries(workRegion), 1u);
}

}  // namespace
}  // namespace cayman::sim
