// Tests for the accelerator model: configuration generation, the interface
// heuristics (β rule, decoupled-in-pipelines, promotion), and the
// performance/area estimator.
#include <gtest/gtest.h>

#include "accel/model.h"
#include "test_kernels.h"

namespace cayman::accel {
namespace {

struct Pipeline {
  explicit Pipeline(std::unique_ptr<ir::Module> m, ModelParams params = {})
      : module(std::move(m)),
        wpst(*module),
        interp(*module),
        run(interp.run()),
        profile(wpst, run, interp.costModel()),
        tech(hls::TechLibrary::nangate45()),
        model(wpst, profile, tech, hls::InterfaceTiming{}, params) {}

  std::unique_ptr<ir::Module> module;
  analysis::WPst wpst;
  sim::Interpreter interp;
  sim::Interpreter::Result run;
  sim::ProfileData profile;
  hls::TechLibrary tech;
  AcceleratorModel model;
};

const analysis::Region* loopRegionByHeader(const analysis::WPst& wpst,
                                           const char* header) {
  for (const analysis::Region* r : wpst.allRegions()) {
    if (r->kind() == analysis::RegionKind::Loop &&
        r->block()->name() == header) {
      return r;
    }
  }
  return nullptr;
}

TEST(ModelTest, GeneratesAreaOrderedConfigsWithTradeoff) {
  Pipeline p(testing::linearKernel());
  const analysis::Region* loop = loopRegionByHeader(p.wpst, "i.header");
  ASSERT_NE(loop, nullptr);
  std::vector<AcceleratorConfig> configs = p.model.generate(loop);
  ASSERT_GE(configs.size(), 2u);
  for (size_t i = 1; i < configs.size(); ++i) {
    EXPECT_GE(configs[i].areaUm2, configs[i - 1].areaUm2);
  }
  // The most expensive config must be the fastest (otherwise it would have
  // been pruned as a duplicate of a cheaper one).
  EXPECT_LT(configs.back().cycles, configs.front().cycles);
  // cpuCycles is the profiled region time, identical across configs.
  for (const auto& config : configs) {
    EXPECT_DOUBLE_EQ(config.cpuCycles, p.profile.cycles(loop));
  }
}

TEST(ModelTest, PipelinedConfigUsesDecoupledStreams) {
  Pipeline p(testing::linearKernel());
  const analysis::Region* loop = loopRegionByHeader(p.wpst, "i.header");
  std::vector<AcceleratorConfig> configs = p.model.generate(loop);
  const AcceleratorConfig& fastest = configs.back();
  EXPECT_EQ(fastest.numPipelinedRegions, 1u);
  // x[i] and y[i] are streams in a pipelined loop -> decoupled or faster.
  EXPECT_EQ(fastest.numCoupled, 0u);
  EXPECT_GT(fastest.numDecoupled + fastest.numScratchpad, 0u);
}

TEST(ModelTest, NonCandidateRegionsGenerateNothing) {
  Pipeline p(testing::linearKernel());
  EXPECT_TRUE(p.model.generate(p.wpst.root()).empty());
  // Function vertices cannot be selected either (Algorithm 1's "otherwise").
  EXPECT_TRUE(p.model.generate(p.wpst.root()->children()[0].get()).empty());
}

TEST(ModelTest, ChainLoopNeverUnrolls) {
  Pipeline p(testing::chainKernel());
  const analysis::Region* loop = loopRegionByHeader(p.wpst, "i.header");
  ASSERT_NE(loop, nullptr);
  for (const AcceleratorConfig& config : p.model.generate(loop)) {
    for (const LoopConfig& lc : config.loops) {
      EXPECT_EQ(lc.unroll, 1u) << "cross-iteration dependence must block "
                                  "unrolling";
    }
  }
}

TEST(ModelTest, ReductionLoopUnrollsWithPartialSums) {
  Pipeline p(testing::dotRowsKernel());
  const analysis::Region* inner = loopRegionByHeader(p.wpst, "j.header");
  ASSERT_NE(inner, nullptr);
  bool sawUnrolled = false;
  for (const AcceleratorConfig& config : p.model.generate(inner)) {
    for (const LoopConfig& lc : config.loops) {
      if (lc.unroll > 1) sawUnrolled = true;
    }
  }
  EXPECT_TRUE(sawUnrolled)
      << "z[i] accumulation should unroll via partial sums";
}

TEST(ModelTest, InvariantAccessGetsPromoted) {
  Pipeline p(testing::dotRowsKernel());
  const analysis::Region* inner = loopRegionByHeader(p.wpst, "j.header");
  std::vector<AcceleratorConfig> configs = p.model.generate(inner);
  const AcceleratorConfig& fastest = configs.back();
  const KernelAnalyses& ka = p.model.analysesFor(inner->function());
  int promoted = 0;
  for (const auto& [inst, iface] : fastest.ifaces) {
    if (!iface.promoted) continue;
    ++promoted;
    // Only the z accesses are loop-invariant in j.
    analysis::AddressInfo addr = ka.scev.addressOf(inst);
    ASSERT_TRUE(addr.valid);
    EXPECT_EQ(addr.base->name(), "z");
  }
  EXPECT_EQ(promoted, 2);  // ld z and st z
}

TEST(ModelTest, BetaRuleSelectsScratchpad) {
  // Access x[j] inside an outer repetition loop: per-entry count >> footprint.
  auto module = std::make_unique<ir::Module>("reuse");
  auto* x = module->addGlobal("x", ir::Type::f64(), 16);
  auto* y = module->addGlobal("y", ir::Type::f64(), 64 * 16);
  workloads::KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* r = kb.beginLoop(0, 64, "rep");
  ir::Value* j = kb.beginLoop(0, 16, "j");
  kb.storeAt(y, kb.idx2(r, j, 16), kb.ir().fmul(kb.loadAt(x, j),
                                                kb.ir().f64(2.0)));
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);

  Pipeline p(std::move(module));
  const analysis::Region* outer = loopRegionByHeader(p.wpst, "rep.header");
  ASSERT_NE(outer, nullptr);
  std::vector<AcceleratorConfig> configs = p.model.generate(outer);
  const KernelAnalyses& ka = p.model.analysesFor(outer->function());
  bool xScratch = false;
  for (const auto& [inst, iface] : configs.back().ifaces) {
    analysis::AddressInfo addr = ka.scev.addressOf(inst);
    if (addr.valid && addr.base->name() == "x" &&
        iface.kind == hls::IfaceKind::Scratchpad) {
      xScratch = true;
      EXPECT_EQ(iface.footprintBytes, 16u * 8u);
    }
  }
  EXPECT_TRUE(xScratch) << "x is re-read 64x per entry; beta rule must cache";
}

TEST(ModelTest, CoupledOnlyAblationForbidsFastInterfaces) {
  ModelParams params;
  params.allowDecoupled = false;
  params.allowScratchpad = false;
  Pipeline p(testing::linearKernel(), params);
  const analysis::Region* loop = loopRegionByHeader(p.wpst, "i.header");
  for (const AcceleratorConfig& config : p.model.generate(loop)) {
    EXPECT_EQ(config.numDecoupled, 0u);
    EXPECT_EQ(config.numScratchpad, 0u);
  }
}

TEST(ModelTest, CoupledOnlyIsSlowerThanFull) {
  ModelParams coupledOnly;
  coupledOnly.allowDecoupled = false;
  coupledOnly.allowScratchpad = false;
  Pipeline full(testing::linearKernel());
  Pipeline restricted(testing::linearKernel(), coupledOnly);
  const analysis::Region* fullLoop =
      loopRegionByHeader(full.wpst, "i.header");
  const analysis::Region* restrictedLoop =
      loopRegionByHeader(restricted.wpst, "i.header");
  double fullBest = full.model.generate(fullLoop).back().cycles;
  double restrictedBest =
      restricted.model.generate(restrictedLoop).back().cycles;
  EXPECT_LT(fullBest, restrictedBest);
}

TEST(ModelTest, SequentialRestrictionMatchesQsCoresShape) {
  ModelParams params;
  params.allowPipelining = false;
  params.allowUnrolling = false;
  Pipeline p(testing::linearKernel(), params);
  const analysis::Region* loop = loopRegionByHeader(p.wpst, "i.header");
  for (const AcceleratorConfig& config : p.model.generate(loop)) {
    EXPECT_EQ(config.numPipelinedRegions, 0u);
  }
}

TEST(ModelTest, TripCountsFallBackToProfile) {
  Pipeline p(testing::dotRowsKernel(12, 6));
  const analysis::FunctionAnalyses& fa =
      p.wpst.analyses(p.module->entryFunction());
  const analysis::Loop* outer = fa.loops.topLevelLoops()[0];
  const analysis::Loop* inner = outer->subLoops()[0];
  EXPECT_NEAR(p.model.tripCount(outer), 12.0, 1e-9);
  EXPECT_NEAR(p.model.tripCount(inner), 6.0, 1e-9);
}

TEST(ModelTest, EstimateIsDeterministic) {
  Pipeline p(testing::dotRowsKernel());
  const analysis::Region* inner = loopRegionByHeader(p.wpst, "j.header");
  std::vector<AcceleratorConfig> once = p.model.generate(inner);
  std::vector<AcceleratorConfig> twice = p.model.generate(inner);
  ASSERT_EQ(once.size(), twice.size());
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_DOUBLE_EQ(once[i].cycles, twice[i].cycles);
    EXPECT_DOUBLE_EQ(once[i].areaUm2, twice[i].areaUm2);
  }
}

class BetaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(BetaSweepTest, ScratchpadCountMonotoneInBeta) {
  // Property: raising beta can only reduce the number of scratchpad
  // interfaces (the rule becomes stricter).
  double beta = GetParam();
  ModelParams loose;
  loose.beta = beta;
  ModelParams strict;
  strict.beta = beta * 4.0;
  Pipeline pLoose(testing::dotRowsKernel(), loose);
  Pipeline pStrict(testing::dotRowsKernel(), strict);
  const analysis::Region* a = loopRegionByHeader(pLoose.wpst, "i.header");
  const analysis::Region* b = loopRegionByHeader(pStrict.wpst, "i.header");
  unsigned looseCount = pLoose.model.generate(a).back().numScratchpad;
  unsigned strictCount = pStrict.model.generate(b).back().numScratchpad;
  EXPECT_GE(looseCount, strictCount);
}

INSTANTIATE_TEST_SUITE_P(Betas, BetaSweepTest,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace cayman::accel
