// Tests for the observability layer: recorder on/off semantics, task
// attribution, deterministic draining, and Chrome trace-event export.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "support/json.h"
#include "support/trace.h"

namespace cayman::support {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::TraceRecorder::global().clear();
    trace::TraceRecorder::global().setEnabled(true);
  }
  void TearDown() override {
    trace::TraceRecorder::global().setEnabled(false);
    trace::TraceRecorder::global().clear();
  }
};

TEST(TraceDisabledTest, ProbesAreInertWhenOff) {
  trace::TraceRecorder& recorder = trace::TraceRecorder::global();
  recorder.setEnabled(false);
  recorder.clear();
  {
    trace::TaskScope scope("unit", 0);
    trace::Span span("work");
    trace::count("c", 1);
    trace::gauge("g", 2);
    trace::addStageSeconds("select", 0.1);
  }
  EXPECT_FALSE(trace::on());
  EXPECT_TRUE(recorder.drainTasks().empty());
  EXPECT_TRUE(recorder.globalCounters().empty());
  EXPECT_TRUE(recorder.gauges().empty());
}

TEST(TraceDisabledTest, ScopeOpenedWhileOffStaysInertAfterEnable) {
  trace::TraceRecorder& recorder = trace::TraceRecorder::global();
  recorder.setEnabled(false);
  recorder.clear();
  {
    trace::TaskScope scope("late", 0);
    recorder.setEnabled(true);
    trace::count("c", 1);  // goes to the global map, not the inert scope
  }
  std::vector<trace::TaskRecord> tasks = recorder.drainTasks();
  EXPECT_TRUE(tasks.empty());
  recorder.setEnabled(false);
  recorder.clear();
}

TEST_F(TraceTest, TaskScopeCollectsSpansCountersAndStages) {
  {
    trace::TaskScope scope("atax", 3);
    {
      trace::Span span("select", "pipeline");
      trace::count("model.cache_misses", 2);
      trace::count("model.cache_misses", 1);
      trace::count("interp.runs", 1);
    }
    trace::addStageSeconds("select", 0.25);
    trace::addStageSeconds("select", 0.25);
  }
  std::vector<trace::TaskRecord> tasks =
      trace::TraceRecorder::global().drainTasks();
  ASSERT_EQ(tasks.size(), 1u);
  const trace::TaskRecord& task = tasks[0];
  EXPECT_EQ(task.unit, "atax");
  EXPECT_EQ(task.index, 3u);
  EXPECT_GE(task.totalSeconds, 0.0);
  // workload B, span B, span E, workload E.
  ASSERT_EQ(task.events.size(), 4u);
  EXPECT_EQ(task.events[0].name, "workload:atax");
  EXPECT_EQ(task.events[1].name, "select");
  EXPECT_EQ(task.events[1].phase, trace::Event::Phase::Begin);
  EXPECT_EQ(task.events[2].phase, trace::Event::Phase::End);
  // Counters are sorted by name and accumulate.
  ASSERT_EQ(task.counters.size(), 2u);
  EXPECT_EQ(task.counters[0].first, "interp.runs");
  EXPECT_EQ(task.counters[1].first, "model.cache_misses");
  EXPECT_EQ(task.counters[1].second, 3u);
  ASSERT_EQ(task.stageSeconds.size(), 1u);
  EXPECT_DOUBLE_EQ(task.stageSeconds[0].second, 0.5);
}

TEST_F(TraceTest, DrainSortsByIndexRegardlessOfPublishOrder) {
  { trace::TaskScope scope("late", 2); }
  { trace::TaskScope scope("early", 0); }
  { trace::TaskScope scope("middle", 1); }
  std::vector<trace::TaskRecord> tasks =
      trace::TraceRecorder::global().drainTasks();
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks[0].unit, "early");
  EXPECT_EQ(tasks[1].unit, "middle");
  EXPECT_EQ(tasks[2].unit, "late");
}

TEST_F(TraceTest, CountsOutsideAnyScopeGoToGlobalCounters) {
  trace::count("pool.tasks", 5);
  trace::count("pool.tasks", 2);
  trace::gauge("pool.workers", 8);
  auto counters = trace::TraceRecorder::global().globalCounters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "pool.tasks");
  EXPECT_EQ(counters[0].second, 7u);
  auto gauges = trace::TraceRecorder::global().gauges();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].second, 8);
}

/// Walks a traceEvents array checking balanced B/E nesting and per-tid
/// monotonically non-decreasing timestamps.
void checkTraceEvents(const json::Value& document) {
  const json::Value* events = document.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());
  std::map<int64_t, std::vector<std::string>> stacks;
  std::map<int64_t, double> lastTs;
  for (const json::Value& event : events->items()) {
    const json::Value* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->stringValue() == "M") continue;
    int64_t tid = event.find("tid")->intValue();
    double ts = event.find("ts")->numberValue();
    auto it = lastTs.find(tid);
    if (it != lastTs.end()) EXPECT_GE(ts, it->second);
    lastTs[tid] = ts;
    const std::string& name = event.find("name")->stringValue();
    if (ph->stringValue() == "B") {
      stacks[tid].push_back(name);
    } else {
      ASSERT_EQ(ph->stringValue(), "E");
      ASSERT_FALSE(stacks[tid].empty());
      EXPECT_EQ(stacks[tid].back(), name);
      stacks[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unbalanced events on tid " << tid;
  }
}

TEST_F(TraceTest, ChromeTraceDeterministicIsBalancedWithOrdinalTimestamps) {
  {
    trace::TaskScope scope("alpha", 0);
    trace::Span outer("outer");
    trace::Span inner("inner");
  }
  {
    trace::TaskScope scope("beta", 1);
    trace::Span span("only");
  }
  std::vector<trace::TaskRecord> tasks =
      trace::TraceRecorder::global().drainTasks();
  json::Value document =
      trace::chromeTrace(tasks, {}, trace::TimeMode::Deterministic);
  checkTraceEvents(document);
  // Ordinal timestamps restart per task and are integers.
  const json::Value* events = document.find("traceEvents");
  int64_t expected = 0;
  for (const json::Value& event : events->items()) {
    if (event.find("ph")->stringValue() == "M") {
      expected = 0;
      continue;
    }
    ASSERT_TRUE(event.find("ts")->isInt());
    EXPECT_EQ(event.find("ts")->intValue(), expected++);
  }
  // Byte-determinism: two exports of the same records are identical.
  EXPECT_EQ(document.dump(),
            trace::chromeTrace(tasks, {}, trace::TimeMode::Deterministic)
                .dump());
}

TEST_F(TraceTest, ChromeTraceWallIncludesOrphansDeterministicDoesNot) {
  { trace::TaskScope scope("alpha", 0); }
  trace::OrphanRecord orphan;
  orphan.events.push_back(
      trace::Event{trace::Event::Phase::Begin, "pool.task", "pool", 10});
  orphan.events.push_back(
      trace::Event{trace::Event::Phase::End, "pool.task", "pool", 20});
  trace::TraceRecorder::global().publishOrphan(orphan);
  std::vector<trace::TaskRecord> tasks =
      trace::TraceRecorder::global().drainTasks();
  std::vector<trace::OrphanRecord> orphans =
      trace::TraceRecorder::global().drainOrphans();
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0].label, "thread-0");

  json::Value deterministic =
      trace::chromeTrace(tasks, orphans, trace::TimeMode::Deterministic);
  EXPECT_EQ(deterministic.dump().find("pool.task"), std::string::npos);

  json::Value wall = trace::chromeTrace(tasks, orphans, trace::TimeMode::Wall);
  checkTraceEvents(wall);
  EXPECT_NE(wall.dump().find("pool.task"), std::string::npos);
  EXPECT_NE(wall.dump().find("thread-0"), std::string::npos);
}

TEST_F(TraceTest, NestedTaskScopesAttributeToTheInnerScope) {
  {
    trace::TaskScope outer("outer", 0);
    trace::count("c", 1);
    {
      trace::TaskScope inner("inner", 1);
      trace::count("c", 10);
    }
    trace::count("c", 100);
  }
  std::vector<trace::TaskRecord> tasks =
      trace::TraceRecorder::global().drainTasks();
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].unit, "outer");
  ASSERT_EQ(tasks[0].counters.size(), 1u);
  EXPECT_EQ(tasks[0].counters[0].second, 101u);
  EXPECT_EQ(tasks[1].unit, "inner");
  ASSERT_EQ(tasks[1].counters.size(), 1u);
  EXPECT_EQ(tasks[1].counters[0].second, 10u);
}

}  // namespace
}  // namespace cayman::support
