// Table-driven semantics tests: every arithmetic / comparison / conversion
// opcode is executed through a one-instruction function and checked against
// the host's reference arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ir/builder.h"
#include "sim/interpreter.h"

namespace cayman::sim {
namespace {

/// Runs `op(a, b)` on i64 operands through both interpreter engines and
/// checks they agree before returning the result.
int64_t evalI64(ir::Opcode op, int64_t a, int64_t b) {
  ir::Module m("op");
  ir::Function* f = m.addFunction(
      "f", ir::Type::i64(), {{ir::Type::i64(), "a"}, {ir::Type::i64(), "b"}});
  ir::BasicBlock* entry = f->addBlock("entry");
  auto inst = std::make_unique<ir::Instruction>(
      op, ir::Type::i64(),
      std::vector<ir::Value*>{f->argument(0), f->argument(1)}, "r");
  ir::Instruction* raw = entry->append(std::move(inst));
  ir::IRBuilder builder(&m);
  builder.setInsertPoint(entry);
  builder.ret(raw);
  Interpreter interp(m);
  int64_t args[] = {a, b};
  int64_t decoded = interp.runFunction(*f, args).returnValue->i;
  interp.setMode(Interpreter::ExecMode::Reference);
  int64_t reference = interp.runFunction(*f, args).returnValue->i;
  EXPECT_EQ(decoded, reference)
      << ir::opcodeSpelling(op) << "(" << a << ", " << b
      << "): decoded vs reference engine";
  return decoded;
}

/// Runs `fop(a, b)` on f64 operands (passed via globals to keep precision).
double evalF64(ir::Opcode op, double a, double b, bool unary = false) {
  ir::Module m("fop");
  auto* in = m.addGlobal("in", ir::Type::f64(), 2);
  in->setInit({a, b});
  auto* out = m.addGlobal("out", ir::Type::f64(), 1);
  ir::Function* f = m.addFunction("main", ir::Type::voidTy(), {});
  ir::BasicBlock* entry = f->addBlock("entry");
  ir::IRBuilder builder(&m);
  builder.setInsertPoint(entry);
  ir::Value* va =
      builder.load(ir::Type::f64(), builder.gep(in, builder.i64(0),
                                                ir::Type::f64()));
  ir::Value* vb =
      builder.load(ir::Type::f64(), builder.gep(in, builder.i64(1),
                                                ir::Type::f64()));
  std::vector<ir::Value*> operands{va};
  if (!unary) operands.push_back(vb);
  auto inst = std::make_unique<ir::Instruction>(op, ir::Type::f64(),
                                                operands, "r");
  ir::Instruction* raw = entry->append(std::move(inst));
  builder.store(raw, builder.gep(out, builder.i64(0), ir::Type::f64()));
  builder.ret();
  Interpreter interp(m);
  interp.run();
  return interp.memory().readElemF64(out, 0);
}

struct IntCase {
  ir::Opcode op;
  int64_t a, b, expected;
};

class IntOpTest : public ::testing::TestWithParam<IntCase> {};

TEST_P(IntOpTest, MatchesReference) {
  const IntCase& c = GetParam();
  EXPECT_EQ(evalI64(c.op, c.a, c.b), c.expected)
      << ir::opcodeSpelling(c.op) << "(" << c.a << ", " << c.b << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, IntOpTest,
    ::testing::Values(
        IntCase{ir::Opcode::Add, 40, 2, 42},
        IntCase{ir::Opcode::Add, -5, 3, -2},
        IntCase{ir::Opcode::Sub, 10, 25, -15},
        IntCase{ir::Opcode::Mul, -6, 7, -42},
        IntCase{ir::Opcode::SDiv, 42, 5, 8},
        IntCase{ir::Opcode::SDiv, -42, 5, -8},
        IntCase{ir::Opcode::SDiv, 42, 0, 0},  // guarded: no trap
        // INT64_MIN / -1 overflows in C++; the interpreter defines it as the
        // two's-complement wrap (and the remainder as 0), so UBSan stays
        // quiet and results are deterministic.
        IntCase{ir::Opcode::SDiv, std::numeric_limits<int64_t>::min(), -1,
                std::numeric_limits<int64_t>::min()},
        IntCase{ir::Opcode::SRem, std::numeric_limits<int64_t>::min(), -1, 0},
        IntCase{ir::Opcode::SRem, 42, 5, 2},
        IntCase{ir::Opcode::SRem, 7, 0, 0},
        IntCase{ir::Opcode::And, 0b1100, 0b1010, 0b1000},
        IntCase{ir::Opcode::Or, 0b1100, 0b1010, 0b1110},
        IntCase{ir::Opcode::Xor, 0b1100, 0b1010, 0b0110},
        IntCase{ir::Opcode::Shl, 3, 4, 48},
        IntCase{ir::Opcode::AShr, -16, 2, -4},
        IntCase{ir::Opcode::LShr, -1, 60, 15}));

struct FloatCase {
  ir::Opcode op;
  double a, b, expected;
  bool unary = false;
};

class FloatOpTest : public ::testing::TestWithParam<FloatCase> {};

TEST_P(FloatOpTest, MatchesReference) {
  const FloatCase& c = GetParam();
  EXPECT_DOUBLE_EQ(evalF64(c.op, c.a, c.b, c.unary), c.expected)
      << ir::opcodeSpelling(c.op);
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, FloatOpTest,
    ::testing::Values(
        FloatCase{ir::Opcode::FAdd, 1.5, 2.25, 3.75},
        FloatCase{ir::Opcode::FSub, 1.0, 0.75, 0.25},
        FloatCase{ir::Opcode::FMul, -2.0, 3.5, -7.0},
        FloatCase{ir::Opcode::FDiv, 1.0, 4.0, 0.25},
        FloatCase{ir::Opcode::FMin, 2.0, -3.0, -3.0},
        FloatCase{ir::Opcode::FMax, 2.0, -3.0, 2.0},
        FloatCase{ir::Opcode::FNeg, 2.5, 0.0, -2.5, true},
        FloatCase{ir::Opcode::FAbs, -2.5, 0.0, 2.5, true},
        FloatCase{ir::Opcode::FSqrt, 9.0, 0.0, 3.0, true}));

TEST(CmpOpTest, IntegerPredicates) {
  ir::Module m("cmp");
  ir::Function* f = m.addFunction(
      "f", ir::Type::i64(), {{ir::Type::i64(), "a"}, {ir::Type::i64(), "b"}});
  ir::BasicBlock* entry = f->addBlock("entry");
  ir::IRBuilder b(&m);
  b.setInsertPoint(entry);
  ir::Value* cmp = b.icmp(ir::CmpPred::LT, f->argument(0), f->argument(1));
  b.ret(b.zext(cmp, ir::Type::i64()));
  Interpreter interp(m);
  {
    int64_t args[] = {1, 2};
    EXPECT_EQ(interp.runFunction(*f, args).returnValue->i, 1);
  }
  {
    int64_t args[] = {2, 2};
    EXPECT_EQ(interp.runFunction(*f, args).returnValue->i, 0);
  }
  {
    int64_t args[] = {-5, 2};
    EXPECT_EQ(interp.runFunction(*f, args).returnValue->i, 1);
  }
}

TEST(ConversionTest, RoundTripsAndTruncation) {
  ir::Module m("conv");
  ir::Function* f =
      m.addFunction("f", ir::Type::i64(), {{ir::Type::i64(), "a"}});
  ir::BasicBlock* entry = f->addBlock("entry");
  ir::IRBuilder b(&m);
  b.setInsertPoint(entry);
  // i64 -> f64 -> scaled -> i64.
  ir::Value* asF = b.sitofp(f->argument(0), ir::Type::f64());
  ir::Value* scaled = b.fmul(asF, b.f64(0.5));
  b.ret(b.fptosi(scaled, ir::Type::i64()));
  Interpreter interp(m);
  int64_t args[] = {9};
  EXPECT_EQ(interp.runFunction(*f, args).returnValue->i, 4);  // trunc toward 0
}

TEST(ConversionTest, TruncAndExtWrapCorrectly) {
  ir::Module m("tw");
  ir::Function* f =
      m.addFunction("f", ir::Type::i64(), {{ir::Type::i64(), "a"}});
  ir::BasicBlock* entry = f->addBlock("entry");
  ir::IRBuilder b(&m);
  b.setInsertPoint(entry);
  ir::Value* narrow = b.trunc(f->argument(0), ir::Type::i32());
  b.ret(b.sext(narrow, ir::Type::i64()));
  Interpreter interp(m);
  // 2^32 + 5 truncates to 5; -1 stays -1 (sign extension).
  {
    int64_t args[] = {(int64_t{1} << 32) + 5};
    EXPECT_EQ(interp.runFunction(*f, args).returnValue->i, 5);
  }
  {
    int64_t args[] = {-1};
    EXPECT_EQ(interp.runFunction(*f, args).returnValue->i, -1);
  }
}

TEST(SelectTest, PicksByCondition) {
  EXPECT_EQ(evalI64(ir::Opcode::Add, 1, 1), 2);  // sanity
  ir::Module m("sel");
  ir::Function* f = m.addFunction(
      "f", ir::Type::i64(), {{ir::Type::i64(), "a"}, {ir::Type::i64(), "b"}});
  ir::BasicBlock* entry = f->addBlock("entry");
  ir::IRBuilder b(&m);
  b.setInsertPoint(entry);
  ir::Value* bigger = b.select(
      b.icmp(ir::CmpPred::GT, f->argument(0), f->argument(1)),
      f->argument(0), f->argument(1), "max");
  b.ret(bigger);
  Interpreter interp(m);
  {
    int64_t args[] = {3, 8};
    EXPECT_EQ(interp.runFunction(*f, args).returnValue->i, 8);
  }
  {
    int64_t args[] = {9, -4};
    EXPECT_EQ(interp.runFunction(*f, args).returnValue->i, 9);
  }
}

}  // namespace
}  // namespace cayman::sim
