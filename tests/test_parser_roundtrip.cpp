// Property tests: for EVERY registered workload, the textual IR round-trips
// (print -> parse -> print is a fixed point) and the reparsed module is
// semantically identical (same interpreter results, same region structure).
#include <gtest/gtest.h>

#include "analysis/regions.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "sim/interpreter.h"
#include "workloads/workloads.h"

namespace cayman::ir {
namespace {

class RoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTripTest, PrintParsePrintIsFixedPoint) {
  std::unique_ptr<Module> original = workloads::build(GetParam());
  std::string once = printModule(*original);
  std::unique_ptr<Module> reparsed = parseModule(once);
  ASSERT_TRUE(verifyModule(*reparsed).empty());
  EXPECT_EQ(once, printModule(*reparsed));
}

TEST_P(RoundTripTest, ReparsedModuleBehavesIdentically) {
  std::unique_ptr<Module> original = workloads::build(GetParam());
  std::unique_ptr<Module> reparsed = parseModule(printModule(*original));

  sim::Interpreter a(*original);
  sim::Interpreter b(*reparsed);
  sim::Interpreter::Result ra = a.run();
  sim::Interpreter::Result rb = b.run();
  EXPECT_DOUBLE_EQ(ra.totalCycles, rb.totalCycles);
  EXPECT_EQ(ra.instructions, rb.instructions);

  // Every global holds the same final contents.
  for (size_t g = 0; g < original->globals().size(); ++g) {
    const GlobalArray* ga = original->globals()[g].get();
    const GlobalArray* gb = reparsed->globals()[g].get();
    ASSERT_EQ(ga->name(), gb->name());
    ASSERT_EQ(ga->numElems(), gb->numElems());
    for (uint64_t i = 0; i < ga->numElems(); ++i) {
      if (ga->elemType()->isFloat()) {
        EXPECT_DOUBLE_EQ(a.memory().readElemF64(ga, i),
                         b.memory().readElemF64(gb, i))
            << ga->name() << "[" << i << "]";
      } else {
        EXPECT_EQ(a.memory().readElemI64(ga, i),
                  b.memory().readElemI64(gb, i))
            << ga->name() << "[" << i << "]";
      }
    }
  }
}

TEST_P(RoundTripTest, ReparsedModuleHasSameRegionStructure) {
  std::unique_ptr<Module> original = workloads::build(GetParam());
  std::unique_ptr<Module> reparsed = parseModule(printModule(*original));
  analysis::WPst wa(*original);
  analysis::WPst wb(*reparsed);
  ASSERT_EQ(wa.allRegions().size(), wb.allRegions().size());
  for (size_t i = 0; i < wa.allRegions().size(); ++i) {
    EXPECT_EQ(wa.allRegions()[i]->kind(), wb.allRegions()[i]->kind());
    EXPECT_EQ(wa.allRegions()[i]->blocks().size(),
              wb.allRegions()[i]->blocks().size());
    EXPECT_EQ(wa.allRegions()[i]->isCandidate(),
              wb.allRegions()[i]->isCandidate());
  }
}

std::vector<std::string> names() {
  std::vector<std::string> result;
  for (const auto& info : workloads::all()) result.push_back(info.name);
  return result;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, RoundTripTest, ::testing::ValuesIn(names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace cayman::ir
