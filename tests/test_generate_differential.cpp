// Differential tests pinning GenerateMode::Guided to the
// GenerateMode::Reference enumeration oracle: bit-exact selected fronts over
// all 28 registered workloads across budgets, a pruning-ratio guardrail on
// the model's estimate()/scheduleBlock() counters, and a seeded randomized
// test that the guided guardrail never keeps a config the reference
// enumerator scores strictly better at equal-or-smaller area. Guided is only
// allowed to be cheaper — never different where it counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "cayman/framework.h"
#include "test_kernels.h"
#include "workloads/workloads.h"

namespace cayman {
namespace {

// Value-level config equality. The guided and reference pipelines are built
// from two separate module instances (GenerateMode is a model parameter), so
// AcceleratorConfig::operator== — which compares region/loop/instruction
// *pointers* — can never hold across them; this compares the same decision
// by name and value instead.
void expectConfigEqual(const accel::AcceleratorConfig& a,
                       const accel::AcceleratorConfig& b,
                       const std::string& context) {
  ASSERT_NE(a.region, nullptr) << context;
  ASSERT_NE(b.region, nullptr) << context;
  EXPECT_EQ(a.region->label(), b.region->label()) << context;
  ASSERT_EQ(a.loops.size(), b.loops.size()) << context;
  for (size_t i = 0; i < a.loops.size(); ++i) {
    EXPECT_EQ(a.loops[i].loop->header()->name(),
              b.loops[i].loop->header()->name())
        << context << " loop " << i;
    EXPECT_EQ(a.loops[i].unroll, b.loops[i].unroll) << context << " loop " << i;
    EXPECT_EQ(a.loops[i].pipelined, b.loops[i].pipelined)
        << context << " loop " << i;
  }
  // Interface assignments keyed by instruction pointer: compare the sorted
  // multiset of per-access interface values.
  auto summarize = [](const hls::IfaceAssignment& ifaces) {
    std::vector<std::tuple<std::string, int, unsigned, uint64_t, bool>> out;
    for (const auto& [inst, iface] : ifaces) {
      out.emplace_back(iface.array != nullptr ? iface.array->name() : "",
                       static_cast<int>(iface.kind), iface.partitions,
                       iface.footprintBytes, iface.promoted);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(summarize(a.ifaces), summarize(b.ifaces)) << context;
  EXPECT_EQ(a.cycles, b.cycles) << context;
  EXPECT_EQ(a.cpuCycles, b.cpuCycles) << context;
  EXPECT_EQ(a.areaUm2, b.areaUm2) << context;
  EXPECT_EQ(a.numSeqBlocks, b.numSeqBlocks) << context;
  EXPECT_EQ(a.numPipelinedRegions, b.numPipelinedRegions) << context;
  EXPECT_EQ(a.numCoupled, b.numCoupled) << context;
  EXPECT_EQ(a.numDecoupled, b.numDecoupled) << context;
  EXPECT_EQ(a.numScratchpad, b.numScratchpad) << context;
}

void expectBitExact(const select::Solution& a, const select::Solution& b,
                    const std::string& context) {
  EXPECT_EQ(a.areaUm2, b.areaUm2) << context;
  EXPECT_EQ(a.accelCycles, b.accelCycles) << context;
  EXPECT_EQ(a.cpuCycles, b.cpuCycles) << context;
  ASSERT_EQ(a.accelerators.size(), b.accelerators.size()) << context;
  for (size_t k = 0; k < a.accelerators.size(); ++k) {
    expectConfigEqual(a.accelerators[k], b.accelerators[k],
                      context + " accelerator " + std::to_string(k));
  }
}

// Every workload, both engines, several budgets: the selected fronts must
// agree bit for bit while guided spends measurably fewer model calls. The
// aggregate counter guardrail matches the CI metrics-artifact bound.
TEST(GenerateDifferentialTest, GuidedReproducesReferenceFrontsOnAllWorkloads) {
  uint64_t guidedWork = 0;
  uint64_t referenceWork = 0;
  uint64_t guidedSched = 0;
  uint64_t referenceSched = 0;
  for (const workloads::WorkloadInfo& info : workloads::all()) {
    FrameworkOptions referenceOptions;
    referenceOptions.generateMode = accel::GenerateMode::Reference;
    Framework reference(info.build(), referenceOptions);
    Framework guided(info.build());  // Guided is the default

    for (double budgetRatio : {0.05, 0.25, 0.65}) {
      std::string context = info.name + " budget " +
                            std::to_string(budgetRatio);
      std::vector<select::Solution> referenceFront =
          reference.explore(budgetRatio);
      std::vector<select::Solution> guidedFront = guided.explore(budgetRatio);
      ASSERT_EQ(guidedFront.size(), referenceFront.size()) << context;
      for (size_t i = 0; i < guidedFront.size(); ++i) {
        expectBitExact(guidedFront[i], referenceFront[i],
                       context + " index " + std::to_string(i));
      }
    }

    guidedWork += guided.model().estimateCalls() +
                  guided.model().scheduleBlockCalls();
    referenceWork += reference.model().estimateCalls() +
                     reference.model().scheduleBlockCalls();
    guidedSched += guided.model().scheduleBlockCalls();
    referenceSched += reference.model().scheduleBlockCalls();
  }

  // Pruning guardrail over the whole sweep. estimate() has a structural
  // floor — every per-region Pareto member (baselines included) is scored
  // exactly once in both modes — so the enforced bounds sit on the combined
  // call count and on the scheduler specifically, where the guided cache
  // collapses repeated (block, width, interface-signature) requests. See
  // DESIGN.md §12 for the measured ratios these thresholds guard.
  EXPECT_GT(referenceWork, 0u);
  EXPECT_LE(guidedWork * 100, referenceWork * 50)
      << "guided " << guidedWork << " vs reference " << referenceWork;
  EXPECT_LE(guidedSched * 100, referenceSched * 35)
      << "guided " << guidedSched << " vs reference " << referenceSched;
}

// ---------------------------------------------------------------------------
// Seeded randomized guardrail property: across random kernels and model
// parameter draws, guided generate() never keeps a config the reference
// enumeration scores strictly better at equal-or-smaller area — i.e. the
// admission filter and branch-and-bound walk only ever discard dominated
// points, and the kept list is Pareto-complete w.r.t. the full enumeration.
// ---------------------------------------------------------------------------

struct Lcg {
  uint64_t state;
  explicit Lcg(uint64_t seed) : state(seed) {}
  uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

struct Pipeline {
  Pipeline(std::unique_ptr<ir::Module> m, accel::ModelParams params)
      : module(std::move(m)),
        wpst(*module),
        interp(*module),
        run(interp.run()),
        profile(wpst, run, interp.costModel()),
        tech(hls::TechLibrary::nangate45()),
        model(wpst, profile, tech, hls::InterfaceTiming{}, params) {}

  std::unique_ptr<ir::Module> module;
  analysis::WPst wpst;
  sim::Interpreter interp;
  sim::Interpreter::Result run;
  sim::ProfileData profile;
  hls::TechLibrary tech;
  accel::AcceleratorModel model;
};

/// Deterministic kernel recipe: drawn once per trial, buildable repeatedly
/// so the guided and reference pipelines see structurally identical modules.
struct KernelRecipe {
  unsigned kind = 0;
  int64_t n = 0;
  int64_t m = 0;

  static KernelRecipe draw(Lcg& rng) {
    KernelRecipe recipe;
    recipe.kind = static_cast<unsigned>(rng.next() % 3);
    recipe.n = static_cast<int64_t>(rng.next() % 96 + 4);
    recipe.m = static_cast<int64_t>(rng.next() % 24 + 2);
    return recipe;
  }

  std::unique_ptr<ir::Module> build() const {
    switch (kind) {
      case 0: return testing::linearKernel(n);
      case 1: return testing::dotRowsKernel(n % 12 + 2, m);
      default: return testing::chainKernel(n);
    }
  }
};

TEST(GenerateDifferentialTest, GuidedNeverKeepsStrictlyDominatedConfigs) {
  Lcg rng(0xCA17A5u);
  for (int trial = 0; trial < 24; ++trial) {
    accel::ModelParams params;
    params.beta = static_cast<double>(rng.next() % 8 + 1);
    params.clockNs = (rng.next() % 2 == 0) ? 2.0 : 4.0;
    params.allowDecoupled = rng.next() % 4 != 0;
    params.allowScratchpad = rng.next() % 4 != 0;
    params.unknownTripFallback = rng.next() % 32 + 2;
    KernelRecipe recipe = KernelRecipe::draw(rng);

    accel::ModelParams referenceParams = params;
    referenceParams.generateMode = accel::GenerateMode::Reference;
    params.generateMode = accel::GenerateMode::Guided;
    Pipeline guided(recipe.build(), params);
    Pipeline reference(recipe.build(), referenceParams);

    ASSERT_EQ(guided.wpst.allRegions().size(),
              reference.wpst.allRegions().size());
    for (size_t i = 0; i < guided.wpst.allRegions().size(); ++i) {
      const analysis::Region* gr = guided.wpst.allRegions()[i];
      const analysis::Region* rr = reference.wpst.allRegions()[i];
      const std::vector<accel::AcceleratorConfig>& gc =
          guided.model.generate(gr);
      const std::vector<accel::AcceleratorConfig>& rc =
          reference.model.generate(rr);
      std::string context = "trial " + std::to_string(trial) + " region " +
                            std::to_string(i);
      // Guided only ever produces a subset of the enumeration's scores, so
      // it can never be cheaper than the oracle's Pareto floor.
      EXPECT_LE(gc.size(), rc.size()) << context;
      for (const accel::AcceleratorConfig& g : gc) {
        for (const accel::AcceleratorConfig& r : rc) {
          EXPECT_FALSE(r.areaUm2 <= g.areaUm2 && r.cycles < g.cycles)
              << context << ": reference config (area " << r.areaUm2
              << ", cycles " << r.cycles << ") strictly beats kept guided"
              << " config (area " << g.areaUm2 << ", cycles " << g.cycles
              << ")";
        }
      }
      // And the converse completeness: every reference config is matched or
      // beaten by some kept guided config at equal-or-smaller area.
      for (const accel::AcceleratorConfig& r : rc) {
        bool covered = false;
        for (const accel::AcceleratorConfig& g : gc) {
          covered |= g.areaUm2 <= r.areaUm2 && g.cycles <= r.cycles;
        }
        EXPECT_TRUE(covered)
            << context << ": reference config (area " << r.areaUm2
            << ", cycles " << r.cycles << ") not covered by guided list";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cooperative cancellation inside the model: an expired token aborts both
// the lazy generate() path and the eager cache warm-up instead of letting a
// pathological region run past its deadline.
// ---------------------------------------------------------------------------

TEST(GenerateCancellationTest, ExpiredTokenAbortsGeneration) {
  support::CancelToken token;
  accel::ModelParams params;
  params.cancel = &token;
  Pipeline p(testing::linearKernel(), params);

  token.cancel();
  ASSERT_FALSE(p.wpst.allRegions().empty());
  EXPECT_THROW(p.model.generate(p.wpst.allRegions().front()),
               support::CancelledError);
  EXPECT_THROW(p.model.warmGenerateCache(), support::CancelledError);
}

}  // namespace
}  // namespace cayman
