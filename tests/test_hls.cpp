// Tests for the HLS substrate: technology library lookups, interface-aware
// block scheduling, and pipelining MII bounds — including the relationships
// the paper's Fig. 4 demonstrates.
#include <gtest/gtest.h>

#include "analysis/memdep.h"
#include "hls/scheduler.h"
#include "test_kernels.h"

namespace cayman::hls {
namespace {

constexpr double kClock = 2.0;  // 500 MHz

const ir::BasicBlock* bodyOf(const ir::Module& m, const char* name) {
  const ir::BasicBlock* block = m.entryFunction()->blockByName(name);
  EXPECT_NE(block, nullptr);
  return block;
}

IfaceAssignment assignAll(const ir::BasicBlock& block, IfaceKind kind,
                          unsigned partitions = 1) {
  IfaceAssignment ifaces;
  for (const auto& inst : block.instructions()) {
    if (!inst->isMemoryAccess()) continue;
    AccessIface iface;
    iface.kind = kind;
    iface.partitions = partitions;
    // Resolve the backing array for scheduling conflicts / banking.
    const ir::Value* ptr = inst->pointerOperand();
    while (const auto* gep = ir::dynCast<ir::Instruction>(ptr)) {
      ptr = gep->operand(0);
    }
    iface.array = ir::dynCast<ir::GlobalArray>(ptr);
    ifaces[inst.get()] = iface;
  }
  return ifaces;
}

TEST(TechLibraryTest, DelaysAndAreasAreOrdered) {
  TechLibrary tech = TechLibrary::nangate45();
  // Multipliers dominate adders; FP dominates integer; div dominates mul.
  EXPECT_GT(tech.opInfo(ir::Opcode::Mul, ir::Type::i64()).areaUm2,
            tech.opInfo(ir::Opcode::Add, ir::Type::i64()).areaUm2);
  EXPECT_GT(tech.opInfo(ir::Opcode::FAdd, ir::Type::f64()).delayNs,
            tech.opInfo(ir::Opcode::Add, ir::Type::i64()).delayNs);
  EXPECT_GT(tech.opInfo(ir::Opcode::FDiv, ir::Type::f64()).areaUm2,
            tech.opInfo(ir::Opcode::FMul, ir::Type::f64()).areaUm2);
  // Narrow datapaths are cheaper.
  EXPECT_LT(tech.opInfo(ir::Opcode::Add, ir::Type::i32()).areaUm2,
            tech.opInfo(ir::Opcode::Add, ir::Type::i64()).areaUm2);
}

TEST(TechLibraryTest, LatencyCyclesRoundUp) {
  TechLibrary tech = TechLibrary::nangate45();
  // fadd: 5.2ns at 2ns clock -> 3 cycles.
  EXPECT_EQ(tech.latencyCycles(ir::Opcode::FAdd, ir::Type::f64(), kClock), 3u);
  // Integer add fits one cycle.
  EXPECT_EQ(tech.latencyCycles(ir::Opcode::Add, ir::Type::i64(), kClock), 1u);
  // Phis are free.
  EXPECT_EQ(tech.latencyCycles(ir::Opcode::Phi, ir::Type::i64(), kClock), 0u);
  // Slower clock reduces cycle counts.
  EXPECT_LE(tech.latencyCycles(ir::Opcode::FMul, ir::Type::f64(), 6.0),
            tech.latencyCycles(ir::Opcode::FMul, ir::Type::f64(), kClock));
}

TEST(SchedulerTest, DecoupledBeatsCoupledSequentially) {
  auto module = testing::linearKernel();
  const ir::BasicBlock* body = bodyOf(*module, "i.body");
  TechLibrary tech = TechLibrary::nangate45();
  Scheduler scheduler(tech, InterfaceTiming{}, kClock);

  BlockSchedule coupled =
      scheduler.scheduleBlock(*body, assignAll(*body, IfaceKind::Coupled));
  BlockSchedule decoupled =
      scheduler.scheduleBlock(*body, assignAll(*body, IfaceKind::Decoupled));
  // Fig. 4 sequential row: decoupled strictly shorter (6N vs 4N shape).
  EXPECT_LT(decoupled.latency, coupled.latency);
  EXPECT_GE(coupled.latency, 1u);
  // Same datapath ops either way.
  EXPECT_EQ(coupled.numOps, decoupled.numOps);
  EXPECT_DOUBLE_EQ(coupled.opAreaUm2, decoupled.opAreaUm2);
}

TEST(SchedulerTest, PipelineIIMatchesFig4Shape) {
  auto module = testing::linearKernel();
  const ir::BasicBlock* body = bodyOf(*module, "i.body");
  TechLibrary tech = TechLibrary::nangate45();
  InterfaceTiming timing;
  Scheduler scheduler(tech, timing, kClock);

  unsigned coupledII =
      scheduler.resMII(*body, assignAll(*body, IfaceKind::Coupled));
  unsigned decoupledII =
      scheduler.resMII(*body, assignAll(*body, IfaceKind::Decoupled));
  // Fig. 4 pipelined row: coupled II bound by the shared port (3 for the
  // load + 1 for the store with our constants); decoupled reaches II=1.
  EXPECT_EQ(decoupledII, 1u);
  EXPECT_EQ(coupledII,
            timing.coupledLoadOccupancy + timing.coupledStoreOccupancy);
}

TEST(SchedulerTest, UnrolledScratchpadBeatsCoupled) {
  auto module = testing::linearKernel();
  const ir::BasicBlock* body = bodyOf(*module, "i.body");
  TechLibrary tech = TechLibrary::nangate45();
  Scheduler scheduler(tech, InterfaceTiming{}, kClock);

  BlockSchedule coupledU2 =
      scheduler.scheduleBlock(*body, assignAll(*body, IfaceKind::Coupled), 2);
  BlockSchedule scratchU2 = scheduler.scheduleBlock(
      *body, assignAll(*body, IfaceKind::Scratchpad, /*partitions=*/2), 2);
  // Fig. 4 unrolled row: banked scratchpad removes the port serialization.
  EXPECT_LT(scratchU2.latency, coupledU2.latency);
  // Unrolling doubles datapath area.
  BlockSchedule coupledU1 =
      scheduler.scheduleBlock(*body, assignAll(*body, IfaceKind::Coupled), 1);
  EXPECT_DOUBLE_EQ(coupledU2.opAreaUm2, 2.0 * coupledU1.opAreaUm2);
}

TEST(SchedulerTest, ScratchpadBanksLimitParallelism) {
  auto module = testing::linearKernel();
  const ir::BasicBlock* body = bodyOf(*module, "i.body");
  TechLibrary tech = TechLibrary::nangate45();
  Scheduler scheduler(tech, InterfaceTiming{}, kClock);

  unsigned oneBank = scheduler.resMII(
      *body, assignAll(*body, IfaceKind::Scratchpad, 1), /*unroll=*/4);
  unsigned fourBanks = scheduler.resMII(
      *body, assignAll(*body, IfaceKind::Scratchpad, 4), /*unroll=*/4);
  EXPECT_GT(oneBank, fourBanks);
  EXPECT_EQ(fourBanks, 1u);
}

TEST(SchedulerTest, PromotedAccessesAreFree) {
  auto module = testing::linearKernel();
  const ir::BasicBlock* body = bodyOf(*module, "i.body");
  TechLibrary tech = TechLibrary::nangate45();
  Scheduler scheduler(tech, InterfaceTiming{}, kClock);

  IfaceAssignment promoted = assignAll(*body, IfaceKind::Coupled);
  for (auto& [inst, iface] : promoted) iface.promoted = true;
  EXPECT_EQ(scheduler.resMII(*body, promoted), 1u);
  BlockSchedule sched = scheduler.scheduleBlock(*body, promoted);
  BlockSchedule coupled =
      scheduler.scheduleBlock(*body, assignAll(*body, IfaceKind::Coupled));
  EXPECT_LT(sched.latency, coupled.latency);
}

TEST(SchedulerTest, MemoryOrderingSerializesConflictingAccesses) {
  // st z; ld z (same address) must not reorder: latency covers both.
  auto module = testing::dotRowsKernel();
  const ir::BasicBlock* body = bodyOf(*module, "j.body");
  TechLibrary tech = TechLibrary::nangate45();
  Scheduler scheduler(tech, InterfaceTiming{}, kClock);
  BlockSchedule sched =
      scheduler.scheduleBlock(*body, assignAll(*body, IfaceKind::Coupled));
  // 3 loads on one port: at least 3 * occupancy cycles of serialization.
  InterfaceTiming timing;
  EXPECT_GE(sched.latency, 3 * timing.coupledLoadOccupancy);
}

TEST(SchedulerTest, RecMIIFromCarriedDeps) {
  auto module = testing::dotRowsKernel();
  const ir::Function* f = module->entryFunction();
  analysis::FunctionAnalyses fa(*f);
  analysis::ScalarEvolution scev(*f, fa);
  analysis::MemoryAnalysis mem(*f, fa, scev);
  const analysis::Loop* inner = fa.loops.topLevelLoops()[0]->subLoops()[0];

  TechLibrary tech = TechLibrary::nangate45();
  Scheduler scheduler(tech, InterfaceTiming{}, kClock);
  const ir::BasicBlock* body = bodyOf(*module, "j.body");

  IfaceAssignment coupled = assignAll(*body, IfaceKind::Coupled);
  unsigned recCoupled = scheduler.recMII(mem.carriedDeps(inner), coupled);
  // Chain: ld z (3) + fadd (3) + st z (1) -> RecMII >= 7.
  EXPECT_GE(recCoupled, 7u);

  // Promoting z's load/store shrinks the recurrence to the fadd alone.
  IfaceAssignment promoted = coupled;
  for (auto& [inst, iface] : promoted) {
    analysis::AddressInfo addr = scev.addressOf(inst);
    if (addr.valid && addr.base->name() == "z") iface.promoted = true;
  }
  unsigned recPromoted = scheduler.recMII(mem.carriedDeps(inner), promoted);
  EXPECT_EQ(recPromoted,
            tech.latencyCycles(ir::Opcode::FAdd, ir::Type::f64(), kClock));
}

TEST(SchedulerTest, PipelinedCyclesFormula) {
  EXPECT_EQ(Scheduler::pipelinedCycles(1, 10, 3), 10u);
  EXPECT_EQ(Scheduler::pipelinedCycles(100, 10, 1), 109u);
  EXPECT_EQ(Scheduler::pipelinedCycles(100, 10, 3), 10u + 99u * 3u);
  EXPECT_EQ(Scheduler::pipelinedCycles(0, 10, 3), 0u);
}

TEST(SchedulerTest, EmptyBlockHasUnitLatency) {
  ir::Module m("empty");
  ir::Function* f = m.addFunction("f", ir::Type::voidTy(), {});
  ir::BasicBlock* entry = f->addBlock("entry");
  ir::IRBuilder b(&m);
  b.setInsertPoint(entry);
  b.ret();
  TechLibrary tech = TechLibrary::nangate45();
  Scheduler scheduler(tech, InterfaceTiming{}, kClock);
  BlockSchedule sched = scheduler.scheduleBlock(*entry, {});
  EXPECT_EQ(sched.latency, 1u);
  EXPECT_EQ(sched.numOps, 0u);
}

class ClockSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ClockSweepTest, LatencyMonotoneInClockPeriod) {
  // Property: a slower clock never increases an op's cycle latency.
  TechLibrary tech = TechLibrary::nangate45();
  double clock = GetParam();
  for (ir::Opcode op : {ir::Opcode::Add, ir::Opcode::Mul, ir::Opcode::FAdd,
                        ir::Opcode::FMul, ir::Opcode::FDiv, ir::Opcode::FSqrt,
                        ir::Opcode::SDiv}) {
    EXPECT_LE(tech.latencyCycles(op, ir::Type::f64(), clock * 2.0),
              tech.latencyCycles(op, ir::Type::f64(), clock))
        << opcodeSpelling(op);
    EXPECT_GE(tech.latencyCycles(op, ir::Type::f64(), clock), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Clocks, ClockSweepTest,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0));

class UnrollSweepTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(UnrollSweepTest, AreaScalesLinearlyLatencyMonotone) {
  unsigned unroll = GetParam();
  auto module = testing::linearKernel();
  const ir::BasicBlock* body =
      module->entryFunction()->blockByName("i.body");
  TechLibrary tech = TechLibrary::nangate45();
  Scheduler scheduler(tech, InterfaceTiming{}, kClock);
  IfaceAssignment coupled = assignAll(*body, IfaceKind::Coupled);
  BlockSchedule base = scheduler.scheduleBlock(*body, coupled, 1);
  BlockSchedule wide = scheduler.scheduleBlock(*body, coupled, unroll);
  EXPECT_DOUBLE_EQ(wide.opAreaUm2, unroll * base.opAreaUm2);
  EXPECT_GE(wide.latency, base.latency);
  // Port serialization grows with width.
  if (unroll > 1) {
    EXPECT_GT(wide.latency, base.latency);
  }
}

INSTANTIATE_TEST_SUITE_P(Unrolls, UnrollSweepTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

}  // namespace
}  // namespace cayman::hls
