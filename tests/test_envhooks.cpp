// Tests for the strict CAYMAN_INJECT_* spec parsers. The hooks used to be
// hand-parsed with silent fallbacks; these tests pin the loud-rejection
// contract: every malformed spec is a Diagnostic naming the variable, and
// the env wrappers distinguish unset (ok nullopt) from malformed (failed).
#include <gtest/gtest.h>

#include <cstdlib>

#include "support/envhooks.h"

namespace cayman::support::envhooks {
namespace {

TEST(InjectFaultTest, ParsesWorkloadAndStage) {
  Expected<FaultSpec> spec = parseInjectFault("bicg:select");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().workload, "bicg");
  EXPECT_EQ(spec.value().stage, Stage::Select);

  spec = parseInjectFault("atax:cache");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().stage, Stage::Cache);
}

TEST(InjectFaultTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "atax", "atax:", ":select", "atax:compile", "atax:select:extra",
        "atax:Select"}) {
    Expected<FaultSpec> spec = parseInjectFault(bad);
    EXPECT_FALSE(spec.ok()) << "'" << bad << "' should be rejected";
    if (!spec.ok()) {
      EXPECT_EQ(spec.diagnostic().unit, "CAYMAN_INJECT_FAULT");
      EXPECT_NE(spec.diagnostic().message.find("invalid spec"),
                std::string::npos);
    }
  }
}

TEST(InjectSlowTest, ParsesWorkloadAndMicros) {
  Expected<SlowSpec> spec = parseInjectSlow("bicg:generate:400000");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().workload, "bicg");
  EXPECT_EQ(spec.value().micros, 400000u);

  spec = parseInjectSlow("fft:generate:0");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().micros, 0u);
}

TEST(InjectSlowTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "atax:generate", "atax:generate:fast", "atax:generate:-5",
        "atax:select:100", ":generate:100", "atax:generate:100:x",
        "atax:generate:2000000000"}) {
    Expected<SlowSpec> spec = parseInjectSlow(bad);
    EXPECT_FALSE(spec.ok()) << "'" << bad << "' should be rejected";
    if (!spec.ok()) {
      EXPECT_EQ(spec.diagnostic().unit, "CAYMAN_INJECT_SLOW");
    }
  }
}

TEST(InjectCorruptTest, ParsesEveryMode) {
  struct Case {
    const char* text;
    CorruptMode mode;
    uint64_t offset;
  };
  for (const Case& c : {Case{"truncate:0", CorruptMode::Truncate, 0},
                        Case{"bitflip:100", CorruptMode::Bitflip, 100},
                        Case{"torn:40", CorruptMode::Torn, 40},
                        Case{"crash:0", CorruptMode::Crash, 0}}) {
    Expected<CorruptSpec> spec = parseInjectCorrupt(c.text);
    ASSERT_TRUE(spec.ok()) << c.text;
    EXPECT_EQ(spec.value().mode, c.mode) << c.text;
    EXPECT_EQ(spec.value().offset, c.offset) << c.text;
  }
}

TEST(InjectCorruptTest, RejectsMalformedSpecs) {
  for (const char* bad : {"", "melt:12", "truncate", "truncate:", ":12",
                          "truncate:-1", "truncate:abc", "torn:40:extra",
                          "Truncate:0", "truncate:9999999999999999"}) {
    Expected<CorruptSpec> spec = parseInjectCorrupt(bad);
    EXPECT_FALSE(spec.ok()) << "'" << bad << "' should be rejected";
    if (!spec.ok()) {
      EXPECT_EQ(spec.diagnostic().unit, "CAYMAN_INJECT_CORRUPT");
      EXPECT_NE(spec.diagnostic().message.find("invalid spec"),
                std::string::npos);
    }
  }
}

TEST(InjectCorruptTest, ModeNamesRoundTrip) {
  for (CorruptMode m : {CorruptMode::Truncate, CorruptMode::Bitflip,
                        CorruptMode::Torn, CorruptMode::Crash}) {
    Expected<CorruptSpec> spec =
        parseInjectCorrupt(std::string(corruptModeName(m)) + ":7");
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec.value().mode, m);
  }
}

TEST(EnvWrapperTest, UnsetAndEmptyAreCleanNullopt) {
  unsetenv("CAYMAN_INJECT_CORRUPT");
  Expected<std::optional<CorruptSpec>> unset = envInjectCorrupt();
  ASSERT_TRUE(unset.ok());
  EXPECT_FALSE(unset.value().has_value());

  setenv("CAYMAN_INJECT_CORRUPT", "", 1);
  Expected<std::optional<CorruptSpec>> empty = envInjectCorrupt();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty.value().has_value());
  unsetenv("CAYMAN_INJECT_CORRUPT");
}

TEST(EnvWrapperTest, SetValuesParseAndMalformedFail) {
  setenv("CAYMAN_INJECT_CORRUPT", "bitflip:5", 1);
  Expected<std::optional<CorruptSpec>> good = envInjectCorrupt();
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(good.value().has_value());
  EXPECT_EQ(good.value()->mode, CorruptMode::Bitflip);
  EXPECT_EQ(good.value()->offset, 5u);

  setenv("CAYMAN_INJECT_CORRUPT", "melt:5", 1);
  EXPECT_FALSE(envInjectCorrupt().ok());
  unsetenv("CAYMAN_INJECT_CORRUPT");

  setenv("CAYMAN_INJECT_FAULT", "atax:select", 1);
  Expected<std::optional<FaultSpec>> fault = envInjectFault();
  ASSERT_TRUE(fault.ok());
  ASSERT_TRUE(fault.value().has_value());
  EXPECT_EQ(fault.value()->stage, Stage::Select);
  unsetenv("CAYMAN_INJECT_FAULT");

  setenv("CAYMAN_INJECT_SLOW", "atax:generate:10", 1);
  Expected<std::vector<SlowSpec>> slow = envInjectSlow();
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(slow.value().size(), 1u);
  EXPECT_EQ(slow.value()[0].micros, 10u);
  unsetenv("CAYMAN_INJECT_SLOW");
}

TEST(InjectSlowListTest, ParsesMultipleSpecs) {
  Expected<std::vector<SlowSpec>> specs =
      parseInjectSlowList("atax:generate:50000,bicg:generate:50000");
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs.value().size(), 2u);
  EXPECT_EQ(specs.value()[0].workload, "atax");
  EXPECT_EQ(specs.value()[0].micros, 50000u);
  EXPECT_EQ(specs.value()[1].workload, "bicg");
  EXPECT_EQ(specs.value()[1].micros, 50000u);
}

TEST(InjectSlowListTest, SingleSpecStillParses) {
  Expected<std::vector<SlowSpec>> specs =
      parseInjectSlowList("fft:generate:100");
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs.value().size(), 1u);
  EXPECT_EQ(specs.value()[0].workload, "fft");
}

TEST(InjectSlowListTest, RejectsEmptyElementsAndDuplicates) {
  for (const char* bad :
       {"", ",", "atax:generate:10,", ",atax:generate:10",
        "atax:generate:10,,bicg:generate:10",
        "atax:generate:10,atax:generate:20",
        "atax:generate:10,bicg:generate"}) {
    Expected<std::vector<SlowSpec>> specs = parseInjectSlowList(bad);
    EXPECT_FALSE(specs.ok()) << "'" << bad << "' should be rejected";
    if (!specs.ok()) {
      EXPECT_EQ(specs.diagnostic().unit, "CAYMAN_INJECT_SLOW");
    }
  }
}

TEST(InjectSlowListTest, DuplicateRejectionNamesTheWorkload) {
  Expected<std::vector<SlowSpec>> specs =
      parseInjectSlowList("mvt:generate:5,mvt:generate:9");
  ASSERT_FALSE(specs.ok());
  EXPECT_NE(specs.diagnostic().message.find("duplicate 'mvt'"),
            std::string::npos);
}

TEST(InjectSlowListTest, EnvWrapperAcceptsList) {
  setenv("CAYMAN_INJECT_SLOW", "atax:generate:1,bicg:generate:2", 1);
  Expected<std::vector<SlowSpec>> specs = envInjectSlow();
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs.value().size(), 2u);
  EXPECT_EQ(specs.value()[1].micros, 2u);

  setenv("CAYMAN_INJECT_SLOW", "atax:generate:1,atax:generate:2", 1);
  EXPECT_FALSE(envInjectSlow().ok());

  unsetenv("CAYMAN_INJECT_SLOW");
  Expected<std::vector<SlowSpec>> unset = envInjectSlow();
  ASSERT_TRUE(unset.ok());
  EXPECT_TRUE(unset.value().empty());
}

}  // namespace
}  // namespace cayman::support::envhooks
