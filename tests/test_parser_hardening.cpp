// Hardened-ingestion tests: hostile textual IR must come back as structured
// parse/verify diagnostics (with 1-based line:col where known), never as
// crashes, silent wrap-arounds, or unbounded allocations.
#include <gtest/gtest.h>

#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/status.h"

namespace cayman::ir {
namespace {

using support::Diagnostic;
using support::DiagnosticError;
using support::Stage;

/// Parses hostile text and returns the diagnostic it must fail with.
Diagnostic expectParseFailure(const std::string& text,
                              const ParserLimits& limits = {}) {
  support::Expected<std::unique_ptr<Module>> result =
      parseModuleExpected(text, limits);
  EXPECT_FALSE(result.ok()) << text;
  if (result.ok()) return {};
  EXPECT_EQ(result.diagnostic().stage, Stage::Parse);
  return result.diagnostic();
}

TEST(ParserHardeningTest, CallWithTooManyArgumentsIsRejected) {
  // Historically crashed: argument(args.size()) indexed past the signature.
  Diagnostic d = expectParseFailure(
      "module \"m\" {\n"
      "func @f(%a: i64) -> i64 {\n"
      "entry:\n"
      "  ret i64 %a\n"
      "}\n"
      "func @main() -> i64 {\n"
      "entry:\n"
      "  %r = call @f(1, 2, 3)\n"
      "  ret i64 %r\n"
      "}\n"
      "}\n");
  EXPECT_NE(d.message.find("too many arguments"), std::string::npos);
  EXPECT_EQ(d.line, 8);
}

TEST(ParserHardeningTest, CallWithTooFewArgumentsIsRejected) {
  Diagnostic d = expectParseFailure(
      "module \"m\" {\n"
      "func @f(%a: i64, %b: i64) -> i64 {\n"
      "entry:\n"
      "  ret i64 %a\n"
      "}\n"
      "func @main() -> i64 {\n"
      "entry:\n"
      "  %r = call @f(7)\n"
      "  ret i64 %r\n"
      "}\n"
      "}\n");
  EXPECT_NE(d.message.find("expected 2"), std::string::npos);
}

TEST(ParserHardeningTest, ShortInitializerIsRejected) {
  // Historically read out of bounds when SimMemory applied the init image.
  Diagnostic d = expectParseFailure(
      "module \"m\" {\n"
      "global @g : i64[8] = [1, 2]\n"
      "}\n");
  EXPECT_NE(d.message.find("2 elements, expected 8"), std::string::npos);
  EXPECT_EQ(d.line, 2);
}

TEST(ParserHardeningTest, OversizedInitializerIsRejected) {
  Diagnostic d = expectParseFailure(
      "module \"m\" {\n"
      "global @g : i64[2] = [1, 2, 3]\n"
      "}\n");
  EXPECT_NE(d.message.find("more than 2"), std::string::npos);
}

TEST(ParserHardeningTest, HugeGlobalIsCappedNotAllocated) {
  // Historically attempted a ~8 TB allocation.
  Diagnostic d = expectParseFailure(
      "module \"m\" {\n"
      "global @g : f64[999999999999]\n"
      "}\n");
  EXPECT_NE(d.message.find("element limit"), std::string::npos);
}

TEST(ParserHardeningTest, NegativeGlobalSizeDoesNotWrapAround) {
  // strtoull would silently wrap "-1" to 2^64-1.
  Diagnostic d = expectParseFailure(
      "module \"m\" {\n"
      "global @g : i64[-1]\n"
      "}\n");
  EXPECT_NE(d.message.find("invalid array size"), std::string::npos);
}

TEST(ParserHardeningTest, TotalGlobalBytesAreCapped) {
  ParserLimits limits;
  limits.maxTotalGlobalBytes = 1024;
  Diagnostic d = expectParseFailure(
      "module \"m\" {\n"
      "global @a : f64[100]\n"
      "global @b : f64[100]\n"
      "}\n",
      limits);
  EXPECT_NE(d.message.find("total size limit"), std::string::npos);
  EXPECT_EQ(d.line, 3);
}

TEST(ParserHardeningTest, InputSizeIsCapped) {
  ParserLimits limits;
  limits.maxInputBytes = 64;
  std::string big(1024, 'x');
  Diagnostic d = expectParseFailure(big, limits);
  EXPECT_NE(d.message.find("size limit"), std::string::npos);
}

TEST(ParserHardeningTest, TruncatedModuleReportsEof) {
  Diagnostic d = expectParseFailure(
      "module \"m\" {\n"
      "func @main() -> i64 {\n"
      "entry:\n"
      "  %a = add i64 1, 2\n");
  EXPECT_NE(d.message.find("not terminated"), std::string::npos);
  EXPECT_GT(d.line, 0);
}

TEST(ParserHardeningTest, TrailingContentAfterModuleCloseIsRejected) {
  Diagnostic d = expectParseFailure(
      "module \"m\" {\n"
      "func @main() -> i64 {\n"
      "entry:\n"
      "  ret i64 0\n"
      "}\n"
      "}\n"
      "global @late : i64[1] = [0]\n");
  EXPECT_NE(d.message.find("trailing content"), std::string::npos);
  EXPECT_EQ(d.line, 7);
}

TEST(ParserHardeningTest, DuplicateNamesAreRejected) {
  EXPECT_NE(expectParseFailure("module \"m\" {\n"
                               "global @g : i64[1]\n"
                               "global @g : i64[1]\n"
                               "}\n")
                .message.find("duplicate global"),
            std::string::npos);
  EXPECT_NE(expectParseFailure("module \"m\" {\n"
                               "func @f() -> i64 {\nentry:\n  ret i64 0\n}\n"
                               "func @f() -> i64 {\nentry:\n  ret i64 0\n}\n"
                               "}\n")
                .message.find("duplicate function"),
            std::string::npos);
  EXPECT_NE(expectParseFailure("module \"m\" {\n"
                               "func @f() -> i64 {\n"
                               "entry:\n"
                               "  br next\n"
                               "next:\n"
                               "  br entry\n"
                               "next:\n"
                               "  ret i64 0\n"
                               "}\n"
                               "}\n")
                .message.find("duplicate block"),
            std::string::npos);
  EXPECT_NE(expectParseFailure("module \"m\" {\n"
                               "func @f() -> i64 {\n"
                               "entry:\n"
                               "  %a = add i64 1, 2\n"
                               "  %a = add i64 3, 4\n"
                               "  ret i64 %a\n"
                               "}\n"
                               "}\n")
                .message.find("redefinition"),
            std::string::npos);
}

TEST(ParserHardeningTest, UndefinedReferencesAreRejected) {
  EXPECT_NE(
      expectParseFailure("module \"m\" {\n"
                         "func @f() -> i64 {\n"
                         "entry:\n"
                         "  br nowhere\n"
                         "}\n"
                         "}\n")
          .message.find("unknown block"),
      std::string::npos);
  Diagnostic d = expectParseFailure(
      "module \"m\" {\n"
      "func @f() -> i64 {\n"
      "entry:\n"
      "  %a = add i64 %ghost, 1\n"
      "  ret i64 %a\n"
      "}\n"
      "}\n");
  EXPECT_NE(d.message.find("undefined value %ghost"), std::string::npos);
  EXPECT_EQ(d.line, 4);
}

TEST(ParserHardeningTest, StructuralCapsApply) {
  ParserLimits limits;
  limits.maxFunctions = 2;
  std::string text = "module \"m\" {\n";
  for (int i = 0; i < 3; ++i) {
    text += "func @f" + std::to_string(i) +
            "() -> i64 {\nentry:\n  ret i64 0\n}\n";
  }
  text += "}\n";
  EXPECT_NE(expectParseFailure(text, limits).message.find("function count"),
            std::string::npos);

  ParserLimits instLimits;
  instLimits.maxInstructionsPerFunction = 4;
  std::string body = "module \"m\" {\nfunc @f() -> i64 {\nentry:\n";
  for (int i = 0; i < 8; ++i) {
    body += "  %v" + std::to_string(i) + " = add i64 1, 2\n";
  }
  body += "  ret i64 0\n}\n}\n";
  EXPECT_NE(
      expectParseFailure(body, instLimits).message.find("instruction count"),
      std::string::npos);
}

TEST(ParserHardeningTest, GepElemSizeIsRangeChecked) {
  Diagnostic d = expectParseFailure(
      "module \"m\" {\n"
      "global @g : i64[4]\n"
      "func @f() -> i64 {\n"
      "entry:\n"
      "  %p = gep @g, 0, elem 4096\n"
      "  %v = load i64, %p\n"
      "  ret i64 %v\n"
      "}\n"
      "}\n");
  EXPECT_NE(d.message.find("out of range"), std::string::npos);
}

TEST(ParserHardeningTest, DiagnosticCarriesLineAndColumn) {
  support::Expected<std::unique_ptr<Module>> result = parseModuleExpected(
      "module \"m\" {\n"
      "func @f() -> i64 {\n"
      "entry:\n"
      "  %a = bogusop i64 1, 2\n"
      "  ret i64 %a\n"
      "}\n"
      "}\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.diagnostic().line, 4);
  EXPECT_GT(result.diagnostic().col, 0);
  EXPECT_NE(result.diagnostic().message.find("unknown opcode"),
            std::string::npos);
}

TEST(ParserHardeningTest, NanLiteralDoesNotCorruptConstantMap) {
  // NaN keys used to violate std::map's strict weak ordering in constFP.
  std::unique_ptr<Module> module = parseModule(
      "module \"m\" {\n"
      "func @main() -> f64 {\n"
      "entry:\n"
      "  %a = fadd f64 nan, 1.0\n"
      "  %b = fadd f64 nan, 2.0\n"
      "  %c = fadd f64 %a, %b\n"
      "  ret f64 %c\n"
      "}\n"
      "}\n");
  ASSERT_TRUE(verifyModule(*module).empty());
  // Printing and reparsing the module must also be stable.
  std::string printed = printModule(*module);
  std::unique_ptr<Module> reparsed = parseModule(printed);
  EXPECT_EQ(printModule(*reparsed), printed);
}

TEST(ParserHardeningTest, LegacyParseModuleStillThrowsCatchableError) {
  EXPECT_THROW(parseModule("not a module"), Error);
  EXPECT_THROW(parseModule("not a module"), DiagnosticError);
}

TEST(VerifierHardeningTest, StructuralViolationsAreReported) {
  // Build by hand: a condbr with one successor is unreachable through the
  // parser, so construct the raw IR directly.
  Module module("bad");
  Function* f = module.addFunction("f", Type::i64(), {});
  BasicBlock* entry = f->addBlock("entry");
  BasicBlock* next = f->addBlock("next");
  auto br = std::make_unique<Instruction>(Opcode::Br, Type::voidTy(),
                                          std::vector<Value*>{}, "");
  br->setSuccessors({entry, next});  // br must have exactly one successor
  entry->append(std::move(br));
  auto ret = std::make_unique<Instruction>(
      Opcode::Ret, Type::voidTy(),
      std::vector<Value*>{module.constInt(Type::i64(), 0)}, "");
  next->append(std::move(ret));

  std::vector<std::string> errors = verifyModule(module);
  ASSERT_FALSE(errors.empty());
  bool found = false;
  for (const std::string& e : errors) {
    if (e.find("successor") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);

  try {
    verifyOrThrow(module);
    FAIL() << "expected DiagnosticError";
  } catch (const DiagnosticError& e) {
    EXPECT_EQ(e.diagnostic().stage, Stage::Verify);
    EXPECT_EQ(e.diagnostic().unit, "bad");
  }
}

TEST(VerifierHardeningTest, ErrorListIsCapped) {
  // A module with hundreds of violations must not build an unbounded report.
  Module module("flood");
  Function* f = module.addFunction("f", Type::i64(), {});
  BasicBlock* block = f->addBlock("entry");
  for (int i = 0; i < 200; ++i) {
    // Loads with no operand: one structural violation each.
    block->append(std::make_unique<Instruction>(
        Opcode::Load, Type::i64(), std::vector<Value*>{}, ""));
  }
  std::vector<std::string> errors = verifyModule(module);
  ASSERT_FALSE(errors.empty());
  EXPECT_LE(errors.size(), 65u);  // 64 + the suppression notice
}

}  // namespace
}  // namespace cayman::ir
