// Tests for the RTL backend: structural properties of the emitted Verilog.
#include <gtest/gtest.h>

#include "accel/rtl.h"
#include "cayman/framework.h"
#include "workloads/workloads.h"

namespace cayman::accel {
namespace {

TEST(SanitizeTest, ProducesValidIdentifiers) {
  EXPECT_EQ(sanitizeIdentifier("loop @main:mm1.k.header"),
            "loop_main_mm1_k_header");
  EXPECT_EQ(sanitizeIdentifier("123abc"), "u_123abc");
  EXPECT_EQ(sanitizeIdentifier("a--b"), "a_b");
  EXPECT_EQ(sanitizeIdentifier(""), "u_");
}

struct RtlFixture {
  RtlFixture() : fw(workloads::build("3mm")) {}

  AcceleratorConfig firstConfig() {
    select::Solution best = fw.best(0.25);
    EXPECT_FALSE(best.empty());
    return best.accelerators.front();
  }

  Framework fw;
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  hls::Scheduler scheduler{tech, hls::InterfaceTiming{}, 2.0};
};

TEST(RtlTest, EmitsWellFormedModuleSkeleton) {
  RtlFixture fx;
  AcceleratorConfig config = fx.firstConfig();
  std::string rtl = emitAcceleratorRtl(config, fx.scheduler);
  // Module skeleton.
  EXPECT_NE(rtl.find("module accel_"), std::string::npos);
  EXPECT_NE(rtl.find("endmodule"), std::string::npos);
  EXPECT_NE(rtl.find("input  wire        clk"), std::string::npos);
  EXPECT_NE(rtl.find("input  wire        start"), std::string::npos);
  EXPECT_NE(rtl.find("output reg         done"), std::string::npos);
  // FSM.
  EXPECT_NE(rtl.find("S_IDLE"), std::string::npos);
  EXPECT_NE(rtl.find("S_DONE"), std::string::npos);
  EXPECT_NE(rtl.find("always @(posedge clk or negedge rst_n)"),
            std::string::npos);
}

TEST(RtlTest, InterfacePortsMatchAssignment) {
  RtlFixture fx;
  AcceleratorConfig config = fx.firstConfig();
  std::string rtl = emitAcceleratorRtl(config, fx.scheduler);
  if (config.numDecoupled > 0) {
    EXPECT_NE(rtl.find("stream0_"), std::string::npos);
  }
  if (config.numScratchpad > 0) {
    EXPECT_NE(rtl.find("sp_"), std::string::npos);
  }
  if (config.numCoupled > 0) {
    EXPECT_NE(rtl.find("mem_req"), std::string::npos);
  }
}

TEST(RtlTest, CustomModuleName) {
  RtlFixture fx;
  RtlOptions options;
  options.moduleName = "my_accel";
  std::string rtl = emitAcceleratorRtl(fx.firstConfig(), fx.scheduler,
                                       options);
  EXPECT_NE(rtl.find("module my_accel ("), std::string::npos);
}

TEST(RtlTest, DeterministicOutput) {
  RtlFixture fx;
  AcceleratorConfig config = fx.firstConfig();
  EXPECT_EQ(emitAcceleratorRtl(config, fx.scheduler),
            emitAcceleratorRtl(config, fx.scheduler));
}

TEST(RtlTest, EveryWorkloadsBestKernelEmits) {
  // Smoke: the emitter handles every opcode mix the suite produces.
  for (const char* name : {"atax", "nw", "cjpeg", "zip-test", "md"}) {
    Framework fw(workloads::build(name));
    select::Solution best = fw.best(0.25);
    if (best.empty()) continue;
    hls::TechLibrary tech = hls::TechLibrary::nangate45();
    hls::Scheduler scheduler(tech, hls::InterfaceTiming{}, 2.0);
    for (const AcceleratorConfig& config : best.accelerators) {
      std::string rtl = emitAcceleratorRtl(config, scheduler);
      EXPECT_NE(rtl.find("endmodule"), std::string::npos) << name;
      // Balanced begin/end within the case arms.
      size_t begins = 0, ends = 0, pos = 0;
      while ((pos = rtl.find("begin", pos)) != std::string::npos) {
        ++begins;
        pos += 5;
      }
      pos = 0;
      while ((pos = rtl.find("end", pos)) != std::string::npos) {
        ++ends;  // counts endcase/endmodule too
        pos += 3;
      }
      EXPECT_GE(ends, begins) << name;
    }
  }
}

}  // namespace
}  // namespace cayman::accel
