// Tests for the NOVIA-like and QsCores-like baselines: capability
// restrictions (paper Table I) and comparative behaviour.
#include <gtest/gtest.h>

#include "baselines/novia.h"
#include "baselines/qscores.h"
#include "test_kernels.h"
#include "workloads/workloads.h"

namespace cayman::baselines {
namespace {

struct BaselinePipeline {
  explicit BaselinePipeline(std::unique_ptr<ir::Module> m)
      : module(std::move(m)),
        wpst(*module),
        interp(*module),
        run(interp.run()),
        profile(wpst, run, interp.costModel()),
        tech(hls::TechLibrary::nangate45()) {}

  std::unique_ptr<ir::Module> module;
  analysis::WPst wpst;
  sim::Interpreter interp;
  sim::Interpreter::Result run;
  sim::ProfileData profile;
  hls::TechLibrary tech;
};

TEST(NoviaTest, ParetoPointsAreMonotone) {
  BaselinePipeline p(workloads::build("3mm"));
  NoviaFlow novia(p.wpst, p.profile, p.tech);
  std::vector<NoviaFlow::Point> points = novia.paretoFront(5e5);
  ASSERT_GE(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points.front().areaUm2, 0.0);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].areaUm2, points[i - 1].areaUm2);
    EXPECT_GE(points[i].savedCpuCycles, points[i - 1].savedCpuCycles);
    EXPECT_LE(points[i].areaUm2, 5e5);
  }
}

TEST(NoviaTest, SpeedupIsModest) {
  // NOVIA accelerates compute dataflow only; memory/control stay on the
  // CPU, so program speedups stay in the low single digits (paper Fig. 6:
  // "lower-left corner").
  BaselinePipeline p(workloads::build("3mm"));
  NoviaFlow novia(p.wpst, p.profile, p.tech);
  NoviaFlow::Point best = novia.best(5e5);
  double speedup = best.speedup(p.profile.totalCycles());
  EXPECT_GE(speedup, 1.0);
  EXPECT_LT(speedup, 3.0);
}

TEST(NoviaTest, BudgetZeroMeansNoGain) {
  BaselinePipeline p(workloads::build("3mm"));
  NoviaFlow novia(p.wpst, p.profile, p.tech);
  NoviaFlow::Point best = novia.best(0.0);
  EXPECT_DOUBLE_EQ(best.savedCpuCycles, 0.0);
  EXPECT_DOUBLE_EQ(best.speedup(p.profile.totalCycles()), 1.0);
}

TEST(QsCoresTest, RestrictionsForbidFastHardware) {
  accel::ModelParams params = QsCoresFlow::restrictedParams();
  EXPECT_FALSE(params.allowDecoupled);
  EXPECT_FALSE(params.allowScratchpad);
  EXPECT_FALSE(params.allowPipelining);
  EXPECT_FALSE(params.allowUnrolling);
  hls::InterfaceTiming timing = QsCoresFlow::scanChainTiming();
  hls::InterfaceTiming fast;
  EXPECT_GT(timing.coupledLoadLatency, fast.coupledLoadLatency);
  EXPECT_GT(timing.coupledStoreLatency, fast.coupledStoreLatency);
}

TEST(QsCoresTest, SolutionsAreSequentialCoupledOnly) {
  BaselinePipeline p(workloads::build("atax"));
  QsCoresFlow qscores(p.wpst, p.profile, p.tech);
  select::Solution best = qscores.best(5e5);
  for (const auto& config : best.accelerators) {
    EXPECT_EQ(config.numPipelinedRegions, 0u);
    EXPECT_EQ(config.numDecoupled, 0u);
    EXPECT_EQ(config.numScratchpad, 0u);
  }
}

TEST(QsCoresTest, StillBeatsPlainCpuSometimes) {
  // Even sequential accelerators with slow access can win on compute-dense
  // kernels — QsCores is a real baseline, not a strawman.
  BaselinePipeline p(workloads::build("3mm"));
  QsCoresFlow qscores(p.wpst, p.profile, p.tech);
  const double ratio = 1.25;  // 500 MHz accelerator beside a 625 MHz CVA6
  select::Solution best = qscores.best(1.3e6, ratio);
  EXPECT_GT(best.speedup(p.profile.totalCycles(), ratio), 1.0);
}

}  // namespace
}  // namespace cayman::baselines
