// End-to-end integration tests of the Framework facade, including the
// qualitative capability matrix of the paper's Table I.
#include <gtest/gtest.h>

#include <cmath>

#include "cayman/framework.h"
#include "ir/builder.h"
#include "test_kernels.h"
#include "workloads/workloads.h"

namespace cayman {
namespace {

TEST(FrameworkTest, RejectsMalformedModules) {
  auto module = std::make_unique<ir::Module>("bad");
  module->addFunction("f", ir::Type::voidTy(), {});  // block-less function
  module->functionByName("f")->addBlock("entry");    // no terminator
  EXPECT_THROW(Framework{std::move(module)}, Error);
}

TEST(FrameworkTest, EndToEndOnLinearKernel) {
  Framework fw(testing::linearKernel(256));
  EXPECT_GT(fw.totalCpuCycles(), 0.0);
  select::Solution best = fw.best(0.25);
  EXPECT_FALSE(best.empty());
  EXPECT_LE(best.areaUm2, fw.budgetUm2(0.25));
  EXPECT_GT(fw.speedupOf(best), 1.0);
}

TEST(FrameworkTest, ExploreFrontiersGrowWithBudget) {
  Framework fw(workloads::build("atax"));
  select::Solution small = fw.best(0.10);
  select::Solution large = fw.best(0.65);
  EXPECT_GE(fw.speedupOf(large), fw.speedupOf(small));
  EXPECT_LE(small.areaUm2, fw.budgetUm2(0.10));
  EXPECT_LE(large.areaUm2, fw.budgetUm2(0.65));
}

TEST(FrameworkTest, EvaluateReportIsConsistent) {
  Framework fw(workloads::build("bicg"));
  EvaluationReport report = fw.evaluate(0.25);
  EXPECT_DOUBLE_EQ(report.budgetRatio, 0.25);
  EXPECT_GE(report.caymanSpeedup, 1.0);
  EXPECT_GE(report.noviaSpeedup, 1.0);
  EXPECT_GE(report.qscoresSpeedup, 1.0);
  EXPECT_NEAR(report.overNovia, report.caymanSpeedup / report.noviaSpeedup,
              1e-9);
  EXPECT_NEAR(report.overQsCores,
              report.caymanSpeedup / report.qscoresSpeedup, 1e-9);
  unsigned ifaceTotal =
      report.numCoupled + report.numDecoupled + report.numScratchpad;
  EXPECT_GT(ifaceTotal, 0u);
  EXPECT_GE(report.selectionSeconds, 0.0);
}

TEST(FrameworkTest, TrivialModuleEvaluatesToFiniteReport) {
  // Near-empty profile: nothing worth accelerating, every baseline may come
  // back with speedup <= 1 or 0 — the derived ratios must stay finite
  // (overNovia/overQsCores report 0, not inf/NaN, when a baseline found
  // nothing).
  auto module = std::make_unique<ir::Module>("trivial");
  ir::Function* f = module->addFunction("main", ir::Type::voidTy(), {});
  ir::BasicBlock* entry = f->addBlock("entry");
  ir::IRBuilder b(module.get());
  b.setInsertPoint(entry);
  b.ret();
  Framework fw(std::move(module));
  EvaluationReport report = fw.evaluate(0.25);
  for (double value :
       {report.totalCpuCycles, report.caymanSpeedup, report.noviaSpeedup,
        report.qscoresSpeedup, report.overNovia, report.overQsCores,
        report.areaSavingPercent}) {
    EXPECT_TRUE(std::isfinite(value));
  }
  EXPECT_GE(report.overNovia, 0.0);
  EXPECT_GE(report.overQsCores, 0.0);
}

TEST(FrameworkTest, TableOneCapabilityMatrix) {
  // Paper Table I: Cayman (full) supports optimized control flow and
  // specialized access; coupled-only still optimizes control flow; QsCores
  // is sequential + slow; NOVIA has no control flow or memory support.
  Framework full(workloads::build("atax"));
  EvaluationReport report = full.evaluate(0.65);
  // Cayman: control flow optimized (pipelined regions exist) and access
  // specialized (non-coupled interfaces used).
  EXPECT_GT(report.numPipelinedRegions, 0u);
  EXPECT_GT(report.numDecoupled + report.numScratchpad, 0u);
  // QsCores: control flow sequential, access slow -> strictly below Cayman.
  EXPECT_GT(report.caymanSpeedup, report.qscoresSpeedup);
  // NOVIA: no memory acceleration -> the least speedup of the three.
  EXPECT_GE(report.qscoresSpeedup, 0.8 * report.noviaSpeedup);
  EXPECT_GT(report.caymanSpeedup, report.noviaSpeedup);
}

TEST(FrameworkTest, CoupledOnlyAblationIsSlower) {
  FrameworkOptions coupledOnly;
  coupledOnly.coupledOnly = true;
  Framework full(workloads::build("mvt"));
  Framework restricted(workloads::build("mvt"), coupledOnly);
  double fullSpeedup = full.speedupOf(full.best(0.65));
  double restrictedSpeedup = restricted.speedupOf(restricted.best(0.65));
  // Fig. 6: coupled-only Cayman achieves lower speedup for most benchmarks.
  EXPECT_GT(fullSpeedup, restrictedSpeedup);
  EXPECT_GE(restrictedSpeedup, 1.0);
}

TEST(FrameworkTest, MergingPreservesPerformanceReducesArea) {
  Framework fw(workloads::build("3mm"));
  select::Solution best = fw.best(0.65);
  merge::MergeResult merged = fw.mergeSolution(best);
  EXPECT_LE(merged.areaAfterUm2, merged.areaBeforeUm2);
  // Merging does not touch the schedule: speedup is unchanged by design.
  EXPECT_DOUBLE_EQ(fw.speedupOf(best), fw.speedupOf(best));
}

TEST(FrameworkTest, DeterministicAcrossConstructions) {
  Framework a(workloads::build("trisolv"));
  Framework b(workloads::build("trisolv"));
  EXPECT_DOUBLE_EQ(a.totalCpuCycles(), b.totalCpuCycles());
  EXPECT_DOUBLE_EQ(a.speedupOf(a.best(0.25)), b.speedupOf(b.best(0.25)));
}

class BudgetSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(BudgetSweepTest, SolutionsRespectEveryBudget) {
  double budget = GetParam();
  Framework fw(workloads::build("syrk"));
  select::Solution best = fw.best(budget);
  EXPECT_LE(best.areaUm2, fw.budgetUm2(budget) + 1e-6);
  EXPECT_GE(fw.speedupOf(best), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweepTest,
                         ::testing::Values(0.05, 0.15, 0.25, 0.45, 0.65));

}  // namespace
}  // namespace cayman
