// Tests for accelerator merging: pairwise saving estimation, the greedy
// loop, reusable accelerator grouping, and end-to-end savings.
#include <gtest/gtest.h>

#include "accel/model.h"
#include "merge/merger.h"
#include "select/selector.h"
#include "test_kernels.h"
#include "workloads/workloads.h"

namespace cayman::merge {
namespace {

using OpCounts = std::map<std::pair<ir::Opcode, bool>, unsigned>;

TEST(PairSavingTest, SharedExpensiveOpsSave) {
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  AcceleratorMerger merger(tech);
  OpCounts a{{{ir::Opcode::FMul, true}, 2}, {{ir::Opcode::FAdd, true}, 1}};
  OpCounts b{{{ir::Opcode::FMul, true}, 1}, {{ir::Opcode::FAdd, true}, 2}};
  double saving = merger.pairSaving(a, b);
  // One shared FMul + one shared FAdd minus mux overhead: clearly positive.
  EXPECT_GT(saving, 0.0);
  EXPECT_LT(saving,
            tech.opInfo(ir::Opcode::FMul, ir::Type::f64()).areaUm2 +
                tech.opInfo(ir::Opcode::FAdd, ir::Type::f64()).areaUm2);
}

TEST(PairSavingTest, DisjointOpsSaveNothing) {
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  AcceleratorMerger merger(tech);
  OpCounts a{{{ir::Opcode::FMul, true}, 2}};
  OpCounts b{{{ir::Opcode::SDiv, true}, 1}};
  EXPECT_DOUBLE_EQ(merger.pairSaving(a, b), 0.0);
}

TEST(PairSavingTest, CheapOpsNotWorthMuxes) {
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  AcceleratorMerger merger(tech);
  // Sharing a single AND gate costs more mux area than it saves.
  OpCounts a{{{ir::Opcode::And, true}, 1}};
  OpCounts b{{{ir::Opcode::And, true}, 1}};
  EXPECT_LT(merger.pairSaving(a, b), 0.0);
}

struct MergePipeline {
  explicit MergePipeline(std::unique_ptr<ir::Module> m)
      : module(std::move(m)),
        wpst(*module),
        interp(*module),
        run(interp.run()),
        profile(wpst, run, interp.costModel()),
        tech(hls::TechLibrary::nangate45()),
        model(wpst, profile, tech, hls::InterfaceTiming{}, {}) {}

  select::Solution best(double budgetUm2) {
    select::SelectorParams params;
    params.areaBudgetUm2 = budgetUm2;
    return select::CandidateSelector(model, params).best();
  }

  std::unique_ptr<ir::Module> module;
  analysis::WPst wpst;
  sim::Interpreter interp;
  sim::Interpreter::Result run;
  sim::ProfileData profile;
  hls::TechLibrary tech;
  accel::AcceleratorModel model;
};

TEST(MergerTest, IdenticalKernelsMergeHeavily) {
  // 3mm has three identical matmul nests — the paper's showcase (74% / 70%
  // saving). Expect a large saving and one reusable accelerator covering
  // multiple kernels.
  MergePipeline p(workloads::build("3mm"));
  select::Solution best = p.best(5e5);
  ASSERT_GE(best.accelerators.size(), 2u);
  AcceleratorMerger merger(p.tech);
  MergeResult result = merger.run(best);
  EXPECT_GT(result.savingPercent(), 30.0);
  EXPECT_GE(result.reusableAccelerators, 1);
  EXPECT_GE(result.avgKernelsPerReusable, 2.0);
  EXPECT_LT(result.areaAfterUm2, result.areaBeforeUm2);
}

TEST(MergerTest, SingleAcceleratorSavesLittle) {
  // One hotspot (like doitgen in the paper, 5% saving): merging can only
  // share within the single accelerator's own blocks.
  MergePipeline p(testing::linearKernel());
  select::Solution best = p.best(5e5);
  AcceleratorMerger merger(p.tech);
  MergeResult result = merger.run(best);
  EXPECT_EQ(result.reusableAccelerators, 0);
  EXPECT_LT(result.savingPercent(), 30.0);
}

TEST(MergerTest, EmptySolutionIsNoop) {
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  AcceleratorMerger merger(tech);
  MergeResult result = merger.run(select::Solution{});
  EXPECT_DOUBLE_EQ(result.areaBeforeUm2, 0.0);
  EXPECT_DOUBLE_EQ(result.areaAfterUm2, 0.0);
  EXPECT_EQ(result.mergeSteps, 0);
  EXPECT_DOUBLE_EQ(result.savingPercent(), 0.0);
}

TEST(MergerTest, MergingNeverIncreasesArea) {
  for (const char* name : {"3mm", "atax", "mvt", "jacobi-2d"}) {
    MergePipeline p(workloads::build(name));
    select::Solution best = p.best(5e5);
    AcceleratorMerger merger(p.tech);
    MergeResult result = merger.run(best);
    EXPECT_LE(result.areaAfterUm2, result.areaBeforeUm2 + 1e-6) << name;
    EXPECT_GE(result.areaAfterUm2, 0.0) << name;
  }
}

TEST(MergerTest, DeterministicAcrossRuns) {
  MergePipeline p(workloads::build("3mm"));
  select::Solution best = p.best(5e5);
  AcceleratorMerger merger(p.tech);
  MergeResult first = merger.run(best);
  MergeResult second = merger.run(best);
  EXPECT_DOUBLE_EQ(first.areaAfterUm2, second.areaAfterUm2);
  EXPECT_EQ(first.mergeSteps, second.mergeSteps);
}

}  // namespace
}  // namespace cayman::merge
