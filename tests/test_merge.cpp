// Tests for accelerator merging: pairwise saving estimation, the greedy
// loop, reusable accelerator grouping, and end-to-end savings.
#include <gtest/gtest.h>

#include "accel/model.h"
#include "merge/merger.h"
#include "select/selector.h"
#include "test_kernels.h"
#include "workloads/workloads.h"

namespace cayman::merge {
namespace {

using OpCounts = std::map<std::pair<ir::Opcode, bool>, unsigned>;

TEST(PairSavingTest, SharedExpensiveOpsSave) {
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  AcceleratorMerger merger(tech);
  OpCounts a{{{ir::Opcode::FMul, true}, 2}, {{ir::Opcode::FAdd, true}, 1}};
  OpCounts b{{{ir::Opcode::FMul, true}, 1}, {{ir::Opcode::FAdd, true}, 2}};
  double saving = merger.pairSaving(a, b);
  // One shared FMul + one shared FAdd minus mux overhead: clearly positive.
  EXPECT_GT(saving, 0.0);
  EXPECT_LT(saving,
            tech.opInfo(ir::Opcode::FMul, ir::Type::f64()).areaUm2 +
                tech.opInfo(ir::Opcode::FAdd, ir::Type::f64()).areaUm2);
}

TEST(PairSavingTest, DisjointOpsSaveNothing) {
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  AcceleratorMerger merger(tech);
  OpCounts a{{{ir::Opcode::FMul, true}, 2}};
  OpCounts b{{{ir::Opcode::SDiv, true}, 1}};
  EXPECT_DOUBLE_EQ(merger.pairSaving(a, b), 0.0);
}

TEST(PairSavingTest, CheapOpsNotWorthMuxes) {
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  AcceleratorMerger merger(tech);
  // Sharing a single AND gate costs more mux area than it saves — a merger
  // keeps separate instances, so the estimated saving clamps to zero
  // instead of going negative.
  OpCounts a{{{ir::Opcode::And, true}, 1}};
  OpCounts b{{{ir::Opcode::And, true}, 1}};
  EXPECT_DOUBLE_EQ(merger.pairSaving(a, b), 0.0);
}

TEST(PairSavingTest, CheapSharedOpsNeverReduceSaving) {
  // Regression: per-op-class contributions used to go negative, so a pair
  // dominated by narrow/cheap ops reported less saving than its expensive
  // ops alone (or a bogus negative total).
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  AcceleratorMerger merger(tech);
  OpCounts expensiveA{{{ir::Opcode::FMul, true}, 1}};
  OpCounts expensiveB{{{ir::Opcode::FMul, true}, 1}};
  double base = merger.pairSaving(expensiveA, expensiveB);
  ASSERT_GT(base, 0.0);

  OpCounts mixedA = expensiveA;
  OpCounts mixedB = expensiveB;
  mixedA[{ir::Opcode::And, true}] = 12;
  mixedB[{ir::Opcode::And, true}] = 12;
  mixedA[{ir::Opcode::Xor, true}] = 8;
  mixedB[{ir::Opcode::Xor, true}] = 8;
  EXPECT_GE(merger.pairSaving(mixedA, mixedB), base)
      << "cheap shared ops must not eat into the saving of expensive ones";

  // A pair made only of not-worth-sharing ops saves exactly nothing.
  OpCounts cheapA{{{ir::Opcode::And, true}, 12}, {{ir::Opcode::Xor, true}, 8}};
  EXPECT_DOUBLE_EQ(merger.pairSaving(cheapA, cheapA), 0.0);
}

struct MergePipeline {
  explicit MergePipeline(std::unique_ptr<ir::Module> m)
      : module(std::move(m)),
        wpst(*module),
        interp(*module),
        run(interp.run()),
        profile(wpst, run, interp.costModel()),
        tech(hls::TechLibrary::nangate45()),
        model(wpst, profile, tech, hls::InterfaceTiming{}, {}) {}

  select::Solution best(double budgetUm2) {
    select::SelectorParams params;
    params.areaBudgetUm2 = budgetUm2;
    return select::CandidateSelector(model, params).best();
  }

  std::unique_ptr<ir::Module> module;
  analysis::WPst wpst;
  sim::Interpreter interp;
  sim::Interpreter::Result run;
  sim::ProfileData profile;
  hls::TechLibrary tech;
  accel::AcceleratorModel model;
};

TEST(MergerTest, IdenticalKernelsMergeHeavily) {
  // 3mm has three identical matmul nests — the paper's showcase (74% / 70%
  // saving). Expect a large saving and one reusable accelerator covering
  // multiple kernels. (The threshold accounts for fan-in-aware mux costs:
  // chaining the third nest onto the shared datapath pays for 3:1 selects,
  // so the honest figure is a few points below the old flat-cost booking.)
  MergePipeline p(workloads::build("3mm"));
  select::Solution best = p.best(5e5);
  ASSERT_GE(best.accelerators.size(), 2u);
  AcceleratorMerger merger(p.tech);
  MergeResult result = merger.run(best);
  EXPECT_GT(result.savingPercent(), 25.0);
  EXPECT_GE(result.reusableAccelerators, 1);
  EXPECT_GE(result.avgKernelsPerReusable, 2.0);
  EXPECT_LT(result.areaAfterUm2, result.areaBeforeUm2);
}

TEST(MergerTest, SingleAcceleratorSavesLittle) {
  // One hotspot (like doitgen in the paper, 5% saving): merging can only
  // share within the single accelerator's own blocks.
  MergePipeline p(testing::linearKernel());
  select::Solution best = p.best(5e5);
  AcceleratorMerger merger(p.tech);
  MergeResult result = merger.run(best);
  EXPECT_EQ(result.reusableAccelerators, 0);
  EXPECT_LT(result.savingPercent(), 30.0);
}

/// Two same-shaped FMul loops nested in one outer loop, so the outer-loop
/// region is a single accelerator whose blocks share expensive operators.
std::unique_ptr<ir::Module> twinLoopKernel() {
  auto module = std::make_unique<ir::Module>("twins");
  auto* x = module->addGlobal("x", ir::Type::f64(), 32);
  auto* y = module->addGlobal("y", ir::Type::f64(), 32);
  auto* z = module->addGlobal("z", ir::Type::f64(), 32);
  workloads::KernelBuilder kb(module.get());
  kb.beginFunction("main");
  kb.beginLoop(0, 8, "i");
  ir::Value* j = kb.beginLoop(0, 32, "j");
  kb.storeAt(y, j, kb.ir().fmul(kb.loadAt(x, j), kb.ir().f64(2.0)));
  kb.endLoop();
  ir::Value* k = kb.beginLoop(0, 32, "k");
  kb.storeAt(z, k, kb.ir().fmul(kb.loadAt(x, k), kb.ir().f64(3.0)));
  kb.endLoop();
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);
  return module;
}

TEST(MergerTest, SingleAcceleratorReportsZeroMergeSteps) {
  // Regression: the greedy loop used to pair two units of the *same*
  // accelerator, booking intra-accelerator sharing as cross-kernel reuse
  // while the group accounting saw a singleton. The paper merges datapaths
  // across accelerators only.
  MergePipeline p(twinLoopKernel());
  const analysis::Region* outer = nullptr;
  for (const analysis::Region* r : p.wpst.allRegions()) {
    if (r->kind() == analysis::RegionKind::Loop &&
        r->block()->name() == "i.header") {
      outer = r;
    }
  }
  ASSERT_NE(outer, nullptr);
  const std::vector<accel::AcceleratorConfig>& configs =
      p.model.generate(outer);
  ASSERT_FALSE(configs.empty());
  // One accelerator covering both FMul loops: plenty of shareable ops
  // between its own blocks, but nothing to merge across accelerators.
  select::Solution solo = select::Solution::fromConfig(configs.back());
  AcceleratorMerger merger(p.tech);
  MergeResult result = merger.run(solo);
  EXPECT_EQ(result.mergeSteps, 0);
  EXPECT_EQ(result.reusableAccelerators, 0);
  EXPECT_DOUBLE_EQ(result.areaAfterUm2, result.areaBeforeUm2);

  // Sanity: the same two loops as *separate* accelerators do merge.
  const analysis::Region* inner1 = nullptr;
  const analysis::Region* inner2 = nullptr;
  for (const analysis::Region* r : p.wpst.allRegions()) {
    if (r->kind() != analysis::RegionKind::Loop) continue;
    if (r->block()->name() == "j.header") inner1 = r;
    if (r->block()->name() == "k.header") inner2 = r;
  }
  ASSERT_NE(inner1, nullptr);
  ASSERT_NE(inner2, nullptr);
  select::Solution pair = select::Solution::merge(
      select::Solution::fromConfig(p.model.generate(inner1).back()),
      select::Solution::fromConfig(p.model.generate(inner2).back()));
  MergeResult merged = merger.run(pair);
  EXPECT_GE(merged.mergeSteps, 1);
  EXPECT_EQ(merged.reusableAccelerators, 1);
  EXPECT_LT(merged.areaAfterUm2, merged.areaBeforeUm2);
}

TEST(PairSavingTest, ChainedMergeChargesIncrementalMux) {
  // Regression (fan-in-aware mux cost): the seed charged a flat 2:1 mux plus
  // two config bits per shared operator no matter how many kernels a unit
  // already served, so the k-th merge of a chain was booked as cheaply as
  // the first. The k-th merge needs (k+1):1 muxing — wider selects, more
  // config bits — so chained savings must shrink strictly.
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  Unit a, b, c;
  a.ops[{ir::Opcode::FMul, true}] = 1;
  b.ops = a.ops;
  c.ops = a.ops;
  b.acceleratorIndex = 1;
  c.acceleratorIndex = 2;
  double s11 = unitPairSaving(tech, a, b);
  ASSERT_GT(s11, 0.0);
  Unit merged = a;
  Unit absorbed = b;
  absorbUnit(merged, absorbed);
  ASSERT_EQ(merged.fanIn, 2u);
  double s21 = unitPairSaving(tech, merged, c);
  EXPECT_GT(s21, 0.0);
  EXPECT_LT(s21, s11) << "widening a 2:1 select to 3:1 must cost extra";
  // A 3-way chain saves strictly less than 3x one pair — and strictly less
  // than the 2x the flat-cost accounting used to book for it.
  EXPECT_LT(s11 + s21, 3.0 * s11);
  EXPECT_LT(s11 + s21, 2.0 * s11);
}

TEST(PairSavingTest, FreshPairMatchesLegacyFlatCost) {
  // At fan-in 1 + 1 the incremental model reduces exactly to the old flat
  // formula (one 2:1 mux per operand bit, two config bits), so single-pair
  // savings are unchanged by the bugfix.
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  Unit a, b;
  a.ops[{ir::Opcode::FMul, true}] = 1;
  b.ops = a.ops;
  b.acceleratorIndex = 1;
  double opArea = tech.opInfo(ir::Opcode::FMul, ir::Type::f64()).areaUm2;
  double flat = opArea - (operandCount(ir::Opcode::FMul) * 2.0 * 64.0 *
                              tech.muxAreaPerInputBit +
                          2.0 * tech.configBitArea);
  EXPECT_DOUBLE_EQ(unitPairSaving(tech, a, b), flat);
}

TEST(MergerTest, ThreeWayChainBooksIncrementalSavings) {
  // Three identical one-FMul units on three accelerators chain into one
  // reconfigurable datapath; the engine must book s(1,1) + s(2,1), not
  // 2 * s(1,1).
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  std::vector<Unit> units(3);
  for (size_t i = 0; i < units.size(); ++i) {
    units[i].ops[{ir::Opcode::FMul, true}] = 1;
    units[i].acceleratorIndex = i;
  }
  double s11 = unitPairSaving(tech, units[0], units[1]);
  Unit merged = units[0];
  Unit absorbed = units[1];
  absorbUnit(merged, absorbed);
  double s21 = unitPairSaving(tech, merged, units[2]);

  for (MergeMode mode : {MergeMode::Graph, MergeMode::Reference}) {
    std::vector<Unit> copy = units;
    UnionFind groups(3);
    MatchStats stats;
    double total = mode == MergeMode::Graph
                       ? matchUnitsGraph(copy, tech, groups, stats)
                       : matchUnitsReference(copy, tech, groups, stats);
    EXPECT_EQ(stats.steps, 2) << static_cast<int>(mode);
    EXPECT_DOUBLE_EQ(total, s11 + s21) << static_cast<int>(mode);
    EXPECT_LT(total, 2.0 * s11) << static_cast<int>(mode);
  }
}

/// Loop A, an outer loop wrapping two FMul loops (one accelerator with two
/// expensive datapath units), and loop D — the shape that exposed the
/// raw-index dedup bug.
std::unique_ptr<ir::Module> threeAcceleratorKernel() {
  auto module = std::make_unique<ir::Module>("chain3");
  auto* w = module->addGlobal("w", ir::Type::f64(), 32);
  auto* x = module->addGlobal("x", ir::Type::f64(), 32);
  auto* y = module->addGlobal("y", ir::Type::f64(), 32);
  auto* z = module->addGlobal("z", ir::Type::f64(), 32);
  workloads::KernelBuilder kb(module.get());
  kb.beginFunction("main");
  ir::Value* a = kb.beginLoop(0, 32, "a");
  kb.storeAt(w, a, kb.ir().fmul(kb.loadAt(x, a), kb.ir().f64(1.5)));
  kb.endLoop();
  kb.beginLoop(0, 8, "i");
  ir::Value* j = kb.beginLoop(0, 32, "j");
  kb.storeAt(y, j, kb.ir().fmul(kb.loadAt(x, j), kb.ir().f64(2.0)));
  kb.endLoop();
  ir::Value* k = kb.beginLoop(0, 32, "k");
  kb.storeAt(z, k, kb.ir().fmul(kb.loadAt(x, k), kb.ir().f64(3.0)));
  kb.endLoop();
  kb.endLoop();
  ir::Value* d = kb.beginLoop(0, 32, "d");
  kb.storeAt(x, d, kb.ir().fmul(kb.loadAt(w, d), kb.ir().f64(0.5)));
  kb.endLoop();
  kb.endFunction();
  ir::verifyOrThrow(*module);
  return module;
}

TEST(MergerTest, MergeStepsBoundedByAcceleratorCount) {
  // Regression (group-aware dedup): after accelerator A merged into B, the
  // seed compared raw accelerator indices, so B's *other* units could still
  // pair with the merged unit and book intra-group sharing as fresh
  // cross-kernel saving. Every legitimate step unions two distinct groups,
  // so a 3-accelerator solution supports at most 2 steps — the pre-fix
  // greedy books 3 here.
  MergePipeline p(threeAcceleratorKernel());
  const analysis::Region* loopA = nullptr;
  const analysis::Region* outer = nullptr;
  const analysis::Region* loopD = nullptr;
  for (const analysis::Region* r : p.wpst.allRegions()) {
    if (r->kind() != analysis::RegionKind::Loop) continue;
    if (r->block()->name() == "a.header") loopA = r;
    if (r->block()->name() == "i.header") outer = r;
    if (r->block()->name() == "d.header") loopD = r;
  }
  ASSERT_NE(loopA, nullptr);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(loopD, nullptr);
  select::Solution solution = select::Solution::merge(
      select::Solution::merge(
          select::Solution::fromConfig(p.model.generate(loopA).back()),
          select::Solution::fromConfig(p.model.generate(outer).back())),
      select::Solution::fromConfig(p.model.generate(loopD).back()));
  ASSERT_EQ(solution.accelerators.size(), 3u);

  MergeResult graph = AcceleratorMerger(p.tech, MergeMode::Graph).run(solution);
  MergeResult reference =
      AcceleratorMerger(p.tech, MergeMode::Reference).run(solution);
  EXPECT_LE(graph.mergeSteps, 2);
  EXPECT_LE(reference.mergeSteps, 2);
  EXPECT_GE(graph.mergeSteps, 1);
  EXPECT_GT(graph.savingPercent(), 0.0);
  EXPECT_EQ(graph.mergeSteps, reference.mergeSteps);
  EXPECT_DOUBLE_EQ(graph.areaAfterUm2, reference.areaAfterUm2);
  EXPECT_EQ(graph.reusableAccelerators, reference.reusableAccelerators);
}

TEST(UnionFindTest, FindAndUnite) {
  UnionFind uf(6);
  EXPECT_EQ(uf.size(), 6u);
  for (size_t i = 0; i < 6; ++i) EXPECT_EQ(uf.find(i), i);
  uf.unite(0, 1);
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_NE(uf.find(0), uf.find(2));
  uf.unite(2, 3);
  uf.unite(1, 3);
  EXPECT_EQ(uf.find(0), uf.find(2));
  EXPECT_EQ(uf.find(1), uf.find(3));
  EXPECT_NE(uf.find(0), uf.find(4));
}

TEST(UnionFindTest, DeepChainDoesNotOverflowStack) {
  // Regression (stack safety): the seed used a recursive std::function find;
  // a population-scale merge chain built a linked list deep enough to blow
  // the stack. Path halving is iterative and flattens as it walks.
  constexpr size_t kN = 1u << 20;
  UnionFind uf(kN);
  for (size_t i = kN - 1; i > 0; --i) uf.unite(i, i - 1);
  EXPECT_EQ(uf.find(kN - 1), uf.find(0));
  size_t root = uf.find(0);
  for (size_t i = 0; i < kN; i += 4096) EXPECT_EQ(uf.find(i), root);
}

TEST(MergerTest, SingleAcceleratorSkipsUnitExtraction) {
  // Regression (degenerate guard): merging is strictly cross-accelerator,
  // so a single-accelerator solution must not even extract units.
  MergePipeline p(twinLoopKernel());
  const analysis::Region* outer = nullptr;
  for (const analysis::Region* r : p.wpst.allRegions()) {
    if (r->kind() == analysis::RegionKind::Loop &&
        r->block()->name() == "i.header") {
      outer = r;
    }
  }
  ASSERT_NE(outer, nullptr);
  select::Solution solo =
      select::Solution::fromConfig(p.model.generate(outer).back());
  for (MergeMode mode : {MergeMode::Graph, MergeMode::Reference}) {
    MergeResult result = AcceleratorMerger(p.tech, mode).run(solo);
    EXPECT_EQ(result.unitsExtracted, 0u);
    EXPECT_EQ(result.pairsEvaluated, 0u);
    EXPECT_EQ(result.mergeSteps, 0);
    EXPECT_DOUBLE_EQ(result.areaAfterUm2, result.areaBeforeUm2);
  }
}

TEST(MergerTest, EmptySolutionIsNoop) {
  hls::TechLibrary tech = hls::TechLibrary::nangate45();
  AcceleratorMerger merger(tech);
  MergeResult result = merger.run(select::Solution{});
  EXPECT_DOUBLE_EQ(result.areaBeforeUm2, 0.0);
  EXPECT_DOUBLE_EQ(result.areaAfterUm2, 0.0);
  EXPECT_EQ(result.mergeSteps, 0);
  EXPECT_DOUBLE_EQ(result.savingPercent(), 0.0);
}

TEST(MergerTest, MergingNeverIncreasesArea) {
  for (const char* name : {"3mm", "atax", "mvt", "jacobi-2d"}) {
    MergePipeline p(workloads::build(name));
    select::Solution best = p.best(5e5);
    AcceleratorMerger merger(p.tech);
    MergeResult result = merger.run(best);
    EXPECT_LE(result.areaAfterUm2, result.areaBeforeUm2 + 1e-6) << name;
    EXPECT_GE(result.areaAfterUm2, 0.0) << name;
  }
}

TEST(MergerTest, DeterministicAcrossRuns) {
  MergePipeline p(workloads::build("3mm"));
  select::Solution best = p.best(5e5);
  AcceleratorMerger merger(p.tech);
  MergeResult first = merger.run(best);
  MergeResult second = merger.run(best);
  EXPECT_DOUBLE_EQ(first.areaAfterUm2, second.areaAfterUm2);
  EXPECT_EQ(first.mergeSteps, second.mergeSteps);
}

}  // namespace
}  // namespace cayman::merge
